(* Benchmark harness: regenerates every experiment of EXPERIMENTS.md.

   The paper has no numbered result tables (its Figures 1-4 are
   inference-rule figures); E1-E2 reproduce its explicit empirical
   statements, E3-E6 are the benchmark set its future work (§10) calls
   for, and E7 re-checks the worked examples.  See DESIGN.md §4.

   Usage:
     dune exec bench/main.exe                 # all experiments, table mode
     dune exec bench/main.exe -- E1 E3        # a subset
     dune exec bench/main.exe -- --quick      # smaller sweeps
     dune exec bench/main.exe -- --smoke      # tiny sweeps + budgets (CI)
     dune exec bench/main.exe -- --json FILE  # machine-readable results
     dune exec bench/main.exe -- --baseline FILE
                                              # perf ratchet: exit 3 when a
                                                timing regresses past FILE's
                                                tolerance band
     dune exec bench/main.exe -- --micro      # bechamel micro-benchmarks
     dune exec bench/main.exe -- --trace-chrome FILE
                                              # export one traced portal
                                                validation as Chrome JSON *)

let quick = ref false
let smoke = ref false

(* ------------------------------------------------------------------ *)
(* Timing                                                             *)
(* ------------------------------------------------------------------ *)

(* CPU-time measurement: run [f] until at least [budget] seconds have
   been consumed (at least [min_runs] times) and report seconds/run.
   Smoke mode (CI) shrinks both knobs: the numbers only have to exist,
   not be stable. *)
let time_per_run ?(budget = 0.2) ?(min_runs = 3) f =
  let budget = if !smoke then 0.01 else budget in
  let min_runs = if !smoke then 1 else min_runs in
  ignore (f ());
  let t0 = Sys.time () in
  let rec go runs =
    ignore (f ());
    let elapsed = Sys.time () -. t0 in
    if elapsed < budget || runs + 1 < min_runs then go (runs + 1)
    else elapsed /. float_of_int (runs + 1)
  in
  go 0

(* Wall-clock variant for the domain-parallel experiment: [Sys.time]
   is CPU time summed over every domain, which would make an N-domain
   run look N times slower than it is.  Elapsed real time is the
   quantity a throughput claim is about. *)
let wall_per_run ?(budget = 0.2) ?(min_runs = 3) f =
  let budget = if !smoke then 0.01 else budget in
  let min_runs = if !smoke then 1 else min_runs in
  ignore (f ());
  let t0 = Unix.gettimeofday () in
  let rec go runs =
    ignore (f ());
    let elapsed = Unix.gettimeofday () -. t0 in
    if elapsed < budget || runs + 1 < min_runs then go (runs + 1)
    else elapsed /. float_of_int (runs + 1)
  in
  go 0

let ms t = t *. 1e3
let us t = t *. 1e6

let header title = Format.printf "@.=== %s ===@.@." title
let row fmt = Format.printf fmt

(* ------------------------------------------------------------------ *)
(* JSON output and per-experiment telemetry                            *)
(* ------------------------------------------------------------------ *)

(* With [--json FILE] every experiment also records its table as
   structured rows and owns a live telemetry registry: each experiment
   re-runs one representative workload untimed with instruments
   attached (never inside a timed closure — the tables stay honest)
   and the snapshot is embedded next to the rows.  [--baseline FILE]
   needs the same structured rows (it compares their timing cells), so
   recording is on whenever either flag is given. *)
let json_out : string option ref = ref None
let baseline_in : string option ref = ref None
let experiments_json : Json.t list ref = ref []
let current_rows : Json.t list ref = ref []
let current_tele = ref Telemetry.disabled

let recording () = !json_out <> None || !baseline_in <> None

let tele () = !current_tele
let jint n = Json.int n
let jflt v = Json.Number v
let jstr s = Json.String s
let jrow cells = if recording () then
  current_rows := Json.Object cells :: !current_rows

(* Run an instrumented observation only when a JSON report wants its
   telemetry — table mode skips the extra (untimed) work entirely. *)
let observe f = if recording () then ignore (f ())

let begin_experiment () =
  current_rows := [];
  current_tele :=
    (if recording () then Telemetry.create () else Telemetry.disabled)

let end_experiment id =
  if recording () then
    experiments_json :=
      Json.Object
        [ ("id", jstr id);
          ("rows", Json.Array (List.rev !current_rows));
          ("telemetry", Telemetry.to_json (Telemetry.snapshot !current_tele)) ]
      :: !experiments_json

(* ------------------------------------------------------------------ *)
(* E1: backtracking vs derivatives                                     *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header
    "E1  Backtracking (Fig. 1) vs derivatives (\xc2\xa76-7) \xe2\x80\x94 \
     Example 5 shape, neighbourhood sweep";
  let shape = Workload.Micro_gen.example5_shape () in
  let focus = Workload.Micro_gen.focus in
  let sizes = if !quick then [ 2; 4; 6; 8; 10 ] else [ 2; 4; 6; 8; 10; 12; 14; 16 ] in
  let dinstr = Shex.Deriv.instruments (tele ()) in
  let binstr = Shex.Backtrack.instruments (tele ()) in
  row "  %-4s %-8s  %-14s %-14s %-14s %-10s@." "n" "verdict" "backtrack-ops"
    "backtrack" "derivatives" "speedup";
  List.iter
    (fun n ->
      List.iter
        (fun (label, g) ->
          let verdict, ops = Shex.Backtrack.matches_count focus g shape in
          let t_back =
            time_per_run (fun () -> Shex.Backtrack.matches focus g shape)
          in
          let t_deriv =
            time_per_run (fun () -> Shex.Deriv.matches focus g shape)
          in
          assert (Bool.equal verdict (label = "valid"));
          assert (Bool.equal verdict (Shex.Deriv.matches focus g shape));
          observe (fun () ->
              ignore (Shex.Deriv.matches ~instr:dinstr focus g shape);
              Shex.Backtrack.matches ~instr:binstr focus g shape);
          jrow
            [ ("n", jint n); ("verdict", jstr label);
              ("backtrack_ops", jint ops); ("backtrack_us", jflt (us t_back));
              ("derivatives_us", jflt (us t_deriv)) ];
          row "  %-4d %-8s  %-14d %11.2f us %11.2f us %9.0fx@." n label ops
            (us t_back) (us t_deriv)
            (t_back /. t_deriv))
        [ ("valid", Workload.Micro_gen.example5_neighbourhood n);
          ("invalid", Workload.Micro_gen.example5_neighbourhood_invalid n) ])
    sizes;
  row
    "@.  Expectation (\xc2\xa75, \xc2\xa78): backtracking work grows ~2^n \
     on failing inputs;@.  derivatives stay polynomial, so the speedup \
     factor explodes with n.@."

(* ------------------------------------------------------------------ *)
(* E2: derivative expression growth (Example 10)                       *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header
    "E2  Derivative size growth on the balance checker (Example 10)";
  let sizes = if !quick then [ 1; 2; 4; 8; 16 ] else [ 1; 2; 4; 8; 16; 32; 64 ] in
  row "  %-4s %-12s %-12s %-12s %-14s@." "k" "initial" "max-size" "final"
    "match-time";
  List.iter
    (fun k ->
      let shape = Workload.Micro_gen.balanced_shape k in
      let g = Workload.Micro_gen.balanced_neighbourhood k in
      let dts =
        Shex.Neigh.of_node Workload.Micro_gen.focus g
      in
      let max_size = ref (Shex.Rse.size shape) in
      let final =
        List.fold_left
          (fun e dt ->
            let e' = Shex.Deriv.deriv dt e in
            max_size := max !max_size (Shex.Rse.size e');
            e')
          shape dts
      in
      assert (Shex.Rse.nullable final);
      let t =
        time_per_run (fun () ->
            Shex.Deriv.matches Workload.Micro_gen.focus g shape)
      in
      observe (fun () ->
          Shex.Deriv.matches
            ~instr:(Shex.Deriv.instruments (tele ()))
            Workload.Micro_gen.focus g shape);
      jrow
        [ ("k", jint k); ("initial", jint (Shex.Rse.size shape));
          ("max_size", jint !max_size);
          ("final", jint (Shex.Rse.size final));
          ("match_us", jflt (us t)) ];
      row "  %-4d %-12d %-12d %-12d %11.2f us@." k (Shex.Rse.size shape)
        !max_size (Shex.Rse.size final) (us t))
    sizes;
  row
    "@.  Expectation (\xc2\xa76, Example 10): consuming an a-arc leaves a \
     pending b-obligation,@.  so the intermediate expression grows with \
     the number of open obligations.@."

(* ------------------------------------------------------------------ *)
(* E3: whole-graph validation throughput                               *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header
    "E3  Schema validation throughput \xe2\x80\x94 recursive Person schema \
     (Examples 1/14), FOAF portals";
  let sizes =
    if !quick then [ 100; 300; 1000 ] else [ 100; 300; 1000; 3000; 10000 ]
  in
  let schema, _person = Workload.Foaf_gen.person_schema () in
  row "  %-7s %-8s %-8s %-9s %-12s %-14s@." "persons" "triples" "valid"
    "typed" "total" "per-person";
  List.iter
    (fun n ->
      let profile =
        { Workload.Foaf_gen.n_persons = n;
          invalid_fraction = 0.1;
          knows_degree = 3;
          seed = 7 }
      in
      let { Workload.Foaf_gen.graph; valid; _ } =
        Workload.Foaf_gen.generate profile
      in
      let typed = ref 0 in
      let t =
        time_per_run ~budget:0.3 (fun () ->
            let session = Shex.Validate.session schema graph in
            let typing = Shex.Validate.validate_graph session in
            typed := Shex.Typing.cardinal typing)
      in
      assert (!typed = List.length valid);
      observe (fun () ->
          let session =
            Shex.Validate.session ~telemetry:(tele ()) schema graph
          in
          Shex.Validate.validate_graph session);
      jrow
        [ ("persons", jint n); ("triples", jint (Rdf.Graph.cardinal graph));
          ("valid", jint (List.length valid)); ("typed", jint !typed);
          ("total_ms", jflt (ms t));
          ("per_person_us", jflt (us (t /. float_of_int n))) ];
      row "  %-7d %-8d %-8d %-9d %9.2f ms %11.2f us@." n
        (Rdf.Graph.cardinal graph)
        (List.length valid) !typed (ms t)
        (us (t /. float_of_int n)))
    sizes;
  row
    "@.  Expectation: linear scaling \xe2\x80\x94 per-person cost roughly \
     constant as the portal grows@.  (each neighbourhood is bounded; \
     recursion is resolved once per node by the fixpoint).@."

(* ------------------------------------------------------------------ *)
(* E4: SORBE counting matcher vs generic derivatives                   *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header
    "E4  SORBE counting matcher (\xc2\xa78 future work) vs generic \
     derivatives \xe2\x80\x94 fan-out sweep";
  let fans = if !quick then [ 1; 4; 16; 64 ] else [ 1; 4; 16; 64; 128; 256 ] in
  row "  %-5s %-8s %-14s %-14s %-8s@." "f" "triples" "derivatives"
    "counting" "ratio";
  List.iter
    (fun f ->
      let shape = Workload.Micro_gen.wide_shape f in
      let g = Workload.Micro_gen.wide_neighbourhood f in
      let sorbe =
        match Shex.Sorbe.of_rse shape with
        | Some s -> s
        | None -> failwith "wide_shape must be SORBE"
      in
      let focus = Workload.Micro_gen.focus in
      assert (
        Bool.equal
          (Shex.Deriv.matches focus g shape)
          (Shex.Sorbe.matches focus g sorbe));
      let t_deriv = time_per_run (fun () -> Shex.Deriv.matches focus g shape) in
      let t_sorbe = time_per_run (fun () -> Shex.Sorbe.matches focus g sorbe) in
      observe (fun () ->
          ignore
            (Shex.Deriv.matches
               ~instr:(Shex.Deriv.instruments (tele ()))
               focus g shape);
          Shex.Sorbe.matches
            ~instr:(Shex.Sorbe.instruments (tele ()))
            focus g sorbe);
      jrow
        [ ("fan", jint f); ("triples", jint (Rdf.Graph.cardinal g));
          ("derivatives_us", jflt (us t_deriv));
          ("counting_us", jflt (us t_sorbe)) ];
      row "  %-5d %-8d %11.2f us %11.2f us %7.1fx@." f (Rdf.Graph.cardinal g)
        (us t_deriv) (us t_sorbe)
        (t_deriv /. t_sorbe))
    fans;
  row
    "@.  Expectation: the generic matcher rebuilds an O(f)-size \
     expression per consumed triple@.  (O(f\xc2\xb2) total), while counting \
     is O(f) per triple lookup-free \xe2\x80\x94 the gap widens with f.@."

(* ------------------------------------------------------------------ *)
(* E5: simplification ablation                                         *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header
    "E5  Ablation of derivative simplification: raw vs ACI vs \
     ACI+factoring";
  let focus = Workload.Micro_gen.focus in
  let max_size ctors shape dts =
    let mx = ref (Shex.Rse.size shape) in
    let _ =
      List.fold_left
        (fun e dt ->
          let e' = Shex.Deriv.deriv ~ctors dt e in
          mx := max !mx (Shex.Rse.size e');
          e')
        shape dts
    in
    !mx
  in
  row "  -- Example 5 shape (raw constructors blow up even here) --@.";
  let sizes = if !quick then [ 2; 4; 6; 8 ] else [ 2; 4; 6; 8; 10; 12 ] in
  row "  %-4s %-12s %-12s %-14s %-14s@." "n" "smart-size" "raw-size" "smart"
    "raw";
  List.iter
    (fun n ->
      let shape = Workload.Micro_gen.example5_shape () in
      let g = Workload.Micro_gen.example5_neighbourhood n in
      let dts = Shex.Neigh.of_node focus g in
      let smart_size = max_size Shex.Rse.smart_ctors shape dts in
      let raw_size = max_size Shex.Rse.raw_ctors shape dts in
      let t_smart = time_per_run (fun () -> Shex.Deriv.matches focus g shape) in
      let t_raw =
        time_per_run (fun () ->
            Shex.Deriv.matches ~ctors:Shex.Rse.raw_ctors focus g shape)
      in
      observe (fun () ->
          Shex.Deriv.matches
            ~instr:(Shex.Deriv.instruments (tele ()))
            focus g shape);
      jrow
        [ ("n", jint n); ("smart_size", jint smart_size);
          ("raw_size", jint raw_size); ("smart_us", jflt (us t_smart));
          ("raw_us", jflt (us t_raw)) ];
      row "  %-4d %-12d %-12d %11.2f us %11.2f us@." n smart_size raw_size
        (us t_smart) (us t_raw))
    sizes;
  row
    "@.  -- Balance checker (factoring is what keeps sizes linear) --@.";
  let ks = if !quick then [ 2; 4; 6 ] else [ 2; 4; 6; 8; 10 ] in
  row "  %-4s %-14s %-14s %-14s@." "k" "factored-size" "aci-size"
    "raw-size";
  List.iter
    (fun k ->
      let shape = Workload.Micro_gen.balanced_shape k in
      let dts =
        Shex.Neigh.of_node focus (Workload.Micro_gen.balanced_neighbourhood k)
      in
      (* The unfactored variants explode; beyond these caps they
         exhaust memory, which is the point of the ablation. *)
      let aci =
        if k <= 8 then
          string_of_int (max_size Shex.Rse.aci_ctors shape dts)
        else "(>10^8)"
      in
      let raw =
        if k <= 6 then
          string_of_int (max_size Shex.Rse.raw_ctors shape dts)
        else "(>10^8)"
      in
      jrow
        [ ("k", jint k);
          ("factored_size", jint (max_size Shex.Rse.smart_ctors shape dts));
          ("aci_size", jstr aci); ("raw_size", jstr raw) ];
      row "  %-4d %-14d %-14s %-14s@." k
        (max_size Shex.Rse.smart_ctors shape dts)
        aci raw)
    ks;
  row
    "@.  Expectation: raw constructors explode exponentially even on \
     Example 5; ACI alone@.  still explodes on counting shapes; \
     ACI+factoring stays linear in open obligations.@."

(* ------------------------------------------------------------------ *)
(* E6: SPARQL translation vs native derivatives                        *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header
    "E6  SPARQL translation (\xc2\xa73) vs native derivatives \xe2\x80\x94 \
     non-recursive Person shape";
  let foaf l = Rdf.Iri.of_string_exn ("http://xmlns.com/foaf/0.1/" ^ l) in
  let shape =
    Shex.Rse.and_all
      [ Shex.Rse.arc_v (Shex.Value_set.Pred (foaf "age"))
          Shex.Value_set.xsd_integer;
        Shex.Rse.plus
          (Shex.Rse.arc_v (Shex.Value_set.Pred (foaf "name"))
             Shex.Value_set.xsd_string);
        Shex.Rse.star
          (Shex.Rse.arc_v (Shex.Value_set.Pred (foaf "knows"))
             (Shex.Value_set.Obj_kind Shex.Value_set.Iri_kind)) ]
  in
  let sizes = if !quick then [ 100; 300 ] else [ 100; 300; 1000; 3000 ] in
  row "  %-7s %-8s %-7s %-12s %-12s %-8s %-6s@." "persons" "triples"
    "match" "derivatives" "SPARQL" "ratio" "agree";
  List.iter
    (fun n ->
      let profile =
        { Workload.Foaf_gen.n_persons = n;
          invalid_fraction = 0.15;
          knows_degree = 2;
          seed = 99 }
      in
      let { Workload.Foaf_gen.graph; _ } = Workload.Foaf_gen.generate profile in
      let deriv_nodes () =
        List.filter
          (fun node -> Shex.Deriv.matches node graph shape)
          (Rdf.Graph.subjects graph)
      in
      let sparql_nodes () =
        match Sparql.Gen.matching_nodes graph shape with
        | Ok nodes -> nodes
        | Error msg -> failwith msg
      in
      let d = deriv_nodes () and s = sparql_nodes () in
      let agree = List.sort Rdf.Term.compare d = s in
      let t_deriv = time_per_run ~budget:0.3 (fun () -> deriv_nodes ()) in
      let t_sparql = time_per_run ~budget:0.3 (fun () -> sparql_nodes ()) in
      observe (fun () ->
          let instr = Shex.Deriv.instruments (tele ()) in
          List.filter
            (fun node -> Shex.Deriv.matches ~instr node graph shape)
            (Rdf.Graph.subjects graph));
      jrow
        [ ("persons", jint n); ("triples", jint (Rdf.Graph.cardinal graph));
          ("matching", jint (List.length d));
          ("derivatives_ms", jflt (ms t_deriv));
          ("sparql_ms", jflt (ms t_sparql)); ("agree", Json.Bool agree) ];
      row "  %-7d %-8d %-7d %9.2f ms %9.2f ms %7.1fx %-6b@." n
        (Rdf.Graph.cardinal graph)
        (List.length d) (ms t_deriv) (ms t_sparql)
        (t_sparql /. t_deriv) agree)
    sizes;
  row
    "@.  Expectation (\xc2\xa73): the verdicts agree, but the generated \
     query carries counting@.  sub-SELECTs and NOT-EXISTS scans, so the \
     SPARQL route costs a large constant factor@.  \xe2\x80\x94 and \
     recursive shapes cannot be translated at all.@."

(* ------------------------------------------------------------------ *)
(* E8: engine comparison end-to-end                                    *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header
    "E8  End-to-end engine comparison \xe2\x80\x94 derivatives vs \
     auto-compiled counting (recursive Person schema)";
  let sizes = if !quick then [ 100; 1000 ] else [ 100; 1000; 10000 ] in
  let schema, _ = Workload.Foaf_gen.person_schema () in
  row "  %-7s %-8s %-12s %-12s %-7s@." "persons" "triples" "derivatives"
    "auto" "ratio";
  List.iter
    (fun n ->
      let profile =
        { Workload.Foaf_gen.n_persons = n;
          invalid_fraction = 0.1;
          knows_degree = 3;
          seed = 7 }
      in
      let { Workload.Foaf_gen.graph; _ } =
        Workload.Foaf_gen.generate profile
      in
      let run engine =
        let typed = ref 0 in
        let t =
          time_per_run ~budget:0.3 (fun () ->
              let session = Shex.Validate.session ~engine schema graph in
              typed := Shex.Typing.cardinal (Shex.Validate.validate_graph session))
        in
        (t, !typed)
      in
      let t_deriv, n_deriv = run Shex.Validate.Derivatives in
      let t_auto, n_auto = run Shex.Validate.Auto in
      assert (n_deriv = n_auto);
      observe (fun () ->
          let session =
            Shex.Validate.session ~engine:Shex.Validate.Auto
              ~telemetry:(tele ()) schema graph
          in
          Shex.Validate.validate_graph session);
      jrow
        [ ("persons", jint n); ("triples", jint (Rdf.Graph.cardinal graph));
          ("derivatives_ms", jflt (ms t_deriv)); ("auto_ms", jflt (ms t_auto)) ];
      row "  %-7d %-8d %9.2f ms %9.2f ms %6.1fx@." n
        (Rdf.Graph.cardinal graph) (ms t_deriv) (ms t_auto)
        (t_deriv /. t_auto))
    sizes;
  row
    "@.  Expectation: the Person shape is single-occurrence, so Auto \
     compiles it once to the@.  counting matcher; the end-to-end gap is \
     smaller than E4's per-match gap because the@.  fixpoint bookkeeping \
     and graph indexing are shared.@."

(* ------------------------------------------------------------------ *)
(* E9: compiled derivative automata                                    *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header
    "E9  Compiled derivative automata (hash-consed RSEs + lazy DFA) vs \
     derivatives vs SORBE";
  row "  -- Whole-portal validation (recursive Person schema): the table \
       is shared across nodes --@.";
  let sizes = if !quick then [ 100; 1000 ] else [ 100; 1000; 10000 ] in
  let schema, _ = Workload.Foaf_gen.person_schema () in
  row "  %-7s %-8s %-12s %-12s %-8s %-26s@." "persons" "triples"
    "derivatives" "compiled" "speedup" "cache (last run)";
  List.iter
    (fun n ->
      let profile =
        { Workload.Foaf_gen.n_persons = n;
          invalid_fraction = 0.1;
          knows_degree = 3;
          seed = 7 }
      in
      let { Workload.Foaf_gen.graph; _ } =
        Workload.Foaf_gen.generate profile
      in
      let run engine =
        let typed = ref 0 and stats = ref None in
        let t =
          time_per_run ~budget:0.3 (fun () ->
              let session = Shex.Validate.session ~engine schema graph in
              typed := Shex.Typing.cardinal (Shex.Validate.validate_graph session);
              stats := Shex.Validate.compiled_stats session)
        in
        (t, !typed, !stats)
      in
      let t_deriv, n_deriv, _ = run Shex.Validate.Derivatives in
      let t_comp, n_comp, stats = run Shex.Validate.Compiled in
      assert (n_deriv = n_comp);
      let cache =
        match stats with
        | None -> "-"
        | Some s ->
            let steps = s.Shex.Validate.hits + s.Shex.Validate.misses in
            Printf.sprintf "%d st %d sym %4.1f%% cached"
              s.Shex.Validate.states s.Shex.Validate.symbols
              (100.0 *. float_of_int s.Shex.Validate.hits
              /. float_of_int (max 1 steps))
      in
      observe (fun () ->
          let session =
            Shex.Validate.session ~engine:Shex.Validate.Compiled
              ~telemetry:(tele ()) schema graph
          in
          ignore (Shex.Validate.validate_graph session);
          (* [metrics] folds the automaton cache counters into the
             experiment registry alongside the engine counters. *)
          Shex.Validate.metrics session);
      jrow
        [ ("persons", jint n); ("triples", jint (Rdf.Graph.cardinal graph));
          ("derivatives_ms", jflt (ms t_deriv));
          ("compiled_ms", jflt (ms t_comp)); ("cache", jstr cache) ];
      row "  %-7d %-8d %9.2f ms %9.2f ms %7.1fx %-26s@." n
        (Rdf.Graph.cardinal graph) (ms t_deriv) (ms t_comp)
        (t_deriv /. t_comp) cache)
    sizes;
  row
    "@.  -- Repeated matching of wide SORBE neighbourhoods (E4's regime): \
     per-match cost --@.";
  let fans = if !quick then [ 4; 16; 64 ] else [ 4; 16; 64; 128; 256 ] in
  row "  %-5s %-8s %-14s %-14s %-14s %-20s@." "f" "triples" "derivatives"
    "compiled" "counting" "cache";
  List.iter
    (fun f ->
      let shape = Workload.Micro_gen.wide_shape f in
      let g = Workload.Micro_gen.wide_neighbourhood f in
      let focus = Workload.Micro_gen.focus in
      let auto = Shex_automaton.Dfa.compile shape in
      let sorbe = Option.get (Shex.Sorbe.of_rse shape) in
      assert (
        Bool.equal
          (Shex.Deriv.matches focus g shape)
          (Shex_automaton.Dfa.matches auto focus g));
      let t_deriv = time_per_run (fun () -> Shex.Deriv.matches focus g shape) in
      let t_comp =
        time_per_run (fun () -> Shex_automaton.Dfa.matches auto focus g)
      in
      let t_sorbe = time_per_run (fun () -> Shex.Sorbe.matches focus g sorbe) in
      let s = Shex_automaton.Dfa.stats auto in
      jrow
        [ ("fan", jint f); ("triples", jint (Rdf.Graph.cardinal g));
          ("derivatives_us", jflt (us t_deriv));
          ("compiled_us", jflt (us t_comp)); ("counting_us", jflt (us t_sorbe)) ];
      row "  %-5d %-8d %11.2f us %11.2f us %11.2f us %-20s@." f
        (Rdf.Graph.cardinal g) (us t_deriv) (us t_comp) (us t_sorbe)
        (Format.asprintf "%a" Shex_automaton.Dfa.pp_stats s))
    fans;
  row
    "@.  Expectation: compiling once and stepping a memoised transition \
     table removes the@.  per-triple expression rebuilding of the \
     derivative engine; with the table warm the@.  compiled matcher \
     approaches the counting matcher's linear scan while staying@.  fully \
     general (negation, non-disjoint predicates, nested stars).@."

(* ------------------------------------------------------------------ *)
(* E7: paper worked examples                                           *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7  Paper worked examples re-checked";
  let ex name = Rdf.Iri.of_string_exn ("http://example.org/" ^ name) in
  let node name = Rdf.Term.Iri (ex name) in
  let num k = Rdf.Term.int k in
  let t3 s p o = Rdf.Triple.make (node s) (ex p) o in
  let arc_num p values =
    Shex.Rse.arc_v
      (Shex.Value_set.Pred (ex p))
      (Shex.Value_set.obj_terms (List.map num values))
  in
  let example5 =
    Shex.Rse.and_ (arc_num "a" [ 1 ]) (Shex.Rse.star (arc_num "b" [ 1; 2 ]))
  in
  let g8 =
    Rdf.Graph.of_list
      [ t3 "n" "a" (num 1); t3 "n" "b" (num 1); t3 "n" "b" (num 2) ]
  in
  let g12 =
    Rdf.Graph.of_list
      [ t3 "n" "a" (num 1); t3 "n" "a" (num 2); t3 "n" "b" (num 1) ]
  in
  let check name cond =
    jrow [ ("check", jstr name); ("pass", Json.Bool cond) ];
    row "  %-66s %s@." name (if cond then "PASS" else "FAIL")
  in
  check "Example 3: a 3-triple graph has 2^3 = 8 decompositions"
    (List.length (Rdf.Graph.decompositions g8) = 8);
  check "Example 7: Sn[[e]] has exactly the 4 listed graphs"
    (match Shex.Semantics.language ~node:(node "n") ~max_card:3 example5 with
    | Ok gs -> List.length gs = 4
    | Error _ -> false);
  check "Example 8: backtracking accepts {a1, b1, b2}"
    (Shex.Backtrack.matches (node "n") g8 example5);
  check "Example 9: \xe2\x88\x82\xe2\x9f\xa8n,a,1\xe2\x9f\xa9(e) = (b\xe2\x86\x92{1,2})*"
    (Shex.Rse.equal
       (Shex.Deriv.deriv
          (Shex.Neigh.out (t3 "n" "a" (num 1)))
          example5)
       (Shex.Rse.star (arc_num "b" [ 1; 2 ])));
  check "Example 10: the balance checker's derivative grows"
    (let e = Workload.Micro_gen.balanced_shape 2 in
     Shex.Rse.size
       (Shex.Deriv.deriv
          (Shex.Neigh.out
             (Rdf.Triple.make Workload.Micro_gen.focus
                (Rdf.Iri.of_string_exn "http://example.org/a")
                (num 1)))
          e)
     > Shex.Rse.size e);
  check "Example 11: derivatives accept {a1, b1, b2}"
    (Shex.Deriv.matches (node "n") g8 example5);
  check "Example 12: derivatives reject {a1, a2, b1}"
    (not (Shex.Deriv.matches (node "n") g12 example5));
  let example2_graph =
    Turtle.Parse.parse_graph_exn
      "@prefix foaf: <http://xmlns.com/foaf/0.1/> .\n\
       @prefix : <http://example.org/> .\n\
       :john foaf:age 23; foaf:name \"John\"; foaf:knows :bob .\n\
       :bob foaf:age 34; foaf:name \"Bob\", \"Robert\" .\n\
       :mary foaf:age 50, 65 .\n"
  in
  let schema, person = Workload.Foaf_gen.person_schema () in
  let session =
    Shex.Validate.session ~telemetry:(tele ()) schema example2_graph
  in
  check "Examples 1-2/14: john and bob are Persons, mary is not"
    (Shex.Validate.check_bool session (node "john") person
    && Shex.Validate.check_bool session (node "bob") person
    && not (Shex.Validate.check_bool session (node "mary") person));
  check "Example 4: the paper's SPARQL ASK finds a Person in Example 2"
    (match Sparql.Eval.run example2_graph (Sparql.Gen.example4_query ()) with
    | `Boolean b -> b
    | `Solutions _ -> false)

(* ------------------------------------------------------------------ *)
(* E10: telemetry overhead                                             *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header
    "E10 Telemetry overhead \xe2\x80\x94 portal validation with the \
     registry disabled vs enabled";
  let sizes = if !quick then [ 100; 300; 1000 ] else [ 100; 300; 1000; 3000 ] in
  let schema, _ = Workload.Foaf_gen.person_schema () in
  (* The enabled arm reuses one registry across repetitions: counters
     just keep accumulating, so no allocation shows up in the timing.
     In JSON mode it is the experiment registry, so the snapshot of a
     fully-instrumented portal run lands in the report. *)
  let enabled_reg =
    if recording () then tele () else Telemetry.create ()
  in
  row "  %-7s %-8s %-12s %-12s %-10s@." "persons" "triples" "disabled"
    "enabled" "overhead";
  List.iter
    (fun n ->
      let profile =
        { Workload.Foaf_gen.n_persons = n;
          invalid_fraction = 0.1;
          knows_degree = 3;
          seed = 7 }
      in
      let { Workload.Foaf_gen.graph; _ } =
        Workload.Foaf_gen.generate profile
      in
      let run telemetry =
        time_per_run ~budget:0.3 (fun () ->
            let session = Shex.Validate.session ?telemetry schema graph in
            Shex.Validate.validate_graph session)
      in
      Telemetry.Span.time (Telemetry.span (tele ()) "e10_measure") (fun () ->
          let t_off = run None in
          let t_on = run (Some enabled_reg) in
          let overhead = 100.0 *. (t_on -. t_off) /. t_off in
          jrow
            [ ("persons", jint n);
              ("triples", jint (Rdf.Graph.cardinal graph));
              ("disabled_ms", jflt (ms t_off)); ("enabled_ms", jflt (ms t_on));
              ("enabled_overhead_pct", jflt overhead) ];
          row "  %-7d %-8d %9.2f ms %9.2f ms %+8.1f%%@." n
            (Rdf.Graph.cardinal graph) (ms t_off) (ms t_on) overhead))
    sizes;
  row
    "@.  Expectation: the disabled path is one load-and-branch per \
     instrumentation point, so@.  the \"disabled\" column matches \
     pre-instrumentation E3 timings within noise (<5%%);@.  enabling \
     the registry costs a few percent (counter bumps plus two \
     expression-size@.  walks per derivative step).@."

(* ------------------------------------------------------------------ *)
(* E11: tracing tax                                                    *)
(* ------------------------------------------------------------------ *)

let e11 () =
  header
    "E11 Tracing tax \xe2\x80\x94 portal validation: tracing disabled vs \
     span-only vs full residual capture";
  let sizes = if !quick then [ 100; 300 ] else [ 100; 300; 1000; 3000 ] in
  let schema, _ = Workload.Foaf_gen.person_schema () in
  (* Each traced arm reuses one registry with a discarding sink, so the
     timings isolate the event-construction cost itself: spans-only
     pays per-event field lists, full capture additionally renders the
     residual expression before and after every derivative step. *)
  let drop (_ : Telemetry.event) = () in
  let span_reg = Telemetry.create () in
  Telemetry.set_sink span_reg (Some drop);
  let resid_reg = Telemetry.create () in
  Telemetry.set_sink resid_reg (Some drop);
  Telemetry.set_residuals resid_reg true;
  row "  %-7s %-8s %-12s %-12s %-12s %-10s %-10s@." "persons" "triples"
    "disabled" "spans" "residuals" "span-tax" "resid-tax";
  List.iter
    (fun n ->
      let profile =
        { Workload.Foaf_gen.n_persons = n;
          invalid_fraction = 0.1;
          knows_degree = 3;
          seed = 7 }
      in
      let { Workload.Foaf_gen.graph; _ } =
        Workload.Foaf_gen.generate profile
      in
      let run telemetry =
        time_per_run ~budget:0.3 (fun () ->
            let session = Shex.Validate.session ?telemetry schema graph in
            ignore (Shex.Validate.validate_graph session))
      in
      let t_off = run None in
      let t_span = run (Some span_reg) in
      let t_resid = run (Some resid_reg) in
      let tax t = 100.0 *. (t -. t_off) /. t_off in
      observe (fun () ->
          let session =
            Shex.Validate.session ~telemetry:(tele ()) schema graph
          in
          Shex.Validate.validate_graph session);
      jrow
        [ ("persons", jint n); ("triples", jint (Rdf.Graph.cardinal graph));
          ("disabled_ms", jflt (ms t_off)); ("spans_ms", jflt (ms t_span));
          ("residuals_ms", jflt (ms t_resid));
          ("span_tax_pct", jflt (tax t_span));
          ("residual_tax_pct", jflt (tax t_resid)) ];
      row "  %-7d %-8d %9.2f ms %9.2f ms %9.2f ms %+8.1f%% %+8.1f%%@." n
        (Rdf.Graph.cardinal graph) (ms t_off) (ms t_span) (ms t_resid)
        (tax t_span) (tax t_resid))
    sizes;
  row
    "@.  Expectation: with a sink installed every check span and \
     derivative step allocates an@.  event, so the span arm costs tens \
     of percent; full residual capture additionally@.  pretty-prints \
     two expressions per step and multiplies the cost again.  With \
     tracing@.  disabled the same points cost one branch each \xe2\x80\x94 \
     E10's <5%% bound still holds.@."

(* ------------------------------------------------------------------ *)
(* E12: domain-parallel bulk validation                                *)
(* ------------------------------------------------------------------ *)

(* Parallel arms to compare against sequential (overridable with
   --domains N). *)
let e12_domains = ref [ 2; 4 ]

let e12 () =
  header
    "E12 Domain-parallel bulk validation \xe2\x80\x94 flat portal shape \
     map, sequential vs N domains";
  let sizes =
    if !quick then [ 300; 1000 ] else [ 1000; 3000; 10000 ]
  in
  (* The reference-free Person shape: every focus node's check is
     independent, so the parallel run does exactly the sequential
     run's work — merged telemetry totals must be identical, not just
     verdicts.  (The recursive schema re-derives cross-shard [knows]
     targets per shard, which changes counters while preserving
     verdicts.) *)
  let schema, person = Workload.Foaf_gen.flat_person_schema () in
  row "  %-7s %-8s %-8s %-12s %-9s %-10s@." "persons" "domains" "conform"
    "wall" "speedup" "identical";
  List.iter
    (fun n ->
      let profile =
        { Workload.Foaf_gen.n_persons = n;
          invalid_fraction = 0.1;
          knows_degree = 3;
          seed = 7 }
      in
      let { Workload.Foaf_gen.graph; valid; invalid } =
        Workload.Foaf_gen.generate profile
      in
      let associations =
        List.map (fun p -> (p, person)) (valid @ invalid)
      in
      (* One untimed instrumented run per arm for the identity check;
         timing runs stay uninstrumented (as everywhere else). *)
      let observed domains =
        let reg = Telemetry.create () in
        let session =
          Shex.Validate.session ~telemetry:reg ~domains schema graph
        in
        let report = Shex.Report.run session associations in
        (Json.to_string (Shex.Report.to_json report),
         Json.to_string (Telemetry.to_json (Shex.Validate.metrics session)),
         List.length (Shex.Report.conformant report))
      in
      let time_arm domains =
        wall_per_run ~budget:0.3 (fun () ->
            let session = Shex.Validate.session ~domains schema graph in
            ignore (Shex.Report.run session associations))
      in
      let seq_report, seq_tele, conform = observed 1 in
      assert (conform = List.length valid);
      let t_seq = time_arm 1 in
      let emit domains t identical =
        jrow
          [ ("persons", jint n); ("domains", jint domains);
            ("conformant", jint conform); ("wall_ms", jflt (ms t));
            ("speedup", jflt (t_seq /. t));
            ("identical", Json.Bool identical) ];
        row "  %-7d %-8d %-8d %9.2f ms %8.2fx %-10b@." n domains conform
          (ms t) (t_seq /. t) identical
      in
      emit 1 t_seq true;
      List.iter
        (fun d ->
          let par_report, par_tele, _ = observed d in
          let identical =
            String.equal par_report seq_report
            && String.equal par_tele seq_tele
          in
          (* The acceptance criterion: parallel validation must be
             observationally sequential. *)
          if not identical then
            failwith
              (Printf.sprintf
                 "E12: %d-domain run differs from sequential (report %b, \
                  telemetry %b)"
                 d
                 (String.equal par_report seq_report)
                 (String.equal par_tele seq_tele));
          emit d (time_arm d) identical)
        !e12_domains)
    sizes;
  row
    "@.  Expectation: verdicts, reports and merged telemetry totals are \
     byte-identical across@.  domain counts (asserted above); wall-clock \
     speedup tracks the physical cores available@.  \xe2\x80\x94 near-linear \
     on a multicore host, absent on a single-core container.@."

(* ------------------------------------------------------------------ *)
(* E13: differential fuzz campaign                                     *)
(* ------------------------------------------------------------------ *)

let e13 () =
  header
    "E13 Differential fuzz campaign \xe2\x80\x94 every engine arm vs the \
     derivative reference over seeded random workloads";
  let count = if !smoke then 50 else if !quick then 300 else 1000 in
  row "  %-10s %-7s %-12s %-9s %-11s@." "mode" "seeds" "wall" "seeds/s"
    "divergences";
  List.iter
    (fun (name, mode) ->
      let t0 = Unix.gettimeofday () in
      let summary = Oracle.run_campaign ~mode ~first_seed:0 ~count () in
      let dt = Unix.gettimeofday () -. t0 in
      (* The acceptance criterion: a campaign over the fixed seed range
         must find nothing — any divergence is a cross-engine bug. *)
      (match summary.Oracle.findings with
      | [] -> ()
      | f :: _ ->
          failwith
            (Printf.sprintf "E13: %s-mode divergence at seed %d: %s" name
               f.Oracle.seed f.Oracle.divergence.Oracle.detail));
      jrow
        [ ("mode", jstr name); ("seeds", jint count);
          ("wall_ms", jflt (ms dt));
          ("seeds_per_s", jflt (float_of_int count /. dt));
          ("divergences", jint 0) ];
      row "  %-10s %-7d %9.1f ms %9.0f %-11d@." name count (ms dt)
        (float_of_int count /. dt)
        0)
    [ ("surface", Workload.Rand_gen.Surface);
      ("extended", Workload.Rand_gen.Extended) ];
  row
    "@.  Expectation: zero divergences \xe2\x80\x94 the arms (backtracking, \
     SORBE, compiled automata,@.  2- and 4-domain bulk, SPARQL on its \
     fragment) agree with the derivative reference@.  on verdicts and \
     blame sets across the whole seed range.@."

(* ------------------------------------------------------------------ *)
(* E14: incremental revalidation vs full re-run                        *)
(* ------------------------------------------------------------------ *)

let percentile p latencies =
  let a = Array.of_list latencies in
  Array.sort compare a;
  let k = Array.length a in
  let idx = int_of_float (Float.round (p /. 100. *. float_of_int (k - 1))) in
  a.(max 0 (min (k - 1) idx))

let e14 () =
  header
    "E14 Incremental revalidation \xe2\x80\x94 steady-state edit stream on \
     the FOAF portal vs full re-run";
  let sizes =
    if !smoke then [ 100 ]
    else if !quick then [ 100; 300; 1000 ]
    else [ 100; 300; 1000; 3000 ]
  in
  let schema, person = Workload.Foaf_gen.person_schema () in
  let foaf_name = Rdf.Iri.of_string_exn "http://xmlns.com/foaf/0.1/name" in
  row "  %-10s %-7s %-8s %-6s %-13s %-13s %-13s %-9s@." "portal" "persons"
    "triples" "edits" "inc-p50" "inc-p99" "full-median" "speedup";
  let measure ~regime ~generate n =
      let profile =
        { Workload.Foaf_gen.n_persons = n;
          invalid_fraction = 0.1;
          knows_degree = 3;
          seed = 7 }
      in
      let { Workload.Foaf_gen.graph; valid; invalid } = generate profile in
      let everyone = valid @ invalid in
      let inc = Shex_incremental.Session.create schema graph in
      (* Warm the memo: the steady state a long-lived portal session
         sits in. *)
      List.iter
        (fun p -> ignore (Shex_incremental.Session.check_bool inc p person))
        everyone;
      (* The edit stream: for each target person, drop every foaf:name
         arc (they stop conforming \xe2\x80\x94 name+ needs one), then put
         them back.  Each apply re-solves only the dependency frontier;
         the graph returns to its original state at the end. *)
      let targets =
        let k = if !smoke then 5 else 25 in
        List.filteri (fun i _ -> i < k) valid
      in
      let latencies = ref [] in
      let edits = ref 0 in
      let timed_apply delta =
        let t0 = Unix.gettimeofday () in
        let stats = Shex_incremental.Session.apply inc delta in
        latencies := (Unix.gettimeofday () -. t0) :: !latencies;
        incr edits;
        stats
      in
      List.iter
        (fun p ->
          let names =
            Rdf.Graph.objects_of p foaf_name
              (Shex_incremental.Session.graph inc)
          in
          let triples = List.map (fun o -> Rdf.Triple.make p foaf_name o) names in
          let gone = timed_apply (Shex_incremental.Session.delete triples) in
          assert (gone.applied = List.length triples);
          assert (not (Shex_incremental.Session.check_bool inc p person));
          let back = timed_apply (Shex_incremental.Session.insert triples) in
          assert (
            List.exists
              (fun (p', _, ok) -> Rdf.Term.equal p p' && ok)
              back.changed))
        targets;
      (* Identity: after the stream the incremental memo must agree
         with a from-scratch session on every person (the edits-arm
         property, asserted here on the portal workload). *)
      let fresh =
        Shex.Validate.session schema (Shex_incremental.Session.graph inc)
      in
      List.iter
        (fun p ->
          assert (
            Bool.equal
              (Shex_incremental.Session.check_bool inc p person)
              (Shex.Validate.check_bool fresh p person)))
        everyone;
      (* The baseline a portal without incrementality pays per edit:
         re-validate every person from scratch. *)
      let t_full =
        wall_per_run ~budget:0.3 (fun () ->
            let s = Shex.Validate.session schema
                (Shex_incremental.Session.graph inc)
            in
            List.iter
              (fun p -> ignore (Shex.Validate.check_bool s p person))
              everyone)
      in
      let p50 = percentile 50. !latencies
      and p99 = percentile 99. !latencies in
      observe (fun () ->
          let obs =
            Shex_incremental.Session.create ~telemetry:(tele ()) schema graph
          in
          List.iter
            (fun p -> ignore (Shex_incremental.Session.check_bool obs p person))
            everyone;
          List.iter
            (fun p ->
              let names = Rdf.Graph.objects_of p foaf_name graph in
              let triples =
                List.map (fun o -> Rdf.Triple.make p foaf_name o) names
              in
              ignore
                (Shex_incremental.Session.apply obs
                   (Shex_incremental.Session.delete triples));
              ignore
                (Shex_incremental.Session.apply obs
                   (Shex_incremental.Session.insert triples)))
            (List.filteri (fun i _ -> i < 5) valid));
      jrow
        [ ("portal", jstr regime);
          ("persons", jint n); ("triples", jint (Rdf.Graph.cardinal graph));
          ("edits", jint !edits);
          ("inc_p50_us", jflt (us p50));
          ("inc_p99_us", jflt (us p99));
          ("full_median_ms", jflt (ms t_full));
          ("speedup_median", jflt (t_full /. p50)) ];
      row "  %-10s %-7d %-8d %-6d %10.2f us %10.2f us %10.2f ms %8.0fx@."
        regime n
        (Rdf.Graph.cardinal graph)
        !edits (us p50) (us p99) (ms t_full)
        (t_full /. p50)
  in
  List.iter
    (measure ~regime:"clustered"
       ~generate:(Workload.Foaf_gen.generate_clustered ~community:10))
    sizes;
  (* The honest worst case: uniform knows at degree 3 form one giant
     strongly-connected component, so a single verdict flip cascades
     through most of the portal and the dependency frontier IS the
     portal — no sound incremental scheme can beat a full re-run
     there. *)
  measure ~regime:"uniform" ~generate:Workload.Foaf_gen.generate
    (List.nth sizes (min 1 (List.length sizes - 1)));
  row
    "@.  Expectation: with community structure the dependency frontier \
     of an edit is the@.  community, not the portal \xe2\x80\x94 per-edit \
     latency stays flat as the portal grows and@.  the median speedup \
     over full re-validation clears 5x at E3 scale.  Uniform knows@.  \
     (one giant component) are the worst case: most verdicts genuinely \
     flip per edit,@.  and incremental degenerates to \xe2\x89\x88 full \
     re-run cost.@."

(* ------------------------------------------------------------------ *)
(* E15: attribution overhead                                           *)
(* ------------------------------------------------------------------ *)

let e15 () =
  header
    "E15 Attribution overhead \xe2\x80\x94 portal validation (E3 workload): \
     plain vs telemetry vs per-shape profile";
  let sizes = if !quick then [ 100; 300 ] else [ 100; 300; 1000; 3000 ] in
  let schema, _ = Workload.Foaf_gen.person_schema () in
  (* Like E10: each instrumented arm reuses one registry across
     repetitions so instrument creation never lands in the timing.
     The profiled arm's labelled families just keep accumulating. *)
  let enabled_reg = Telemetry.create () in
  let profiled_reg = Telemetry.create () in
  row "  %-7s %-8s %-12s %-12s %-12s %-9s %-9s %-10s@." "persons" "triples"
    "disabled" "enabled" "profiled" "tele-tax" "prof-tax" "attributed";
  List.iter
    (fun n ->
      let profile =
        { Workload.Foaf_gen.n_persons = n;
          invalid_fraction = 0.1;
          knows_degree = 3;
          seed = 7 }
      in
      let { Workload.Foaf_gen.graph; _ } =
        Workload.Foaf_gen.generate profile
      in
      let run ?(profile = false) telemetry =
        time_per_run ~budget:0.3 (fun () ->
            let session =
              Shex.Validate.session ?telemetry ~profile schema graph
            in
            Shex.Validate.validate_graph session)
      in
      let t_off = run None in
      let t_on = run (Some enabled_reg) in
      let t_prof = run ~profile:true (Some profiled_reg) in
      (* The acceptance criterion: a fresh profiled session over the E3
         workload must attribute \xe2\x89\xa595% of its derivative steps
         to shapes.  The accounting is exact by construction (every
         evaluation charges its self-cost exactly once), so anything
         below that is an attribution bug, not noise. *)
      let coverage =
        let reg = Telemetry.create () in
        let session =
          Shex.Validate.session ~telemetry:reg ~profile:true schema graph
        in
        ignore (Shex.Validate.validate_graph session);
        Shex.Profile.step_coverage
          (Shex.Profile.of_snapshot (Shex.Validate.metrics session))
      in
      if coverage < 0.95 then
        failwith
          (Printf.sprintf
             "E15: profile attributes only %.1f%% of deriv_steps at %d \
              persons (acceptance bar: 95%%)"
             (100. *. coverage) n);
      let tax t = 100.0 *. (t -. t_off) /. t_off in
      observe (fun () ->
          let session =
            Shex.Validate.session ~telemetry:(tele ()) ~profile:true schema
              graph
          in
          ignore (Shex.Validate.validate_graph session);
          Shex.Validate.metrics session);
      jrow
        [ ("persons", jint n); ("triples", jint (Rdf.Graph.cardinal graph));
          ("disabled_ms", jflt (ms t_off)); ("enabled_ms", jflt (ms t_on));
          ("profiled_ms", jflt (ms t_prof));
          ("enabled_overhead_pct", jflt (tax t_on));
          ("profile_overhead_pct", jflt (tax t_prof));
          ("steps_attributed_pct", jflt (100. *. coverage)) ];
      row "  %-7d %-8d %9.2f ms %9.2f ms %9.2f ms %+7.1f%% %+7.1f%% %8.1f%%@."
        n
        (Rdf.Graph.cardinal graph)
        (ms t_off) (ms t_on) (ms t_prof) (tax t_on) (tax t_prof)
        (100. *. coverage))
    sizes;
  row
    "@.  Expectation: with [?profile] off the attribution points cost \
     the same single branch@.  as every other disabled instrument, so \
     the \"disabled\" column stays inside E10's <5%%@.  bound.  Profiled \
     runs additionally pay a hashtable probe and counter delta per \
     check@.  \xe2\x80\x94 a few percent on portal workloads, attributing \
     \xe2\x89\xa595%% of all derivative steps.@."

(* ------------------------------------------------------------------ *)
(* E16: observability-plane overhead                                   *)
(* ------------------------------------------------------------------ *)

let e16 () =
  header
    "E16 Observability-plane overhead \xe2\x80\x94 portal validation plain \
     vs obs-armed, plus the out-of-band per-tick and per-journal-record \
     costs";
  let sizes = if !quick then [ 100; 300 ] else [ 100; 300; 1000; 3000 ] in
  let schema, _ = Workload.Foaf_gen.person_schema () in
  (* The armed arm is E10's enabled arm: the obs plane adds no
     instrumentation points of its own — the daemon's window sampling
     and journal appends happen between requests, never inside a
     check.  Those out-of-band costs are what the tick/append columns
     price: one registry snapshot + ring push, and one cumulative
     record rendered + appended (flushed, fsync only on rotation). *)
  let armed_reg = Telemetry.create () in
  let window = Telemetry.Window.create ~interval_s:10. () in
  let journal_path = Filename.temp_file "e16_journal" ".jsonl" in
  let journal = Obs.Journal.create journal_path in
  row "  %-7s %-8s %-12s %-12s %-9s %-11s %-13s@." "persons" "triples"
    "plain" "obs-armed" "obs-tax" "tick" "append";
  List.iter
    (fun n ->
      let profile =
        { Workload.Foaf_gen.n_persons = n;
          invalid_fraction = 0.1;
          knows_degree = 3;
          seed = 7 }
      in
      let { Workload.Foaf_gen.graph; _ } =
        Workload.Foaf_gen.generate profile
      in
      let run telemetry =
        time_per_run ~budget:0.3 (fun () ->
            let session = Shex.Validate.session ?telemetry schema graph in
            Shex.Validate.validate_graph session)
      in
      let t_off = run None in
      let t_on = run (Some armed_reg) in
      let t_tick =
        wall_per_run ~budget:0.2 (fun () ->
            Telemetry.Window.observe window ~now:(Unix.gettimeofday ())
              (Telemetry.snapshot armed_reg))
      in
      let tick_record =
        Json.Object
          [ ("kind", Json.String "tick");
            ("ts", Json.Number (Unix.gettimeofday ()));
            ("telemetry", Telemetry.to_json (Telemetry.snapshot armed_reg)) ]
      in
      let t_append =
        wall_per_run ~budget:0.2 (fun () ->
            Obs.Journal.record journal tick_record)
      in
      let tax = 100.0 *. (t_on -. t_off) /. t_off in
      jrow
        [ ("persons", jint n);
          ("triples", jint (Rdf.Graph.cardinal graph));
          ("plain_ms", jflt (ms t_off));
          ("armed_ms", jflt (ms t_on));
          ("obs_overhead_pct", jflt tax);
          ("tick_us", jflt (t_tick *. 1e6));
          ("journal_append_us", jflt (t_append *. 1e6)) ];
      row "  %-7d %-8d %9.2f ms %9.2f ms %+7.1f%% %8.1f us %8.1f us@." n
        (Rdf.Graph.cardinal graph) (ms t_off) (ms t_on) tax (t_tick *. 1e6)
        (t_append *. 1e6))
    sizes;
  Obs.Journal.close journal;
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ journal_path; Obs.Journal.rotated_path journal_path ];
  row
    "@.  Expectation: arming the obs plane is exactly E10's \
     telemetry-enabled cost \xe2\x80\x94 the@.  validation path itself \
     stays inside E10's <5%% disabled bar because ticks run@.  between \
     requests.  A tick (snapshot + ring push) and a journal append are \
     tens of@.  microseconds \xe2\x80\x94 negligible at any sane \
     --obs-interval, and priced out-of-band@.  rather than per \
     check.@."

(* ------------------------------------------------------------------ *)
(* E17: bulk load + interned columnar validation                       *)
(* ------------------------------------------------------------------ *)

(* Synthetic FOAF portal written straight to disk as N-Triples — the
   generator never builds a graph, so the experiment's peak memory is
   the loader's, not the fixture's.  Persons follow Foaf_gen's shape
   (age, name+, knows*@Person) with every tenth person missing its
   name, so both verdicts appear; knows arcs only target named
   persons, keeping the recursive shape's verdicts local.  Just under
   five triples per person. *)
let nt_portal_persons triples = triples / 5

let write_nt_portal path n_persons =
  let named k = k mod 10 <> 9 in
  Out_channel.with_open_bin path (fun oc ->
      let buf = Buffer.create (1 lsl 16) in
      let person b k =
        Buffer.add_string b "<http://example.org/people/p";
        Buffer.add_string b (string_of_int k);
        Buffer.add_string b ">"
      in
      for k = 0 to n_persons - 1 do
        person buf k;
        Buffer.add_string buf " <http://xmlns.com/foaf/0.1/age> \"";
        Buffer.add_string buf (string_of_int (18 + (k mod 60)));
        Buffer.add_string buf
          "\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
        if named k then begin
          person buf k;
          Buffer.add_string buf " <http://xmlns.com/foaf/0.1/name> \"Person ";
          Buffer.add_string buf (string_of_int k);
          Buffer.add_string buf "\" .\n"
        end;
        for j = 1 to 3 do
          (* Deterministic valid target: step past the unnamed decile. *)
          let t = (k + (j * 13)) mod n_persons in
          let t = if named t then t else (t + 1) mod n_persons in
          if t <> k && named t then begin
            person buf k;
            Buffer.add_string buf " <http://xmlns.com/foaf/0.1/knows> ";
            person buf t;
            Buffer.add_string buf " .\n"
          end
        done;
        if Buffer.length buf > 1 lsl 15 then begin
          Out_channel.output_string oc (Buffer.contents buf);
          Buffer.clear buf
        end
      done;
      Out_channel.output_string oc (Buffer.contents buf))

(* VmHWM from /proc/self/status: the process peak RSS in MB, or None
   off Linux.  Process-lifetime high water — meaningful because the CI
   smoke job runs E17 alone under ulimit -v. *)
let peak_rss_mb () =
  match In_channel.with_open_text "/proc/self/status" In_channel.input_all with
  | exception Sys_error _ -> None
  | status ->
      String.split_on_char '\n' status
      |> List.find_map (fun line ->
             Scanf.sscanf_opt line "VmHWM: %d kB" (fun kb ->
                 float_of_int kb /. 1024.))

let live_mb () =
  Gc.compact ();
  float_of_int ((Gc.stat ()).Gc.live_words * (Sys.word_size / 8))
  /. (1024. *. 1024.)

let e17 () =
  header
    "E17 Bulk N-Triples load + interned columnar validation \xe2\x80\x94 \
     throughput and peak memory";
  let schema, _ = Workload.Foaf_gen.person_schema () in
  let once f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let file_mb path =
    float_of_int (In_channel.with_open_bin path In_channel.length |> Int64.to_int)
    /. (1024. *. 1024.)
  in
  (* -- Representation arms at a fixed small size: the structural
     parse-and-index path against the interner-fed columnar loader,
     same file, same verdicts. -- *)
  let cmp_triples = if !smoke then 100_000 else 200_000 in
  row "  -- structural vs interned, %d-triple portal --@." cmp_triples;
  row "  %-11s %-10s %-12s %-12s %-12s %-10s@." "arm" "load" "store-MB"
    "validate" "Mtriples/s" "typed";
  let path = Filename.temp_file "e17_portal" ".nt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  write_nt_portal path (nt_portal_persons cmp_triples);
  let base_mb = live_mb () in
  let arm name load validate =
    let store, t_load = once load in
    let store_mb = live_mb () -. base_mb in
    let (typed, cardinal), t_val = once (fun () -> validate store) in
    let mtps = float_of_int cardinal /. t_val /. 1e6 in
    jrow
      [ ("arm", jstr name); ("triples", jint cardinal);
        ("load_ms", jflt (ms t_load)); ("store_mb", jflt store_mb);
        ("validate_ms", jflt (ms t_val)); ("validate_mtps", jflt mtps);
        ("typed", jint typed) ];
    row "  %-11s %7.2f s %9.1f MB %9.2f s %10.2f %-10d@." name t_load
      store_mb t_val mtps typed
  in
  arm "structural"
    (fun () ->
      match Turtle.Parse.parse_file path with
      | Ok d -> `Structural d.Turtle.Parse.graph
      | Error msg -> failwith msg)
    (function
      | `Structural g ->
          let session = Shex.Validate.session schema g in
          ( Shex.Typing.cardinal (Shex.Validate.validate_graph session),
            Rdf.Graph.cardinal g )
      | _ -> assert false);
  arm "interned"
    (fun () ->
      match Turtle.Ntriples.load_file path with
      | Ok c -> `Interned c
      | Error msg -> failwith msg)
    (function
      | `Interned c ->
          let session = Shex.Validate.session_columnar schema c in
          ( Shex.Typing.cardinal (Shex.Validate.validate_graph session),
            Rdf.Columnar.cardinal c )
      | _ -> assert false);
  (* -- Bulk scale on the interned path.  Smoke is the CI bulk-load
     job: one million triples, single pass, under ulimit -v. -- *)
  let sizes =
    if !smoke then [ 1_000_000 ]
    else if !quick then [ 300_000; 1_000_000 ]
    else [ 1_000_000; 3_000_000 ]
  in
  row "@.  -- interned bulk scale --@.";
  row "  %-9s %-8s %-9s %-9s %-10s %-9s %-10s %-9s@." "triples" "file-MB"
    "load" "load-MT/s" "terms" "validate" "val-MT/s" "peak-MB";
  List.iter
    (fun triples ->
      let path = Filename.temp_file "e17_bulk" ".nt" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      @@ fun () ->
      write_nt_portal path (nt_portal_persons triples);
      let mb = file_mb path in
      let store, t_load =
        once (fun () ->
            match Turtle.Ntriples.load_file path with
            | Ok c -> c
            | Error msg -> failwith msg)
      in
      let cardinal = Rdf.Columnar.cardinal store in
      let load_mtps = float_of_int cardinal /. t_load /. 1e6 in
      let typed, t_val =
        once (fun () ->
            let session = Shex.Validate.session_columnar schema store in
            Shex.Typing.cardinal (Shex.Validate.validate_graph session))
      in
      let val_mtps = float_of_int cardinal /. t_val /. 1e6 in
      let heap_peak_mb =
        float_of_int ((Gc.stat ()).Gc.top_heap_words * (Sys.word_size / 8))
        /. (1024. *. 1024.)
      in
      let peak = Option.value (peak_rss_mb ()) ~default:heap_peak_mb in
      jrow
        [ ("triples", jint cardinal); ("file_mb", jflt mb);
          ("load_s", jflt t_load); ("load_mtps", jflt load_mtps);
          ("terms", jint (Rdf.Columnar.terms_cardinal store));
          ("validate_s", jflt t_val); ("validate_mtps", jflt val_mtps);
          ("peak_rss_mb", jflt peak); ("heap_peak_mb", jflt heap_peak_mb);
          ("typed", jint typed) ];
      row "  %-9d %6.1f %7.2f s %8.2f %9d %7.2f s %8.2f %8.0f@." cardinal
        mb t_load load_mtps
        (Rdf.Columnar.terms_cardinal store)
        t_val val_mtps peak)
    sizes;
  row
    "@.  Expectation: the streaming lexer + interner-fed columnar \
     builder load in one pass@.  without materialising the source or a \
     structural graph, so peak memory is a@.  small multiple of the \
     frozen store itself; the structural arm's per-triple@.  \
     set-and-index inserts cost several times the interned store's \
     memory at@.  identical verdicts, and validation over binary-searched \
     column slices@.  outruns the balanced-tree neighbourhood lookups.@."

(* ------------------------------------------------------------------ *)
(* E18: schema static analysis                                         *)
(* ------------------------------------------------------------------ *)

(* A depth-k cyclic chain of shapes S_i ::= p→int ‖ (next→@S_{i+1})⋆
   (indices mod k), with v2 widening S_0 by one optional extra arc.
   No shape is congruent across the pair — every S_i transitively
   reaches the widened S_0 — so check_compat has to run the full
   coinductive product search for each of the k pairs, and the states
   counter measures derivative-space growth against schema size. *)
let e18_chain ~depth ~widen =
  let lbl i =
    Shex.Label.of_string (Printf.sprintf "http://example.org/S%d" i)
  in
  let p = Rdf.Iri.of_string_exn "http://example.org/p"
  and next = Rdf.Iri.of_string_exn "http://example.org/next"
  and extra = Rdf.Iri.of_string_exn "http://example.org/extra" in
  Shex.Schema.make_exn
    (List.init depth (fun i ->
         let base =
           Shex.Rse.and_
             (Shex.Rse.arc_v
                (Shex.Value_set.Pred p)
                (Shex.Value_set.Obj_datatype Rdf.Xsd.Integer))
             (Shex.Rse.star
                (Shex.Rse.arc_ref
                   (Shex.Value_set.Pred next)
                   (lbl ((i + 1) mod depth))))
         in
         let e =
           if widen && i = 0 then
             Shex.Rse.and_ base
               (Shex.Rse.opt
                  (Shex.Rse.arc_v
                     (Shex.Value_set.Pred extra)
                     Shex.Value_set.Obj_any))
           else base
         in
         (lbl i, e)))

let e18 () =
  header
    "E18 Schema static analysis \xe2\x80\x94 product-search growth and the \
     pre-validation optimizer's win";
  row
    "  -- check_compat states/time vs schema size (cyclic ref chain, v2 \
     widens S0) --@.";
  row "  %-7s %-8s %-10s %-12s %-10s@." "depth" "shapes" "states" "compat"
    "verdicts";
  let depths =
    if !smoke then [ 2; 4 ]
    else if !quick then [ 2; 4; 6 ]
    else [ 2; 4; 6; 8 ]
  in
  List.iter
    (fun depth ->
      let v1 = e18_chain ~depth ~widen:false
      and v2 = e18_chain ~depth ~widen:true in
      let tele = Telemetry.create () in
      let states = Telemetry.counter tele "analysis_states_explored" in
      let t0 = Unix.gettimeofday () in
      let report = Analysis.check_compat ~tele v1 v2 in
      let dt = Unix.gettimeofday () -. t0 in
      let contained =
        List.for_all
          (fun (it : Analysis.compat_item) ->
            match it.Analysis.verdict with
            | Analysis.Contained -> true
            | _ -> false)
          report.Analysis.items
      in
      jrow
        [ ("depth", jint depth);
          ("states", jint (Telemetry.Counter.value states));
          ("compat_ms", jflt (ms dt));
          ("all_contained", Json.Bool contained) ];
      row "  %-7d %-8d %-10d %9.1f ms %-10s@." depth depth
        (Telemetry.Counter.value states)
        (ms dt)
        (if contained then "contained" else "NOT-CONTAINED"))
    depths;
  (* -- the optimizer's win: a k-way Or of singleton value sets is
     merged into one value-set arc, so the derivative stops scanning k
     disjuncts per triple.  Same graph, same verdicts, both arms. -- *)
  row "@.  -- pre-validation optimizer: k-way Or of singleton values --@.";
  row "  %-5s %-12s %-12s %-8s@." "k" "original" "optimized" "speedup";
  let ks = if !smoke then [ 8 ] else if !quick then [ 4; 16 ] else [ 4; 16; 64 ] in
  List.iter
    (fun k ->
      let p = Rdf.Iri.of_string_exn "http://example.org/a" in
      let arc j =
        Shex.Rse.arc_v (Shex.Value_set.Pred p)
          (Shex.Value_set.obj_terms [ Rdf.Term.int j ])
      in
      let ored =
        List.fold_left
          (fun acc j -> Shex.Rse.or_ acc (arc j))
          (arc 0)
          (List.init (k - 1) (fun j -> j + 1))
      in
      let lbl = Shex.Label.of_string "http://example.org/S" in
      let schema = Shex.Schema.make_exn [ (lbl, ored) ] in
      let optimized = Analysis.optimize schema in
      let n_nodes = if !smoke then 2_000 else 20_000 in
      let graph =
        Rdf.Graph.of_list
          (List.init n_nodes (fun i ->
               Rdf.Triple.make
                 (Rdf.Term.iri (Printf.sprintf "http://example.org/n%d" i))
                 p
                 (Rdf.Term.int (i mod k))))
      in
      let validate s =
        let session = Shex.Validate.session s graph in
        Shex.Typing.cardinal (Shex.Validate.validate_graph session)
      in
      let typed_orig = validate schema and typed_opt = validate optimized in
      if typed_orig <> typed_opt then
        failwith "E18: optimizer changed verdicts";
      let t_orig = time_per_run (fun () -> validate schema)
      and t_opt = time_per_run (fun () -> validate optimized) in
      jrow
        [ ("k", jint k); ("typed", jint typed_orig);
          ("original_ms", jflt (ms t_orig)); ("optimized_ms", jflt (ms t_opt));
          ("speedup", jflt (t_orig /. t_opt)) ];
      row "  %-5d %9.2f ms %9.2f ms %7.2fx@." k (ms t_orig) (ms t_opt)
        (t_orig /. t_opt))
    ks;
  row
    "@.  Expectation: the product search stays polynomial in the chain \
     depth \xe2\x80\x94 the@.  coinductive assumption discharge keeps \
     ref-letters out of the alphabet, so the@.  per-pair space is the \
     diagonal, not the full product \xe2\x80\x94 and the optimizer's@.  \
     value-set merge turns a k-disjunct scan per triple into one \
     membership test,@.  with verdicts unchanged.@."

(* ------------------------------------------------------------------ *)
(* Baseline comparison (--baseline)                                    *)
(* ------------------------------------------------------------------ *)

(* CI perf ratchet: compare this run's recorded rows against a
   committed baseline document (the harness's own --json output,
   optionally annotated with tolerances).  Only timing cells — keys
   ending in [_us] or [_ms], normalised to microseconds — are
   compared; counts and verdicts are covered by the tests.  A current
   value is a regression when it exceeds [baseline * tolerance +
   slack]: the multiplicative band absorbs machine-to-machine speed
   differences once the tolerance is set generously, and the absolute
   slack keeps micro-rows (a few microseconds, dominated by timer
   noise) from tripping the ratchet.

   Baseline documents may carry:
     "tolerance": N             document-wide ratio band (default 1.5)
     "tolerances": {"E3": N}    per-experiment override
   Missing experiments or rows are a hard failure with a regenerate
   hint — a silently shrinking baseline would ratchet nothing. *)

let baseline_slack_us = 500.

let timing_us key v =
  let ends_with suffix s =
    let n = String.length s and m = String.length suffix in
    n >= m && String.sub s (n - m) m = suffix
  in
  match v with
  | Json.Number x when ends_with "_us" key -> Some x
  | Json.Number x when ends_with "_ms" key -> Some (x *. 1000.)
  | _ -> None

let compare_baseline file =
  let doc =
    match Json.of_string (In_channel.with_open_bin file In_channel.input_all) with
    | Ok doc -> doc
    | Error msg ->
        Printf.eprintf "--baseline %s: %s\n" file msg;
        exit 2
  in
  let default_tol =
    match Json.find "tolerance" doc with
    | Some (Json.Number t) -> t
    | _ -> 1.5
  in
  let tol_for id =
    match Option.bind (Json.find "tolerances" doc) (Json.find id) with
    | Some (Json.Number t) -> t
    | _ -> default_tol
  in
  let base_experiments =
    match Json.find_list "experiments" doc with
    | Some exps -> exps
    | None ->
        Printf.eprintf
          "--baseline %s: no \"experiments\" member (expected this \
           harness's --json output)\n"
        file;
        exit 2
  in
  let problems = ref [] in
  let compared = ref 0 in
  let problem fmt =
    Printf.ksprintf (fun s -> problems := s :: !problems) fmt
  in
  let regenerate =
    "regenerate with: dune exec bench/main.exe -- <IDS> --smoke --json \
     <FILE>"
  in
  List.iter
    (fun cur ->
      let id =
        match Json.find_string "id" cur with Some id -> id | None -> "?"
      in
      match
        List.find_opt (fun b -> Json.find_string "id" b = Some id)
          base_experiments
      with
      | None -> Printf.printf "baseline: %s not in %s, skipped@\n" id file
      | Some base ->
          let cur_rows = Option.value ~default:[] (Json.find_list "rows" cur) in
          let base_rows =
            Option.value ~default:[] (Json.find_list "rows" base)
          in
          if List.length cur_rows <> List.length base_rows then
            problem "%s: %d rows vs %d in baseline (%s)" id
              (List.length cur_rows) (List.length base_rows) regenerate
          else begin
            let tol = tol_for id in
            List.iteri
              (fun i (base_row, cur_row) ->
                match base_row with
                | Json.Object cells ->
                    List.iter
                      (fun (key, bv) ->
                        match timing_us key bv with
                        | None -> ()
                        | Some base_us -> (
                            match
                              Option.bind (Json.find key cur_row)
                                (fun v -> timing_us key v)
                            with
                            | None ->
                                problem "%s row %d: %S missing from this \
                                         run (%s)"
                                  id i key regenerate
                            | Some cur_us ->
                                incr compared;
                                if
                                  cur_us
                                  > (base_us *. tol) +. baseline_slack_us
                                then
                                  problem
                                    "%s row %d %s: %.1f us vs baseline \
                                     %.1f us (%.2fx > %.2fx band)"
                                    id i key cur_us base_us
                                    (cur_us /. Float.max 1e-9 base_us)
                                    tol))
                      cells
                | _ -> ())
              (List.combine base_rows cur_rows)
          end)
    (List.rev !experiments_json);
  match List.rev !problems with
  | [] ->
      Format.printf
        "@.Baseline check: %d timing cells within tolerance of %s.@."
        !compared file
  | ps ->
      Format.printf "@.Baseline check against %s FAILED:@." file;
      List.iter (fun p -> Format.printf "  REGRESSION %s@." p) ps;
      Format.printf "%d timing cells compared, %d regressed.@." !compared
        (List.length ps);
      exit 3

(* ------------------------------------------------------------------ *)
(* Chrome trace export (--trace-chrome)                                *)
(* ------------------------------------------------------------------ *)

(* Independent of which experiments ran: trace one representative
   portal validation end-to-end and write the Chrome trace-event
   document, so CI can assert the export pipeline produces loadable
   JSON on every run. *)
let write_chrome_trace file =
  let recorder = Shex_explain.Trace.create () in
  let telemetry = Telemetry.create () in
  Telemetry.set_sink telemetry (Some (Shex_explain.Trace.sink recorder));
  Telemetry.set_residuals telemetry true;
  let schema, _ = Workload.Foaf_gen.person_schema () in
  let { Workload.Foaf_gen.graph; _ } =
    Workload.Foaf_gen.generate
      { Workload.Foaf_gen.n_persons = (if !smoke then 20 else 100);
        invalid_fraction = 0.1;
        knows_degree = 3;
        seed = 7 }
  in
  let session = Shex.Validate.session ~telemetry schema graph in
  ignore (Shex.Validate.validate_graph session);
  Json.write_file_atomic file
    (Json.to_string (Shex_explain.Export.chrome_json recorder) ^ "\n");
  Format.printf "@.Chrome trace written to %s@." file

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let focus = Workload.Micro_gen.focus in
  let e5_shape = Workload.Micro_gen.example5_shape () in
  let e5_graph = Workload.Micro_gen.example5_neighbourhood 8 in
  let e5_bad = Workload.Micro_gen.example5_neighbourhood_invalid 8 in
  let bal_shape = Workload.Micro_gen.balanced_shape 16 in
  let bal_graph = Workload.Micro_gen.balanced_neighbourhood 16 in
  let wide_shape = Workload.Micro_gen.wide_shape 64 in
  let wide_graph = Workload.Micro_gen.wide_neighbourhood 64 in
  let wide_sorbe = Option.get (Shex.Sorbe.of_rse wide_shape) in
  let schema, _ = Workload.Foaf_gen.person_schema () in
  let portal =
    Workload.Foaf_gen.generate
      { Workload.Foaf_gen.n_persons = 300;
        invalid_fraction = 0.1;
        knows_degree = 3;
        seed = 7 }
  in
  let tests =
    [ Test.make ~name:"E1/deriv-n8" (Staged.stage (fun () ->
          Shex.Deriv.matches focus e5_graph e5_shape));
      Test.make ~name:"E1/backtrack-n8" (Staged.stage (fun () ->
          Shex.Backtrack.matches focus e5_bad e5_shape));
      Test.make ~name:"E2/balanced-k16" (Staged.stage (fun () ->
          Shex.Deriv.matches focus bal_graph bal_shape));
      Test.make ~name:"E3/portal-300" (Staged.stage (fun () ->
          let session = Shex.Validate.session schema portal.Workload.Foaf_gen.graph in
          Shex.Validate.validate_graph session));
      Test.make ~name:"E4/deriv-wide64" (Staged.stage (fun () ->
          Shex.Deriv.matches focus wide_graph wide_shape));
      Test.make ~name:"E4/sorbe-wide64" (Staged.stage (fun () ->
          Shex.Sorbe.matches focus wide_graph wide_sorbe));
      Test.make ~name:"E5/raw-ctors-n8" (Staged.stage (fun () ->
          Shex.Deriv.matches ~ctors:Shex.Rse.raw_ctors focus e5_graph e5_shape))
    ]
  in
  let grouped = Test.make_grouped ~name:"shex" ~fmt:"%s %s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  header "Bechamel micro-benchmarks (monotonic clock, ns/run)";
  Hashtbl.iter
    (fun _instance tbl ->
      let rows =
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> row "  %-28s %12.1f ns/run@." name est
          | _ -> row "  %-28s %a@." name Analyze.OLS.pp ols)
        rows)
    merged

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let all_experiments =
  [ ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16);
    ("E17", e17); ("E18", e18) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let run_micro = ref false in
  let trace_chrome : string option ref = ref None in
  let rec parse = function
    | [] -> []
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--smoke" :: rest ->
        (* CI mode: quick sweeps plus minimal timing budgets. *)
        smoke := true;
        quick := true;
        parse rest
    | "--micro" :: rest ->
        run_micro := true;
        parse rest
    | "--json" :: file :: rest when String.length file = 0 || file.[0] <> '-'
      ->
        json_out := Some file;
        parse rest
    | "--json" :: _ ->
        prerr_endline "--json requires a FILE argument";
        exit 2
    | "--baseline" :: file :: rest
      when String.length file = 0 || file.[0] <> '-' ->
        baseline_in := Some file;
        parse rest
    | "--baseline" :: _ ->
        prerr_endline "--baseline requires a FILE argument";
        exit 2
    | "--trace-chrome" :: file :: rest
      when String.length file = 0 || file.[0] <> '-' ->
        trace_chrome := Some file;
        parse rest
    | "--trace-chrome" :: _ ->
        prerr_endline "--trace-chrome requires a FILE argument";
        exit 2
    | "--domains" :: v :: rest when int_of_string_opt v <> None ->
        (* Restrict E12's parallel arm to one domain count (CI runs
           --domains 2 on two-core runners). *)
        e12_domains := [ max 2 (int_of_string v) ];
        parse rest
    | "--domains" :: _ ->
        prerr_endline "--domains requires an integer argument";
        exit 2
    | a :: _ when String.length a > 1 && a.[0] = '-' ->
        Printf.eprintf
          "unknown option: %s\n\
           usage: main.exe [E1 .. E18] [--quick] [--smoke] [--json FILE] \
           [--baseline FILE] [--trace-chrome FILE] [--domains N] [--micro]\n"
          a;
        exit 2
    | a :: rest -> a :: parse rest
  in
  let wanted = parse args in
  (match
     List.filter (fun a -> not (List.mem_assoc a all_experiments)) wanted
   with
  | [] -> ()
  | unknown ->
      Printf.eprintf "unknown experiment%s: %s\nvalid experiments: %s\n"
        (if List.length unknown = 1 then "" else "s")
        (String.concat ", " unknown)
        (String.concat " " (List.map fst all_experiments));
      exit 2);
  let selected =
    if wanted = [] then all_experiments
    else
      List.filter (fun (name, _) -> List.mem name wanted) all_experiments
  in
  Format.printf
    "shex-derivatives benchmark harness \xe2\x80\x94 reproducing the \
     EDBT/ICDT 2015 workshops paper@.";
  if !run_micro then micro ()
  else begin
    List.iter
      (fun (id, f) ->
        begin_experiment ();
        f ();
        end_experiment id)
      selected;
    (match !json_out with
    | None -> ()
    | Some file ->
        let doc =
          Json.Object
            [ ("format", Json.int 2);
              ("experiments", Json.Array (List.rev !experiments_json)) ]
        in
        (* Atomic, so an interrupted run never leaves a truncated
           results file for CI's JSON assertions to choke on. *)
        Json.write_file_atomic file (Json.to_string doc ^ "\n");
        Format.printf "@.JSON results written to %s@." file);
    (* After the JSON write: [--json cur.json --baseline cur.json] is a
       deterministic self-comparison (every ratio exactly 1), the CI
       sanity leg for the ratchet machinery itself. *)
    Option.iter compare_baseline !baseline_in;
    Format.printf
      "@.All experiments complete.  See EXPERIMENTS.md for the \
       paper-vs-measured discussion.@."
  end;
  Option.iter write_chrome_trace !trace_chrome

(** Schema-level static analysis over regular-expression derivatives.

    Staworko & Wieczorek show that emptiness and containment are
    decidable for shape expression schemas; the derivative operator of
    the source paper is the natural decision engine, because the set of
    ACI-normalised derivatives of an expression is finite (Brzozowski's
    theorem, restated for the bag semantics in DESIGN.md §15).  This
    module explores that finite derivative space symbolically:

    - {e letters} are equivalence classes of directed triples, built by
      classifying a universe of sampled candidate triples against the
      schema's arc constraints (the same arc-class construction as
      {!Shex_automaton.Dfa}, driven by samples instead of graph data);
    - {e states} are hash-consed expressions ({!Shex_automaton.Hrse}),
      so the visited-set is a table of integer ids;
    - shape references are handled by a greatest-fixpoint {e capability}
      computation (can a node satisfy / fail each referenced shape?)
      consistent with the coinductive semantics of §8.

    Soundness contract: [Empty] and [Contained] verdicts are decided
    relative to the sampled letter universe — complete whenever every
    value set is a finite union of the sampled families (value
    enumerations, datatypes, stems, kinds, and anything injected via
    [extra_objects]/[extra_preds]), which covers the whole ShExC
    surface this repo generates and parses.  Witnesses run the other
    way and are unconditional: every [Satisfiable]/[Refuted] answer
    carries a concrete neighbourhood that has been replayed through
    {!Shex.Validate} before being reported.  The differential oracle's
    containment arm fuzzes exactly this contract. *)

(** A concrete witness: a focus node together with a graph whose
    neighbourhood of that node exhibits the claimed behaviour.  The
    graph is printable as Turtle ({!witness_turtle}) so the claim can
    be replayed with [shex_validate]. *)
type witness = { focus : Rdf.Term.t; graph : Rdf.Graph.t }

type emptiness =
  | Satisfiable of witness  (** verified: focus validates against the shape *)
  | Empty  (** no sampled neighbourhood can match — the shape is dead *)
  | Unknown of string  (** search capped or witness construction failed *)

type containment =
  | Contained  (** every sampled neighbourhood matching [S1] matches [S2] *)
  | Refuted of witness
      (** verified counterexample: focus validates under [S1@l1] and
          fails [S2@l2] *)
  | Inconclusive of string

(** Per-label verdict of a deploy-compatibility check. *)
type compat_item = { label : Shex.Label.t; verdict : containment }

type compat = {
  items : compat_item list;  (** labels present in both schemas *)
  removed : Shex.Label.t list;  (** labels only in the old schema *)
  added : Shex.Label.t list;  (** labels only in the new schema *)
}

type hygiene = {
  unreachable : Shex.Label.t list;
      (** not reachable from any root through [Ref] edges *)
  unsatisfiable : Shex.Label.t list;
      (** proven empty: no node can ever conform *)
  roots : Shex.Label.t list;  (** the roots the reachability walk used *)
}

val shape_satisfiable :
  ?tele:Telemetry.t ->
  ?max_states:int ->
  ?extra_preds:Rdf.Iri.t list ->
  ?extra_objects:Rdf.Term.t list ->
  Shex.Schema.t ->
  Shex.Label.t ->
  emptiness
(** Emptiness of δ(l): nullability-guided search of the derivative
    space.  Raises [Invalid_argument] if the label has no rule. *)

val expr_satisfiable :
  ?tele:Telemetry.t ->
  ?max_states:int ->
  ?extra_preds:Rdf.Iri.t list ->
  ?extra_objects:Rdf.Term.t list ->
  Shex.Schema.t ->
  Shex.Rse.t ->
  emptiness
(** Emptiness of an arbitrary expression whose references resolve in
    the given schema (the expression is probed as an anonymous extra
    rule). *)

val contains :
  ?tele:Telemetry.t ->
  ?max_states:int ->
  ?extra_preds:Rdf.Iri.t list ->
  ?extra_objects:Rdf.Term.t list ->
  Shex.Schema.t ->
  Shex.Label.t ->
  Shex.Schema.t ->
  Shex.Label.t ->
  containment
(** [contains s1 l1 s2 l2] — does every node conforming to [l1] in
    [s1] also conform to [l2] in [s2]?  Product-derivative search for
    a state nullable on the left and non-nullable on the right; goal
    paths are concretised into neighbourhoods and replayed through
    {!Shex.Validate} before being reported.  Raises [Invalid_argument]
    on unknown labels. *)

val check_compat :
  ?tele:Telemetry.t ->
  ?max_states:int ->
  ?extra_preds:Rdf.Iri.t list ->
  ?extra_objects:Rdf.Term.t list ->
  Shex.Schema.t ->
  Shex.Schema.t ->
  compat
(** Deploy gate: [check_compat old_schema new_schema] runs {!contains}
    for every label the two schemas share ("every node valid under v1
    stays valid under v2"). *)

val hygiene : ?roots:Shex.Label.t list -> Shex.Schema.t -> hygiene
(** Dead-rule and unreachable-shape detection.  Roots default to the
    labels carrying a focus constraint (the shapes a shape map can
    target directly); when no label has one, every label is a root of
    its own reachability check — then only satisfiability findings
    remain. *)

val optimize : Shex.Schema.t -> Shex.Schema.t
(** Pre-validation optimizer.  Semantics-preserving rewrites only:
    value-set normalisation (flattening, deduplication, subsumption
    between set members — never term-level dropping, which value-space
    membership makes unsound), [Obj_in]-merging of same-predicate
    disjunct arcs, provably-empty disjunct pruning (via the emptiness
    search), [(ε|e)⋆ → e⋆], and conjunct hoisting out of [Or] (via the
    smart constructors' distributive factoring).  The oracle's
    optimizer arm checks verdict equivalence across engines. *)

val optimize_stats : Shex.Schema.t -> Shex.Schema.t * int
(** Like {!optimize}, also returning how many shapes were rewritten. *)

val witness_turtle : witness -> string
(** The witness graph as Turtle, replayable with [shex_validate]. *)

val pp_containment : Format.formatter -> containment -> unit
val pp_emptiness : Format.formatter -> emptiness -> unit

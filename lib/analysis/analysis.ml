(* Static analysis of shape expression schemas by derivative-space
   exploration.  See analysis.mli for the soundness contract and
   DESIGN.md §15 for the construction. *)

open Shex
module Hrse = Shex_automaton.Hrse

type witness = { focus : Rdf.Term.t; graph : Rdf.Graph.t }
type emptiness = Satisfiable of witness | Empty | Unknown of string
type containment = Contained | Refuted of witness | Inconclusive of string
type compat_item = { label : Label.t; verdict : containment }

type compat = {
  items : compat_item list;
  removed : Label.t list;
  added : Label.t list;
}

type hygiene = {
  unreachable : Label.t list;
  unsatisfiable : Label.t list;
  roots : Label.t list;
}

(* ------------------------------------------------------------------ *)
(* Sides, atoms, letters                                               *)
(* ------------------------------------------------------------------ *)

(* Containment analyses two schemas at once; the same label string may
   name different shapes in each, so every [Ref] atom is tagged with
   the schema it resolves in.  [Values] atoms are side-free and shared. *)
type side = Lft | Rgt

let side_ix = function Lft -> 0 | Rgt -> 1
let side_equal a b = side_ix a = side_ix b

let ref_side_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> side_equal x y
  | None, Some _ | Some _, None -> false

type atom = { arc : Rse.arc; ref_side : side option }

(* How to realise a letter's object in a concrete witness graph. *)
type obj_template = Concrete of Rdf.Term.t | Fresh_node

(* What the letter's far node must (not) satisfy for the letter's
   [Ref]-atom bits to come true in a real graph. *)
type far_req = { must : (side * Label.t) list; must_not : (side * Label.t) list }

(* A letter of the analysis alphabet: an equivalence class of directed
   triples, identified by the set of atoms it matches, carrying one
   concrete template that realises it. *)
type letter = {
  bits : bool array;
  l_inverse : bool;
  l_pred : Rdf.Iri.t;
  l_obj : obj_template;
  l_req : far_req;
}

(* Per-(side, label) capabilities: can some node satisfy / fail the
   shape?  Computed as a greatest fixpoint, consistent with the
   coinductive reference semantics of §8. *)
type cap = { can_sat : bool; can_fail : bool }

type refut_info = Refut_focus | Refut_expr of int list

type env = {
  sides : (side * Schema.t) list;
  congruent : (string, unit) Hashtbl.t;
      (** labels defined structurally identically (transitively) in
          both schemas: their [Ref] atoms collapse onto [Lft], so a
          letter cannot claim a far node satisfies [l] under one
          schema while failing the identical [l] under the other *)
  assumed : (string, unit) Hashtbl.t;
      (** coinductively assumed containments [l1 ⊑ l2] (left label in
          S1, right label in S2): no letter may claim a far node
          satisfies [(Lft, l1)] while failing [(Rgt, l2)], because
          such a node would itself be a counterexample to an
          assumption still under simultaneous check *)
  atoms : atom array;
  tbl : Hrse.table;
  mutable letters : letter array;
  caps : (int * string, cap) Hashtbl.t;
  sat_paths : (int * string, int list) Hashtbl.t;
  refut_paths : (int * string, refut_info) Hashtbl.t;
  trans : (int * int, Hrse.t) Hashtbl.t;
  states_counter : Telemetry.Counter.t;
  max_states : int;
  obj_samples : Rdf.Term.t list;
  pred_samples : Rdf.Iri.t list;
  dirs : bool list;
}

let cap_key side l = (side_ix side, Label.to_string l)
let assume_key l1 l2 = Label.to_string l1 ^ "\x01" ^ Label.to_string l2

let get_cap env side l =
  match Hashtbl.find_opt env.caps (cap_key side l) with
  | Some c -> c
  | None -> { can_sat = true; can_fail = true }

let schema_of env side =
  snd (List.find (fun (s, _) -> side_equal s side) env.sides)

(* ------------------------------------------------------------------ *)
(* Sampling the object and predicate universes                         *)
(* ------------------------------------------------------------------ *)

let fresh_ns = "http://analysis.invalid/"
let fresh_far_iri = Rdf.Iri.of_string_exn (fresh_ns ^ "far")
let fresh_far = Rdf.Term.Iri fresh_far_iri
let fresh_pred = Rdf.Iri.of_string_exn (fresh_ns ^ "p")

let rec dedup eq = function
  | [] -> []
  | x :: rest -> x :: dedup eq (List.filter (fun y -> not (eq x y)) rest)

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n l

let datatype_rep (dt : Rdf.Xsd.primitive) =
  let lex =
    match dt with
    | String | Lang_string -> "v"
    | Boolean -> "true"
    | Decimal | Double | Float -> "1.5"
    | Integer | Long | Int | Short | Byte | Non_negative_integer
    | Positive_integer | Unsigned_long | Unsigned_int | Unsigned_short
    | Unsigned_byte ->
        "1"
    | Non_positive_integer -> "0"
    | Negative_integer -> "-1"
    | Date -> "2024-01-01"
    | Date_time -> "2024-01-01T00:00:00"
    | Time -> "12:00:00"
    | Any_uri -> "http://example.org/u"
  in
  match dt with
  | Rdf.Xsd.Lang_string -> Rdf.Term.Literal (Rdf.Literal.make ~lang:"en" lex)
  | _ -> Rdf.Term.Literal (Rdf.Literal.typed dt lex)

(* Value-space membership ([Term.value_equal]) means a numeric value
   can enter an [Obj_in] set wearing a different datatype; sample those
   cross-datatype representatives too so the letter alphabet separates
   "value-equal" from "well-typed". *)
let numeric_variants t acc =
  match t with
  | Rdf.Term.Literal l -> (
      match Rdf.Literal.xsd_primitive l with
      | Some
          ( Integer | Long | Int | Short | Byte | Non_negative_integer
          | Positive_integer | Non_positive_integer | Negative_integer
          | Unsigned_long | Unsigned_int | Unsigned_short | Unsigned_byte ) ->
          Rdf.Term.Literal
            (Rdf.Literal.typed Rdf.Xsd.Decimal (Rdf.Literal.lexical l ^ ".0"))
          :: acc
      | Some Rdf.Xsd.Decimal -> (
          match Rdf.Literal.as_int l with
          | Some n -> Rdf.Term.Literal (Rdf.Literal.integer n) :: acc
          | None -> acc)
      | _ -> acc)
  | Rdf.Term.Iri _ | Rdf.Term.Bnode _ -> acc

let stem_rep s acc =
  match Rdf.Iri.of_string (s ^ "x") with
  | Ok i -> Rdf.Term.Iri i :: acc
  | Error _ -> acc

let rec obj_sample_terms (vo : Value_set.obj) acc =
  match vo with
  | Value_set.Obj_any | Value_set.Obj_kind _ -> acc
  | Value_set.Obj_in ts -> List.rev_append ts acc
  | Value_set.Obj_datatype dt -> datatype_rep dt :: acc
  | Value_set.Obj_datatype_iri i ->
      Rdf.Term.Literal (Rdf.Literal.make ~datatype:i "v") :: acc
  | Value_set.Obj_stem s -> stem_rep s acc
  | Value_set.Obj_or vs ->
      List.fold_left (fun acc v -> obj_sample_terms v acc) acc vs
  | Value_set.Obj_not v -> obj_sample_terms v acc

let rec pred_sample_iris (vp : Value_set.pred) acc =
  match vp with
  | Value_set.Pred i -> i :: acc
  | Value_set.Pred_in is -> List.rev_append is acc
  | Value_set.Pred_stem s -> (
      match Rdf.Iri.of_string (s ^ "x") with
      | Ok i -> i :: acc
      | Error _ -> acc)
  | Value_set.Pred_any -> acc
  | Value_set.Pred_compl ps ->
      List.fold_left (fun acc p -> pred_sample_iris p acc) acc ps

let kind_reps =
  [
    Rdf.Term.bnode "analysis0";
    Rdf.Term.str "analysis-fresh";
    Rdf.Term.int 7919;
  ]

(* ------------------------------------------------------------------ *)
(* Environment construction                                            *)
(* ------------------------------------------------------------------ *)

let focus_opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Value_set.obj_equal x y
  | None, Some _ | Some _, None -> false

(* Labels whose definitions agree structurally in both schemas, and
   transitively reference only such labels.  ([Rse.equal] compares
   reference labels by name, so the fixpoint closes the loop.) *)
let compute_congruent sides =
  let tbl = Hashtbl.create 16 in
  (match sides with
  | [ (_, s1); (_, s2) ] ->
      List.iter
        (fun l ->
          match (Schema.find_shape s1 l, Schema.find_shape s2 l) with
          | Some a, Some b
            when Rse.equal a.Schema.expr b.Schema.expr
                 && focus_opt_equal a.Schema.focus b.Schema.focus ->
              Hashtbl.replace tbl (Label.to_string l) ()
          | _ -> ())
        (Schema.labels s1);
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun l ->
            if Hashtbl.mem tbl (Label.to_string l) then
              match Schema.find_shape s1 l with
              | Some sh ->
                  if
                    not
                      (Label.Set.for_all
                         (fun r -> Hashtbl.mem tbl (Label.to_string r))
                         (Rse.refs sh.Schema.expr))
                  then begin
                    Hashtbl.remove tbl (Label.to_string l);
                    changed := true
                  end
              | None -> ())
          (Schema.labels s1)
      done
  | _ -> ());
  tbl

let canon_side congruent side l =
  if Hashtbl.mem congruent (Label.to_string l) then Lft else side

let make_env ?(tele = Telemetry.disabled) ?(max_states = 20_000)
    ?(extra_preds = []) ?(extra_objects = []) ?(assume = []) sides =
  let congruent = compute_congruent sides in
  let assumed = Hashtbl.create 8 in
  List.iter (fun (l1, l2) -> Hashtbl.replace assumed (assume_key l1 l2) ()) assume;
  let atoms = ref [] in
  let add_arc side (a : Rse.arc) =
    let rs =
      match a.Rse.obj with
      | Rse.Ref l -> Some (canon_side congruent side l)
      | Rse.Values _ -> None
    in
    if
      not
        (List.exists
           (fun at -> Rse.arc_equal at.arc a && ref_side_equal at.ref_side rs)
           !atoms)
    then atoms := { arc = a; ref_side = rs } :: !atoms
  in
  let objs = ref [] and preds = ref [] in
  List.iter
    (fun (side, schema) ->
      List.iter
        (fun (_, (sh : Schema.shape)) ->
          List.iter
            (fun (a : Rse.arc) ->
              add_arc side a;
              preds := pred_sample_iris a.Rse.pred !preds;
              match a.Rse.obj with
              | Rse.Values vo -> objs := obj_sample_terms vo !objs
              | Rse.Ref _ -> ())
            (Rse.arcs sh.Schema.expr);
          match sh.Schema.focus with
          | Some vo -> objs := obj_sample_terms vo !objs
          | None -> ())
        (Schema.shapes schema))
    sides;
  let objs = List.fold_left (fun acc t -> numeric_variants t acc) !objs !objs in
  let obj_samples =
    take 96 (dedup Rdf.Term.equal (kind_reps @ List.rev objs @ extra_objects))
  in
  let pred_samples =
    take 48 (dedup Rdf.Iri.equal (fresh_pred :: (List.rev !preds @ extra_preds)))
  in
  let atoms = Array.of_list (List.rev !atoms) in
  let dirs =
    false
    :: (if Array.exists (fun at -> at.arc.Rse.inverse) atoms then [ true ]
        else [])
  in
  {
    sides;
    congruent;
    assumed;
    atoms;
    tbl = Hrse.create ();
    letters = [||];
    caps = Hashtbl.create 16;
    sat_paths = Hashtbl.create 16;
    refut_paths = Hashtbl.create 16;
    trans = Hashtbl.create 256;
    states_counter =
      Telemetry.counter tele
        ~help:"states explored by static-analysis derivative searches"
        "analysis_states_explored";
    max_states;
    obj_samples;
    pred_samples;
    dirs;
  }

(* ------------------------------------------------------------------ *)
(* Letters                                                             *)
(* ------------------------------------------------------------------ *)

(* Closed-world verdict used for literal far nodes: a literal can
   carry no outgoing arcs, so (when the shape reads no incoming arcs)
   it conforms iff the focus constraint accepts it and the expression
   is nullable.  Shapes with inverse arcs would also see the incoming
   letter triple; we keep the empty-neighbourhood approximation there
   and rely on witness verification to gate any misclassification. *)
let literal_conforms env side l (t : Rdf.Term.t) =
  let schema = schema_of env side in
  match Schema.find_shape schema l with
  | None -> false
  | Some sh ->
      (match sh.Schema.focus with
      | None -> true
      | Some vo -> Value_set.obj_mem vo t)
      && Rse.nullable sh.Schema.expr

let classify_values env ~inverse ~pred obj_term bits =
  Array.iteri
    (fun i at ->
      match at.arc.Rse.obj with
      | Rse.Values vo ->
          if
            Bool.equal at.arc.Rse.inverse inverse
            && Value_set.pred_mem at.arc.Rse.pred pred
            && Value_set.obj_mem vo obj_term
          then bits.(i) <- true
      | Rse.Ref _ -> ())
    env.atoms

(* Enumerate the satisfy/fail assignments the current capabilities
   allow over a list of referenced (side, label) pairs, capped. *)
let ref_assignments env ref_labels =
  let choices =
    List.map
      (fun (s, l) ->
        let c = get_cap env s l in
        let opts =
          (if c.can_sat then [ true ] else [])
          @ if c.can_fail then [ false ] else []
        in
        ((s, l), if opts = [] then [ false ] else opts))
      ref_labels
  in
  let out = ref [] and count = ref 0 in
  let rec go assign = function
    | [] -> if !count < 64 then (out := List.rev assign :: !out; incr count)
    | (sl, opts) :: rest ->
        List.iter (fun v -> if !count < 64 then go ((sl, v) :: assign) rest) opts
  in
  go [] choices;
  List.rev !out

(* An assignment claiming a far node satisfies [(Lft, l1)] while
   failing [(Rgt, l2)] for an assumed containment l1 ⊑ l2 presupposes
   a counterexample to an assumption still under simultaneous check:
   infeasible under the coinduction, so the letter is never minted. *)
let assumption_infeasible env must must_not =
  Hashtbl.length env.assumed > 0
  && List.exists
       (fun (s1, l1) ->
         side_equal s1 Lft
         && List.exists
              (fun (s2, l2) ->
                side_equal s2 Rgt
                && Hashtbl.mem env.assumed (assume_key l1 l2))
              must_not)
       must

let build_letters env =
  Hashtbl.reset env.trans;
  let n = Array.length env.atoms in
  let seen = Hashtbl.create 97 in
  let acc = ref [] in
  let add bits inverse pred obj req =
    let key = String.init n (fun i -> if bits.(i) then '1' else '0') in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      acc :=
        { bits; l_inverse = inverse; l_pred = pred; l_obj = obj; l_req = req }
        :: !acc
    end
  in
  List.iter
    (fun inverse ->
      List.iter
        (fun pred ->
          (* Ref atoms this (direction, predicate) can reach. *)
          let ref_cands = ref [] in
          Array.iteri
            (fun i at ->
              match (at.arc.Rse.obj, at.ref_side) with
              | Rse.Ref l, Some s ->
                  if
                    Bool.equal at.arc.Rse.inverse inverse
                    && Value_set.pred_mem at.arc.Rse.pred pred
                  then ref_cands := (i, s, l) :: !ref_cands
              | _ -> ())
            env.atoms;
          let ref_cands = List.rev !ref_cands in
          let ref_labels =
            dedup
              (fun (s1, l1) (s2, l2) ->
                side_equal s1 s2 && Label.equal l1 l2)
              (List.map (fun (_, s, l) -> (s, l)) ref_cands)
          in
          let do_obj obj_term templ =
            let base = Array.make n false in
            classify_values env ~inverse ~pred obj_term base;
            if Rdf.Term.is_literal obj_term then begin
              List.iter
                (fun (i, s, l) ->
                  if literal_conforms env s l obj_term then base.(i) <- true)
                ref_cands;
              add base inverse pred templ { must = []; must_not = [] }
            end
            else
              List.iter
                (fun assign ->
                  let bits = Array.copy base in
                  let value s l =
                    List.exists
                      (fun ((s', l'), v) ->
                        v && side_equal s s' && Label.equal l l')
                      assign
                  in
                  List.iter
                    (fun (i, s, l) -> if value s l then bits.(i) <- true)
                    ref_cands;
                  let must =
                    List.filter_map
                      (fun (sl, v) -> if v then Some sl else None)
                      assign
                  and must_not =
                    List.filter_map
                      (fun (sl, v) -> if v then None else Some sl)
                      assign
                  in
                  if not (assumption_infeasible env must must_not) then
                    add bits inverse pred templ { must; must_not })
                (ref_assignments env ref_labels)
          in
          (* Fresh template first: it is the one the witness builder can
             mint unboundedly, so it should win bitset dedup ties. *)
          do_obj fresh_far Fresh_node;
          List.iter (fun t -> do_obj t (Concrete t)) env.obj_samples)
        env.pred_samples)
    env.dirs;
  env.letters <- Array.of_list (List.rev !acc)

(* ------------------------------------------------------------------ *)
(* Symbolic derivative and searches                                    *)
(* ------------------------------------------------------------------ *)

let atom_ix env side (a : Rse.arc) =
  let rs =
    match a.Rse.obj with
    | Rse.Ref l -> Some (canon_side env.congruent side l)
    | Rse.Values _ -> None
  in
  let rec find i =
    if i >= Array.length env.atoms then
      invalid_arg "Analysis: arc outside the compiled alphabet"
    else if
      Rse.arc_equal env.atoms.(i).arc a
      && ref_side_equal env.atoms.(i).ref_side rs
    then i
    else find (i + 1)
  in
  find 0

let rec conv env side (e : Rse.t) =
  match e with
  | Rse.Empty -> Hrse.empty env.tbl
  | Rse.Epsilon -> Hrse.epsilon env.tbl
  | Rse.Arc a -> Hrse.atom env.tbl (atom_ix env side a)
  | Rse.Star inner -> Hrse.star env.tbl (conv env side inner)
  | Rse.And (e1, e2) -> Hrse.and_ env.tbl (conv env side e1) (conv env side e2)
  | Rse.Or (e1, e2) -> Hrse.or_ env.tbl (conv env side e1) (conv env side e2)
  | Rse.Not inner -> Hrse.not_ env.tbl (conv env side inner)

(* ∂letter(e) — Deriv.deriv with arc matching replaced by the letter's
   atom bitset; memoised per hash-consed node (same construction as
   Dfa.deriv, over the analysis alphabet). *)
let sderiv env member state =
  let tbl = env.tbl in
  let memo : (int, Hrse.t) Hashtbl.t = Hashtbl.create 16 in
  let rec d (e : Hrse.t) =
    match Hashtbl.find_opt memo e.Hrse.id with
    | Some r -> r
    | None ->
        let r =
          match e.Hrse.node with
          | Hrse.Empty | Hrse.Epsilon -> Hrse.empty tbl
          | Hrse.Atom i ->
              if member.(i) then Hrse.epsilon tbl else Hrse.empty tbl
          | Hrse.Star inner -> Hrse.and_ tbl (d inner) e
          | Hrse.And es ->
              let rec splits acc before = function
                | [] -> acc
                | e :: rest ->
                    let acc =
                      match before with
                      | b :: _ when Hrse.equal b e -> acc
                      | _ ->
                          Hrse.and_all tbl (d e :: List.rev_append before rest)
                          :: acc
                    in
                    splits acc (e :: before) rest
              in
              Hrse.or_all tbl (splits [] [] es)
          | Hrse.Or es -> Hrse.or_all tbl (List.map d es)
          | Hrse.Not inner -> Hrse.not_ tbl (d inner)
        in
        Hashtbl.replace memo e.Hrse.id r;
        r
  in
  d state

let step env (state : Hrse.t) li =
  match Hashtbl.find_opt env.trans (state.Hrse.id, li) with
  | Some s -> s
  | None ->
      let s' = sderiv env env.letters.(li).bits state in
      Hashtbl.replace env.trans (state.Hrse.id, li) s';
      s'

(* Validation only reads a node's incoming arcs when the expression
   under test mentions inverse arcs, so inverse letters are invisible
   (identity transitions) to inverse-free expressions. *)
let visible_letters env ~has_inv =
  let out = ref [] in
  Array.iteri
    (fun i lt -> if has_inv || not lt.l_inverse then out := i :: !out)
    env.letters;
  List.rev !out

type search = Reached of int list | Exhausted | Capped

exception Done

let explore env ~has_inv (start : Hrse.t) ~goal =
  if goal start then Reached []
  else begin
    let letters = visible_letters env ~has_inv in
    let visited = Hashtbl.create 256 in
    let parent = Hashtbl.create 256 in
    let q = Queue.create () in
    Hashtbl.replace visited start.Hrse.id ();
    Queue.add start q;
    let result = ref None and capped = ref false in
    (try
       while not (Queue.is_empty q) do
         let s = Queue.pop q in
         List.iter
           (fun li ->
             let s' = step env s li in
             if not (Hashtbl.mem visited s'.Hrse.id) then begin
               Hashtbl.replace visited s'.Hrse.id ();
               Hashtbl.replace parent s'.Hrse.id (s.Hrse.id, li);
               Telemetry.Counter.incr env.states_counter;
               if goal s' then begin
                 result := Some s'.Hrse.id;
                 raise Done
               end;
               if Hashtbl.length visited > env.max_states then begin
                 capped := true;
                 raise Done
               end;
               Queue.add s' q
             end)
           letters
       done
     with Done -> ());
    match !result with
    | Some id ->
        let rec back id acc =
          if id = start.Hrse.id then acc
          else
            let p, li = Hashtbl.find parent id in
            back p (li :: acc)
        in
        Reached (back id [])
    | None -> if !capped then Capped else Exhausted
  end

(* Product search for containment: find a state pair with the left
   side nullable and the right side not.  Both sides consume the same
   letter, each through its own visibility filter. *)
let explore_product env ~has_inv1 ~has_inv2 (start1 : Hrse.t)
    (start2 : Hrse.t) ~collect =
  let goal (s1 : Hrse.t) (s2 : Hrse.t) = s1.Hrse.nullable && not s2.Hrse.nullable in
  let visited = Hashtbl.create 256 in
  let parent = Hashtbl.create 256 in
  let q = Queue.create () in
  let start_key = (start1.Hrse.id, start2.Hrse.id) in
  let goals = ref [] and n_goals = ref 0 and capped = ref false in
  Hashtbl.replace visited start_key ();
  if goal start1 start2 then begin
    goals := [ start_key ];
    incr n_goals
  end;
  Queue.add (start1, start2) q;
  (try
     while not (Queue.is_empty q) && !n_goals < collect do
       let s1, s2 = Queue.pop q in
       Array.iteri
         (fun li lt ->
           let vis1 = has_inv1 || not lt.l_inverse
           and vis2 = has_inv2 || not lt.l_inverse in
           if vis1 || vis2 then begin
             let t1 = if vis1 then step env s1 li else s1
             and t2 = if vis2 then step env s2 li else s2 in
             let k = (t1.Hrse.id, t2.Hrse.id) in
             if not (Hashtbl.mem visited k) then begin
               Hashtbl.replace visited k ();
               Hashtbl.replace parent k ((s1.Hrse.id, s2.Hrse.id), li);
               Telemetry.Counter.incr env.states_counter;
               if goal t1 t2 then begin
                 goals := k :: !goals;
                 incr n_goals
               end;
               if Hashtbl.length visited > env.max_states then begin
                 capped := true;
                 raise Done
               end;
               Queue.add (t1, t2) q
             end
           end)
         env.letters
     done
   with Done -> ());
  let path_of k =
    let rec back k acc =
      if fst k = fst start_key && snd k = snd start_key then acc
      else
        let p, li = Hashtbl.find parent k in
        back p (li :: acc)
    in
    back k []
  in
  (List.rev_map path_of !goals, if !capped then `Capped else `Complete)

(* ------------------------------------------------------------------ *)
(* Capability fixpoint                                                 *)
(* ------------------------------------------------------------------ *)

let all_labels env =
  List.concat_map
    (fun (side, schema) ->
      List.map (fun l -> (side, l)) (Schema.labels schema))
    env.sides

let focus_candidates env = fresh_far :: env.obj_samples

let focus_sat env vo = List.exists (Value_set.obj_mem vo) (focus_candidates env)

let focus_rej env vo =
  List.exists (fun t -> not (Value_set.obj_mem vo t)) (focus_candidates env)

(* Greatest fixpoint: start every (side, label) at ⊤ = {can_sat;
   can_fail}, rebuild the letter alphabet from the current
   capabilities, re-derive each label's capabilities by search, and
   repeat until stable.  Capabilities only shrink, so this terminates
   in ≤ 2·|labels| + 1 rounds; starting at ⊤ matches the coinductive
   (greatest-fixpoint) reading of recursive shape references. *)
let compute_caps env =
  let labels = all_labels env in
  List.iter
    (fun (s, l) ->
      Hashtbl.replace env.caps (cap_key s l) { can_sat = true; can_fail = true })
    labels;
  let changed = ref true in
  let rounds = ref 0 and max_rounds = (2 * List.length labels) + 2 in
  while !changed && !rounds < max_rounds do
    incr rounds;
    changed := false;
    build_letters env;
    Hashtbl.reset env.sat_paths;
    Hashtbl.reset env.refut_paths;
    List.iter
      (fun (side, l) ->
        let schema = schema_of env side in
        let sh =
          match Schema.find_shape schema l with
          | Some sh -> sh
          | None -> assert false
        in
        let has_inv = Rse.has_inverse sh.Schema.expr in
        let key = cap_key side l in
        let f_ok =
          match sh.Schema.focus with
          | None -> true
          | Some vo -> focus_sat env vo
        and f_rej =
          match sh.Schema.focus with
          | None -> false
          | Some vo -> focus_rej env vo
        in
        let h = conv env side sh.Schema.expr in
        let sat =
          f_ok
          &&
          match explore env ~has_inv h ~goal:(fun s -> s.Hrse.nullable) with
          | Reached p ->
              Hashtbl.replace env.sat_paths key p;
              true
          | Capped -> true
          | Exhausted -> false
        in
        let expr_refut =
          f_ok
          &&
          match
            explore env ~has_inv h ~goal:(fun s -> not s.Hrse.nullable)
          with
          | Reached p ->
              Hashtbl.replace env.refut_paths key (Refut_expr p);
              true
          | Capped -> true
          | Exhausted -> false
        in
        if f_rej && not (Hashtbl.mem env.refut_paths key) then
          Hashtbl.replace env.refut_paths key Refut_focus;
        let fail = f_rej || expr_refut in
        let old = get_cap env side l in
        let nw =
          { can_sat = old.can_sat && sat; can_fail = old.can_fail && fail }
        in
        if nw.can_sat <> old.can_sat || nw.can_fail <> old.can_fail then
          changed := true;
        Hashtbl.replace env.caps key nw)
      labels
  done

(* ------------------------------------------------------------------ *)
(* Witness concretisation                                              *)
(* ------------------------------------------------------------------ *)

exception Give_up of string

type builder = {
  benv : env;
  mutable g : Rdf.Graph.t;
  mutable k : int;
  stack : (int * string, Rdf.Term.t) Hashtbl.t;
}

let fresh_node b =
  b.k <- b.k + 1;
  Rdf.Term.Iri (Rdf.Iri.of_string_exn (Printf.sprintf "%sn%d" fresh_ns b.k))

let max_depth = 12

(* Realise a letter path as concrete triples rooted at [node].  Far
   nodes are minted fresh; their shape requirements recurse through the
   recorded satisfaction/refutation paths, with an in-progress stack so
   coinductive cycles close back onto the ancestor node (the
   greatest-fixpoint reading: assuming the ancestor conforms is
   self-consistent).  Any residual conflict — node collisions, inverse
   arcs polluting a closed neighbourhood — is caught by the final
   Validate replay, never reported. *)
let rec attach b node path depth =
  if depth > max_depth then raise (Give_up "witness depth limit");
  List.iter
    (fun li ->
      let lt = b.benv.letters.(li) in
      let reuse =
        match (lt.l_obj, lt.l_req.must, lt.l_req.must_not) with
        | Fresh_node, [ (s, l) ], [] -> Hashtbl.find_opt b.stack (cap_key s l)
        | _ -> None
      in
      let obj =
        match (lt.l_obj, reuse) with
        | _, Some ancestor -> ancestor
        | Concrete t, None -> t
        | Fresh_node, None -> fresh_node b
      in
      let subject, object_ =
        if lt.l_inverse then (obj, node) else (node, obj)
      in
      (match Rdf.Triple.make_opt subject lt.l_pred object_ with
      | Some tr -> b.g <- Rdf.Graph.add tr b.g
      | None -> raise (Give_up "letter needs a literal subject"));
      if (not (Rdf.Term.is_literal obj)) && reuse = None then begin
        List.iter (fun (s, l) -> satisfy_at b s l obj (depth + 1)) lt.l_req.must;
        List.iter
          (fun (s, l) -> refute_at b s l obj (depth + 1))
          lt.l_req.must_not
      end)
    path

and satisfy_at b side l node depth =
  let key = cap_key side l in
  match Hashtbl.find_opt b.stack key with
  | Some n when Rdf.Term.equal n node -> ()
  | _ -> (
      let schema = schema_of b.benv side in
      let sh =
        match Schema.find_shape schema l with
        | Some sh -> sh
        | None -> raise (Give_up "unknown label")
      in
      (match sh.Schema.focus with
      | Some vo when not (Value_set.obj_mem vo node) ->
          raise (Give_up "focus constraint rejects a required far node")
      | Some _ | None -> ());
      match Hashtbl.find_opt b.benv.sat_paths key with
      | None -> raise (Give_up "no satisfaction path recorded")
      | Some p ->
          let saved = Hashtbl.find_opt b.stack key in
          Hashtbl.replace b.stack key node;
          attach b node p depth;
          (match saved with
          | None -> Hashtbl.remove b.stack key
          | Some n -> Hashtbl.replace b.stack key n))

and refute_at b side l node depth =
  let schema = schema_of b.benv side in
  let sh =
    match Schema.find_shape schema l with
    | Some sh -> sh
    | None -> raise (Give_up "unknown label")
  in
  match sh.Schema.focus with
  | Some vo when not (Value_set.obj_mem vo node) ->
      (* the node already fails the shape's focus constraint *)
      ()
  | Some _ | None -> (
      match Hashtbl.find_opt b.benv.refut_paths (cap_key side l) with
      | Some (Refut_expr p) -> attach b node p depth
      | Some Refut_focus ->
          raise (Give_up "refutation needs a focus-rejected node")
      | None -> raise (Give_up "no refutation path recorded"))

let choose_focus env (sh : Schema.shape) ?focus path =
  let needs_subject =
    List.exists (fun li -> not env.letters.(li).l_inverse) path
  in
  let candidates =
    match focus with Some t -> [ t ] | None -> focus_candidates env
  in
  List.find_opt
    (fun t ->
      (match sh.Schema.focus with
      | None -> true
      | Some vo -> Value_set.obj_mem vo t)
      && not (needs_subject && Rdf.Term.is_literal t))
    candidates

let concretise env side schema l ?focus path =
  match Schema.find_shape schema l with
  | None -> Error "unknown label"
  | Some sh -> (
      match choose_focus env sh ?focus path with
      | None -> Error "no usable focus node"
      | Some f -> (
          let b =
            { benv = env; g = Rdf.Graph.empty; k = 0; stack = Hashtbl.create 8 }
          in
          Hashtbl.replace b.stack (cap_key side l) f;
          try
            attach b f path 0;
            Ok { focus = f; graph = b.g }
          with Give_up msg -> Error msg))

let verified_sat schema l (w : witness) =
  let s = Validate.session schema w.graph in
  Validate.check_bool s w.focus l

(* ------------------------------------------------------------------ *)
(* Emptiness                                                           *)
(* ------------------------------------------------------------------ *)

let emptiness_of env side schema l =
  let key = cap_key side l in
  let c = get_cap env side l in
  if not c.can_sat then Empty
  else
    match Hashtbl.find_opt env.sat_paths key with
    | None -> Unknown "derivative-space search hit the state cap"
    | Some p -> (
        match concretise env side schema l p with
        | Error m -> Unknown ("witness construction failed: " ^ m)
        | Ok w ->
            if verified_sat schema l w then Satisfiable w
            else Unknown "candidate witness failed verification")

let shape_satisfiable ?(tele = Telemetry.disabled) ?max_states ?extra_preds
    ?extra_objects schema l =
  if not (Schema.mem schema l) then
    invalid_arg "Analysis.shape_satisfiable: unknown label";
  Telemetry.Span.time (Telemetry.span tele "analysis_emptiness") (fun () ->
      let env =
        make_env ~tele ?max_states ?extra_preds ?extra_objects
          [ (Lft, schema) ]
      in
      compute_caps env;
      emptiness_of env Lft schema l)

let probe_label = Label.of_string "http://analysis.invalid/probe"

let expr_satisfiable ?tele ?max_states ?extra_preds ?extra_objects schema expr
    =
  match
    Schema.make_shapes
      ((probe_label, { Schema.focus = None; expr }) :: Schema.shapes schema)
  with
  | Error m -> Unknown ("probe schema rejected: " ^ m)
  | Ok s ->
      shape_satisfiable ?tele ?max_states ?extra_preds ?extra_objects s
        probe_label

(* ------------------------------------------------------------------ *)
(* Containment                                                         *)
(* ------------------------------------------------------------------ *)

let contains_in_env env s1 l1 s2 l2 =
  let sh1 =
    match Schema.find_shape s1 l1 with
    | Some sh -> sh
    | None -> invalid_arg "Analysis.contains: unknown label in S1"
  and sh2 =
    match Schema.find_shape s2 l2 with
    | Some sh -> sh
    | None -> invalid_arg "Analysis.contains: unknown label in S2"
  in
  let cap1 = get_cap env Lft l1 in
  if Label.equal l1 l2 && Hashtbl.mem env.congruent (Label.to_string l1) then
    (* Transitively identical definitions on both sides: containment is
       definitional, and the product search would otherwise walk the
       whole (diagonal) derivative space for nothing. *)
    Contained
  else if not cap1.can_sat then Contained (* S1 is empty: vacuous *)
  else begin
    let f1_ok t =
      match sh1.Schema.focus with
      | None -> true
      | Some vo -> Value_set.obj_mem vo t
    in
    (* A node accepted by S1's focus constraint but rejected by S2's
       refutes containment before any triple is consumed. *)
    let separator =
      match sh2.Schema.focus with
      | None -> None
      | Some vo2 ->
          List.find_opt
            (fun t -> f1_ok t && not (Value_set.obj_mem vo2 t))
            (focus_candidates env)
    in
    let has_inv1 = Rse.has_inverse sh1.Schema.expr
    and has_inv2 = Rse.has_inverse sh2.Schema.expr in
    let h1 = conv env Lft sh1.Schema.expr
    and h2 = conv env Rgt sh2.Schema.expr in
    let paths, completeness =
      explore_product env ~has_inv1 ~has_inv2 h1 h2 ~collect:24
    in
    let verify (w : witness) =
      let sess1 = Validate.session s1 w.graph
      and sess2 = Validate.session s2 w.graph in
      Validate.check_bool sess1 w.focus l1
      && not (Validate.check_bool sess2 w.focus l2)
    in
    let candidates =
      (match (separator, Hashtbl.find_opt env.sat_paths (cap_key Lft l1)) with
      | Some t, Some p -> [ (Some t, p) ]
      | _ -> [])
      @ List.map (fun p -> (None, p)) paths
    in
    let rec first_verified = function
      | [] -> None
      | (focus, p) :: rest -> (
          match concretise env Lft s1 l1 ?focus p with
          | Ok w when verify w -> Some w
          | Ok _ | Error _ -> first_verified rest)
    in
    match first_verified candidates with
    | Some w -> Refuted w
    | None -> (
        let no_separator = match separator with None -> true | Some _ -> false in
        match (paths, completeness) with
        | [], `Complete when no_separator -> Contained
        | [], `Capped -> Inconclusive "product search hit the state cap"
        | _ ->
            Inconclusive
              "counterexample candidates found but none survived \
               verification")
  end

(* Does any [Ref] atom occur in the scope of a [Not]?  The coinductive
   assumption discharge below is justified by an inductive failure
   witness for the right-hand side, which negation over references
   would break; such schemas fall back to the assumption-free search. *)
let rec refs_under_not ~neg (e : Rse.t) =
  match e with
  | Rse.Empty | Rse.Epsilon -> false
  | Rse.Arc a -> (
      match a.Rse.obj with Rse.Ref _ -> neg | Rse.Values _ -> false)
  | Rse.Star inner -> refs_under_not ~neg inner
  | Rse.And (a, b) | Rse.Or (a, b) ->
      refs_under_not ~neg a || refs_under_not ~neg b
  | Rse.Not inner -> refs_under_not ~neg:true inner

let schema_refs_under_not s =
  List.exists
    (fun (_, (sh : Schema.shape)) -> refs_under_not ~neg:false sh.Schema.expr)
    (Schema.shapes s)

(* Check a set of containment pairs l1 ⊑ l2 simultaneously and
   coinductively, Amadio–Cardelli style: while a pair is assumed,
   letters presupposing a counterexample to it are never minted
   ([assumption_infeasible]), and the assumption set is shrunk to a
   fixpoint — any pair whose own search fails to come back [Contained]
   leaves the set and the survivors are re-checked against the smaller
   alphabet.  At the fixpoint the assumption set is exactly the set of
   [Contained] verdicts it produces, i.e. self-consistent.

   Soundness: [Refuted] verdicts carry a concrete graph verified by
   the real engine, so only [Contained] needs the coinductive
   argument.  Suppose some pair in the fixpoint set had a
   counterexample graph.  Its focus fails the right shape with an
   inductive (finite-depth) failure proof — this is where refs under
   negation are excluded — and the only letters its neighbourhood
   word could use beyond the searched alphabet are ones claiming a
   far object satisfies-left/fails-right for another fixpoint pair;
   that object is a counterexample to *that* pair with a strictly
   shallower right-failure proof.  The descent cannot continue
   forever, so some fixpoint pair has a counterexample within the
   searched alphabet — contradicting that its search was exhaustive
   with no goal. *)
let check_pairs ~tele ?max_states ?extra_preds ?extra_objects s1 s2 pairs =
  let run assume =
    let env =
      make_env ~tele ?max_states ?extra_preds ?extra_objects ~assume
        [ (Lft, s1); (Rgt, s2) ]
    in
    compute_caps env;
    List.map (fun (l1, l2) -> ((l1, l2), contains_in_env env s1 l1 s2 l2)) pairs
  in
  if schema_refs_under_not s1 || schema_refs_under_not s2 then run []
  else
    let pair_eq (a1, a2) (b1, b2) = Label.equal a1 b1 && Label.equal a2 b2 in
    let rec fix assume =
      let results = run assume in
      let contained =
        List.filter_map
          (fun (p, v) -> match v with Contained -> Some p | _ -> None)
          results
      in
      let assume' =
        List.filter (fun p -> List.exists (pair_eq p) contained) assume
      in
      if List.length assume' = List.length assume then results else fix assume'
    in
    fix pairs

let contains ?(tele = Telemetry.disabled) ?max_states ?extra_preds
    ?extra_objects s1 l1 s2 l2 =
  Telemetry.Span.time (Telemetry.span tele "analysis_containment") (fun () ->
      match
        check_pairs ~tele ?max_states ?extra_preds ?extra_objects s1 s2
          [ (l1, l2) ]
      with
      | [ (_, v) ] -> v
      | _ -> assert false)

let check_compat ?(tele = Telemetry.disabled) ?max_states ?extra_preds
    ?extra_objects s_old s_new =
  Telemetry.Span.time (Telemetry.span tele "analysis_compat") (fun () ->
      let old_ls = Schema.labels s_old and new_ls = Schema.labels s_new in
      let shared = List.filter (Schema.mem s_new) old_ls in
      let results =
        check_pairs ~tele ?max_states ?extra_preds ?extra_objects s_old s_new
          (List.map (fun l -> (l, l)) shared)
      in
      let items =
        List.map (fun ((l, _), verdict) -> { label = l; verdict }) results
      in
      let removed =
        List.filter (fun l -> not (Schema.mem s_new l)) old_ls
      and added = List.filter (fun l -> not (Schema.mem s_old l)) new_ls in
      { items; removed; added })

(* ------------------------------------------------------------------ *)
(* Hygiene                                                             *)
(* ------------------------------------------------------------------ *)

let hygiene ?roots schema =
  let labels = Schema.labels schema in
  let roots =
    match roots with
    | Some rs -> rs
    | None -> (
        match
          List.filter
            (fun l ->
              match Schema.find_shape schema l with
              | Some { Schema.focus = Some _; _ } -> true
              | Some { Schema.focus = None; _ } | None -> false)
            labels
        with
        | [] -> labels
        | with_focus -> with_focus)
  in
  let reach =
    List.fold_left
      (fun acc r ->
        if Schema.mem schema r then
          Label.Set.union acc (Schema.dependencies schema r)
        else acc)
      Label.Set.empty roots
  in
  let unreachable = List.filter (fun l -> not (Label.Set.mem l reach)) labels in
  let env = make_env [ (Lft, schema) ] in
  compute_caps env;
  let unsatisfiable =
    List.filter (fun l -> not (get_cap env Lft l).can_sat) labels
  in
  { unreachable; unsatisfiable; roots }

(* ------------------------------------------------------------------ *)
(* Pre-validation optimizer                                            *)
(* ------------------------------------------------------------------ *)

let rec disjuncts (e : Rse.t) =
  match e with Rse.Or (a, b) -> disjuncts a @ disjuncts b | e -> [ e ]

(* Sound subset test on object sets: [true] guarantees ⟦a⟧ ⊆ ⟦b⟧.
   Term-level reasoning is restricted to non-literals — value-space
   membership means a literal can belong to an [Obj_in] set under a
   different datatype, so literal subsumption is not decidable
   syntactically (the "1.0"^^decimal ∈ {1} trap). *)
let rec obj_subset a b =
  Value_set.obj_equal a b
  ||
  match (a, b) with
  | _, Value_set.Obj_any -> true
  | Value_set.Obj_stem s, Value_set.Obj_stem t ->
      String.length s >= String.length t
      && String.sub s 0 (String.length t) = t
  | Value_set.Obj_stem _, Value_set.Obj_kind (Iri_kind | Non_literal_kind) ->
      true
  | Value_set.Obj_kind Iri_kind, Value_set.Obj_kind Non_literal_kind -> true
  | Value_set.Obj_kind Bnode_kind, Value_set.Obj_kind Non_literal_kind -> true
  | ( (Value_set.Obj_datatype _ | Value_set.Obj_datatype_iri _),
      Value_set.Obj_kind Literal_kind ) ->
      true
  | Value_set.Obj_datatype dt, Value_set.Obj_datatype_iri i ->
      Rdf.Iri.equal (Rdf.Xsd.iri dt) i
  | Value_set.Obj_in ts, _ ->
      List.for_all
        (fun t -> (not (Rdf.Term.is_literal t)) && Value_set.obj_mem b t)
        ts
  | Value_set.Obj_or xs, _ -> List.for_all (fun x -> obj_subset x b) xs
  | _, Value_set.Obj_or ys -> List.exists (fun y -> obj_subset a y) ys
  | _ -> false

let dedup_terms_value ts = dedup Rdf.Term.value_equal ts

let rec norm_obj (vo : Value_set.obj) =
  match vo with
  | Value_set.Obj_any | Value_set.Obj_datatype _ | Value_set.Obj_datatype_iri _
  | Value_set.Obj_kind _ | Value_set.Obj_stem _ ->
      vo
  | Value_set.Obj_in ts -> Value_set.Obj_in (dedup_terms_value ts)
  | Value_set.Obj_not v -> (
      match norm_obj v with
      | Value_set.Obj_not inner -> inner
      | v -> Value_set.Obj_not v)
  | Value_set.Obj_or vs -> (
      let vs =
        List.concat_map
          (fun v ->
            match norm_obj v with Value_set.Obj_or ws -> ws | w -> [ w ])
          vs
      in
      if List.exists (function Value_set.Obj_any -> true | _ -> false) vs then
        Value_set.Obj_any
      else
        let terms =
          dedup_terms_value
            (List.concat_map
               (function Value_set.Obj_in ts -> ts | _ -> [])
               vs)
        in
        let others =
          dedup Value_set.obj_equal
            (List.filter
               (function Value_set.Obj_in _ -> false | _ -> true)
               vs)
        in
        (* Drop union members subsumed by a later member, then members
           subsumed by an earlier survivor. *)
        let forward =
          List.filteri
            (fun i v ->
              not
                (List.exists
                   (fun (j, w) -> j > i && obj_subset v w)
                   (List.mapi (fun j w -> (j, w)) others)))
            others
        in
        let others =
          List.rev
            (List.fold_left
               (fun kept v ->
                 if List.exists (fun w -> obj_subset v w) kept then kept
                 else v :: kept)
               [] forward)
        in
        (* An enumerated IRI already covered by a surviving stem (or any
           other member) is redundant: non-literal value equality is
           plain equality, so membership is preserved. *)
        let terms =
          List.filter
            (fun t ->
              Rdf.Term.is_literal t
              || not (List.exists (fun w -> Value_set.obj_mem w t) others))
            terms
        in
        match
          (if terms = [] then [] else [ Value_set.Obj_in terms ]) @ others
        with
        | [] -> vo
        | [ v ] -> v
        | parts -> Value_set.Obj_or parts)

let norm_pred (vp : Value_set.pred) =
  match vp with
  | Value_set.Pred_in is -> (
      match dedup Rdf.Iri.equal is with
      | [ i ] -> Value_set.Pred i
      | is -> Value_set.Pred_in is)
  | Value_set.Pred _ | Value_set.Pred_stem _ | Value_set.Pred_any
  | Value_set.Pred_compl _ ->
      vp

let norm_arc (a : Rse.arc) =
  let obj =
    match a.Rse.obj with
    | Rse.Values vo -> Rse.Values (norm_obj vo)
    | Rse.Ref _ as r -> r
  in
  Rse.arc ~inverse:a.Rse.inverse (norm_pred a.Rse.pred) obj

(* Merge same-predicate enumerated-value arcs across an Or spine:
   (p→{a}) | (p→{b}) = (p→{a,b}).  Only Obj_in⊎Obj_in is merged so the
   result stays inside the printable ShExC surface. *)
let merge_arc_disjuncts parts =
  let try_merge acc e =
    match e with
    | Rse.Arc
        ({ Rse.obj = Rse.Values (Value_set.Obj_in ts); _ } as a) ->
        let rec go = function
          | [] -> None
          | Rse.Arc
              ({ Rse.obj = Rse.Values (Value_set.Obj_in us); _ } as b)
            :: rest
            when Value_set.pred_equal a.Rse.pred b.Rse.pred
                 && Bool.equal a.Rse.inverse b.Rse.inverse ->
              Some
                (Rse.arc ~inverse:b.Rse.inverse b.Rse.pred
                   (Rse.Values
                      (Value_set.Obj_in (dedup_terms_value (us @ ts))))
                :: rest)
          | x :: rest -> Option.map (fun r -> x :: r) (go rest)
        in
        (match go acc with Some acc -> acc | None -> acc @ [ e ])
    | _ -> acc @ [ e ]
  in
  List.fold_left try_merge [] parts

let expr_empty env e =
  match
    explore env ~has_inv:(Rse.has_inverse e) (conv env Lft e)
      ~goal:(fun s -> s.Hrse.nullable)
  with
  | Exhausted -> true
  | Reached _ | Capped -> false

let rec opt_expr env (e : Rse.t) =
  match e with
  | Rse.Empty | Rse.Epsilon -> e
  | Rse.Arc a -> norm_arc a
  | Rse.Star inner -> (
      match inner with
      | Rse.Or _ -> (
          (* (ε|e)⋆ = e⋆ under bag semantics *)
          match
            List.filter
              (function Rse.Epsilon -> false | _ -> true)
              (disjuncts inner)
          with
          | [] -> Rse.epsilon
          | parts -> Rse.star (opt_expr env (Rse.or_all parts)))
      | _ -> Rse.star (opt_expr env inner))
  | Rse.Not inner -> Rse.not_ (opt_expr env inner)
  | Rse.And (a, b) -> Rse.and_ (opt_expr env a) (opt_expr env b)
  | Rse.Or _ -> (
      let parts = disjuncts e in
      (* Pruning decides on the original sub-expressions (whose arcs
         are in the compiled alphabet); emptiness under the
         all-capabilities letter alphabet over-approximates
         reachability, so Exhausted proves real emptiness. *)
      let kept =
        match
          List.filter
            (fun p ->
              match p with Rse.Epsilon -> true | _ -> not (expr_empty env p))
            parts
        with
        | [] -> [ List.hd parts ] (* never introduce ∅: keep one disjunct *)
        | kept -> kept
      in
      let kept = List.map (opt_expr env) kept in
      Rse.or_all (merge_arc_disjuncts kept))

let optimize_stats schema =
  let env = make_env [ (Lft, schema) ] in
  (* Letters with all capabilities at ⊤ over-approximate the real
     alphabet, which is the conservative direction for disjunct
     pruning (only Exhausted searches prune). *)
  build_letters env;
  let changed = ref 0 in
  let shapes' =
    List.map
      (fun (l, (sh : Schema.shape)) ->
        let expr' = opt_expr env sh.Schema.expr in
        let focus' = Option.map norm_obj sh.Schema.focus in
        if
          not
            (Rse.equal expr' sh.Schema.expr
            && focus_opt_equal focus' sh.Schema.focus)
        then incr changed;
        (l, { Schema.focus = focus'; expr = expr' }))
      (Schema.shapes schema)
  in
  match Schema.make_shapes shapes' with
  | Ok s -> (s, !changed)
  | Error _ -> (schema, 0)

let optimize schema = fst (optimize_stats schema)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let witness_turtle (w : witness) = Turtle.Write.to_string w.graph

let pp_emptiness ppf = function
  | Satisfiable w ->
      Format.fprintf ppf "satisfiable (witness: focus %a, %d triple%s)"
        Rdf.Term.pp w.focus
        (Rdf.Graph.cardinal w.graph)
        (if Rdf.Graph.cardinal w.graph = 1 then "" else "s")
  | Empty -> Format.pp_print_string ppf "empty"
  | Unknown m -> Format.fprintf ppf "unknown (%s)" m

let pp_containment ppf = function
  | Contained -> Format.pp_print_string ppf "contained"
  | Refuted w ->
      Format.fprintf ppf "refuted (counterexample: focus %a, %d triple%s)"
        Rdf.Term.pp w.focus
        (Rdf.Graph.cardinal w.graph)
        (if Rdf.Graph.cardinal w.graph = 1 then "" else "s")
  | Inconclusive m -> Format.fprintf ppf "inconclusive (%s)" m

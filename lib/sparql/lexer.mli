(** Lexer for the SPARQL fragment accepted by {!Parse}. *)

type token =
  | Iriref of string
  | Pname of string * string
  | Var of string            (** [?x] or [$x], sigil stripped *)
  | String_lit of string
  | Langtag of string
  | Integer_lit of string
  | Decimal_lit of string
  | Double_lit of string
  | Kw of string             (** keyword, uppercased: SELECT, ASK, … *)
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Dot
  | Semicolon
  | Comma
  | Star
  | Plus
  | Caret_caret
  | Amp_amp                  (** [&&] *)
  | Pipe_pipe                (** [||] *)
  | Bang
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Eof

type located = { token : token; line : int; col : int }

exception Error of string * int * int

val tokenize : string -> located list

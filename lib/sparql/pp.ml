(* Concrete-syntax rendering of the SPARQL fragment, in the style of
   the paper's Example 4.  Output is valid SPARQL 1.1 (EXISTS/NOT
   EXISTS included). *)

let term_text t = Rdf.Term.to_string t

let term_pat_text = function
  | Ast.Var v -> "?" ^ v
  | Ast.Const t -> term_text t

let cmp_text = function
  | Ast.Eq -> "="
  | Ast.Ne -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="

let rec expr_text = function
  | Ast.E_var v -> "?" ^ v
  | Ast.E_const t -> term_text t
  | Ast.E_int n -> string_of_int n
  | Ast.E_bool b -> string_of_bool b
  | Ast.E_and (e1, e2) ->
      Printf.sprintf "(%s && %s)" (expr_text e1) (expr_text e2)
  | Ast.E_or (e1, e2) ->
      Printf.sprintf "(%s || %s)" (expr_text e1) (expr_text e2)
  | Ast.E_not e -> Printf.sprintf "(!%s)" (expr_text e)
  | Ast.E_cmp (op, e1, e2) ->
      Printf.sprintf "(%s %s %s)" (expr_text e1) (cmp_text op) (expr_text e2)
  | Ast.E_add (e1, e2) ->
      Printf.sprintf "(%s + %s)" (expr_text e1) (expr_text e2)
  | Ast.E_is_iri e -> Printf.sprintf "isIRI(%s)" (expr_text e)
  | Ast.E_is_literal e -> Printf.sprintf "isLiteral(%s)" (expr_text e)
  | Ast.E_is_blank e -> Printf.sprintf "isBlank(%s)" (expr_text e)
  | Ast.E_datatype e -> Printf.sprintf "datatype(%s)" (expr_text e)
  | Ast.E_bound v -> Printf.sprintf "bound(?%s)" v
  | Ast.E_exists p -> Printf.sprintf "EXISTS %s" (block 1 p)
  | Ast.E_not_exists p -> Printf.sprintf "NOT EXISTS %s" (block 1 p)
  | Ast.E_regex (e, prefix) ->
      Printf.sprintf "regex(str(%s), \"^%s\")" (expr_text e)
        (String.concat "\\\\." (String.split_on_char '.' prefix))

and indent depth = String.make (2 * depth) ' '

and pattern_lines depth = function
  | Ast.Bgp pats ->
      List.map
        (fun (tp : Ast.triple_pat) ->
          Printf.sprintf "%s%s %s %s ." (indent depth)
            (term_pat_text tp.tp_s) (term_pat_text tp.tp_p)
            (term_pat_text tp.tp_o))
        pats
  | Ast.Join (p1, p2) -> pattern_lines depth p1 @ pattern_lines depth p2
  | Ast.Filter (e, p) ->
      pattern_lines depth p
      @ [ Printf.sprintf "%sFILTER %s" (indent depth) (expr_text e) ]
  | Ast.Union (p1, p2) ->
      [ indent depth ^ "{" ]
      @ pattern_lines (depth + 1) p1
      @ [ indent depth ^ "} UNION {" ]
      @ pattern_lines (depth + 1) p2
      @ [ indent depth ^ "}" ]
  | Ast.Optional (p1, p2) ->
      pattern_lines depth p1
      @ [ indent depth ^ "OPTIONAL " ^ block depth p2 ]
  | Ast.Sub_select sel -> select_lines depth sel

and block depth p =
  String.concat "\n"
    (("{" :: pattern_lines (depth + 1) p) @ [ indent depth ^ "}" ])

and select_lines depth sel =
  let head =
    let vars = List.map (fun v -> "?" ^ v) sel.Ast.sel_vars in
    let aggs =
      List.map
        (fun (Ast.Count_star, v) -> Printf.sprintf "(COUNT(*) AS ?%s)" v)
        sel.Ast.sel_aggs
    in
    String.concat " " (vars @ aggs)
  in
  let group =
    if sel.Ast.sel_group_by = [] then []
    else
      [ Printf.sprintf "%sGROUP BY %s" (indent (depth + 1))
          (String.concat " "
             (List.map (fun v -> "?" ^ v) sel.Ast.sel_group_by)) ]
  in
  let having =
    List.map
      (fun e ->
        Printf.sprintf "%sHAVING %s" (indent (depth + 1)) (expr_text e))
      sel.Ast.sel_having
  in
  [ Printf.sprintf "%s{ SELECT %s%s {" (indent depth)
      (if sel.Ast.sel_distinct then "DISTINCT " else "")
      head ]
  @ pattern_lines (depth + 2) sel.Ast.sel_where
  @ [ indent (depth + 1) ^ "}" ]
  @ group @ having
  @ [ indent depth ^ "}" ]

let pattern_to_string p = String.concat "\n" (pattern_lines 1 p)

let query_to_string = function
  | Ast.Ask p -> Printf.sprintf "ASK {\n%s\n}" (pattern_to_string p)
  | Ast.Select_q sel ->
      (* Top-level select renders like a subselect without the braces. *)
      let lines = select_lines 0 sel in
      let body = String.concat "\n" lines in
      (* strip the outer "{ " and trailing "}" decorations *)
      let body =
        if String.length body > 2 && String.sub body 0 2 = "{ " then
          String.sub body 2 (String.length body - 4)
        else body
      in
      body

(** Translation of shapes to SPARQL queries — §3 of the paper.

    The paper argues Shape Expressions can be compiled to SPARQL for
    non-recursive shapes (its Scala implementation does so) but that
    the queries are unwieldy and cannot express recursion.  This
    module implements the translation for the SORBE fragment
    (unordered concatenations of arc constraints with cardinality
    intervals — which covers the paper's Example 1/4 shape) and is the
    basis of experiment E6.

    The generated query follows the paper's recipe — per-predicate
    counting sub-SELECTs with [GROUP BY]/[HAVING], value tests as
    [FILTER]s — using [NOT EXISTS] where Example 4 uses the
    [OPTIONAL]/[!bound] idiom, plus a closedness constraint Example 4
    omits (the paper admits its query “is not completely right”).

    Known, documented divergences from the RSE semantics (shared with
    any SPARQL encoding): SPARQL [=] compares numeric literals by
    value, and [datatype()] does not check lexical well-formedness. *)

val of_shape : Shex.Rse.t -> (Ast.select, string) result
(** [of_shape e] returns a query selecting (as [?X]) every node whose
    neighbourhood matches [e].  Fails when [e] is outside the
    translatable fragment: not SORBE, shape references (recursion),
    inverse arcs, or non-singleton predicate sets. *)

val for_node : Shex.Rse.t -> Rdf.Term.t -> (Ast.query, string) result
(** [for_node e n] is the [ASK] query deciding whether [n] matches. *)

val matching_nodes :
  Rdf.Graph.t -> Shex.Rse.t -> (Rdf.Term.t list, string) result
(** Generate, evaluate, and project: the nodes of [g] matching the
    shape, in term order. *)

val example4_query : unit -> Ast.query
(** The paper's Example 4 ASK query (Person with [foaf:age],
    [foaf:name]+, [foaf:knows]⋆), built in the paper's own style:
    counting sub-SELECTs joined by [FILTER]-ed counts and the
    [OPTIONAL]/[!bound] branch for the absent-[foaf:knows] case. *)

module Var_map = Map.Make (String)

module Solution = struct
  type t = Rdf.Term.t Var_map.t

  let empty = Var_map.empty
  let find v t = Var_map.find_opt v t
  let bindings t = Var_map.bindings t

  let pp ppf t =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (v, term) ->
           Format.fprintf ppf "?%s \xe2\x86\xa6 %a" v Rdf.Term.pp term))
      (bindings t)

  let compatible m1 m2 =
    Var_map.for_all
      (fun v t ->
        match Var_map.find_opt v m2 with
        | None -> true
        | Some t' -> Rdf.Term.equal t t')
      m1

  let merge m1 m2 = Var_map.union (fun _ t _ -> Some t) m1 m2
end

(* ------------------------------------------------------------------ *)
(* Expression values                                                  *)
(* ------------------------------------------------------------------ *)

type value = V_term of Rdf.Term.t | V_int of int | V_bool of bool

exception Eval_error

let value_of_term t = V_term t

let as_numeric = function
  | V_int n -> float_of_int n
  | V_term (Rdf.Term.Literal l) -> (
      match Rdf.Literal.as_float l with
      | Some f -> f
      | None -> raise Eval_error)
  | V_term _ | V_bool _ -> raise Eval_error

let is_numeric_value = function
  | V_int _ -> true
  | V_term (Rdf.Term.Literal l) -> Rdf.Literal.as_float l <> None
  | V_term _ | V_bool _ -> false

(* Effective boolean value (SPARQL §17.2.2). *)
let ebv = function
  | V_bool b -> b
  | V_int n -> n <> 0
  | V_term (Rdf.Term.Literal l) -> (
      match Rdf.Literal.as_bool l with
      | Some b -> b
      | None -> (
          match Rdf.Literal.as_float l with
          | Some f -> f <> 0.0 && not (Float.is_nan f)
          | None ->
              if
                Rdf.Iri.equal (Rdf.Literal.datatype l)
                  (Rdf.Xsd.iri Rdf.Xsd.String)
              then Rdf.Literal.lexical l <> ""
              else raise Eval_error))
  | V_term _ -> raise Eval_error

let value_equal v1 v2 =
  if is_numeric_value v1 && is_numeric_value v2 then
    Float.equal (as_numeric v1) (as_numeric v2)
  else
    match (v1, v2) with
    | V_term t1, V_term t2 -> Rdf.Term.equal t1 t2
    | V_bool b1, V_bool b2 -> Bool.equal b1 b2
    | V_bool b, V_term (Rdf.Term.Literal l)
    | V_term (Rdf.Term.Literal l), V_bool b -> (
        match Rdf.Literal.as_bool l with
        | Some b' -> Bool.equal b b'
        | None -> raise Eval_error)
    | _ -> raise Eval_error

let value_compare v1 v2 =
  if is_numeric_value v1 && is_numeric_value v2 then
    Float.compare (as_numeric v1) (as_numeric v2)
  else
    match (v1, v2) with
    | V_term (Rdf.Term.Literal l1), V_term (Rdf.Term.Literal l2)
      when Rdf.Iri.equal (Rdf.Literal.datatype l1) (Rdf.Literal.datatype l2)
      ->
        String.compare (Rdf.Literal.lexical l1) (Rdf.Literal.lexical l2)
    | _ -> raise Eval_error

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ------------------------------------------------------------------ *)
(* Pattern evaluation                                                 *)
(* ------------------------------------------------------------------ *)

(* Sub-SELECT memo: keyed structurally by the select AST, valid while
   the physical graph is unchanged (graphs are immutable, so a stale
   entry can only belong to a different graph and is evicted). *)
let subselect_cache : (Ast.select, Rdf.Graph.t * Rdf.Term.t Var_map.t list)
    Hashtbl.t =
  Hashtbl.create 64

let subst_term_pat mu = function
  | Ast.Var v -> (
      match Solution.find v mu with
      | Some t -> Ast.Const t
      | None -> Ast.Var v)
  | Ast.Const _ as c -> c

let match_triple_pat g mu (tp : Ast.triple_pat) =
  let s = subst_term_pat mu tp.tp_s in
  let p = subst_term_pat mu tp.tp_p in
  let o = subst_term_pat mu tp.tp_o in
  let s_const = match s with Ast.Const t -> Some t | Ast.Var _ -> None in
  let p_const =
    match p with
    | Ast.Const (Rdf.Term.Iri i) -> Some i
    | Ast.Const _ -> None
    | Ast.Var _ -> None
  in
  let o_const = match o with Ast.Const t -> Some t | Ast.Var _ -> None in
  (* A constant non-IRI predicate can never match. *)
  match p with
  | Ast.Const t when not (Rdf.Term.is_iri t) -> []
  | _ ->
      let candidates = Rdf.Graph.match_pattern ?s:s_const ?p:p_const ?o:o_const g in
      List.filter_map
        (fun tr ->
          let bind pat term mu =
            match (pat, mu) with
            | _, None -> None
            | Ast.Const t, Some mu ->
                if Rdf.Term.equal t term then Some mu else None
            | Ast.Var v, Some mu -> (
                match Var_map.find_opt v mu with
                | Some t when not (Rdf.Term.equal t term) -> None
                | _ -> Some (Var_map.add v term mu))
          in
          Some mu
          |> bind s (Rdf.Triple.subject tr)
          |> bind p (Rdf.Term.Iri (Rdf.Triple.predicate tr))
          |> bind o (Rdf.Triple.obj tr))
        candidates

let rec eval_expr g mu = function
  | Ast.E_var v -> (
      match Solution.find v mu with
      | Some t -> value_of_term t
      | None -> raise Eval_error)
  | Ast.E_const t -> value_of_term t
  | Ast.E_int n -> V_int n
  | Ast.E_bool b -> V_bool b
  | Ast.E_and (e1, e2) ->
      (* SPARQL ties error-handling into && : false && error = false *)
      let b1 = try Some (ebv (eval_expr g mu e1)) with Eval_error -> None in
      let b2 = try Some (ebv (eval_expr g mu e2)) with Eval_error -> None in
      (match (b1, b2) with
      | Some false, _ | _, Some false -> V_bool false
      | Some true, Some true -> V_bool true
      | _ -> raise Eval_error)
  | Ast.E_or (e1, e2) ->
      let b1 = try Some (ebv (eval_expr g mu e1)) with Eval_error -> None in
      let b2 = try Some (ebv (eval_expr g mu e2)) with Eval_error -> None in
      (match (b1, b2) with
      | Some true, _ | _, Some true -> V_bool true
      | Some false, Some false -> V_bool false
      | _ -> raise Eval_error)
  | Ast.E_not e -> V_bool (not (ebv (eval_expr g mu e)))
  | Ast.E_cmp (op, e1, e2) -> (
      let v1 = eval_expr g mu e1 and v2 = eval_expr g mu e2 in
      match op with
      | Ast.Eq -> V_bool (value_equal v1 v2)
      | Ast.Ne -> V_bool (not (value_equal v1 v2))
      | Ast.Lt -> V_bool (value_compare v1 v2 < 0)
      | Ast.Le -> V_bool (value_compare v1 v2 <= 0)
      | Ast.Gt -> V_bool (value_compare v1 v2 > 0)
      | Ast.Ge -> V_bool (value_compare v1 v2 >= 0))
  | Ast.E_add (e1, e2) -> (
      let v1 = eval_expr g mu e1 and v2 = eval_expr g mu e2 in
      match (v1, v2) with
      | V_int a, V_int b -> V_int (a + b)
      | _ ->
          let f = as_numeric v1 +. as_numeric v2 in
          if Float.is_integer f then V_int (int_of_float f) else raise Eval_error)
  | Ast.E_is_iri e -> (
      match eval_expr g mu e with
      | V_term t -> V_bool (Rdf.Term.is_iri t)
      | _ -> raise Eval_error)
  | Ast.E_is_literal e -> (
      match eval_expr g mu e with
      | V_term t -> V_bool (Rdf.Term.is_literal t)
      | _ -> raise Eval_error)
  | Ast.E_is_blank e -> (
      match eval_expr g mu e with
      | V_term t -> V_bool (Rdf.Term.is_bnode t)
      | _ -> raise Eval_error)
  | Ast.E_datatype e -> (
      match eval_expr g mu e with
      | V_term (Rdf.Term.Literal l) ->
          V_term (Rdf.Term.Iri (Rdf.Literal.datatype l))
      | _ -> raise Eval_error)
  | Ast.E_bound v -> V_bool (Solution.find v mu <> None)
  | Ast.E_exists p -> V_bool (eval_pattern g mu p <> [])
  | Ast.E_not_exists p -> V_bool (eval_pattern g mu p = [])
  | Ast.E_regex (e, prefix) -> (
      match eval_expr g mu e with
      | V_term (Rdf.Term.Literal l) ->
          V_bool (starts_with ~prefix (Rdf.Literal.lexical l))
      | V_term (Rdf.Term.Iri i) ->
          V_bool (starts_with ~prefix (Rdf.Iri.to_string i))
      | _ -> raise Eval_error)

and filter_holds g mu e =
  match ebv (eval_expr g mu e) with
  | b -> b
  | exception Eval_error -> false

and eval_pattern g mu = function
  | Ast.Bgp pats ->
      List.fold_left
        (fun mus tp -> List.concat_map (fun mu -> match_triple_pat g mu tp) mus)
        [ mu ] pats
  | Ast.Join (p1, p2) ->
      List.concat_map (fun mu1 -> eval_pattern g mu1 p2) (eval_pattern g mu p1)
  | Ast.Filter (e, p) ->
      List.filter (fun mu' -> filter_holds g mu' e) (eval_pattern g mu p)
  | Ast.Union (p1, p2) -> eval_pattern g mu p1 @ eval_pattern g mu p2
  | Ast.Optional (p1, p2) ->
      List.concat_map
        (fun mu1 ->
          match eval_pattern g mu1 p2 with [] -> [ mu1 ] | ext -> ext)
        (eval_pattern g mu p1)
  | Ast.Sub_select sel ->
      (* Bottom-up: evaluate independently, then merge compatibly with
         the outer solution.  Independence means the sub-SELECT's
         solutions do not depend on [mu], so they are memoised — a
         Join re-enters this branch once per outer solution. *)
      List.filter_map
        (fun nu ->
          if Solution.compatible mu nu then Some (Solution.merge mu nu)
          else None)
        (eval_select_memo g sel)

and eval_select_memo g sel =
  match Hashtbl.find_opt subselect_cache sel with
  | Some (g', sols) when g' == g -> sols
  | _ ->
      let sols = eval_select g sel in
      Hashtbl.replace subselect_cache sel (g, sols);
      sols

and eval_select g sel =
  let raw = eval_pattern g Solution.empty sel.Ast.sel_where in
  let solutions =
    if sel.Ast.sel_group_by = [] && sel.Ast.sel_aggs = [] then
      (* plain projection *)
      List.filter
        (fun mu -> List.for_all (fun e -> filter_holds g mu e) sel.Ast.sel_having)
        raw
      |> List.map (fun mu ->
             Var_map.filter (fun v _ -> List.mem v sel.Ast.sel_vars) mu)
    else begin
      (* group, aggregate, filter by HAVING, project *)
      let key mu =
        List.map (fun v -> Var_map.find_opt v mu) sel.Ast.sel_group_by
      in
      let groups = Hashtbl.create 16 in
      List.iter
        (fun mu ->
          let k = key mu in
          let prev = Option.value (Hashtbl.find_opt groups k) ~default:[] in
          Hashtbl.replace groups k (mu :: prev))
        raw;
      Hashtbl.fold
        (fun k members acc ->
          let base =
            List.fold_left2
              (fun m v t ->
                match t with Some t -> Var_map.add v t m | None -> m)
              Var_map.empty sel.Ast.sel_group_by k
          in
          let with_aggs =
            List.fold_left
              (fun m (agg, v) ->
                match agg with
                | Ast.Count_star ->
                    Var_map.add v
                      (Rdf.Term.Literal
                         (Rdf.Literal.integer (List.length members)))
                      m)
              base sel.Ast.sel_aggs
          in
          if List.for_all (fun e -> filter_holds g with_aggs e) sel.Ast.sel_having
          then
            Var_map.filter
              (fun v _ ->
                List.mem v sel.Ast.sel_vars
                || List.exists (fun (_, av) -> av = v) sel.Ast.sel_aggs)
              with_aggs
            :: acc
          else acc)
        groups []
    end
  in
  if sel.Ast.sel_distinct then
    List.sort_uniq (Var_map.compare Rdf.Term.compare) solutions
  else solutions

let select = eval_select
let ask g p = eval_pattern g Solution.empty p <> []

let run g = function
  | Ast.Ask p -> `Boolean (ask g p)
  | Ast.Select_q sel -> `Solutions (eval_select g sel)

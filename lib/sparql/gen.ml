let ( let* ) = Result.bind

(* Value-set test on a bound object variable. *)
let rec value_expr (vo : Shex.Value_set.obj) (o : Ast.var) :
    (Ast.expr, string) result =
  let var = Ast.E_var o in
  match vo with
  | Shex.Value_set.Obj_any -> Ok (Ast.E_bool true)
  | Shex.Value_set.Obj_in terms ->
      Ok
        (List.fold_left
           (fun acc t ->
             Ast.E_or (acc, Ast.E_cmp (Ast.Eq, var, Ast.E_const t)))
           (Ast.E_bool false) terms)
  | Shex.Value_set.Obj_datatype prim ->
      Ok
        (Ast.E_and
           ( Ast.E_is_literal var,
             Ast.E_cmp
               ( Ast.Eq,
                 Ast.E_datatype var,
                 Ast.E_const (Rdf.Term.Iri (Rdf.Xsd.iri prim)) ) ))
  | Shex.Value_set.Obj_datatype_iri iri ->
      Ok
        (Ast.E_and
           ( Ast.E_is_literal var,
             Ast.E_cmp
               (Ast.Eq, Ast.E_datatype var, Ast.E_const (Rdf.Term.Iri iri))
           ))
  | Shex.Value_set.Obj_kind k ->
      Ok
        (match k with
        | Shex.Value_set.Iri_kind -> Ast.E_is_iri var
        | Shex.Value_set.Bnode_kind -> Ast.E_is_blank var
        | Shex.Value_set.Literal_kind -> Ast.E_is_literal var
        | Shex.Value_set.Non_literal_kind ->
            Ast.E_or (Ast.E_is_iri var, Ast.E_is_blank var))
  | Shex.Value_set.Obj_stem stem ->
      Ok (Ast.E_and (Ast.E_is_iri var, Ast.E_regex (var, stem)))
  | Shex.Value_set.Obj_or parts ->
      List.fold_left
        (fun acc part ->
          let* acc = acc in
          let* e = value_expr part o in
          Ok (Ast.E_or (acc, e)))
        (Ok (Ast.E_bool false))
        parts
  | Shex.Value_set.Obj_not inner ->
      let* e = value_expr inner o in
      Ok (Ast.E_not e)

type analysed = {
  a_pred : Rdf.Iri.t;
  a_min : int;
  a_max : int option;
  a_value : Shex.Value_set.obj;
}

let analyse shape =
  match Shex.Sorbe.of_rse shape with
  | None ->
      Error
        "shape is outside the SPARQL-translatable fragment (not a \
         single-occurrence concatenation of arc constraints)"
  | Some constrs ->
      List.fold_left
        (fun acc (c : Shex.Sorbe.constr) ->
          let* acc = acc in
          if c.arc.inverse then Error "inverse arcs are not translatable"
          else
            let* pred =
              match c.arc.pred with
              | Shex.Value_set.Pred iri -> Ok iri
              | _ -> Error "only singleton predicate sets are translatable"
            in
            let* value =
              match c.arc.obj with
              | Shex.Rse.Values vo -> Ok vo
              | Shex.Rse.Ref _ ->
                  Error
                    "shape references (recursion) cannot be expressed in \
                     SPARQL (\xc2\xa73)"
            in
            Ok
              ({ a_pred = pred;
                 a_min = c.card.Shex.Sorbe.min;
                 a_max = c.card.Shex.Sorbe.max;
                 a_value = value }
              :: acc))
        (Ok []) constrs
      |> Result.map List.rev

(* Build the query around a focus term pattern (variable for SELECT,
   constant for ASK). *)
let build focus constrs =
  let x_vars, group_by =
    match focus with Ast.Var v -> ([ v ], [ v ]) | Ast.Const _ -> ([], [])
  in
  let fresh =
    let counter = ref 0 in
    fun base ->
      incr counter;
      Printf.sprintf "%s%d" base !counter
  in
  (* Anchor: the focus node appears as a subject. *)
  let anchor =
    Ast.Sub_select
      (Ast.select ~distinct:true x_vars
         (Ast.bgp
            [ Ast.triple focus (Ast.v (fresh "ap")) (Ast.v (fresh "ao")) ]))
  in
  (* Per-constraint cardinality patterns. *)
  let* cardinality_patterns =
    List.fold_left
      (fun acc a ->
        let* acc = acc in
        let o = fresh "o" in
        let c = fresh "c" in
        let count_bgp =
          Ast.bgp [ Ast.triple focus (Ast.c (Rdf.Term.Iri a.a_pred)) (Ast.v o) ]
        in
        let count_select having =
          Ast.Sub_select
            (Ast.select ~group_by ~aggs:[ (Ast.Count_star, c) ]
               ~having x_vars count_bgp)
        in
        let ge m = Ast.E_cmp (Ast.Ge, Ast.E_var c, Ast.E_int m) in
        let le n = Ast.E_cmp (Ast.Le, Ast.E_var c, Ast.E_int n) in
        let absent =
          Ast.Filter
            ( Ast.E_not_exists
                (Ast.bgp
                   [ Ast.triple focus
                       (Ast.c (Rdf.Term.Iri a.a_pred))
                       (Ast.v (fresh "o")) ]),
              Ast.bgp [] )
        in
        match (a.a_min, a.a_max) with
        | 0, None -> Ok acc
        | 0, Some n -> Ok (Ast.Union (count_select [ le n ], absent) :: acc)
        | m, None -> Ok (count_select [ ge m ] :: acc)
        | m, Some n -> Ok (count_select [ ge m; le n ] :: acc))
      (Ok []) constrs
    |> Result.map List.rev
  in
  (* Value-correctness: no triple with this predicate may carry a
     failing object. *)
  let* value_filters =
    List.fold_left
      (fun acc a ->
        let* acc = acc in
        let o = fresh "vo" in
        let* ok = value_expr a.a_value o in
        Ok
          (Ast.E_not_exists
             (Ast.Filter
                ( Ast.E_not ok,
                  Ast.bgp
                    [ Ast.triple focus (Ast.c (Rdf.Term.Iri a.a_pred))
                        (Ast.v o) ] ))
          :: acc))
      (Ok []) constrs
    |> Result.map List.rev
  in
  (* Closedness: every outgoing predicate is one of the shape's.
     Example 4 omits this; the RSE semantics requires it. *)
  let closedness =
    let p = fresh "p" and o = fresh "oc" in
    Ast.E_not_exists
      (Ast.Filter
         ( Ast.conj_all
             (List.map
                (fun a ->
                  Ast.E_cmp
                    ( Ast.Ne,
                      Ast.E_var p,
                      Ast.E_const (Rdf.Term.Iri a.a_pred) ))
                constrs),
           Ast.bgp [ Ast.triple focus (Ast.v p) (Ast.v o) ] ))
  in
  let where =
    Ast.Filter
      ( Ast.conj_all (value_filters @ [ closedness ]),
        Ast.join_all (anchor :: cardinality_patterns) )
  in
  Ok where

let of_shape shape =
  let* constrs = analyse shape in
  let* where = build (Ast.Var "X") constrs in
  Ok (Ast.select ~distinct:true [ "X" ] where)

let for_node shape node =
  let* constrs = analyse shape in
  let* where = build (Ast.Const node) constrs in
  Ok (Ast.Ask where)

let matching_nodes g shape =
  let* sel = of_shape shape in
  Ok
    (Eval.select g sel
    |> List.filter_map (fun mu -> Eval.Solution.find "X" mu)
    |> List.sort_uniq Rdf.Term.compare)

(* ------------------------------------------------------------------ *)
(* The paper's Example 4, in its own style                            *)
(* ------------------------------------------------------------------ *)

let example4_query () =
  let foaf l = Rdf.Term.Iri (Rdf.Iri.of_string_exn ("http://xmlns.com/foaf/0.1/" ^ l)) in
  let xsd p = Rdf.Term.Iri (Rdf.Xsd.iri p) in
  let x = "Person" in
  let count_select ?(filter = None) ~agg ~having pred =
    let bgp = Ast.bgp [ Ast.triple (Ast.v x) (Ast.c pred) (Ast.v "o") ] in
    let where = match filter with None -> bgp | Some e -> Ast.Filter (e, bgp) in
    Ast.Sub_select
      (Ast.select ~group_by:[ x ] ~aggs:[ (Ast.Count_star, agg) ] ~having
         [ x ] where)
  in
  let is_lit_with_dt dt =
    Ast.E_and
      ( Ast.E_is_literal (Ast.E_var "o"),
        Ast.E_cmp (Ast.Eq, Ast.E_datatype (Ast.E_var "o"), Ast.E_const dt) )
  in
  let eq_count a b = Ast.E_cmp (Ast.Eq, Ast.E_var a, Ast.E_var b) in
  let c_ge agg n = Ast.E_cmp (Ast.Ge, Ast.E_var agg, Ast.E_int n) in
  let c_eq agg n = Ast.E_cmp (Ast.Eq, Ast.E_var agg, Ast.E_int n) in
  (* age: exactly one arc, and exactly one arc that is an xsd:integer *)
  let age_all = count_select ~agg:"age_all" ~having:[ c_eq "age_all" 1 ]
      (foaf "age")
  in
  let age_ok =
    count_select
      ~filter:(Some (is_lit_with_dt (xsd Rdf.Xsd.Integer)))
      ~agg:"age_ok" ~having:[ c_eq "age_ok" 1 ] (foaf "age")
  in
  (* name: ≥1 arcs, all of them xsd:string *)
  let name_all =
    count_select ~agg:"Person_c0" ~having:[ c_ge "Person_c0" 1 ] (foaf "name")
  in
  let name_ok =
    count_select
      ~filter:(Some (is_lit_with_dt (xsd Rdf.Xsd.String)))
      ~agg:"Person_c1" ~having:[ c_ge "Person_c1" 1 ] (foaf "name")
  in
  (* knows: either all values are IRIs/bnodes (counts agree), or the
     predicate is absent — the paper's OPTIONAL/!bound branch. *)
  let knows_all = count_select ~agg:"Person_c2" ~having:[] (foaf "knows") in
  let knows_ok =
    count_select
      ~filter:
        (Some
           (Ast.E_or
              ( Ast.E_is_iri (Ast.E_var "o"),
                Ast.E_is_blank (Ast.E_var "o") )))
      ~agg:"Person_c3"
      ~having:[ c_ge "Person_c3" 1 ]
      (foaf "knows")
  in
  let knows_present =
    Ast.Filter
      (eq_count "Person_c2" "Person_c3", Ast.Join (knows_all, knows_ok))
  in
  let knows_absent =
    (* { SELECT ?Person { ?Person ?ap ?ao OPTIONAL { ?Person foaf:knows ?o }
         FILTER (!bound(?o)) } } — we give OPTIONAL an anchor so ?Person
         ranges over subjects, where the paper leaves it implicit. *)
    Ast.Sub_select
      (Ast.select ~distinct:true [ x ]
         (Ast.Filter
            ( Ast.E_not (Ast.E_bound "o"),
              Ast.Optional
                ( Ast.bgp [ Ast.triple (Ast.v x) (Ast.v "ap") (Ast.v "ao") ],
                  Ast.bgp [ Ast.triple (Ast.v x) (Ast.c (foaf "knows")) (Ast.v "o") ]
                ) )))
  in
  Ast.Ask
    (Ast.Join
       ( age_all,
         Ast.Join
           ( age_ok,
             Ast.Join
               ( Ast.Filter
                   ( eq_count "Person_c0" "Person_c1",
                     Ast.Join (name_all, name_ok) ),
                 Ast.Union (knows_present, knows_absent) ) ) ))

module L = Lexer

exception Parse_error of string * int * int

type state = {
  tokens : L.located array;
  mutable index : int;
  mutable namespaces : Rdf.Namespace.t;
  mutable base : Rdf.Iri.t option;
}

let current st = st.tokens.(st.index)
let advance st = if st.index < Array.length st.tokens - 1 then st.index <- st.index + 1

let error st msg =
  let { L.line; col; _ } = current st in
  raise (Parse_error (msg, line, col))

let expect st token msg =
  if (current st).L.token = token then advance st else error st msg

let expect_kw st kw =
  match (current st).L.token with
  | L.Kw k when k = kw -> advance st
  | _ -> error st (Printf.sprintf "expected %s" kw)

let resolve_iri st text =
  match Rdf.Iri.of_string text with
  | Error msg -> error st msg
  | Ok iri -> (
      if Rdf.Iri.is_absolute iri then iri
      else
        match st.base with
        | Some base -> Rdf.Iri.resolve ~base iri
        | None -> iri)

let expand_pname st prefix local =
  match Rdf.Namespace.find prefix st.namespaces with
  | None -> error st (Printf.sprintf "unbound prefix %S" prefix)
  | Some ns -> (
      match Rdf.Iri.of_string (ns ^ local) with
      | Ok iri -> iri
      | Error msg -> error st msg)

let parse_iri st =
  match (current st).L.token with
  | L.Iriref text ->
      advance st;
      resolve_iri st text
  | L.Pname ("_", _) -> error st "blank node where an IRI is required"
  | L.Pname (prefix, local) ->
      advance st;
      expand_pname st prefix local
  | L.Kw "A" ->
      advance st;
      Rdf.Namespace.Vocab.rdf_type
  | _ -> error st "expected an IRI"

(* Terms in triple patterns.  Blank nodes become variables named with
   the "_:" prefix (standard BGP semantics). *)
let parse_term_pat st : Ast.term_pat =
  match (current st).L.token with
  | L.Var v ->
      advance st;
      Ast.Var v
  | L.Pname ("_", local) ->
      advance st;
      Ast.Var ("_:" ^ local)
  | L.Iriref _ | L.Pname _ | L.Kw "A" -> Ast.Const (Rdf.Term.Iri (parse_iri st))
  | L.String_lit s -> (
      advance st;
      match (current st).L.token with
      | L.Langtag tag ->
          advance st;
          Ast.Const (Rdf.Term.Literal (Rdf.Literal.make ~lang:tag s))
      | L.Caret_caret ->
          advance st;
          let dt = parse_iri st in
          Ast.Const (Rdf.Term.Literal (Rdf.Literal.make ~datatype:dt s))
      | _ -> Ast.Const (Rdf.Term.Literal (Rdf.Literal.string s)))
  | L.Integer_lit s ->
      advance st;
      Ast.Const (Rdf.Term.Literal (Rdf.Literal.typed Rdf.Xsd.Integer s))
  | L.Decimal_lit s ->
      advance st;
      Ast.Const (Rdf.Term.Literal (Rdf.Literal.typed Rdf.Xsd.Decimal s))
  | L.Double_lit s ->
      advance st;
      Ast.Const (Rdf.Term.Literal (Rdf.Literal.typed Rdf.Xsd.Double s))
  | L.Kw "TRUE" ->
      advance st;
      Ast.Const (Rdf.Term.Literal (Rdf.Literal.boolean true))
  | L.Kw "FALSE" ->
      advance st;
      Ast.Const (Rdf.Term.Literal (Rdf.Literal.boolean false))
  | _ -> error st "expected a term (variable, IRI or literal)"

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st = parse_or_expr st

and parse_or_expr st =
  let e = parse_and_expr st in
  let rec go acc =
    match (current st).L.token with
    | L.Pipe_pipe ->
        advance st;
        go (Ast.E_or (acc, parse_and_expr st))
    | _ -> acc
  in
  go e

and parse_and_expr st =
  let e = parse_rel_expr st in
  let rec go acc =
    match (current st).L.token with
    | L.Amp_amp ->
        advance st;
        go (Ast.E_and (acc, parse_rel_expr st))
    | _ -> acc
  in
  go e

and parse_rel_expr st =
  let e = parse_add_expr st in
  let cmp op =
    advance st;
    Ast.E_cmp (op, e, parse_add_expr st)
  in
  match (current st).L.token with
  | L.Eq -> cmp Ast.Eq
  | L.Neq -> cmp Ast.Ne
  | L.Lt -> cmp Ast.Lt
  | L.Le -> cmp Ast.Le
  | L.Gt -> cmp Ast.Gt
  | L.Ge -> cmp Ast.Ge
  | _ -> e

and parse_add_expr st =
  let e = parse_unary_expr st in
  let rec go acc =
    match (current st).L.token with
    | L.Plus ->
        advance st;
        go (Ast.E_add (acc, parse_unary_expr st))
    | _ -> acc
  in
  go e

and parse_unary_expr st =
  match (current st).L.token with
  | L.Bang ->
      advance st;
      Ast.E_not (parse_unary_expr st)
  | _ -> parse_primary_expr st

and parse_primary_expr st =
  match (current st).L.token with
  | L.Lparen ->
      advance st;
      let e = parse_expr st in
      expect st L.Rparen "expected )";
      e
  | L.Var v ->
      advance st;
      Ast.E_var v
  | L.Integer_lit s ->
      advance st;
      (match int_of_string_opt s with
      | Some n -> Ast.E_int n
      | None -> error st "integer out of range")
  | L.String_lit s -> (
      advance st;
      match (current st).L.token with
      | L.Langtag tag ->
          advance st;
          Ast.E_const (Rdf.Term.Literal (Rdf.Literal.make ~lang:tag s))
      | L.Caret_caret ->
          advance st;
          let dt = parse_iri st in
          Ast.E_const (Rdf.Term.Literal (Rdf.Literal.make ~datatype:dt s))
      | _ -> Ast.E_const (Rdf.Term.Literal (Rdf.Literal.string s)))
  | L.Kw "TRUE" ->
      advance st;
      Ast.E_bool true
  | L.Kw "FALSE" ->
      advance st;
      Ast.E_bool false
  | L.Kw (("ISIRI" | "ISURI") as _k) ->
      advance st;
      Ast.E_is_iri (parenthesised st)
  | L.Kw "ISLITERAL" ->
      advance st;
      Ast.E_is_literal (parenthesised st)
  | L.Kw "ISBLANK" ->
      advance st;
      Ast.E_is_blank (parenthesised st)
  | L.Kw "DATATYPE" ->
      advance st;
      Ast.E_datatype (parenthesised st)
  | L.Kw "BOUND" -> (
      advance st;
      expect st L.Lparen "expected (";
      match (current st).L.token with
      | L.Var v ->
          advance st;
          expect st L.Rparen "expected )";
          Ast.E_bound v
      | _ -> error st "bound() takes a variable")
  | L.Kw "STR" ->
      (* str(e) — only as the regex subject; pass the inner expression
         through since our regex builtin applies str() itself. *)
      advance st;
      parenthesised st
  | L.Kw "REGEX" -> (
      advance st;
      expect st L.Lparen "expected (";
      let subject = parse_expr st in
      expect st L.Comma "expected , in regex";
      match (current st).L.token with
      | L.String_lit pattern ->
          advance st;
          expect st L.Rparen "expected )";
          let prefix =
            if String.length pattern > 0 && pattern.[0] = '^' then
              String.sub pattern 1 (String.length pattern - 1)
            else pattern
          in
          Ast.E_regex (subject, prefix)
      | _ -> error st "regex pattern must be a string literal")
  | L.Kw "EXISTS" ->
      advance st;
      Ast.E_exists (parse_group st)
  | L.Kw "NOT" ->
      advance st;
      expect_kw st "EXISTS";
      Ast.E_not_exists (parse_group st)
  | L.Iriref _ | L.Pname _ -> Ast.E_const (Rdf.Term.Iri (parse_iri st))
  | _ -> error st "expected an expression"

and parenthesised st =
  expect st L.Lparen "expected (";
  let e = parse_expr st in
  expect st L.Rparen "expected )";
  e

(* ------------------------------------------------------------------ *)
(* Graph patterns                                                     *)
(* ------------------------------------------------------------------ *)

(* triplesBlock with ';' and ',' abbreviations. *)
and parse_triples_block st =
  let triples = ref [] in
  let subject = parse_term_pat st in
  let rec predicate_object_list () =
    let pred = parse_term_pat st in
    let rec object_list () =
      let obj = parse_term_pat st in
      triples := { Ast.tp_s = subject; tp_p = pred; tp_o = obj } :: !triples;
      match (current st).L.token with
      | L.Comma ->
          advance st;
          object_list ()
      | _ -> ()
    in
    object_list ();
    match (current st).L.token with
    | L.Semicolon -> (
        advance st;
        match (current st).L.token with
        | L.Dot | L.Rbrace | L.Semicolon -> ()
        | _ -> predicate_object_list ())
    | _ -> ()
  in
  predicate_object_list ();
  List.rev !triples

and parse_group st : Ast.pattern =
  expect st L.Lbrace "expected {";
  let acc = ref None in
  let filters = ref [] in
  let join p =
    acc := Some (match !acc with None -> p | Some q -> Ast.Join (q, p))
  in
  let rec loop () =
    match (current st).L.token with
    | L.Rbrace -> advance st
    | L.Dot ->
        advance st;
        loop ()
    | L.Kw "FILTER" ->
        advance st;
        (* FILTER EXISTS { } / FILTER NOT EXISTS { } / FILTER (expr) *)
        let e =
          match (current st).L.token with
          | L.Kw "EXISTS" ->
              advance st;
              Ast.E_exists (parse_group st)
          | L.Kw "NOT" ->
              advance st;
              expect_kw st "EXISTS";
              Ast.E_not_exists (parse_group st)
          | _ ->
              (* FILTER (expr) or FILTER builtin(args) *)
              parse_primary_expr st
        in
        filters := e :: !filters;
        loop ()
    | L.Kw "OPTIONAL" ->
        advance st;
        let right = parse_group st in
        let left = match !acc with None -> Ast.Bgp [] | Some p -> p in
        acc := Some (Ast.Optional (left, right));
        loop ()
    | L.Lbrace ->
        (* Braced subgroup, possibly a UNION chain or a sub-SELECT. *)
        let first = parse_group_or_subselect st in
        let rec unions acc_p =
          match (current st).L.token with
          | L.Kw "UNION" ->
              advance st;
              let next = parse_group_or_subselect st in
              unions (Ast.Union (acc_p, next))
          | _ -> acc_p
        in
        join (unions first);
        loop ()
    | L.Eof -> error st "unterminated group"
    | _ ->
        let triples = parse_triples_block st in
        join (Ast.Bgp triples);
        loop ()
  in
  loop ();
  let body = match !acc with None -> Ast.Bgp [] | Some p -> p in
  List.fold_left (fun p e -> Ast.Filter (e, p)) body (List.rev !filters)

and parse_group_or_subselect st : Ast.pattern =
  (* Caller saw '{'.  Look one token ahead for SELECT. *)
  let saved = st.index in
  expect st L.Lbrace "expected {";
  match (current st).L.token with
  | L.Kw "SELECT" ->
      let sel = parse_select st in
      expect st L.Rbrace "expected } after subselect";
      Ast.Sub_select sel
  | _ ->
      st.index <- saved;
      parse_group st

(* ------------------------------------------------------------------ *)
(* SELECT / ASK                                                       *)
(* ------------------------------------------------------------------ *)

and parse_select st : Ast.select =
  expect_kw st "SELECT";
  let distinct =
    match (current st).L.token with
    | L.Kw "DISTINCT" ->
        advance st;
        true
    | _ -> false
  in
  let vars = ref [] and aggs = ref [] in
  let rec projection () =
    match (current st).L.token with
    | L.Var v ->
        advance st;
        vars := v :: !vars;
        projection ()
    | L.Star ->
        advance st;
        projection ()
    | L.Lparen -> (
        advance st;
        match (current st).L.token with
        | L.Kw "COUNT" ->
            advance st;
            expect st L.Lparen "expected ( after COUNT";
            expect st L.Star "only COUNT(*) is supported";
            expect st L.Rparen "expected )";
            expect_kw st "AS";
            (match (current st).L.token with
            | L.Var v ->
                advance st;
                aggs := (Ast.Count_star, v) :: !aggs
            | _ -> error st "expected a variable after AS");
            expect st L.Rparen "expected )";
            projection ()
        | _ -> error st "expected an aggregate")
    | _ -> ()
  in
  projection ();
  (* WHERE is optional before the group. *)
  (match (current st).L.token with
  | L.Kw "WHERE" -> advance st
  | _ -> ());
  let where = parse_group st in
  let group_by = ref [] in
  (match (current st).L.token with
  | L.Kw "GROUP" ->
      advance st;
      expect_kw st "BY";
      let rec go () =
        match (current st).L.token with
        | L.Var v ->
            advance st;
            group_by := v :: !group_by;
            go ()
        | _ -> ()
      in
      go ()
  | _ -> ());
  let having = ref [] in
  let rec having_loop () =
    match (current st).L.token with
    | L.Kw "HAVING" ->
        advance st;
        having := parenthesised st :: !having;
        having_loop ()
    | _ -> ()
  in
  having_loop ();
  { Ast.sel_vars = List.rev !vars;
    sel_aggs = List.rev !aggs;
    sel_where = where;
    sel_group_by = List.rev !group_by;
    sel_having = List.rev !having;
    sel_distinct = distinct }

let parse_prologue st =
  let rec go () =
    match (current st).L.token with
    | L.Kw "PREFIX" -> (
        advance st;
        match (current st).L.token with
        | L.Pname (prefix, "") -> (
            advance st;
            match (current st).L.token with
            | L.Iriref text ->
                advance st;
                let iri = resolve_iri st text in
                st.namespaces <-
                  Rdf.Namespace.add prefix (Rdf.Iri.to_string iri)
                    st.namespaces;
                go ()
            | _ -> error st "expected namespace IRI")
        | _ -> error st "expected prefix declaration")
    | L.Kw "BASE" -> (
        advance st;
        match (current st).L.token with
        | L.Iriref text ->
            advance st;
            st.base <- Some (resolve_iri st text);
            go ()
        | _ -> error st "expected base IRI")
    | _ -> ()
  in
  go ()

let parse src =
  match L.tokenize src with
  | exception L.Error (msg, line, col) ->
      Error (Printf.sprintf "lexical error at %d:%d: %s" line col msg)
  | tokens -> (
      let st =
        { tokens = Array.of_list tokens;
          index = 0;
          namespaces = Rdf.Namespace.empty;
          base = None }
      in
      match
        parse_prologue st;
        match (current st).L.token with
        | L.Kw "ASK" ->
            advance st;
            let p = parse_group st in
            expect st L.Eof "trailing content after query";
            Ast.Ask p
        | L.Kw "SELECT" ->
            let sel = parse_select st in
            expect st L.Eof "trailing content after query";
            Ast.Select_q sel
        | _ -> error st "expected ASK or SELECT"
      with
      | q -> Ok q
      | exception Parse_error (msg, line, col) ->
          Error (Printf.sprintf "parse error at %d:%d: %s" line col msg))

let parse_exn src =
  match parse src with Ok q -> q | Error msg -> failwith msg

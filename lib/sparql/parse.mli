(** Parser for the SPARQL fragment of {!Ast}.

    Covers what the paper's §3 queries need — and a bit more:

    {v
    PREFIX/BASE prologue
    ASK { … } and SELECT [DISTINCT] ?v… | * | (COUNT( * ) AS ?c) …
    basic graph patterns with ; and , abbreviations and [a]
    FILTER with ||, &&, !, comparisons, isIRI/isLiteral/isBlank,
      datatype(), bound(), str()+regex(), EXISTS / NOT EXISTS { … }
    OPTIONAL { … }, { … } UNION { … }, nested sub-SELECTs,
    GROUP BY ?v…, HAVING (…)
    v}

    Blank nodes in patterns ([_:b]) act as variables named ["_:b"], per
    the SPARQL semantics of bnodes in basic graph patterns. *)

val parse : string -> (Ast.query, string) result
(** Parse a complete query.  Errors carry 1-based line/column. *)

val parse_exn : string -> Ast.query

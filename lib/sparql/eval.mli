(** Evaluator for the SPARQL fragment over {!Rdf.Graph}.

    Solutions are partial mappings from variables to RDF terms.
    Evaluation is nested-loop: later conjuncts are evaluated under the
    bindings of earlier ones; sub-SELECTs evaluate independently (per
    the SPARQL bottom-up semantics) and merge with the outer solution
    by compatibility; [EXISTS] is correlated with the enclosing
    bindings.  Expression errors (unbound variables in comparisons,
    non-numeric arithmetic) make the enclosing [FILTER] reject the
    solution, as in SPARQL's error semantics. *)

module Solution : sig
  type t

  val empty : t
  val find : Ast.var -> t -> Rdf.Term.t option
  val bindings : t -> (Ast.var * Rdf.Term.t) list
  val pp : Format.formatter -> t -> unit
end

val eval_pattern :
  Rdf.Graph.t -> Solution.t -> Ast.pattern -> Solution.t list
(** All extensions of the seed solution satisfying the pattern. *)

val select : Rdf.Graph.t -> Ast.select -> Solution.t list
(** Evaluate a (sub-)SELECT from an empty seed. *)

val ask : Rdf.Graph.t -> Ast.pattern -> bool

val run : Rdf.Graph.t -> Ast.query -> [ `Boolean of bool | `Solutions of Solution.t list ]

(* Abstract syntax of the SPARQL fragment used by the §3 translation:
   basic graph patterns, FILTER expressions (with the builtins of
   Example 4: isLiteral, isIRI, isBlank, datatype, bound), OPTIONAL,
   UNION, EXISTS/NOT EXISTS, and sub-SELECTs with GROUP BY / HAVING and
   COUNT aggregates. *)

type var = string

type term_pat = Var of var | Const of Rdf.Term.t

type triple_pat = { tp_s : term_pat; tp_p : term_pat; tp_o : term_pat }

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | E_var of var
  | E_const of Rdf.Term.t
  | E_int of int
  | E_bool of bool
  | E_and of expr * expr
  | E_or of expr * expr
  | E_not of expr
  | E_cmp of cmp * expr * expr
  | E_add of expr * expr
  | E_is_iri of expr
  | E_is_literal of expr
  | E_is_blank of expr
  | E_datatype of expr
  | E_bound of var
  | E_exists of pattern
  | E_not_exists of pattern
  | E_regex of expr * string  (** [regex(e, "^prefix")] — anchored-prefix only *)

and pattern =
  | Bgp of triple_pat list
  | Join of pattern * pattern
  | Filter of expr * pattern
  | Union of pattern * pattern
  | Optional of pattern * pattern
  | Sub_select of select

and aggregate = Count_star

and select = {
  sel_vars : var list;  (** projected variables *)
  sel_aggs : (aggregate * var) list;  (** e.g. [(COUNT( * ) AS ?c)] *)
  sel_where : pattern;
  sel_group_by : var list;
  sel_having : expr list;
  sel_distinct : bool;
}

type query = Ask of pattern | Select_q of select

(* Convenience constructors. *)

let v name : term_pat = Var name
let c term : term_pat = Const term
let triple tp_s tp_p tp_o = { tp_s; tp_p; tp_o }
let bgp pats = Bgp pats

let select ?(distinct = false) ?(group_by = []) ?(having = []) ?(aggs = [])
    vars where =
  { sel_vars = vars;
    sel_aggs = aggs;
    sel_where = where;
    sel_group_by = group_by;
    sel_having = having;
    sel_distinct = distinct }

let rec join_all = function
  | [] -> Bgp []
  | [ p ] -> p
  | p :: rest -> Join (p, join_all rest)

let conj_all = function
  | [] -> E_bool true
  | e :: rest -> List.fold_left (fun acc e -> E_and (acc, e)) e rest

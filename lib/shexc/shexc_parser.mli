(** Parser for the ShEx compact syntax.

    Accepts the paper's notation (Example 1):

    {v
    PREFIX foaf: <http://xmlns.com/foaf/0.1/>
    PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
    <Person> {
      foaf:age xsd:integer
      , foaf:name xsd:string+
      , foaf:knows @<Person>*
    }
    v}

    Triple constraints combine with [,] (or [;]) for unordered
    concatenation (‖) and [|] for alternatives; [( … )] groups;
    cardinalities are [*], [+], [?], [{m}], [{m,n}] and [{m,}].  Value
    classes are datatypes ([xsd:integer]), shape references
    ([@<Person>]), node kinds ([IRI], [BNODE], [LITERAL],
    [NONLITERAL]), the wildcard [.], and value sets
    ([[ "a" 1 <http://e.org/x> <http://e.org/ns~> ]] — a trailing [~]
    makes the preceding IRI a stem).  The extensions [^] (inverse) and
    [!] (negation) prefix a constraint or group. *)

type document = {
  schema : Shex.Schema.t;
  namespaces : Rdf.Namespace.t;
  base : Rdf.Iri.t option;
}

val parse : ?base:Rdf.Iri.t -> string -> (document, string) result
(** Parse a ShExC document.  Schema-level errors (duplicate labels,
    dangling or negated references) are reported through
    {!Shex.Schema.make}'s validation. *)

val parse_schema : ?base:Rdf.Iri.t -> string -> (Shex.Schema.t, string) result

val parse_schema_exn : ?base:Rdf.Iri.t -> string -> Shex.Schema.t
(** Raises [Failure] on error.  For tests and examples. *)

type token =
  | Iriref of string
  | Pname of string * string
  | At_ref of string
  | String_lit of string
  | Langtag of string
  | Integer_lit of string
  | Decimal_lit of string
  | Double_lit of string
  | Kw of string
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Pipe
  | Comma
  | Semicolon
  | Star
  | Plus
  | Question
  | Bang
  | Caret
  | Tilde
  | Dot
  | Caret_caret
  | Eof

type located = { token : token; line : int; col : int }

exception Error of string * int * int

type state = { src : string; mutable pos : int; mutable line : int;
               mutable col : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let error st msg = raise (Error (msg, st.line, st.col))

let is_ws = function ' ' | '\t' | '\r' | '\n' -> true | _ -> false
let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_name_char c = is_alpha c || is_digit c || c = '_' || c = '-'

let read_iriref st =
  advance st;
  let buf = Buffer.create 32 in
  let rec go () =
    match peek st with
    | Some '>' -> advance st; Buffer.contents buf
    | Some c when is_ws c -> error st "whitespace in IRI"
    | Some c -> advance st; Buffer.add_char buf c; go ()
    | None -> error st "unterminated IRI"
  in
  go ()

let read_string st quote =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some c when c = quote -> advance st; Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some '\'' -> advance st; Buffer.add_char buf '\''; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some c -> error st (Printf.sprintf "invalid escape \\%c" c)
        | None -> error st "unterminated escape")
    | Some ('\n' | '\r') -> error st "newline in string"
    | Some c -> advance st; Buffer.add_char buf c; go ()
    | None -> error st "unterminated string"
  in
  go ()

let read_local st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some c when is_name_char c -> advance st; Buffer.add_char buf c; go ()
    | Some '.' -> (
        match peek2 st with
        | Some c2 when is_name_char c2 || c2 = '.' ->
            advance st; Buffer.add_char buf '.'; go ()
        | _ -> Buffer.contents buf)
    | _ -> Buffer.contents buf
  in
  go ()

let read_number st =
  let buf = Buffer.create 8 in
  let take () =
    match peek st with
    | Some c -> advance st; Buffer.add_char buf c
    | None -> ()
  in
  (match peek st with Some ('+' | '-') -> take () | _ -> ());
  let rec digits () =
    match peek st with
    | Some c when is_digit c -> take (); digits ()
    | _ -> ()
  in
  digits ();
  let decimal = ref false and exponent = ref false in
  (match (peek st, peek2 st) with
  | Some '.', Some c when is_digit c ->
      decimal := true; take (); digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      exponent := true;
      take ();
      (match peek st with Some ('+' | '-') -> take () | _ -> ());
      digits ()
  | _ -> ());
  let s = Buffer.contents buf in
  if s = "" || s = "+" || s = "-" then error st "malformed number"
  else if !exponent then Double_lit s
  else if !decimal then Decimal_lit s
  else Integer_lit s

let keywords =
  [ "PREFIX"; "BASE"; "IRI"; "BNODE"; "LITERAL"; "NONLITERAL"; "TRUE";
    "FALSE"; "A"; "AND"; "OR"; "NOT"; "CLOSED"; "EXTRA"; "OPEN" ]

let next_token st =
  let rec skip () =
    match peek st with
    | Some c when is_ws c -> advance st; skip ()
    | Some '#' ->
        let rec to_eol () =
          match peek st with
          | Some '\n' | None -> ()
          | Some _ -> advance st; to_eol ()
        in
        to_eol (); skip ()
    | Some '/' when peek2 st = Some '/' ->
        let rec to_eol () =
          match peek st with
          | Some '\n' | None -> ()
          | Some _ -> advance st; to_eol ()
        in
        to_eol (); skip ()
    | _ -> ()
  in
  skip ();
  let line = st.line and col = st.col in
  let tok =
    match peek st with
    | None -> Eof
    | Some '<' -> Iriref (read_iriref st)
    | Some '"' -> String_lit (read_string st '"')
    | Some '\'' -> String_lit (read_string st '\'')
    | Some '{' -> advance st; Lbrace
    | Some '}' -> advance st; Rbrace
    | Some '(' -> advance st; Lparen
    | Some ')' -> advance st; Rparen
    | Some '[' -> advance st; Lbracket
    | Some ']' -> advance st; Rbracket
    | Some '|' -> advance st; Pipe
    | Some ',' -> advance st; Comma
    | Some ';' -> advance st; Semicolon
    | Some '*' -> advance st; Star
    | Some '+' -> (
        match peek2 st with
        | Some c when is_digit c -> read_number st
        | _ -> advance st; Plus)
    | Some '-' -> read_number st
    | Some '?' -> advance st; Question
    | Some '!' -> advance st; Bang
    | Some '~' -> advance st; Tilde
    | Some '^' -> (
        advance st;
        match peek st with
        | Some '^' -> advance st; Caret_caret
        | _ -> Caret)
    | Some '@' -> (
        advance st;
        match peek st with
        | Some '<' -> At_ref (read_iriref st)
        | Some c when is_alpha c || c = '_' || c = ':' ->
            (* @pname or @langtag: if it contains a colon it is a
               reference, otherwise a language tag. *)
            let word = read_local st in
            (match peek st with
            | Some ':' ->
                advance st;
                let local = read_local st in
                At_ref (word ^ ":" ^ local)
            | _ -> Langtag word)
        | _ -> error st "expected shape reference or language tag after @")
    | Some '.' -> (
        match peek2 st with
        | Some c when is_digit c -> read_number st
        | _ -> advance st; Dot)
    | Some c when is_digit c -> read_number st
    | Some c when is_alpha c || c = '_' || c = ':' ->
        let word = read_local st in
        (match peek st with
        | Some ':' ->
            advance st;
            let local = read_local st in
            Pname (word, local)
        | _ ->
            let upper = String.uppercase_ascii word in
            if List.mem upper keywords then Kw upper
            else error st (Printf.sprintf "unknown keyword %S" word))
    | Some c -> error st (Printf.sprintf "unexpected character %C" c)
  in
  { token = tok; line; col }

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    let t = next_token st in
    if t.token = Eof then List.rev (t :: acc) else go (t :: acc)
  in
  go []

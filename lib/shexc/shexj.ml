module R = Shex.Rse
module V = Shex.Value_set

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Export                                                             *)
(* ------------------------------------------------------------------ *)

let value_json (term : Rdf.Term.t) : Json.t =
  match term with
  | Rdf.Term.Iri iri -> Json.String (Rdf.Iri.to_string iri)
  | Rdf.Term.Literal l -> (
      let base = [ ("value", Json.String (Rdf.Literal.lexical l)) ] in
      match Rdf.Literal.lang l with
      | Some tag -> Json.Object (base @ [ ("language", Json.String tag) ])
      | None ->
          if
            Rdf.Iri.equal (Rdf.Literal.datatype l)
              (Rdf.Xsd.iri Rdf.Xsd.String)
          then Json.Object base
          else
            Json.Object
              (base
              @ [ ( "type",
                    Json.String (Rdf.Iri.to_string (Rdf.Literal.datatype l))
                  ) ]))
  | Rdf.Term.Bnode b ->
      (* Vendor extension: ShExJ value sets cannot name blank nodes. *)
      Json.Object [ ("bnode", Json.String (Rdf.Bnode.label b)) ]

let kind_name = function
  | V.Iri_kind -> "iri"
  | V.Bnode_kind -> "bnode"
  | V.Literal_kind -> "literal"
  | V.Non_literal_kind -> "nonliteral"

let rec node_constraint_json (vo : V.obj) : Json.t =
  let nc fields = Json.Object (("type", Json.String "NodeConstraint") :: fields) in
  match vo with
  | V.Obj_any -> nc []
  | V.Obj_datatype prim ->
      nc [ ("datatype", Json.String (Rdf.Iri.to_string (Rdf.Xsd.iri prim))) ]
  | V.Obj_datatype_iri iri ->
      nc [ ("datatype", Json.String (Rdf.Iri.to_string iri)) ]
  | V.Obj_kind k -> nc [ ("nodeKind", Json.String (kind_name k)) ]
  | V.Obj_in terms ->
      nc [ ("values", Json.Array (List.map value_json terms)) ]
  | V.Obj_stem stem ->
      nc
        [ ( "values",
            Json.Array
              [ Json.Object
                  [ ("type", Json.String "IriStem");
                    ("stem", Json.String stem) ] ] ) ]
  | V.Obj_or parts -> (
      (* Mixed finite values and stems flatten into one values list;
         anything else uses the vendor OrConstraint. *)
      let rec values_of = function
        | V.Obj_in terms -> Some (List.map value_json terms)
        | V.Obj_stem stem ->
            Some
              [ Json.Object
                  [ ("type", Json.String "IriStem");
                    ("stem", Json.String stem) ] ]
        | V.Obj_or parts ->
            List.fold_left
              (fun acc p ->
                match (acc, values_of p) with
                | Some acc, Some vs -> Some (acc @ vs)
                | _ -> None)
              (Some []) parts
        | V.Obj_any | V.Obj_datatype _ | V.Obj_datatype_iri _ | V.Obj_kind _
        | V.Obj_not _ ->
            None
      in
      match values_of (V.Obj_or parts) with
      | Some values -> nc [ ("values", Json.Array values) ]
      | None ->
          Json.Object
            [ ("type", Json.String "OrConstraint");
              ( "constraints",
                Json.Array (List.map node_constraint_json parts) ) ])
  | V.Obj_not inner ->
      Json.Object
        [ ("type", Json.String "NotConstraint");
          ("constraint", node_constraint_json inner) ]

let pred_iri (p : V.pred) =
  match p with
  | V.Pred iri -> Ok iri
  | V.Pred_in _ | V.Pred_stem _ | V.Pred_any | V.Pred_compl _ ->
      Error "ShExJ export: only singleton predicate sets are supported"

let triple_constraint (a : R.arc) ~min ~max : Json.t =
  let predicate =
    match pred_iri a.pred with
    | Ok iri -> Rdf.Iri.to_string iri
    | Error msg -> invalid_arg ("Shexj.export: " ^ msg)
  in
  let value_expr =
    match a.obj with
    | R.Values V.Obj_any -> []
    | R.Values vo -> [ ("valueExpr", node_constraint_json vo) ]
    | R.Ref l -> [ ("valueExpr", Json.String (Shex.Label.to_string l)) ]
  in
  Json.Object
    ([ ("type", Json.String "TripleConstraint");
       ("predicate", Json.String predicate) ]
    @ (if a.inverse then [ ("inverse", Json.Bool true) ] else [])
    @ value_expr
    @ [ ("min", Json.int min);
        ("max", Json.int (match max with Some n -> n | None -> -1)) ])

let with_card json min max =
  (* An expression that already carries a cardinality must first be
     boxed in a singleton EachOf, or the two min/max pairs would
     collide on one object. *)
  let json =
    match json with
    | Json.Object fields
      when List.mem_assoc "min" fields || List.mem_assoc "max" fields ->
        Json.Object
          [ ("type", Json.String "EachOf");
            ("expressions", Json.Array [ json ]) ]
    | json -> json
  in
  match json with
  | Json.Object fields ->
      Json.Object
        (fields
        @ [ ("min", Json.int min);
            ("max", Json.int (match max with Some n -> n | None -> -1)) ])
  | other -> other

let arc_equal (a : R.arc) (b : R.arc) = a = b

let rec flatten_and acc (e : R.t) =
  match e with
  | R.And (e1, e2) -> flatten_and (flatten_and acc e2) e1
  | e -> e :: acc

let rec flatten_or acc (e : R.t) =
  match e with
  | R.Or (e1, e2) -> flatten_or (flatten_or acc e2) e1
  | e -> e :: acc

let rec expr_json (e : R.t) : Json.t =
  match e with
  | R.Empty -> Json.Object [ ("type", Json.String "Empty") ]
  | R.Epsilon ->
      Json.Object
        [ ("type", Json.String "EachOf"); ("expressions", Json.Array []) ]
  | R.Arc a -> triple_constraint a ~min:1 ~max:(Some 1)
  | R.Star (R.Arc a) -> triple_constraint a ~min:0 ~max:None
  | R.And (R.Arc a, R.Star (R.Arc a')) when arc_equal a a' ->
      triple_constraint a ~min:1 ~max:None
  | R.Or (R.Arc a, R.Epsilon) | R.Or (R.Epsilon, R.Arc a) ->
      triple_constraint a ~min:0 ~max:(Some 1)
  | R.Star inner -> with_card (group_json inner) 0 None
  | R.Or (R.Epsilon, inner) | R.Or (inner, R.Epsilon) ->
      with_card (group_json inner) 0 (Some 1)
  | R.And _ ->
      Json.Object
        [ ("type", Json.String "EachOf");
          ( "expressions",
            Json.Array (List.map expr_json (flatten_and [] e)) ) ]
  | R.Or _ ->
      Json.Object
        [ ("type", Json.String "OneOf");
          ("expressions", Json.Array (List.map expr_json (flatten_or [] e)))
        ]
  | R.Not inner ->
      Json.Object
        [ ("type", Json.String "Not"); ("expression", expr_json inner) ]

(* A starred/optional group needs its own node so min/max are
   unambiguous. *)
and group_json (e : R.t) : Json.t =
  match e with
  | R.And _ | R.Or _ | R.Arc _ | R.Not _ -> expr_json e
  | R.Empty | R.Epsilon | R.Star _ -> expr_json e

let export schema =
  let shape (l, { Shex.Schema.focus; expr }) =
    Json.Object
      ([ ("type", Json.String "Shape");
         ("id", Json.String (Shex.Label.to_string l));
         ("closed", Json.Bool true) ]
      @ (match focus with
        | Some vo -> [ ("focus", node_constraint_json vo) ]
        | None -> [])
      @
      match expr with
      | R.Epsilon -> []
      | _ -> [ ("expression", expr_json expr) ])
  in
  Json.Object
    [ ("type", Json.String "Schema");
      ("shapes", Json.Array (List.map shape (Shex.Schema.shapes schema))) ]

let export_string ?minify schema = Json.to_string ?minify (export schema)

(* ------------------------------------------------------------------ *)
(* Import                                                             *)
(* ------------------------------------------------------------------ *)

let import_value (j : Json.t) : (Rdf.Term.t option * string option, string) result =
  (* Returns (term, stem): exactly one is Some. *)
  match j with
  | Json.String iri_text -> (
      match Rdf.Iri.of_string iri_text with
      | Ok iri -> Ok (Some (Rdf.Term.Iri iri), None)
      | Error msg -> Error msg)
  | Json.Object _ when Json.find_string "type" j = Some "IriStem" -> (
      match Json.find_string "stem" j with
      | Some stem -> Ok (None, Some stem)
      | None -> Error "IriStem without stem")
  | Json.Object _ -> (
      match Json.find_string "bnode" j with
      | Some label -> Ok (Some (Rdf.Term.Bnode (Rdf.Bnode.of_string label)), None)
      | None -> (
          match Json.find_string "value" j with
          | None -> Error "value set entry without value"
          | Some lexical -> (
              match Json.find_string "language" j with
              | Some tag ->
                  Ok (Some (Rdf.Term.Literal (Rdf.Literal.make ~lang:tag lexical)), None)
              | None -> (
                  match Json.find_string "type" j with
                  | Some dt -> (
                      match Rdf.Iri.of_string dt with
                      | Ok iri ->
                          Ok
                            ( Some
                                (Rdf.Term.Literal
                                   (Rdf.Literal.make ~datatype:iri lexical)),
                              None )
                      | Error msg -> Error msg)
                  | None ->
                      Ok (Some (Rdf.Term.Literal (Rdf.Literal.string lexical)), None)))))
  | _ -> Error "malformed value set entry"

let rec import_node_constraint (j : Json.t) : (V.obj, string) result =
  match Json.find_string "type" j with
  | Some "NodeConstraint" | None -> (
      match Json.find_string "datatype" j with
      | Some dt -> (
          match Rdf.Iri.of_string dt with
          | Error msg -> Error msg
          | Ok iri -> (
              match Rdf.Xsd.of_iri iri with
              | Some prim -> Ok (V.Obj_datatype prim)
              | None -> Ok (V.Obj_datatype_iri iri)))
      | None -> (
          match Json.find_string "nodeKind" j with
          | Some "iri" -> Ok (V.Obj_kind V.Iri_kind)
          | Some "bnode" -> Ok (V.Obj_kind V.Bnode_kind)
          | Some "literal" -> Ok (V.Obj_kind V.Literal_kind)
          | Some "nonliteral" -> Ok (V.Obj_kind V.Non_literal_kind)
          | Some other -> Error (Printf.sprintf "unknown nodeKind %S" other)
          | None -> (
              match Json.find_list "values" j with
              | None -> Ok V.Obj_any
              | Some values ->
                  let* terms, stems =
                    List.fold_left
                      (fun acc v ->
                        let* terms, stems = acc in
                        let* term, stem = import_value v in
                        Ok
                          ( (match term with Some t -> t :: terms | None -> terms),
                            match stem with Some s -> s :: stems | None -> stems ))
                      (Ok ([], []))
                      values
                  in
                  let parts =
                    (if terms = [] then []
                     else [ V.Obj_in (List.rev terms) ])
                    @ List.rev_map (fun s -> V.Obj_stem s) stems
                  in
                  (match parts with
                  | [] -> Error "empty value set"
                  | [ single ] -> Ok single
                  | parts -> Ok (V.Obj_or parts)))))
  | Some "OrConstraint" -> (
      match Json.find_list "constraints" j with
      | None -> Error "OrConstraint without constraints"
      | Some cs ->
          let* parts =
            List.fold_left
              (fun acc c ->
                let* acc = acc in
                let* p = import_node_constraint c in
                Ok (p :: acc))
              (Ok []) cs
          in
          Ok (V.Obj_or (List.rev parts)))
  | Some "NotConstraint" -> (
      match Json.find "constraint" j with
      | None -> Error "NotConstraint without constraint"
      | Some c ->
          let* inner = import_node_constraint c in
          Ok (V.Obj_not inner))
  | Some other -> Error (Printf.sprintf "unknown value constraint type %S" other)

let import_cardinality j =
  let min = Option.value (Json.find_int "min" j) ~default:1 in
  let max =
    match Json.find_int "max" j with
    | Some -1 -> None
    | Some n -> Some n
    | None -> Some min
  in
  (* When neither is present the constraint is exactly-one. *)
  let max =
    if Json.find "min" j = None && Json.find "max" j = None then Some 1
    else max
  in
  (min, max)

let rec import_expr (j : Json.t) : (R.t, string) result =
  match j with
  | Json.Object _ -> (
      let min, max = import_cardinality j in
      let* base =
        match Json.find_string "type" j with
        | Some "TripleConstraint" -> (
            match Json.find_string "predicate" j with
            | None -> Error "TripleConstraint without predicate"
            | Some pred_text -> (
                match Rdf.Iri.of_string pred_text with
                | Error msg -> Error msg
                | Ok pred ->
                    let inverse =
                      Json.find "inverse" j = Some (Json.Bool true)
                    in
                    (match Json.find "valueExpr" j with
                    | None ->
                        Ok (R.arc_v ~inverse (V.Pred pred) V.Obj_any)
                    | Some (Json.String ref_text) ->
                        Ok
                          (R.arc_ref ~inverse (V.Pred pred)
                             (Shex.Label.of_string ref_text))
                    | Some nc ->
                        let* vo = import_node_constraint nc in
                        Ok (R.arc_v ~inverse (V.Pred pred) vo))))
        | Some "EachOf" -> (
            match Json.find_list "expressions" j with
            | None -> Error "EachOf without expressions"
            | Some exprs ->
                let* parts = import_exprs exprs in
                Ok (R.and_all parts))
        | Some "OneOf" -> (
            match Json.find_list "expressions" j with
            | None -> Error "OneOf without expressions"
            | Some exprs ->
                let* parts = import_exprs exprs in
                Ok (R.or_all parts))
        | Some "Not" -> (
            match Json.find "expression" j with
            | None -> Error "Not without expression"
            | Some inner ->
                let* e = import_expr inner in
                Ok (R.not_ e))
        | Some "Empty" -> Ok R.empty
        | Some other ->
            Error (Printf.sprintf "unknown triple expression type %S" other)
        | None -> Error "triple expression without type"
      in
      if min = 1 && max = Some 1 then Ok base
      else
        match R.repeat min max base with
        | e -> Ok e
        | exception Invalid_argument msg -> Error msg)
  | _ -> Error "triple expression must be an object"

and import_exprs exprs =
  let* parts =
    List.fold_left
      (fun acc j ->
        let* acc = acc in
        let* e = import_expr j in
        Ok (e :: acc))
      (Ok []) exprs
  in
  Ok (List.rev parts)

let import (j : Json.t) : (Shex.Schema.t, string) result =
  match Json.find_string "type" j with
  | Some "Schema" -> (
      match Json.find_list "shapes" j with
      | None -> Error "Schema without shapes"
      | Some shapes ->
          let* rules =
            List.fold_left
              (fun acc shape ->
                let* acc = acc in
                match Json.find_string "id" shape with
                | None -> Error "Shape without id"
                | Some id -> (
                    let label = Shex.Label.of_string id in
                    let* focus =
                      match Json.find "focus" shape with
                      | None -> Ok None
                      | Some nc ->
                          let* vo = import_node_constraint nc in
                          Ok (Some vo)
                    in
                    match Json.find "expression" shape with
                    | None ->
                        Ok ((label, { Shex.Schema.focus; expr = R.epsilon }) :: acc)
                    | Some expr ->
                        let* e = import_expr expr in
                        Ok ((label, { Shex.Schema.focus; expr = e }) :: acc)))
              (Ok []) shapes
          in
          Shex.Schema.make_shapes (List.rev rules))
  | _ -> Error "not a ShExJ Schema document"

let import_string src =
  let* j = Json.of_string src in
  import j

module L = Shexc_lexer

type document = {
  schema : Shex.Schema.t;
  namespaces : Rdf.Namespace.t;
  base : Rdf.Iri.t option;
}

exception Parse_error of string * int * int

type state = {
  tokens : L.located array;
  mutable index : int;
  mutable namespaces : Rdf.Namespace.t;
  mutable base : Rdf.Iri.t option;
}

let current st = st.tokens.(st.index)
let advance st = if st.index < Array.length st.tokens - 1 then st.index <- st.index + 1

let error st msg =
  let { L.line; col; _ } = current st in
  raise (Parse_error (msg, line, col))

let expect st token msg =
  if (current st).L.token = token then advance st else error st msg

let resolve_iri st text =
  match Rdf.Iri.of_string text with
  | Error msg -> error st msg
  | Ok iri -> (
      if Rdf.Iri.is_absolute iri then iri
      else
        match st.base with
        | Some base -> Rdf.Iri.resolve ~base iri
        | None -> iri)

let expand_pname st prefix local =
  match Rdf.Namespace.find prefix st.namespaces with
  | None -> error st (Printf.sprintf "unbound prefix %S" prefix)
  | Some ns -> (
      match Rdf.Iri.of_string (ns ^ local) with
      | Ok iri -> iri
      | Error msg -> error st msg)

let parse_iri st =
  match (current st).L.token with
  | L.Iriref text ->
      advance st;
      resolve_iri st text
  | L.Pname (prefix, local) ->
      advance st;
      expand_pname st prefix local
  | _ -> error st "expected an IRI"

(* Shape labels keep the IRI text (after prefix expansion / base
   resolution), so <Person> and @<Person> agree. *)
let label_of_text st text = Shex.Label.of_string (Rdf.Iri.to_string (resolve_iri st text))

let parse_label st =
  match (current st).L.token with
  | L.Iriref text ->
      advance st;
      label_of_text st text
  | L.Pname (prefix, local) ->
      advance st;
      Shex.Label.of_string (Rdf.Iri.to_string (expand_pname st prefix local))
  | _ -> error st "expected a shape label"

let ref_label st text =
  (* At_ref carries either raw IRI text or a pname. *)
  match String.index_opt text ':' with
  | Some i
    when Rdf.Namespace.find (String.sub text 0 i) st.namespaces <> None ->
      let prefix = String.sub text 0 i in
      let local = String.sub text (i + 1) (String.length text - i - 1) in
      Shex.Label.of_string
        (Rdf.Iri.to_string (expand_pname st prefix local))
  | _ -> label_of_text st text

(* ------------------------------------------------------------------ *)
(* Value sets                                                         *)
(* ------------------------------------------------------------------ *)

let parse_value_set_literal st =
  match (current st).L.token with
  | L.String_lit s -> (
      advance st;
      match (current st).L.token with
      | L.Langtag tag ->
          advance st;
          Rdf.Term.Literal (Rdf.Literal.make ~lang:tag s)
      | L.Caret_caret ->
          advance st;
          let dt = parse_iri st in
          Rdf.Term.Literal (Rdf.Literal.make ~datatype:dt s)
      | _ -> Rdf.Term.Literal (Rdf.Literal.string s))
  | L.Integer_lit s ->
      advance st;
      Rdf.Term.Literal (Rdf.Literal.make ~datatype:(Rdf.Xsd.iri Rdf.Xsd.Integer) s)
  | L.Decimal_lit s ->
      advance st;
      Rdf.Term.Literal (Rdf.Literal.make ~datatype:(Rdf.Xsd.iri Rdf.Xsd.Decimal) s)
  | L.Double_lit s ->
      advance st;
      Rdf.Term.Literal (Rdf.Literal.make ~datatype:(Rdf.Xsd.iri Rdf.Xsd.Double) s)
  | L.Kw "TRUE" ->
      advance st;
      Rdf.Term.Literal (Rdf.Literal.boolean true)
  | L.Kw "FALSE" ->
      advance st;
      Rdf.Term.Literal (Rdf.Literal.boolean false)
  | _ -> error st "expected a value"

let parse_value_set st =
  expect st L.Lbracket "expected [";
  let rec go terms stems =
    match (current st).L.token with
    | L.Rbracket ->
        advance st;
        (List.rev terms, List.rev stems)
    | L.Iriref _ | L.Pname _ -> (
        let iri = parse_iri st in
        match (current st).L.token with
        | L.Tilde ->
            advance st;
            go terms (Rdf.Iri.to_string iri :: stems)
        | _ -> go (Rdf.Term.Iri iri :: terms) stems)
    | L.Eof -> error st "unterminated value set"
    | _ -> go (parse_value_set_literal st :: terms) stems
  in
  let terms, stems = go [] [] in
  let parts =
    (if terms = [] then [] else [ Shex.Value_set.Obj_in terms ])
    @ List.map (fun s -> Shex.Value_set.Obj_stem s) stems
  in
  match parts with
  | [] -> error st "empty value set"
  | [ single ] -> single
  | parts -> Shex.Value_set.Obj_or parts

(* ------------------------------------------------------------------ *)
(* Value classes, cardinalities, triple expressions                    *)
(* ------------------------------------------------------------------ *)

type obj_class =
  | Class_values of Shex.Value_set.obj
  | Class_ref of Shex.Label.t

let parse_value_class st =
  match (current st).L.token with
  | L.Dot ->
      advance st;
      Class_values Shex.Value_set.Obj_any
  | L.At_ref text ->
      advance st;
      Class_ref (ref_label st text)
  | L.Kw "IRI" ->
      advance st;
      Class_values (Shex.Value_set.Obj_kind Shex.Value_set.Iri_kind)
  | L.Kw "BNODE" ->
      advance st;
      Class_values (Shex.Value_set.Obj_kind Shex.Value_set.Bnode_kind)
  | L.Kw "LITERAL" ->
      advance st;
      Class_values (Shex.Value_set.Obj_kind Shex.Value_set.Literal_kind)
  | L.Kw "NONLITERAL" ->
      advance st;
      Class_values (Shex.Value_set.Obj_kind Shex.Value_set.Non_literal_kind)
  | L.Lbracket -> Class_values (parse_value_set st)
  | L.Iriref _ | L.Pname _ -> (
      let iri = parse_iri st in
      match Rdf.Xsd.of_iri iri with
      | Some prim -> Class_values (Shex.Value_set.Obj_datatype prim)
      | None -> Class_values (Shex.Value_set.Obj_datatype_iri iri))
  | _ -> error st "expected a value class"

let parse_int st =
  match (current st).L.token with
  | L.Integer_lit s -> (
      advance st;
      match int_of_string_opt s with
      | Some n when n >= 0 -> n
      | _ -> error st "expected a non-negative integer")
  | _ -> error st "expected an integer"

(* cardinality ::= '*' | '+' | '?' | '{' m (',' (n | '*'))? '}' *)
let parse_cardinality st =
  match (current st).L.token with
  | L.Star ->
      advance st;
      Some (0, None)
  | L.Plus ->
      advance st;
      Some (1, None)
  | L.Question ->
      advance st;
      Some (0, Some 1)
  | L.Lbrace -> (
      advance st;
      let m = parse_int st in
      match (current st).L.token with
      | L.Rbrace ->
          advance st;
          Some (m, Some m)
      | L.Comma -> (
          advance st;
          match (current st).L.token with
          | L.Star ->
              advance st;
              expect st L.Rbrace "expected }";
              Some (m, None)
          | L.Rbrace ->
              advance st;
              Some (m, None)
          | _ ->
              let n = parse_int st in
              if n < m then error st "max cardinality below min";
              expect st L.Rbrace "expected }";
              Some (m, Some n))
      | _ -> error st "expected , or } in cardinality")
  | _ -> None

let apply_cardinality st e = function
  | None -> e
  | Some (0, None) -> Shex.Rse.star e
  | Some (1, None) -> Shex.Rse.plus e
  | Some (0, Some 1) -> Shex.Rse.opt e
  | Some (m, n) -> (
      match Shex.Rse.repeat m n e with
      | e -> e
      | exception Invalid_argument msg -> error st msg)

let rec parse_one_of st =
  let g = parse_group st in
  let rec go acc =
    match (current st).L.token with
    | L.Pipe ->
        advance st;
        go (Shex.Rse.or_ acc (parse_group st))
    | _ -> acc
  in
  go g

and parse_group st =
  let u = parse_unary st in
  let rec go acc =
    match (current st).L.token with
    | L.Comma | L.Semicolon -> (
        advance st;
        (* allow a trailing separator before } or ) *)
        match (current st).L.token with
        | L.Rbrace | L.Rparen -> acc
        | _ -> go (Shex.Rse.and_ acc (parse_unary st)))
    | _ -> acc
  in
  go u

and parse_unary st =
  match (current st).L.token with
  | L.Bang ->
      advance st;
      Shex.Rse.not_ (parse_unary st)
  | L.Lparen ->
      advance st;
      let e = parse_one_of st in
      expect st L.Rparen "expected )";
      let card = parse_cardinality st in
      apply_cardinality st e card
  | _ ->
      let inverse =
        if (current st).L.token = L.Caret then begin advance st; true end
        else false
      in
      let pred =
        match (current st).L.token with
        | L.Kw "A" ->
            advance st;
            Rdf.Namespace.Vocab.rdf_type
        | _ -> parse_iri st
      in
      let obj_class = parse_value_class st in
      let card = parse_cardinality st in
      let arc =
        match obj_class with
        | Class_values vo ->
            Shex.Rse.arc_v ~inverse (Shex.Value_set.Pred pred) vo
        | Class_ref l -> Shex.Rse.arc_ref ~inverse (Shex.Value_set.Pred pred) l
      in
      apply_cardinality st arc card

(* Optional node constraint on the focus itself, between the label and
   the body: a node kind, a datatype, or a value set.  A datatype IRI
   is only taken as a focus constraint when a body (or modifier)
   follows, which keeps shape declarations unambiguous. *)
let parse_focus_constraint st =
  match (current st).L.token with
  | L.Kw "IRI" ->
      advance st;
      Some (Shex.Value_set.Obj_kind Shex.Value_set.Iri_kind)
  | L.Kw "BNODE" ->
      advance st;
      Some (Shex.Value_set.Obj_kind Shex.Value_set.Bnode_kind)
  | L.Kw "LITERAL" ->
      advance st;
      Some (Shex.Value_set.Obj_kind Shex.Value_set.Literal_kind)
  | L.Kw "NONLITERAL" ->
      advance st;
      Some (Shex.Value_set.Obj_kind Shex.Value_set.Non_literal_kind)
  | L.Lbracket -> Some (parse_value_set st)
  | L.Iriref _ | L.Pname _ -> (
      let saved = st.index in
      let iri = parse_iri st in
      match (current st).L.token with
      | L.Lbrace | L.Kw ("OPEN" | "CLOSED" | "EXTRA") ->
          Some
            (match Rdf.Xsd.of_iri iri with
            | Some prim -> Shex.Value_set.Obj_datatype prim
            | None -> Shex.Value_set.Obj_datatype_iri iri)
      | _ ->
          st.index <- saved;
          None)
  | _ -> None

let parse_shape_body st =
  (* Optional modifiers before the braces:
     CLOSED (the default — regular shape expressions are closed),
     OPEN (tolerate unmentioned predicates),
     EXTRA iri+ (tolerate extra arcs with the given predicates). *)
  let modifier =
    match (current st).L.token with
    | L.Kw "CLOSED" ->
        advance st;
        `Closed
    | L.Kw "OPEN" ->
        advance st;
        `Open
    | L.Kw "EXTRA" ->
        advance st;
        let rec iris acc =
          match (current st).L.token with
          | L.Iriref _ | L.Pname _ -> iris (parse_iri st :: acc)
          | _ -> List.rev acc
        in
        let extras = iris [] in
        if extras = [] then error st "EXTRA needs at least one predicate"
        else `Extra extras
    | _ -> `Closed
  in
  expect st L.Lbrace "expected {";
  let body =
    match (current st).L.token with
    | L.Rbrace ->
        advance st;
        Shex.Rse.epsilon
    | _ ->
        let e = parse_one_of st in
        expect st L.Rbrace "expected }";
        e
  in
  match modifier with
  | `Closed -> body
  | `Open -> Shex.Rse.open_up body
  | `Extra extras ->
      Shex.Rse.with_extra (Shex.Value_set.Pred_in extras) body

let parse_directive st =
  match (current st).L.token with
  | L.Kw "PREFIX" -> (
      advance st;
      match (current st).L.token with
      | L.Pname (prefix, "") -> (
          advance st;
          match (current st).L.token with
          | L.Iriref text ->
              advance st;
              let iri = resolve_iri st text in
              st.namespaces <-
                Rdf.Namespace.add prefix (Rdf.Iri.to_string iri)
                  st.namespaces
          | _ -> error st "expected namespace IRI")
      | _ -> error st "expected prefix declaration (e.g. foaf:)")
  | L.Kw "BASE" -> (
      advance st;
      match (current st).L.token with
      | L.Iriref text ->
          advance st;
          st.base <- Some (resolve_iri st text)
      | _ -> error st "expected base IRI")
  | _ -> error st "expected a directive"

let parse_document st =
  let rec go rules =
    match (current st).L.token with
    | L.Eof -> List.rev rules
    | L.Kw ("PREFIX" | "BASE") ->
        parse_directive st;
        go rules
    | _ ->
        let label = parse_label st in
        let focus = parse_focus_constraint st in
        let body = parse_shape_body st in
        go ((label, { Shex.Schema.focus; expr = body }) :: rules)
  in
  go []

let parse ?base src =
  match L.tokenize src with
  | exception L.Error (msg, line, col) ->
      Error (Printf.sprintf "lexical error at %d:%d: %s" line col msg)
  | tokens -> (
      let st =
        { tokens = Array.of_list tokens;
          index = 0;
          namespaces = Rdf.Namespace.empty;
          base }
      in
      match parse_document st with
      | rules -> (
          match Shex.Schema.make_shapes rules with
          | Ok schema ->
              Ok { schema; namespaces = st.namespaces; base = st.base }
          | Error msg -> Error msg)
      | exception Parse_error (msg, line, col) ->
          Error (Printf.sprintf "parse error at %d:%d: %s" line col msg))

let parse_schema ?base src =
  Result.map (fun d -> d.schema) (parse ?base src)

let parse_schema_exn ?base src =
  match parse_schema ?base src with
  | Ok s -> s
  | Error msg -> failwith msg

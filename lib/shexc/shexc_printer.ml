type ctx = { ns : Rdf.Namespace.t; used : (string, unit) Hashtbl.t }

let iri_text ctx iri =
  match Rdf.Namespace.shrink ctx.ns iri with
  | Some pname ->
      (match String.index_opt pname ':' with
      | Some i -> Hashtbl.replace ctx.used (String.sub pname 0 i) ()
      | None -> ());
      pname
  | None -> Printf.sprintf "<%s>" (Rdf.Iri.to_string iri)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let literal_text ctx l =
  let lexical = Rdf.Literal.lexical l in
  match Rdf.Literal.lang l with
  | Some tag -> Printf.sprintf "\"%s\"@%s" (escape_string lexical) tag
  | None -> (
      match Rdf.Literal.xsd_primitive l with
      | Some Rdf.Xsd.String ->
          Printf.sprintf "\"%s\"" (escape_string lexical)
      | Some Rdf.Xsd.Integer
        when Rdf.Xsd.valid_lexical Rdf.Xsd.Integer lexical ->
          lexical
      | Some Rdf.Xsd.Boolean when lexical = "true" || lexical = "false" ->
          lexical
      | _ ->
          Printf.sprintf "\"%s\"^^%s" (escape_string lexical)
            (iri_text ctx (Rdf.Literal.datatype l)))

let term_text ctx = function
  | Rdf.Term.Iri iri -> iri_text ctx iri
  | Rdf.Term.Bnode b -> Printf.sprintf "_:%s" (Rdf.Bnode.label b)
  | Rdf.Term.Literal l -> literal_text ctx l

let rec value_set_items ctx = function
  | Shex.Value_set.Obj_in terms -> List.map (term_text ctx) terms
  | Shex.Value_set.Obj_stem s -> [ Printf.sprintf "<%s>~" s ]
  | Shex.Value_set.Obj_or parts ->
      List.concat_map (value_set_items ctx) parts
  | Shex.Value_set.Obj_any | Shex.Value_set.Obj_datatype _
  | Shex.Value_set.Obj_datatype_iri _ | Shex.Value_set.Obj_kind _
  | Shex.Value_set.Obj_not _ ->
      invalid_arg "Shexc_printer: value class not expressible in a value set"

let obj_text ctx = function
  | Shex.Value_set.Obj_any -> "."
  | Shex.Value_set.Obj_datatype prim -> iri_text ctx (Rdf.Xsd.iri prim)
  | Shex.Value_set.Obj_datatype_iri iri -> iri_text ctx iri
  | Shex.Value_set.Obj_kind Shex.Value_set.Iri_kind -> "IRI"
  | Shex.Value_set.Obj_kind Shex.Value_set.Bnode_kind -> "BNODE"
  | Shex.Value_set.Obj_kind Shex.Value_set.Literal_kind -> "LITERAL"
  | Shex.Value_set.Obj_kind Shex.Value_set.Non_literal_kind -> "NONLITERAL"
  | (Shex.Value_set.Obj_in _ | Shex.Value_set.Obj_stem _
    | Shex.Value_set.Obj_or _) as vs ->
      Printf.sprintf "[ %s ]" (String.concat " " (value_set_items ctx vs))
  | Shex.Value_set.Obj_not _ ->
      invalid_arg "Shexc_printer: Obj_not has no ShExC notation"

let pred_text ctx = function
  | Shex.Value_set.Pred iri ->
      if Rdf.Iri.equal iri Rdf.Namespace.Vocab.rdf_type then "a"
      else iri_text ctx iri
  | Shex.Value_set.Pred_in _ | Shex.Value_set.Pred_stem _
  | Shex.Value_set.Pred_any | Shex.Value_set.Pred_compl _ ->
      invalid_arg "Shexc_printer: predicate sets have no ShExC notation"

let label_text l = Printf.sprintf "<%s>" (Shex.Label.to_string l)

let arc_text ctx (a : Shex.Rse.arc) =
  let dir = if a.inverse then "^" else "" in
  let obj =
    match a.obj with
    | Shex.Rse.Values vo -> obj_text ctx vo
    | Shex.Rse.Ref l -> "@" ^ label_text l
  in
  Printf.sprintf "%s%s %s" dir (pred_text ctx a.pred) obj

let cardinality_suffix (card : Shex.Sorbe.interval) =
  match (card.min, card.max) with
  | 1, Some 1 -> ""
  | 0, None -> " *"
  | 1, None -> " +"
  | 0, Some 1 -> " ?"
  | m, Some n when m = n -> Printf.sprintf " {%d}" m
  | m, Some n -> Printf.sprintf " {%d,%d}" m n
  | m, None -> Printf.sprintf " {%d,}" m

(* Precedence: Or < And < unary.  Cardinality suffixes apply to a
   parenthesised group unless the body is a bare arc. *)
let rec expr_text ctx prec (e : Shex.Rse.t) =
  let parens p body = if prec >= p then "(" ^ body ^ ")" else body in
  match e with
  | Shex.Rse.Empty ->
      (* ∅ has no direct ShExC notation; an unsatisfiable value set is
         the closest equivalent.  It never appears in parsed schemas. *)
      invalid_arg "Shexc_printer: the empty shape has no ShExC notation"
  | Shex.Rse.Epsilon -> ""
  | Shex.Rse.Arc a -> arc_text ctx a
  | Shex.Rse.Star (Shex.Rse.Arc a) -> arc_text ctx a ^ " *"
  | Shex.Rse.Star inner ->
      Printf.sprintf "(%s) *" (expr_text ctx 0 inner)
  | Shex.Rse.And (Shex.Rse.Arc a, Shex.Rse.Star (Shex.Rse.Arc a'))
    when Shex.Rse.arc_equal a a' ->
      arc_text ctx a ^ " +"
  | Shex.Rse.Or (inner, Shex.Rse.Epsilon)
  | Shex.Rse.Or (Shex.Rse.Epsilon, inner) ->
      (match inner with
      | Shex.Rse.Arc a -> arc_text ctx a ^ " ?"
      | _ -> Printf.sprintf "(%s) ?" (expr_text ctx 0 inner))
  | Shex.Rse.And (e1, e2) -> (
      (* Single-occurrence concatenations print with merged {m,n}
         cardinalities, so [repeat] expansions round-trip compactly.
         The merge sums intervals of duplicate conjuncts (a⋆ ‖ a⋆
         becomes one a{0,*}), which parses back to a different
         conjunct bag — so merged printing is only used when it is
         lossless, i.e. re-expanding the constraints reconstructs the
         expression exactly. *)
      match Shex.Sorbe.of_rse e with
      | Some constrs
        when constrs <> [] && Shex.Rse.equal (Shex.Sorbe.to_rse constrs) e ->
          parens 2
            (String.concat " , "
               (List.map
                  (fun (c : Shex.Sorbe.constr) ->
                    arc_text ctx c.arc ^ cardinality_suffix c.card)
                  constrs))
      | _ ->
          parens 2
            (Printf.sprintf "%s , %s" (expr_text ctx 1 e1)
               (expr_text ctx 1 e2)))
  | Shex.Rse.Or (e1, e2) ->
      parens 1
        (Printf.sprintf "%s | %s" (expr_text ctx 0 e1) (expr_text ctx 0 e2))
  | Shex.Rse.Not inner -> (
      match inner with
      | Shex.Rse.Arc a -> "! " ^ arc_text ctx a
      | _ -> Printf.sprintf "! (%s)" (expr_text ctx 0 inner))

let expr_to_string ?(namespaces = Rdf.Namespace.default) e =
  let ctx = { ns = namespaces; used = Hashtbl.create 8 } in
  expr_text ctx 0 e

(* Recognise the desugared forms of OPEN and EXTRA (see
   {!Shex.Rse.open_up} / {!Shex.Rse.with_extra}) so they round-trip
   through their surface modifiers. *)
let split_modifier (e : Shex.Rse.t) =
  let rec conjuncts = function
    | Shex.Rse.And (e1, e2) -> conjuncts e1 @ conjuncts e2
    | e -> [ e ]
  in
  let is_open_star = function
    | Shex.Rse.Star
        (Shex.Rse.Arc
          { pred = Shex.Value_set.Pred_compl _ | Shex.Value_set.Pred_any;
            obj = Shex.Rse.Values Shex.Value_set.Obj_any;
            _ }) ->
        true
    | _ -> false
  in
  let extra_of = function
    | Shex.Rse.Star
        (Shex.Rse.Arc
          { pred = Shex.Value_set.Pred_in extras;
            obj = Shex.Rse.Values Shex.Value_set.Obj_any;
            inverse = false }) ->
        Some extras
    | _ -> None
  in
  let parts = conjuncts e in
  if List.exists is_open_star parts then
    let rest = List.filter (fun p -> not (is_open_star p)) parts in
    (`Open, Shex.Rse.and_all rest)
  else
    match List.find_map extra_of parts with
    | Some extras ->
        let rest = List.filter (fun p -> extra_of p = None) parts in
        (`Extra extras, Shex.Rse.and_all rest)
    | None -> (`Closed, e)

let schema_to_string ?(namespaces = Rdf.Namespace.default) schema =
  let ctx = { ns = namespaces; used = Hashtbl.create 8 } in
  let bodies =
    List.map
      (fun (l, { Shex.Schema.focus; expr }) ->
        let modifier, core = split_modifier expr in
        let focus_text =
          match focus with
          | None -> ""
          | Some vo -> " " ^ obj_text ctx vo
        in
        let modifier_text =
          match modifier with
          | `Closed -> ""
          | `Open -> " OPEN"
          | `Extra extras ->
              " EXTRA "
              ^ String.concat " " (List.map (iri_text ctx) extras)
        in
        let body =
          match core with
          | Shex.Rse.Epsilon -> ""
          | _ -> "\n  " ^ expr_text ctx 0 core ^ "\n"
        in
        Printf.sprintf "%s%s%s {%s}" (label_text l) focus_text modifier_text
          body)
      (Shex.Schema.shapes schema)
  in
  let header =
    List.filter_map
      (fun (prefix, ns) ->
        if Hashtbl.mem ctx.used prefix then
          Some (Printf.sprintf "PREFIX %s: <%s>" prefix ns)
        else None)
      (Rdf.Namespace.bindings namespaces)
  in
  String.concat "\n"
    ((if header = [] then [] else header @ [ "" ]) @ bodies)
  ^ "\n"

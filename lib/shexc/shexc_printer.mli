(** Printer from core schemas back to ShEx compact syntax.

    Covers every construct the parser can produce (so
    parse ∘ print ∘ parse is the identity on schemas up to the
    [repeat] expansion, which prints as its expansion).  Value sets
    built programmatically with {!Shex.Value_set.Obj_not} have no
    ShExC notation and raise [Invalid_argument]. *)

val schema_to_string :
  ?namespaces:Rdf.Namespace.t -> Shex.Schema.t -> string
(** Render a schema.  [namespaces] (default {!Rdf.Namespace.default})
    drives prefix abbreviation; used prefixes are declared up front. *)

val expr_to_string :
  ?namespaces:Rdf.Namespace.t -> Shex.Rse.t -> string
(** Render one shape body (without the braces). *)

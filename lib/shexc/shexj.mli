(** ShExJ: the JSON interchange syntax for ShEx schemas.

    Exports {!Shex.Schema} values to a ShExJ-compatible JSON document
    and imports them back.  The encoding follows the ShExJ vocabulary
    where our constructs map directly:

    - [‖] → [EachOf], [|] → [OneOf], arcs → [TripleConstraint]
      (with [predicate], [inverse], [valueExpr], [min]/[max]);
    - [e⋆], [e⁺], [e?] → [min]/[max] on the wrapped expression
      ([max = -1] is unbounded, as in ShExJ);
    - value classes → [NodeConstraint] with [datatype], [nodeKind] or
      [values] (IRIs, literals and [IriStem]s);
    - shape references → JSON strings (shapeExprRef);
    - shapes are emitted with ["closed": true] since regular shape
      expressions are closed by construction.

    Two constructs have no ShExJ counterpart and use a vendor type
    tag, accepted on import: the complement extension
    (["type": "Not"]) and the unsatisfiable shape (["type": "Empty"]).

    Round-trip guarantee: [import (export s)] succeeds and the result
    is semantically equivalent to [s] — same verdict on every
    neighbourhood.  Structural equality is {e not} guaranteed: the
    or-factoring normalisation is not associative, so re-normalising
    the imported expression can factor alternative groups differently
    (the property suite decides the semantic equivalence exhaustively
    over a finite triple universe). *)

val export : Shex.Schema.t -> Json.t
(** Raises [Invalid_argument] on shapes with non-singleton predicate
    sets, which ShExJ cannot express. *)

val export_string : ?minify:bool -> Shex.Schema.t -> string

val import : Json.t -> (Shex.Schema.t, string) result
val import_string : string -> (Shex.Schema.t, string) result

(** Lexer for the ShEx compact syntax (ShExC).

    Covers the fragment of ShExC the paper uses (Examples 1, 6, 13–14)
    plus the extensions implemented by the core library: prefixes,
    shape labels, triple constraints with cardinalities, value sets,
    node kinds, shape references, inverse ([^]) and negated ([!])
    constraints, and grouping. *)

type token =
  | Iriref of string           (** [<...>] *)
  | Pname of string * string   (** prefixed name (prefix, local) *)
  | At_ref of string           (** [@<label>] or [@pname] — reference text *)
  | String_lit of string
  | Langtag of string
  | Integer_lit of string
  | Decimal_lit of string
  | Double_lit of string
  | Kw of string
      (** bare keywords, uppercased: [PREFIX], [BASE], [IRI], [BNODE],
          [LITERAL], [NONLITERAL], [TRUE], [FALSE], [A] *)
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Pipe
  | Comma
  | Semicolon
      (** ShEx 2 separates triple constraints with [;]; we accept it as
          a synonym of [,] *)
  | Star
  | Plus
  | Question
  | Bang
  | Caret
  | Tilde
  | Dot
  | Caret_caret
  | Eof

type located = { token : token; line : int; col : int }

exception Error of string * int * int

val tokenize : string -> located list

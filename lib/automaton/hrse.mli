(** Hash-consed regular shape expressions over an atom alphabet.

    The derivative engine of {!Shex.Deriv} rebuilds a fresh [Rse.t]
    for every consumed triple and compares expressions structurally —
    O(size) per comparison.  Compiling to a DFA needs the opposite
    cost model: O(1) equality so that "have I seen this derivative
    before?" is a table lookup.  This module provides it, in the style
    of Owens, Reppy & Turon ({e Regular-expression derivatives
    re-examined}, JFP 2009): every expression is interned in a
    {!table} and identified by a unique [id]; two expressions are
    equal iff their ids are equal (physically equal, in fact).

    Arc leaves are abstracted to integer {e atoms} — indices into the
    alphabet built by {!Dfa} — which keeps this module independent of
    the RDF layer and makes derivative computation purely symbolic.

    The smart constructors reproduce the full normalisation of
    {!Shex.Rse}: the §4 simplification rules, ACI normal form ([‖] and
    [|] spines flattened into sorted n-ary nodes, [|] deduplicated —
    [‖] is a bag operator and keeps duplicates) and the distributive
    factoring [(C ‖ X) | (C ‖ Y) = C ‖ (X | Y)].  Because children are
    sorted by id and interned, the ACI normal form is {e canonical by
    construction}: all ACI-equal ways of writing an expression produce
    the same id (see [test/test_automaton.ml]).

    Nullability ν is computed once at interning time and stored on the
    node, so the DFA's acceptance check is a field read. *)

type t = private {
  id : int;  (** unique within the owning table; equality witness *)
  node : node;
  nullable : bool;  (** ν, precomputed at interning time *)
}

and node = private
  | Empty
  | Epsilon
  | Atom of int  (** arc leaf, abstracted to an alphabet index *)
  | Star of t
  | And of t list  (** ≥ 2 children, sorted by id; a bag (duplicates kept) *)
  | Or of t list  (** ≥ 2 children, sorted by id, deduplicated *)
  | Not of t

type table
(** The interning table.  All expressions combined by the constructors
    below must come from the same table; ids are unique only within
    it. *)

val create : unit -> table

val cardinal : table -> int
(** Number of distinct expressions interned so far. *)

(** {1 Constructors}

    All apply the §4 simplification rules and ACI normalisation, as
    {!Shex.Rse}'s smart constructors do, then intern. *)

val empty : table -> t
val epsilon : table -> t

val atom : table -> int -> t
(** [atom tbl i] — the arc leaf for alphabet index [i ≥ 0]. *)

val star : table -> t -> t
val and_ : table -> t -> t -> t
val or_ : table -> t -> t -> t
val not_ : table -> t -> t
val and_all : table -> t list -> t
val or_all : table -> t list -> t

(** {1 Observations} *)

val equal : t -> t -> bool
(** O(1): id comparison. *)

val compare : t -> t -> int
val hash : t -> int

val is_empty : t -> bool
(** Is this the interned ∅?  (The dead state of a negation-free
    automaton.) *)

val size : t -> int
(** AST nodes, counting an n-ary [And]/[Or] as [n − 1] binary nodes —
    comparable with {!Shex.Rse.size}. *)

val pp : Format.formatter -> t -> unit
(** Debug rendering with atoms printed as [#i]. *)

open Shex

type t = {
  table : Hrse.table;
  atoms : Rse.arc array;  (* atom id -> the arc constraint it stands for *)
  start : Hrse.t;
  has_inverse : bool;  (* include incoming triples in neighbourhoods *)
  can_prune : bool;  (* negation-free: ∅ is a dead (rejecting) state *)
  symbols : (string, int) Hashtbl.t;  (* arc-class bitset -> symbol id *)
  mutable members : bool array array;  (* symbol id -> atom membership *)
  trans : (int * int, Hrse.t) Hashtbl.t;  (* (state id, symbol id) -> state *)
  states : (int, unit) Hashtbl.t;  (* ids of materialised DFA states *)
  dispatch : (bool * Rdf.Iri.t, int array) Hashtbl.t;
      (* (direction, predicate) -> atoms whose predicate set contains
         it: classification tests only these candidates' object
         constraints instead of every atom *)
  mutable hits : int;
  mutable misses : int;
}

(* ------------------------------------------------------------------ *)
(* Compilation: intern the arcs as atoms, translate the expression     *)
(* ------------------------------------------------------------------ *)

let compile (e : Rse.t) =
  (* The alphabet: one atom per distinct arc constraint.  Duplicated
     arcs (e.g. the two copies [repeat] expands) share an atom, which
     both shrinks the classification bitset and lets hash-consing
     identify the sub-expressions built from them. *)
  let atoms = ref [] and n_atoms = ref 0 in
  let atom_id (a : Rse.arc) =
    match List.find_opt (fun (b, _) -> Rse.arc_equal a b) !atoms with
    | Some (_, i) -> i
    | None ->
        let i = !n_atoms in
        atoms := (a, i) :: !atoms;
        incr n_atoms;
        i
  in
  let table = Hrse.create () in
  let rec conv (e : Rse.t) =
    match e with
    | Rse.Empty -> Hrse.empty table
    | Rse.Epsilon -> Hrse.epsilon table
    | Rse.Arc a -> Hrse.atom table (atom_id a)
    | Rse.Star inner -> Hrse.star table (conv inner)
    | Rse.And (e1, e2) -> Hrse.and_ table (conv e1) (conv e2)
    | Rse.Or (e1, e2) -> Hrse.or_ table (conv e1) (conv e2)
    | Rse.Not inner -> Hrse.not_ table (conv inner)
  in
  let start = conv e in
  (* [!atoms] holds (arc, id) in reverse insertion order and ids were
     assigned consecutively, so reversing recovers index order. *)
  let atom_array = Array.of_list (List.rev_map fst !atoms) in
  let states = Hashtbl.create 64 in
  Hashtbl.replace states start.Hrse.id ();
  {
    table;
    atoms = atom_array;
    start;
    has_inverse = Rse.has_inverse e;
    can_prune = not (Rse.has_not e);
    symbols = Hashtbl.create 16;
    members = [||];
    trans = Hashtbl.create 64;
    states;
    dispatch = Hashtbl.create 16;
    hits = 0;
    misses = 0;
  }

(* ------------------------------------------------------------------ *)
(* Arc classes: classify a directed triple into a symbol               *)
(* ------------------------------------------------------------------ *)

(* Per-(direction, predicate) atom candidates, computed on first sight
   of a predicate and cached: atoms whose direction and predicate set
   accept the triple.  Classification then only evaluates the
   candidates' object constraints — on schemas with many predicates
   the bitset fill drops from O(atoms) predicate-set tests per triple
   to one table lookup plus the few candidates. *)
let candidates auto (dt : Neigh.dtriple) =
  let key = (dt.inverse, Rdf.Triple.predicate dt.triple) in
  match Hashtbl.find_opt auto.dispatch key with
  | Some c -> c
  | None ->
      let inverse, p = key in
      let acc = ref [] in
      for i = Array.length auto.atoms - 1 downto 0 do
        let a = auto.atoms.(i) in
        if Bool.equal a.Rse.inverse inverse && Value_set.pred_mem a.Rse.pred p
        then acc := i :: !acc
      done;
      let c = Array.of_list !acc in
      Hashtbl.replace auto.dispatch key c;
      c

(* The object half of an atom's test; direction and predicate were
   already decided by the dispatch table.  Candidates are in atom-id
   order, so [check_ref] consultations happen in exactly the order the
   full [arc_matches] scan made them. *)
let atom_obj_matches ~check_ref (a : Rse.arc) (dt : Neigh.dtriple) =
  let far =
    if dt.inverse then Rdf.Triple.subject dt.triple
    else Rdf.Triple.obj dt.triple
  in
  match a.obj with
  | Rse.Values vo -> Value_set.obj_mem vo far
  | Rse.Ref l -> check_ref l far

let classify auto ~check_ref dt =
  let n = Array.length auto.atoms in
  let bits = Bytes.make n '0' in
  Array.iter
    (fun i ->
      if atom_obj_matches ~check_ref auto.atoms.(i) dt then
        Bytes.set bits i '1')
    (candidates auto dt);
  let key = Bytes.unsafe_to_string bits in
  match Hashtbl.find_opt auto.symbols key with
  | Some s -> s
  | None ->
      let s = Hashtbl.length auto.symbols in
      Hashtbl.replace auto.symbols key s;
      let member = Array.init n (fun i -> key.[i] = '1') in
      auto.members <- Array.append auto.members [| member |];
      s

(* ------------------------------------------------------------------ *)
(* Lazy transitions: hash-consed symbolic derivative                   *)
(* ------------------------------------------------------------------ *)

(* ∂symbol(e), where the symbol is the set of atoms the consumed
   triple matches.  Identical to Deriv.deriv with [arc_matches]
   replaced by bitset membership; memoised per hash-consed node within
   one transition computation (sub-expressions are shared, so the memo
   prevents re-deriving them). *)
let deriv auto member state =
  let tbl = auto.table in
  let memo : (int, Hrse.t) Hashtbl.t = Hashtbl.create 16 in
  let rec d (e : Hrse.t) =
    match Hashtbl.find_opt memo e.Hrse.id with
    | Some r -> r
    | None ->
        let r =
          match e.Hrse.node with
          | Hrse.Empty | Hrse.Epsilon -> Hrse.empty tbl
          | Hrse.Atom i ->
              if member.(i) then Hrse.epsilon tbl else Hrse.empty tbl
          | Hrse.Star inner -> Hrse.and_ tbl (d inner) e
          | Hrse.And es ->
              (* ∂(e₁ ‖ … ‖ eₖ) = ⋁ᵢ ∂eᵢ ‖ rest.  Duplicate conjuncts
                 (a bag) yield identical disjuncts; skip them. *)
              let rec splits acc before = function
                | [] -> acc
                | e :: rest ->
                    let acc =
                      match before with
                      | b :: _ when Hrse.equal b e -> acc
                      | _ ->
                          Hrse.and_all tbl (d e :: List.rev_append before rest)
                          :: acc
                    in
                    splits acc (e :: before) rest
              in
              Hrse.or_all tbl (splits [] [] es)
          | Hrse.Or es -> Hrse.or_all tbl (List.map d es)
          | Hrse.Not inner -> Hrse.not_ tbl (d inner)
        in
        Hashtbl.replace memo e.Hrse.id r;
        r
  in
  d state

let step auto (state : Hrse.t) sym =
  match Hashtbl.find_opt auto.trans (state.Hrse.id, sym) with
  | Some s' ->
      auto.hits <- auto.hits + 1;
      s'
  | None ->
      auto.misses <- auto.misses + 1;
      let s' = deriv auto auto.members.(sym) state in
      Hashtbl.replace auto.trans (state.Hrse.id, sym) s';
      Hashtbl.replace auto.states s'.Hrse.id ();
      s'

(* ------------------------------------------------------------------ *)
(* Matching                                                            *)
(* ------------------------------------------------------------------ *)

let no_refs _ _ = false

(* The compiled engine's provenance events mirror the interpreted
   derivative matcher's: one [deriv_step] per consumed triple (here a
   DFA edge — states instead of expression sizes) and one
   [nullable_check] at neighbourhood exhaustion, so trace consumers
   see one vocabulary whichever engine ran. *)
let record_step tele n dt (state : Hrse.t) (state' : Hrse.t) =
  Telemetry.emit tele
    (Telemetry.instant "deriv_step"
       ([ ("focus", Telemetry.String (Rdf.Term.to_string n));
          ("triple", Telemetry.String (Format.asprintf "%a" Neigh.pp dt));
          ("state", Telemetry.Int state.Hrse.id);
          ("state_after", Telemetry.Int state'.Hrse.id);
          ("nullable", Telemetry.Bool state'.Hrse.nullable);
          ("empty", Telemetry.Bool (Hrse.is_empty state')) ]
       @
       if Telemetry.residuals tele then
         [ ("before", Telemetry.String (Format.asprintf "%a" Hrse.pp state));
           ("after", Telemetry.String (Format.asprintf "%a" Hrse.pp state'))
         ]
       else []))

let record_nullable tele n (state : Hrse.t) =
  Telemetry.emit tele
    (Telemetry.instant "nullable_check"
       ([ ("focus", Telemetry.String (Rdf.Term.to_string n));
          ("state", Telemetry.Int state.Hrse.id);
          ("nullable", Telemetry.Bool state.Hrse.nullable) ]
       @
       if Telemetry.residuals tele then
         [ ("residual", Telemetry.String (Format.asprintf "%a" Hrse.pp state))
         ]
       else []))

let matches_dts ?(check_ref = no_refs) ?(tele = Telemetry.disabled) auto n dts
    =
  let tracing = Telemetry.tracing tele in
  let rec consume (state : Hrse.t) = function
    | [] ->
        if tracing then record_nullable tele n state;
        state.Hrse.nullable
    | dt :: rest ->
        let state' = step auto state (classify auto ~check_ref dt) in
        if tracing then record_step tele n dt state state';
        if auto.can_prune && Hrse.is_empty state' then false
        else consume state' rest
  in
  consume auto.start dts

let matches ?check_ref ?tele auto n g =
  let dts = Neigh.of_node ~include_inverse:auto.has_inverse n g in
  matches_dts ?check_ref ?tele auto n dts

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  atoms : int;
  states : int;
  symbols : int;
  hits : int;
  misses : int;
}

let stats (auto : t) =
  {
    atoms = Array.length auto.atoms;
    states = Hashtbl.length auto.states;
    symbols = Hashtbl.length auto.symbols;
    hits = auto.hits;
    misses = auto.misses;
  }

let zero_stats = { atoms = 0; states = 0; symbols = 0; hits = 0; misses = 0 }

let add_stats a b =
  {
    atoms = a.atoms + b.atoms;
    states = a.states + b.states;
    symbols = a.symbols + b.symbols;
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
  }

let sub_stats a b =
  {
    atoms = a.atoms - b.atoms;
    states = a.states - b.states;
    symbols = a.symbols - b.symbols;
    hits = a.hits - b.hits;
    misses = a.misses - b.misses;
  }

let pp_stats ppf s =
  let steps = s.hits + s.misses in
  Format.fprintf ppf "%d states, %d symbols, %d steps: %.1f%% cached" s.states
    s.symbols steps
    (if steps = 0 then 0.0
     else 100.0 *. float_of_int s.hits /. float_of_int steps)

type t = { id : int; node : node; nullable : bool }

and node =
  | Empty
  | Epsilon
  | Atom of int
  | Star of t
  | And of t list
  | Or of t list
  | Not of t

(* Structural key of a candidate node with children replaced by their
   ids.  Keys contain only integers, so the polymorphic hash and
   equality of the generic Hashtbl are exact. *)
type key =
  | KEmpty
  | KEpsilon
  | KAtom of int
  | KStar of int
  | KAnd of int list
  | KOr of int list
  | KNot of int

type table = { tbl : (key, t) Hashtbl.t; mutable next : int }

let intern table key node nullable =
  match Hashtbl.find_opt table.tbl key with
  | Some e -> e
  | None ->
      let e = { id = table.next; node; nullable } in
      table.next <- table.next + 1;
      Hashtbl.replace table.tbl key e;
      e

let create () =
  let table = { tbl = Hashtbl.create 256; next = 0 } in
  (* ∅ and ε first, so their ids are stable (0 and 1) and ε sorts
     before every composite — the invariant the ε-handling in [mk_or]
     relies on. *)
  ignore (intern table KEmpty Empty false);
  ignore (intern table KEpsilon Epsilon true);
  table

let cardinal table = Hashtbl.length table.tbl

let empty table = intern table KEmpty Empty false
let epsilon table = intern table KEpsilon Epsilon true
let atom table i =
  if i < 0 then invalid_arg "Hrse.atom: negative index";
  intern table (KAtom i) (Atom i) false

let equal a b = a == b
let compare a b = Int.compare a.id b.id
let hash e = e.id
let is_empty e = match e.node with Empty -> true | _ -> false

let ids es = List.map (fun e -> e.id) es

let star table e =
  match e.node with
  | Empty | Epsilon -> epsilon table
  | Star _ -> e
  | _ -> intern table (KStar e.id) (Star e) true

(* The conjunct bag of an expression: ε is the empty bag, And spines
   flatten (children of an interned And are never themselves And). *)
let conjuncts e =
  match e.node with Epsilon -> [] | And es -> es | _ -> [ e ]

let mk_and table parts =
  (* [parts]: fully flattened conjunct bag. *)
  if List.exists (fun e -> is_empty e) parts then empty table
  else
    match List.sort compare parts with
    | [] -> epsilon table
    | [ e ] -> e
    | parts ->
        intern table (KAnd (ids parts))
          (And parts)
          (List.for_all (fun e -> e.nullable) parts)

let and_all table es = mk_and table (List.concat_map conjuncts es)
let and_ table e1 e2 = and_all table [ e1; e2 ]

let disjuncts e =
  match e.node with Empty -> [] | Or es -> es | _ -> [ e ]

(* Multiset intersection / difference on id-sorted conjunct lists. *)
let rec bag_inter xs ys =
  match (xs, ys) with
  | [], _ | _, [] -> []
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c = 0 then x :: bag_inter xs' ys'
      else if c < 0 then bag_inter xs' ys
      else bag_inter xs ys'

let rec bag_diff xs ys =
  match (xs, ys) with
  | xs, [] -> xs
  | [], _ -> []
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c = 0 then bag_diff xs' ys'
      else if c < 0 then x :: bag_diff xs' ys
      else bag_diff xs ys'

let intern_or table parts =
  (* [parts]: sorted, deduplicated, ≥ 2, no ∅. *)
  intern table (KOr (ids parts))
    (Or parts)
    (List.exists (fun e -> e.nullable) parts)

(* |: flatten, drop ∅, deduplicate (idempotence), then factor the
   common part of the disjuncts' conjunct bags out of the alternative:
   (C ‖ X) | (C ‖ Y) = C ‖ (X | Y) — the same normalisation as
   [Rse.or_], which is what keeps derivatives of counting shapes
   polynomial.  ε is split off first (its conjunct bag is empty and
   would force the common factor to nothing); it is dropped
   afterwards when the factored core is already nullable. *)
let rec mk_or table parts =
  match List.sort_uniq compare parts with
  | [] -> empty table
  | [ e ] -> e
  | parts -> (
      let eps, rest =
        List.partition (fun e -> match e.node with Epsilon -> true | _ -> false) parts
      in
      let core =
        match rest with
        | [] -> epsilon table
        | [ e ] -> e
        | rest ->
            let bags = List.map conjuncts rest in
            let common =
              match bags with
              | [] -> []
              | b :: bs -> List.fold_left bag_inter b bs
            in
            if common = [] then intern_or table rest
            else
              let residuals =
                List.sort_uniq compare
                  (List.map (fun bag -> mk_and table (bag_diff bag common)) bags)
              in
              let alternative =
                match residuals with
                | [] -> epsilon table
                | r0 :: rs ->
                    List.fold_left
                      (fun acc r -> mk_or table (disjuncts acc @ disjuncts r))
                      r0 rs
              in
              and_all table [ mk_and table common; alternative ]
      in
      match eps with
      | [] -> core
      | _ ->
          (* ε | e ≡ e when ν(e): the empty neighbourhood is already
             accepted.  (Rse.or_ only detects the syntactic cases ε and
             e⋆; the precomputed ν lets us drop ε whenever it is
             redundant, which gives a slightly tighter normal form.) *)
          if core.nullable then core
          else
            mk_or_with_eps table (epsilon table) core)

and mk_or_with_eps table eps core =
  match core.node with
  | Empty -> eps
  | Or es -> intern_or table (List.sort_uniq compare (eps :: es))
  | _ -> intern_or table (List.sort_uniq compare [ eps; core ])

let or_all table es = mk_or table (List.concat_map disjuncts es)
let or_ table e1 e2 = or_all table [ e1; e2 ]

let not_ table e =
  match e.node with
  | Not inner -> inner
  | _ -> intern table (KNot e.id) (Not e) (not e.nullable)

let rec size e =
  match e.node with
  | Empty | Epsilon | Atom _ -> 1
  | Star e | Not e -> 1 + size e
  | And es | Or es ->
      List.length es - 1 + List.fold_left (fun acc e -> acc + size e) 0 es

let rec pp_prec prec ppf e =
  let paren p body =
    if prec >= p then Format.fprintf ppf "(%t)" body else body ppf
  in
  let pp_nary op p es =
    paren p (fun ppf ->
        Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.fprintf ppf " %s " op)
          (pp_prec p) ppf es)
  in
  match e.node with
  | Empty -> Format.pp_print_string ppf "\xe2\x88\x85"
  | Epsilon -> Format.pp_print_string ppf "\xce\xb5"
  | Atom i -> Format.fprintf ppf "#%d" i
  | Star e -> Format.fprintf ppf "(%a)*" (pp_prec 0) e
  | Not e -> Format.fprintf ppf "\xc2\xac(%a)" (pp_prec 0) e
  | And es -> pp_nary "\xe2\x80\x96" 2 es
  | Or es -> pp_nary "|" 1 es

let pp ppf e = pp_prec 0 ppf e

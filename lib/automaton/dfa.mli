(** Lazily built derivative automata for regular shape expressions.

    {!Shex.Deriv.matches} recomputes a derivative {e expression} for
    every consumed triple of every node it checks.  Within one
    validation run the same shape is matched against thousands of
    neighbourhoods, and the derivatives it steps through are massively
    repetitive — so we compile each shape {e once} into a DFA whose
    states are hash-consed expressions ({!Hrse}) and whose transition
    table is filled in lazily, Owens–Reppy–Turon style, and then
    shared across every node and every call.

    {2 The alphabet: arc classes}

    A DFA needs a finite alphabet, but triples are drawn from an
    unbounded universe.  A shape, however, can only {e distinguish}
    triples through its arc constraints: two triples that satisfy
    exactly the same subset of the shape's arcs (the same direction /
    predicate-set / value-set tests) produce identical derivatives, by
    induction on the expression.  The compiler therefore interns each
    distinct arc of the shape as an {e atom}, and classifies a
    neighbourhood triple into the bitset of atoms it matches — its
    {e arc class}.  The finitely many (≤ 2^atoms, in practice a
    handful) arc classes are the DFA's symbols.

    Arcs whose object is a shape reference [@<L>] are opaque boolean
    atoms: classification calls the [check_ref] oracle supplied per
    match — the recursive fixpoint of {!Shex.Validate} — so the
    automaton itself stays purely syntactic and remains valid as the
    fixpoint's candidate valuation evolves.

    {2 Laziness and sharing}

    [∂symbol(state)] is computed on first demand through the
    hash-consed derivative and memoised in the transition table; every
    later traversal is a hash lookup.  Nullability is precomputed per
    state, so acceptance is a field read.  {!stats} exposes the cache
    counters (states materialised, symbols interned, transition hits /
    misses) that E9 uses to demonstrate cross-node reuse. *)

type t

val compile : Shex.Rse.t -> t
(** Compile a shape expression.  The automaton starts with only its
    initial state; transitions appear as matching demands them. *)

val matches :
  ?check_ref:(Shex.Label.t -> Rdf.Term.t -> bool) ->
  ?tele:Telemetry.t ->
  t ->
  Rdf.Term.t ->
  Rdf.Graph.t ->
  bool
(** [matches a n g] — does the neighbourhood of [n] in [g] match the
    compiled shape?  Equivalent to {!Shex.Deriv.matches} on the source
    expression (the property suite asserts this).  Consumes the
    neighbourhood triple by triple: classify into an arc class, step
    the DFA, and finally read the state's nullability.  Stops early in
    the dead state ∅ — sound exactly when the shape is negation-free,
    as in the derivative engine.

    When [tele] (default {!Telemetry.disabled}) has a sink, each DFA
    edge emits a [deriv_step] event (with hash-consed state ids in
    place of expression sizes; the rendered states too under
    {!Telemetry.residuals}) and exhaustion emits a [nullable_check] —
    the same provenance vocabulary as the interpreted engine.

    Classification dispatches on the triple's (direction, predicate)
    through a per-automaton candidate table: only the atoms whose
    predicate set contains that predicate have their object
    constraints evaluated, so wide schemas pay one table lookup per
    triple instead of a full atom scan. *)

val matches_dts :
  ?check_ref:(Shex.Label.t -> Rdf.Term.t -> bool) ->
  ?tele:Telemetry.t ->
  t ->
  Rdf.Term.t ->
  Shex.Neigh.dtriple list ->
  bool
(** {!matches} over an already-computed neighbourhood (what
    {!Shex.Validate} passes a compiled matcher).  The caller must have
    included incoming triples exactly when the source expression has
    inverse arcs. *)

(** Cache counters, cumulative since {!compile}. *)
type stats = {
  atoms : int;  (** distinct arc constraints (alphabet generators) *)
  states : int;  (** DFA states materialised so far *)
  symbols : int;  (** arc classes (alphabet symbols) seen so far *)
  hits : int;  (** transition steps answered from the table *)
  misses : int;  (** transition steps that had to build a derivative *)
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
(** [7 states, 4 symbols, 5963 steps: 99.2% cached]. *)

val zero_stats : stats
val add_stats : stats -> stats -> stats
(** Pointwise sum, for aggregating over the automata of a session. *)

val sub_stats : stats -> stats -> stats
(** Pointwise difference, for computing the growth since a previous
    reading (the delta a repeated stats export pushes into a
    telemetry registry). *)

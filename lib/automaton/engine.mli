(** Registration of the DFA backend with {!Shex.Validate}.

    Core cannot depend on this library, so the [Compiled] engine is
    wired through {!Shex.Validate.set_compiled_backend}.  This module
    registers a factory that gives every validation session its own
    backend instance: one lazy {!Dfa} per shape label, compiled on
    first use and shared across all nodes of the session, with
    {!Shex.Validate.compiled_stats} reporting the summed cache
    counters and the backend's [export_stats] folding the same sums
    into a session's {!Telemetry} registry (gauges
    [compiled_atoms]/[compiled_states]/[compiled_symbols], counters
    [compiled_hits]/[compiled_misses]) for the unified
    {!Shex.Validate.metrics} snapshot.

    [install] runs automatically when the library is linked (it is
    built with [-linkall]), so merely listing [shex_automaton] among an
    executable's libraries enables [~engine:Compiled]; calling it again
    is harmless. *)

val install : unit -> unit

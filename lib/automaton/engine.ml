let to_cache_stats (s : Dfa.stats) : Shex.Validate.cache_stats =
  {
    atoms = s.atoms;
    states = s.states;
    symbols = s.symbols;
    hits = s.hits;
    misses = s.misses;
  }

let backend tele : Shex.Validate.compiled_backend =
  let automata : Dfa.t list ref = ref [] in
  let compile_shape e =
    let auto = Dfa.compile e in
    automata := auto :: !automata;
    fun ~check_ref n g -> Dfa.matches ~check_ref ~tele auto n g
  in
  let summed () =
    List.fold_left
      (fun acc auto -> Dfa.add_stats acc (Dfa.stats auto))
      Dfa.zero_stats !automata
  in
  let cache_stats () = to_cache_stats (summed ()) in
  (* The registry half of the stats migration: the same counters,
     pushed into a session's telemetry so {!Shex.Validate.metrics}
     exposes every engine through one snapshot.  Table sizes are
     gauges (a reading, not a rate); transition steps are counters. *)
  let export_stats tele =
    let s = summed () in
    Telemetry.Counter.set (Telemetry.gauge tele "compiled_atoms") s.atoms;
    Telemetry.Counter.set (Telemetry.gauge tele "compiled_states") s.states;
    Telemetry.Counter.set (Telemetry.gauge tele "compiled_symbols") s.symbols;
    Telemetry.Counter.set (Telemetry.counter tele "compiled_hits") s.hits;
    Telemetry.Counter.set (Telemetry.counter tele "compiled_misses") s.misses
  in
  { Shex.Validate.compile_shape; cache_stats; export_stats }

let install () = Shex.Validate.set_compiled_backend backend

(* Self-register at link time: the library is built with -linkall, so
   any executable that lists shex_automaton gets the Compiled engine
   without further ceremony. *)
let () = install ()

let to_cache_stats (s : Dfa.stats) : Shex.Validate.cache_stats =
  {
    atoms = s.atoms;
    states = s.states;
    symbols = s.symbols;
    hits = s.hits;
    misses = s.misses;
  }

let backend () : Shex.Validate.compiled_backend =
  let automata : Dfa.t list ref = ref [] in
  let compile_shape e =
    let auto = Dfa.compile e in
    automata := auto :: !automata;
    fun ~check_ref n g -> Dfa.matches ~check_ref auto n g
  in
  let cache_stats () =
    to_cache_stats
      (List.fold_left
         (fun acc auto -> Dfa.add_stats acc (Dfa.stats auto))
         Dfa.zero_stats !automata)
  in
  { Shex.Validate.compile_shape; cache_stats }

let install () = Shex.Validate.set_compiled_backend backend

(* Self-register at link time: the library is built with -linkall, so
   any executable that lists shex_automaton gets the Compiled engine
   without further ceremony. *)
let () = install ()

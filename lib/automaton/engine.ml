let to_cache_stats (s : Dfa.stats) : Shex.Validate.cache_stats =
  {
    atoms = s.atoms;
    states = s.states;
    symbols = s.symbols;
    hits = s.hits;
    misses = s.misses;
  }

let backend tele : Shex.Validate.compiled_backend =
  let automata : Dfa.t list ref = ref [] in
  let compile_shape e =
    let auto = Dfa.compile e in
    automata := auto :: !automata;
    fun ~check_ref n dts -> Dfa.matches_dts ~check_ref ~tele auto n dts
  in
  let summed () =
    List.fold_left
      (fun acc auto -> Dfa.add_stats acc (Dfa.stats auto))
      Dfa.zero_stats !automata
  in
  let cache_stats () = to_cache_stats (summed ()) in
  (* The registry half of the stats migration: the same counters,
     pushed into a session's telemetry so {!Shex.Validate.metrics}
     exposes every engine through one snapshot.  Table sizes are
     gauges (a reading, not a rate); transition steps are counters.
     Exports are deltas against the previous export, not absolute
     [set]s: a registry that received merged per-domain shard stats
     (Telemetry.merge) must keep them — an absolute overwrite from
     this (idle) backend would erase the workers' readings. *)
  let exported = ref Dfa.zero_stats in
  let export_stats tele =
    let s = summed () in
    let d = Dfa.sub_stats s !exported in
    exported := s;
    Telemetry.Counter.add (Telemetry.gauge tele "compiled_atoms") d.atoms;
    Telemetry.Counter.add (Telemetry.gauge tele "compiled_states") d.states;
    Telemetry.Counter.add (Telemetry.gauge tele "compiled_symbols") d.symbols;
    Telemetry.Counter.add (Telemetry.counter tele "compiled_hits") d.hits;
    Telemetry.Counter.add (Telemetry.counter tele "compiled_misses") d.misses
  in
  { Shex.Validate.compile_shape; cache_stats; export_stats }

let install () = Shex.Validate.set_compiled_backend backend

(* Self-register at link time: the library is built with -linkall, so
   any executable that lists shex_automaton gets the Compiled engine
   without further ceremony. *)
let () = install ()

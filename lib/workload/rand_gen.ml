type mode = Surface | Extended

type case = {
  seed : int;
  mode : mode;
  schema : Shex.Schema.t;
  graph : Rdf.Graph.t;
  associations : (Rdf.Term.t * Shex.Label.t) list;
}

let ex local = Rdf.Iri.of_string_exn ("http://example.org/" ^ local)
let other local = Rdf.Iri.of_string_exn ("http://other.org/" ^ local)

(* Two predicate namespaces: every pI shares the http://example.org/p
   prefix (so an Extended-mode Pred_stem overlaps them — the SORBE
   applicability edge), while the qI live elsewhere (so stems can also
   be genuinely disjoint). *)
let pred_pool =
  [ ex "p0"; ex "p1"; ex "p2"; ex "p3"; ex "p4"; other "q0"; other "q1" ]

let node_iris =
  [ ex "n0"; ex "n1"; ex "n2"; ex "n3"; ex "n4" ]

let node_terms = List.map (fun i -> Rdf.Term.Iri i) node_iris

(* All literals well formed: SPARQL's datatype() translation does not
   re-check lexical forms (a documented divergence, see lib/sparql), so
   ill-formed typed literals are kept out of the pool entirely.  The
   padded "01"^^xsd:integer is deliberate: it is term-distinct from
   "1"^^xsd:integer but value-equal, the literal-comparison edge the
   oracle cross-checks against SPARQL. *)
let literal_pool =
  [ Rdf.Term.str "alice";
    Rdf.Term.str "bob";
    Rdf.Term.Literal (Rdf.Literal.make ~lang:"en" "hi");
    Rdf.Term.int 1;
    Rdf.Term.Literal (Rdf.Literal.typed Rdf.Xsd.Integer "01");
    Rdf.Term.int 42;
    Rdf.Term.Literal (Rdf.Literal.typed Rdf.Xsd.Decimal "1.5");
    Rdf.Term.Literal (Rdf.Literal.boolean true) ]

let object_pool = node_terms @ literal_pool

let value_set_pool = literal_pool @ node_terms

let datatype_pool = Rdf.Xsd.[ Integer; String; Boolean ]

let kind_pool =
  Shex.Value_set.[ Iri_kind; Bnode_kind; Literal_kind; Non_literal_kind ]

let labels_for n =
  List.init n (fun i ->
      Shex.Label.of_string (Printf.sprintf "http://example.org/S%d" i))

(* ------------------------------------------------------------------ *)
(* Object and predicate specs                                          *)
(* ------------------------------------------------------------------ *)

let distinct_picks rng k pool =
  let shuffled = Prng.shuffle rng pool in
  List.filteri (fun i _ -> i < k) shuffled

let gen_obj_in rng mode =
  let pool =
    (* Blank nodes have no ShExC value-set notation. *)
    match mode with
    | Surface -> value_set_pool
    | Extended -> Rdf.Term.bnode "b0" :: value_set_pool
  in
  Shex.Value_set.Obj_in (distinct_picks rng (1 + Prng.int rng 3) pool)

let gen_obj rng mode =
  let surface () =
    match Prng.int rng 12 with
    | 0 | 1 -> Shex.Value_set.Obj_any
    | 2 | 3 | 4 -> gen_obj_in rng mode
    | 5 | 6 | 7 -> Shex.Value_set.Obj_datatype (Prng.pick rng datatype_pool)
    | 8 | 9 -> Shex.Value_set.Obj_kind (Prng.pick rng kind_pool)
    | 10 -> Shex.Value_set.Obj_stem "http://example.org/n"
    | _ ->
        (* The parser only builds Obj_or as terms-then-stems, so the
           generator mirrors that shape for the round-trip property. *)
        Shex.Value_set.Obj_or
          [ gen_obj_in rng Surface; Shex.Value_set.Obj_stem "http://example.org/" ]
  in
  match mode with
  | Surface -> surface ()
  | Extended ->
      if Prng.bool rng 0.15 then Shex.Value_set.Obj_not (surface ())
      else surface ()

let gen_pred rng mode =
  match mode with
  | Surface -> Shex.Value_set.Pred (Prng.pick rng pred_pool)
  | Extended -> (
      match Prng.int rng 10 with
      | 0 ->
          (* Overlaps every example.org/pI singleton predicate. *)
          Shex.Value_set.Pred_stem "http://example.org/p"
      | 1 -> Shex.Value_set.Pred_stem "http://other.org/"
      | 2 -> Shex.Value_set.Pred_in (distinct_picks rng 2 pred_pool)
      | 3 -> Shex.Value_set.Pred_any
      | _ -> Shex.Value_set.Pred (Prng.pick rng pred_pool))

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

type arc_key = Shex.Value_set.pred * Shex.Rse.obj_spec * bool

(* Within one shape expression every generated arc is a distinct
   (pred, obj, inverse) triple.  Identical arcs in one conjunction
   would be interval-summed by [Sorbe.of_rse] — semantically sound but
   structure-destroying, which the printer round-trip property (and
   repro-file replay) cannot tolerate.  Overlap still happens through
   same-predicate/different-object arcs and (Extended) predicate
   stems. *)
let gen_arc rng mode ~labels ~used =
  let rec fresh tries =
    let pred = gen_pred rng mode in
    let inverse = Prng.bool rng 0.15 in
    let obj =
      if labels <> [] && Prng.bool rng 0.25 then
        Shex.Rse.Ref (Prng.pick rng labels)
      else Shex.Rse.Values (gen_obj rng mode)
    in
    let key : arc_key = (pred, obj, inverse) in
    if Hashtbl.mem used key && tries < 8 then fresh (tries + 1)
    else begin
      Hashtbl.replace used key ();
      Shex.Rse.arc ~inverse pred obj
    end
  in
  fresh 0

let gen_cardinality rng e =
  match Prng.int rng 10 with
  | 0 -> Shex.Rse.star e
  | 1 -> Shex.Rse.plus e
  | 2 -> Shex.Rse.opt e
  | 3 ->
      let m = Prng.int rng 3 in
      Shex.Rse.repeat m (Some (m + Prng.int rng 3)) e
  | 4 -> Shex.Rse.repeat (Prng.int rng 3) None e
  | _ -> e

(* Depth-bounded expression trees over the smart constructors — the
   parser builds through the same constructors, so generated schemas
   are already in ACI normal form and structural equality is the right
   round-trip check. *)
let rec gen_expr rng mode ~labels ~used depth =
  let atom () = gen_cardinality rng (gen_arc rng mode ~labels ~used) in
  if depth <= 0 then atom ()
  else
    match Prng.int rng 10 with
    | 0 | 1 | 2 | 3 -> atom ()
    | 4 | 5 | 6 ->
        let n = 2 + Prng.int rng 2 in
        let parts =
          List.init n (fun _ -> gen_expr rng mode ~labels ~used (depth - 1))
        in
        gen_cardinality rng (Shex.Rse.and_all parts)
    | 7 | 8 ->
        Shex.Rse.or_
          (gen_expr rng mode ~labels ~used (depth - 1))
          (gen_expr rng mode ~labels ~used (depth - 1))
    | _ ->
        (* Negation over a reference-free arc: refs under ¬ need the
           stratification machinery the generator keeps trivial. *)
        Shex.Rse.not_ (gen_arc rng mode ~labels:[] ~used)

let gen_focus rng =
  if not (Prng.bool rng 0.15) then None
  else
    match Prng.int rng 3 with
    | 0 -> Some (Shex.Value_set.Obj_kind Shex.Value_set.Iri_kind)
    | 1 -> Some (Shex.Value_set.Obj_stem "http://example.org/n")
    | _ ->
        Some
          (Shex.Value_set.Obj_in
             (distinct_picks rng (1 + Prng.int rng 2) node_terms))

let schema ?(mode = Surface) rng =
  let labels = labels_for (1 + Prng.int rng 3) in
  let rules =
    List.map
      (fun l ->
        let used : (arc_key, unit) Hashtbl.t = Hashtbl.create 8 in
        let expr = gen_expr rng mode ~labels ~used (1 + Prng.int rng 2) in
        let expr =
          match Prng.int rng 10 with
          | 0 -> Shex.Rse.open_up expr
          | 1 ->
              Shex.Rse.with_extra
                (Shex.Value_set.Pred_in (distinct_picks rng 2 pred_pool))
                expr
          | _ -> expr
        in
        (l, { Shex.Schema.focus = gen_focus rng; expr }))
      labels
  in
  match Shex.Schema.make_shapes rules with
  | Ok s -> s
  | Error msg ->
      (* Unreachable by construction: labels are distinct, references
         point into [labels], and no reference sits under ¬. *)
      invalid_arg ("Rand_gen.schema: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Graphs                                                              *)
(* ------------------------------------------------------------------ *)

let max_degree = 5

(* A concrete predicate IRI inside [vp] (arbitrary member when the set
   is infinite). *)
let instantiate_pred rng vp =
  match Shex.Value_set.pred_members vp with
  | Some (_ :: _ as is) -> Prng.pick rng is
  | _ -> Prng.pick rng pred_pool

(* A term satisfying [vo] when one exists in (or near) the pool;
   objects are drawn from here with high probability so shapes neither
   always match nor always fail. *)
let rec matching_object rng vo =
  match List.filter (fun o -> Shex.Value_set.obj_mem vo o) object_pool with
  | _ :: _ as hits -> Prng.pick rng hits
  | [] -> (
      match vo with
      | Shex.Value_set.Obj_in (t :: _) -> t
      | Shex.Value_set.Obj_or (v :: _) -> matching_object rng v
      | _ -> Prng.pick rng object_pool)

let graph_for rng schema =
  let graph = ref Rdf.Graph.empty in
  let degree : (Rdf.Term.t, int) Hashtbl.t = Hashtbl.create 16 in
  let deg t = Option.value ~default:0 (Hashtbl.find_opt degree t) in
  let bump t = Hashtbl.replace degree t (deg t + 1) in
  let emit s p o =
    (* Degree cap on every incident node: the backtracking baseline
       enumerates 2ⁿ neighbourhood decompositions. *)
    if deg s < max_degree && deg o < max_degree then
      match Rdf.Triple.make_opt s p o with
      | Some triple when not (Rdf.Graph.mem triple !graph) ->
          graph := Rdf.Graph.add triple !graph;
          bump s;
          bump o
      | Some _ | None -> ()
  in
  let arcs =
    List.concat_map
      (fun (_, (s : Shex.Schema.shape)) -> Shex.Rse.arcs s.expr)
      (Shex.Schema.shapes schema)
  in
  let node () = Prng.pick rng node_terms in
  let instantiate (a : Shex.Rse.arc) =
    let p = instantiate_pred rng a.pred in
    let focus = node () in
    let obj =
      if Prng.bool rng 0.1 then Rdf.Term.bnode "b0"
      else
        match a.obj with
        | Shex.Rse.Ref _ -> node ()
        | Shex.Rse.Values vo ->
            if Prng.bool rng 0.7 then matching_object rng vo
            else Prng.pick rng object_pool
    in
    (* An inverse constraint on [focus] is witnessed by an incoming
       triple, so the generated object becomes the subject. *)
    if a.inverse then emit obj p focus else emit focus p obj
  in
  List.iter
    (fun a ->
      let copies = Prng.int rng 4 in
      for _ = 1 to copies do
        instantiate a
      done)
    arcs;
  let noise = Prng.int rng 5 in
  for _ = 1 to noise do
    emit (node ()) (Prng.pick rng pred_pool) (Prng.pick rng object_pool)
  done;
  (!graph, node_terms)

(* ------------------------------------------------------------------ *)
(* Edit scripts                                                        *)
(* ------------------------------------------------------------------ *)

type edit = Insert of Rdf.Triple.t | Delete of Rdf.Triple.t

let apply_edit g = function
  | Insert tr -> Rdf.Graph.add tr g
  | Delete tr -> Rdf.Graph.remove tr g

(* Inserts are biased toward instantiating the schema's own arc
   constraints (like [graph_for]) so edits actually flip verdicts
   instead of only adding ignorable noise; the same degree cap keeps
   the backtracking baseline feasible after any prefix of the
   script. *)
let edit_script rng schema graph n =
  let arcs =
    List.concat_map
      (fun (_, (s : Shex.Schema.shape)) -> Shex.Rse.arcs s.expr)
      (Shex.Schema.shapes schema)
  in
  let node () = Prng.pick rng node_terms in
  let degree t g = Rdf.Graph.cardinal (Rdf.Graph.neighbourhood t g) in
  let gen_insert g =
    let candidate () =
      if arcs <> [] && Prng.bool rng 0.7 then begin
        let (a : Shex.Rse.arc) = Prng.pick rng arcs in
        let p = instantiate_pred rng a.pred in
        let focus = node () in
        let obj =
          match a.obj with
          | Shex.Rse.Ref _ -> node ()
          | Shex.Rse.Values vo ->
              if Prng.bool rng 0.7 then matching_object rng vo
              else Prng.pick rng object_pool
        in
        if a.inverse then Rdf.Triple.make_opt obj p focus
        else Rdf.Triple.make_opt focus p obj
      end
      else
        Rdf.Triple.make_opt (node ()) (Prng.pick rng pred_pool)
          (Prng.pick rng object_pool)
    in
    let rec fresh tries =
      match candidate () with
      | Some tr
        when (not (Rdf.Graph.mem tr g))
             && degree (Rdf.Triple.subject tr) g < max_degree
             && degree (Rdf.Triple.obj tr) g < max_degree ->
          Some tr
      | _ -> if tries < 8 then fresh (tries + 1) else None
    in
    fresh 0
  in
  let rec build g k acc =
    if k = 0 then List.rev acc
    else
      let existing = Rdf.Graph.to_list g in
      let delete () =
        let tr = Prng.pick rng existing in
        build (Rdf.Graph.remove tr g) (k - 1) (Delete tr :: acc)
      in
      if existing <> [] && Prng.bool rng 0.45 then delete ()
      else
        match gen_insert g with
        | Some tr -> build (Rdf.Graph.add tr g) (k - 1) (Insert tr :: acc)
        | None -> if existing = [] then List.rev acc else delete ()
  in
  build graph n []

let case ?(mode = Surface) seed =
  let rng = Prng.create seed in
  let schema = schema ~mode rng in
  let graph, foci = graph_for rng schema in
  let associations =
    List.concat_map
      (fun node ->
        List.map (fun l -> (node, l)) (Shex.Schema.labels schema))
      foci
  in
  { seed; mode; schema; graph; associations }

(** Deterministic pseudo-random numbers (splitmix64).

    The benchmark workloads must be reproducible across runs and
    machines, so they use this self-contained generator rather than
    [Random]. *)

type t

val create : int -> t
(** [create seed] — equal seeds give equal streams. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] ∈ [0, bound).  [bound] must be positive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val shuffle : t -> 'a list -> 'a list

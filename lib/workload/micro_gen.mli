(** Microbenchmark workloads: parameterised versions of the paper's
    worked examples, used by experiments E1, E2, E4 and E5. *)

val focus : Rdf.Term.t
(** The node ([ex:n]) whose neighbourhood the generators populate. *)

val example5_shape : unit -> Shex.Rse.t
(** Example 5: [a→{1} ‖ (b→{1,…,9})⋆] — the value set is widened so
    arbitrarily many distinct b-arcs exist. *)

val example5_neighbourhood : int -> Rdf.Graph.t
(** [example5_neighbourhood n]: one matching a-arc plus [n−1] distinct
    b-arcs — a valid neighbourhood of [n] triples for
    {!example5_shape} when [n−1 ≤ 9]. *)

val example5_neighbourhood_invalid : int -> Rdf.Graph.t
(** Same but the a-arc is replaced by a second out-of-range arc, so
    matching fails (the worst case for backtracking: all 2ⁿ
    decompositions are explored). *)

val balanced_shape : int -> Shex.Rse.t
(** [balanced_shape w] is Example 10 with the value sets widened to
    [{1,…,w}]: [(a→{1..w} ‖ b→{1..w})⋆] — the balance checker whose
    derivative grows.  Widening is needed because graphs are sets:
    with only two values at most two distinct a-arcs can exist. *)

val balanced_neighbourhood : int -> Rdf.Graph.t
(** [balanced_neighbourhood k]: [k] a-arcs and [k] b-arcs with
    distinct values [1..k] — a matching input for [balanced_shape k]. *)

val wide_shape : int -> Shex.Rse.t
(** [wide_shape f]: a SORBE shape with [f] constraints over distinct
    predicates [p0 … p(f−1)], alternating cardinalities
    [{1,1}], [{0,*}], [{1,*}], [{0,1}]. *)

val wide_neighbourhood : int -> Rdf.Graph.t
(** A valid neighbourhood for [wide_shape f]: one arc per required
    predicate, plus extra arcs on the starred ones. *)

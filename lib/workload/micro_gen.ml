let ex local = Rdf.Iri.of_string_exn ("http://example.org/" ^ local)
let focus = Rdf.Term.Iri (ex "n")
let pred k = ex (Printf.sprintf "p%d" k)

let arc_values name values =
  Shex.Rse.arc_v
    (Shex.Value_set.Pred (ex name))
    (Shex.Value_set.obj_terms (List.map Rdf.Term.int values))

(* Wide enough that up to 63 b-arcs stay distinct (graphs are sets)
   and in range. *)
let b_range = List.init 63 (fun k -> k + 1)

let example5_shape () =
  Shex.Rse.and_ (arc_values "a" [ 1 ]) (Shex.Rse.star (arc_values "b" b_range))

let example5_neighbourhood n =
  if n < 1 || n > 64 then
    invalid_arg "example5_neighbourhood: n must be in 1..64";
  let a = Rdf.Triple.make focus (ex "a") (Rdf.Term.int 1) in
  let bs =
    List.init (n - 1) (fun k ->
        Rdf.Triple.make focus (ex "b") (Rdf.Term.int (k + 1)))
  in
  Rdf.Graph.of_list (a :: bs)

let example5_neighbourhood_invalid n =
  if n < 1 || n > 63 then
    invalid_arg "example5_neighbourhood_invalid: n must be in 1..63";
  (* No a-arc at all: the required arc is missing, and every b-value is
     in range, so backtracking fails only after exhausting all
     decompositions of the ‖. *)
  Rdf.Graph.of_list
    (List.init n (fun k ->
         Rdf.Triple.make focus (ex "b") (Rdf.Term.int (k + 1))))

let balanced_shape width =
  let values = List.init (max 2 width) (fun k -> k + 1) in
  Shex.Rse.star
    (Shex.Rse.and_ (arc_values "a" values) (arc_values "b" values))

let balanced_neighbourhood k =
  (* A graph is a set, so the k arcs per predicate carry k distinct
     values; pair it with [balanced_shape k]. *)
  let arcs name =
    List.init k (fun j ->
        Rdf.Triple.make focus (ex name) (Rdf.Term.int (j + 1)))
  in
  Rdf.Graph.of_list (arcs "a" @ arcs "b")

let wide_shape f =
  let constraint_for k =
    let a =
      Shex.Rse.arc_v
        (Shex.Value_set.Pred (pred k))
        (Shex.Value_set.Obj_kind Shex.Value_set.Literal_kind)
    in
    match k mod 4 with
    | 0 -> a
    | 1 -> Shex.Rse.star a
    | 2 -> Shex.Rse.plus a
    | _ -> Shex.Rse.opt a
  in
  Shex.Rse.and_all (List.init f constraint_for)

let wide_neighbourhood f =
  let triples =
    List.concat
      (List.init f (fun k ->
           let one = [ Rdf.Triple.make focus (pred k) (Rdf.Term.int k) ] in
           match k mod 4 with
           | 0 | 3 -> one
           | 1 | 2 ->
               one
               @ [ Rdf.Triple.make focus (pred k)
                     (Rdf.Term.int (1000 + k)) ]
           | _ -> assert false))
  in
  Rdf.Graph.of_list triples

type violation =
  | Missing_name
  | Extra_age
  | Age_not_integer
  | Knows_literal

type profile = {
  n_persons : int;
  invalid_fraction : float;
  knows_degree : int;
  seed : int;
}

let default_profile =
  { n_persons = 100; invalid_fraction = 0.1; knows_degree = 2; seed = 42 }

type generated = {
  graph : Rdf.Graph.t;
  valid : Rdf.Term.t list;
  invalid : Rdf.Term.t list;
}

let foaf local = Rdf.Iri.of_string_exn ("http://xmlns.com/foaf/0.1/" ^ local)
let person_iri k =
  Rdf.Term.iri (Printf.sprintf "http://example.org/people/p%d" k)

let first_names =
  [ "Ada"; "Bob"; "Cleo"; "Dan"; "Eve"; "Fay"; "Gus"; "Hal"; "Ines"; "John" ]

let violations = [ Missing_name; Extra_age; Age_not_integer; Knows_literal ]

let gen ?community profile =
  let rng = Prng.create profile.seed in
  let n = profile.n_persons in
  let is_invalid = Array.init n (fun _ -> Prng.bool rng profile.invalid_fraction) in
  let valid_indices =
    List.filter (fun k -> not is_invalid.(k)) (List.init n Fun.id)
  in
  (* Eligible knows-targets of person [k]: every valid person, or —
     clustered portals — the valid persons of [k]'s own community. *)
  let eligible =
    match community with
    | None -> fun _ -> valid_indices
    | Some c ->
        let blocks : (int, int list) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun j ->
            let b = j / c in
            let prev = Option.value (Hashtbl.find_opt blocks b) ~default:[] in
            Hashtbl.replace blocks b (j :: prev))
          (List.rev valid_indices);
        fun k -> Option.value (Hashtbl.find_opt blocks (k / c)) ~default:[]
  in
  let add = Rdf.Graph.add in
  let graph = ref Rdf.Graph.empty in
  let emit s p o = graph := add (Rdf.Triple.make s p o) !graph in
  let gen_person k =
    let me = person_iri k in
    let age () = emit me (foaf "age") (Rdf.Term.int (18 + Prng.int rng 60)) in
    let name () =
      emit me (foaf "name")
        (Rdf.Term.str
           (Printf.sprintf "%s %d" (Prng.pick rng first_names) k))
    in
    let knows_valid () =
      match eligible k with
      | [] -> ()
      | candidates ->
          let target = Prng.pick rng candidates in
          if target <> k then emit me (foaf "knows") (person_iri target)
    in
    if not is_invalid.(k) then begin
      age ();
      name ();
      (* extra names with decreasing probability *)
      if Prng.bool rng 0.3 then name ();
      let degree = Prng.int rng (max 1 ((2 * profile.knows_degree) + 1)) in
      for _ = 1 to degree do
        knows_valid ()
      done
    end
    else begin
      match Prng.pick rng violations with
      | Missing_name ->
          age ();
          knows_valid ()
      | Extra_age ->
          emit me (foaf "age") (Rdf.Term.int 30);
          emit me (foaf "age") (Rdf.Term.int 31);
          name ()
      | Age_not_integer ->
          emit me (foaf "age") (Rdf.Term.str "old");
          name ()
      | Knows_literal ->
          age ();
          name ();
          emit me (foaf "knows") (Rdf.Term.str "somebody")
    end
  in
  for k = 0 to n - 1 do
    gen_person k
  done;
  let valid, invalid =
    List.init n Fun.id
    |> List.partition (fun k -> not is_invalid.(k))
  in
  { graph = !graph;
    valid = List.map person_iri valid;
    invalid = List.map person_iri invalid }

let generate profile = gen profile

let generate_clustered ?(community = 10) profile =
  gen ~community:(max 1 community) profile

let person_schema () =
  let person = Shex.Label.of_string "Person" in
  let schema =
    Shex.Schema.make_exn
      [ ( person,
          Shex.Rse.and_all
            [ Shex.Rse.arc_v (Shex.Value_set.Pred (foaf "age"))
                Shex.Value_set.xsd_integer;
              Shex.Rse.plus
                (Shex.Rse.arc_v (Shex.Value_set.Pred (foaf "name"))
                   Shex.Value_set.xsd_string);
              Shex.Rse.star
                (Shex.Rse.arc_ref (Shex.Value_set.Pred (foaf "knows"))
                   person) ] ) ]
  in
  (schema, person)

let flat_person_schema () =
  let person = Shex.Label.of_string "Person" in
  let schema =
    Shex.Schema.make_exn
      [ ( person,
          Shex.Rse.and_all
            [ Shex.Rse.arc_v (Shex.Value_set.Pred (foaf "age"))
                Shex.Value_set.xsd_integer;
              Shex.Rse.plus
                (Shex.Rse.arc_v (Shex.Value_set.Pred (foaf "name"))
                   Shex.Value_set.xsd_string);
              Shex.Rse.star
                (Shex.Rse.arc_v (Shex.Value_set.Pred (foaf "knows"))
                   (Shex.Value_set.Obj_kind Shex.Value_set.Iri_kind)) ] ) ]
  in
  (schema, person)

(** Synthetic FOAF social graphs — the linked-data-portal workload.

    The paper motivates validation with linked data portals ([16]) and
    its running example is the recursive Person shape (Examples 1, 2,
    14).  This generator produces deterministic social graphs with a
    controllable fraction of invalid persons, standing in for the
    portal datasets we cannot ship (see DESIGN.md, substitutions). *)

type violation =
  | Missing_name     (** no [foaf:name] arc (the [mary]-style failure) *)
  | Extra_age        (** two [foaf:age] arcs *)
  | Age_not_integer  (** [foaf:age "old"] *)
  | Knows_literal    (** [foaf:knows "somebody"] — fails the reference *)

type profile = {
  n_persons : int;
  invalid_fraction : float;
      (** fraction of persons given one random violation *)
  knows_degree : int;
      (** average out-degree of [foaf:knows] among valid persons;
          valid persons only know valid persons, so violations do not
          cascade through the recursion *)
  seed : int;
}

val default_profile : profile
(** 100 persons, 10% invalid, degree 2, seed 42. *)

type generated = {
  graph : Rdf.Graph.t;
  valid : Rdf.Term.t list;    (** persons generated without violation *)
  invalid : Rdf.Term.t list;  (** persons given a violation *)
}

val generate : profile -> generated

val generate_clustered : ?community:int -> profile -> generated
(** Like {!generate}, but [foaf:knows] arcs stay within communities of
    [community] consecutive persons (default 10) instead of being
    drawn uniformly — the portal shape with locality.  Uniform knows
    at degree ≥ 2 produce one giant strongly-connected component, so
    under the recursive schema a single verdict flip cascades through
    most of the portal and {e any} sound incremental revalidation
    degenerates to a near-full re-run; community structure bounds the
    dependency frontier of an edit by the community size, independent
    of portal size (experiment E14 measures both regimes). *)

val person_schema : unit -> Shex.Schema.t * Shex.Label.t
(** The Example 1/14 schema:
    [person ↦ foaf:age→xsd:integer ‖ (foaf:name→xsd:string)+ ‖
    (foaf:knows→@person)⋆], and its label. *)

val flat_person_schema : unit -> Shex.Schema.t * Shex.Label.t
(** The non-recursive variant: [foaf:knows] objects only have to be
    IRIs instead of conforming [@person]s.  Reference-free, so every
    focus node's check is fully independent — the workload for which
    parallel and sequential validation do {e exactly} the same work
    (identical telemetry counter totals, not just identical verdicts;
    experiment E12). *)

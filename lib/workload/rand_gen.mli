(** Random differential-testing workloads: seeded schema + graph +
    focus generators for the cross-engine oracle (lib/oracle).

    A case is fully determined by its seed (splitmix64, {!Prng}), so
    every divergence the oracle finds is reproducible from one
    integer.  The generators cover the constructs where engines have
    historically diverged (Boneva et al., "Shape Expressions
    Schemas"): finite value sets, IRI stems, datatypes and node kinds,
    inverse arcs, [{m,n}] repetition, optional/star/plus, alternatives,
    shape references with (negation-free) recursion, focus-node
    constraints, and — in {!Extended} mode — predicate sets with no
    ShExC notation (predicate stems, enumerations, wildcards) plus
    object-set complement. *)

(** What the generator may emit.

    {!Surface} stays inside the ShExC-printable fragment (singleton
    predicates, no [Obj_not], no [∅]) so cases can be serialised to
    self-contained repro files and drive the printer round-trip
    property.  {!Extended} additionally generates predicate stems that
    {e overlap} singleton predicates — the SORBE applicability edge —
    and object complements. *)
type mode = Surface | Extended

type case = {
  seed : int;
  mode : mode;
  schema : Shex.Schema.t;
  graph : Rdf.Graph.t;
  associations : (Rdf.Term.t * Shex.Label.t) list;
      (** every generated node against every label, in generation
          order — the bulk workload the oracle cross-checks *)
}

val case : ?mode:mode -> int -> case
(** [case seed] (default mode {!Surface}).  Equal seeds give equal
    cases.  Node neighbourhoods are kept small (≤ 6 triples in either
    direction) so the exponential backtracking baseline stays
    feasible. *)

val schema : ?mode:mode -> Prng.t -> Shex.Schema.t
(** Just the schema generator (used by the ShExC round-trip
    property).  Surface-mode schemas are printable by
    {!Shexc.Shexc_printer} and reparse to structurally equal rules. *)

val graph_for : Prng.t -> Shex.Schema.t -> Rdf.Graph.t * Rdf.Term.t list
(** A graph biased toward the schema's arc constraints (most triples
    instantiate some generated arc, with both matching and
    near-missing objects) plus noise, and the focus-node pool. *)

(** {1 Edit scripts}

    Seeded triple-level edits for the incremental revalidation
    differential arm ([--oracle mode=edits]) and the incremental
    session's property tests. *)

type edit = Insert of Rdf.Triple.t | Delete of Rdf.Triple.t

val apply_edit : Rdf.Graph.t -> edit -> Rdf.Graph.t

val edit_script :
  Prng.t -> Shex.Schema.t -> Rdf.Graph.t -> int -> edit list
(** [edit_script rng schema graph n] is a script of up to [n] edits,
    each valid against the graph produced by the preceding prefix
    (inserts are absent before, deletes present).  Inserts are biased
    toward instantiating the schema's arc constraints so scripts flip
    verdicts, and respect [graph_for]'s node-degree cap so the
    backtracking baseline stays feasible at every step. *)

(** Incremental revalidation sessions.

    A {!t} owns a mutable graph and a warm {!Shex.Validate.session}
    created with dependency recording on: every settled (node, shape)
    verdict remembers which hypotheses its final evaluation consulted.
    {!apply} takes a batch of triple inserts and deletes, computes the
    affected focus-node frontier by walking those edges backwards from
    the edited nodes ({!Shex.Validate.invalidate_nodes}), drops only
    that frontier from the memo, and re-solves it against everything
    retained — the verdict memo outside the frontier, the per-label
    SORBE compilations and the compiled-DFA transition tables all stay
    warm across deltas.

    Correctness rests on the stratified-negation fixpoint semantics
    (Boneva, Labra Gayo & Prud'hommeaux): verdicts outside the
    frontier were computed from unchanged neighbourhoods and retained
    reference answers, so re-solving only the frontier converges to
    the same greatest fixpoint as a full from-scratch run.  The
    oracle's edit-script arm ([--oracle mode=edits]) checks that
    equivalence mechanically after every delta; DESIGN.md §11 gives
    the argument.

    Schema changes cannot be localised this way — {!set_schema} falls
    back to a full reset (fresh memo, fresh compilations). *)

(** A batch of edits.  Deletes are applied before inserts; triples
    already present (for inserts) or already absent (for deletes) are
    ignored and do not count as applied work. *)
type delta = { inserts : Rdf.Triple.t list; deletes : Rdf.Triple.t list }

val insert : Rdf.Triple.t list -> delta
val delete : Rdf.Triple.t list -> delta

(** What one {!apply} did. *)
type stats = {
  applied : int;
      (** triples that actually changed the graph (no-op edits are
          skipped) *)
  frontier : int;
      (** memoised (node, shape) verdicts invalidated — the
          dependency frontier of the edit *)
  resolved : int;
      (** frontier pairs eagerly re-solved (currently always equal to
          [frontier]: queries stay warm and verdict flips are
          observable) *)
  changed : (Rdf.Term.t * Shex.Label.t * bool) list;
      (** frontier pairs whose verdict differs from before the delta,
          with the new verdict — what a portal would push to
          subscribers *)
}

type t

val create :
  ?engine:Shex.Validate.engine ->
  ?telemetry:Telemetry.t ->
  ?domains:int ->
  Shex.Schema.t ->
  Rdf.Graph.t ->
  t
(** The underlying validation session is created with
    [~record_deps:true].  [telemetry] additionally receives the
    incremental instruments: counters [incremental_deltas] (apply
    calls), [incremental_edits] (applied triples),
    [incremental_invalidated] / [incremental_resolved] (frontier pairs
    cumulative), [incremental_full_resets]; the
    [incremental_frontier_size] histogram (per-delta frontier size);
    and the [incremental_apply] span. *)

val graph : t -> Rdf.Graph.t
val schema : t -> Shex.Schema.t

val validation : t -> Shex.Validate.session
(** The live inner session — for {!Shex.Report.run}, explanations, or
    direct metrics access.  Replaced wholesale by {!set_schema}; do
    not cache across schema changes. *)

val apply : t -> delta -> stats
(** Apply the batch: update the graph, invalidate the dependency
    frontier, re-solve it, report the work done.  Applying an empty
    (or fully no-op) delta touches nothing and returns zero stats. *)

val check : t -> Rdf.Term.t -> Shex.Label.t -> Shex.Validate.outcome
val check_bool : t -> Rdf.Term.t -> Shex.Label.t -> bool

val set_schema : t -> Shex.Schema.t -> unit
(** Full fallback: schema deltas are not localised, so the inner
    session (memo, compilations, automaton backend) is rebuilt from
    scratch against the current graph.  Counted as
    [incremental_full_resets]. *)

val metrics : t -> Telemetry.snapshot
(** {!Shex.Validate.metrics} of the inner session — engine counters,
    automaton cache counters and the incremental instruments in one
    snapshot. *)

type delta = { inserts : Rdf.Triple.t list; deletes : Rdf.Triple.t list }

let insert triples = { inserts = triples; deletes = [] }
let delete triples = { inserts = []; deletes = triples }

type stats = {
  applied : int;
  frontier : int;
  resolved : int;
  changed : (Rdf.Term.t * Shex.Label.t * bool) list;
}

type t = {
  engine : Shex.Validate.engine;
  domains : int;
  tele : Telemetry.t;
  mutable vs : Shex.Validate.session;
  (* Incremental instruments, resolved once (one branch each when the
     registry is disabled, like the engine instruments). *)
  deltas : Telemetry.Counter.t;
  edits : Telemetry.Counter.t;
  invalidated : Telemetry.Counter.t;
  resolved_total : Telemetry.Counter.t;
  full_resets : Telemetry.Counter.t;
  frontier_size : Telemetry.Histogram.t;
  apply_span : Telemetry.Span.t;
}

let create ?(engine = Shex.Validate.Derivatives)
    ?(telemetry = Telemetry.disabled) ?(domains = 1) schema graph =
  let vs =
    Shex.Validate.session ~engine ~telemetry ~domains ~record_deps:true
      schema graph
  in
  { engine; domains; tele = telemetry; vs;
    deltas = Telemetry.counter telemetry "incremental_deltas";
    edits = Telemetry.counter telemetry "incremental_edits";
    invalidated = Telemetry.counter telemetry "incremental_invalidated";
    resolved_total = Telemetry.counter telemetry "incremental_resolved";
    full_resets = Telemetry.counter telemetry "incremental_full_resets";
    frontier_size = Telemetry.histogram telemetry "incremental_frontier_size";
    apply_span = Telemetry.span telemetry "incremental_apply" }

let graph t = Shex.Validate.graph t.vs
let schema t = Shex.Validate.schema t.vs
let validation t = t.vs
let check t n l = Shex.Validate.check t.vs n l
let check_bool t n l = Shex.Validate.check_bool t.vs n l
let metrics t = Shex.Validate.metrics t.vs

let set_schema t schema =
  Telemetry.Counter.incr t.full_resets;
  t.vs <-
    Shex.Validate.session ~engine:t.engine ~telemetry:t.tele
      ~domains:t.domains ~record_deps:true schema
      (Shex.Validate.graph t.vs)

let apply t { inserts; deletes } =
  Telemetry.Span.time t.apply_span @@ fun () ->
  Telemetry.Counter.incr t.deltas;
  let touched : (Rdf.Term.t, unit) Hashtbl.t = Hashtbl.create 8 in
  let applied = ref 0 in
  let touch tr =
    incr applied;
    Hashtbl.replace touched (Rdf.Triple.subject tr) ();
    Hashtbl.replace touched (Rdf.Triple.obj tr) ()
  in
  (* Deletes first, then inserts, no-ops skipped: a triple listed on
     both sides round-trips through the graph and only costs frontier
     work, never correctness. *)
  let g =
    List.fold_left
      (fun g tr ->
        if Rdf.Graph.mem tr g then begin
          touch tr;
          Rdf.Graph.remove tr g
        end
        else g)
      (Shex.Validate.graph t.vs) deletes
  in
  let g =
    List.fold_left
      (fun g tr ->
        if Rdf.Graph.mem tr g then g
        else begin
          touch tr;
          Rdf.Graph.add tr g
        end)
      g inserts
  in
  if !applied = 0 then { applied = 0; frontier = 0; resolved = 0; changed = [] }
  else begin
    Telemetry.Counter.add t.edits !applied;
    Shex.Validate.set_graph t.vs g;
    let nodes = Hashtbl.fold (fun n () acc -> n :: acc) touched [] in
    let frontier = Shex.Validate.invalidate_nodes t.vs nodes in
    let size = List.length frontier in
    Telemetry.Histogram.observe t.frontier_size size;
    Telemetry.Counter.add t.invalidated size;
    (* Eager re-solve: the memo is warm again before the next query,
       and comparing against the old verdicts yields exactly the
       affected subscribers. *)
    let changed =
      List.filter_map
        (fun ((n, l), was) ->
          let now = Shex.Validate.check_bool t.vs n l in
          if Bool.equal now was then None else Some (n, l, now))
        frontier
    in
    Telemetry.Counter.add t.resolved_total size;
    { applied = !applied; frontier = size; resolved = size; changed }
  end

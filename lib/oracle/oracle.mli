(** Cross-engine differential oracle.

    The repo carries four neighbourhood matchers (derivatives,
    backtracking, SORBE counting, compiled DFA), a SPARQL compilation
    path and a domain-parallel bulk runner, all promising identical
    verdicts.  This module checks that promise mechanically: it runs a
    random workload ({!Workload.Rand_gen}) through every applicable
    arm, compares verdicts and report JSON, and delta-shrinks any
    disagreement to a minimal counterexample that can be written as a
    self-contained repro file (ShExC + Turtle + shape map) and
    replayed as a regression test. *)

(** How two arms disagreed. *)
type kind =
  | Verdict  (** conformance bits differ *)
  | Report   (** verdicts agree but report JSON (blame sets) differs *)

type divergence = {
  arm : string;
      (** the disagreeing arm: ["backtrack"], ["auto"], ["compiled"],
          ["sorbe"], ["domains=2"], ["domains=4"], ["sparql"] or
          ["edits"]; the reference arm is always the sequential
          derivative engine *)
  kind : kind;
  detail : string;  (** one-line human-readable description *)
}

val divergences :
  Shex.Schema.t ->
  Rdf.Graph.t ->
  (Rdf.Term.t * Shex.Label.t) list ->
  divergence list
(** Run every applicable arm over the associations and report each
    disagreement with the derivative reference.  The compiled and
    domain arms are skipped (not failed) when their backends are not
    linked into the executable; the SORBE and SPARQL arms restrict
    themselves to the shapes (and, for SPARQL, focus nodes) inside
    their fragments. *)

val shrink_with :
  keep:
    (Shex.Schema.t ->
    Rdf.Graph.t ->
    (Rdf.Term.t * Shex.Label.t) list ->
    bool) ->
  Shex.Schema.t ->
  Rdf.Graph.t ->
  (Rdf.Term.t * Shex.Label.t) list ->
  Shex.Schema.t * Rdf.Graph.t * (Rdf.Term.t * Shex.Label.t) list
(** Greedy delta-shrink preserving an arbitrary predicate: drop
    associations, then graph triples, then simplify shape expressions
    and drop unreferenced rules, to a local minimum; [keep] is called
    on each candidate and a step is kept only when it returns [true].
    [keep] must hold on the input or the output is just the input.
    Used by {!shrink} with "the divergence survives", and by the
    static-analysis containment arm with "the focus still satisfies S1
    and fails S2" (S2 closed over by the predicate) — the witness
    property must survive shrinking, not just some divergence. *)

val shrink :
  Shex.Schema.t ->
  Rdf.Graph.t ->
  (Rdf.Term.t * Shex.Label.t) list ->
  divergence ->
  Shex.Schema.t * Rdf.Graph.t * (Rdf.Term.t * Shex.Label.t) list
(** {!shrink_with} instantiated with "the given divergence (same arm,
    same kind) survives". *)

(** A shrunk, reproducible divergence from a campaign. *)
type finding = {
  seed : int;
  mode : Workload.Rand_gen.mode;
  divergence : divergence;  (** re-derived on the shrunk workload *)
  schema : Shex.Schema.t;
  graph : Rdf.Graph.t;
  associations : (Rdf.Term.t * Shex.Label.t) list;
  repro : string option;  (** path of the written repro file, if any *)
}

type summary = { seeds_run : int; findings : finding list }

val run_campaign :
  ?mode:Workload.Rand_gen.mode ->
  ?dir:string ->
  ?log:(string -> unit) ->
  first_seed:int ->
  count:int ->
  unit ->
  summary
(** Generate and check [count] seeded workloads starting at
    [first_seed].  Each divergence is shrunk; with [?dir] set (and the
    workload printable, i.e. [Surface] mode) a repro file is written
    there as [oracle-seed<N>.repro].  [log] receives one line per
    divergence as it is found. *)

val repro_to_string : finding -> string
(** The self-contained repro document: a commented header, then
    [%schema] (ShExC), [%data] (Turtle) and [%map] (fixed shape map)
    sections.  Raises [Invalid_argument] when the schema is outside
    the ShExC-printable fragment (Extended-mode predicate sets). *)

val replay_string : string -> (unit, string) result
(** Parse a repro document and re-run {!divergences} on it — plus, when
    the document carries a non-empty [%edits] section ([+]/[-] prefixed
    N-Triples lines), the incremental edits arm over that script:
    [Ok ()] when every arm now agrees (the regression stays fixed),
    [Error detail] otherwise.  Also [Error] on malformed documents. *)

val replay_file : string -> (unit, string) result

(** {1 Incremental edits arm}

    Differential testing of [Shex_incremental.Session]: replay a
    seeded edit script ({!Workload.Rand_gen.edit_script}) through an
    incremental session and compare every association's verdict, after
    every edit, against a from-scratch session over the same graph.
    This mechanically checks the frontier-invalidation soundness
    argument of DESIGN.md §11. *)

val edits_divergence :
  Shex.Schema.t ->
  Rdf.Graph.t ->
  Workload.Rand_gen.edit list ->
  (Rdf.Term.t * Shex.Label.t) list ->
  divergence option
(** The first stale verdict found while replaying the script, if
    any — arm ["edits"], kind {!Verdict}. *)

val shrink_edits :
  Shex.Schema.t ->
  Rdf.Graph.t ->
  Workload.Rand_gen.edit list ->
  (Rdf.Term.t * Shex.Label.t) list ->
  divergence ->
  Rdf.Graph.t * Workload.Rand_gen.edit list * (Rdf.Term.t * Shex.Label.t) list
(** Greedy shrink preserving the divergence: associations, then script
    edits, then initial graph triples.  The schema is left whole. *)

module Edits : sig
  type finding = {
    seed : int;
    divergence : divergence;
    schema : Shex.Schema.t;
    graph : Rdf.Graph.t;  (** shrunk initial graph *)
    script : Workload.Rand_gen.edit list;  (** shrunk script *)
    associations : (Rdf.Term.t * Shex.Label.t) list;
    repro : string option;
  }

  type summary = { seeds_run : int; findings : finding list }
end

val edits_repro_to_string : Edits.finding -> string
(** Like {!repro_to_string} with an extra [%edits] section, one
    [+ <s> <p> <o> .] / [- <s> <p> <o> .] N-Triples line per edit. *)

(** {1 Static-analysis arms}

    Differential checks of [lib/analysis]'s two one-sided verdicts.
    The containment arm attacks both directions of the soundness
    contract: a [Contained] claim must survive verdict fuzzing over
    generated graphs, and a [Refuted] witness must concretely validate
    under S1 and fail S2 — directly, after a Turtle round-trip, and
    after delta-shrinking with {!shrink_with}.  The optimizer arm pins
    optimised ≡ unoptimised down to byte-identical report JSON, modulo
    one normalisation: the [explain]/[reason] blame payload renders
    the (rewritten) expression itself and is blanked on both sides;
    every verdict bit, conformance count, entry node/shape and the
    entry order are compared byte for byte. *)

module Analysis_arm : sig
  type finding = { seed : int; detail : string }

  type containment_summary = {
    seeds_run : int;
    contained : int;  (** [Contained] verdicts fuzz-checked *)
    refuted : int;  (** [Refuted] witnesses re-verified *)
    inconclusive : int;
    findings : finding list;
  }

  type optimizer_summary = {
    seeds_run : int;
    rewritten : int;  (** seeds where the optimizer changed ≥ 1 shape *)
    findings : finding list;
  }
end

val run_containment_campaign :
  ?log:(string -> unit) ->
  ?max_states:int ->
  first_seed:int ->
  count:int ->
  unit ->
  Analysis_arm.containment_summary
(** For each seed: generate a workload, derive a semantically mutated
    v2 (rules kept, widened, or narrowed), run
    [Analysis.check_compat v1 v2] and attack every verdict as
    described above.  Any surviving attack is a finding. *)

val run_optimizer_campaign :
  ?log:(string -> unit) ->
  ?mode:Workload.Rand_gen.mode ->
  first_seed:int ->
  count:int ->
  unit ->
  Analysis_arm.optimizer_summary
(** For each seed: report JSON over the generated associations must be
    byte-identical (modulo blanked blame payloads, see above) between
    the original and the optimised schema, on both the structural and
    interned session paths. *)

val run_edits_campaign :
  ?dir:string ->
  ?log:(string -> unit) ->
  ?script_len:int ->
  first_seed:int ->
  count:int ->
  unit ->
  Edits.summary
(** Generate [count] seeded Surface-mode workloads with edit scripts
    (default [script_len] 12) and check each with
    {!edits_divergence}.  Findings are shrunk and, with [?dir] set,
    written as [oracle-edits-seed<N>.repro]. *)

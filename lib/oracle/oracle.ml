type kind = Verdict | Report

type divergence = { arm : string; kind : kind; detail : string }

let assoc_text (n, l) =
  Printf.sprintf "%s@<%s>" (Rdf.Term.to_string n) (Shex.Label.to_string l)

(* ------------------------------------------------------------------ *)
(* Arms                                                                *)
(* ------------------------------------------------------------------ *)

(* The reference arm: the paper's derivative engine, sequential. *)
let reference schema graph assocs =
  let session = Shex.Validate.session ~engine:Shex.Validate.Derivatives schema graph in
  let report = Shex.Report.run session assocs in
  let oks =
    List.map
      (fun (e : Shex.Report.entry) -> e.status = Shex.Report.Conformant)
      report.entries
  in
  (oks, Json.to_string ~minify:true (Shex.Report.to_json report))

(* Engine/domain arms all produce a full report over the same
   association list, so verdicts, blame sets and JSON rendering are
   compared in one shot. *)
(* Arms are (name, engine, domains, interned).  The interned arms
   re-run reference engines against the columnar accelerator: any
   ordering or lookup discrepancy between the int-column slices and
   the structural indexes shows up as a verdict or report-JSON
   divergence here. *)
let engine_arms () =
  [ ("backtrack", Shex.Validate.Backtracking, 1, false);
    ("auto", Shex.Validate.Auto, 1, false);
    ("interned", Shex.Validate.Derivatives, 1, true);
    ("interned-auto", Shex.Validate.Auto, 1, true) ]
  @ (if Shex.Validate.compiled_backend_installed () then
       [ ("compiled", Shex.Validate.Compiled, 1, false);
         ("interned-compiled", Shex.Validate.Compiled, 1, true) ]
     else [])
  @
  if Shex.Validate.bulk_checker_installed () then
    [ ("domains=2", Shex.Validate.Derivatives, 2, false);
      ("domains=4", Shex.Validate.Derivatives, 4, false);
      ("interned-domains=2", Shex.Validate.Derivatives, 2, true) ]
  else []

let compare_full ~arm ~ref_oks ~ref_json assocs (oks, json) =
  let rec first_mismatch assocs ref_oks oks =
    match (assocs, ref_oks, oks) with
    | a :: _, r :: _, o :: _ when r <> o -> Some (a, r, o)
    | _ :: assocs', _ :: ref', _ :: oks' -> first_mismatch assocs' ref' oks'
    | _, _, _ -> None
  in
  match first_mismatch assocs ref_oks oks with
  | Some (a, r, o) ->
      Some
        { arm;
          kind = Verdict;
          detail =
            Printf.sprintf "%s: verdict mismatch at %s (deriv=%b %s=%b)" arm
              (assoc_text a) r arm o }
  | None ->
  if json <> ref_json then
    Some
      { arm;
        kind = Report;
        detail =
          Printf.sprintf "%s: verdicts agree but report JSON differs" arm }
  else None

(* Direct SORBE arm: shapes in the counting fragment (no focus
   constraint, no shape references) matched by [Sorbe.matches] alone,
   outside the Auto dispatch — this is what pins the [Sorbe.of_rse]
   applicability analysis itself. *)
let sorbe_arm schema graph assocs ref_oks =
  let compiled =
    List.filter_map
      (fun (l, (s : Shex.Schema.shape)) ->
        if s.focus <> None || Shex.Rse.has_ref s.expr then None
        else
          Option.map (fun constrs -> (l, constrs)) (Shex.Sorbe.of_rse s.expr))
      (Shex.Schema.shapes schema)
  in
  let rec first_mismatch assocs oks =
    match (assocs, oks) with
    | [], _ | _, [] -> None
    | ((n, l) as a) :: assocs', ok :: oks' -> (
        match List.assoc_opt l compiled with
        | None -> first_mismatch assocs' oks'
        | Some constrs ->
            let sorbe_ok = Shex.Sorbe.matches n graph constrs in
            if sorbe_ok <> ok then
              Some
                { arm = "sorbe";
                  kind = Verdict;
                  detail =
                    Printf.sprintf
                      "sorbe: verdict mismatch at %s (deriv=%b sorbe=%b)"
                      (assoc_text a) ok sorbe_ok }
            else first_mismatch assocs' oks')
  in
  if compiled = [] then None else first_mismatch assocs ref_oks

(* SPARQL arm: reference-free, non-inverse, singleton-predicate shapes
   without focus constraints, compiled per §3 and evaluated over the
   graph.  The generated query anchors the focus as a subject, so only
   nodes with at least one outgoing triple are comparable. *)
let sparql_arm schema graph assocs ref_oks =
  let compiled =
    List.filter_map
      (fun (l, (s : Shex.Schema.shape)) ->
        if s.focus <> None then None
        else
          match Sparql.Gen.matching_nodes graph s.expr with
          | Ok nodes -> Some (l, nodes)
          | Error _ -> None)
      (Shex.Schema.shapes schema)
  in
  let rec first_mismatch assocs oks =
    match (assocs, oks) with
    | [], _ | _, [] -> None
    | ((n, l) as a) :: assocs', ok :: oks' -> (
        match List.assoc_opt l compiled with
        | None -> first_mismatch assocs' oks'
        | Some nodes ->
            if Rdf.Graph.is_empty (Rdf.Graph.neighbourhood n graph) then
              first_mismatch assocs' oks'
            else
              let sparql_ok = List.exists (Rdf.Term.equal n) nodes in
              if sparql_ok <> ok then
                Some
                  { arm = "sparql";
                    kind = Verdict;
                    detail =
                      Printf.sprintf
                        "sparql: verdict mismatch at %s (deriv=%b sparql=%b)"
                        (assoc_text a) ok sparql_ok }
              else first_mismatch assocs' oks')
  in
  if compiled = [] then None else first_mismatch assocs ref_oks

let divergences schema graph assocs =
  let ref_oks, ref_json = reference schema graph assocs in
  let engine_findings =
    List.filter_map
      (fun (arm, engine, domains, interned) ->
        let session =
          Shex.Validate.session ~engine ~domains ~interned schema graph
        in
        let report = Shex.Report.run session assocs in
        let oks =
          List.map
            (fun (e : Shex.Report.entry) ->
              e.status = Shex.Report.Conformant)
            report.entries
        in
        let json = Json.to_string ~minify:true (Shex.Report.to_json report) in
        compare_full ~arm ~ref_oks ~ref_json assocs (oks, json))
      (engine_arms ())
  in
  let extra =
    List.filter_map
      (fun f -> f schema graph assocs ref_oks)
      [ sorbe_arm; sparql_arm ]
  in
  engine_findings @ extra

(* Edits arm: replay a seeded edit script through an incremental
   session and, after every edit, compare each association's verdict
   against a from-scratch session over the same graph.  This is the
   differential check behind lib/incremental's frontier-invalidation
   soundness argument (DESIGN.md §11): any pair the invalidation walk
   wrongly retains shows up here as a stale verdict. *)
let edits_divergence schema graph script assocs =
  let total = List.length script in
  let inc = Shex_incremental.Session.create schema graph in
  let rec go i = function
    | [] -> None
    | edit :: rest -> (
        let delta =
          match edit with
          | Workload.Rand_gen.Insert tr ->
              Shex_incremental.Session.insert [ tr ]
          | Workload.Rand_gen.Delete tr ->
              Shex_incremental.Session.delete [ tr ]
        in
        ignore (Shex_incremental.Session.apply inc delta);
        let scratch =
          Shex.Validate.session schema (Shex_incremental.Session.graph inc)
        in
        let mismatch =
          List.find_opt
            (fun (n, l) ->
              Shex_incremental.Session.check_bool inc n l
              <> Shex.Validate.check_bool scratch n l)
            assocs
        in
        match mismatch with
        | Some a ->
            Some
              { arm = "edits";
                kind = Verdict;
                detail =
                  Printf.sprintf
                    "edits: stale verdict at %s after edit %d/%d \
                     (incremental ≠ from-scratch)"
                    (assoc_text a) (i + 1) total }
        | None -> go (i + 1) rest)
  in
  go 0 script

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let still schema graph assocs (target : divergence) =
  List.exists
    (fun d -> d.arm = target.arm && d.kind = target.kind)
    (divergences schema graph assocs)

(* Drop items one at a time, keeping a drop only when the divergence
   survives. *)
let greedy_drop items survives =
  let rec go kept = function
    | [] -> List.rev kept
    | x :: rest ->
        let candidate = List.rev_append kept rest in
        if candidate <> [] && survives candidate then go kept rest
        else go (x :: kept) rest
  in
  go [] items

(* Structural shrink candidates, strictly smaller, built through the
   smart constructors so candidates stay in normal form. *)
let rec shrink_expr (e : Shex.Rse.t) =
  let cands =
    match e with
    | Shex.Rse.Empty | Shex.Rse.Epsilon -> []
    | Shex.Rse.Arc _ -> [ Shex.Rse.epsilon ]
    | Shex.Rse.Star e1 ->
        (e1 :: List.map Shex.Rse.star (shrink_expr e1)) @ [ Shex.Rse.epsilon ]
    | Shex.Rse.And (e1, e2) ->
        [ e1; e2 ]
        @ List.map (fun c -> Shex.Rse.and_ c e2) (shrink_expr e1)
        @ List.map (fun c -> Shex.Rse.and_ e1 c) (shrink_expr e2)
    | Shex.Rse.Or (e1, e2) ->
        [ e1; e2 ]
        @ List.map (fun c -> Shex.Rse.or_ c e2) (shrink_expr e1)
        @ List.map (fun c -> Shex.Rse.or_ e1 c) (shrink_expr e2)
    | Shex.Rse.Not e1 -> e1 :: List.map Shex.Rse.not_ (shrink_expr e1)
  in
  List.sort_uniq Shex.Rse.compare
    (List.filter (fun c -> Shex.Rse.size c < Shex.Rse.size e) cands)

let rebuild_schema shapes =
  match Shex.Schema.make_shapes shapes with Ok s -> Some s | Error _ -> None

let set_shape shapes l shape' =
  List.map (fun (l', s) -> if Shex.Label.equal l l' then (l', shape') else (l', s)) shapes

(* Shrink one rule to a local minimum: focus first, then expression
   candidates, restarting after every accepted step. *)
let shrink_rule graph assocs keep shapes l =
  let try_schema shapes' =
    match rebuild_schema shapes' with
    | Some s when keep s graph assocs -> Some shapes'
    | Some _ | None -> None
  in
  let rec go shapes =
    let (shape : Shex.Schema.shape) = List.assoc l shapes in
    let focus_step =
      match shape.focus with
      | None -> None
      | Some _ -> try_schema (set_shape shapes l { shape with focus = None })
    in
    match focus_step with
    | Some shapes' -> go shapes'
    | None -> (
        let expr_step =
          List.find_map
            (fun c -> try_schema (set_shape shapes l { shape with expr = c }))
            (shrink_expr shape.expr)
        in
        match expr_step with Some shapes' -> go shapes' | None -> shapes)
  in
  go shapes

(* [rebuild_schema] rejects dangling references, so the guard also
   rules out dropping a rule that something still points at. *)
let drop_unused_rules graph assocs keep shapes =
  greedy_drop shapes (fun shapes' ->
      List.for_all (fun (_, l) -> List.mem_assoc l shapes') assocs
      &&
      match rebuild_schema shapes' with
      | Some s -> keep s graph assocs
      | None -> false)

(* Predicate-driven shrink core.  [keep candidate_schema candidate_graph
   candidate_assocs] decides whether a shrink step preserves the property
   being minimised; any property works — an engine divergence (see
   [shrink]), a containment counterexample ("focus satisfies S1 and
   fails S2", with S2 closed over by the predicate), or anything else a
   caller wants a minimal exhibit of. *)
let shrink_with ~keep schema graph assocs =
  let assocs =
    match List.find_opt (fun a -> keep schema graph [ a ]) assocs with
    | Some a -> [ a ]
    | None -> greedy_drop assocs (fun c -> keep schema graph c)
  in
  let shrink_graph schema graph =
    Rdf.Graph.of_list
      (greedy_drop (Rdf.Graph.to_list graph) (fun triples ->
           keep schema (Rdf.Graph.of_list triples) assocs))
  in
  let graph = shrink_graph schema graph in
  let shapes =
    List.fold_left
      (fun shapes (l, _) -> shrink_rule graph assocs keep shapes l)
      (Shex.Schema.shapes schema)
      (Shex.Schema.shapes schema)
  in
  let shapes = drop_unused_rules graph assocs keep shapes in
  let schema =
    match rebuild_schema shapes with Some s -> s | None -> schema
  in
  let graph = shrink_graph schema graph in
  (schema, graph, assocs)

let shrink schema graph assocs target =
  shrink_with ~keep:(fun s g a -> still s g a target) schema graph assocs

(* Edits shrink: associations, then script entries, then initial
   triples.  [Shex_incremental.Session.apply] treats inserts of
   present triples and deletes of absent ones as no-ops, so every
   subsequence of a script is still a well-formed script and
   [greedy_drop] applies directly.  The schema is kept whole: a stale
   verdict lives in the dependency bookkeeping, not the expression
   structure, and schema shrinking would invalidate the script's
   arc-instantiation bias anyway. *)
let shrink_edits schema graph script assocs (target : divergence) =
  let still g sc a =
    match edits_divergence schema g sc a with
    | Some d -> d.arm = target.arm && d.kind = target.kind
    | None -> false
  in
  let assocs =
    match List.find_opt (fun a -> still graph script [ a ]) assocs with
    | Some a -> [ a ]
    | None -> greedy_drop assocs (fun c -> still graph script c)
  in
  let script = greedy_drop script (fun sc -> still graph sc assocs) in
  let graph =
    Rdf.Graph.of_list
      (greedy_drop (Rdf.Graph.to_list graph) (fun triples ->
           still (Rdf.Graph.of_list triples) script assocs))
  in
  (graph, script, assocs)

(* ------------------------------------------------------------------ *)
(* Repro files                                                         *)
(* ------------------------------------------------------------------ *)

type finding = {
  seed : int;
  mode : Workload.Rand_gen.mode;
  divergence : divergence;
  schema : Shex.Schema.t;
  graph : Rdf.Graph.t;
  associations : (Rdf.Term.t * Shex.Label.t) list;
  repro : string option;
}

type summary = { seeds_run : int; findings : finding list }

let mode_text = function
  | Workload.Rand_gen.Surface -> "surface"
  | Workload.Rand_gen.Extended -> "extended"

let repro_to_string f =
  let schema_text = Shexc.Shexc_printer.schema_to_string f.schema in
  let data_text = Turtle.Write.to_string f.graph in
  let map_text =
    String.concat ",\n" (List.map assoc_text f.associations)
  in
  String.concat "\n"
    [ Printf.sprintf "# oracle repro: seed %d (%s mode)" f.seed
        (mode_text f.mode);
      Printf.sprintf "# found as: %s" f.divergence.detail;
      "%schema";
      schema_text ^ "%data";
      data_text ^ "%map";
      map_text;
      "" ]

let split_sections content =
  let lines = String.split_on_char '\n' content in
  let section_of = function
    | "%schema" -> Some `Schema
    | "%data" -> Some `Data
    | "%map" -> Some `Map
    | "%edits" -> Some `Edits
    | _ -> None
  in
  let rec go current acc = function
    | [] -> Ok acc
    | line :: rest -> (
        match section_of (String.trim line) with
        | Some s -> go (Some s) acc rest
        | None -> (
            match current with
            | None ->
                if String.trim line = "" || String.length line > 0 && line.[0] = '#'
                then go current acc rest
                else Error (Printf.sprintf "unexpected line before %%schema: %s" line)
            | Some s ->
                let key = function
                  | `Schema -> 0
                  | `Data -> 1
                  | `Map -> 2
                  | `Edits -> 3
                in
                let acc =
                  List.map
                    (fun (k, text) ->
                      if k = key s then (k, text ^ line ^ "\n") else (k, text))
                    acc
                in
                go current acc rest))
  in
  match go None [ (0, ""); (1, ""); (2, ""); (3, "") ] lines with
  | Error _ as e -> e
  | Ok acc ->
      Ok (List.assoc 0 acc, List.assoc 1 acc, List.assoc 2 acc, List.assoc 3 acc)

(* One edit per line in the [%edits] section: [+]/[-], a space, then a
   single N-Triples statement — self-contained (no prefixes), so the
   section stays line-oriented. *)
let edit_to_line edit =
  let tr, sign =
    match edit with
    | Workload.Rand_gen.Insert tr -> (tr, "+")
    | Workload.Rand_gen.Delete tr -> (tr, "-")
  in
  sign ^ " "
  ^ String.trim (Turtle.Ntriples.to_string (Rdf.Graph.singleton tr))

let parse_edit_lines text =
  let parse_line line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then Ok None
    else if String.length line < 2 || (line.[0] <> '+' && line.[0] <> '-')
    then Error (Printf.sprintf "edits: line must start with + or -: %s" line)
    else
      let body = String.sub line 1 (String.length line - 1) in
      match Turtle.Ntriples.parse body with
      | Error e -> Error ("edits: " ^ e)
      | Ok g -> (
          match Rdf.Graph.to_list g with
          | [ tr ] ->
              Ok
                (Some
                   (if line.[0] = '+' then Workload.Rand_gen.Insert tr
                    else Workload.Rand_gen.Delete tr))
          | _ -> Error (Printf.sprintf "edits: expected one triple: %s" line))
  in
  List.fold_left
    (fun acc line ->
      match acc with
      | Error _ as e -> e
      | Ok edits -> (
          match parse_line line with
          | Error _ as e -> e
          | Ok None -> Ok edits
          | Ok (Some edit) -> Ok (edit :: edits)))
    (Ok [])
    (String.split_on_char '\n' text)
  |> Result.map List.rev

let ( let* ) = Result.bind

let replay_string content =
  let* schema_text, data_text, map_text, edits_text =
    split_sections content
  in
  let* doc =
    Result.map_error
      (fun e -> "schema: " ^ e)
      (Shexc.Shexc_parser.parse schema_text)
  in
  let* graph =
    Result.map_error
      (fun e -> "data: " ^ e)
      (Turtle.Parse.parse_graph data_text)
  in
  let* map =
    Result.map_error
      (fun e -> "map: " ^ e)
      (Shex.Shape_map.parse ~namespaces:doc.namespaces map_text)
  in
  let* edits = parse_edit_lines edits_text in
  let assocs = Shex.Shape_map.resolve map graph in
  if assocs = [] then Error "map: no associations"
  else
    match divergences doc.schema graph assocs with
    | d :: _ -> Error d.detail
    | [] -> (
        match edits with
        | [] -> Ok ()
        | _ -> (
            match edits_divergence doc.schema graph edits assocs with
            | Some d -> Error d.detail
            | None -> Ok ()))

let replay_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | content -> replay_string content
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

let run_campaign ?(mode = Workload.Rand_gen.Surface) ?dir ?(log = ignore)
    ~first_seed ~count () =
  let findings = ref [] in
  for seed = first_seed to first_seed + count - 1 do
    let case = Workload.Rand_gen.case ~mode seed in
    match divergences case.schema case.graph case.associations with
    | [] -> ()
    | d :: _ ->
        log (Printf.sprintf "seed %d: %s" seed d.detail);
        let schema, graph, assocs =
          shrink case.schema case.graph case.associations d
        in
        let divergence =
          match
            List.find_opt
              (fun d' -> d'.arm = d.arm && d'.kind = d.kind)
              (divergences schema graph assocs)
          with
          | Some d' -> d'
          | None -> d
        in
        let finding =
          { seed; mode; divergence; schema; graph;
            associations = assocs; repro = None }
        in
        let finding =
          match dir with
          | None -> finding
          | Some dir -> (
              let path =
                Filename.concat dir (Printf.sprintf "oracle-seed%d.repro" seed)
              in
              match repro_to_string finding with
              | text ->
                  Json.write_file_atomic path text;
                  { finding with repro = Some path }
              | exception Invalid_argument _ ->
                  (* Extended-mode predicate sets have no ShExC
                     notation; such findings become OCaml regression
                     tests instead of corpus files. *)
                  finding)
        in
        findings := finding :: !findings
  done;
  { seeds_run = count; findings = List.rev !findings }

(* ------------------------------------------------------------------ *)
(* Edits campaign                                                      *)
(* ------------------------------------------------------------------ *)

module Edits = struct
  type finding = {
    seed : int;
    divergence : divergence;
    schema : Shex.Schema.t;
    graph : Rdf.Graph.t;
    script : Workload.Rand_gen.edit list;
    associations : (Rdf.Term.t * Shex.Label.t) list;
    repro : string option;
  }

  type summary = { seeds_run : int; findings : finding list }
end

let edits_repro_to_string (f : Edits.finding) =
  let schema_text = Shexc.Shexc_printer.schema_to_string f.schema in
  let data_text = Turtle.Write.to_string f.graph in
  let map_text = String.concat ",\n" (List.map assoc_text f.associations) in
  let edits_text = String.concat "\n" (List.map edit_to_line f.script) in
  String.concat "\n"
    [ Printf.sprintf "# oracle edits repro: seed %d" f.seed;
      Printf.sprintf "# found as: %s" f.divergence.detail;
      "%schema";
      schema_text ^ "%data";
      data_text ^ "%map";
      map_text;
      "%edits";
      edits_text;
      "" ]

(* Edit-script seeds are derived from the case seed with a fixed xor
   so the same integer reproduces both the workload and its script
   (mirrored by the incremental property test). *)
let edits_rng seed = Workload.Prng.create (seed lxor 0x5eed)

let run_edits_campaign ?dir ?(log = ignore) ?(script_len = 12) ~first_seed
    ~count () =
  let findings = ref [] in
  for seed = first_seed to first_seed + count - 1 do
    let case = Workload.Rand_gen.case seed in
    let script =
      Workload.Rand_gen.edit_script (edits_rng seed) case.schema case.graph
        script_len
    in
    match edits_divergence case.schema case.graph script case.associations with
    | None -> ()
    | Some d ->
        log (Printf.sprintf "seed %d: %s" seed d.detail);
        let graph, script, assocs =
          shrink_edits case.schema case.graph script case.associations d
        in
        let divergence =
          match edits_divergence case.schema graph script assocs with
          | Some d' -> d'
          | None -> d
        in
        let finding =
          { Edits.seed; divergence; schema = case.schema; graph; script;
            associations = assocs; repro = None }
        in
        let finding =
          match dir with
          | None -> finding
          | Some dir -> (
              let path =
                Filename.concat dir
                  (Printf.sprintf "oracle-edits-seed%d.repro" seed)
              in
              match edits_repro_to_string finding with
              | text ->
                  Json.write_file_atomic path text;
                  { finding with Edits.repro = Some path }
              | exception Invalid_argument _ -> finding)
        in
        findings := finding :: !findings
  done;
  { Edits.seeds_run = count; findings = List.rev !findings }

(* ------------------------------------------------------------------ *)
(* Static-analysis arms                                                 *)
(* ------------------------------------------------------------------ *)

module Analysis_arm = struct
  type finding = { seed : int; detail : string }

  type containment_summary = {
    seeds_run : int;
    contained : int;
    refuted : int;
    inconclusive : int;
    findings : finding list;
  }

  type optimizer_summary = {
    seeds_run : int;
    rewritten : int;  (** seeds where the optimizer changed ≥ 1 shape *)
    findings : finding list;
  }
end

(* Seeded semantic mutation for containment pairs.  Per rule: keep it
   unchanged (exercising the congruence fast path), widen it — [e?],
   [e ‖ junk⋆] and [e | fresh-arc] all accept every bag [e] accepts,
   so v1 ⊑ v2 is expected — or narrow it with an extra required arc,
   so counterexample witnesses are expected. *)
let mutate_schema rng (schema : Shex.Schema.t) =
  let module R = Shex.Rse in
  let module V = Shex.Value_set in
  let preds =
    List.concat_map
      (fun (_, (sh : Shex.Schema.shape)) ->
        List.filter_map
          (fun (a : R.arc) ->
            match a.R.pred with V.Pred p -> Some p | _ -> None)
          (R.arcs sh.Shex.Schema.expr))
      (Shex.Schema.shapes schema)
  in
  let fresh = Rdf.Iri.of_string_exn "http://mutation.invalid/extra" in
  let widen rng e =
    match Workload.Prng.int rng 3 with
    | 0 -> R.opt e
    | 1 ->
        let p = match preds with [] -> fresh | ps -> Workload.Prng.pick rng ps in
        R.and_ e (R.star (R.arc_v (V.Pred p) V.Obj_any))
    | _ -> R.or_ e (R.arc_v (V.Pred fresh) V.Obj_any)
  in
  let narrow e = R.and_ e (R.arc_v (V.Pred fresh) V.Obj_any) in
  let shapes =
    List.map
      (fun (l, (sh : Shex.Schema.shape)) ->
        let sh =
          match Workload.Prng.int rng 10 with
          | 0 | 1 | 2 | 3 | 4 -> sh
          | 5 | 6 | 7 -> { sh with Shex.Schema.expr = widen rng sh.Shex.Schema.expr }
          | _ -> { sh with Shex.Schema.expr = narrow sh.Shex.Schema.expr }
        in
        (l, sh))
      (Shex.Schema.shapes schema)
  in
  match Shex.Schema.make_shapes shapes with Ok s -> s | Error _ -> schema

(* Candidate focus nodes for fuzzing a Contained claim: everything the
   workload generator produced plus every graph node. *)
let fuzz_nodes (case : Workload.Rand_gen.case) extra_graph =
  let add acc t = if List.exists (Rdf.Term.equal t) acc then acc else t :: acc in
  let of_graph g acc =
    List.fold_left
      (fun acc (tr : Rdf.Triple.t) ->
        add (add acc tr.Rdf.Triple.s) tr.Rdf.Triple.o)
      acc (Rdf.Graph.to_list g)
  in
  let acc = List.fold_left (fun acc (n, _) -> add acc n) [] case.associations in
  of_graph extra_graph (of_graph case.graph acc)

(* Containment arm: derive a mutated v2 from each seeded schema, run
   [Analysis.check_compat], then attack both verdict directions —
   a [Contained] claim must survive fuzzing (no generated node may
   satisfy v1@l and fail v2@l), and a [Refuted] witness must concretely
   validate under v1 and fail v2, directly, after a Turtle round-trip,
   and after delta-shrinking with the witness-preserving predicate. *)
let run_containment_campaign ?(log = fun _ -> ()) ?(max_states = 2_000)
    ~first_seed ~count () =
  let findings = ref [] in
  let contained = ref 0 and refuted = ref 0 and inconclusive = ref 0 in
  let fail seed fmt =
    Printf.ksprintf
      (fun detail ->
        log (Printf.sprintf "seed %d: %s" seed detail);
        findings := { Analysis_arm.seed; detail } :: !findings)
      fmt
  in
  for seed = first_seed to first_seed + count - 1 do
    let case = Workload.Rand_gen.case seed in
    let v1 = case.schema in
    let rng = Workload.Prng.create ((seed * 2) + 1) in
    let v2 = mutate_schema rng v1 in
    let fuzz_graph, _ = Workload.Rand_gen.graph_for rng v2 in
    let compat = Analysis.check_compat ~max_states v1 v2 in
    List.iter
      (fun (it : Analysis.compat_item) ->
        let l = it.Analysis.label in
        match it.Analysis.verdict with
        | Analysis.Inconclusive _ -> incr inconclusive
        | Analysis.Contained ->
            incr contained;
            List.iter
              (fun g ->
                let s1 = Shex.Validate.session v1 g
                and s2 = Shex.Validate.session v2 g in
                List.iter
                  (fun n ->
                    if
                      Shex.Validate.check_bool s1 n l
                      && not (Shex.Validate.check_bool s2 n l)
                    then
                      fail seed
                        "containment claim v1@<%s> ⊑ v2 refuted by fuzzing \
                         at node %s"
                        (Shex.Label.to_string l) (Rdf.Term.to_string n))
                  (fuzz_nodes case g))
              [ case.graph; fuzz_graph ]
        | Analysis.Refuted w ->
            incr refuted;
            let holds g focus =
              let s1 = Shex.Validate.session v1 g
              and s2 = Shex.Validate.session v2 g in
              Shex.Validate.check_bool s1 focus l
              && not (Shex.Validate.check_bool s2 focus l)
            in
            if not (holds w.Analysis.graph w.Analysis.focus) then
              fail seed
                "counterexample for <%s> does not replay (must satisfy v1, \
                 fail v2)"
                (Shex.Label.to_string l)
            else begin
              (* Turtle round-trip (blank-node foci are renamed by
                 reserialisation, so only IRI/literal foci replay) *)
              (match w.Analysis.focus with
              | Rdf.Term.Bnode _ -> ()
              | _ -> (
                  match Turtle.Parse.parse_graph (Analysis.witness_turtle w) with
                  | Error e ->
                      fail seed "witness Turtle does not parse back: %s" e
                  | Ok g ->
                      if not (holds g w.Analysis.focus) then
                        fail seed
                          "witness for <%s> stops replaying after a Turtle \
                           round-trip"
                          (Shex.Label.to_string l)));
              (* the shrinker must preserve the witness property *)
              let keep s g assocs =
                List.for_all
                  (fun (n, l') ->
                    let s1 = Shex.Validate.session s g
                    and s2 = Shex.Validate.session v2 g in
                    Shex.Validate.check_bool s1 n l'
                    && not (Shex.Validate.check_bool s2 n l'))
                  assocs
              in
              let s', g', assocs' =
                shrink_with ~keep v1 w.Analysis.graph [ (w.Analysis.focus, l) ]
              in
              if not (keep s' g' assocs') then
                fail seed
                  "shrinker destroyed the containment witness for <%s>"
                  (Shex.Label.to_string l)
            end)
      compat.Analysis.items
  done;
  { Analysis_arm.seeds_run = count;
    contained = !contained;
    refuted = !refuted;
    inconclusive = !inconclusive;
    findings = List.rev !findings }

(* Optimizer arm: the pre-validation optimizer must not change the
   validation report — same verdicts, same blame sets — on either the
   structural or the interned session path.  The comparison is
   byte-level after one normalisation: the [explain]/[reason] blame
   payload is a rendering of the expression under test — a rewritten
   expression prints different residuals, and pruning a provably-empty
   disjunct legitimately changes which obligation gets blamed
   (missing_arcs against the disjunct, blame_triple against ε) — so
   blame payloads are blanked on both sides before comparing.
   Everything else — every verdict bit, the conformance counts, node
   and shape of every entry, entry order — must agree byte for
   byte. *)
let rec blank_residuals = function
  | Json.Object fields ->
      Json.Object
        (List.map
           (fun (k, v) ->
             match k with
             | "explain" | "reason" -> (k, Json.String "<blame>")
             | _ -> (k, blank_residuals v))
           fields)
  | Json.Array xs -> Json.Array (List.map blank_residuals xs)
  | (Json.Null | Json.Bool _ | Json.Number _ | Json.String _) as j -> j

let run_optimizer_campaign ?(log = fun _ -> ()) ?(mode = Workload.Rand_gen.Surface)
    ~first_seed ~count () =
  let findings = ref [] in
  let rewritten = ref 0 in
  for seed = first_seed to first_seed + count - 1 do
    let case = Workload.Rand_gen.case ~mode seed in
    let opt, changed = Analysis.optimize_stats case.schema in
    if changed > 0 then incr rewritten;
    List.iter
      (fun (arm, interned) ->
        let report schema =
          let session = Shex.Validate.session ~interned schema case.graph in
          Json.to_string ~minify:true
            (blank_residuals
               (Shex.Report.to_json (Shex.Report.run session case.associations)))
        in
        let j1 = report case.schema and j2 = report opt in
        if j1 <> j2 then begin
          let detail =
            Printf.sprintf
              "optimizer changed the %s report on seed %d (schemas must \
               validate identically)"
              arm seed
          in
          log detail;
          findings := { Analysis_arm.seed; detail } :: !findings
        end)
      [ ("structural", false); ("interned", true) ]
  done;
  { Analysis_arm.seeds_run = count;
    rewritten = !rewritten;
    findings = List.rev !findings }

module Counter = struct
  type kind = Monotonic | Gauge

  type t = { name : string; kind : kind; mutable v : int; active : bool }

  let incr c = if c.active then c.v <- c.v + 1
  let add c n = if c.active then c.v <- c.v + n
  let set c n = if c.active then c.v <- n
  let value c = c.v
  let active c = c.active
end

module Histogram = struct
  (* Fixed log2 buckets: counts.(i) holds observations v with
     2^(i-1) < v <= 2^i (i = 0 collects v <= 1); the last slot is the
     overflow bucket for v > 2^30.  Rendering accumulates, so the
     stored representation stays one increment per observation. *)
  let n_buckets = 32

  type t = {
    name : string;
    counts : int array;
    mutable count : int;
    mutable sum : int;
    mutable max : int;
    active : bool;
  }

  let bucket_index v =
    if v <= 1 then 0
    else
      let rec go i le = if v <= le || i = n_buckets - 1 then i else go (i + 1) (le * 2) in
      go 0 1

  let observe h v =
    if h.active then begin
      (* Observations can legitimately be zero (an empty neighbourhood)
         or negative (a duration rounded down past a clock step, a
         sub-microsecond interval truncated to 0 then offset): clamp to
         the first bucket so [sum]/[max] stay consistent with the
         bucket counts instead of drifting negative. *)
      let v = if v < 0 then 0 else v in
      let i = bucket_index v in
      h.counts.(i) <- h.counts.(i) + 1;
      h.count <- h.count + 1;
      h.sum <- h.sum + v;
      if v > h.max then h.max <- v
    end

  let count h = h.count
  let sum h = h.sum
  let max_value h = h.max
end

module Span = struct
  type t = {
    name : string;
    mutable count : int;
    mutable total : float;
    active : bool;
  }

  let time s f =
    if not s.active then f ()
    else begin
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          s.total <- s.total +. (Unix.gettimeofday () -. t0);
          s.count <- s.count + 1)
        f
    end

  let count s = s.count
  let total s = s.total
end

type value = Int of int | Float of float | Bool of bool | String of string

type phase = Span_begin | Span_end | Instant

type event = { name : string; phase : phase; fields : (string * value) list }

let instant name fields = { name; phase = Instant; fields }
let span_begin name fields = { name; phase = Span_begin; fields }
let span_end name fields = { name; phase = Span_end; fields }

type t = {
  on : bool;
  counters : (string, Counter.t) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  spans : (string, Span.t) Hashtbl.t;
  mutable sink : (event -> unit) option;
  mutable residuals : bool;
}

let make on =
  {
    on;
    counters = Hashtbl.create 16;
    histograms = Hashtbl.create 8;
    spans = Hashtbl.create 8;
    sink = None;
    residuals = false;
  }

let create () = make true
let disabled = make false
let enabled t = t.on

(* Get-or-create.  A disabled registry hands out inert instruments
   without registering them, so the shared [disabled] registry never
   accumulates state. *)
let make_counter t kind name =
  if not t.on then { Counter.name; kind; v = 0; active = false }
  else
    match Hashtbl.find_opt t.counters name with
    | Some c -> c
    | None ->
        let c = { Counter.name; kind; v = 0; active = true } in
        Hashtbl.replace t.counters name c;
        c

let counter t name = make_counter t Counter.Monotonic name
let gauge t name = make_counter t Counter.Gauge name

let histogram t name =
  if not t.on then
    { Histogram.name; counts = Array.make Histogram.n_buckets 0;
      count = 0; sum = 0; max = 0; active = false }
  else
    match Hashtbl.find_opt t.histograms name with
    | Some h -> h
    | None ->
        let h =
          { Histogram.name; counts = Array.make Histogram.n_buckets 0;
            count = 0; sum = 0; max = 0; active = true }
        in
        Hashtbl.replace t.histograms name h;
        h

let span t name =
  if not t.on then { Span.name; count = 0; total = 0.; active = false }
  else
    match Hashtbl.find_opt t.spans name with
    | Some s -> s
    | None ->
        let s = { Span.name; count = 0; total = 0.; active = true } in
        Hashtbl.replace t.spans name s;
        s

(* ------------------------------------------------------------------ *)
(* Merging                                                            *)
(* ------------------------------------------------------------------ *)

(* Fold one registry into another after a fork/join: counters and
   gauges add (a gauge reading such as compiled_states is a resource
   count in the merged world, so summing per-domain readings is the
   lossless combination), histograms add bucket-by-bucket with the
   max of maxima, spans add counts and totals.  Instruments missing
   on either side are created on [into], so no observation is lost. *)
let merge ~into src =
  if into.on && src.on then begin
    Hashtbl.iter
      (fun name (c : Counter.t) ->
        let dst = make_counter into c.kind name in
        Counter.add dst c.v)
      src.counters;
    Hashtbl.iter
      (fun name (h : Histogram.t) ->
        let dst = histogram into name in
        Array.iteri
          (fun i n -> dst.counts.(i) <- dst.counts.(i) + n)
          h.counts;
        dst.count <- dst.count + h.count;
        dst.sum <- dst.sum + h.sum;
        if h.max > dst.max then dst.max <- h.max)
      src.histograms;
    Hashtbl.iter
      (fun name (s : Span.t) ->
        let dst = span into name in
        dst.count <- dst.count + s.count;
        dst.total <- dst.total +. s.total)
      src.spans
  end

(* Zero every instrument in place, keeping registrations (and any
   installed sink): instruments already resolved by running sessions
   stay live, so a long-running server can reset between requests
   without re-creating its sessions.  Counters and gauges drop to 0,
   histograms forget their buckets, spans their totals. *)
let reset t =
  if t.on then begin
    Hashtbl.iter (fun _ (c : Counter.t) -> c.v <- 0) t.counters;
    Hashtbl.iter
      (fun _ (h : Histogram.t) ->
        Array.fill h.counts 0 Histogram.n_buckets 0;
        h.count <- 0;
        h.sum <- 0;
        h.max <- 0)
      t.histograms;
    Hashtbl.iter
      (fun _ (s : Span.t) ->
        s.count <- 0;
        s.total <- 0.)
      t.spans
  end

(* ------------------------------------------------------------------ *)
(* Events                                                             *)
(* ------------------------------------------------------------------ *)

let set_sink t sink = if t.on then t.sink <- sink
let tracing t = t.on && Option.is_some t.sink

let set_residuals t b = if t.on then t.residuals <- b
let residuals t = t.on && t.residuals && Option.is_some t.sink

let emit t ev =
  match t.sink with Some f when t.on -> f ev | Some _ | None -> ()

let value_to_json = function
  | Int i -> Json.int i
  | Float f -> Json.Number f
  | Bool b -> Json.Bool b
  | String s -> Json.String s

(* Instant events carry no "ph" member, so the --trace-json line format
   of step events is unchanged from before phases existed. *)
let event_to_json ev =
  Json.Object
    (("event", Json.String ev.name)
    :: (match ev.phase with
       | Instant -> []
       | Span_begin -> [ ("ph", Json.String "B") ]
       | Span_end -> [ ("ph", Json.String "E") ])
    @ List.map (fun (k, v) -> (k, value_to_json v)) ev.fields)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                          *)
(* ------------------------------------------------------------------ *)

type histo_data = {
  h_count : int;
  h_sum : int;
  h_max : int;
  h_buckets : (int * int) list;  (* (le bound, count in that bucket) *)
}

type snapshot = {
  s_counters : (string * int) list;  (* monotonic, sorted by name *)
  s_gauges : (string * int) list;
  s_histograms : (string * histo_data) list;
  s_spans : (string * (int * float)) list;  (* count, total seconds *)
}

let sorted_bindings tbl value =
  Hashtbl.fold (fun name v acc -> (name, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot t =
  let counters, gauges =
    Hashtbl.fold
      (fun name (c : Counter.t) (cs, gs) ->
        match c.kind with
        | Counter.Monotonic -> ((name, c.v) :: cs, gs)
        | Counter.Gauge -> (cs, (name, c.v) :: gs))
      t.counters ([], [])
  in
  let by_name (a, _) (b, _) = String.compare a b in
  {
    s_counters = List.sort by_name counters;
    s_gauges = List.sort by_name gauges;
    s_histograms =
      sorted_bindings t.histograms (fun (h : Histogram.t) ->
          let buckets = ref [] in
          for i = Histogram.n_buckets - 1 downto 0 do
            if h.counts.(i) > 0 then
              buckets := (1 lsl i, h.counts.(i)) :: !buckets
          done;
          { h_count = h.count; h_sum = h.sum; h_max = h.max;
            h_buckets = !buckets });
    s_spans = sorted_bindings t.spans (fun (s : Span.t) -> (s.count, s.total));
  }

let is_empty s =
  s.s_counters = [] && s.s_gauges = [] && s.s_histograms = []
  && s.s_spans = []

let counters s =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (s.s_counters @ s.s_gauges)
let find_counter s name = List.assoc_opt name (counters s)

(* The per-request delta of a long-running process: subtract the
   [since] baseline from [now], member-wise.  Monotone instruments
   (counters, histogram counts/sums/buckets, span counts/totals)
   subtract and clamp at zero, so a reset between the two snapshots
   degrades to reporting [now] rather than going negative.  Gauges are
   level readings, not accumulations, so the diff keeps the current
   reading; a histogram's [max] likewise cannot be un-merged and keeps
   the [now] value. *)
let diff ~since now =
  (* A monotone reading below its baseline means the registry was
     reset inside the window; the whole [now] value is then window
     work, so subtraction degrades to identity rather than clamping
     information away. *)
  let sub v base = if v < base then v else v - base in
  let subf v base = if v < base then v else v -. base in
  let base_int names name = Option.value ~default:0 (List.assoc_opt name names) in
  let sub_ints nows sinces =
    List.map (fun (name, v) -> (name, sub v (base_int sinces name))) nows
  in
  let sub_histo (name, h) =
    match List.assoc_opt name since.s_histograms with
    | None -> (name, h)
    | Some h0 when h.h_count < h0.h_count -> (name, h)
    | Some h0 ->
        let bucket0 le = base_int h0.h_buckets le in
        ( name,
          { h_count = sub h.h_count h0.h_count;
            h_sum = sub h.h_sum h0.h_sum;
            h_max = h.h_max;
            h_buckets =
              List.filter_map
                (fun (le, n) ->
                  let d = sub n (bucket0 le) in
                  if d > 0 then Some (le, d) else None)
                h.h_buckets } )
  in
  let sub_span (name, (count, total)) =
    match List.assoc_opt name since.s_spans with
    | None -> (name, (count, total))
    | Some (c0, t0) -> (name, (sub count c0, subf total t0))
  in
  {
    s_counters = sub_ints now.s_counters since.s_counters;
    s_gauges = now.s_gauges;
    s_histograms = List.map sub_histo now.s_histograms;
    s_spans = List.map sub_span now.s_spans;
  }

let to_json s =
  let ints kvs = Json.Object (List.map (fun (k, v) -> (k, Json.int v)) kvs) in
  let histo (name, h) =
    ( name,
      Json.Object
        [ ("count", Json.int h.h_count);
          ("sum", Json.int h.h_sum);
          ("max", Json.int h.h_max);
          ( "buckets",
            Json.Object
              (List.map
                 (fun (le, n) -> (string_of_int le, Json.int n))
                 h.h_buckets) ) ] )
  in
  let span (name, (count, total)) =
    ( name,
      Json.Object
        [ ("count", Json.int count); ("seconds", Json.Number total) ] )
  in
  Json.Object
    [ ("counters", ints s.s_counters);
      ("gauges", ints s.s_gauges);
      ("histograms", Json.Object (List.map histo s.s_histograms));
      ("spans", Json.Object (List.map span s.s_spans)) ]

let pp_text ppf s =
  let metric kind name v =
    Format.fprintf ppf "# TYPE shex_%s %s@.shex_%s %d@." name kind name v
  in
  (* Counters and gauges interleave in one sorted sequence so the
     exposition order is independent of instrument kind. *)
  let ints =
    List.sort
      (fun (a, _, _) (b, _, _) -> String.compare a b)
      (List.map (fun (n, v) -> (n, "counter", v)) s.s_counters
      @ List.map (fun (n, v) -> (n, "gauge", v)) s.s_gauges)
  in
  List.iter (fun (name, kind, v) -> metric kind name v) ints;
  List.iter
    (fun (name, h) ->
      Format.fprintf ppf "# TYPE shex_%s histogram@." name;
      let cumulative = ref 0 in
      List.iter
        (fun (le, n) ->
          cumulative := !cumulative + n;
          Format.fprintf ppf "shex_%s_bucket{le=\"%d\"} %d@." name le
            !cumulative)
        h.h_buckets;
      Format.fprintf ppf "shex_%s_bucket{le=\"+Inf\"} %d@." name h.h_count;
      Format.fprintf ppf "shex_%s_sum %d@." name h.h_sum;
      Format.fprintf ppf "shex_%s_count %d@." name h.h_count)
    s.s_histograms;
  List.iter
    (fun (name, (count, total)) ->
      Format.fprintf ppf "# TYPE shex_%s_seconds summary@." name;
      Format.fprintf ppf "shex_%s_seconds_count %d@." name count;
      Format.fprintf ppf "shex_%s_seconds_sum %.6f@." name total)
    s.s_spans

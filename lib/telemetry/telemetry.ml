(* The wall clock every instrument reads.  Overridable ([set_clock])
   so tests can inject a stepping — or backwards-stepping — clock;
   production always runs on [Unix.gettimeofday], which is NOT
   monotonic: an NTP step can move it backwards, so every consumer
   below clamps negative deltas to zero rather than corrupting its
   accumulated totals. *)
let wall_clock : (unit -> float) ref = ref Unix.gettimeofday

let now () = !wall_clock ()

let set_clock = function
  | Some f -> wall_clock := f
  | None -> wall_clock := Unix.gettimeofday

module Counter = struct
  type kind = Monotonic | Gauge

  type t = { name : string; kind : kind; mutable v : int; active : bool }

  let incr c = if c.active then c.v <- c.v + 1
  let add c n = if c.active then c.v <- c.v + n
  let set c n = if c.active then c.v <- n
  let value c = c.v
  let active c = c.active
end

module Histogram = struct
  (* Fixed log2 buckets: counts.(i) holds observations v with
     2^(i-1) < v <= 2^i (i = 0 collects v <= 1); the last slot is the
     overflow bucket for v > 2^30.  Rendering accumulates, so the
     stored representation stays one increment per observation. *)
  let n_buckets = 32

  type t = {
    name : string;
    counts : int array;
    mutable count : int;
    mutable sum : int;
    mutable max : int;
    active : bool;
  }

  let bucket_index v =
    if v <= 1 then 0
    else
      let rec go i le = if v <= le || i = n_buckets - 1 then i else go (i + 1) (le * 2) in
      go 0 1

  let observe h v =
    if h.active then begin
      (* Observations can legitimately be zero (an empty neighbourhood)
         or negative (a duration rounded down past a clock step, a
         sub-microsecond interval truncated to 0 then offset): clamp to
         the first bucket so [sum]/[max] stay consistent with the
         bucket counts instead of drifting negative. *)
      let v = if v < 0 then 0 else v in
      let i = bucket_index v in
      h.counts.(i) <- h.counts.(i) + 1;
      h.count <- h.count + 1;
      h.sum <- h.sum + v;
      if v > h.max then h.max <- v
    end

  let count h = h.count
  let sum h = h.sum
  let max_value h = h.max
end

module Span = struct
  type t = {
    name : string;
    mutable count : int;
    mutable total : float;
    active : bool;
  }

  let time s f =
    if not s.active then f ()
    else begin
      let t0 = now () in
      Fun.protect
        ~finally:(fun () ->
          (* Clamp: gettimeofday is wall time, and a clock step during
             the section would otherwise subtract from the total. *)
          let dt = now () -. t0 in
          s.total <- s.total +. (if dt < 0. then 0. else dt);
          s.count <- s.count + 1)
        f
    end

  (* Manual accounting for callers that already hold a measured
     duration (per-shape attribution records one wall reading into two
     spans; timing twice would double the clock cost). *)
  let record s dt =
    if s.active then begin
      s.total <- s.total +. (if dt < 0. then 0. else dt);
      s.count <- s.count + 1
    end

  let count s = s.count
  let total s = s.total
end

type value = Int of int | Float of float | Bool of bool | String of string

type phase = Span_begin | Span_end | Instant

type event = { name : string; phase : phase; fields : (string * value) list }

let instant name fields = { name; phase = Instant; fields }
let span_begin name fields = { name; phase = Span_begin; fields }
let span_end name fields = { name; phase = Span_end; fields }

(* A labelled family: one logical metric fanned out over a string
   label (the Prometheus {key="label"} dimension).  The registry keeps
   the per-label cells; the family handle hands them out get-or-create
   so hot paths resolve a label once and then pay the same
   single-branch cost as a plain instrument. *)
type 'a cells = { lc_key : string; lc_tbl : (string, 'a) Hashtbl.t }

type 'a family = { f_on : bool; f_cells : 'a cells; f_make : string -> 'a }

type t = {
  on : bool;
  counters : (string, Counter.t) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  spans : (string, Span.t) Hashtbl.t;
  lcounters : (string, Counter.t cells) Hashtbl.t;
  lhistograms : (string, Histogram.t cells) Hashtbl.t;
  lspans : (string, Span.t cells) Hashtbl.t;
  help : (string, string) Hashtbl.t;
  mutable sink : (event -> unit) option;
  mutable residuals : bool;
}

let make on =
  {
    on;
    counters = Hashtbl.create 16;
    histograms = Hashtbl.create 8;
    spans = Hashtbl.create 8;
    lcounters = Hashtbl.create 8;
    lhistograms = Hashtbl.create 4;
    lspans = Hashtbl.create 4;
    help = Hashtbl.create 16;
    sink = None;
    residuals = false;
  }

let create () = make true
let disabled = make false
let enabled t = t.on

let set_help t name = function
  | Some h when t.on && not (Hashtbl.mem t.help name) ->
      Hashtbl.replace t.help name h
  | Some _ | None -> ()

(* Get-or-create.  A disabled registry hands out inert instruments
   without registering them, so the shared [disabled] registry never
   accumulates state. *)
let make_counter t kind ?help name =
  set_help t name help;
  if not t.on then { Counter.name; kind; v = 0; active = false }
  else
    match Hashtbl.find_opt t.counters name with
    | Some c -> c
    | None ->
        let c = { Counter.name; kind; v = 0; active = true } in
        Hashtbl.replace t.counters name c;
        c

let counter t ?help name = make_counter t Counter.Monotonic ?help name
let gauge t ?help name = make_counter t Counter.Gauge ?help name

let fresh_histogram name active =
  { Histogram.name; counts = Array.make Histogram.n_buckets 0;
    count = 0; sum = 0; max = 0; active }

let histogram t ?help name =
  set_help t name help;
  if not t.on then fresh_histogram name false
  else
    match Hashtbl.find_opt t.histograms name with
    | Some h -> h
    | None ->
        let h = fresh_histogram name true in
        Hashtbl.replace t.histograms name h;
        h

let fresh_span name active = { Span.name; count = 0; total = 0.; active }

let span t ?help name =
  set_help t name help;
  if not t.on then fresh_span name false
  else
    match Hashtbl.find_opt t.spans name with
    | Some s -> s
    | None ->
        let s = fresh_span name true in
        Hashtbl.replace t.spans name s;
        s

(* ------------------------------------------------------------------ *)
(* Labelled families                                                  *)
(* ------------------------------------------------------------------ *)

let family tbl t ~key name make =
  if not t.on then
    { f_on = false;
      f_cells = { lc_key = key; lc_tbl = Hashtbl.create 1 };
      f_make = make }
  else
    let cells =
      match Hashtbl.find_opt tbl name with
      | Some c -> c
      | None ->
          let c = { lc_key = key; lc_tbl = Hashtbl.create 16 } in
          Hashtbl.replace tbl name c;
          c
    in
    { f_on = true; f_cells = cells; f_make = make }

let counter_family t ?help ~key name =
  set_help t name help;
  family t.lcounters t ~key name (fun _label ->
      { Counter.name; kind = Counter.Monotonic; v = 0; active = t.on })

let histogram_family t ?help ~key name =
  set_help t name help;
  family t.lhistograms t ~key name (fun _label -> fresh_histogram name t.on)

let span_family t ?help ~key name =
  set_help t name help;
  family t.lspans t ~key name (fun _label -> fresh_span name t.on)

(* Get-or-create a label's cell.  On a disabled family the fresh inert
   cell is not cached, so the shared [disabled] registry stays empty
   no matter how many labels flow past it. *)
let labelled f label =
  if not f.f_on then f.f_make label
  else
    match Hashtbl.find_opt f.f_cells.lc_tbl label with
    | Some i -> i
    | None ->
        let i = f.f_make label in
        Hashtbl.replace f.f_cells.lc_tbl label i;
        i

(* ------------------------------------------------------------------ *)
(* Merging                                                            *)
(* ------------------------------------------------------------------ *)

let merge_histo ~(into : Histogram.t) (src : Histogram.t) =
  Array.iteri (fun i n -> into.counts.(i) <- into.counts.(i) + n) src.counts;
  into.count <- into.count + src.count;
  into.sum <- into.sum + src.sum;
  if src.max > into.max then into.max <- src.max

let merge_span ~(into : Span.t) (src : Span.t) =
  into.count <- into.count + src.count;
  into.total <- into.total +. src.total

(* Fold one registry into another after a fork/join: counters and
   gauges add (a gauge reading such as compiled_states is a resource
   count in the merged world, so summing per-domain readings is the
   lossless combination), histograms add bucket-by-bucket with the
   max of maxima, spans add counts and totals.  Instruments missing
   on either side are created on [into], so no observation is lost.
   Labelled families merge per label with the same rules. *)
let merge ~into src =
  if into.on && src.on then begin
    Hashtbl.iter
      (fun name (c : Counter.t) ->
        let dst = make_counter into c.kind name in
        Counter.add dst c.v)
      src.counters;
    Hashtbl.iter
      (fun name (h : Histogram.t) -> merge_histo ~into:(histogram into name) h)
      src.histograms;
    Hashtbl.iter
      (fun name (s : Span.t) -> merge_span ~into:(span into name) s)
      src.spans;
    Hashtbl.iter
      (fun name cells ->
        let dst = counter_family into ~key:cells.lc_key name in
        Hashtbl.iter
          (fun label (c : Counter.t) -> Counter.add (labelled dst label) c.v)
          cells.lc_tbl)
      src.lcounters;
    Hashtbl.iter
      (fun name cells ->
        let dst = histogram_family into ~key:cells.lc_key name in
        Hashtbl.iter
          (fun label h -> merge_histo ~into:(labelled dst label) h)
          cells.lc_tbl)
      src.lhistograms;
    Hashtbl.iter
      (fun name cells ->
        let dst = span_family into ~key:cells.lc_key name in
        Hashtbl.iter
          (fun label s -> merge_span ~into:(labelled dst label) s)
          cells.lc_tbl)
      src.lspans;
    Hashtbl.iter
      (fun name h ->
        if not (Hashtbl.mem into.help name) then Hashtbl.replace into.help name h)
      src.help
  end

(* Zero every instrument in place, keeping registrations (and any
   installed sink): instruments already resolved by running sessions
   stay live, so a long-running server can reset between requests
   without re-creating its sessions.  Counters and gauges drop to 0,
   histograms forget their buckets, spans their totals.  Labelled
   cells are zeroed but keep their label registrations for the same
   reason. *)
let reset t =
  if t.on then begin
    let zero_counter (c : Counter.t) = c.v <- 0 in
    let zero_histo (h : Histogram.t) =
      Array.fill h.counts 0 Histogram.n_buckets 0;
      h.count <- 0;
      h.sum <- 0;
      h.max <- 0
    in
    let zero_span (s : Span.t) =
      s.count <- 0;
      s.total <- 0.
    in
    Hashtbl.iter (fun _ c -> zero_counter c) t.counters;
    Hashtbl.iter (fun _ h -> zero_histo h) t.histograms;
    Hashtbl.iter (fun _ s -> zero_span s) t.spans;
    Hashtbl.iter
      (fun _ cells -> Hashtbl.iter (fun _ c -> zero_counter c) cells.lc_tbl)
      t.lcounters;
    Hashtbl.iter
      (fun _ cells -> Hashtbl.iter (fun _ h -> zero_histo h) cells.lc_tbl)
      t.lhistograms;
    Hashtbl.iter
      (fun _ cells -> Hashtbl.iter (fun _ s -> zero_span s) cells.lc_tbl)
      t.lspans
  end

(* ------------------------------------------------------------------ *)
(* Events                                                             *)
(* ------------------------------------------------------------------ *)

let set_sink t sink = if t.on then t.sink <- sink
let tracing t = t.on && Option.is_some t.sink

let set_residuals t b = if t.on then t.residuals <- b
let residuals t = t.on && t.residuals && Option.is_some t.sink

let emit t ev =
  match t.sink with Some f when t.on -> f ev | Some _ | None -> ()

let value_to_json = function
  | Int i -> Json.int i
  | Float f -> Json.Number f
  | Bool b -> Json.Bool b
  | String s -> Json.String s

(* Instant events carry no "ph" member, so the --trace-json line format
   of step events is unchanged from before phases existed. *)
let event_to_json ev =
  Json.Object
    (("event", Json.String ev.name)
    :: (match ev.phase with
       | Instant -> []
       | Span_begin -> [ ("ph", Json.String "B") ]
       | Span_end -> [ ("ph", Json.String "E") ])
    @ List.map (fun (k, v) -> (k, value_to_json v)) ev.fields)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                          *)
(* ------------------------------------------------------------------ *)

type histo_data = {
  h_count : int;
  h_sum : int;
  h_max : int;
  h_buckets : (int * int) list;  (* (le bound, count in that bucket) *)
}

(* One labelled family in a snapshot: the label key plus the per-label
   readings, sorted by label. *)
type 'a labelled_data = { l_key : string; l_cells : (string * 'a) list }

type snapshot = {
  s_counters : (string * int) list;  (* monotonic, sorted by name *)
  s_gauges : (string * int) list;
  s_histograms : (string * histo_data) list;
  s_spans : (string * (int * float)) list;  (* count, total seconds *)
  s_lcounters : (string * int labelled_data) list;
  s_lhistograms : (string * histo_data labelled_data) list;
  s_lspans : (string * (int * float) labelled_data) list;
  s_help : (string * string) list;
}

let sorted_bindings tbl value =
  Hashtbl.fold (fun name v acc -> (name, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histo_data (h : Histogram.t) =
  let buckets = ref [] in
  for i = Histogram.n_buckets - 1 downto 0 do
    if h.counts.(i) > 0 then buckets := (1 lsl i, h.counts.(i)) :: !buckets
  done;
  { h_count = h.count; h_sum = h.sum; h_max = h.max; h_buckets = !buckets }

let snapshot_family value cells =
  { l_key = cells.lc_key; l_cells = sorted_bindings cells.lc_tbl value }

let snapshot t =
  let counters, gauges =
    Hashtbl.fold
      (fun name (c : Counter.t) (cs, gs) ->
        match c.kind with
        | Counter.Monotonic -> ((name, c.v) :: cs, gs)
        | Counter.Gauge -> (cs, (name, c.v) :: gs))
      t.counters ([], [])
  in
  let by_name (a, _) (b, _) = String.compare a b in
  {
    s_counters = List.sort by_name counters;
    s_gauges = List.sort by_name gauges;
    s_histograms = sorted_bindings t.histograms histo_data;
    s_spans = sorted_bindings t.spans (fun (s : Span.t) -> (s.count, s.total));
    s_lcounters =
      sorted_bindings t.lcounters
        (snapshot_family (fun (c : Counter.t) -> c.v));
    s_lhistograms = sorted_bindings t.lhistograms (snapshot_family histo_data);
    s_lspans =
      sorted_bindings t.lspans
        (snapshot_family (fun (s : Span.t) -> (s.count, s.total)));
    s_help = sorted_bindings t.help Fun.id;
  }

let is_empty s =
  s.s_counters = [] && s.s_gauges = [] && s.s_histograms = []
  && s.s_spans = [] && s.s_lcounters = [] && s.s_lhistograms = []
  && s.s_lspans = []

let counters s =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (s.s_counters @ s.s_gauges)
let find_counter s name = List.assoc_opt name (counters s)

let labelled_counter_values s name =
  match List.assoc_opt name s.s_lcounters with
  | Some d -> d.l_cells
  | None -> []

let labelled_span_values s name =
  match List.assoc_opt name s.s_lspans with
  | Some d -> d.l_cells
  | None -> []

(* The per-request delta of a long-running process: subtract the
   [since] baseline from [now], member-wise.  Monotone instruments
   (counters, histogram counts/sums/buckets, span counts/totals)
   subtract and clamp at zero, so a reset between the two snapshots
   degrades to reporting [now] rather than going negative.  Gauges are
   level readings, not accumulations, so the diff keeps the current
   reading; a histogram's [max] likewise cannot be un-merged and keeps
   the [now] value.  Labelled families diff label-by-label with the
   same rules; labels first seen in [now] pass through unchanged. *)
let diff ~since now =
  (* A monotone reading below its baseline means the registry was
     reset inside the window; the whole [now] value is then window
     work, so subtraction degrades to identity rather than clamping
     information away. *)
  let sub v base = if v < base then v else v - base in
  let subf v base = if v < base then v else v -. base in
  let base_int names name = Option.value ~default:0 (List.assoc_opt name names) in
  let sub_ints nows sinces =
    List.map (fun (name, v) -> (name, sub v (base_int sinces name))) nows
  in
  let sub_histo_data h0 h =
    if h.h_count < h0.h_count then h
    else
      let bucket0 le = base_int h0.h_buckets le in
      { h_count = sub h.h_count h0.h_count;
        h_sum = sub h.h_sum h0.h_sum;
        h_max = h.h_max;
        h_buckets =
          List.filter_map
            (fun (le, n) ->
              let d = sub n (bucket0 le) in
              if d > 0 then Some (le, d) else None)
            h.h_buckets }
  in
  let sub_histo (name, h) =
    match List.assoc_opt name since.s_histograms with
    | None -> (name, h)
    | Some h0 -> (name, sub_histo_data h0 h)
  in
  let sub_span_data (c0, t0) (count, total) = (sub count c0, subf total t0) in
  let sub_span (name, sp) =
    match List.assoc_opt name since.s_spans with
    | None -> (name, sp)
    | Some sp0 -> (name, sub_span_data sp0 sp)
  in
  let sub_family sub_cell sinces (name, d) =
    match List.assoc_opt name sinces with
    | None -> (name, d)
    | Some d0 ->
        ( name,
          { d with
            l_cells =
              List.map
                (fun (label, v) ->
                  match List.assoc_opt label d0.l_cells with
                  | None -> (label, v)
                  | Some v0 -> (label, sub_cell v0 v))
                d.l_cells } )
  in
  {
    s_counters = sub_ints now.s_counters since.s_counters;
    s_gauges = now.s_gauges;
    s_histograms = List.map sub_histo now.s_histograms;
    s_spans = List.map sub_span now.s_spans;
    s_lcounters =
      List.map
        (sub_family (fun v0 v -> sub v v0) since.s_lcounters)
        now.s_lcounters;
    s_lhistograms =
      List.map (sub_family sub_histo_data since.s_lhistograms) now.s_lhistograms;
    s_lspans = List.map (sub_family sub_span_data since.s_lspans) now.s_lspans;
    s_help = now.s_help;
  }

let histo_json h =
  Json.Object
    [ ("count", Json.int h.h_count);
      ("sum", Json.int h.h_sum);
      ("max", Json.int h.h_max);
      ( "buckets",
        Json.Object
          (List.map (fun (le, n) -> (string_of_int le, Json.int n)) h.h_buckets)
      ) ]

let span_json (count, total) =
  Json.Object [ ("count", Json.int count); ("seconds", Json.Number total) ]

let to_json s =
  let ints kvs = Json.Object (List.map (fun (k, v) -> (k, Json.int v)) kvs) in
  let family cell (name, d) =
    ( name,
      Json.Object
        [ ("key", Json.String d.l_key);
          ("cells", Json.Object (List.map (fun (l, v) -> (l, cell v)) d.l_cells))
        ] )
  in
  let labelled =
    (if s.s_lcounters = [] then []
     else
       [ ("counters",
          Json.Object (List.map (family Json.int) s.s_lcounters)) ])
    @ (if s.s_lhistograms = [] then []
       else
         [ ("histograms",
            Json.Object (List.map (family histo_json) s.s_lhistograms)) ])
    @
    if s.s_lspans = [] then []
    else [ ("spans", Json.Object (List.map (family span_json) s.s_lspans)) ]
  in
  Json.Object
    ([ ("counters", ints s.s_counters);
       ("gauges", ints s.s_gauges);
       ("histograms", Json.Object (List.map (fun (n, h) -> (n, histo_json h)) s.s_histograms));
       ("spans", Json.Object (List.map (fun (n, sp) -> (n, span_json sp)) s.s_spans)) ]
    (* Only present when a labelled family exists, so registries that
       never use attribution render exactly as before. *)
    @ if labelled = [] then [] else [ ("labelled", Json.Object labelled) ])

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                         *)
(* ------------------------------------------------------------------ *)

(* Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; instrument names
   come from code but flow through here anyway so a future dynamic
   name cannot emit a malformed exposition. *)
let sanitize_name s =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':') as c -> c | _ -> '_')
    s

(* Label values are arbitrary UTF-8 (shape labels are IRIs, focus
   nodes can be literals with any content) and the exposition quotes
   them: backslash, double quote and newline are the three characters
   the format requires escaping. *)
let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

(* HELP text: escape backslash and newline (quotes are legal there). *)
let escape_help v =
  let b = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let pp_text ppf s =
  let help_of name = List.assoc_opt name s.s_help in
  (* [header raw exposed kind] prints the optional # HELP (keyed by the
     instrument's registry name) and # TYPE lines for the exposed
     (sanitized, possibly suffixed) metric name. *)
  let header raw exposed kind =
    (match help_of raw with
    | Some h -> Format.fprintf ppf "# HELP shex_%s %s@." exposed (escape_help h)
    | None -> ());
    Format.fprintf ppf "# TYPE shex_%s %s@." exposed kind
  in
  let metric kind name v =
    let m = sanitize_name name in
    header name m kind;
    Format.fprintf ppf "shex_%s %d@." m v
  in
  (* Counters and gauges interleave in one sorted sequence so the
     exposition order is independent of instrument kind. *)
  let ints =
    List.sort
      (fun (a, _, _) (b, _, _) -> String.compare a b)
      (List.map (fun (n, v) -> (n, "counter", v)) s.s_counters
      @ List.map (fun (n, v) -> (n, "gauge", v)) s.s_gauges)
  in
  List.iter (fun (name, kind, v) -> metric kind name v) ints;
  List.iter
    (fun (name, d) ->
      let m = sanitize_name name and key = sanitize_name d.l_key in
      header name m "counter";
      List.iter
        (fun (label, v) ->
          Format.fprintf ppf "shex_%s{%s=\"%s\"} %d@." m key
            (escape_label label) v)
        d.l_cells)
    s.s_lcounters;
  let histo_lines m labels h =
    let cumulative = ref 0 in
    List.iter
      (fun (le, n) ->
        cumulative := !cumulative + n;
        Format.fprintf ppf "shex_%s_bucket{%sle=\"%d\"} %d@." m labels le
          !cumulative)
      h.h_buckets;
    Format.fprintf ppf "shex_%s_bucket{%sle=\"+Inf\"} %d@." m labels h.h_count;
    (match labels with
    | "" ->
        Format.fprintf ppf "shex_%s_sum %d@." m h.h_sum;
        Format.fprintf ppf "shex_%s_count %d@." m h.h_count
    | _ ->
        let l = String.sub labels 0 (String.length labels - 1) in
        Format.fprintf ppf "shex_%s_sum{%s} %d@." m l h.h_sum;
        Format.fprintf ppf "shex_%s_count{%s} %d@." m l h.h_count)
  in
  List.iter
    (fun (name, h) ->
      let m = sanitize_name name in
      header name m "histogram";
      histo_lines m "" h)
    s.s_histograms;
  List.iter
    (fun (name, d) ->
      let m = sanitize_name name and key = sanitize_name d.l_key in
      header name m "histogram";
      List.iter
        (fun (label, h) ->
          histo_lines m
            (Format.sprintf "%s=\"%s\"," key (escape_label label))
            h)
        d.l_cells)
    s.s_lhistograms;
  List.iter
    (fun (name, (count, total)) ->
      let m = sanitize_name name in
      header name (m ^ "_seconds") "summary";
      Format.fprintf ppf "shex_%s_seconds_count %d@." m count;
      Format.fprintf ppf "shex_%s_seconds_sum %.6f@." m total)
    s.s_spans;
  List.iter
    (fun (name, d) ->
      let m = sanitize_name name and key = sanitize_name d.l_key in
      header name (m ^ "_seconds") "summary";
      List.iter
        (fun (label, (count, total)) ->
          let l = Format.sprintf "%s=\"%s\"" key (escape_label label) in
          Format.fprintf ppf "shex_%s_seconds_count{%s} %d@." m l count;
          Format.fprintf ppf "shex_%s_seconds_sum{%s} %.6f@." m l total)
        d.l_cells)
    s.s_lspans

(* ------------------------------------------------------------------ *)
(* Sliding-window SLIs                                                *)
(* ------------------------------------------------------------------ *)

(* A ring of periodically sampled snapshots.  The window never touches
   the live registry: the owner (the serve daemon's tick) snapshots and
   [observe]s; [summary] then diffs the oldest retained sample against
   the newest, turning cumulative-since-boot counters into rolling
   rates and cumulative histograms into windowed quantile estimates.
   With [slots] samples at one [interval_s] apart the window covers
   roughly [slots * interval_s] seconds of history. *)
module Window = struct
  type t = {
    w_interval : float;
    ring : (float * snapshot) option array;
    mutable next : int;  (* next write slot *)
    mutable count : int;  (* samples retained, <= Array.length ring *)
  }

  let default_slots = 60

  let create ?(slots = default_slots) ~interval_s () =
    { w_interval = interval_s;
      ring = Array.make (max 2 slots) None;
      next = 0;
      count = 0 }

  let slots w = Array.length w.ring
  let interval_s w = w.w_interval
  let samples w = w.count

  let observe w ~now:t snap =
    w.ring.(w.next) <- Some (t, snap);
    w.next <- (w.next + 1) mod Array.length w.ring;
    if w.count < Array.length w.ring then w.count <- w.count + 1

  (* Nearest-rank quantile over log2 buckets: the smallest bucket bound
     [le] whose cumulative count reaches rank ceil(p * total).  Bucket
     counts are exact per-bucket observation counts, so the chosen
     bucket is exactly the one holding the rank-th smallest
     observation — the estimate errs only within that bucket, i.e. the
     true quantile q satisfies le/2 < q <= le (q <= 1 for le = 1).
     [buckets] must be ascending (le, count) pairs as in snapshots. *)
  let quantile buckets ~total p =
    if total <= 0 then 0
    else
      let rank =
        let r = int_of_float (ceil (p *. float_of_int total)) in
        if r < 1 then 1 else if r > total then total else r
      in
      let rec go cum = function
        | [] -> 0
        | [ (le, _) ] -> le
        | (le, n) :: rest -> if cum + n >= rank then le else go (cum + n) rest
      in
      go 0 buckets

  type quantiles = { q_count : int; q_p50 : int; q_p99 : int }

  type summary = {
    w_seconds : float;  (* wall time the window spans *)
    w_samples : int;
    w_rates : (string * float) list;  (* counter deltas / w_seconds *)
    w_quantiles : (string * quantiles) list;  (* per histogram *)
  }

  let summary w =
    if w.count < 2 then None
    else
      let n = Array.length w.ring in
      let newest = w.ring.((w.next + n - 1) mod n)
      and oldest =
        w.ring.(if w.count = n then w.next else 0)
      in
      match (oldest, newest) with
      | Some (t0, s0), Some (t1, s1) when t1 > t0 ->
          let d = diff ~since:s0 s1 in
          let seconds = t1 -. t0 in
          Some
            { w_seconds = seconds;
              w_samples = w.count;
              w_rates =
                List.map
                  (fun (name, v) -> (name, float_of_int v /. seconds))
                  d.s_counters;
              w_quantiles =
                List.filter_map
                  (fun (name, h) ->
                    if h.h_count <= 0 then None
                    else
                      Some
                        ( name,
                          { q_count = h.h_count;
                            q_p50 = quantile h.h_buckets ~total:h.h_count 0.5;
                            q_p99 = quantile h.h_buckets ~total:h.h_count 0.99
                          } ))
                  d.s_histograms }
      | _ -> None

  let summary_to_json s =
    Json.Object
      [ ("seconds", Json.Number s.w_seconds);
        ("samples", Json.int s.w_samples);
        ( "rates",
          Json.Object
            (List.map (fun (n, r) -> (n, Json.Number r)) s.w_rates) );
        ( "quantiles",
          Json.Object
            (List.map
               (fun (n, q) ->
                 ( n,
                   Json.Object
                     [ ("count", Json.int q.q_count);
                       ("p50", Json.int q.q_p50);
                       ("p99", Json.int q.q_p99) ] ))
               s.w_quantiles) ) ]

  (* Appended after the registry's own exposition: derived gauges only,
     names suffixed so they can never collide with a live instrument
     ([_rate] per second, [_p50]/[_p99] in the histogram's own unit). *)
  let pp_prometheus ppf s =
    let gauge name pp_v =
      let m = sanitize_name name in
      Format.fprintf ppf "# TYPE shex_%s gauge@." m;
      Format.fprintf ppf "shex_%s %t@." m pp_v
    in
    gauge "obs_window_seconds" (fun ppf ->
        Format.fprintf ppf "%.3f" s.w_seconds);
    gauge "obs_window_samples" (fun ppf ->
        Format.fprintf ppf "%d" s.w_samples);
    List.iter
      (fun (name, r) ->
        gauge (name ^ "_rate") (fun ppf -> Format.fprintf ppf "%.6f" r))
      s.w_rates;
    List.iter
      (fun (name, q) ->
        gauge (name ^ "_p50") (fun ppf -> Format.fprintf ppf "%d" q.q_p50);
        gauge (name ^ "_p99") (fun ppf -> Format.fprintf ppf "%d" q.q_p99))
      s.w_quantiles
end

(** Session telemetry: a zero-dependency metrics registry.

    The paper's central empirical claim — “the derivatives algorithm
    behaves much better than the backtracking one” (§8, §10) — is
    stated without tables, so this reproduction generates its own
    evidence.  Every engine (derivatives, backtracking, SORBE
    counting, compiled automata) and the fixpoint solver report their
    work through one registry:

    - {e counters} — monotonic event counts (derivative steps taken,
      backtracking branches explored, …) and {e gauges} — set-valued
      readings (compiled-automaton states materialised, …);
    - {e histograms} — integer distributions over fixed log2 buckets
      (expression sizes before/after simplification);
    - {e spans} — wall-clock timing sections ([Unix.gettimeofday]);
    - an {e event sink} — structured per-step events (the machine
      readable derivative traces behind [--trace-json]).

    The registry is deliberately below [Shex] in the dependency order:
    core engines report into it, it never calls back into them.

    {b Cost when disabled.}  Instruments created from {!disabled} are
    permanently inactive: every operation is a single load-and-branch
    on the instrument's [active] flag (measured in experiment E10).
    Instrumented code should guard any {e argument} computation that
    is itself costly (e.g. an expression-size walk) behind {!enabled}
    or {!Counter.active}. *)

type t
(** A metrics registry.  Not thread-safe; intended to be owned by one
    validation session or one benchmark experiment. *)

val create : unit -> t
(** A fresh, enabled registry. *)

val disabled : t
(** The shared inert registry: instruments created from it never
    record, and {!snapshot} of it is empty.  This is the default
    registry of every {!Shex.Validate.session}. *)

val enabled : t -> bool

(** {1 Instruments}

    All creation functions are get-or-create by name: asking twice for
    the same name returns the same instrument, so independent modules
    can share a metric.  On {!disabled} they return inert instruments
    without registering anything. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit

  val set : t -> int -> unit
  (** For gauges: overwrite the reading. *)

  val value : t -> int

  val active : t -> bool
  (** [false] exactly for instruments of {!disabled} registries — the
      single branch the hot paths test. *)
end

module Histogram : sig
  type t

  val observe : t -> int -> unit
  (** Record one integer observation.  Buckets are fixed powers of
      two: observation [v] lands in the first bucket [le = 2^i] with
      [v <= 2^i] (values above [2^30] land in the overflow bucket). *)

  val count : t -> int
  val sum : t -> int
  val max_value : t -> int
end

module Span : sig
  type t

  val time : t -> (unit -> 'a) -> 'a
  (** Run the thunk, accumulating its wall-clock duration
      ([Unix.gettimeofday]) and bumping the span's run count.  On an
      inactive span this is just the call. *)

  val record : t -> float -> unit
  (** Account one already-measured duration (seconds): adds it to the
      total and bumps the run count.  Negative readings (a clock step)
      clamp to zero.  For callers that hold one measurement and feed
      several spans — timing each with {!time} would stack clock
      calls. *)

  val count : t -> int
  val total : t -> float
end

(** {1 The wall clock}

    {b Caveat.}  All span timing uses the {e wall} clock
    ([Unix.gettimeofday]), which is not monotonic: an NTP step (or a
    VM pause with clock resync) can move it backwards mid-section.
    Every consumer in this library — {!Span.time}, {!Span.record}, the
    slow-check timer in [Shex.Validate] — clamps negative deltas to
    zero, so a backwards step loses that one reading's duration but
    can never corrupt an accumulated total or spuriously trigger (or
    suppress) a slow-check capture with a negative duration. *)

val now : unit -> float
(** The current reading of the (possibly test-injected) wall clock. *)

val set_clock : (unit -> float) option -> unit
(** Override the wall clock every instrument reads — for tests that
    need a deterministic (or deliberately backwards-stepping) clock.
    [None] restores [Unix.gettimeofday].  Global; not for production
    use. *)

val counter : t -> ?help:string -> string -> Counter.t
val gauge : t -> ?help:string -> string -> Counter.t
val histogram : t -> ?help:string -> string -> Histogram.t
val span : t -> ?help:string -> string -> Span.t
(** The [?help] string (first writer wins, ignored on {!disabled})
    becomes the [# HELP] line of {!pp_text}. *)

(** {1 Labelled families}

    One logical metric fanned out over a string label — the
    attribution dimension ([deriv_steps_by_shape{shape="Person"}]).
    A family is get-or-create by name like any instrument; each label
    resolves (get-or-create) to an ordinary cell of the family's
    instrument type, so after resolution the hot path pays exactly the
    plain-instrument cost.  Families merge, reset, diff, snapshot and
    render like everything else: [{key="label"}] Prometheus lines in
    {!pp_text}, a ["labelled"] member in {!to_json} (present only when
    at least one family exists).  On {!disabled}, families hand out
    uncached inert cells and register nothing. *)

type 'a family

val counter_family : t -> ?help:string -> key:string -> string -> Counter.t family
(** Labelled cells are always monotonic counters. *)

val histogram_family : t -> ?help:string -> key:string -> string -> Histogram.t family
val span_family : t -> ?help:string -> key:string -> string -> Span.t family

val labelled : 'a family -> string -> 'a
(** [labelled fam label] is the cell for [label], created on first
    use.  Resolve once per label on hot paths (a hashtable probe);
    the returned cell is then a plain instrument. *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds every instrument of [src] into [into]:
    counters and gauges add their values (a merged gauge reading is
    the sum of the per-domain resource counts), histograms add
    bucket-by-bucket with count/sum added and the max of maxima, and
    spans add run counts and total seconds.  Instruments missing in
    [into] are created, so the merge is lossless.  This is the join
    half of domain-parallel validation: each worker owns a private
    registry (the registry itself is not thread-safe) and the parent
    folds them in after {!Domain.join}.  No-op when either registry
    is disabled.  [src] is left unchanged. *)

val reset : t -> unit
(** Zero every registered instrument in place — counters and gauges to
    0, histograms to empty, spans to no runs — keeping registrations,
    instrument identity and any installed sink.  Instruments already
    resolved by live sessions keep recording into the same cells, so a
    long-running server can reset between requests without rebuilding
    its sessions.  Monotone counters therefore stop leaking across
    requests: after [reset] a {!snapshot} reports only post-reset
    work.  No-op on {!disabled}. *)

(** {1 Structured events}

    The sink receives one {!event} per emission — the derivative
    engines emit one per consumed triple, which is the machine
    readable form of the paper's step-by-step traces (Examples
    11–12).

    Events carry a {!phase} so that a sink can reconstruct a {e span
    tree} (the provenance trace behind [--trace-chrome] and
    [--explain]): {!Span_begin}/{!Span_end} bracket a nested section
    (one [check] span per (node, shape) evaluation), {!Instant} marks
    a point event inside the current section (one [deriv_step] per
    consumed triple, one [nullable_check] at neighbourhood
    exhaustion, fixpoint dependency edges, …).  The registry itself
    does not build the tree — [Shex_explain.Trace] does — so the
    emitting hot paths stay one branch when disabled. *)

type value = Int of int | Float of float | Bool of bool | String of string

type phase = Span_begin | Span_end | Instant

type event = { name : string; phase : phase; fields : (string * value) list }

val instant : string -> (string * value) list -> event
val span_begin : string -> (string * value) list -> event
val span_end : string -> (string * value) list -> event
(** [span_end name fields]'s fields are merged into the matching open
    span by tree-building sinks (e.g. the verdict an evaluation span
    learns only at its end). *)

val set_sink : t -> (event -> unit) option -> unit

val tracing : t -> bool
(** [true] when the registry is enabled {e and} a sink is installed —
    the guard instrumented code tests before building event fields. *)

val set_residuals : t -> bool -> unit
(** Ask tracing instrumentation to attach the {e full residual
    expressions} (rendered, before/after each derivative step) to its
    events, not just their sizes.  Costly — each step then serialises
    two expressions — so it is a separate knob from {!set_sink};
    experiment E11 prices the difference.  No-op on a disabled
    registry. *)

val residuals : t -> bool
(** [true] when {!tracing} and residual capture was requested. *)

val emit : t -> event -> unit
(** Deliver to the sink; a no-op unless {!tracing}. *)

val value_to_json : value -> Json.t

val event_to_json : event -> Json.t
(** [{"event": name, field₁: v₁, …}] with fields in emission order.
    Span events additionally carry ["ph": "B"|"E"] after the name;
    instants stay exactly as before phases existed. *)

(** {1 Snapshots}

    A snapshot is an immutable, deterministically ordered (sorted by
    metric name) copy of the registry — the value behind
    [--metrics], [--engine-stats] and the bench [telemetry] JSON
    objects. *)

type snapshot

val snapshot : t -> snapshot

val is_empty : snapshot -> bool
(** No instruments registered (in particular: any snapshot of
    {!disabled}). *)

val counters : snapshot -> (string * int) list
(** Counters and gauges, sorted by name. *)

val find_counter : snapshot -> string -> int option

val labelled_counter_values : snapshot -> string -> (string * int) list
(** The cells of a labelled counter family, sorted by label; [[]] when
    the family does not exist. *)

val labelled_span_values : snapshot -> string -> (string * (int * float)) list
(** The cells of a labelled span family as [(label, (count, seconds))],
    sorted by label; [[]] when the family does not exist. *)

val diff : since:snapshot -> snapshot -> snapshot
(** [diff ~since now] is the per-window delta between two snapshots of
    the same registry — what a long-running server reports per
    request without resetting.  Monotone readings (counters, histogram
    counts/sums/buckets, span counts and seconds) subtract member-wise;
    a reading below its [since] baseline means the registry was
    {!reset} inside the window, and the diff then reports the [now]
    value unchanged (never a negative); gauges and histogram
    maxima are level readings and keep their [now] values; instruments
    that first appear in [now] pass through unchanged.  Labelled
    families diff label-by-label under the same rules (fresh labels
    pass through; a per-label reset degrades to the [now] reading). *)

val to_json : snapshot -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...},
    "spans": {...}}], every object sorted by key.  Histograms render
    as [{"count", "sum", "max", "buckets"}] with non-empty buckets
    keyed by their [le] bound; spans as [{"count", "seconds"}].  When
    at least one labelled family exists a trailing ["labelled"] member
    nests them as [{"counters"|"histograms"|"spans":
    {family: {"key": label-key, "cells": {label: reading}}}}]. *)

(** {1 Sliding-window SLIs}

    A bounded ring of periodically sampled snapshots, from which
    rolling {e rates} (counter deltas over the window's wall time) and
    windowed {e latency quantiles} (estimated from histogram-bucket
    diffs) are derived — the service-level indicators a scraper reads
    from a long-running daemon whose raw counters are all
    cumulative-since-boot.  The window owns nothing live: its owner
    samples {!snapshot} on a timer and calls {!Window.observe}. *)

module Window : sig
  type t

  val default_slots : int
  (** 60 — ten minutes of history at the default 10 s interval. *)

  val create : ?slots:int -> interval_s:float -> unit -> t
  (** A ring of [slots] samples (minimum 2).  [interval_s] is the
      sampling period the owner intends; the window only records it
      (for reporting) — the owner drives the actual sampling. *)

  val slots : t -> int
  val interval_s : t -> float

  val samples : t -> int
  (** Samples currently retained (saturates at [slots]). *)

  val observe : t -> now:float -> snapshot -> unit
  (** Push one sample, evicting the oldest when full. *)

  val quantile : (int * int) list -> total:int -> float -> int
  (** [quantile buckets ~total p] — nearest-rank p-quantile estimate
      over ascending log2 [(le, count)] buckets: the bound [le] of the
      bucket holding the rank-⌈p·total⌉ observation.  The estimate is
      exact up to the bucket: the true quantile [q] satisfies
      [le/2 < q <= le] (or [q <= 1] when [le = 1]) — a factor-of-two
      bound, the documented resolution of log2 histograms.  [0] when
      [total <= 0]. *)

  type quantiles = { q_count : int; q_p50 : int; q_p99 : int }

  type summary = {
    w_seconds : float;  (** wall time between oldest and newest sample *)
    w_samples : int;
    w_rates : (string * float) list;
        (** per-second rate of every monotone counter over the window *)
    w_quantiles : (string * quantiles) list;
        (** windowed p50/p99 {!quantile} estimates of every histogram
            that recorded observations inside the window *)
  }

  val summary : t -> summary option
  (** [None] until two samples with distinct timestamps exist. *)

  val summary_to_json : summary -> Json.t

  val pp_prometheus : Format.formatter -> summary -> unit
  (** Derived gauges in exposition format, intended to be appended
      after {!pp_text}: [shex_obs_window_seconds]/[_samples], one
      [shex_<counter>_rate] per counter and [shex_<histogram>_p50]/
      [_p99] per active histogram.  The suffixes keep the names
      disjoint from live instruments. *)
end

val pp_text : Format.formatter -> snapshot -> unit
(** Prometheus-style text exposition: [# HELP] (when registered) and
    [# TYPE] comment lines, [shex_]-prefixed metric names, cumulative
    [_bucket{le="..."}] lines for histograms, [_sum]/[_count] for
    histograms and spans; labelled families render one line per label
    as [shex_name{key="label"} v].  Metric and label-key names are
    sanitized to the Prometheus charset ([[a-zA-Z0-9_:]], other bytes
    become [_]); label values escape backslash, double quote and
    newline, so an arbitrary shape label or focus-node literal cannot
    produce a malformed exposition. *)

(** Exporters for recorded provenance traces.

    Two interchange formats, both built from the {!Trace} span tree:

    - {b Chrome trace-event JSON} ({!chrome_json}) — the
      [{"traceEvents": […]}] object format loadable in Perfetto /
      [chrome://tracing].  Each span becomes a complete event
      ([ph: "X"] with [ts]/[dur] in microseconds); each instant a
      thread-scoped instant event ([ph: "i"], [s: "t"]).  Event
      fields travel in [args].
    - {b Folded flamegraph stacks} ({!folded}) — one
      [frame;frame;frame value] line per distinct span stack, value =
      {e self} time in microseconds, the input format of
      [flamegraph.pl] and speedscope.  [check] spans are labelled
      [check:<node>@<shape>] so each (node, shape) evaluation gets its
      own frame; instants contribute no frames. *)

val chrome_json : ?pid:int -> ?tid:int -> Trace.t -> Json.t
(** Serialise the whole recorded forest ([pid]/[tid] default 1).
    Calls {!Trace.roots}, which finishes the trace first. *)

val folded : Trace.t -> string
(** Folded stack lines in first-seen order, newline-terminated; empty
    string for a trace with no spans. *)

type span = {
  name : string;
  mutable args : (string * Telemetry.value) list;
  ts : int;
  mutable dur : int;
  is_span : bool;
  mutable rev_children : span list;
}

type t = {
  clock : unit -> float;
  epoch : float;
  mutable rev_roots : span list;
  mutable stack : span list;
  mutable events : int;
}

let create ?clock () =
  let clock = Option.value clock ~default:Unix.gettimeofday in
  { clock; epoch = clock (); rev_roots = []; stack = []; events = 0 }

let now t = int_of_float ((t.clock () -. t.epoch) *. 1e6)

let attach t span =
  match t.stack with
  | parent :: _ -> parent.rev_children <- span :: parent.rev_children
  | [] -> t.rev_roots <- span :: t.rev_roots

(* Close the top of the stack at time [ts], merging any extra
   [fields] the end event carried (e.g. the verdict a check span only
   learns at its end). *)
let close_top t ts fields =
  match t.stack with
  | [] -> ()
  | span :: rest ->
      t.stack <- rest;
      span.dur <- max 0 (ts - span.ts);
      let fresh =
        List.filter (fun (k, _) -> not (List.mem_assoc k span.args)) fields
      in
      span.args <- span.args @ fresh;
      attach t span

let record t (ev : Telemetry.event) =
  t.events <- t.events + 1;
  match ev.phase with
  | Telemetry.Span_begin ->
      let span =
        { name = ev.name; args = ev.fields; ts = now t; dur = 0;
          is_span = true; rev_children = [] }
      in
      t.stack <- span :: t.stack
  | Telemetry.Span_end ->
      (* An end whose name doesn't match the open span means an
         abandoned section (an exception unwound past its end event):
         close the stragglers so the tree stays well formed. *)
      let ts = now t in
      let rec unwind () =
        match t.stack with
        | [] -> ()
        | span :: _ when String.equal span.name ev.name ->
            close_top t ts ev.fields
        | _ ->
            close_top t ts [];
            unwind ()
      in
      unwind ()
  | Telemetry.Instant ->
      let span =
        { name = ev.name; args = ev.fields; ts = now t; dur = 0;
          is_span = false; rev_children = [] }
      in
      attach t span

let sink t = record t

let finish t =
  let ts = now t in
  while t.stack <> [] do
    close_top t ts []
  done

let roots t =
  finish t;
  List.rev t.rev_roots

let children span = List.rev span.rev_children
let events t = t.events

let arg span key = List.assoc_opt key span.args

let string_arg span key =
  match arg span key with Some (Telemetry.String s) -> Some s | _ -> None

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON                                            *)
(* ------------------------------------------------------------------ *)

let args_json args =
  Json.Object (List.map (fun (k, v) -> (k, Telemetry.value_to_json v)) args)

let chrome_events ?(pid = 1) ?(tid = 1) spans =
  let rec emit acc (s : Trace.span) =
    let common =
      [ ("name", Json.String s.Trace.name);
        ("ts", Json.int s.Trace.ts);
        ("pid", Json.int pid);
        ("tid", Json.int tid) ]
    in
    let ev =
      if s.Trace.is_span then
        Json.Object
          (("ph", Json.String "X")
          :: common
          @ [ ("dur", Json.int s.Trace.dur); ("args", args_json s.Trace.args) ]
          )
      else
        Json.Object
          (("ph", Json.String "i")
          :: common
          @ [ ("s", Json.String "t"); ("args", args_json s.Trace.args) ])
    in
    List.fold_left emit (ev :: acc) (Trace.children s)
  in
  List.rev (List.fold_left emit [] spans)

let chrome_json ?pid ?tid t =
  Json.Object
    [ ("traceEvents", Json.Array (chrome_events ?pid ?tid (Trace.roots t)));
      ("displayTimeUnit", Json.String "ms") ]

(* ------------------------------------------------------------------ *)
(* Folded flamegraph stacks                                           *)
(* ------------------------------------------------------------------ *)

(* One frame per span.  [check] spans label themselves with the focus
   node and shape so sibling checks get distinct frames.  Frame
   separators (';') and the count separator (' ') may not appear
   inside a frame. *)
let frame (s : Trace.span) =
  let base =
    match (Trace.string_arg s "node", Trace.string_arg s "shape") with
    | Some n, Some l -> Printf.sprintf "%s:%s@%s" s.Trace.name n l
    | Some n, None -> Printf.sprintf "%s:%s" s.Trace.name n
    | None, _ -> s.Trace.name
  in
  String.map (function ' ' | ';' -> '_' | c -> c) base

let folded t =
  (* stack -> accumulated self-time, in first-seen order *)
  let totals : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let add stack self =
    if not (Hashtbl.mem totals stack) then order := stack :: !order;
    Hashtbl.replace totals stack
      (self + Option.value (Hashtbl.find_opt totals stack) ~default:0)
  in
  let rec walk prefix (s : Trace.span) =
    if s.Trace.is_span then begin
      let stack =
        match prefix with "" -> frame s | p -> p ^ ";" ^ frame s
      in
      let child_spans =
        List.filter (fun (c : Trace.span) -> c.Trace.is_span)
          (Trace.children s)
      in
      let child_time =
        List.fold_left (fun acc (c : Trace.span) -> acc + c.Trace.dur) 0
          child_spans
      in
      add stack (max 0 (s.Trace.dur - child_time));
      List.iter (walk stack) child_spans
    end
  in
  List.iter (walk "") (Trace.roots t);
  let buf = Buffer.create 256 in
  List.iter
    (fun stack ->
      Buffer.add_string buf stack;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int (Hashtbl.find totals stack));
      Buffer.add_char buf '\n')
    (List.rev !order);
  Buffer.contents buf

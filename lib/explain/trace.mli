(** The provenance trace tree: a span-tree recorder for telemetry
    events.

    {!Telemetry} deliberately keeps its event sink flat — a function
    per event, one branch when disabled.  This module is the sink that
    reconstructs the structure: [check] spans ({!Telemetry.span_begin}
    / {!Telemetry.span_end}) nest by a stack discipline, and instants
    ([deriv_step], [nullable_check], [fixpoint_dep], …) attach to the
    innermost open span.  The result is one tree per validation run —
    the paper's walk tables with wall-clock timing — which
    {!Export} serialises to Chrome trace-event JSON and folded
    flamegraph stacks.

    Timestamps are microseconds since the recorder's creation.  The
    clock is injectable so tests can record deterministic trees. *)

type span = {
  name : string;
  mutable args : (string * Telemetry.value) list;
      (** begin-event fields, with any {e new} end-event fields
          appended on close (e.g. a check span's verdict) *)
  ts : int;  (** start time, µs since the recorder epoch *)
  mutable dur : int;  (** duration in µs; [0] for instants *)
  is_span : bool;  (** [false] for instant events *)
  mutable rev_children : span list;  (** use {!children} *)
}

type t

val create : ?clock:(unit -> float) -> unit -> t
(** A fresh recorder.  [clock] (default [Unix.gettimeofday]) is read
    once per event; inject a counter for deterministic tests. *)

val sink : t -> Telemetry.event -> unit
(** The function to install with {!Telemetry.set_sink} (possibly
    composed with other sinks).  [Span_begin] opens a nested section,
    [Span_end] closes the matching section — closing any abandoned
    inner sections first, so exceptional unwinding cannot corrupt the
    tree — and merges its fresh fields into the span's args; [Instant]
    attaches a zero-duration child to the innermost open section. *)

val finish : t -> unit
(** Close any still-open spans at the current time (e.g. after an
    exception).  Idempotent; {!roots} calls it automatically. *)

val roots : t -> span list
(** The completed trace forest, in emission order. *)

val children : span -> span list
(** A span's children in emission order. *)

val events : t -> int
(** Events delivered so far (spans count twice: begin and end). *)

val arg : span -> string -> Telemetry.value option
val string_arg : span -> string -> string option

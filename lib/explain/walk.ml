open Shex

let pp_verdict ppf (outcome : Validate.outcome) =
  if outcome.Validate.ok then Format.pp_print_string ppf "PASS"
  else
    match outcome.Validate.explain with
    | Some ex -> Format.fprintf ppf "FAIL: %a" Explain.pp ex
    | None -> Format.pp_print_string ppf "FAIL"

let pp_check ppf ~session n l =
  let schema = Validate.schema session in
  let graph = Validate.graph session in
  Format.fprintf ppf "@[<v>check %a@@%a@," Rdf.Term.pp n Label.pp l;
  (match Schema.find_shape schema l with
  | None -> ()
  | Some { Schema.focus = Some vo; _ } when not (Value_set.obj_mem vo n) ->
      Format.fprintf ppf "  node constraint %a refuses the focus node@,"
        Value_set.pp_obj vo
  | Some { Schema.expr = e; _ } ->
      (* Replay the derivative walk with the session's settled
         verdicts answering the shape references — the table form of
         Examples 8-12. *)
      let check_ref l' o = Validate.check_bool session o l' in
      let trace = Deriv.matches_trace ~check_ref n graph e in
      Format.fprintf ppf "  @[<v>%a@]@," Deriv.pp_trace trace);
  let outcome = Validate.check session n l in
  Format.fprintf ppf "  %a@]" pp_verdict outcome

let pp_report ppf ~session associations =
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun i (n, l) ->
      if i > 0 then Format.pp_print_cut ppf ();
      pp_check ppf ~session n l)
    associations;
  Format.pp_close_box ppf ()

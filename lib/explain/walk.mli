(** The [--explain] mode: pretty-print the derivative walk behind a
    verdict, in the style of the paper's Example 8–12 tables.

    For each (node, shape) association the walk replays
    {!Shex.Deriv.matches_trace} against the session's settled
    reference verdicts and renders

    {v
    check <node>@<Shape>
      e ≃ {t₁, t₂, …}
      ⇔ ∂t₁(e) ≃ {t₂, …}
      ⇔ …
      ⇔ ν(e') ⇔ true
      PASS
    v}

    with, on failure, the structured blame set
    ({!Shex.Explain.to_string}) on the verdict line. *)

val pp_check :
  Format.formatter ->
  session:Shex.Validate.session ->
  Rdf.Term.t ->
  Shex.Label.t ->
  unit

val pp_report :
  Format.formatter ->
  session:Shex.Validate.session ->
  (Rdf.Term.t * Shex.Label.t) list ->
  unit
(** One {!pp_check} block per association, blank-line free, in
    order. *)

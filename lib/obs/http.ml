(* A deliberately minimal HTTP/1.1 server for the scrape endpoints:
   bind once, then let the daemon's select loop call [serve_ready]
   whenever the listening socket is readable.  Each connection carries
   one GET, gets one Connection: close response, and is closed — the
   request pattern of a Prometheus scraper or a health probe, which is
   all this surface exists for.  No keep-alive, no pipelining, no
   request bodies; a client that sends anything slower than one small
   request hits the per-connection receive timeout rather than
   stalling the daemon. *)

type response = { status : int; content_type : string; body : string }

let text ?(status = 200) body =
  { status; content_type = "text/plain; charset=utf-8"; body }

let json ?(status = 200) j =
  { status;
    content_type = "application/json";
    body = Json.to_string ~minify:true j ^ "\n" }

type t = {
  sock : Unix.file_descr;
  port : int;
  read_timeout : float;
}

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Internal Server Error"

let create ?(backlog = 16) ?(read_timeout = 2.0) ~port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     (* Loopback only: the scrape surface carries operational data and
        has no authentication — exposing it beyond the host is a
        deployment decision for a reverse proxy, not a default. *)
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen sock backlog
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p  (* resolves port 0 to the kernel's pick *)
    | Unix.ADDR_UNIX _ -> port
  in
  { sock; port; read_timeout }

let port t = t.port
let fd t = t.sock

let close t = try Unix.close t.sock with Unix.Unix_error _ -> ()

(* Read until the end of the request head (CRLFCRLF) or a size/time
   bound.  GETs have no body, so the head is the whole request. *)
let read_request fd timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0. || Buffer.length buf > 8192 then None
    else
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> None
      | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> if Buffer.length buf > 0 then Some (Buffer.contents buf) else None
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              let s = Buffer.contents buf in
              (* A bare LF-terminated request line is enough: some
                 probes (printf | nc) skip the CR. *)
              let have_head sep =
                let sl = String.length sep and l = String.length s in
                let rec scan i =
                  i + sl <= l && (String.sub s i sl = sep || scan (i + 1))
                in
                scan 0
              in
              if have_head "\r\n\r\n" || have_head "\n\n" then Some s
              else go ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) ->
              go ()
          | exception Unix.Unix_error (_, _, _) -> None)
  in
  go ()

(* "GET /path HTTP/1.1" -> `GET "/path"; query strings are stripped
   (the endpoints take no parameters today). *)
let parse_request_line head =
  let line =
    match String.index_opt head '\n' with
    | Some i -> String.trim (String.sub head 0 i)
    | None -> String.trim head
  in
  match String.split_on_char ' ' line with
  | meth :: target :: _ ->
      let path =
        match String.index_opt target '?' with
        | Some i -> String.sub target 0 i
        | None -> target
      in
      Some (meth, path)
  | _ -> None

let write_response fd r =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n"
      r.status (reason r.status) r.content_type (String.length r.body)
  in
  let payload = head ^ r.body in
  let len = String.length payload in
  let bytes = Bytes.of_string payload in
  let rec go off =
    if off < len then
      match Unix.write fd bytes off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  (* EPIPE/ECONNRESET: the scraper hung up mid-response.  Its loss. *)
  try go 0 with Unix.Unix_error _ -> ()

(* A one-shot GET client for [http://HOST:PORT/path] URLs — just
   enough to let the cram tests (and an operator without curl) poke
   the scrape surface with the binary they already have. *)
let get url =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match
    let rest =
      let prefix = "http://" in
      let pl = String.length prefix in
      if String.length url > pl && String.sub url 0 pl = prefix then
        Some (String.sub url pl (String.length url - pl))
      else None
    in
    match rest with
    | None -> None
    | Some rest ->
        let authority, path =
          match String.index_opt rest '/' with
          | Some i ->
              ( String.sub rest 0 i,
                String.sub rest i (String.length rest - i) )
          | None -> (rest, "/")
        in
        let host, port =
          match String.index_opt authority ':' with
          | Some i -> (
              let h = String.sub authority 0 i in
              let p = String.sub authority (i + 1)
                        (String.length authority - i - 1) in
              match int_of_string_opt p with
              | Some p -> ((if h = "" then "127.0.0.1" else h), Some p)
              | None -> (h, None))
          | None -> (authority, Some 80)
        in
        Option.map (fun p -> (host, p, path)) port
  with
  | None -> fail "bad URL %S (expected http://HOST:PORT/path)" url
  | Some (host, port, path) -> (
      match
        let addr =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } -> raise Not_found
            | h -> h.Unix.h_addr_list.(0))
        in
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () ->
            try Unix.close sock with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.connect sock (Unix.ADDR_INET (addr, port));
            let req =
              Printf.sprintf
                "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n"
                path host
            in
            let bytes = Bytes.of_string req in
            let rec send off =
              if off < Bytes.length bytes then
                send (off + Unix.write sock bytes off (Bytes.length bytes - off))
            in
            send 0;
            let buf = Buffer.create 4096 in
            let chunk = Bytes.create 4096 in
            let rec recv () =
              match Unix.read sock chunk 0 (Bytes.length chunk) with
              | 0 -> ()
              | n ->
                  Buffer.add_subbytes buf chunk 0 n;
                  recv ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
            in
            recv ();
            Buffer.contents buf)
      with
      | exception Unix.Unix_error (e, _, _) ->
          fail "%s: %s" url (Unix.error_message e)
      | exception Not_found -> fail "%s: unknown host" url
      | raw -> (
          let head_end =
            let rec scan i =
              if i + 4 > String.length raw then None
              else if String.sub raw i 4 = "\r\n\r\n" then Some (i + 4)
              else scan (i + 1)
            in
            scan 0
          in
          match head_end with
          | None -> fail "%s: truncated response" url
          | Some body_at -> (
              let status_line =
                match String.index_opt raw '\r' with
                | Some i -> String.sub raw 0 i
                | None -> raw
              in
              match String.split_on_char ' ' status_line with
              | _http :: code :: _ when int_of_string_opt code <> None ->
                  Ok
                    ( Option.get (int_of_string_opt code),
                      String.sub raw body_at (String.length raw - body_at) )
              | _ -> fail "%s: malformed status line %S" url status_line)))

let serve_ready t route =
  match Unix.accept t.sock with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> ()
  | client, _addr ->
      Fun.protect
        ~finally:(fun () ->
          try Unix.close client with Unix.Unix_error _ -> ())
        (fun () ->
          match read_request client t.read_timeout with
          | None -> write_response client (text ~status:400 "bad request\n")
          | Some head -> (
              match parse_request_line head with
              | None ->
                  write_response client (text ~status:400 "bad request\n")
              | Some (("GET" | "HEAD"), path) ->
                  write_response client (route path)
              | Some _ ->
                  write_response client
                    (text ~status:405 "only GET is served here\n")))

(* Offline analysis of a flight-recorder journal: re-derive the
   rate/latency time series the live window would have shown, from the
   cumulative per-tick telemetry snapshots on disk.  The journal's
   tick records are cumulative-since-boot precisely so that this works
   across a rotation boundary — diffing consecutive ticks needs no
   per-generation baseline, only record order. *)

type window_row = {
  r_ts : float;
  r_seconds : float;
  r_requests : float;
  r_errors : float;
  r_rates : (string * float) list;
  r_lat : Telemetry.Window.quantiles option;
}

type report = {
  files : string list;
  lines : int;
  skipped : int;
  ticks : int;
  events : (string * int) list;
  started : float option;
  shutdown : string option;
  windows : window_row list;
}

(* One journal line.  Anything that is not a JSON object with a "kind"
   is counted as skipped rather than failing the replay: a torn final
   line after a crash or power cut is an expected artifact. *)
let parse_line line =
  let line = String.trim line in
  if line = "" then None
  else
    match Json.of_string line with
    | Ok (Json.Object _ as j) when Json.find "kind" j <> None -> Some j
    | Ok _ | Error _ -> None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc lines skipped =
        match input_line ic with
        | exception End_of_file -> (List.rev acc, lines, skipped)
        | line -> (
            match parse_line line with
            | Some j -> go (j :: acc) (lines + 1) skipped
            | None ->
                let skipped =
                  if String.trim line = "" then skipped else skipped + 1
                in
                go acc (lines + 1) skipped)
      in
      go [] 0 0)

let find_float key j =
  match Json.find key j with Some (Json.Number f) -> Some f | _ -> None

let members = function Json.Object kvs -> kvs | _ -> []

(* Cumulative counter readings of one tick: counters and gauges both
   appear in the snapshot JSON; rates only make sense for monotone
   counters, so gauges are excluded. *)
let tick_counters tick =
  match Json.find "telemetry" tick with
  | None -> []
  | Some tele ->
      List.filter_map
        (fun (name, v) ->
          match Json.as_int v with Some n -> Some (name, n) | None -> None)
        (match Json.find "counters" tele with Some o -> members o | None -> [])

(* The request-latency histogram of one tick, as (count, ascending
   (le, bucket-count) list) — the same shape Telemetry snapshots use,
   reconstructed from the journal JSON. *)
let tick_latency tick =
  let ( let* ) = Option.bind in
  let* tele = Json.find "telemetry" tick in
  let* hists = Json.find "histograms" tele in
  let* h = Json.find "serve_latency_us" hists in
  let* count = Json.find_int "count" h in
  let buckets =
    (match Json.find "buckets" h with Some o -> members o | None -> [])
    |> List.filter_map (fun (le, v) ->
           match (int_of_string_opt le, Json.as_int v) with
           | Some le, Some n -> Some (le, n)
           | _ -> None)
    |> List.sort compare
  in
  Some (count, buckets)

let sub_clamped now prev = if now >= prev then now - prev else now

(* Diff two consecutive ticks into one window row.  A cumulative
   reading below its predecessor means the daemon restarted between
   the ticks (same journal file, new process) — the delta degrades to
   the newer cumulative reading, mirroring [Telemetry.diff]. *)
let diff_ticks prev now =
  let t0 = Option.value ~default:0. (find_float "ts" prev) in
  let t1 = Option.value ~default:t0 (find_float "ts" now) in
  let dt = t1 -. t0 in
  if dt <= 0. then None
  else
    let prev_counters = tick_counters prev in
    let rates =
      List.map
        (fun (name, v1) ->
          let v0 =
            Option.value ~default:0 (List.assoc_opt name prev_counters)
          in
          (name, float_of_int (sub_clamped v1 v0) /. dt))
        (tick_counters now)
    in
    let rate name = Option.value ~default:0. (List.assoc_opt name rates) in
    let lat =
      match (tick_latency prev, tick_latency now) with
      | Some (c0, b0), Some (c1, b1) ->
          let count = sub_clamped c1 c0 in
          if count <= 0 then None
          else
            let base le =
              Option.value ~default:0 (List.assoc_opt le b0)
            in
            let buckets =
              if c1 < c0 then b1
              else
                List.filter_map
                  (fun (le, n) ->
                    let d = n - base le in
                    if d > 0 then Some (le, d) else None)
                  b1
            in
            Some
              { Telemetry.Window.q_count = count;
                q_p50 = Telemetry.Window.quantile buckets ~total:count 0.5;
                q_p99 = Telemetry.Window.quantile buckets ~total:count 0.99
              }
      | None, Some (c1, b1) when c1 > 0 ->
          Some
            { Telemetry.Window.q_count = c1;
              q_p50 = Telemetry.Window.quantile b1 ~total:c1 0.5;
              q_p99 = Telemetry.Window.quantile b1 ~total:c1 0.99
            }
      | _ -> None
    in
    Some
      { r_ts = t1;
        r_seconds = dt;
        r_requests = rate "serve_requests";
        r_errors = rate "serve_errors";
        r_rates = rates;
        r_lat = lat
      }

let analyze path =
  let rotated = Journal.rotated_path path in
  let files =
    (if Sys.file_exists rotated then [ rotated ] else []) @ [ path ]
  in
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "journal not found: %s" path)
  else
    let records, lines, skipped =
      List.fold_left
        (fun (acc, lines, skipped) f ->
          let r, l, s = read_file f in
          (acc @ r, lines + l, skipped + s))
        ([], 0, 0) files
    in
    let kind j = Option.value ~default:"?" (Json.find_string "kind" j) in
    let ticks = List.filter (fun j -> kind j = "tick") records in
    let events =
      List.fold_left
        (fun acc j ->
          let k = kind j in
          if k = "tick" then acc
          else
            match List.assoc_opt k acc with
            | Some n -> (k, n + 1) :: List.remove_assoc k acc
            | None -> (k, 1) :: acc)
        [] records
      |> List.rev
    in
    let started =
      List.find_map
        (fun j -> if kind j = "start" then find_float "ts" j else None)
        records
    in
    let shutdown =
      (* Last shutdown record wins: a restarted daemon appends to the
         same journal, and the question is how the final run ended. *)
      List.fold_left
        (fun acc j ->
          if kind j = "shutdown" then
            match Json.find_string "reason" j with Some r -> Some r | None -> acc
          else acc)
        None records
    in
    let windows =
      let rec go acc = function
        | a :: (b :: _ as rest) -> (
            match diff_ticks a b with
            | Some row -> go (row :: acc) rest
            | None -> go acc rest)
        | _ -> List.rev acc
      in
      go [] ticks
    in
    Ok
      { files;
        lines;
        skipped;
        ticks = List.length ticks;
        events;
        started;
        shutdown;
        windows
      }

let row_to_json r =
  Json.Object
    ([ ("ts", Json.Number r.r_ts);
       ("seconds", Json.Number r.r_seconds);
       ("requests_per_s", Json.Number r.r_requests);
       ("errors_per_s", Json.Number r.r_errors);
       ("rates", Json.Object (List.map (fun (n, v) -> (n, Json.Number v)) r.r_rates))
     ]
    @
    match r.r_lat with
    | None -> []
    | Some q ->
        [ ( "latency_us",
            Json.Object
              [ ("count", Json.int q.Telemetry.Window.q_count);
                ("p50", Json.int q.q_p50);
                ("p99", Json.int q.q_p99)
              ] )
        ])

let to_json r =
  Json.Object
    [ ("files", Json.Array (List.map (fun f -> Json.String f) r.files));
      ("lines", Json.int r.lines);
      ("skipped", Json.int r.skipped);
      ("ticks", Json.int r.ticks);
      ( "events",
        Json.Object (List.map (fun (k, n) -> (k, Json.int n)) r.events) );
      ( "started",
        match r.started with Some t -> Json.Number t | None -> Json.Null );
      ( "shutdown",
        match r.shutdown with Some s -> Json.String s | None -> Json.Null );
      ("windows", Json.Array (List.map row_to_json r.windows))
    ]

let pp ppf r =
  Format.fprintf ppf "journal: %s@." (String.concat " + " r.files);
  Format.fprintf ppf "records: %d lines, %d ticks, %d skipped@." r.lines
    r.ticks r.skipped;
  List.iter (fun (k, n) -> Format.fprintf ppf "events: %s x%d@." k n) r.events;
  (match r.shutdown with
  | Some reason -> Format.fprintf ppf "shutdown: %s@." reason
  | None -> Format.fprintf ppf "shutdown: (none recorded)@.");
  if r.windows = [] then
    Format.fprintf ppf "windows: none (need two ticks)@."
  else begin
    Format.fprintf ppf "@.%10s %8s %9s %9s %8s %8s %8s@." "t+s" "dt_s"
      "req/s" "err/s" "checks" "p50_us" "p99_us";
    let t_start =
      match (r.started, r.windows) with
      | Some t, _ -> t
      | None, w :: _ -> w.r_ts -. w.r_seconds
      | None, [] -> 0.
    in
    List.iter
      (fun w ->
        let lat_cells =
          match w.r_lat with
          | Some q ->
              Printf.sprintf "%8d %8d %8d" q.Telemetry.Window.q_count q.q_p50
                q.q_p99
          | None -> Printf.sprintf "%8s %8s %8s" "-" "-" "-"
        in
        Format.fprintf ppf "%10.1f %8.2f %9.1f %9.1f %s@." (w.r_ts -. t_start)
          w.r_seconds w.r_requests w.r_errors lat_cells)
      r.windows
  end

(* The flight recorder's writer: one minified JSON record per line,
   appended to FILE, with size-based rotation to FILE.1 — at most two
   generations on disk, so a long-lived daemon's post-mortem record is
   bounded while still covering a full window of recent history.

   Durability is deliberately two-tier: per-record writes are
   buffered + flushed (a crash loses at most the OS page cache, and a
   daemon crash — not a host crash — loses nothing), while rotation
   and shutdown fsync, so the completed generation and the final
   records of a clean termination are on the platter.  A torn last
   line after a power cut is expected and the replay reader skips
   it. *)

type t = {
  path : string;
  max_bytes : int;
  mutable oc : out_channel;
  mutable bytes : int;  (* bytes written to the current generation *)
  mutable records : int;  (* records ever written, both generations *)
  mutable rotations : int;
}

let default_max_bytes = 1 lsl 20  (* 1 MiB per generation *)

let rotated_path path = path ^ ".1"

let open_gen path =
  open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path

let create ?(max_bytes = default_max_bytes) path =
  let oc = open_gen path in
  { path;
    max_bytes = max 1 max_bytes;
    oc;
    bytes = out_channel_length oc;
    records = 0;
    rotations = 0 }

let path t = t.path
let records t = t.records
let rotations t = t.rotations

let fsync_oc oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc)
  with Unix.Unix_error _ -> ()  (* e.g. journal on a pipe *)

let rotate t =
  (* The generation being retired is made durable before the rename:
     after a rotation, FILE.1 is always a complete, fsynced record. *)
  fsync_oc t.oc;
  close_out_noerr t.oc;
  (try Sys.rename t.path (rotated_path t.path)
   with Sys_error _ -> ());
  t.oc <- open_gen t.path;
  t.bytes <- 0;
  t.rotations <- t.rotations + 1

let record t j =
  let line = Json.to_string ~minify:true j ^ "\n" in
  output_string t.oc line;
  flush t.oc;
  t.bytes <- t.bytes + String.length line;
  t.records <- t.records + 1;
  if t.bytes >= t.max_bytes then rotate t

let flush t = fsync_oc t.oc

let close t =
  fsync_oc t.oc;
  close_out_noerr t.oc

(** Offline journal analysis ([--journal-replay FILE]): reconstruct
    the daemon's rate and latency time series from a flight-recorder
    journal, window by window.

    Reads the retired generation ([FILE.1], when present) followed by
    the live one, so a series that spans a rotation replays seamlessly
    — tick records carry {e cumulative} telemetry precisely so the
    diff needs only record order, not file boundaries.  Malformed
    lines (the torn final line of a crashed daemon) are skipped and
    counted, never fatal. *)

type window_row = {
  r_ts : float;  (** timestamp of the newer tick *)
  r_seconds : float;  (** wall time between the two ticks *)
  r_requests : float;  (** requests per second in this window *)
  r_errors : float;
  r_rates : (string * float) list;
      (** per-second rate of every monotone counter *)
  r_lat : Telemetry.Window.quantiles option;
      (** request-latency p50/p99 (µs) from histogram-bucket diffs;
          [None] when no request completed in the window *)
}

type report = {
  files : string list;  (** generations read, oldest first *)
  lines : int;
  skipped : int;  (** malformed / non-record lines *)
  ticks : int;
  events : (string * int) list;  (** non-tick record kinds, with counts *)
  started : float option;  (** first [start] record's timestamp *)
  shutdown : string option;  (** last [shutdown] record's reason *)
  windows : window_row list;
}

val analyze : string -> (report, string) result
(** [Error] only when the journal file itself is missing. *)

val to_json : report -> Json.t

val pp : Format.formatter -> report -> unit
(** Human-readable summary plus a per-window table. *)

(** The flight-recorder journal ([--journal FILE]): an append-only
    JSONL stream of window snapshots, slowlog spills and lifecycle
    events, with size-based rotation.

    Layout on disk: the live generation at [FILE], at most one
    retired generation at [FILE.1] (older generations are overwritten
    by the next rotation).  Every {!record} is flushed to the OS;
    rotation and {!close} additionally [fsync], so a completed
    generation and a cleanly-terminated daemon's final records survive
    a host crash.  A torn final line (power cut mid-write) is expected
    — {!Replay.read_file} skips it and reports the skip.

    Replayed offline with [shex_validate --journal-replay FILE]
    ({!Replay}). *)

type t

val default_max_bytes : int
(** 1 MiB per generation. *)

val create : ?max_bytes:int -> string -> t
(** Open [path] for appending (created if missing; an existing journal
    continues — restarts extend the record rather than erasing it).
    Raises [Sys_error] when the path is not writable. *)

val rotated_path : string -> string
(** [FILE.1]. *)

val path : t -> string

val record : t -> Json.t -> unit
(** Append one minified record line and flush; rotates (with fsync)
    when the live generation reaches [max_bytes]. *)

val flush : t -> unit
(** Flush and [fsync] the live generation — the shutdown path calls
    this before exiting. *)

val records : t -> int
(** Records written through this handle (both generations). *)

val rotations : t -> int

val close : t -> unit
(** {!flush} then close the handle. *)

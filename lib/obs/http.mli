(** A minimal HTTP/1.1 GET server for the daemon's scrape surface
    ([--obs-port]): [/metrics], [/health], [/ready], [/slowlog],
    [/stats].

    Zero dependencies beyond stdlib [Unix], and deliberately tiny: the
    listener binds loopback only, answers exactly one GET per
    connection with [Connection: close], and is driven from the
    daemon's own [Unix.select] loop — {!fd} joins the read set next to
    stdin, and the loop calls {!serve_ready} when it fires, so the
    daemon stays single-domain and requests never interleave with
    validation work.  Slow or stuck clients are bounded by a
    per-connection receive timeout instead of blocking the daemon. *)

type response = { status : int; content_type : string; body : string }

val text : ?status:int -> string -> response
(** [text/plain; charset=utf-8] (status defaults to 200). *)

val json : ?status:int -> Json.t -> response
(** [application/json], minified, newline-terminated. *)

type t

val create : ?backlog:int -> ?read_timeout:float -> port:int -> unit -> t
(** Bind and listen on [127.0.0.1:port] ([port = 0] lets the kernel
    pick — read the result back with {!port}).  [read_timeout]
    (default 2 s) bounds how long one accepted connection may take to
    deliver its request head.  Raises [Unix.Unix_error] when the bind
    fails (port taken, permission). *)

val port : t -> int
(** The bound port — meaningful after [create ~port:0]. *)

val fd : t -> Unix.file_descr
(** The listening socket, for the caller's [Unix.select] read set. *)

val serve_ready : t -> (string -> response) -> unit
(** Accept one pending connection and answer it: read the request
    head, resolve the path (query string stripped) through the route
    callback, write the response, close.  Call when {!fd} selected
    readable.  Malformed or slow requests get 400, non-GET methods
    405; a client that disconnects mid-write is ignored (the caller
    must ignore [SIGPIPE] — the daemon sets this up). *)

val close : t -> unit

val get : string -> (int * string, string) result
(** One-shot client: [get "http://127.0.0.1:9090/metrics"] returns
    [(status, body)].  Blocking, [Connection: close], no redirects —
    the [--obs-get] flag behind the cram tests, and a curl substitute
    for operators without one. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

let int n = Number (float_of_int n)

let find key = function
  | Object members -> List.assoc_opt key members
  | Null | Bool _ | Number _ | String _ | Array _ -> None

let as_string = function String s -> Some s | _ -> None

let as_int = function
  | Number f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let find_string key t = Option.bind (find key t) as_string
let find_int key t = Option.bind (find key t) as_int

let find_list key t =
  match find key t with Some (Array xs) -> Some xs | _ -> None

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_text f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec write ~minify ~indent buf t =
  let nl level =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * level) ' ')
    end
  in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Number f -> Buffer.add_string buf (number_text f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | Array [] -> Buffer.add_string buf "[]"
  | Array items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 1);
          write ~minify ~indent:(indent + 1) buf item)
        items;
      nl indent;
      Buffer.add_char buf ']'
  | Object [] -> Buffer.add_string buf "{}"
  | Object members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string key);
          Buffer.add_string buf (if minify then "\":" else "\": ");
          write ~minify ~indent:(indent + 1) buf value)
        members;
      nl indent;
      Buffer.add_char buf '}'

let to_string ?(minify = false) t =
  let buf = Buffer.create 256 in
  write ~minify ~indent:0 buf t;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Atomic file output: write to a temporary file in the destination
   directory (same filesystem, so the rename is atomic) and rename
   over the target.  An interrupted writer leaves the old file — or
   no file — never a truncated one. *)
let write_file_atomic path content =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  match
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc content)
  with
  | () -> Sys.rename tmp path
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let to_file ?minify path t = write_file_atomic path (to_string ?minify t)

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Error of string * int * int

type state = { src : string; mutable pos : int; mutable line : int;
               mutable col : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let error st msg = raise (Error (msg, st.line, st.col))

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> error st (Printf.sprintf "expected %C" c)

let literal st word value =
  String.iter (fun c -> expect st c) word;
  value

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c when c >= '0' && c <= '9' ->
        v := (!v * 16) + Char.code c - Char.code '0'
    | Some c when c >= 'a' && c <= 'f' ->
        v := (!v * 16) + Char.code c - Char.code 'a' + 10
    | Some c when c >= 'A' && c <= 'F' ->
        v := (!v * 16) + Char.code c - Char.code 'A' + 10
    | _ -> error st "invalid \\u escape");
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some 'u' ->
            advance st;
            let cp = parse_hex4 st in
            (* Surrogate pairs for astral characters. *)
            let cp =
              if cp >= 0xD800 && cp <= 0xDBFF then begin
                expect st '\\';
                expect st 'u';
                let low = parse_hex4 st in
                0x10000 + ((cp - 0xD800) lsl 10) + (low - 0xDC00)
              end
              else cp
            in
            if cp >= 0x10000 then begin
              Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
              Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
            end
            else add_utf8 buf cp;
            go ()
        | _ -> error st "invalid escape")
    | Some c when Char.code c < 0x20 -> error st "control character in string"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let take_while pred =
    let rec go () =
      match peek st with
      | Some c when pred c -> advance st; go ()
      | _ -> ()
    in
    go ()
  in
  if peek st = Some '-' then advance st;
  take_while (fun c -> c >= '0' && c <= '9');
  if peek st = Some '.' then begin
    advance st;
    take_while (fun c -> c >= '0' && c <= '9')
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      take_while (fun c -> c >= '0' && c <= '9')
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Number f
  | None -> error st (Printf.sprintf "malformed number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin advance st; Object [] end
      else
        let rec members acc =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let value = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((key, value) :: acc)
          | Some '}' ->
              advance st;
              Object (List.rev ((key, value) :: acc))
          | _ -> error st "expected , or }"
        in
        members []
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin advance st; Array [] end
      else
        let rec items acc =
          let value = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (value :: acc)
          | Some ']' ->
              advance st;
              Array (List.rev (value :: acc))
          | _ -> error st "expected , or ]"
        in
        items []
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected character %C" c)

let of_string src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  match
    let v = parse_value st in
    skip_ws st;
    (v, peek st)
  with
  | v, None -> Ok v
  | _, Some c ->
      Error
        (Printf.sprintf "trailing content at %d:%d (%C)" st.line st.col c)
  | exception Error (msg, line, col) ->
      Error (Printf.sprintf "JSON error at %d:%d: %s" line col msg)

let of_string_exn src =
  match of_string src with Ok v -> v | Error msg -> failwith msg

(** A minimal, dependency-free JSON representation.

    Used for ShExJ schema interchange ({!Shexc.Shexj}) and for
    machine-readable validation reports ({!Shex.Report}).  Covers RFC
    8259: objects, arrays, strings (with escape handling), numbers,
    booleans and null.  Object member order is preserved. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

(** {1 Construction helpers} *)

val int : int -> t

val find : string -> t -> t option
(** [find key (Object …)] — [None] on missing key or non-object. *)

val find_string : string -> t -> string option
val find_int : string -> t -> int option
val find_list : string -> t -> t list option

val as_string : t -> string option
val as_int : t -> int option

(** {1 Printing} *)

val to_string : ?minify:bool -> t -> string
(** Render; default is 2-space pretty-printing, [~minify:true] is
    single-line. *)

val pp : Format.formatter -> t -> unit

val write_file_atomic : string -> string -> unit
(** [write_file_atomic path content] writes [content] to a temporary
    file in [path]'s directory and renames it over [path], so readers
    never observe a truncated file even if the writer is interrupted
    mid-run.  On error the temporary file is removed and the previous
    [path] (if any) is untouched. *)

val to_file : ?minify:bool -> string -> t -> unit
(** [to_file path t] — {!to_string} rendered through
    {!write_file_atomic}. *)

(** {1 Parsing} *)

val of_string : string -> (t, string) result
(** Parse a JSON document.  Errors carry 1-based line/column. *)

val of_string_exn : string -> t

(* A fork/join pool over OCaml 5 domains.  Deliberately minimal: one
   spawn per task per run, no work stealing, no shared queues — the
   bulk-validation workload is a handful of coarse shards, so spawn
   cost is noise and the absence of shared mutable state is the whole
   point.  Task 0 runs on the calling domain: [run tasks] with one
   task spawns nothing, and with [n] tasks uses [n - 1] fresh
   domains. *)

let recommended_domains () = Domain.recommended_domain_count ()

type 'a outcome = Value of 'a | Raised of exn * Printexc.raw_backtrace

let run (tasks : (unit -> 'a) list) : 'a list =
  match tasks with
  | [] -> []
  | first :: rest ->
      let capture f = try Value (f ()) with
        | e -> Raised (e, Printexc.get_raw_backtrace ())
      in
      let spawned = List.map (fun f -> Domain.spawn (fun () -> capture f)) rest in
      (* The caller works its own shard while the others run; capture
         its exception too so every domain is joined before anything
         re-raises. *)
      let head = capture first in
      let outcomes = head :: List.map Domain.join spawned in
      List.map
        (function
          | Value v -> v
          | Raised (e, bt) -> Printexc.raise_with_backtrace e bt)
        outcomes

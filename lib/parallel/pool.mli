(** Fork/join over OCaml 5 domains.

    The shape-map semantics (Boneva et al.; §8 of the source paper)
    makes bulk validation embarrassingly parallel: each focus node's
    verdict is a function of the graph and schema alone, so shards
    share only immutable data.  This pool is the minimal fork/join
    that exploits it — spawn one domain per task beyond the first,
    run the first task on the calling domain, join everything. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism
    the runtime suggests. *)

val run : (unit -> 'a) list -> 'a list
(** [run tasks] evaluates every task to completion — the head on the
    calling domain, the rest each on a fresh domain — and returns
    their results in task order.  Every domain is joined before the
    call returns, even on failure; if any task raised, the first
    raising task's exception is re-raised with its original
    backtrace. *)

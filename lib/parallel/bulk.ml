(* Domain-parallel bulk validation.

   Sharding is contiguous over the association list, so outcome order
   is input order by construction — the merged report is byte-for-byte
   the sequential one.  Each shard gets a private Validate.session
   (its own memo tables, Hrse hash-cons tables, DFA transition caches)
   and a private telemetry registry; the only data crossed between
   domains is the immutable schema and graph going in and the finished
   outcome lists coming back at join.  That is the whole domain-safety
   argument: nothing mutable is shared, so nothing needs a lock. *)

(* [shard n xs] splits [xs] into [n] contiguous runs whose lengths
   differ by at most one (the first [len mod n] runs get the extra
   element), preserving order.  Never returns an empty run for
   non-empty input with n <= len. *)
let shard n xs =
  let len = List.length xs in
  let n = max 1 (min n len) in
  let base = len / n and extra = len mod n in
  let rec take k xs =
    if k = 0 then ([], xs)
    else
      match xs with
      | [] -> ([], [])
      | x :: tl ->
          let run, rest = take (k - 1) tl in
          (x :: run, rest)
  in
  let rec go i xs =
    if i = n then []
    else
      let k = base + if i < extra then 1 else 0 in
      let run, rest = take k xs in
      run :: go (i + 1) rest
  in
  go 0 xs

let check_bulk session associations =
  let n = min (Shex.Validate.domains session) (List.length associations) in
  if n <= 1 then
    List.map
      (fun (node, label) -> Shex.Validate.check session node label)
      associations
  else begin
    let engine = Shex.Validate.engine session in
    let schema = Shex.Validate.schema session in
    (* Interned sessions hand their frozen columnar store to every
       shard directly — it is immutable (sorted int arrays plus a
       read-only id table), so sharing it across domains is safe and
       skips materialising a structural graph per bulk call. *)
    let store = Shex.Validate.columnar_store session in
    let graph =
      match store with Some _ -> None | None -> Some (Shex.Validate.graph session)
    in
    let parent_tele = Shex.Validate.telemetry session in
    let instrumented = Telemetry.enabled parent_tele in
    let profile = Shex.Validate.profiling session in
    let tasks =
      List.map
        (fun run () ->
          let telemetry =
            if instrumented then Telemetry.create () else Telemetry.disabled
          in
          let sub =
            match store with
            | Some c ->
                Shex.Validate.session_columnar ~engine ~telemetry ~profile
                  schema c
            | None ->
                Shex.Validate.session ~engine ~telemetry ~profile schema
                  (Option.get graph)
          in
          let outcomes =
            List.map
              (fun (node, label) -> Shex.Validate.check sub node label)
              run
          in
          (* Pull-style stats (the compiled backend's cache counters)
             must land in the shard registry before it leaves the
             shard's domain. *)
          if instrumented then ignore (Shex.Validate.metrics sub);
          (outcomes, telemetry))
        (shard n associations)
    in
    let per_shard = Pool.run tasks in
    if instrumented then
      List.iter
        (fun (_, tele) -> Telemetry.merge ~into:parent_tele tele)
        per_shard;
    List.concat_map fst per_shard
  end

let install () = Shex.Validate.set_bulk_checker check_bulk

(* Self-register at link time (-linkall), mirroring the automaton
   backend: linking shex_parallel is all an executable needs for
   [Validate.check_all] to honour [?domains]. *)
let () = install ()

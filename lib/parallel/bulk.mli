(** Domain-parallel bulk validation — the runner behind
    [Shex.Validate.check_all] when a session asks for [domains > 1].

    A shape map's associations are split into contiguous shards, one
    per domain; each shard is validated in a private sub-session (its
    own verdict memo, compiled caches and telemetry registry) over the
    shared immutable schema and graph, and the per-shard outcome lists
    are concatenated back in input order.  Verdicts are deterministic
    because the greatest fixpoint each shard computes is canonical —
    independent of evaluation order — so the merged result equals the
    sequential one; per-shard telemetry is folded into the session's
    registry with {!Telemetry.merge}.

    The library self-registers with [Shex.Validate.set_bulk_checker]
    at link time ([-linkall]); simply linking [shex_parallel] enables
    [?domains]. *)

val shard : int -> 'a list -> 'a list list
(** [shard n xs] splits [xs] into at most [n] contiguous runs whose
    lengths differ by at most one, in order ([List.concat (shard n
    xs) = xs]).  Exposed for tests. *)

val check_bulk :
  Shex.Validate.session ->
  (Rdf.Term.t * Shex.Label.t) list ->
  Shex.Validate.outcome list
(** The bulk runner itself.  Falls back to a sequential fold when the
    session's [domains] (or the association count) is 1. *)

val install : unit -> unit
(** Register {!check_bulk} with [Shex.Validate.set_bulk_checker].
    Also runs at link time. *)

(** Hand-written lexer for the Turtle family of RDF syntaxes
    (Turtle, N-Triples).

    Produces a stream of located tokens.  String literals are decoded
    (escape sequences resolved to UTF-8); IRIs and prefixed names are
    kept textual for the parser to resolve. *)

type token =
  | Iriref of string        (** [<...>], brackets stripped, \u-decoded *)
  | Pname of string * string
      (** prefixed name, split at the first colon: (prefix, local) *)
  | Blank_label of string   (** [_:label], prefix stripped *)
  | Anon                    (** [[]] — anonymous blank node *)
  | String_lit of string    (** decoded contents of any quote form *)
  | Langtag of string       (** [@en], [@] stripped *)
  | Integer_lit of string
  | Decimal_lit of string
  | Double_lit of string
  | Kw_a                    (** the predicate keyword [a] *)
  | Kw_true
  | Kw_false
  | At_prefix               (** [@prefix] *)
  | At_base                 (** [@base] *)
  | Kw_prefix               (** SPARQL-style [PREFIX] *)
  | Kw_base                 (** SPARQL-style [BASE] *)
  | Dot
  | Semicolon
  | Comma
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Caret_caret             (** [^^] *)
  | Eof

type located = { token : token; line : int; col : int }

exception Error of string * int * int
(** [Error (message, line, col)] — 1-based positions. *)

type stream
(** A lazy token source over a sliding byte window.  Reading from a
    channel keeps peak memory at the window size (64 KiB) regardless
    of document length; every construct in the grammar needs only
    bounded byte lookahead.  Note that [[]] (ANON) is {e not} produced
    by a stream: the parser recognises it from [Lbracket] [Rbracket]
    (deciding it in the lexer would need unbounded lookahead). *)

val stream_of_string : string -> stream
val stream_of_channel : in_channel -> stream

val next : stream -> located
(** The next token; [Eof] forever once exhausted.  Raises {!Error} on
    malformed input. *)

val tokenize : string -> located list
(** Tokenize a whole document.  Raises {!Error} on malformed input.
    Comments ([# …\n]) and whitespace are skipped.  The result always
    ends with an [Eof] token.  Like a stream, never produces {!Anon}. *)

val pp_token : Format.formatter -> token -> unit

(* Canonical labels via colour refinement, with exhaustive tie-break
   search bounded by a permutation budget. *)

let relabel mapping g =
  let subst = function
    | Rdf.Term.Bnode b as t -> (
        match List.assoc_opt (Rdf.Bnode.label b) mapping with
        | Some fresh -> Rdf.Term.Bnode (Rdf.Bnode.of_string fresh)
        | None -> t)
    | t -> t
  in
  Rdf.Graph.fold
    (fun tr acc ->
      match
        Rdf.Triple.make_opt (subst (Rdf.Triple.subject tr)) (Rdf.Triple.predicate tr)
          (subst (Rdf.Triple.obj tr))
      with
      | Some tr' -> Rdf.Graph.add tr' acc
      | None -> acc)
    g Rdf.Graph.empty

let serialize g = Ntriples.to_string g

(* All permutations of a list (used only on small tie groups). *)
let rec permutations = function
  | [] -> [ [] ]
  | xs ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> not (Rdf.Bnode.equal x y)) xs in
          List.map (fun p -> x :: p) (permutations rest))
        xs

let permutation_budget = 5040 (* 7! *)

let canonicalize g =
  let coloured = Rdf.Isomorphism.refine_colours g in
  (* Group by colour, order groups by colour string. *)
  let groups =
    List.fold_left
      (fun acc (b, c) ->
        let prev = Option.value (List.assoc_opt c acc) ~default:[] in
        (c, b :: prev) :: List.remove_assoc c acc)
      [] coloured
    |> List.sort (fun (c1, _) (c2, _) -> String.compare c1 c2)
  in
  let budget =
    List.fold_left
      (fun acc (_, bs) ->
        let rec fact n = if n <= 1 then 1 else n * fact (n - 1) in
        acc * fact (min 8 (List.length bs)))
      1 groups
  in
  (* Candidate orderings: either all combinations of group
     permutations (exact) or label order within groups (best effort on
     pathologically symmetric graphs). *)
  let orderings =
    if budget <= permutation_budget then
      List.fold_left
        (fun acc (_, bs) ->
          let perms = permutations bs in
          List.concat_map (fun prefix -> List.map (fun p -> prefix @ p) perms) acc)
        [ [] ] groups
    else
      [ List.concat_map (fun (_, bs) -> List.sort Rdf.Bnode.compare bs) groups ]
  in
  let candidate ordering =
    let mapping =
      List.mapi
        (fun i b -> (Rdf.Bnode.label b, Printf.sprintf "c%d" i))
        ordering
    in
    relabel mapping g
  in
  match orderings with
  | [] -> g
  | first :: rest ->
      List.fold_left
        (fun best ordering ->
          let cand = candidate ordering in
          if String.compare (serialize cand) (serialize best) < 0 then cand
          else best)
        (candidate first) rest

let to_string g = serialize (canonicalize g)
let equal g1 g2 = String.equal (to_string g1) (to_string g2)

(** String-literal escaping shared by the Turtle and N-Triples
    writers. *)

val string_body : string -> string
(** Escape a literal's lexical form for emission between double
    quotes: the named backslash escapes for quote, backslash, LF, CR,
    TAB, BS and FF, and [\u00XX] for every other C0 control character
    and DEL.  The
    lexer decodes all of these back to the original bytes, so
    [parse (write g) = g] holds even for lexical forms containing
    control characters that raw emission would corrupt (CR/CRLF
    normalisation in transit) or make unparseable elsewhere. *)

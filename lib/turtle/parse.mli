(** Recursive-descent Turtle parser.

    Supports the full Turtle 1.1 surface the paper's examples use and
    more: [@prefix]/[@base] (and SPARQL-style [PREFIX]/[BASE])
    directives, prefixed names, predicate and object lists ([;], [,]),
    the [a] keyword, anonymous and labelled blank nodes, blank node
    property lists [[ … ]], collections [( … )], all literal quote
    forms, language tags, datatyped literals and the numeric/boolean
    shorthands. *)

type document = {
  graph : Rdf.Graph.t;
  namespaces : Rdf.Namespace.t;
      (** prefixes declared in the document (on top of none) *)
  base : Rdf.Iri.t option;  (** final base IRI, if any *)
}

val parse : ?base:Rdf.Iri.t -> string -> (document, string) result
(** Parse a Turtle document from a string.  Relative IRIs resolve
    against the innermost [@base], else against [?base], else are kept
    relative.  Errors carry 1-based line/column positions. *)

val parse_graph : ?base:Rdf.Iri.t -> string -> (Rdf.Graph.t, string) result
(** {!parse} projected to the graph. *)

val parse_graph_exn : ?base:Rdf.Iri.t -> string -> Rdf.Graph.t
(** Raises [Failure] with the parse error.  For tests and examples. *)

val parse_file : ?base:Rdf.Iri.t -> string -> (document, string) result
(** Read and parse a file, streaming: the lexer slides a 64 KiB
    window over the channel and the parser keeps one token of
    lookahead, so peak memory is bounded by the parsed graph — the
    source text is never materialised. *)

val parse_stream : ?base:Rdf.Iri.t -> Lexer.stream -> (document, string) result
(** Parse from an already-opened token stream ({!Lexer.stream_of_channel},
    {!Lexer.stream_of_string}). *)

(** Canonical graph serialization (deterministic blank node labels).

    Produces an N-Triples text that is identical for isomorphic graphs:
    blank nodes are relabelled [_:c0, _:c1, …] in a canonical order
    derived from colour refinement, with ties broken by trying the
    lexicographically smallest serialization (in the spirit of
    RDFC-1.0, without its incremental hashing details).

    Canonical texts make graphs directly comparable, hashable and
    diffable. *)

val canonicalize : Rdf.Graph.t -> Rdf.Graph.t
(** The graph with blank nodes renamed to canonical labels. *)

val to_string : Rdf.Graph.t -> string
(** Canonical N-Triples serialization. *)

val equal : Rdf.Graph.t -> Rdf.Graph.t -> bool
(** [equal g1 g2] ⇔ the canonical texts agree ⇔ the graphs are
    isomorphic (for the exact colour-refinement-discriminated graphs;
    ties are resolved by exhaustive choice, so this matches
    {!Rdf.Isomorphism.isomorphic}). *)

(** N-Triples: the line-based flat subset of Turtle.

    Parsing delegates to the Turtle parser (every N-Triples document is
    a Turtle document); {!strict_parse} additionally enforces the
    N-Triples restrictions — no directives, no prefixed names, no
    shorthand literals, no [a], no [;]/[,], no collections. *)

val parse : string -> (Rdf.Graph.t, string) result
(** Lenient parse (full Turtle accepted). *)

val strict_parse : string -> (Rdf.Graph.t, string) result
(** Parse enforcing the N-Triples grammar; returns [Error] with the
    offending line when the document uses Turtle-only syntax. *)

val fold_stream :
  ('a -> Rdf.Triple.t -> 'a) -> 'a -> Lexer.stream -> ('a, string) result
(** Streaming N-Triples reader: fold over the triples of a token
    stream without building a graph (or the source string).  Enforces
    the N-Triples shape (subject predicate object dot); literal tails
    ([@lang], [^^<dt>]) are decoded exactly as the Turtle parser
    decodes them, so downstream term comparisons agree. *)

val fold_file : string -> ('a -> Rdf.Triple.t -> 'a) -> 'a -> ('a, string) result
(** {!fold_stream} over a file, opened with a sliding-window lexer:
    peak memory is the fold's own state plus one 64 KiB window. *)

val load_file : string -> (Rdf.Columnar.t, string) result
(** Bulk-load a file straight into a columnar store: every term is
    interned as it is read and only int columns accumulate — the
    raw-speed path for graphs that dwarf structural loading. *)

val to_string : Rdf.Graph.t -> string
(** Canonical N-Triples: one triple per line in triple order, absolute
    IRIs in angle brackets, all literals quoted with explicit
    datatypes (plain [xsd:string] literals stay bare-quoted). *)

val to_file : string -> Rdf.Graph.t -> unit

(** N-Triples: the line-based flat subset of Turtle.

    Parsing delegates to the Turtle parser (every N-Triples document is
    a Turtle document); {!strict_parse} additionally enforces the
    N-Triples restrictions — no directives, no prefixed names, no
    shorthand literals, no [a], no [;]/[,], no collections. *)

val parse : string -> (Rdf.Graph.t, string) result
(** Lenient parse (full Turtle accepted). *)

val strict_parse : string -> (Rdf.Graph.t, string) result
(** Parse enforcing the N-Triples grammar; returns [Error] with the
    offending line when the document uses Turtle-only syntax. *)

val to_string : Rdf.Graph.t -> string
(** Canonical N-Triples: one triple per line in triple order, absolute
    IRIs in angle brackets, all literals quoted with explicit
    datatypes (plain [xsd:string] literals stay bare-quoted). *)

val to_file : string -> Rdf.Graph.t -> unit

(* Shared string-literal escaping for the Turtle and N-Triples
   writers.  Beyond the named escapes, every other C0 control
   character (and DEL) is written as \u00XX: emitting them raw
   produces documents that other parsers reject and that do not
   survive CRLF-normalising transports — the round-trip property
   test feeds exactly these through parse ∘ write. *)
let string_body s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 || Char.code c = 0x7F ->
          Buffer.add_string buf (Printf.sprintf "\\u%04X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type token =
  | Iriref of string
  | Pname of string * string
  | Blank_label of string
  | Anon
  | String_lit of string
  | Langtag of string
  | Integer_lit of string
  | Decimal_lit of string
  | Double_lit of string
  | Kw_a
  | Kw_true
  | Kw_false
  | At_prefix
  | At_base
  | Kw_prefix
  | Kw_base
  | Dot
  | Semicolon
  | Comma
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Caret_caret
  | Eof

type located = { token : token; line : int; col : int }

exception Error of string * int * int

(* The scanner reads from a sliding byte window refilled on demand, so
   tokenizing a channel never materialises the source: peak memory is
   the window (64 KiB) however large the document.  Every decision
   point below needs at most [max_lookahead] bytes (the longest
   keyword probe, "prefix" plus its boundary character), so a refill
   that tops the window up whenever fewer remain preserves the exact
   semantics of the old whole-string scanner. *)
type state = {
  refill : bytes -> int -> int -> int;
      (* [refill buf off len] reads ≤ len bytes at off; 0 = EOF *)
  buf : bytes;
  mutable len : int;  (* valid bytes in [buf] *)
  mutable pos : int;  (* cursor into [buf] *)
  mutable eof : bool;  (* the refill function is exhausted *)
  mutable line : int;
  mutable col : int;
}

let max_lookahead = 8
let window_size = 65536

(* Guarantee [k] readable bytes at [pos] (or EOF): compact the window
   and refill.  No token construct keeps absolute positions across
   [advance] calls, so sliding the buffer is invisible above. *)
let ensure st k =
  if st.len - st.pos < k && not st.eof then begin
    let rem = st.len - st.pos in
    Bytes.blit st.buf st.pos st.buf 0 rem;
    st.pos <- 0;
    st.len <- rem;
    let cap = Bytes.length st.buf in
    let continue = ref true in
    while !continue && st.len < cap do
      let n = st.refill st.buf st.len (cap - st.len) in
      if n = 0 then begin
        st.eof <- true;
        continue := false
      end
      else begin
        st.len <- st.len + n;
        if st.len - st.pos >= k then continue := false
      end
    done
  end

let peek_at st i =
  ensure st (i + 1);
  if st.pos + i < st.len then Some (Bytes.get st.buf (st.pos + i)) else None

let peek st = peek_at st 0
let peek2 st = peek_at st 1

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some '\r' when peek2 st <> Some '\n' ->
      (* A bare CR is a line ending of its own (classic-Mac or
         mixed-EOL input); in a CRLF pair only the LF counts. *)
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  if st.pos < st.len then st.pos <- st.pos + 1

let error st msg = raise (Error (msg, st.line, st.col))

let is_ws = function ' ' | '\t' | '\r' | '\n' -> true | _ -> false
let is_digit c = c >= '0' && c <= '9'

let is_pn_chars_base c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || Char.code c >= 0x80

let is_pn_chars c =
  is_pn_chars_base c || is_digit c || c = '_' || c = '-'

(* Encode a Unicode scalar value as UTF-8 into the buffer. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex_value st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> error st (Printf.sprintf "invalid hex digit %C" c)

let read_unicode_escape st n buf =
  let cp = ref 0 in
  for _ = 1 to n do
    match peek st with
    | Some c ->
        cp := (!cp * 16) + hex_value st c;
        advance st
    | None -> error st "unterminated \\u escape"
  done;
  add_utf8 buf !cp

(* Escapes shared by strings; IRIs only allow \u / \U. *)
let read_string_escape st buf =
  match peek st with
  | Some 'n' -> advance st; Buffer.add_char buf '\n'
  | Some 't' -> advance st; Buffer.add_char buf '\t'
  | Some 'r' -> advance st; Buffer.add_char buf '\r'
  | Some 'b' -> advance st; Buffer.add_char buf '\b'
  | Some 'f' -> advance st; Buffer.add_char buf '\012'
  | Some '"' -> advance st; Buffer.add_char buf '"'
  | Some '\'' -> advance st; Buffer.add_char buf '\''
  | Some '\\' -> advance st; Buffer.add_char buf '\\'
  | Some 'u' -> advance st; read_unicode_escape st 4 buf
  | Some 'U' -> advance st; read_unicode_escape st 8 buf
  | Some c -> error st (Printf.sprintf "invalid escape \\%c" c)
  | None -> error st "unterminated escape"

let read_iriref st =
  advance st; (* consume '<' *)
  let buf = Buffer.create 32 in
  let rec go () =
    match peek st with
    | Some '>' -> advance st; Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'u' -> advance st; read_unicode_escape st 4 buf; go ()
        | Some 'U' -> advance st; read_unicode_escape st 8 buf; go ()
        | _ -> error st "only \\u/\\U escapes are allowed in IRIs")
    | Some c when is_ws c -> error st "whitespace in IRI"
    | Some c -> advance st; Buffer.add_char buf c; go ()
    | None -> error st "unterminated IRI"
  in
  go ()

(* Quoted strings: short "..."/'...' and long """...""" / '''...'''. *)
let read_string st quote =
  advance st; (* first quote *)
  let long =
    peek st = Some quote && peek2 st = Some quote
    && begin advance st; advance st; true end
  in
  let buf = Buffer.create 32 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some c when c = quote ->
        if not long then begin advance st; Buffer.contents buf end
        else begin
          (* In a long string a run of k ≥ 3 quotes means k−3 content
             quotes followed by the terminator (greedy per the Turtle
             grammar); runs of 1–2 quotes are content. *)
          let run = ref 0 in
          while peek st = Some quote do
            incr run;
            advance st
          done;
          if !run >= 3 then begin
            for _ = 1 to !run - 3 do Buffer.add_char buf quote done;
            Buffer.contents buf
          end
          else begin
            for _ = 1 to !run do Buffer.add_char buf quote done;
            go ()
          end
        end
    | Some '\\' -> advance st; read_string_escape st buf; go ()
    | Some ('\n' | '\r') when not long -> error st "newline in string"
    | Some c -> advance st; Buffer.add_char buf c; go ()
  in
  go ()

(* PN_LOCAL: letters, digits, '_', '-', '.', ':', '%XX' and \-escaped
   punctuation.  Trailing dots belong to the statement terminator. *)
let read_pn_local st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some c when is_pn_chars c || c = ':' ->
        advance st; Buffer.add_char buf c; go ()
    | Some '.' ->
        (* Only take the dot if a local character follows. *)
        (match peek2 st with
        | Some c2 when is_pn_chars c2 || c2 = ':' || c2 = '.' || c2 = '%' ->
            advance st; Buffer.add_char buf '.'; go ()
        | _ -> Buffer.contents buf)
    | Some '%' -> (
        match (peek2 st, peek_at st 2) with
        | Some h1, Some h2 ->
            advance st; advance st; advance st;
            Buffer.add_char buf '%';
            Buffer.add_char buf h1;
            Buffer.add_char buf h2;
            go ()
        | _ -> error st "truncated %-escape in local name")
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some (( '_' | '~' | '.' | '-' | '!' | '$' | '&' | '\'' | '(' | ')'
                | '*' | '+' | ',' | ';' | '=' | '/' | '?' | '#' | '@' | '%' )
                as c) ->
            advance st; Buffer.add_char buf c; go ()
        | _ -> error st "invalid local name escape")
    | _ -> Buffer.contents buf
  in
  go ()

let read_pn_prefix st =
  let buf = Buffer.create 8 in
  let rec go () =
    match peek st with
    | Some c when is_pn_chars c -> advance st; Buffer.add_char buf c; go ()
    | Some '.' -> (
        match peek2 st with
        | Some c2 when is_pn_chars c2 || c2 = '.' ->
            advance st; Buffer.add_char buf '.'; go ()
        | _ -> Buffer.contents buf)
    | _ -> Buffer.contents buf
  in
  go ()

let read_number st =
  let buf = Buffer.create 8 in
  let take () =
    match peek st with
    | Some c -> advance st; Buffer.add_char buf c
    | None -> ()
  in
  (match peek st with Some ('+' | '-') -> take () | _ -> ());
  let rec digits () =
    match peek st with
    | Some c when is_digit c -> take (); digits ()
    | _ -> ()
  in
  digits ();
  let decimal = ref false and exponent = ref false in
  (match (peek st, peek2 st) with
  | Some '.', Some c when is_digit c ->
      decimal := true;
      take ();
      digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      exponent := true;
      take ();
      (match peek st with Some ('+' | '-') -> take () | _ -> ());
      digits ()
  | _ -> ());
  let s = Buffer.contents buf in
  if !exponent then Double_lit s
  else if !decimal then Decimal_lit s
  else if s = "" || s = "+" || s = "-" then error st "malformed number"
  else Integer_lit s

let keyword_at st kw =
  (* Case-insensitive match of a bare word at the current position.
     Needs length kw + 1 bytes of lookahead (the boundary check) —
     bounded by [max_lookahead] for every keyword we probe. *)
  let n = String.length kw in
  assert (n < max_lookahead);
  let rec chars i =
    i >= n
    || (match peek_at st i with
       | Some c -> Char.lowercase_ascii c = Char.lowercase_ascii kw.[i]
       | None -> false)
       && chars (i + 1)
  in
  chars 0
  &&
  match peek_at st n with
  | None -> true
  | Some c -> not (is_pn_chars c || c = ':')

let consume_word st kw = for _ = 1 to String.length kw do advance st done

let next_token st =
  let rec skip () =
    match peek st with
    | Some c when is_ws c -> advance st; skip ()
    | Some '#' ->
        (* A comment ends at LF or at a bare CR: stopping only at LF
           made a CR-terminated comment swallow the rest of the
           document's data on CR-only line endings. *)
        let rec to_eol () =
          match peek st with
          | Some '\n' | Some '\r' | None -> ()
          | Some _ -> advance st; to_eol ()
        in
        to_eol (); skip ()
    | _ -> ()
  in
  skip ();
  let line = st.line and col = st.col in
  let tok =
    match peek st with
    | None -> Eof
    | Some '<' -> Iriref (read_iriref st)
    | Some '"' -> String_lit (read_string st '"')
    | Some '\'' -> String_lit (read_string st '\'')
    | Some '.' -> (
        match peek2 st with
        | Some c when is_digit c -> read_number st
        | _ -> advance st; Dot)
    | Some ';' -> advance st; Semicolon
    | Some ',' -> advance st; Comma
    | Some '[' ->
        (* [[]] (ANON) is recognised by the parser from Lbracket
           Rbracket: deciding it here would need unbounded lookahead
           past whitespace, which a streaming window cannot give. *)
        advance st;
        Lbracket
    | Some ']' -> advance st; Rbracket
    | Some '(' -> advance st; Lparen
    | Some ')' -> advance st; Rparen
    | Some '^' -> (
        advance st;
        match peek st with
        | Some '^' -> advance st; Caret_caret
        | _ -> error st "expected ^^")
    | Some '@' -> (
        advance st;
        if keyword_at st "prefix" then begin consume_word st "prefix"; At_prefix end
        else if keyword_at st "base" then begin consume_word st "base"; At_base end
        else
          (* language tag: [a-zA-Z]+ ('-' [a-zA-Z0-9]+)* *)
          let buf = Buffer.create 8 in
          let rec go () =
            match peek st with
            | Some c
              when (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                   || is_digit c || c = '-' ->
                advance st; Buffer.add_char buf c; go ()
            | _ -> ()
          in
          go ();
          if Buffer.length buf = 0 then error st "empty language tag"
          else Langtag (Buffer.contents buf))
    | Some '_' -> (
        match peek2 st with
        | Some ':' ->
            advance st; advance st;
            let label = read_pn_local st in
            if label = "" then error st "empty blank node label"
            else Blank_label label
        | _ -> error st "expected _: for blank node")
    | Some ('+' | '-') -> read_number st
    | Some c when is_digit c -> read_number st
    | Some ':' ->
        advance st;
        Pname ("", read_pn_local st)
    | Some c when is_pn_chars_base c ->
        if keyword_at st "a" then begin consume_word st "a"; Kw_a end
        else if keyword_at st "true" then begin consume_word st "true"; Kw_true end
        else if keyword_at st "false" then begin consume_word st "false"; Kw_false end
        else if keyword_at st "prefix" then begin consume_word st "prefix"; Kw_prefix end
        else if keyword_at st "base" then begin consume_word st "base"; Kw_base end
        else begin
          let prefix = read_pn_prefix st in
          match peek st with
          | Some ':' ->
              advance st;
              Pname (prefix, read_pn_local st)
          | _ -> error st (Printf.sprintf "expected ':' after %S" prefix)
        end
    | Some c -> error st (Printf.sprintf "unexpected character %C" c)
  in
  { token = tok; line; col }

type stream = state

let no_refill _ _ _ = 0

let stream_of_string src =
  (* The whole string is the window; the refill function is never
     consulted.  One copy, same complexity as the old scanner. *)
  { refill = no_refill;
    buf = Bytes.of_string src;
    len = String.length src;
    pos = 0;
    eof = true;
    line = 1;
    col = 1 }

let stream_of_channel ic =
  { refill = (fun buf off len -> In_channel.input ic buf off len);
    buf = Bytes.create window_size;
    len = 0;
    pos = 0;
    eof = false;
    line = 1;
    col = 1 }

let next st = next_token st

let tokenize src =
  let st = stream_of_string src in
  let rec go acc =
    let t = next_token st in
    if t.token = Eof then List.rev (t :: acc) else go (t :: acc)
  in
  go []

let pp_token ppf = function
  | Iriref s -> Format.fprintf ppf "<%s>" s
  | Pname (p, l) -> Format.fprintf ppf "%s:%s" p l
  | Blank_label l -> Format.fprintf ppf "_:%s" l
  | Anon -> Format.pp_print_string ppf "[]"
  | String_lit s -> Format.fprintf ppf "%S" s
  | Langtag t -> Format.fprintf ppf "@@%s" t
  | Integer_lit s | Decimal_lit s | Double_lit s ->
      Format.pp_print_string ppf s
  | Kw_a -> Format.pp_print_string ppf "a"
  | Kw_true -> Format.pp_print_string ppf "true"
  | Kw_false -> Format.pp_print_string ppf "false"
  | At_prefix -> Format.pp_print_string ppf "@@prefix"
  | At_base -> Format.pp_print_string ppf "@@base"
  | Kw_prefix -> Format.pp_print_string ppf "PREFIX"
  | Kw_base -> Format.pp_print_string ppf "BASE"
  | Dot -> Format.pp_print_string ppf "."
  | Semicolon -> Format.pp_print_string ppf ";"
  | Comma -> Format.pp_print_string ppf ","
  | Lbracket -> Format.pp_print_string ppf "["
  | Rbracket -> Format.pp_print_string ppf "]"
  | Lparen -> Format.pp_print_string ppf "("
  | Rparen -> Format.pp_print_string ppf ")"
  | Caret_caret -> Format.pp_print_string ppf "^^"
  | Eof -> Format.pp_print_string ppf "<eof>"

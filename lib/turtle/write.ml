let escape_string = Escape.string_body

type ctx = { ns : Rdf.Namespace.t; used : (string, unit) Hashtbl.t }

let iri_text ctx iri =
  match Rdf.Namespace.shrink ctx.ns iri with
  | Some pname ->
      (match String.index_opt pname ':' with
      | Some i -> Hashtbl.replace ctx.used (String.sub pname 0 i) ()
      | None -> ());
      pname
  | None -> Printf.sprintf "<%s>" (Rdf.Iri.to_string iri)

let literal_text ctx l =
  let lexical = Rdf.Literal.lexical l in
  match Rdf.Literal.lang l with
  | Some tag -> Printf.sprintf "\"%s\"@%s" (escape_string lexical) tag
  | None -> (
      match Rdf.Literal.xsd_primitive l with
      | Some Rdf.Xsd.String -> Printf.sprintf "\"%s\"" (escape_string lexical)
      | Some Rdf.Xsd.Integer when Rdf.Xsd.valid_lexical Rdf.Xsd.Integer lexical
        ->
          lexical
      | Some Rdf.Xsd.Decimal
        when Rdf.Xsd.valid_lexical Rdf.Xsd.Decimal lexical
             && String.contains lexical '.' ->
          lexical
      | Some Rdf.Xsd.Boolean when lexical = "true" || lexical = "false" ->
          lexical
      | _ ->
          Printf.sprintf "\"%s\"^^%s" (escape_string lexical)
            (iri_text ctx (Rdf.Literal.datatype l)))

let term_text ctx = function
  | Rdf.Term.Iri iri -> iri_text ctx iri
  | Rdf.Term.Bnode b -> Printf.sprintf "_:%s" (Rdf.Bnode.label b)
  | Rdf.Term.Literal l -> literal_text ctx l

let predicate_text ctx p =
  if Rdf.Iri.equal p Rdf.Namespace.Vocab.rdf_type then "a" else iri_text ctx p

(* Group the subject's triples by predicate, preserving term order. *)
let grouped_by_predicate triples =
  List.fold_left
    (fun acc tr ->
      let p = Rdf.Triple.predicate tr in
      match acc with
      | (p', objs) :: rest when Rdf.Iri.equal p p' ->
          (p', Rdf.Triple.obj tr :: objs) :: rest
      | _ -> (p, [ Rdf.Triple.obj tr ]) :: acc)
    [] triples
  |> List.rev_map (fun (p, objs) -> (p, List.rev objs))

let to_string ?(namespaces = Rdf.Namespace.default) g =
  let ctx = { ns = namespaces; used = Hashtbl.create 8 } in
  let body = Buffer.create 1024 in
  let subjects = Rdf.Graph.subjects g in
  List.iter
    (fun s ->
      let triples = Rdf.Graph.to_list (Rdf.Graph.neighbourhood s g) in
      let groups = grouped_by_predicate triples in
      Buffer.add_string body (term_text ctx s);
      let n_groups = List.length groups in
      List.iteri
        (fun gi (p, objs) ->
          Buffer.add_string body
            (if gi = 0 then " " else "    ");
          Buffer.add_string body (predicate_text ctx p);
          Buffer.add_char body ' ';
          Buffer.add_string body
            (String.concat ", " (List.map (term_text ctx) objs));
          if gi < n_groups - 1 then Buffer.add_string body " ;\n"
          else Buffer.add_string body " .\n")
        groups)
    subjects;
  let header = Buffer.create 256 in
  List.iter
    (fun (prefix, ns) ->
      if Hashtbl.mem ctx.used prefix then
        Buffer.add_string header
          (Printf.sprintf "@prefix %s: <%s> .\n" prefix ns))
    (Rdf.Namespace.bindings namespaces);
  if Buffer.length header > 0 then Buffer.add_char header '\n';
  Buffer.contents header ^ Buffer.contents body

let to_channel ?namespaces oc g = output_string oc (to_string ?namespaces g)

let to_file ?namespaces path g =
  Out_channel.with_open_bin path (fun oc -> to_channel ?namespaces oc g)

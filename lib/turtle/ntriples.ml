let parse src = Parse.parse_graph src

let strict_parse src =
  (* Check token stream shape: only IRIREFs, blank labels, full
     literals and dots are allowed, in subject-predicate-object order. *)
  match Lexer.tokenize src with
  | exception Lexer.Error (msg, line, col) ->
      Error (Printf.sprintf "lexical error at %d:%d: %s" line col msg)
  | tokens ->
      let ok_term = function
        | Lexer.Iriref _ | Lexer.Blank_label _ -> true
        | _ -> false
      in
      let rec check = function
        | [ { Lexer.token = Lexer.Eof; _ } ] -> parse src
        | { Lexer.token = s; _ } :: rest when ok_term s -> (
            match rest with
            | { Lexer.token = Lexer.Iriref _; _ } :: rest2 -> (
                match rest2 with
                | { Lexer.token = o; _ } :: rest3 when ok_term o ->
                    expect_dot rest3
                | { Lexer.token = Lexer.String_lit _; _ } :: rest3 ->
                    literal_tail rest3
                | { Lexer.token = _; line; col } :: _ ->
                    Error
                      (Printf.sprintf
                         "not N-Triples at %d:%d: invalid object" line col)
                | [] -> Error "unexpected end of input")
            | { Lexer.token = _; line; col } :: _ ->
                Error
                  (Printf.sprintf
                     "not N-Triples at %d:%d: predicate must be an IRI" line
                     col)
            | [] -> Error "unexpected end of input")
        | { Lexer.token = _; line; col } :: _ ->
            Error
              (Printf.sprintf "not N-Triples at %d:%d: invalid subject" line
                 col)
        | [] -> Error "unexpected end of input"
      and literal_tail = function
        | { Lexer.token = Lexer.Langtag _; _ } :: rest -> expect_dot rest
        | { Lexer.token = Lexer.Caret_caret; _ }
          :: { Lexer.token = Lexer.Iriref _; _ }
          :: rest ->
            expect_dot rest
        | rest -> expect_dot rest
      and expect_dot = function
        | { Lexer.token = Lexer.Dot; _ } :: rest -> check rest
        | { Lexer.token = _; line; col } :: _ ->
            Error (Printf.sprintf "not N-Triples at %d:%d: expected ." line col)
        | [] -> Error "unexpected end of input"
      in
      check tokens

(* ------------------------------------------------------------------ *)
(* Streaming bulk loading                                              *)
(* ------------------------------------------------------------------ *)

(* One triple at a time off the token stream: the N-Triples grammar
   needs no lookahead beyond the literal tail, so the fold holds one
   token, one triple and the accumulator — nothing proportional to
   the document.  Term construction mirrors the Turtle parser exactly
   (same [Literal.make] calls), so a graph loaded here is
   term-for-term the graph [parse] builds. *)
let fold_stream f acc stream =
  let exception Fail of string in
  let fail (l : Lexer.located) msg =
    raise
      (Fail
         (Printf.sprintf "not N-Triples at %d:%d: %s" l.Lexer.line l.Lexer.col
            msg))
  in
  let iri_of l text =
    match Rdf.Iri.of_string text with
    | Ok iri -> iri
    | Error msg -> fail l msg
  in
  let rec go acc =
    let t = Lexer.next stream in
    match t.Lexer.token with
    | Lexer.Eof -> acc
    | _ ->
        let s =
          match t.Lexer.token with
          | Lexer.Iriref text -> Rdf.Term.Iri (iri_of t text)
          | Lexer.Blank_label label ->
              Rdf.Term.Bnode (Rdf.Bnode.of_string label)
          | _ -> fail t "invalid subject"
        in
        let tp = Lexer.next stream in
        let p =
          match tp.Lexer.token with
          | Lexer.Iriref text -> iri_of tp text
          | _ -> fail tp "predicate must be an IRI"
        in
        let tobj = Lexer.next stream in
        let o, tdot =
          match tobj.Lexer.token with
          | Lexer.Iriref text ->
              (Rdf.Term.Iri (iri_of tobj text), Lexer.next stream)
          | Lexer.Blank_label label ->
              (Rdf.Term.Bnode (Rdf.Bnode.of_string label), Lexer.next stream)
          | Lexer.String_lit lexical -> (
              let tail = Lexer.next stream in
              match tail.Lexer.token with
              | Lexer.Langtag tag ->
                  ( Rdf.Term.Literal (Rdf.Literal.make ~lang:tag lexical),
                    Lexer.next stream )
              | Lexer.Caret_caret -> (
                  let tdt = Lexer.next stream in
                  match tdt.Lexer.token with
                  | Lexer.Iriref text ->
                      ( Rdf.Term.Literal
                          (Rdf.Literal.make ~datatype:(iri_of tdt text) lexical),
                        Lexer.next stream )
                  | _ -> fail tdt "datatype must be an IRI")
              | _ -> (Rdf.Term.Literal (Rdf.Literal.string lexical), tail))
          | _ -> fail tobj "invalid object"
        in
        (match tdot.Lexer.token with
        | Lexer.Dot -> ()
        | _ -> fail tdot "expected .");
        (* [make] cannot raise: the subject was vetted above. *)
        go (f acc (Rdf.Triple.make s p o))
  in
  match go acc with
  | acc -> Ok acc
  | exception Fail msg -> Error msg
  | exception Lexer.Error (msg, line, col) ->
      Error (Printf.sprintf "lexical error at %d:%d: %s" line col msg)

let fold_file path f init =
  match
    In_channel.with_open_bin path (fun ic ->
        fold_stream f init (Lexer.stream_of_channel ic))
  with
  | result -> result
  | exception Sys_error msg -> Error msg

let load_file path =
  let b = Rdf.Columnar.builder () in
  match
    fold_file path
      (fun () tr -> Rdf.Columnar.add_triple b tr)
      ()
  with
  | Ok () -> Ok (Rdf.Columnar.freeze b)
  | Error _ as e -> e

let escape_string = Escape.string_body

let term_text = function
  | Rdf.Term.Iri iri -> Printf.sprintf "<%s>" (Rdf.Iri.to_string iri)
  | Rdf.Term.Bnode b -> Printf.sprintf "_:%s" (Rdf.Bnode.label b)
  | Rdf.Term.Literal l -> (
      let lexical = escape_string (Rdf.Literal.lexical l) in
      match Rdf.Literal.lang l with
      | Some tag -> Printf.sprintf "\"%s\"@%s" lexical tag
      | None ->
          if Rdf.Iri.equal (Rdf.Literal.datatype l) (Rdf.Xsd.iri Rdf.Xsd.String)
          then Printf.sprintf "\"%s\"" lexical
          else
            Printf.sprintf "\"%s\"^^<%s>" lexical
              (Rdf.Iri.to_string (Rdf.Literal.datatype l)))

let to_string g =
  let buf = Buffer.create 1024 in
  Rdf.Graph.iter
    (fun tr ->
      Buffer.add_string buf (term_text (Rdf.Triple.subject tr));
      Buffer.add_char buf ' ';
      Buffer.add_string buf
        (Printf.sprintf "<%s>" (Rdf.Iri.to_string (Rdf.Triple.predicate tr)));
      Buffer.add_char buf ' ';
      Buffer.add_string buf (term_text (Rdf.Triple.obj tr));
      Buffer.add_string buf " .\n")
    g;
  Buffer.contents buf

let to_file path g =
  Out_channel.with_open_bin path (fun oc -> output_string oc (to_string g))

let parse src = Parse.parse_graph src

let strict_parse src =
  (* Check token stream shape: only IRIREFs, blank labels, full
     literals and dots are allowed, in subject-predicate-object order. *)
  match Lexer.tokenize src with
  | exception Lexer.Error (msg, line, col) ->
      Error (Printf.sprintf "lexical error at %d:%d: %s" line col msg)
  | tokens ->
      let ok_term = function
        | Lexer.Iriref _ | Lexer.Blank_label _ -> true
        | _ -> false
      in
      let rec check = function
        | [ { Lexer.token = Lexer.Eof; _ } ] -> parse src
        | { Lexer.token = s; _ } :: rest when ok_term s -> (
            match rest with
            | { Lexer.token = Lexer.Iriref _; _ } :: rest2 -> (
                match rest2 with
                | { Lexer.token = o; _ } :: rest3 when ok_term o ->
                    expect_dot rest3
                | { Lexer.token = Lexer.String_lit _; _ } :: rest3 ->
                    literal_tail rest3
                | { Lexer.token = _; line; col } :: _ ->
                    Error
                      (Printf.sprintf
                         "not N-Triples at %d:%d: invalid object" line col)
                | [] -> Error "unexpected end of input")
            | { Lexer.token = _; line; col } :: _ ->
                Error
                  (Printf.sprintf
                     "not N-Triples at %d:%d: predicate must be an IRI" line
                     col)
            | [] -> Error "unexpected end of input")
        | { Lexer.token = _; line; col } :: _ ->
            Error
              (Printf.sprintf "not N-Triples at %d:%d: invalid subject" line
                 col)
        | [] -> Error "unexpected end of input"
      and literal_tail = function
        | { Lexer.token = Lexer.Langtag _; _ } :: rest -> expect_dot rest
        | { Lexer.token = Lexer.Caret_caret; _ }
          :: { Lexer.token = Lexer.Iriref _; _ }
          :: rest ->
            expect_dot rest
        | rest -> expect_dot rest
      and expect_dot = function
        | { Lexer.token = Lexer.Dot; _ } :: rest -> check rest
        | { Lexer.token = _; line; col } :: _ ->
            Error (Printf.sprintf "not N-Triples at %d:%d: expected ." line col)
        | [] -> Error "unexpected end of input"
      in
      check tokens

let escape_string = Escape.string_body

let term_text = function
  | Rdf.Term.Iri iri -> Printf.sprintf "<%s>" (Rdf.Iri.to_string iri)
  | Rdf.Term.Bnode b -> Printf.sprintf "_:%s" (Rdf.Bnode.label b)
  | Rdf.Term.Literal l -> (
      let lexical = escape_string (Rdf.Literal.lexical l) in
      match Rdf.Literal.lang l with
      | Some tag -> Printf.sprintf "\"%s\"@%s" lexical tag
      | None ->
          if Rdf.Iri.equal (Rdf.Literal.datatype l) (Rdf.Xsd.iri Rdf.Xsd.String)
          then Printf.sprintf "\"%s\"" lexical
          else
            Printf.sprintf "\"%s\"^^<%s>" lexical
              (Rdf.Iri.to_string (Rdf.Literal.datatype l)))

let to_string g =
  let buf = Buffer.create 1024 in
  Rdf.Graph.iter
    (fun tr ->
      Buffer.add_string buf (term_text (Rdf.Triple.subject tr));
      Buffer.add_char buf ' ';
      Buffer.add_string buf
        (Printf.sprintf "<%s>" (Rdf.Iri.to_string (Rdf.Triple.predicate tr)));
      Buffer.add_char buf ' ';
      Buffer.add_string buf (term_text (Rdf.Triple.obj tr));
      Buffer.add_string buf " .\n")
    g;
  Buffer.contents buf

let to_file path g =
  Out_channel.with_open_bin path (fun oc -> output_string oc (to_string g))

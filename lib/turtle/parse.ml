type document = {
  graph : Rdf.Graph.t;
  namespaces : Rdf.Namespace.t;
  base : Rdf.Iri.t option;
}

exception Parse_error of string * int * int

(* The parser pulls tokens lazily (one-token lookahead, which the
   grammar below never exceeds), so parsing a channel-backed stream
   holds one token plus the graph being built — never the source text
   or the token list. *)
type state = {
  next : unit -> Lexer.located;
  mutable cur : Lexer.located;
  mutable namespaces : Rdf.Namespace.t;
  mutable base : Rdf.Iri.t option;
  mutable graph : Rdf.Graph.t;
  mutable bnode_counter : int;
}

let current st = st.cur
let advance st = if st.cur.Lexer.token <> Lexer.Eof then st.cur <- st.next ()

let error st msg =
  let { Lexer.line; col; _ } = current st in
  raise (Parse_error (msg, line, col))

let expect st token msg =
  if (current st).Lexer.token = token then advance st else error st msg

let fresh_bnode st =
  let n = st.bnode_counter in
  st.bnode_counter <- n + 1;
  Rdf.Term.Bnode (Rdf.Bnode.of_string (Printf.sprintf "tb%d" n))

let emit st s p o =
  match Rdf.Triple.make_opt s p o with
  | Some tr -> st.graph <- Rdf.Graph.add tr st.graph
  | None -> error st "literal in subject position"

let resolve_iri st text =
  match Rdf.Iri.of_string text with
  | Error msg -> error st msg
  | Ok iri -> (
      if Rdf.Iri.is_absolute iri then iri
      else
        match st.base with
        | Some base -> Rdf.Iri.resolve ~base iri
        | None -> iri)

let expand_pname st prefix local =
  match Rdf.Namespace.find prefix st.namespaces with
  | None -> error st (Printf.sprintf "unbound prefix %S" prefix)
  | Some ns -> (
      match Rdf.Iri.of_string (ns ^ local) with
      | Ok iri -> iri
      | Error msg -> error st msg)

let xsd_iri p = Rdf.Xsd.iri p

(* iri ::= IRIREF | PrefixedName *)
let parse_iri st =
  match (current st).Lexer.token with
  | Lexer.Iriref text ->
      advance st;
      resolve_iri st text
  | Lexer.Pname (prefix, local) ->
      advance st;
      expand_pname st prefix local
  | _ -> error st "expected an IRI"

let parse_literal_tail st lexical =
  (* After a string: optional language tag or ^^datatype. *)
  match (current st).Lexer.token with
  | Lexer.Langtag tag ->
      advance st;
      Rdf.Term.Literal (Rdf.Literal.make ~lang:tag lexical)
  | Lexer.Caret_caret ->
      advance st;
      let dt = parse_iri st in
      Rdf.Term.Literal (Rdf.Literal.make ~datatype:dt lexical)
  | _ -> Rdf.Term.Literal (Rdf.Literal.string lexical)

let rec parse_object st =
  match (current st).Lexer.token with
  | Lexer.Iriref _ | Lexer.Pname _ -> Rdf.Term.Iri (parse_iri st)
  | Lexer.Blank_label label ->
      advance st;
      Rdf.Term.Bnode (Rdf.Bnode.of_string label)
  | Lexer.Anon ->
      advance st;
      fresh_bnode st
  | Lexer.String_lit lexical ->
      advance st;
      parse_literal_tail st lexical
  | Lexer.Integer_lit s ->
      advance st;
      Rdf.Term.Literal (Rdf.Literal.make ~datatype:(xsd_iri Rdf.Xsd.Integer) s)
  | Lexer.Decimal_lit s ->
      advance st;
      Rdf.Term.Literal (Rdf.Literal.make ~datatype:(xsd_iri Rdf.Xsd.Decimal) s)
  | Lexer.Double_lit s ->
      advance st;
      Rdf.Term.Literal (Rdf.Literal.make ~datatype:(xsd_iri Rdf.Xsd.Double) s)
  | Lexer.Kw_true ->
      advance st;
      Rdf.Term.Literal (Rdf.Literal.boolean true)
  | Lexer.Kw_false ->
      advance st;
      Rdf.Term.Literal (Rdf.Literal.boolean false)
  | Lexer.Lbracket ->
      let subject, _ = parse_bracket_node st in
      subject
  | Lexer.Lparen -> parse_collection st
  | _ -> error st "expected an object (IRI, blank node, literal, [...] or (...))"

(* '[' ... : either ANON ([]) or a blankNodePropertyList
   ('[' predicateObjectList ']').  The streaming lexer cannot emit a
   dedicated ANON token (that needs unbounded lookahead over the
   whitespace between the brackets), so the split happens here on the
   very next token.  Returns the blank node and whether a property
   list was present. *)
and parse_bracket_node st =
  expect st Lexer.Lbracket "expected [";
  let subject = fresh_bnode st in
  match (current st).Lexer.token with
  | Lexer.Rbracket ->
      advance st;
      (subject, false)
  | _ ->
      parse_predicate_object_list st subject;
      expect st Lexer.Rbracket "expected ]";
      (subject, true)

(* collection ::= '(' object* ')' — rdf:first/rdf:rest chain *)
and parse_collection st =
  expect st Lexer.Lparen "expected (";
  let rec items acc =
    match (current st).Lexer.token with
    | Lexer.Rparen ->
        advance st;
        List.rev acc
    | Lexer.Eof -> error st "unterminated collection"
    | _ -> items (parse_object st :: acc)
  in
  let objects = items [] in
  let nil = Rdf.Term.Iri Rdf.Namespace.Vocab.rdf_nil in
  let rec chain = function
    | [] -> nil
    | o :: rest ->
        let cell = fresh_bnode st in
        let tail = chain rest in
        emit st cell Rdf.Namespace.Vocab.rdf_first o;
        emit st cell Rdf.Namespace.Vocab.rdf_rest tail;
        cell
  in
  chain objects

(* verb ::= 'a' | iri *)
and parse_verb st =
  match (current st).Lexer.token with
  | Lexer.Kw_a ->
      advance st;
      Rdf.Namespace.Vocab.rdf_type
  | _ -> parse_iri st

(* objectList ::= object (',' object)* *)
and parse_object_list st subject verb =
  let o = parse_object st in
  emit st subject verb o;
  match (current st).Lexer.token with
  | Lexer.Comma ->
      advance st;
      parse_object_list st subject verb
  | _ -> ()

(* predicateObjectList ::= verb objectList (';' (verb objectList)?)* *)
and parse_predicate_object_list st subject =
  let verb = parse_verb st in
  parse_object_list st subject verb;
  let rec more () =
    match (current st).Lexer.token with
    | Lexer.Semicolon -> (
        advance st;
        match (current st).Lexer.token with
        | Lexer.Semicolon | Lexer.Dot | Lexer.Rbracket | Lexer.Eof ->
            more ()
        | _ ->
            let verb = parse_verb st in
            parse_object_list st subject verb;
            more ())
    | _ -> ()
  in
  more ()

(* subject ::= iri | BlankNode | collection *)
let parse_subject st =
  match (current st).Lexer.token with
  | Lexer.Iriref _ | Lexer.Pname _ -> Rdf.Term.Iri (parse_iri st)
  | Lexer.Blank_label label ->
      advance st;
      Rdf.Term.Bnode (Rdf.Bnode.of_string label)
  | Lexer.Anon ->
      advance st;
      fresh_bnode st
  | Lexer.Lparen -> parse_collection st
  | _ -> error st "expected a subject"

let parse_triples st =
  match (current st).Lexer.token with
  | Lexer.Lbracket -> (
      (* blankNodePropertyList predicateObjectList? — but a bare ANON
         subject ([] p o .) requires the predicateObjectList. *)
      let subject, had_props = parse_bracket_node st in
      if not had_props then parse_predicate_object_list st subject
      else
        match (current st).Lexer.token with
        | Lexer.Dot -> ()
        | _ -> parse_predicate_object_list st subject)
  | _ ->
      let subject = parse_subject st in
      parse_predicate_object_list st subject

let parse_directive st =
  match (current st).Lexer.token with
  | Lexer.At_prefix | Lexer.Kw_prefix ->
      let sparql_style = (current st).Lexer.token = Lexer.Kw_prefix in
      advance st;
      (match (current st).Lexer.token with
      | Lexer.Pname (prefix, "") ->
          advance st;
          (match (current st).Lexer.token with
          | Lexer.Iriref text ->
              advance st;
              let iri = resolve_iri st text in
              st.namespaces <-
                Rdf.Namespace.add prefix (Rdf.Iri.to_string iri)
                  st.namespaces
          | _ -> error st "expected namespace IRI")
      | _ -> error st "expected prefix declaration (e.g. foaf:)");
      if not sparql_style then expect st Lexer.Dot "expected . after @prefix"
  | Lexer.At_base | Lexer.Kw_base ->
      let sparql_style = (current st).Lexer.token = Lexer.Kw_base in
      advance st;
      (match (current st).Lexer.token with
      | Lexer.Iriref text ->
          advance st;
          st.base <- Some (resolve_iri st text)
      | _ -> error st "expected base IRI");
      if not sparql_style then expect st Lexer.Dot "expected . after @base"
  | _ -> error st "expected a directive"

let parse_document st =
  let rec go () =
    match (current st).Lexer.token with
    | Lexer.Eof -> ()
    | Lexer.At_prefix | Lexer.At_base | Lexer.Kw_prefix | Lexer.Kw_base ->
        parse_directive st;
        go ()
    | _ ->
        parse_triples st;
        expect st Lexer.Dot "expected . after triples";
        go ()
  in
  go ()

let parse_stream ?base stream =
  (* Tokenization is lazy now, so lexical errors can surface at any
     point of the parse, not just up front. *)
  match
    let st =
      { next = (fun () -> Lexer.next stream);
        cur = Lexer.next stream;
        namespaces = Rdf.Namespace.empty;
        base;
        graph = Rdf.Graph.empty;
        bnode_counter = 0 }
    in
    parse_document st;
    st
  with
  | st -> Ok { graph = st.graph; namespaces = st.namespaces; base = st.base }
  | exception Lexer.Error (msg, line, col) ->
      Error (Printf.sprintf "lexical error at %d:%d: %s" line col msg)
  | exception Parse_error (msg, line, col) ->
      Error (Printf.sprintf "parse error at %d:%d: %s" line col msg)

let parse ?base src = parse_stream ?base (Lexer.stream_of_string src)

let parse_graph ?base src =
  Result.map (fun (d : document) -> d.graph) (parse ?base src)

let parse_graph_exn ?base src =
  match parse_graph ?base src with
  | Ok g -> g
  | Error msg -> failwith msg

let parse_file ?base path =
  (* Streaming end to end: the lexer window slides over the channel,
     so peak memory is bounded by the parsed graph, not graph + source
     text (the old version slurped the whole file first). *)
  match
    In_channel.with_open_bin path (fun ic ->
        parse_stream ?base (Lexer.stream_of_channel ic))
  with
  | result -> result
  | exception Sys_error msg -> Error msg

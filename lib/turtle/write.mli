(** Turtle serializer.

    Produces readable Turtle: prefix directives up front, triples
    grouped by subject (predicate lists with [;], object lists with
    [,]), [a] for [rdf:type], and the numeric/boolean shorthands for
    well-formed typed literals. *)

val to_string : ?namespaces:Rdf.Namespace.t -> Rdf.Graph.t -> string
(** Serialize a graph.  [namespaces] defaults to
    {!Rdf.Namespace.default}; only prefixes actually used by the graph
    are declared. *)

val to_channel :
  ?namespaces:Rdf.Namespace.t -> out_channel -> Rdf.Graph.t -> unit

val to_file :
  ?namespaces:Rdf.Namespace.t -> string -> Rdf.Graph.t -> unit

type t = string

let of_string s = s
let label t = t

let counter = ref 0

let fresh () =
  let n = !counter in
  incr counter;
  Printf.sprintf "gen%d" n

let reset_fresh_counter () = counter := 0
let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp ppf t = Format.fprintf ppf "_:%s" t

module String_map = Map.Make (String)

type t = string String_map.t

let empty = String_map.empty
let add prefix ns t = String_map.add prefix ns t
let find prefix t = String_map.find_opt prefix t

let expand t name =
  match String.index_opt name ':' with
  | None -> Error (Printf.sprintf "not a prefixed name: %S" name)
  | Some i -> (
      let prefix = String.sub name 0 i in
      let local = String.sub name (i + 1) (String.length name - i - 1) in
      match find prefix t with
      | None -> Error (Printf.sprintf "unbound prefix %S in %S" prefix name)
      | Some ns -> Iri.of_string (ns ^ local))

let safe_local local =
  let n = String.length local in
  let ok_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '.'
  in
  let rec check i = i >= n || (ok_char local.[i] && check (i + 1)) in
  check 0 && (n = 0 || (local.[0] <> '.' && local.[n - 1] <> '.'))

let shrink t iri =
  let s = Iri.to_string iri in
  let best =
    String_map.fold
      (fun prefix ns acc ->
        let ln = String.length ns in
        if ln > 0 && ln <= String.length s && String.sub s 0 ln = ns then
          match acc with
          | Some (_, best_len) when best_len >= ln -> acc
          | Some _ | None -> Some (prefix, ln)
        else acc)
      t None
  in
  match best with
  | None -> None
  | Some (prefix, ln) ->
      let local = String.sub s ln (String.length s - ln) in
      if safe_local local then Some (prefix ^ ":" ^ local) else None

let bindings t = String_map.bindings t

let default =
  empty
  |> add "rdf" "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
  |> add "rdfs" "http://www.w3.org/2000/01/rdf-schema#"
  |> add "xsd" "http://www.w3.org/2001/XMLSchema#"
  |> add "owl" "http://www.w3.org/2002/07/owl#"
  |> add "foaf" "http://xmlns.com/foaf/0.1/"
  |> add "schema" "http://schema.org/"
  |> add "ex" "http://example.org/"
  |> add "" "http://example.org/"

module Vocab = struct
  let mk ns local = Iri.of_string_exn (ns ^ local)
  let rdf l = mk "http://www.w3.org/1999/02/22-rdf-syntax-ns#" l
  let rdfs l = mk "http://www.w3.org/2000/01/rdf-schema#" l
  let xsd l = mk "http://www.w3.org/2001/XMLSchema#" l
  let foaf l = mk "http://xmlns.com/foaf/0.1/" l
  let ex l = mk "http://example.org/" l
  let rdf_type = rdf "type"
  let rdf_first = rdf "first"
  let rdf_rest = rdf "rest"
  let rdf_nil = rdf "nil"
end

type t = {
  mutable terms : Term.t array;  (* id -> term; length ≥ len *)
  mutable len : int;
  ids : (Term.t, int) Hashtbl.t;  (* term -> id *)
}

let create ?(capacity = 1024) () =
  let capacity = max 16 capacity in
  { terms = [||]; len = 0; ids = Hashtbl.create capacity }

let cardinal t = t.len

let grow t =
  let cap = Array.length t.terms in
  if t.len >= cap then begin
    let cap' = max 16 (2 * cap) in
    (* The filler is only a placeholder; slots ≥ len are never read. *)
    let fresh = Array.make cap' t.terms.(0) in
    Array.blit t.terms 0 fresh 0 t.len;
    t.terms <- fresh
  end

let intern t term =
  match Hashtbl.find_opt t.ids term with
  | Some id -> id
  | None ->
      let id = t.len in
      if id = 0 then t.terms <- Array.make 16 term else grow t;
      t.terms.(id) <- term;
      t.len <- id + 1;
      Hashtbl.replace t.ids term id;
      id

let find t term = Hashtbl.find_opt t.ids term

let resolve t id =
  if id < 0 || id >= t.len then
    invalid_arg (Printf.sprintf "Interner.resolve: unknown id %d" id)
  else t.terms.(id)

let iteri f t =
  for id = 0 to t.len - 1 do
    f id t.terms.(id)
  done

let sorted t =
  let rec go i =
    i + 1 >= t.len
    || (Term.compare t.terms.(i) t.terms.(i + 1) < 0 && go (i + 1))
  in
  go 0

let compact t =
  let n = t.len in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Term.compare t.terms.(a) t.terms.(b)) order;
  let remap = Array.make n 0 in
  let compacted = create ~capacity:(2 * n) () in
  Array.iteri
    (fun new_id old_id ->
      remap.(old_id) <- new_id;
      ignore (intern compacted t.terms.(old_id)))
    order;
  (compacted, remap)

type t = string

let forbidden_char c =
  match c with
  | '<' | '>' | '"' | '{' | '}' | '|' | '^' | '`' | '\\' | ' ' -> true
  | c -> Char.code c <= 0x20

let validate s =
  let n = String.length s in
  let rec check i =
    if i >= n then Ok s
    else if forbidden_char s.[i] then
      Error
        (Printf.sprintf "invalid character %C at position %d in IRI %S" s.[i]
           i s)
    else check (i + 1)
  in
  check 0

let of_string s = validate s

let of_string_exn s =
  match validate s with
  | Ok iri -> iri
  | Error msg -> invalid_arg ("Iri.of_string_exn: " ^ msg)

let to_string t = t

(* RFC 3986 §3.1: scheme = ALPHA *( ALPHA / DIGIT / "+" / "-" / "." ) *)
let scheme t =
  let n = String.length t in
  let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') in
  let is_scheme_char c =
    is_alpha c || (c >= '0' && c <= '9') || c = '+' || c = '-' || c = '.'
  in
  if n = 0 || not (is_alpha t.[0]) then None
  else
    let rec scan i =
      if i >= n then None
      else if t.[i] = ':' then Some (String.sub t 0 i)
      else if is_scheme_char t.[i] then scan (i + 1)
      else None
    in
    scan 1

let is_absolute t = scheme t <> None

(* Split an IRI into (scheme, authority, path, query, fragment) per
   RFC 3986 appendix B, without regexes. Each component keeps its
   delimiter semantics: authority is the text after "//", query after
   "?", fragment after "#". *)
type components = {
  c_scheme : string option;
  c_authority : string option;
  c_path : string;
  c_query : string option;
  c_fragment : string option;
}

let split iri =
  let s, rest =
    match scheme iri with
    | Some sc ->
        (Some sc, String.sub iri (String.length sc + 1)
                    (String.length iri - String.length sc - 1))
    | None -> (None, iri)
  in
  let rest, fragment =
    match String.index_opt rest '#' with
    | Some i ->
        ( String.sub rest 0 i,
          Some (String.sub rest (i + 1) (String.length rest - i - 1)) )
    | None -> (rest, None)
  in
  let rest, query =
    match String.index_opt rest '?' with
    | Some i ->
        ( String.sub rest 0 i,
          Some (String.sub rest (i + 1) (String.length rest - i - 1)) )
    | None -> (rest, None)
  in
  let authority, path =
    if String.length rest >= 2 && rest.[0] = '/' && rest.[1] = '/' then
      let after = String.sub rest 2 (String.length rest - 2) in
      match String.index_opt after '/' with
      | Some i ->
          ( Some (String.sub after 0 i),
            String.sub after i (String.length after - i) )
      | None -> (Some after, "")
    else (None, rest)
  in
  { c_scheme = s; c_authority = authority; c_path = path; c_query = query;
    c_fragment = fragment }

let unsplit c =
  let buf = Buffer.create 64 in
  (match c.c_scheme with
  | Some s ->
      Buffer.add_string buf s;
      Buffer.add_char buf ':'
  | None -> ());
  (match c.c_authority with
  | Some a ->
      Buffer.add_string buf "//";
      Buffer.add_string buf a
  | None -> ());
  Buffer.add_string buf c.c_path;
  (match c.c_query with
  | Some q ->
      Buffer.add_char buf '?';
      Buffer.add_string buf q
  | None -> ());
  (match c.c_fragment with
  | Some f ->
      Buffer.add_char buf '#';
      Buffer.add_string buf f
  | None -> ());
  Buffer.contents buf

(* RFC 3986 §5.2.4 remove_dot_segments, on "/"-separated paths. *)
let remove_dot_segments path =
  let absolute = String.length path > 0 && path.[0] = '/' in
  let segments = String.split_on_char '/' path in
  let segments = if absolute then List.tl segments else segments in
  let rec go acc = function
    | [] -> List.rev acc
    | "." :: [] -> List.rev ("" :: acc)
    | "." :: rest -> go acc rest
    | ".." :: [] -> List.rev ("" :: (match acc with [] -> [] | _ :: t -> t))
    | ".." :: rest -> go (match acc with [] -> [] | _ :: t -> t) rest
    | seg :: rest -> go (seg :: acc) rest
  in
  let out = go [] segments in
  (if absolute then "/" else "") ^ String.concat "/" out

(* RFC 3986 §5.2.3 merge. *)
let merge_paths ~base_authority ~base_path ref_path =
  if base_authority <> None && base_path = "" then "/" ^ ref_path
  else
    match String.rindex_opt base_path '/' with
    | Some i -> String.sub base_path 0 (i + 1) ^ ref_path
    | None -> ref_path

let resolve ~base r =
  let b = split base and r' = split r in
  let target =
    if r'.c_scheme <> None then
      { r' with c_path = remove_dot_segments r'.c_path }
    else if r'.c_authority <> None then
      { r' with
        c_scheme = b.c_scheme;
        c_path = remove_dot_segments r'.c_path }
    else if r'.c_path = "" then
      { b with
        c_query = (if r'.c_query <> None then r'.c_query else b.c_query);
        c_fragment = r'.c_fragment }
    else if String.length r'.c_path > 0 && r'.c_path.[0] = '/' then
      { b with
        c_path = remove_dot_segments r'.c_path;
        c_query = r'.c_query;
        c_fragment = r'.c_fragment }
    else
      let merged =
        merge_paths ~base_authority:b.c_authority ~base_path:b.c_path
          r'.c_path
      in
      { b with
        c_path = remove_dot_segments merged;
        c_query = r'.c_query;
        c_fragment = r'.c_fragment }
  in
  unsplit target

let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp ppf t = Format.fprintf ppf "<%s>" t
let pp_plain ppf t = Format.pp_print_string ppf t

type t = { s : Term.t; p : Iri.t; o : Term.t }

let make s p o =
  if not (Term.subject_ok s) then
    invalid_arg
      (Format.asprintf "Triple.make: literal in subject position: %a" Term.pp
         s)
  else { s; p; o }

let make_opt s p o = if Term.subject_ok s then Some { s; p; o } else None
let subject t = t.s
let predicate t = t.p
let obj t = t.o

let equal a b =
  Term.equal a.s b.s && Iri.equal a.p b.p && Term.equal a.o b.o

let compare a b =
  let c = Term.compare a.s b.s in
  if c <> 0 then c
  else
    let c = Iri.compare a.p b.p in
    if c <> 0 then c else Term.compare a.o b.o

(* FNV-style mixing of the component hashes; allocation-free (the old
   version built a tuple and re-hashed the three already mixed ints). *)
let hash t =
  let h = Term.hash t.s in
  let h = ((h * 0x1000193) lxor Iri.hash t.p) land max_int in
  ((h * 0x1000193) lxor Term.hash t.o) land max_int

let pp ppf t =
  Format.fprintf ppf "%a %a %a ." Term.pp t.s Iri.pp t.p Term.pp t.o

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)

(** RDF terms and the positional vocabularies of the paper's §2.

    With [I] the IRIs, [B] the blank nodes and [L] the literals, the
    paper fixes [Vs = I ∪ B] (subjects), [Vp = I] (predicates) and
    [Vo = I ∪ B ∪ L] (objects).  {!t} is [Vo]; {!subject_ok} and
    {!predicate_ok} carve out the smaller vocabularies. *)

type t =
  | Iri of Iri.t
  | Bnode of Bnode.t
  | Literal of Literal.t

val iri : string -> t
(** [iri s] is [Iri (Iri.of_string_exn s)]. *)

val bnode : string -> t

val str : string -> t
(** Plain-string literal term. *)

val int : int -> t
(** [xsd:integer] literal term. *)

val is_iri : t -> bool
val is_bnode : t -> bool
val is_literal : t -> bool

val subject_ok : t -> bool
(** Member of [Vs = I ∪ B]. *)

val predicate_ok : t -> bool
(** Member of [Vp = I]. *)

val as_iri : t -> Iri.t option
val as_literal : t -> Literal.t option

val equal : t -> t -> bool

val value_equal : t -> t -> bool
(** Like {!equal} but numeric literals compare in the value space:
    ["01"^^xsd:integer] equals ["1"^^xsd:integer].  This is the
    relation SPARQL's [=] decides on RDF terms, and the one value-set
    membership ({!Shex.Value_set.obj_mem}) uses so the regular-shape
    engines and the SPARQL translation agree on finite value sets. *)

val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** N-Triples-ish rendering: [<iri>], [_:label] or a quoted literal. *)

val to_string : t -> string

(** Total order over terms, for use with [Map.Make]/[Set.Make]. *)
module Ord : sig
  type nonrec t = t

  val compare : t -> t -> int
end

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

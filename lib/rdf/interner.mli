(** Dense int interning of RDF terms.

    An interner assigns consecutive small ints to distinct terms —
    IRIs, blank nodes and literals share one id space — and keeps the
    reverse table so reports and explanations can always recover the
    structural term.  Identity is {!Term.equal}: two blank nodes
    intern to the same id iff their labels agree (scoping is the
    caller's concern, exactly as for structural graphs), and a blank
    node never shares an id with an IRI or literal of the same
    spelling.

    {!compact} re-assigns ids in {!Term.compare} order.  A compacted
    interner has the property that {e int order is term order}, which
    is what lets the columnar store ({!Columnar}) binary-search sorted
    int columns and still hand triples back in the exact order the
    structural indexes produce them. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty interner.  [capacity] sizes the initial tables. *)

val intern : t -> Term.t -> int
(** Id of the term, assigning the next dense id on first sight.
    Ids are [0 .. cardinal t - 1] with no holes. *)

val find : t -> Term.t -> int option
(** Id of the term if already interned; never assigns. *)

val resolve : t -> int -> Term.t
(** The term behind an id.  Raises [Invalid_argument] on an id never
    handed out. *)

val cardinal : t -> int
(** Number of distinct terms interned. *)

val iteri : (int -> Term.t -> unit) -> t -> unit
(** Visit every (id, term) pair in increasing id order. *)

val sorted : t -> bool
(** [true] iff ids are currently in {!Term.compare} order (always
    true after {!compact}; opportunistically true if terms happened to
    arrive sorted). *)

val compact : t -> t * int array
(** [compact t] is [(t', remap)]: a fresh interner over the same terms
    whose ids are in {!Term.compare} order, and the translation table
    [remap.(old_id) = new_id].  [t] is unchanged. *)

type primitive =
  | String
  | Boolean
  | Decimal
  | Integer
  | Long
  | Int
  | Short
  | Byte
  | Non_negative_integer
  | Positive_integer
  | Non_positive_integer
  | Negative_integer
  | Unsigned_long
  | Unsigned_int
  | Unsigned_short
  | Unsigned_byte
  | Double
  | Float
  | Date
  | Date_time
  | Time
  | Any_uri
  | Lang_string

let xsd_ns = "http://www.w3.org/2001/XMLSchema#"
let rdf_ns = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"

let name = function
  | String -> "string"
  | Boolean -> "boolean"
  | Decimal -> "decimal"
  | Integer -> "integer"
  | Long -> "long"
  | Int -> "int"
  | Short -> "short"
  | Byte -> "byte"
  | Non_negative_integer -> "nonNegativeInteger"
  | Positive_integer -> "positiveInteger"
  | Non_positive_integer -> "nonPositiveInteger"
  | Negative_integer -> "negativeInteger"
  | Unsigned_long -> "unsignedLong"
  | Unsigned_int -> "unsignedInt"
  | Unsigned_short -> "unsignedShort"
  | Unsigned_byte -> "unsignedByte"
  | Double -> "double"
  | Float -> "float"
  | Date -> "date"
  | Date_time -> "dateTime"
  | Time -> "time"
  | Any_uri -> "anyURI"
  | Lang_string -> "langString"

let iri = function
  | Lang_string -> Iri.of_string_exn (rdf_ns ^ "langString")
  | dt -> Iri.of_string_exn (xsd_ns ^ name dt)

let all =
  [ String; Boolean; Decimal; Integer; Long; Int; Short; Byte;
    Non_negative_integer; Positive_integer; Non_positive_integer;
    Negative_integer; Unsigned_long; Unsigned_int; Unsigned_short;
    Unsigned_byte; Double; Float; Date; Date_time; Time; Any_uri;
    Lang_string ]

let by_iri =
  let table = Hashtbl.create 32 in
  List.iter (fun dt -> Hashtbl.replace table (Iri.to_string (iri dt)) dt) all;
  table

let of_iri i = Hashtbl.find_opt by_iri (Iri.to_string i)

let is_digit c = c >= '0' && c <= '9'

(* integer := [+-]? digit+ *)
let valid_integer_lexical s =
  let n = String.length s in
  let start = if n > 0 && (s.[0] = '+' || s.[0] = '-') then 1 else 0 in
  n > start
  &&
  let rec all_digits i = i >= n || (is_digit s.[i] && all_digits (i + 1)) in
  all_digits start

(* decimal := [+-]? (digit+ ('.' digit* )? | '.' digit+) *)
let valid_decimal_lexical s =
  let n = String.length s in
  let start = if n > 0 && (s.[0] = '+' || s.[0] = '-') then 1 else 0 in
  if n <= start then false
  else
    let seen_digit = ref false and seen_dot = ref false and ok = ref true in
    for i = start to n - 1 do
      match s.[i] with
      | '0' .. '9' -> seen_digit := true
      | '.' -> if !seen_dot then ok := false else seen_dot := true
      | _ -> ok := false
    done;
    !ok && !seen_digit

(* double := decimal ([eE] [+-]? digit+)? | INF | -INF | NaN *)
let valid_double_lexical s =
  match s with
  | "INF" | "-INF" | "+INF" | "NaN" -> true
  | _ -> (
      match
        let lower = String.lowercase_ascii s in
        String.index_opt lower 'e'
      with
      | None -> valid_decimal_lexical s
      | Some i ->
          let mantissa = String.sub s 0 i in
          let exponent = String.sub s (i + 1) (String.length s - i - 1) in
          valid_decimal_lexical mantissa && valid_integer_lexical exponent)

let parse_integer s =
  if valid_integer_lexical s then
    (* int_of_string rejects a leading '+', so strip it. *)
    let s = if s.[0] = '+' then String.sub s 1 (String.length s - 1) else s in
    int_of_string_opt s
  else None

let parse_decimal s =
  match s with
  | "INF" | "+INF" -> Some infinity
  | "-INF" -> Some neg_infinity
  | "NaN" -> Some nan
  | _ -> if valid_double_lexical s then float_of_string_opt s else None

let in_int_range s lo hi =
  match parse_integer s with Some v -> v >= lo && v <= hi | None -> false

(* Unsigned long exceeds OCaml's int on 32-bit platforms only; on the
   64-bit platforms we target, max_int covers 2^63-1 but not 2^64-1, so
   we accept the lexical space and check the sign. *)
let valid_unsigned_long s =
  valid_integer_lexical s && (match parse_integer s with
  | Some v -> v >= 0
  | None -> s.[0] <> '-')

let valid_date s =
  (* YYYY-MM-DD with optional timezone (Z | ±hh:mm). *)
  let n = String.length s in
  let digit i = i < n && is_digit s.[i] in
  let date_ok =
    n >= 10 && digit 0 && digit 1 && digit 2 && digit 3 && s.[4] = '-'
    && digit 5 && digit 6 && s.[7] = '-' && digit 8 && digit 9
  in
  let tz_ok from =
    from = n
    || (from + 1 = n && s.[from] = 'Z')
    || (from + 6 = n
       && (s.[from] = '+' || s.[from] = '-')
       && digit (from + 1) && digit (from + 2) && s.[from + 3] = ':'
       && digit (from + 4) && digit (from + 5))
  in
  date_ok && tz_ok 10

let valid_time_part s from =
  (* hh:mm:ss with optional fractional seconds, starting at [from]. *)
  let n = String.length s in
  let digit i = i < n && is_digit s.[i] in
  if
    not
      (digit from && digit (from + 1)
      && from + 2 < n && s.[from + 2] = ':'
      && digit (from + 3) && digit (from + 4)
      && from + 5 < n && s.[from + 5] = ':'
      && digit (from + 6) && digit (from + 7))
  then None
  else
    let i = from + 8 in
    if i < n && s.[i] = '.' then
      let rec frac j = if digit j then frac (j + 1) else j in
      let j = frac (i + 1) in
      if j = i + 1 then None else Some j
    else Some i

let valid_time s =
  match valid_time_part s 0 with
  | None -> false
  | Some i ->
      let n = String.length s in
      let digit k = k < n && is_digit s.[k] in
      i = n
      || (i + 1 = n && s.[i] = 'Z')
      || (i + 6 = n
         && (s.[i] = '+' || s.[i] = '-')
         && digit (i + 1) && digit (i + 2) && s.[i + 3] = ':'
         && digit (i + 4) && digit (i + 5))

let valid_date_time s =
  (* The date part must be exactly 10 chars: a timezone is only allowed
     after the time component. *)
  match String.index_opt s 'T' with
  | None -> false
  | Some i ->
      i = 10
      && valid_date (String.sub s 0 10)
      && valid_time (String.sub s (i + 1) (String.length s - i - 1))

let valid_lexical dt s =
  match dt with
  | String | Lang_string | Any_uri -> true
  | Boolean -> (
      match s with "true" | "false" | "1" | "0" -> true | _ -> false)
  | Decimal -> valid_decimal_lexical s
  | Integer -> valid_integer_lexical s
  | Long -> in_int_range s min_int max_int && valid_integer_lexical s
  | Int -> in_int_range s (-2147483648) 2147483647
  | Short -> in_int_range s (-32768) 32767
  | Byte -> in_int_range s (-128) 127
  | Non_negative_integer -> (
      valid_integer_lexical s
      && match parse_integer s with Some v -> v >= 0 | None -> s.[0] <> '-')
  | Positive_integer -> (
      valid_integer_lexical s
      && match parse_integer s with Some v -> v > 0 | None -> s.[0] <> '-')
  | Non_positive_integer -> (
      valid_integer_lexical s
      && match parse_integer s with Some v -> v <= 0 | None -> s.[0] = '-')
  | Negative_integer -> (
      valid_integer_lexical s
      && match parse_integer s with Some v -> v < 0 | None -> s.[0] = '-')
  | Unsigned_long -> valid_unsigned_long s
  | Unsigned_int -> in_int_range s 0 4294967295
  | Unsigned_short -> in_int_range s 0 65535
  | Unsigned_byte -> in_int_range s 0 255
  | Double | Float -> valid_double_lexical s
  | Date -> valid_date s
  | Date_time -> valid_date_time s
  | Time -> valid_time s

let is_numeric = function
  | Decimal | Integer | Long | Int | Short | Byte | Non_negative_integer
  | Positive_integer | Non_positive_integer | Negative_integer
  | Unsigned_long | Unsigned_int | Unsigned_short | Unsigned_byte | Double
  | Float ->
      true
  | String | Boolean | Date | Date_time | Time | Any_uri | Lang_string ->
      false

let derived_from_integer = function
  | Integer | Long | Int | Short | Byte | Non_negative_integer
  | Positive_integer | Non_positive_integer | Negative_integer
  | Unsigned_long | Unsigned_int | Unsigned_short | Unsigned_byte ->
      true
  | String | Boolean | Decimal | Double | Float | Date | Date_time | Time
  | Any_uri | Lang_string ->
      false

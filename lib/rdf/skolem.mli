(** Skolemization: replacing blank nodes by well-known IRIs.

    RDF 1.1 (§3.5) recommends replacing blank nodes with fresh
    "skolem" IRIs under the [.well-known/genid/] path when a document
    needs stable names.  The transformation preserves entailment in
    both directions for the well-known scheme. *)

val default_authority : string
(** ["https://shex-derivatives.example/.well-known/genid/"]. *)

val skolemize : ?authority:string -> Graph.t -> Graph.t
(** Replace every blank node [_:b] by [<authority ^ b>]. *)

val unskolemize : ?authority:string -> Graph.t -> Graph.t
(** Inverse: turn skolem IRIs under the authority back into blank
    nodes with the trailing label. *)

(** XML Schema datatypes used by RDF literals.

    The paper treats [xsd:integer] and [xsd:string] as subsets of the
    set of literals (§4, Example 6).  This module supplies the datatype
    IRIs of the XSD namespace together with lexical-space validation
    and value-space parsing for the datatypes that matter to
    validation: booleans, the integer hierarchy, decimals, floating
    point numbers, strings and dates. *)

(** The datatypes we recognise specially.  Every other datatype IRI is
    carried around opaquely by {!Literal}. *)
type primitive =
  | String
  | Boolean
  | Decimal
  | Integer
  | Long
  | Int
  | Short
  | Byte
  | Non_negative_integer
  | Positive_integer
  | Non_positive_integer
  | Negative_integer
  | Unsigned_long
  | Unsigned_int
  | Unsigned_short
  | Unsigned_byte
  | Double
  | Float
  | Date
  | Date_time
  | Time
  | Any_uri
  | Lang_string

val iri : primitive -> Iri.t
(** The full datatype IRI, e.g. [iri Integer] is
    [http://www.w3.org/2001/XMLSchema#integer].  [Lang_string] maps to
    the RDF namespace ([rdf:langString]). *)

val of_iri : Iri.t -> primitive option
(** Inverse of {!iri} for the recognised datatypes. *)

val name : primitive -> string
(** Local name, e.g. ["integer"]. *)

val valid_lexical : primitive -> string -> bool
(** [valid_lexical dt s] checks [s] against the lexical space of [dt]
    (e.g. ["+005"] is a valid [Integer], ["1.5"] is not). *)

val is_numeric : primitive -> bool
(** True for the decimal/integer/floating hierarchy. *)

val derived_from_integer : primitive -> bool
(** True for [Integer] and everything derived from it ([Int], [Byte],
    the unsigned types, …). *)

val parse_integer : string -> int option
(** Value-space parse of an integer lexical form (handles leading [+],
    leading zeros).  [None] when out of OCaml [int] range or invalid. *)

val parse_decimal : string -> float option
(** Value-space parse of decimal/double/float lexical forms, including
    [INF], [-INF] and [NaN] for the floating types. *)

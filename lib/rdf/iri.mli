(** Internationalized Resource Identifiers.

    IRIs are the primary naming mechanism of RDF.  This module keeps a
    deliberately light representation — a validated string — because RDF
    processing only ever needs syntactic identity, ordering, hashing,
    and resolution of relative references against a base (RFC 3986 §5,
    restricted to the cases that occur in Turtle documents). *)

type t
(** An absolute or relative IRI.  Values are immutable. *)

val of_string : string -> (t, string) result
(** [of_string s] validates [s] as an IRI reference: no characters
    forbidden by Turtle's [IRIREF] production (space, control
    characters, ["<>\"{}|^`\\"]).  Returns [Error msg] otherwise. *)

val of_string_exn : string -> t
(** Like {!of_string} but raises [Invalid_argument] on bad input.
    Intended for literal IRIs written in source code. *)

val to_string : t -> string
(** The textual form, exactly as supplied (after resolution, if any). *)

val is_absolute : t -> bool
(** An IRI is absolute when it starts with [scheme:] (RFC 3986 §4.3). *)

val scheme : t -> string option
(** [scheme iri] is [Some "http"] for [http://…], [None] for relative
    references. *)

val resolve : base:t -> t -> t
(** [resolve ~base ref_] resolves the possibly-relative [ref_] against
    [base] following the RFC 3986 §5.2 transformation (merge + dot
    segment removal).  If [ref_] is absolute it is returned unchanged
    apart from dot-segment normalisation. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints in N-Triples angle-bracket form: [<http://…>]. *)

val pp_plain : Format.formatter -> t -> unit
(** Prints the bare IRI text without brackets. *)

module Bnode_map = Map.Make (Bnode)

let bnodes_of g =
  let add t acc =
    match t with Term.Bnode b -> Bnode_map.add b () acc | _ -> acc
  in
  Graph.fold
    (fun tr acc -> acc |> add (Triple.subject tr) |> add (Triple.obj tr))
    g Bnode_map.empty
  |> Bnode_map.bindings |> List.map fst

let is_ground tr =
  (not (Term.is_bnode (Triple.subject tr)))
  && not (Term.is_bnode (Triple.obj tr))

(* Colour refinement with canonical string colours, so colours are
   comparable across the two graphs: every blank node starts with the
   same colour, and each round recolours it with a digest of its
   sorted incident-triple profile (direction, predicate, and the
   neighbour's colour or ground text).  [depth] rounds give
   discrimination up to radius [depth]; the final verification by
   substitution keeps the procedure exact regardless. *)
let refine ~depth g bnodes =
  let colour = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace colour b "") bnodes;
  let term_key t =
    match t with
    | Term.Bnode b -> "b:" ^ Hashtbl.find colour b
    | t -> "g:" ^ Term.to_string t
  in
  let signature b =
    Graph.fold
      (fun tr acc ->
        let s = Triple.subject tr and o = Triple.obj tr in
        let p = Iri.to_string (Triple.predicate tr) in
        let acc =
          if Term.equal s (Term.Bnode b) then
            ("out|" ^ p ^ "|" ^ term_key o) :: acc
          else acc
        in
        if Term.equal o (Term.Bnode b) then
          ("in|" ^ p ^ "|" ^ term_key s) :: acc
        else acc)
      g []
    |> List.sort String.compare |> String.concat ";"
  in
  for _ = 1 to depth do
    let next = List.map (fun b -> (b, Digest.string (signature b))) bnodes in
    List.iter (fun (b, c) -> Hashtbl.replace colour b c) next
  done;
  fun b -> Hashtbl.find colour b

let substitute mapping g =
  let subst = function
    | Term.Bnode b as t -> (
        match Bnode_map.find_opt b mapping with
        | Some b' -> Term.Bnode b'
        | None -> t)
    | t -> t
  in
  Graph.fold
    (fun tr acc ->
      match
        Triple.make_opt (subst (Triple.subject tr)) (Triple.predicate tr)
          (subst (Triple.obj tr))
      with
      | Some tr' -> Graph.add tr' acc
      | None -> acc)
    g Graph.empty

let find_mapping g1 g2 =
  if Graph.cardinal g1 <> Graph.cardinal g2 then None
  else if
    not (Graph.equal (Graph.filter is_ground g1) (Graph.filter is_ground g2))
  then None
  else
    let b1 = bnodes_of g1 and b2 = bnodes_of g2 in
    if List.length b1 <> List.length b2 then None
    else
      let depth = min 4 (1 + List.length b1) in
      let c1 = refine ~depth g1 b1 and c2 = refine ~depth g2 b2 in
      (* The colour multisets must agree. *)
      let colours bs c = List.sort String.compare (List.map c bs) in
      if colours b1 c1 <> colours b2 c2 then None
      else
        (* Backtracking within colour classes; complete assignments
           verified by substitution. *)
        let rec assign pending used mapping =
          match pending with
          | [] ->
              if Graph.equal (substitute mapping g1) g2 then Some mapping
              else None
          | b :: rest ->
              let colour_b = c1 b in
              let rec try_candidates = function
                | [] -> None
                | cand :: more ->
                    if
                      String.equal (c2 cand) colour_b
                      && not (List.exists (Bnode.equal cand) used)
                    then
                      match
                        assign rest (cand :: used)
                          (Bnode_map.add b cand mapping)
                      with
                      | Some m -> Some m
                      | None -> try_candidates more
                    else try_candidates more
              in
              try_candidates b2
        in
        (* Small colour classes first, to fail fast. *)
        let class_size =
          let counts = Hashtbl.create 16 in
          List.iter
            (fun b ->
              let c = c1 b in
              Hashtbl.replace counts c
                (1 + Option.value (Hashtbl.find_opt counts c) ~default:0))
            b1;
          fun b -> Hashtbl.find counts (c1 b)
        in
        let ordered =
          List.sort (fun a b -> Int.compare (class_size a) (class_size b)) b1
        in
        match assign ordered [] Bnode_map.empty with
        | Some mapping -> Some (Bnode_map.bindings mapping)
        | None -> None

let isomorphic g1 g2 = find_mapping g1 g2 <> None

let refine_colours g =
  let bnodes = bnodes_of g in
  let c = refine ~depth:(min 4 (1 + List.length bnodes)) g bnodes in
  List.map (fun b -> (b, c b)) bnodes

(** Prefix management and well-known vocabularies.

    Turtle documents and ShExC schemas abbreviate IRIs as prefixed
    names ([foaf:age]).  A {!t} maps prefixes to namespace IRIs and can
    expand prefixed names or shrink full IRIs back for printing. *)

type t

val empty : t

val add : string -> string -> t -> t
(** [add prefix namespace t] binds [prefix] (without the colon) to the
    namespace IRI text.  Rebinding replaces the old binding, as a later
    [@prefix] directive does in Turtle. *)

val find : string -> t -> string option
(** Namespace bound to a prefix, if any. *)

val expand : t -> string -> (Iri.t, string) result
(** [expand t "foaf:age"] splits at the first colon, looks the prefix
    up and concatenates the local part.  Errors on unbound prefixes or
    a missing colon. *)

val shrink : t -> Iri.t -> string option
(** [shrink t iri] finds the longest bound namespace that prefixes
    [iri] and renders it as [prefix:local], provided the local part is
    a safe PN_LOCAL (letters, digits, [_], [-], [.] not at the ends). *)

val bindings : t -> (string * string) list
(** All (prefix, namespace) pairs, sorted by prefix. *)

val default : t
(** Bindings for [rdf], [rdfs], [xsd], [owl], [foaf], [schema], [ex]
    and the empty prefix (bound to [http://example.org/]). *)

(** Full IRIs of the vocabularies used throughout the library and the
    paper's examples. *)
module Vocab : sig
  val rdf : string -> Iri.t      (** e.g. [rdf "type"] *)

  val rdfs : string -> Iri.t
  val xsd : string -> Iri.t
  val foaf : string -> Iri.t
  val ex : string -> Iri.t       (** [http://example.org/…] *)

  val rdf_type : Iri.t
  val rdf_first : Iri.t
  val rdf_rest : Iri.t
  val rdf_nil : Iri.t
end

(** Columnar int-triple graph store.

    The raw-speed backing representation behind the structural
    {!Graph.t} façade: every term is interned to a dense int id
    ({!Interner}), and the triples live in three parallel int columns
    sorted in SPO order, plus POS and OSP permutations.  Subject
    neighbourhoods (the paper's Σgn), incoming-arc lookups and
    per-predicate scans are binary-searched contiguous slices instead
    of balanced-tree walks.

    Ids are canonical — assigned in {!Term.compare} order at
    {!freeze} time — so int order {e is} term order and every slice
    comes back in exactly the order the structural indexes produce:
    {!out_triples} agrees triple-for-triple with
    [Graph.to_list (Graph.neighbourhood n g)], {!in_triples} with
    [Graph.to_list (Graph.triples_with_object n g)].  That ordering
    guarantee is what makes reports, explanations and traces
    byte-identical whichever representation a session validates
    against.

    A frozen store is immutable and safe to share across domains:
    lookups touch only immutable arrays and a read-only hash table. *)

type t

(** {1 Building} *)

type builder

val builder : ?terms:int -> ?triples:int -> unit -> builder
(** Fresh builder; the optional arguments are capacity hints. *)

val add : builder -> Term.t -> Iri.t -> Term.t -> unit
(** Append one triple, interning its terms.  Duplicate triples
    collapse at {!freeze} (a graph is a set).  Raises
    [Invalid_argument] on a literal subject. *)

val add_triple : builder -> Triple.t -> unit

val triples_added : builder -> int
(** Triples appended so far (duplicates still counted). *)

val freeze : builder -> t
(** Compact ids into canonical term order, sort and dedup the
    columns, build the POS/OSP permutations.  The builder must not be
    used afterwards. *)

val of_graph : Graph.t -> t
val to_graph : t -> Graph.t
(** Round-trip to the structural representation.  [to_graph (of_graph
    g)] is {!Graph.equal} to [g]. *)

(** {1 Reading} *)

val cardinal : t -> int
(** Number of (distinct) triples. *)

val terms_cardinal : t -> int
(** Number of distinct interned terms. *)

val interner : t -> Interner.t
(** The canonical (term-ordered) id table. *)

val id : t -> Term.t -> int option
val term : t -> int -> Term.t

val out_triples : t -> Term.t -> Triple.t list
(** Σgn: triples with the given subject, in {!Triple.compare} order. *)

val in_triples : t -> Term.t -> Triple.t list
(** Triples with the given object, in {!Triple.compare} order. *)

val triples_with_predicate : t -> Iri.t -> Triple.t list
(** Triples with the given predicate, in {!Triple.compare} order. *)

val out_degree : t -> Term.t -> int
val in_degree : t -> Term.t -> int

val nodes : t -> Term.t list
(** Distinct subjects and objects, in term order — agrees with
    {!Graph.nodes}. *)

val iter : (Triple.t -> unit) -> t -> unit
val fold : (Triple.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Triples in {!Triple.compare} order, like the structural folds. *)

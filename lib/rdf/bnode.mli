(** Blank nodes.

    A blank node is an existential: it has document-scoped identity but
    no global name.  We represent it by its label.  Graph {e union}
    (the operation the paper uses, §2) preserves blank node identity
    across graphs, so equal labels denote the same node. *)

type t

val of_string : string -> t
(** [of_string "b0"] is the blank node labelled [_:b0]. *)

val label : t -> string

val fresh : unit -> t
(** A process-unique generated blank node ([_:genN]).  Used by the
    Turtle parser for anonymous nodes. *)

val reset_fresh_counter : unit -> unit
(** Restart the {!fresh} counter at 0.  Only for deterministic tests. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints [_:label]. *)

let default_authority = "https://shex-derivatives.example/.well-known/genid/"

let map_terms f g =
  Graph.fold
    (fun tr acc ->
      match
        Triple.make_opt (f (Triple.subject tr)) (Triple.predicate tr)
          (f (Triple.obj tr))
      with
      | Some tr' -> Graph.add tr' acc
      | None -> acc)
    g Graph.empty

let skolemize ?(authority = default_authority) g =
  let f = function
    | Term.Bnode b -> Term.Iri (Iri.of_string_exn (authority ^ Bnode.label b))
    | t -> t
  in
  map_terms f g

let unskolemize ?(authority = default_authority) g =
  let n = String.length authority in
  let f = function
    | Term.Iri iri as t ->
        let s = Iri.to_string iri in
        if String.length s > n && String.sub s 0 n = authority then
          Term.Bnode (Bnode.of_string (String.sub s n (String.length s - n)))
        else t
    | t -> t
  in
  map_terms f g

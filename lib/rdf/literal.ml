type t = {
  lexical : string;
  datatype : Iri.t;
  lang : string option; (* lowercased; implies datatype = rdf:langString *)
}

let xsd_string = Xsd.iri Xsd.String
let rdf_lang_string = Xsd.iri Xsd.Lang_string

let make ?lang ?datatype lexical =
  match lang with
  | Some tag ->
      { lexical; datatype = rdf_lang_string;
        lang = Some (String.lowercase_ascii tag) }
  | None ->
      let datatype = Option.value datatype ~default:xsd_string in
      { lexical; datatype; lang = None }

let string s = make s
let typed dt lexical = make ~datatype:(Xsd.iri dt) lexical
let integer n = typed Xsd.Integer (string_of_int n)

let decimal f =
  (* %.17g keeps round-trip precision; strip a trailing '.' to stay in
     the xsd:decimal lexical space. *)
  let s = Printf.sprintf "%.17g" f in
  let s = if String.contains s '.' || String.contains s 'e'
             || String.contains s 'n' || String.contains s 'i'
          then s else s ^ ".0" in
  typed Xsd.Double s

let boolean b = typed Xsd.Boolean (if b then "true" else "false")
let lexical t = t.lexical
let datatype t = t.datatype
let lang t = t.lang
let xsd_primitive t = Xsd.of_iri t.datatype

let well_formed t =
  match xsd_primitive t with
  | Some dt -> Xsd.valid_lexical dt t.lexical
  | None -> true

let has_datatype t dt =
  Iri.equal t.datatype (Xsd.iri dt) && Xsd.valid_lexical dt t.lexical

let as_int t =
  match xsd_primitive t with
  | Some dt when Xsd.derived_from_integer dt -> Xsd.parse_integer t.lexical
  | Some _ | None -> None

let as_float t =
  match xsd_primitive t with
  | Some dt when Xsd.is_numeric dt -> Xsd.parse_decimal t.lexical
  | Some _ | None -> None

let as_bool t =
  match xsd_primitive t with
  | Some Xsd.Boolean -> (
      match t.lexical with
      | "true" | "1" -> Some true
      | "false" | "0" -> Some false
      | _ -> None)
  | Some _ | None -> None

let equal a b =
  String.equal a.lexical b.lexical
  && Iri.equal a.datatype b.datatype
  && Option.equal String.equal a.lang b.lang

let compare a b =
  let c = String.compare a.lexical b.lexical in
  if c <> 0 then c
  else
    let c = Iri.compare a.datatype b.datatype in
    if c <> 0 then c else Option.compare String.compare a.lang b.lang

(* Component hashes mixed arithmetically: the old version allocated a
   tuple (and a fresh datatype string) per call just to re-hash it. *)
let hash t =
  let h = Hashtbl.hash t.lexical in
  let h = ((h * 0x1000193) lxor Iri.hash t.datatype) land max_int in
  match t.lang with
  | None -> h
  | Some lang -> ((h * 0x1000193) lxor Hashtbl.hash lang) land max_int

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp ppf t =
  match t.lang with
  | Some tag -> Format.fprintf ppf "\"%s\"@@%s" (escape_string t.lexical) tag
  | None ->
      if Iri.equal t.datatype xsd_string then
        Format.fprintf ppf "\"%s\"" (escape_string t.lexical)
      else
        Format.fprintf ppf "\"%s\"^^%a" (escape_string t.lexical) Iri.pp
          t.datatype

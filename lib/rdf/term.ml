type t =
  | Iri of Iri.t
  | Bnode of Bnode.t
  | Literal of Literal.t

let iri s = Iri (Iri.of_string_exn s)
let bnode s = Bnode (Bnode.of_string s)
let str s = Literal (Literal.string s)
let int n = Literal (Literal.integer n)
let is_iri = function Iri _ -> true | Bnode _ | Literal _ -> false
let is_bnode = function Bnode _ -> true | Iri _ | Literal _ -> false
let is_literal = function Literal _ -> true | Iri _ | Bnode _ -> false

let subject_ok = function
  | Iri _ | Bnode _ -> true
  | Literal _ -> false

let predicate_ok = function Iri _ -> true | Bnode _ | Literal _ -> false
let as_iri = function Iri i -> Some i | Bnode _ | Literal _ -> None

let as_literal = function
  | Literal l -> Some l
  | Iri _ | Bnode _ -> None

let equal a b =
  match (a, b) with
  | Iri x, Iri y -> Iri.equal x y
  | Bnode x, Bnode y -> Bnode.equal x y
  | Literal x, Literal y -> Literal.equal x y
  | (Iri _ | Bnode _ | Literal _), _ -> false

(* Two numeric literals compare in the value space ("01"^^xsd:integer
   equals "1"^^xsd:integer); everything else falls back to term
   equality — exactly the relation SPARQL's [=] decides on RDF terms,
   with booleans (no [as_float] view) staying syntactic either way. *)
let value_equal a b =
  match (a, b) with
  | Literal x, Literal y -> (
      match (Literal.as_float x, Literal.as_float y) with
      | Some fx, Some fy -> Float.equal fx fy
      | (Some _ | None), _ -> Literal.equal x y)
  | (Iri _ | Bnode _ | Literal _), _ -> equal a b

(* IRIs < blank nodes < literals, then the component order. *)
let compare a b =
  let rank = function Iri _ -> 0 | Bnode _ -> 1 | Literal _ -> 2 in
  match (a, b) with
  | Iri x, Iri y -> Iri.compare x y
  | Bnode x, Bnode y -> Bnode.compare x y
  | Literal x, Literal y -> Literal.compare x y
  | _ -> Int.compare (rank a) (rank b)

(* Mix the constructor tag into the component hash arithmetically: no
   tuple allocation, no second [Hashtbl.hash] pass over an already
   mixed value.  This sits on the memo/DFA hot path. *)
let hash = function
  | Iri i -> (Iri.hash i * 0x1000193) land max_int
  | Bnode b -> ((Bnode.hash b * 0x1000193) + 1) land max_int
  | Literal l -> ((Literal.hash l * 0x1000193) + 2) land max_int

let pp ppf = function
  | Iri i -> Iri.pp ppf i
  | Bnode b -> Bnode.pp ppf b
  | Literal l -> Literal.pp ppf l

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

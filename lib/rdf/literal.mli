(** RDF literals: a lexical form plus a datatype IRI, and optionally a
    language tag (in which case the datatype is [rdf:langString]). *)

type t

val make : ?lang:string -> ?datatype:Iri.t -> string -> t
(** [make lexical] builds a plain [xsd:string] literal.  Supplying
    [~lang] forces the datatype to [rdf:langString]; supplying
    [~datatype] (and no [~lang]) attaches that datatype.  The lexical
    form is stored verbatim — no value-space canonicalisation. *)

val string : string -> t
(** [string s] is [make s]: a plain string literal. *)

val typed : Xsd.primitive -> string -> t
(** [typed dt lexical] builds a literal with a recognised XSD
    datatype.  The lexical form is not checked here; use
    {!well_formed} to check it. *)

val integer : int -> t
(** [integer 23] is ["23"^^xsd:integer]. *)

val decimal : float -> t
val boolean : bool -> t

val lexical : t -> string
val datatype : t -> Iri.t
val lang : t -> string option

val xsd_primitive : t -> Xsd.primitive option
(** The recognised XSD datatype, when the datatype IRI is one. *)

val well_formed : t -> bool
(** Whether the lexical form belongs to the lexical space of the
    literal's datatype.  Literals with unrecognised datatypes are
    considered well formed (we cannot judge them). *)

val has_datatype : t -> Xsd.primitive -> bool
(** [has_datatype l dt] holds when [l]'s datatype is exactly [dt]'s
    IRI {e and} the lexical form is valid for [dt].  This is the
    membership test the paper uses when it treats [xsd:integer] as a
    subset of the literals. *)

val as_int : t -> int option
(** Value-space view for integer-derived literals. *)

val as_float : t -> float option
(** Value-space view for any numeric literal. *)

val as_bool : t -> bool option

val equal : t -> t -> bool
(** Term equality per RDF 1.1: same lexical form, same datatype, same
    language tag (compared case-insensitively). *)

val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Turtle form: ["foo"], ["foo"@en], ["23"^^<…#integer>]. *)

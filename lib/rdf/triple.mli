(** RDF triples ⟨s, p, o⟩ with the positional constraints of §2:
    s ∈ Vs = I ∪ B, p ∈ Vp = I, o ∈ Vo = I ∪ B ∪ L. *)

type t = private { s : Term.t; p : Iri.t; o : Term.t }

val make : Term.t -> Iri.t -> Term.t -> t
(** [make s p o].  Raises [Invalid_argument] if [s] is a literal. *)

val make_opt : Term.t -> Iri.t -> Term.t -> t option
(** Like {!make} but returns [None] instead of raising. *)

val subject : t -> Term.t
val predicate : t -> Iri.t
val obj : t -> Term.t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints [⟨s, p, o⟩]-style: [<s> <p> <o> .] *)

module Ord : sig
  type nonrec t = t

  val compare : t -> t -> int
end

module Set : Set.S with type elt = t

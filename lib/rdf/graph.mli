(** RDF graphs: finite sets of triples with subject/object indexes.

    This is the paper's Σ (§2).  The operations mirror the paper's
    notation: [add] is the [t o ts] triple addition, {!union} is [⊕]
    (identity-preserving union, not merge), {!neighbourhood} is [Σgn]
    (all triples with subject [n]) and {!decompositions} enumerates the
    2ⁿ ordered pairs [(g₁, g₂)] with [g₁ ⊕ g₂ = g] that the
    backtracking matcher of Fig. 1 explores (Example 3).

    Graphs are immutable; every operation returns a new graph sharing
    structure with the old one. *)

type t

val empty : t
val is_empty : t -> bool

val cardinal : t -> int
(** Number of triples. *)

val mem : Triple.t -> t -> bool
val add : Triple.t -> t -> t
val remove : Triple.t -> t -> t
val singleton : Triple.t -> t
val of_list : Triple.t list -> t
val to_list : t -> Triple.t list
(** Triples in increasing {!Triple.compare} order. *)

val of_set : Triple.Set.t -> t
(** Bulk constructor: both secondary indexes are built in one ordered
    pass over the set (plus one auxiliary sort for the object index)
    instead of per-triple [add]s. *)

val of_seq : Triple.t Seq.t -> t
val to_set : t -> Triple.Set.t

val union : t -> t -> t
(** [⊕]: set union preserving blank node identity. *)

val diff : t -> t -> t
val inter : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool

val fold : (Triple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Triple.t -> unit) -> t -> unit
val for_all : (Triple.t -> bool) -> t -> bool
val exists : (Triple.t -> bool) -> t -> bool
val filter : (Triple.t -> bool) -> t -> t
val choose_opt : t -> Triple.t option
(** Smallest triple, if any — the deterministic "consume one triple"
    choice used by the derivative matcher. *)

val neighbourhood : Term.t -> t -> t
(** [neighbourhood n g] is Σgn: the triples of [g] whose subject is
    [n].  O(log |g|) lookup thanks to the subject index. *)

val triples_with_object : Term.t -> t -> t
(** Incoming arcs — used by the inverse-arc extension. *)

val objects_of : Term.t -> Iri.t -> t -> Term.t list
(** [objects_of s p g] lists the [o] with ⟨s,p,o⟩ ∈ g, in term order. *)

val subjects : t -> Term.t list
(** Distinct subjects, in term order. *)

val predicates : t -> Iri.t list
(** Distinct predicates, in term order. *)

val nodes : t -> Term.t list
(** Distinct subjects and objects, in term order. *)

val match_pattern :
  ?s:Term.t -> ?p:Iri.t -> ?o:Term.t -> t -> Triple.t list
(** Triples matching the bound components of the pattern; unbound
    components act as wildcards.  Uses an index when [s] or [o] is
    bound. *)

val decompositions : t -> (t * t) list
(** All ordered pairs [(g₁, g₂)] with [g₁ ⊕ g₂ = g] and [g₁ ∩ g₂ = ∅].
    There are 2ⁿ of them for a graph of n triples (Example 3) — this
    exists only to implement the naïve backtracking baseline; do not
    call it on large graphs. *)

val pp : Format.formatter -> t -> unit
(** One N-Triples-style line per triple. *)

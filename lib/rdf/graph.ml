type t = {
  triples : Triple.Set.t;
  by_subject : Triple.Set.t Term.Map.t;
  by_object : Triple.Set.t Term.Map.t;
}

let empty =
  { triples = Triple.Set.empty;
    by_subject = Term.Map.empty;
    by_object = Term.Map.empty }

let is_empty g = Triple.Set.is_empty g.triples
let cardinal g = Triple.Set.cardinal g.triples
let mem tr g = Triple.Set.mem tr g.triples

let index_add key tr index =
  Term.Map.update key
    (function
      | None -> Some (Triple.Set.singleton tr)
      | Some set -> Some (Triple.Set.add tr set))
    index

let index_remove key tr index =
  Term.Map.update key
    (function
      | None -> None
      | Some set ->
          let set = Triple.Set.remove tr set in
          if Triple.Set.is_empty set then None else Some set)
    index

let add tr g =
  if mem tr g then g
  else
    { triples = Triple.Set.add tr g.triples;
      by_subject = index_add (Triple.subject tr) tr g.by_subject;
      by_object = index_add (Triple.obj tr) tr g.by_object }

let remove tr g =
  if not (mem tr g) then g
  else
    { triples = Triple.Set.remove tr g.triples;
      by_subject = index_remove (Triple.subject tr) tr g.by_subject;
      by_object = index_remove (Triple.obj tr) tr g.by_object }

let singleton tr = add tr empty
let to_list g = Triple.Set.elements g.triples
let to_set g = g.triples

(* Bulk (re)indexing: build both secondary indexes in one ordered pass
   over an already-constructed triple set, instead of one [add] — two
   O(log n) map updates plus set rebalancing — per triple.  The
   subject index falls out of set order directly (runs of equal
   subjects are contiguous, and each run is already sorted); the
   object index needs one auxiliary sort. *)
let of_set set =
  if Triple.Set.is_empty set then empty
  else begin
    let n = Triple.Set.cardinal set in
    let arr = Array.make n (Triple.Set.min_elt set) in
    let i = ref 0 in
    Triple.Set.iter
      (fun tr ->
        arr.(!i) <- tr;
        incr i)
      set;
    (* Group a key-sorted array into key -> set-of-run.  Keys arrive in
       ascending order, and each run is itself Triple.compare-sorted,
       so both the map and the per-key sets build without churn. *)
    let group key arr =
      let m = ref Term.Map.empty in
      let start = ref 0 in
      for j = 1 to n do
        if j = n || not (Term.equal (key arr.(j)) (key arr.(!start))) then begin
          let run = ref Triple.Set.empty in
          for k = j - 1 downto !start do
            run := Triple.Set.add arr.(k) !run
          done;
          m := Term.Map.add (key arr.(!start)) !run !m;
          start := j
        end
      done;
      !m
    in
    (* [arr] is in set (SPO) order already: subject runs are contiguous. *)
    let by_subject = group Triple.subject arr in
    let arr_o = Array.copy arr in
    Array.sort
      (fun a b ->
        let c = Term.compare (Triple.obj a) (Triple.obj b) in
        if c <> 0 then c else Triple.compare a b)
      arr_o;
    let by_object = group Triple.obj arr_o in
    { triples = set; by_subject; by_object }
  end

let of_list trs = of_set (Triple.Set.of_list trs)
let of_seq seq = of_set (Triple.Set.of_seq seq)

(* Set operations route through {!of_set} — one bulk reindex of the
   result — unless one side is a small delta of the other, where
   incremental index edits win.  The oracle shrinker and the workload
   generator hit these on every candidate graph. *)
let small_delta d g = 8 * cardinal d <= cardinal g

let union g1 g2 =
  let small, large = if cardinal g1 >= cardinal g2 then (g2, g1) else (g1, g2) in
  if small_delta small large then Triple.Set.fold add small.triples large
  else of_set (Triple.Set.union g1.triples g2.triples)

let diff g1 g2 =
  if small_delta g2 g1 then Triple.Set.fold remove g2.triples g1
  else of_set (Triple.Set.diff g1.triples g2.triples)

let inter g1 g2 = of_set (Triple.Set.inter g1.triples g2.triples)

let subset g1 g2 = Triple.Set.subset g1.triples g2.triples
let equal g1 g2 = Triple.Set.equal g1.triples g2.triples
let fold f g acc = Triple.Set.fold f g.triples acc
let iter f g = Triple.Set.iter f g.triples
let for_all f g = Triple.Set.for_all f g.triples
let exists f g = Triple.Set.exists f g.triples

let filter f g = of_set (Triple.Set.filter f g.triples)

let choose_opt g = Triple.Set.min_elt_opt g.triples

let index_find key index =
  match Term.Map.find_opt key index with
  | None -> Triple.Set.empty
  | Some set -> set

let neighbourhood n g = of_set (index_find n g.by_subject)
let triples_with_object o g = of_set (index_find o g.by_object)

let objects_of s p g =
  index_find s g.by_subject
  |> Triple.Set.elements
  |> List.filter_map (fun tr ->
         if Iri.equal (Triple.predicate tr) p then Some (Triple.obj tr)
         else None)

let subjects g =
  Term.Map.fold (fun s _ acc -> s :: acc) g.by_subject [] |> List.rev

let predicates g =
  let module Iri_set = Set.Make (Iri) in
  Triple.Set.fold
    (fun tr acc -> Iri_set.add (Triple.predicate tr) acc)
    g.triples Iri_set.empty
  |> Iri_set.elements

let nodes g =
  let add_node t acc = Term.Set.add t acc in
  Triple.Set.fold
    (fun tr acc ->
      acc |> add_node (Triple.subject tr) |> add_node (Triple.obj tr))
    g.triples Term.Set.empty
  |> Term.Set.elements

let match_pattern ?s ?p ?o g =
  let candidates =
    match (s, o) with
    | Some s, _ -> index_find s g.by_subject
    | None, Some o -> index_find o g.by_object
    | None, None -> g.triples
  in
  let keep tr =
    (match s with None -> true | Some s -> Term.equal (Triple.subject tr) s)
    && (match p with
       | None -> true
       | Some p -> Iri.equal (Triple.predicate tr) p)
    && match o with None -> true | Some o -> Term.equal (Triple.obj tr) o
  in
  Triple.Set.elements (Triple.Set.filter keep candidates)

let decompositions g =
  (* Example 3: pair every subset with its complement, ({}, g) first.
     Deliberately the naïve powerset enumeration — this is the
     baseline's cost. *)
  let rec go = function
    | [] -> [ (empty, empty) ]
    | tr :: rest ->
        let sub = go rest in
        List.concat_map
          (fun (g1, g2) -> [ (g1, add tr g2); (add tr g1, g2) ])
          sub
  in
  go (to_list g)

let pp ppf g =
  Format.pp_open_vbox ppf 0;
  let first = ref true in
  iter
    (fun tr ->
      if !first then first := false else Format.pp_print_cut ppf ();
      Triple.pp ppf tr)
    g;
  Format.pp_close_box ppf ()

type t = {
  triples : Triple.Set.t;
  by_subject : Triple.Set.t Term.Map.t;
  by_object : Triple.Set.t Term.Map.t;
}

let empty =
  { triples = Triple.Set.empty;
    by_subject = Term.Map.empty;
    by_object = Term.Map.empty }

let is_empty g = Triple.Set.is_empty g.triples
let cardinal g = Triple.Set.cardinal g.triples
let mem tr g = Triple.Set.mem tr g.triples

let index_add key tr index =
  Term.Map.update key
    (function
      | None -> Some (Triple.Set.singleton tr)
      | Some set -> Some (Triple.Set.add tr set))
    index

let index_remove key tr index =
  Term.Map.update key
    (function
      | None -> None
      | Some set ->
          let set = Triple.Set.remove tr set in
          if Triple.Set.is_empty set then None else Some set)
    index

let add tr g =
  if mem tr g then g
  else
    { triples = Triple.Set.add tr g.triples;
      by_subject = index_add (Triple.subject tr) tr g.by_subject;
      by_object = index_add (Triple.obj tr) tr g.by_object }

let remove tr g =
  if not (mem tr g) then g
  else
    { triples = Triple.Set.remove tr g.triples;
      by_subject = index_remove (Triple.subject tr) tr g.by_subject;
      by_object = index_remove (Triple.obj tr) tr g.by_object }

let singleton tr = add tr empty
let of_list trs = List.fold_left (fun g tr -> add tr g) empty trs
let to_list g = Triple.Set.elements g.triples
let of_set set = Triple.Set.fold add set empty
let to_set g = g.triples

let union g1 g2 =
  (* Fold the smaller graph into the larger one. *)
  if cardinal g1 >= cardinal g2 then Triple.Set.fold add g2.triples g1
  else Triple.Set.fold add g1.triples g2

let diff g1 g2 = Triple.Set.fold remove g2.triples g1

let inter g1 g2 =
  let small, large = if cardinal g1 <= cardinal g2 then (g1, g2) else (g2, g1) in
  Triple.Set.fold
    (fun tr acc -> if mem tr large then add tr acc else acc)
    small.triples empty

let subset g1 g2 = Triple.Set.subset g1.triples g2.triples
let equal g1 g2 = Triple.Set.equal g1.triples g2.triples
let fold f g acc = Triple.Set.fold f g.triples acc
let iter f g = Triple.Set.iter f g.triples
let for_all f g = Triple.Set.for_all f g.triples
let exists f g = Triple.Set.exists f g.triples

let filter f g =
  Triple.Set.fold (fun tr acc -> if f tr then add tr acc else acc) g.triples
    empty

let choose_opt g = Triple.Set.min_elt_opt g.triples

let index_find key index =
  match Term.Map.find_opt key index with
  | None -> Triple.Set.empty
  | Some set -> set

let neighbourhood n g = of_set (index_find n g.by_subject)
let triples_with_object o g = of_set (index_find o g.by_object)

let objects_of s p g =
  index_find s g.by_subject
  |> Triple.Set.elements
  |> List.filter_map (fun tr ->
         if Iri.equal (Triple.predicate tr) p then Some (Triple.obj tr)
         else None)

let subjects g =
  Term.Map.fold (fun s _ acc -> s :: acc) g.by_subject [] |> List.rev

let predicates g =
  let module Iri_set = Set.Make (Iri) in
  Triple.Set.fold
    (fun tr acc -> Iri_set.add (Triple.predicate tr) acc)
    g.triples Iri_set.empty
  |> Iri_set.elements

let nodes g =
  let add_node t acc = Term.Set.add t acc in
  Triple.Set.fold
    (fun tr acc ->
      acc |> add_node (Triple.subject tr) |> add_node (Triple.obj tr))
    g.triples Term.Set.empty
  |> Term.Set.elements

let match_pattern ?s ?p ?o g =
  let candidates =
    match (s, o) with
    | Some s, _ -> index_find s g.by_subject
    | None, Some o -> index_find o g.by_object
    | None, None -> g.triples
  in
  let keep tr =
    (match s with None -> true | Some s -> Term.equal (Triple.subject tr) s)
    && (match p with
       | None -> true
       | Some p -> Iri.equal (Triple.predicate tr) p)
    && match o with None -> true | Some o -> Term.equal (Triple.obj tr) o
  in
  Triple.Set.elements (Triple.Set.filter keep candidates)

let decompositions g =
  (* Example 3: pair every subset with its complement, ({}, g) first.
     Deliberately the naïve powerset enumeration — this is the
     baseline's cost. *)
  let rec go = function
    | [] -> [ (empty, empty) ]
    | tr :: rest ->
        let sub = go rest in
        List.concat_map
          (fun (g1, g2) -> [ (g1, add tr g2); (add tr g1, g2) ])
          sub
  in
  go (to_list g)

let pp ppf g =
  Format.pp_open_vbox ppf 0;
  let first = ref true in
  iter
    (fun tr ->
      if !first then first := false else Format.pp_print_cut ppf ();
      Triple.pp ppf tr)
    g;
  Format.pp_close_box ppf ()

(** RDF graph isomorphism.

    Two RDF graphs are isomorphic when some bijection between their
    blank nodes maps one onto the other (RDF 1.1 Semantics).  Ground
    terms (IRIs, literals) must match exactly.

    The implementation runs colour refinement over the blank nodes
    (signatures built from incident predicates, directions, and
    neighbour colours) and then searches for a bijection within each
    colour class, verifying the candidate by substitution.  It is
    exact; the search is exponential only in the size of the largest
    class of indistinguishable blank nodes, which is tiny for real
    graphs. *)

val isomorphic : Graph.t -> Graph.t -> bool

val find_mapping : Graph.t -> Graph.t -> (Bnode.t * Bnode.t) list option
(** A witnessing bijection (pairs of blank nodes, first graph →
    second), or [None] when the graphs are not isomorphic. *)

val refine_colours : Graph.t -> (Bnode.t * string) list
(** The colour-refinement signatures of the graph's blank nodes
    (canonical across graphs — equal colours mean indistinguishable up
    to the refinement radius).  Exposed for {!Canonical}. *)

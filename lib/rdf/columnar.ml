type t = {
  ids : Interner.t;  (* canonical: id order = Term.compare order *)
  n : int;  (* distinct triples *)
  (* Parallel columns sorted lexicographically by (s, p, o). *)
  spo_s : int array;
  spo_p : int array;
  spo_o : int array;
  (* Row permutations of the SPO columns: pos_row sorted by (p, s, o),
     osp_row by (o, s, p).  Permutations instead of copied columns:
     the indirection costs one load per probe and saves 6n words. *)
  pos_row : int array;
  osp_row : int array;
}

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

type builder = {
  interner : Interner.t;  (* provisional ids, in arrival order *)
  mutable bs : int array;
  mutable bp : int array;
  mutable bo : int array;
  mutable blen : int;
}

let builder ?(terms = 1024) ?(triples = 4096) () =
  let triples = max 16 triples in
  { interner = Interner.create ~capacity:terms ();
    bs = Array.make triples 0;
    bp = Array.make triples 0;
    bo = Array.make triples 0;
    blen = 0 }

let push b =
  if b.blen >= Array.length b.bs then begin
    let cap' = 2 * Array.length b.bs in
    let extend a =
      let a' = Array.make cap' 0 in
      Array.blit a 0 a' 0 b.blen;
      a'
    in
    b.bs <- extend b.bs;
    b.bp <- extend b.bp;
    b.bo <- extend b.bo
  end

let add b s p o =
  if not (Term.subject_ok s) then
    invalid_arg
      (Format.asprintf "Columnar.add: literal in subject position: %a" Term.pp
         s);
  push b;
  let i = b.blen in
  b.bs.(i) <- Interner.intern b.interner s;
  b.bp.(i) <- Interner.intern b.interner (Term.Iri p);
  b.bo.(i) <- Interner.intern b.interner o;
  b.blen <- i + 1

let add_triple b tr =
  add b (Triple.subject tr) (Triple.predicate tr) (Triple.obj tr)

let triples_added b = b.blen

(* Sort row indexes by a (row -> key triple) projection. *)
let sort_rows rows k1 k2 k3 =
  Array.sort
    (fun a b ->
      let c = Int.compare (k1 a) (k1 b) in
      if c <> 0 then c
      else
        let c = Int.compare (k2 a) (k2 b) in
        if c <> 0 then c else Int.compare (k3 a) (k3 b))
    rows

(* Up to 2^21 distinct terms (≫ any portal we load today), a whole
   (x, y, z) id triple packs into one 63-bit int, turning the freeze
   sorts into flat int-array sorts — no closure dispatch, no
   second/third key probes, and adjacent-dedup is [<>] on ints.  The
   generic 3-key path stays as the fallback past that bound. *)
let pack_bits = 21
let packable ids = Interner.cardinal ids < 1 lsl pack_bits

let pack x y z = (((x lsl pack_bits) lor y) lsl pack_bits) lor z
let unpack_hi k = k lsr (2 * pack_bits)
let unpack_mid k = (k lsr pack_bits) land ((1 lsl pack_bits) - 1)
let unpack_lo k = k land ((1 lsl pack_bits) - 1)

let freeze_packed ids remap b =
  let raw = b.blen in
  let keys =
    Array.init raw (fun i ->
        pack remap.(b.bs.(i)) remap.(b.bp.(i)) remap.(b.bo.(i)))
  in
  Array.sort Int.compare keys;
  let n = ref 0 in
  Array.iteri
    (fun i k ->
      if i = 0 || keys.(!n - 1) <> k then begin
        keys.(!n) <- k;
        incr n
      end)
    keys;
  let n = !n in
  let spo_s = Array.init n (fun i -> unpack_hi keys.(i))
  and spo_p = Array.init n (fun i -> unpack_mid keys.(i))
  and spo_o = Array.init n (fun i -> unpack_lo keys.(i)) in
  (* Permutation sorts on one precomputed packed key per row. *)
  let perm kx ky kz =
    let key = Array.init n (fun r -> pack (kx r) (ky r) (kz r)) in
    let rows = Array.init n Fun.id in
    Array.sort (fun a b -> Int.compare key.(a) key.(b)) rows;
    rows
  in
  let pos_row =
    perm (fun r -> spo_p.(r)) (fun r -> spo_s.(r)) (fun r -> spo_o.(r))
  in
  let osp_row =
    perm (fun r -> spo_o.(r)) (fun r -> spo_s.(r)) (fun r -> spo_p.(r))
  in
  { ids; n; spo_s; spo_p; spo_o; pos_row; osp_row }

let freeze b =
  let ids, remap = Interner.compact b.interner in
  if packable ids then freeze_packed ids remap b
  else begin
    let raw = b.blen in
    let rs = Array.init raw (fun i -> remap.(b.bs.(i)))
    and rp = Array.init raw (fun i -> remap.(b.bp.(i)))
    and ro = Array.init raw (fun i -> remap.(b.bo.(i))) in
    let rows = Array.init raw Fun.id in
    sort_rows rows
      (fun r -> rs.(r))
      (fun r -> rp.(r))
      (fun r -> ro.(r));
    (* Dedup adjacent equal rows while materialising the final columns —
       a graph is a set of triples, whatever the loader fed us. *)
    let n = ref 0 in
    Array.iteri
      (fun i r ->
        if
          i = 0
          ||
          let q = rows.(i - 1) in
          rs.(q) <> rs.(r) || rp.(q) <> rp.(r) || ro.(q) <> ro.(r)
        then begin
          rows.(!n) <- r;
          incr n
        end)
      (Array.copy rows);
    let n = !n in
    let spo_s = Array.init n (fun i -> rs.(rows.(i)))
    and spo_p = Array.init n (fun i -> rp.(rows.(i)))
    and spo_o = Array.init n (fun i -> ro.(rows.(i))) in
    let pos_row = Array.init n Fun.id and osp_row = Array.init n Fun.id in
    sort_rows pos_row
      (fun r -> spo_p.(r))
      (fun r -> spo_s.(r))
      (fun r -> spo_o.(r));
    sort_rows osp_row
      (fun r -> spo_o.(r))
      (fun r -> spo_s.(r))
      (fun r -> spo_p.(r));
    { ids; n; spo_s; spo_p; spo_o; pos_row; osp_row }
  end

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let cardinal t = t.n
let terms_cardinal t = Interner.cardinal t.ids
let interner t = t.ids
let id t term = Interner.find t.ids term
let term t id = Interner.resolve t.ids id

let pred_of t id =
  match Interner.resolve t.ids id with
  | Term.Iri p -> p
  | Term.Bnode _ | Term.Literal _ ->
      (* [add] only interns predicates as IRIs. *)
      assert false

let triple_of t row =
  Triple.make
    (Interner.resolve t.ids t.spo_s.(row))
    (pred_of t t.spo_p.(row))
    (Interner.resolve t.ids t.spo_o.(row))

(* First index in [0, n) whose key is ≥ v / > v: the usual halves. *)
let lower_bound key n v =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if key mid < v then lo := mid + 1 else hi := mid
  done;
  !lo

let upper_bound key n v =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if key mid <= v then lo := mid + 1 else hi := mid
  done;
  !lo

(* The contiguous [lo, hi) slice of rows with the given key id. *)
let slice key n v =
  let lo = lower_bound key n v in
  let hi = upper_bound key n v in
  (lo, hi)

let rows_to_list t project lo hi =
  let rec go i acc =
    if i < lo then acc else go (i - 1) (triple_of t (project i) :: acc)
  in
  go (hi - 1) []

let out_slice t term =
  match id t term with
  | None -> (0, 0)
  | Some sid -> slice (fun i -> t.spo_s.(i)) t.n sid

let in_slice t term =
  match id t term with
  | None -> (0, 0)
  | Some oid -> slice (fun i -> t.spo_o.(t.osp_row.(i))) t.n oid

let out_triples t term =
  let lo, hi = out_slice t term in
  rows_to_list t Fun.id lo hi

(* OSP order is (o, s, p) which, at fixed object, is exactly
   Triple.compare order on the slice. *)
let in_triples t term =
  let lo, hi = in_slice t term in
  rows_to_list t (fun i -> t.osp_row.(i)) lo hi

let triples_with_predicate t p =
  match id t (Term.Iri p) with
  | None -> []
  | Some pid ->
      let lo, hi = slice (fun i -> t.spo_p.(t.pos_row.(i))) t.n pid in
      rows_to_list t (fun i -> t.pos_row.(i)) lo hi

let out_degree t term =
  let lo, hi = out_slice t term in
  hi - lo

let in_degree t term =
  let lo, hi = in_slice t term in
  hi - lo

let nodes t =
  (* Distinct subject ids and object ids are both ascending runs of
     their sorted columns; a merge-unique of the two is the distinct
     node ids in term order (canonical ids sort like terms). *)
  let next_distinct key n i =
    let v = key i in
    let j = ref (i + 1) in
    while !j < n && key !j = v do incr j done;
    !j
  in
  let s_key i = t.spo_s.(i) and o_key i = t.spo_o.(t.osp_row.(i)) in
  let rec merge i j acc =
    if i >= t.n && j >= t.n then List.rev acc
    else if j >= t.n || (i < t.n && s_key i < o_key j) then
      merge (next_distinct s_key t.n i) j (Interner.resolve t.ids (s_key i) :: acc)
    else if i >= t.n || o_key j < s_key i then
      merge i (next_distinct o_key t.n j) (Interner.resolve t.ids (o_key j) :: acc)
    else
      merge (next_distinct s_key t.n i) (next_distinct o_key t.n j)
        (Interner.resolve t.ids (s_key i) :: acc)
  in
  merge 0 0 []

let iter f t =
  for row = 0 to t.n - 1 do
    f (triple_of t row)
  done

let fold f t acc =
  let acc = ref acc in
  for row = 0 to t.n - 1 do
    acc := f (triple_of t row) !acc
  done;
  !acc

let of_graph g =
  let b =
    builder ~terms:(2 * Graph.cardinal g) ~triples:(Graph.cardinal g) ()
  in
  Graph.iter (add_triple b) g;
  freeze b

let to_graph t = Graph.of_seq (Seq.init t.n (fun row -> triple_of t row))

(** Shape Expression Schemas — the pair (Λ, δ) of §8.

    A schema is a shape definition function δ mapping labels to
    regular shape expressions, presented as rules [λ ↦ e].
    Definitions may be mutually recursive (Example 13). *)

type t

(** A shape: a triple-expression body plus an optional constraint on
    the focus node itself (ShEx's node constraints at shape level —
    e.g. "a Person is an IRI"). *)
type shape = { focus : Value_set.obj option; expr : Rse.t }

val make : (Label.t * Rse.t) list -> (t, string) result
(** Builds a schema from rules.  Fails on duplicate labels, on a shape
    reference to a label with no rule, and on non-stratified negation —
    a reference under [!] that participates in a recursive cycle (see
    {!Strata}).  Negation {e across} strata is fine: a shape may negate
    references to shapes it does not mutually recurse with. *)

val make_exn : (Label.t * Rse.t) list -> t
(** Like {!make}, raising [Invalid_argument] on error. *)

val make_shapes : (Label.t * shape) list -> (t, string) result
(** Like {!make} but with focus-node constraints. *)

val find : t -> Label.t -> Rse.t option
(** δ(l) — the triple expression only. *)

val find_shape : t -> Label.t -> shape option
(** The full shape, including the focus constraint. *)

val find_exn : t -> Label.t -> Rse.t

val labels : t -> Label.t list
(** Λ, in rule order. *)

val rules : t -> (Label.t * Rse.t) list
(** (label, triple expression) pairs in rule order. *)

val shapes : t -> (Label.t * shape) list
(** Full shapes (with focus constraints), in rule order. *)

val mem : t -> Label.t -> bool

val dependencies : t -> Label.t -> Label.Set.t
(** Labels reachable from [l] through shape references (including [l]
    itself). *)

val is_recursive : t -> Label.t -> bool
(** Whether [l] can reach itself through shape references. *)

val stratum : t -> Label.t -> int
(** The label's negation stratum (0-based; see {!Strata}).  Validation
    settles lower strata before evaluating a label, so negated
    references always see final verdicts. *)

val strata_count : t -> int

val pp : Format.formatter -> t -> unit
(** Prints rules as [⟨l⟩ ↦ e], one per line. *)

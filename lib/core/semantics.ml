module Graph_set = Set.Make (struct
  type t = Rdf.Triple.Set.t

  let compare = Rdf.Triple.Set.compare
end)

exception Not_enumerable of string

let finite_pred = function
  | Value_set.Pred i -> [ i ]
  | Value_set.Pred_in is -> is
  | Value_set.Pred_stem _ | Value_set.Pred_any | Value_set.Pred_compl _ ->
      raise (Not_enumerable "predicate set is not finite")

let rec finite_obj = function
  | Value_set.Obj_in terms -> terms
  | Value_set.Obj_or vs -> List.concat_map finite_obj vs
  | Value_set.Obj_any | Value_set.Obj_datatype _
  | Value_set.Obj_datatype_iri _ | Value_set.Obj_kind _
  | Value_set.Obj_stem _ | Value_set.Obj_not _ ->
      raise (Not_enumerable "object set is not finite")

(* Disjoint pairwise unions of two languages, capped at max_card. *)
let combine ~max_card l1 l2 =
  Graph_set.fold
    (fun t1 acc ->
      Graph_set.fold
        (fun t2 acc ->
          if Rdf.Triple.Set.disjoint t1 t2 then
            let u = Rdf.Triple.Set.union t1 t2 in
            if Rdf.Triple.Set.cardinal u <= max_card then
              Graph_set.add u acc
            else acc
          else acc)
        l2 acc)
    l1 Graph_set.empty

let enumerate ~node ~max_card e =
  let rec go (e : Rse.t) =
    match e with
    | Empty -> Graph_set.empty
    | Epsilon -> Graph_set.singleton Rdf.Triple.Set.empty
    | Arc { inverse = true; _ } ->
        raise (Not_enumerable "inverse arcs are not enumerable")
    | Arc { obj = Ref _; _ } ->
        raise (Not_enumerable "shape references are not enumerable")
    | Arc { pred; obj = Values vo; inverse = false } ->
        let preds = finite_pred pred and objs = finite_obj vo in
        List.fold_left
          (fun acc p ->
            List.fold_left
              (fun acc o ->
                match Rdf.Triple.make_opt node p o with
                | Some tr ->
                    Graph_set.add (Rdf.Triple.Set.singleton tr) acc
                | None -> acc)
              acc objs)
          Graph_set.empty preds
    | Star inner ->
        (* Iterate L ← {∅} ∪ (L(e) ⊎ L) to fixpoint under the cap. *)
        let base = go inner in
        let rec fix acc =
          let next =
            Graph_set.union acc
              (Graph_set.add Rdf.Triple.Set.empty
                 (combine ~max_card base acc))
          in
          if Graph_set.equal next acc then acc else fix next
        in
        fix (Graph_set.singleton Rdf.Triple.Set.empty)
    | And (e1, e2) -> combine ~max_card (go e1) (go e2)
    | Or (e1, e2) -> Graph_set.union (go e1) (go e2)
    | Not _ -> raise (Not_enumerable "negation is not enumerable")
  in
  go e

let language ~node ~max_card e =
  match enumerate ~node ~max_card e with
  | s -> Ok (Graph_set.elements s)
  | exception Not_enumerable msg -> Error msg

let mem ~node g e =
  let sigma = Rdf.Graph.to_set (Rdf.Graph.neighbourhood node g) in
  let max_card = Rdf.Triple.Set.cardinal sigma in
  match enumerate ~node ~max_card e with
  | s -> Ok (Graph_set.mem sigma s)
  | exception Not_enumerable msg -> Error msg

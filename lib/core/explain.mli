(** Structured failure explanations — the blame set of a verdict.

    The paper's walks (Examples 8–12) don't just say {e whether} a
    neighbourhood matches, they show {e why}: the step where the
    derivative collapsed to ∅ names the offending triple (Example 12),
    and a non-nullable final residual names the obligations still open
    (Example 11).  This module extracts that structure from a
    derivative trace, replacing the free-form reason strings that
    reports used to carry.  "Semantics and Validation of Shapes
    Schemas for RDF" (Boneva et al.) calls these the witness/blame
    notions of a validation report.

    An explanation is a value, so tools can act on it ({!to_json});
    {!to_string} renders the exact human-readable messages earlier
    releases produced, so existing output is unchanged. *)

(** A shape reference the blamed triple travelled along whose far node
    failed the referenced shape — the refuted hypothesis of a
    recursive check. *)
type ref_failure = { ref_node : Rdf.Term.t; ref_label : Label.t }

type t =
  | No_shape of { node : Rdf.Term.t; label : Label.t }
      (** the schema has no rule δ(label) *)
  | Node_constraint of { node : Rdf.Term.t; constraint_ : Value_set.obj }
      (** the focus node itself fails the shape's node constraint *)
  | Blame_triple of {
      node : Rdf.Term.t;
      label : Label.t;
      triple : Neigh.dtriple;  (** the triple that drove the residual to ∅ *)
      residual : Rse.t;  (** the expression {e before} the fatal step *)
      ref_failures : ref_failure list;
          (** recursive hypotheses whose failure made the triple
              unmatchable (empty when the triple simply fits no arc) *)
    }
  | Missing_arcs of {
      node : Rdf.Term.t;
      label : Label.t;
      residual : Rse.t;  (** the final, non-nullable residual *)
      missing : Rse.arc list;  (** its required arcs ({!required_arcs}) *)
    }
      (** every triple was consumed, but obligations remain open *)

val required_arcs : Rse.t -> Rse.arc list
(** The arc obligations a non-nullable expression still demands,
    deduplicated and sorted: an [Arc] demands itself; [And] demands
    the arcs of each non-nullable conjunct; a non-nullable [Or] offers
    the arcs of either alternative; [Star] and [Not] demand nothing
    ([ν] of a star is true, and a complement fails by excess, not
    lack). *)

val of_trace :
  ?check_ref:Deriv.check_ref ->
  node:Rdf.Term.t ->
  label:Label.t ->
  Deriv.trace ->
  t option
(** Extract the blame set from a failed trace ([None] if the trace
    accepted): the first step that collapsed to ∅ yields
    {!Blame_triple} — with [check_ref] (the session's settled-verdict
    oracle) consulted to name the {!ref_failure}s behind an
    unmatchable reference arc — and an exhausted, non-nullable
    residual yields {!Missing_arcs}. *)

val node : t -> Rdf.Term.t
(** The focus node the explanation is about. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Renders the historical reason strings (["triple … matches no arc
    of the remaining expression (it reduces the expression to ∅)"],
    …), extended with the ref-failure / missing-arc details when
    present. *)

val to_json : t -> Json.t
(** [{"kind": "no_shape" | "node_constraint" | "blame_triple" |
    "missing_arcs", "node": …, …}] — kind-specific members carry the
    triple, residual expression, reference failures or missing
    arcs. *)

(** Shape typings τ — mappings from nodes to sets of shape labels (§8).

    The paper defines the empty typing , the extension [n → s : τ]
    and the combination [τ₁ ⊎ τ₂]; a typing is the result of the type
    inference judgement [Γ ⊢ n ≃s l ⇒ τ]. *)

type t

val empty : t
val is_empty : t -> bool

val add : Rdf.Term.t -> Label.t -> t -> t
(** [n → l : τ]. *)

val singleton : Rdf.Term.t -> Label.t -> t

val combine : t -> t -> t
(** [τ₁ ⊎ τ₂] — pointwise union of label sets. *)

val mem : Rdf.Term.t -> Label.t -> t -> bool
val labels_of : Rdf.Term.t -> t -> Label.Set.t
val nodes : t -> Rdf.Term.t list

val cardinal : t -> int
(** Number of (node, label) pairs. *)

val to_list : t -> (Rdf.Term.t * Label.t) list
(** All pairs in (node, label) order. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

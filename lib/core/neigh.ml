type dtriple = { triple : Rdf.Triple.t; inverse : bool }

let out triple = { triple; inverse = false }
let inc triple = { triple; inverse = true }

let focus_other_end _n dt =
  if dt.inverse then Rdf.Triple.subject dt.triple
  else Rdf.Triple.obj dt.triple

let of_node ?(include_inverse = false) n g =
  let outgoing = Rdf.Graph.neighbourhood n g in
  let out_list = List.map out (Rdf.Graph.to_list outgoing) in
  if not include_inverse then out_list
  else
    let incoming = Rdf.Graph.triples_with_object n g in
    out_list @ List.map inc (Rdf.Graph.to_list incoming)

(* Columnar slices come back in Triple.compare order (canonical ids),
   so this produces the exact list [of_node] produces on the
   structural view of the same store — the ordering the byte-identity
   guarantees lean on. *)
let of_columnar ?(include_inverse = false) n c =
  let out_list = List.map out (Rdf.Columnar.out_triples c n) in
  if not include_inverse then out_list
  else out_list @ List.map inc (Rdf.Columnar.in_triples c n)

let arc_matches_values (a : Rse.arc) vo dt =
  Bool.equal a.inverse dt.inverse
  && Value_set.pred_mem a.pred (Rdf.Triple.predicate dt.triple)
  &&
  let far =
    if dt.inverse then Rdf.Triple.subject dt.triple
    else Rdf.Triple.obj dt.triple
  in
  Value_set.obj_mem vo far

let pp ppf dt =
  if dt.inverse then Format.fprintf ppf "^%a" Rdf.Triple.pp dt.triple
  else Rdf.Triple.pp ppf dt.triple

let equal a b =
  Bool.equal a.inverse b.inverse && Rdf.Triple.equal a.triple b.triple

let compare a b =
  let c = Bool.compare a.inverse b.inverse in
  if c <> 0 then c else Rdf.Triple.compare a.triple b.triple

type check_ref = Label.t -> Rdf.Term.t -> bool

let no_refs : check_ref = fun _ _ -> false

type instruments = {
  tele : Telemetry.t;
  branches : Telemetry.Counter.t;
  decompositions : Telemetry.Counter.t;
}

let instruments tele =
  {
    tele;
    branches = Telemetry.counter tele "backtrack_branches";
    decompositions = Telemetry.counter tele "backtrack_decompositions";
  }

let no_instruments = instruments Telemetry.disabled

(* All ordered pairs (l, r) of disjoint sublists whose union is the
   input — the list counterpart of Graph.decompositions.  Pairs come
   in Example 3's order, ({}, everything) first, so the left component
   grows as the search proceeds. *)
let decompose dts =
  let rec go = function
    | [] -> [ ([], []) ]
    | x :: rest ->
        List.concat_map
          (fun (l, r) -> [ (l, x :: r); (x :: l, r) ])
          (go rest)
  in
  go dts

let arc_matches ~check_ref (a : Rse.arc) (dt : Neigh.dtriple) =
  match a.obj with
  | Rse.Values vo -> Neigh.arc_matches_values a vo dt
  | Rse.Ref l ->
      Bool.equal a.inverse dt.inverse
      && Value_set.pred_mem a.pred (Rdf.Triple.predicate dt.triple)
      &&
      let far =
        if dt.inverse then Rdf.Triple.subject dt.triple
        else Rdf.Triple.obj dt.triple
      in
      check_ref l far

let matches_counted ~check_ref ~instr dts e =
  let work = ref 0 in
  let counting = Telemetry.Counter.active instr.branches in
  (* Each [decompose] call materialises every ordered pair — Example
     3's 2ⁿ — so the length walk below is already amortised; it is
     still skipped on the disabled path. *)
  let decompositions dts =
    let pairs = decompose dts in
    if counting then
      Telemetry.Counter.add instr.decompositions (List.length pairs);
    pairs
  in
  let rec go (e : Rse.t) dts =
    incr work;
    if counting then Telemetry.Counter.incr instr.branches;
    match e with
    | Empty -> false
    | Epsilon -> dts = []
    | Arc a -> ( match dts with [ dt ] -> arc_matches ~check_ref a dt | _ -> false)
    | Or (e1, e2) -> go e1 dts || go e2 dts
    | And (e1, e2) ->
        List.exists (fun (g1, g2) -> go e1 g1 && go e2 g2) (decompositions dts)
    | Star inner ->
        dts = []
        || List.exists
             (fun (g1, g2) -> g1 <> [] && go inner g1 && go e g2)
             (decompositions dts)
    | Not inner -> not (go inner dts)
  in
  let result = go e dts in
  (result, !work)

let matches_list ?(check_ref = no_refs) ?(instr = no_instruments) dts e =
  fst (matches_counted ~check_ref ~instr dts e)

let matches_count ?(check_ref = no_refs) ?(instr = no_instruments) n g e =
  let dts = Neigh.of_node ~include_inverse:(Rse.has_inverse e) n g in
  let (result, work) as r = matches_counted ~check_ref ~instr dts e in
  if Telemetry.tracing instr.tele then
    Telemetry.emit instr.tele
      (Telemetry.instant "backtrack_match"
         [ ("focus", Telemetry.String (Rdf.Term.to_string n));
           ("triples", Telemetry.Int (List.length dts));
           ("branches", Telemetry.Int work);
           ("ok", Telemetry.Bool result) ]);
  r

let matches ?check_ref ?instr n g e =
  fst (matches_count ?check_ref ?instr n g e)

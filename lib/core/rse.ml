type obj_spec =
  | Values of Value_set.obj
  | Ref of Label.t

type arc = { pred : Value_set.pred; obj : obj_spec; inverse : bool }

type t =
  | Empty
  | Epsilon
  | Arc of arc
  | Star of t
  | And of t * t
  | Or of t * t
  | Not of t

let empty = Empty
let epsilon = Epsilon

let arc ?(inverse = false) pred obj = Arc { pred; obj; inverse }
let arc_v ?inverse pred vo = arc ?inverse pred (Values vo)
let arc_ref ?inverse pred l = arc ?inverse pred (Ref l)

let obj_spec_equal a b =
  match (a, b) with
  | Values x, Values y -> Value_set.obj_equal x y
  | Ref x, Ref y -> Label.equal x y
  | (Values _ | Ref _), _ -> false

let arc_equal a b =
  Value_set.pred_equal a.pred b.pred
  && obj_spec_equal a.obj b.obj
  && Bool.equal a.inverse b.inverse

(* Structural comparators, kept in lock-step with [equal]/[arc_equal]:
   the ACI sort/dedup below and every ordered container over RSEs
   require compare=0 ⇔ equal.  The polymorphic [Stdlib.compare] used
   to stand here; it happened to agree while every leaf was plain
   first-order data, but any representation change (cached hash,
   interned id) would have broken the coincidence silently. *)
let obj_spec_compare a b =
  match (a, b) with
  | Values x, Values y -> Value_set.obj_compare x y
  | Ref x, Ref y -> Label.compare x y
  | Values _, Ref _ -> -1
  | Ref _, Values _ -> 1

let arc_compare (a : arc) (b : arc) =
  let c = Value_set.pred_compare a.pred b.pred in
  if c <> 0 then c
  else
    let c = obj_spec_compare a.obj b.obj in
    if c <> 0 then c else Bool.compare a.inverse b.inverse

let rec equal a b =
  match (a, b) with
  | Empty, Empty | Epsilon, Epsilon -> true
  | Arc x, Arc y -> arc_equal x y
  | Star x, Star y -> equal x y
  | And (x1, x2), And (y1, y2) | Or (x1, x2), Or (y1, y2) ->
      equal x1 y1 && equal x2 y2
  | Not x, Not y -> equal x y
  | (Empty | Epsilon | Arc _ | Star _ | And _ | Or _ | Not _), _ -> false

let rank = function
  | Empty -> 0
  | Epsilon -> 1
  | Arc _ -> 2
  | Star _ -> 3
  | And _ -> 4
  | Or _ -> 5
  | Not _ -> 6

let rec compare a b =
  match (a, b) with
  | Empty, Empty | Epsilon, Epsilon -> 0
  | Arc x, Arc y -> arc_compare x y
  | Star x, Star y | Not x, Not y -> compare x y
  | And (x1, x2), And (y1, y2) | Or (x1, x2), Or (y1, y2) ->
      let c = compare x1 y1 in
      if c <> 0 then c else compare x2 y2
  | (Empty | Epsilon | Arc _ | Star _ | And _ | Or _ | Not _), _ ->
      Int.compare (rank a) (rank b)

(* Simplification rules of §4 plus the standard star/complement laws,
   strengthened with ACI normalisation in the style of Owens, Reppy &
   Turon (2009): ‖ and | spines are flattened, conjuncts sorted
   (commutativity) and disjuncts deduplicated (idempotence — ‖ is a
   bag operator and keeps duplicates).  Without this, the Or-of-And
   expansion of ∂t(e₁ ‖ e₂) duplicates whole subtrees and derivative
   sizes explode exponentially (experiment E5 measures exactly that
   with the raw constructors). *)

let star = function
  | Empty | Epsilon -> Epsilon
  | Star _ as e -> e
  | e -> Star e

let rec flatten_and acc = function
  | And (e1, e2) -> flatten_and (flatten_and acc e2) e1
  | Epsilon -> acc
  | e -> e :: acc

let rec rebuild node = function
  | [] -> assert false
  | [ e ] -> e
  | e :: rest -> node e (rebuild node rest)

let and_ e1 e2 =
  match (e1, e2) with
  | Empty, _ | _, Empty -> Empty
  | Epsilon, e | e, Epsilon -> e
  | e1, e2 -> (
      let parts = flatten_and (flatten_and [] e2) e1 in
      if List.exists (function Empty -> true | _ -> false) parts then Empty
      else
        match List.sort compare parts with
        | [] -> Epsilon
        | parts -> rebuild (fun a b -> And (a, b)) parts)

let rec flatten_or acc = function
  | Or (e1, e2) -> flatten_or (flatten_or acc e2) e1
  | Empty -> acc
  | e -> e :: acc

(* Multiset intersection / difference on compare-sorted lists. *)
let rec bag_inter xs ys =
  match (xs, ys) with
  | [], _ | _, [] -> []
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c = 0 then x :: bag_inter xs' ys'
      else if c < 0 then bag_inter xs' ys
      else bag_inter xs ys'

let rec bag_diff xs ys =
  match (xs, ys) with
  | xs, [] -> xs
  | [], _ -> []
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c = 0 then bag_diff xs' ys'
      else if c < 0 then x :: bag_diff xs' ys
      else bag_diff xs ys'

(* The conjunct bag of an expression, sorted.  ε is the empty bag. *)
let conjuncts e = List.sort compare (flatten_and [] e)

let of_conjuncts = function
  | [] -> Epsilon
  | parts -> rebuild (fun a b -> And (a, b)) parts

(* |: flatten, drop ∅, deduplicate (idempotence), and factor the
   common part of the disjuncts' conjunct bags out of the alternative:
   (C ‖ X) | (C ‖ Y) = C ‖ (X | Y).  Factoring is what keeps
   derivatives of counting shapes (e⁺, e{m,n} over many predicates)
   polynomial: the pending-vs-satisfied variants of a constraint
   differ in one conjunct and would otherwise multiply across
   constraints. *)
let rec or_ e1 e2 =
  match (e1, e2) with
  | Empty, e | e, Empty -> e
  | e1, e2 -> (
      match List.sort_uniq compare (flatten_or (flatten_or [] e2) e1) with
      | [] -> Empty
      | [ e ] -> e
      | parts -> (
          (* ε has an empty conjunct bag and would always force the
             common factor to ∅, so it is split off first. *)
          let eps, rest =
            List.partition (function Epsilon -> true | _ -> false) parts
          in
          let core =
            match rest with
            | [] -> Epsilon
            | [ e ] -> e
            | rest ->
                let bags = List.map conjuncts rest in
                let common =
                  match bags with
                  | [] -> []
                  | b :: bs -> List.fold_left bag_inter b bs
                in
                if common = [] then rebuild (fun a b -> Or (a, b)) rest
                else
                  let residuals =
                    List.sort_uniq compare
                      (List.map
                         (fun bag -> of_conjuncts (bag_diff bag common))
                         bags)
                  in
                  let alternative =
                    match residuals with
                    | [] -> Epsilon
                    | r0 :: rs -> List.fold_left or_ r0 rs
                  in
                  and_ (of_conjuncts common) alternative
          in
          match (eps, core) with
          | [], _ -> core
          | _, (Epsilon | Star _) -> core (* already nullable *)
          | _, core -> Or (Epsilon, core)))

let not_ = function Not e -> e | e -> Not e

(* Ablation variant: ACI normalisation without distributive factoring
   (experiment E5 separates the contribution of each). *)
let or_aci e1 e2 =
  match (e1, e2) with
  | Empty, e | e, Empty -> e
  | e1, e2 -> (
      match List.sort_uniq compare (flatten_or (flatten_or [] e2) e1) with
      | [] -> Empty
      | parts -> rebuild (fun a b -> Or (a, b)) parts)

let and_all es = List.fold_left and_ Epsilon es
let or_all = function [] -> Empty | e :: es -> List.fold_left or_ e es

let plus e = and_ e (star e)
let opt e = or_ e Epsilon

let repeat m n e =
  if m < 0 then invalid_arg "Rse.repeat: negative minimum";
  let rec copies k acc = if k <= 0 then acc else copies (k - 1) (e :: acc) in
  let required = copies m [] in
  match n with
  | None -> and_all (star e :: required)
  | Some n ->
      if n < m then invalid_arg "Rse.repeat: max < min";
      let rec optionals k acc =
        if k <= 0 then acc else optionals (k - 1) (opt e :: acc)
      in
      and_all (required @ optionals (n - m) [])

let rec size = function
  | Empty | Epsilon | Arc _ -> 1
  | Star e | Not e -> 1 + size e
  | And (e1, e2) | Or (e1, e2) -> 1 + size e1 + size e2

let rec height = function
  | Empty | Epsilon | Arc _ -> 1
  | Star e | Not e -> 1 + height e
  | And (e1, e2) | Or (e1, e2) -> 1 + max (height e1) (height e2)

let rec nullable = function
  | Empty -> false
  | Epsilon -> true
  | Arc _ -> false
  | Star _ -> true
  | And (e1, e2) -> nullable e1 && nullable e2
  | Or (e1, e2) -> nullable e1 || nullable e2
  | Not e -> not (nullable e)

let rec refs = function
  | Empty | Epsilon -> Label.Set.empty
  | Arc { obj = Ref l; _ } -> Label.Set.singleton l
  | Arc { obj = Values _; _ } -> Label.Set.empty
  | Star e | Not e -> refs e
  | And (e1, e2) | Or (e1, e2) -> Label.Set.union (refs e1) (refs e2)

let has_ref e = not (Label.Set.is_empty (refs e))

let rec refs_under_not = function
  | Empty | Epsilon | Arc _ -> Label.Set.empty
  | Not e -> refs e
  | Star e -> refs_under_not e
  | And (e1, e2) | Or (e1, e2) ->
      Label.Set.union (refs_under_not e1) (refs_under_not e2)

let rec has_inverse = function
  | Empty | Epsilon -> false
  | Arc a -> a.inverse
  | Star e | Not e -> has_inverse e
  | And (e1, e2) | Or (e1, e2) -> has_inverse e1 || has_inverse e2

let rec has_not = function
  | Empty | Epsilon | Arc _ -> false
  | Not _ -> true
  | Star e -> has_not e
  | And (e1, e2) | Or (e1, e2) -> has_not e1 || has_not e2

let rec arcs = function
  | Empty | Epsilon -> []
  | Arc a -> [ a ]
  | Star e | Not e -> arcs e
  | And (e1, e2) | Or (e1, e2) -> arcs e1 @ arcs e2

let mentioned_preds ~inverse e =
  List.filter_map
    (fun (a : arc) -> if Bool.equal a.inverse inverse then Some a.pred else None)
    (arcs e)
  |> List.fold_left
       (fun acc p ->
         if List.exists (Value_set.pred_equal p) acc then acc else p :: acc)
       []
  |> List.rev

let with_extra pred e =
  and_ e (star (arc ~inverse:false pred (Values Value_set.Obj_any)))

let open_up e =
  let extra ~inverse =
    match mentioned_preds ~inverse e with
    | [] when not inverse -> Some (star (arc ~inverse Value_set.Pred_any (Values Value_set.Obj_any)))
    | [] -> None
    | preds ->
        Some
          (star
             (arc ~inverse (Value_set.Pred_compl preds)
                (Values Value_set.Obj_any)))
  in
  let e = match extra ~inverse:false with Some x -> and_ e x | None -> e in
  if has_inverse e then
    match extra ~inverse:true with Some x -> and_ e x | None -> e
  else e

let pp_obj_spec ppf = function
  | Values vo -> Value_set.pp_obj ppf vo
  | Ref l -> Format.fprintf ppf "@@%a" Label.pp l

let pp_arc ppf a =
  if a.inverse then Format.pp_print_string ppf "^";
  Format.fprintf ppf "%a\xe2\x86\x92%a" Value_set.pp_pred a.pred pp_obj_spec
    a.obj

(* Precedence: Or (lowest) < And < Star/Not < atoms.  Parenthesise a
   subexpression whenever its precedence is at most the context's. *)
let rec pp_prec prec ppf e =
  let paren p body =
    if prec >= p then Format.fprintf ppf "(%t)" body else body ppf
  in
  match e with
  | Empty -> Format.pp_print_string ppf "\xe2\x88\x85"
  | Epsilon -> Format.pp_print_string ppf "\xce\xb5"
  | Arc a -> pp_arc ppf a
  | Star ((Empty | Epsilon) as e) -> Format.fprintf ppf "%a*" (pp_prec 3) e
  | Star e -> Format.fprintf ppf "(%a)*" (pp_prec 0) e
  | Not ((Empty | Epsilon) as e) ->
      Format.fprintf ppf "\xc2\xac%a" (pp_prec 3) e
  | Not e -> Format.fprintf ppf "\xc2\xac(%a)" (pp_prec 0) e
  | And (e1, e2) ->
      paren 2 (fun ppf ->
          Format.fprintf ppf "%a \xe2\x80\x96 %a" (pp_prec 1) e1 (pp_prec 1)
            e2)
  | Or (e1, e2) ->
      paren 1 (fun ppf ->
          Format.fprintf ppf "%a | %a" (pp_prec 0) e1 (pp_prec 0) e2)

let pp ppf e = pp_prec 0 ppf e
let to_string e = Format.asprintf "%a" pp e

type ctors = {
  mk_and : t -> t -> t;
  mk_or : t -> t -> t;
  mk_not : t -> t;
}

module Raw = struct
  let star e = Star e
  let and_ e1 e2 = And (e1, e2)
  let or_ e1 e2 = Or (e1, e2)
  let not_ e = Not e
end

let smart_ctors = { mk_and = and_; mk_or = or_; mk_not = not_ }
let aci_ctors = { mk_and = and_; mk_or = or_aci; mk_not = not_ }
let raw_ctors = { mk_and = Raw.and_; mk_or = Raw.or_; mk_not = Raw.not_ }

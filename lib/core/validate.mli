(** Schema validation — the type inference algorithm of §8.

    The judgement [Γ ⊢ l ≃s n ⇒ τ] (Fig. 3) holds when the
    neighbourhood of node [n] matches δ(l) {e under the hypothesis
    that [n] already has type [l]} — the context extension [Γ{n → l}]
    in the MatchShape premise.  That hypothesis is what gives
    recursive schemas (Examples 13–14) their coinductive semantics: a
    cycle of shape references succeeds unless some arc constraint
    refutes it.

    The implementation follows §8's typed derivatives
    [∂t(e, Γ) = (e', τ)]: arcs whose object is a shape reference
    trigger a recursive check of the object node, and the typings of
    all sub-checks are combined with ⊎.

    Recursion is resolved by a {e greatest-fixpoint} (chaotic
    iteration) solver: every demanded (node, label) pair starts
    optimistically assumed to hold — the coinductive hypothesis — and
    flips to failure only when its own rule fails, re-triggering the
    pairs that relied on it.  Because {!Schema.make} rejects
    references under negation, verdicts are monotone in the reference
    answers, the iteration terminates in polynomially many
    evaluations, and the surviving pairs form the greatest fixpoint —
    exactly the semantics of the MatchShape rule on cyclic data.

    A {!session} memoises settled verdicts, so repeated checks over
    the same graph (e.g. {!validate_graph}) share work. *)

(** Which regular-expression engine decides neighbourhood matching. *)
type engine =
  | Derivatives     (** §6–7, the paper's contribution — default *)
  | Backtracking    (** Fig. 1 rules, exponential — baseline *)
  | Auto
      (** compile each shape once: the SORBE counting matcher when the
          shape is single-occurrence (linear, no expression rebuilding
          — experiment E4), the compiled DFA when an automaton backend
          is linked, derivatives otherwise *)
  | Compiled
      (** hash-consed lazy derivative automata (lib/automaton,
          experiment E9): each shape is compiled once, every node is
          then validated by transition-table lookups shared across the
          whole session.  Requires the [shex_automaton] library to be
          linked (it installs itself via {!set_compiled_backend});
          {!session} raises [Failure] otherwise. *)

type session

val session :
  ?engine:engine ->
  ?telemetry:Telemetry.t ->
  ?domains:int ->
  ?record_deps:bool ->
  ?profile:bool ->
  ?slow_ms:float ->
  ?interned:bool ->
  Schema.t ->
  Rdf.Graph.t ->
  session
(** {b Cache lifetime.}  A session's caches live exactly as long as
    the session and are shared by {e every} check made through it: the
    (node, shape) verdict memo persists across {!check}/{!check_bool}/
    {!check_all}/{!validate_graph} calls (re-checking a settled pair
    re-evaluates nothing), and the per-label compilations — the SORBE
    counters and the compiled-DFA transition tables of the automaton
    backend — are built once per label and reused by all later calls.
    Bulk runs with [domains > 1] validate their shards in {e private}
    sub-sessions: they read the shared session's schema and graph but
    neither consult nor write its memo, so a warm session's memo is
    never clobbered (and never extended) by a parallel bulk call —
    sequential calls on the same session afterwards still see every
    previously settled verdict.

    [record_deps] (default [false]) makes the fixpoint solver retain
    its dependency edges as a first-class structure (PR 3 emitted them
    only as [fixpoint_dep] telemetry events): for every settled pair
    the session records which (node, shape) hypotheses its final
    evaluation consulted, the reverse edges, and a node index.  This
    is what {!invalidate_nodes} walks; the incremental subsystem
    ([Shex_incremental]) creates its sessions with it on.  Costs one
    hash-table update per evaluation; off by default.

    [domains] (default [1], values below 1 are clamped to 1) is the
    bulk-validation parallelism {!check_all} may use: with [domains = n
    > 1] and the parallel runner linked (see {!set_bulk_checker}), a
    bulk check shards its associations over [n] OCaml domains.  It
    never affects single {!check}/{!check_bool} calls, and [1]
    preserves today's sequential behaviour exactly.

    [telemetry] (default {!Telemetry.disabled}) receives every engine
    counter of the session: [deriv_steps] and the
    [deriv_size_before]/[deriv_size_after] histograms from the
    derivative matcher, [backtrack_branches] and
    [backtrack_decompositions] from the Fig.-1 baseline,
    [sorbe_matches]/[sorbe_counter_updates] from the counting matcher,
    and [fixpoint_iterations]/[fixpoint_flips]/[fixpoint_demands] from
    the greatest-fixpoint solver.  Instruments are resolved once at
    session creation; with the default registry each instrumentation
    point costs a single branch (experiment E10).

    [profile] (default [false]) turns on per-shape cost attribution:
    every (node, shape) evaluation charges its {e self} cost — engine
    counter deltas, wall time, fixpoint flips — to labelled telemetry
    families keyed by shape label (plus wall time by focus node), and
    runtime resource gauges ([gc_*], [memo_entries]) are sampled at
    span boundaries.  Nested evaluations (lower-stratum references
    settled inline) charge their own shape, so family sums reproduce
    the session-global counters exactly.  Decode with
    {!Profile.of_snapshot}; off, the evaluation path is unchanged
    (one [None] match per evaluation — priced in E15).

    [slow_ms] sets a slow-validation threshold: {!check},
    {!check_bool} and {!validate_graph} time each call
    ([Unix.gettimeofday], independent of telemetry) and checks at or
    over the threshold are retained in the session's {!Slowlog.t} ring
    — verdict, blame set, and the work-counter deltas of the window.
    First checks of a pair include the fixpoint solve they trigger.
    Bulk shards ([domains > 1] in {!check_all}) are not individually
    timed.

    [interned] (default [false]) builds the columnar accelerator
    ({!Rdf.Columnar}) from the graph at session creation: every
    neighbourhood the matchers consume then comes from binary-searched
    slices of frozen int columns instead of structural index walks.
    Canonical interning keeps the slices in exactly {!Triple.compare}
    order, so verdicts, typings, explanations and report JSON are
    byte-identical to a structural session (the differential oracle's
    [interned] arm pins this).  The Backtracking baseline keeps
    reading the structural view. *)

val session_columnar :
  ?engine:engine ->
  ?telemetry:Telemetry.t ->
  ?domains:int ->
  ?profile:bool ->
  ?slow_ms:float ->
  Schema.t ->
  Rdf.Columnar.t ->
  session
(** A session over an already-frozen columnar store (e.g. straight
    from the streaming N-Triples bulk loader), skipping the structural
    graph entirely: the structural view is only materialised if
    something demands it ({!graph}, the Backtracking engine).
    [record_deps] is not offered — incremental sessions edit the
    graph, which is exactly what a frozen store is not for. *)

val telemetry : session -> Telemetry.t
val schema : session -> Schema.t

val graph : session -> Rdf.Graph.t
(** The structural view of the session's data.  On a
    {!session_columnar} session the first call materialises it from
    the store (linear time and memory) and caches it. *)

val interned : session -> bool
(** Whether the session validates against a columnar accelerator. *)

val columnar_store : session -> Rdf.Columnar.t option
(** The session's frozen columnar store, when interned.  Immutable and
    safe to share across domains — the parallel bulk runner hands it
    to its shard sessions directly. *)

val engine : session -> engine
val domains : session -> int

(** {1 Incremental revalidation primitives}

    The building blocks of [Shex_incremental.Session]: swap the graph,
    invalidate the memoised verdicts a set of edited nodes can reach,
    keep everything else — the retained memo, the per-label
    compilations and the automaton backend's transition tables all
    stay warm. *)

val record_deps : session -> bool
(** Whether the session retains fixpoint dependency edges. *)

val profiling : session -> bool
(** Whether the session attributes costs per shape ([?profile]). *)

val slowlog : session -> Slowlog.t option
(** The session's slow-check ring, when a threshold is (or was) set. *)

val set_slow_ms : session -> float option -> unit
(** Adjust the slow-validation threshold at runtime: [Some ms]
    creates the ring on first use (capacity {!Slowlog.default_capacity})
    or updates the threshold of the existing one, keeping its entries;
    [None] discards the ring and stops capturing. *)

val sample_resources : session -> unit
(** Sample the runtime resource gauges ([Gc.quick_stat] words/heap/
    collections, [memo_entries]) into the session registry now.  No-op
    unless the session was created with [~profile:true].  Called
    automatically at bulk-call boundaries and by {!metrics}. *)

val memo_size : session -> int
(** Number of memoised (node, shape) verdicts. *)

val set_graph : session -> Rdf.Graph.t -> unit
(** Replace the session's graph.  The memo is {e not} touched: the
    caller must follow with {!invalidate_nodes} over every node whose
    incident triples (as subject or object) differ between the old and
    new graphs, or retained verdicts may be stale.  Matchers read only
    the focus node's outgoing and incoming triples ({!Neigh.of_node}),
    so that node set is exactly the subjects and objects of the edited
    triples. *)

val invalidate_nodes :
  session -> Rdf.Term.t list -> ((Rdf.Term.t * Label.t) * bool) list
(** [invalidate_nodes session nodes] drops from the memo every settled
    pair anchored on one of [nodes] plus, transitively backwards along
    the recorded dependency edges, every pair whose evaluation
    consulted one of them — the {e dependency frontier} of the edit.
    Returns the dropped pairs with their old verdicts (the incremental
    layer re-solves them and reports verdict flips).  Verdicts outside
    the frontier were computed from unchanged neighbourhoods and
    retained reference answers, so they are still the greatest-fixpoint
    verdicts of the new graph (see DESIGN.md §11 for the argument).

    On a session without [record_deps] there are no edges to walk, so
    the whole memo is dropped (sound, not incremental). *)

val dependencies_of :
  session -> Rdf.Term.t * Label.t -> (Rdf.Term.t * Label.t) list
(** The (node, shape) hypotheses the pair's latest evaluation
    consulted — empty when unrecorded or never evaluated. *)

val metrics : session -> Telemetry.snapshot
(** The session's unified metrics snapshot.  Engine counters are read
    from the registry; when the session holds an automaton backend its
    cache counters are folded in first (gauges
    [compiled_atoms]/[compiled_states]/[compiled_symbols], counters
    [compiled_hits]/[compiled_misses]) — so the snapshot covers
    whatever engine actually ran.  Empty when telemetry is
    disabled. *)

(** {1 Compiled-engine backend}

    The automaton subsystem lives in its own library on top of core,
    so core cannot call it directly; instead the backend registers a
    factory here and sessions instantiate it on demand.  One backend
    instance is created per {!session}, so compiled tables — and the
    statistics below — are shared across all labels and nodes of the
    session but never leak between sessions. *)

(** Cache counters of a session's compiled automata (summed over the
    session's shapes; see E9). *)
type cache_stats = {
  atoms : int;    (** distinct arc constraints interned as alphabet atoms *)
  states : int;   (** DFA states materialised (hash-consed derivatives) *)
  symbols : int;  (** arc-class symbols (triple equivalence classes) seen *)
  hits : int;     (** transition steps answered from the memo table *)
  misses : int;   (** transition steps that built a new derivative *)
}

type compiled_matcher =
  check_ref:(Label.t -> Rdf.Term.t -> bool) ->
  Rdf.Term.t ->
  Neigh.dtriple list ->
  bool
(** What a compiled shape can do: decide whether a node's
    already-computed neighbourhood matches, resolving shape references
    through the fixpoint's [check_ref] oracle.  The session computes
    Σgn once per evaluation — from the structural indexes or a
    columnar slice — and passes it in, so backends never touch the
    graph representation. *)

type compiled_backend = {
  compile_shape : Rse.t -> compiled_matcher;
  cache_stats : unit -> cache_stats;
  export_stats : Telemetry.t -> unit;
      (** fold the cache counters into a registry as
          [compiled_*] gauges/counters — called by {!metrics} so the
          unified snapshot includes the automaton cache *)
}

val set_compiled_backend : (Telemetry.t -> compiled_backend) -> unit
(** Install the backend factory (called by
    [Shex_automaton.Engine.install], which the library also runs at
    link time).  The factory is invoked once per session with the
    session's telemetry registry, so the compiled engine emits the
    same per-triple trace events as the interpreted one. *)

val compiled_backend_installed : unit -> bool

val compiled_stats : session -> cache_stats option
(** The session's automaton cache counters — [None] unless the
    session instantiated a backend (engine [Compiled], or [Auto] with
    the backend linked). *)

(** Result of checking one node against one label. *)
type outcome = {
  ok : bool;
  typing : Typing.t;
      (** all (node, label) facts established by the check, including
          those of recursively visited neighbours; empty on failure *)
  explain : Explain.t option;
      (** on failure, the structured blame set extracted from the
          derivative trace — the fatal triple, the missing arcs, or
          the refuted node constraint (see {!Explain}) *)
}

val reason : outcome -> string option
(** The rendered form of [explain] ({!Explain.to_string}) — the
    human-readable failure reason reports print. *)

val check : session -> Rdf.Term.t -> Label.t -> outcome

val check_bool : session -> Rdf.Term.t -> Label.t -> bool

val check_all : session -> (Rdf.Term.t * Label.t) list -> outcome list
(** Check a list of associations, one {!outcome} per association in
    the input order.  With [domains = 1] (the default) this is exactly
    [List.map (check session)] — the sequential semantics.  With
    [domains > 1] and a bulk runner installed (see
    {!set_bulk_checker}), the associations are sharded over that many
    OCaml domains, each shard validated in a private sub-session, and
    the outcomes re-assembled in input order; per-shard telemetry is
    folded back into the session registry with {!Telemetry.merge}.
    Verdicts, typings and explanations are identical either way
    (the greatest fixpoint is canonical, independent of evaluation
    order).  Tracing sessions (a telemetry sink installed) always run
    sequentially so the event stream stays single-threaded and
    byte-identical. *)

(** {1 Parallel bulk runner}

    Like the compiled backend, the domain-parallel runner lives in a
    library above core ([shex_parallel]) and registers itself here at
    link time, so core never depends on [Domain]. *)

val set_bulk_checker :
  (session -> (Rdf.Term.t * Label.t) list -> outcome list) -> unit
(** Install the bulk runner {!check_all} dispatches to (called by
    [Shex_parallel.Bulk.install], which the library also runs at link
    time).  The runner is only consulted for sessions with
    [domains > 1], without an active trace sink, and with at least two
    associations. *)

val bulk_checker_installed : unit -> bool

val validate_graph : session -> Typing.t
(** Checks every node of the graph against every label of the schema
    and combines the typings of the successful checks — the “shape
    typing assigned to the nodes in the graph” of §8.  Reproduces
    Example 2: [:john] and [:bob] get [<Person>], [:mary] does not. *)

val validate :
  ?engine:engine ->
  Schema.t ->
  Rdf.Graph.t ->
  Rdf.Term.t ->
  Label.t ->
  outcome
(** One-shot convenience wrapper around {!session} + {!check}. *)

(** Shape maps: which nodes to validate against which shapes.

    The ShEx ecosystem drives validation with {e shape maps} —
    associations between node selectors and shape labels.  This module
    implements the fixed and query forms of the W3C shape-map draft
    that make sense for this engine:

    {v
    <http://example.org/john>@<Person>,
    _:b0@<Person>,
    {FOCUS rdf:type ex:Patient}@<Patient>,
    {FOCUS ex:knows _}@<Person>,
    {_ ex:treats FOCUS}@<Patient>
    v}

    A [{…}] selector picks every node that occurs as [FOCUS] in a
    triple matching the pattern ([_] is a wildcard). *)

(** Where the focus node sits in a triple pattern. *)
type selector =
  | Node of Rdf.Term.t  (** a concrete node *)
  | Focus_subject of Rdf.Iri.t option * Rdf.Term.t option
      (** [{FOCUS p o}]: subjects of matching triples; [None] = [_] *)
  | Focus_object of Rdf.Term.t option * Rdf.Iri.t option
      (** [{s p FOCUS}]: objects of matching triples *)

type association = { selector : selector; label : Label.t }

type t = association list

val parse : ?namespaces:Rdf.Namespace.t -> string -> (t, string) result
(** Parse the textual form.  Prefixed names resolve against
    [namespaces] (default {!Rdf.Namespace.default}). *)

val parse_exn : ?namespaces:Rdf.Namespace.t -> string -> t

val resolve : t -> Rdf.Graph.t -> (Rdf.Term.t * Label.t) list
(** Expand the selectors against a graph into concrete (node, label)
    pairs, deduplicated, in (node, label) order. *)

val pp : Format.formatter -> t -> unit

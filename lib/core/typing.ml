type t = Label.Set.t Rdf.Term.Map.t

let empty = Rdf.Term.Map.empty
let is_empty = Rdf.Term.Map.is_empty

let add n l t =
  Rdf.Term.Map.update n
    (function
      | None -> Some (Label.Set.singleton l)
      | Some set -> Some (Label.Set.add l set))
    t

let singleton n l = add n l empty

let combine t1 t2 =
  Rdf.Term.Map.union (fun _ s1 s2 -> Some (Label.Set.union s1 s2)) t1 t2

let labels_of n t =
  match Rdf.Term.Map.find_opt n t with
  | None -> Label.Set.empty
  | Some set -> set

let mem n l t = Label.Set.mem l (labels_of n t)
let nodes t = Rdf.Term.Map.fold (fun n _ acc -> n :: acc) t [] |> List.rev
let cardinal t = Rdf.Term.Map.fold (fun _ s acc -> acc + Label.Set.cardinal s) t 0

let to_list t =
  Rdf.Term.Map.fold
    (fun n set acc ->
      Label.Set.fold (fun l acc -> (n, l) :: acc) set acc)
    t []
  |> List.rev

let equal t1 t2 = Rdf.Term.Map.equal Label.Set.equal t1 t2

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  let first = ref true in
  Rdf.Term.Map.iter
    (fun n set ->
      if !first then first := false else Format.pp_print_cut ppf ();
      Format.fprintf ppf "%a \xe2\x86\xa6 {%a}" Rdf.Term.pp n
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Label.pp)
        (Label.Set.elements set))
    t;
  Format.pp_close_box ppf ()

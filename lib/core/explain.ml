type ref_failure = { ref_node : Rdf.Term.t; ref_label : Label.t }

type t =
  | No_shape of { node : Rdf.Term.t; label : Label.t }
  | Node_constraint of { node : Rdf.Term.t; constraint_ : Value_set.obj }
  | Blame_triple of {
      node : Rdf.Term.t;
      label : Label.t;
      triple : Neigh.dtriple;
      residual : Rse.t;
      ref_failures : ref_failure list;
    }
  | Missing_arcs of {
      node : Rdf.Term.t;
      label : Label.t;
      residual : Rse.t;
      missing : Rse.arc list;
    }

(* The arcs a non-nullable residual still demands: every alternative
   through the expression needs at least one of them.  Star and Not
   are nullable (ν of a star is true; a non-nullable ¬e misses "nothing
   concrete" — it has too much, not too little), so they contribute
   none.  And demands the arcs of each non-nullable conjunct; a
   non-nullable Or (both sides non-nullable) offers the arcs of either
   alternative as candidates. *)
let required_arcs e =
  let rec go (e : Rse.t) =
    match e with
    | Empty | Epsilon | Star _ | Not _ -> []
    | Arc a -> [ a ]
    | And (e1, e2) ->
        (if Rse.nullable e1 then [] else go e1)
        @ if Rse.nullable e2 then [] else go e2
    | Or (e1, e2) ->
        if Rse.nullable e1 || Rse.nullable e2 then [] else go e1 @ go e2
  in
  List.sort_uniq Rse.arc_compare (go e)

let of_trace ?(check_ref = Deriv.no_refs) ~node ~label
    (tr : Deriv.trace) =
  if tr.Deriv.result then None
  else
    (* First step whose derivative collapsed to ∅: the consumed triple
       is the culprit (Example 12), and the expression it was derived
       from shows what the triple was matched against. *)
    let rec first_empty before = function
      | [] -> None
      | s :: _ when Rse.equal s.Deriv.after Rse.empty ->
          Some (before, s.Deriv.consumed)
      | s :: rest -> first_empty s.Deriv.after rest
    in
    match first_empty tr.Deriv.initial tr.Deriv.steps with
    | Some (residual, dt) ->
        (* If the fatal triple travels along a reference arc whose far
           node fails the referenced shape, the blame is really that
           recursive failure — name it. *)
        let far = Neigh.focus_other_end node dt in
        let ref_failures =
          Rse.arcs residual
          |> List.filter_map (fun (a : Rse.arc) ->
                 match a.obj with
                 | Rse.Ref l
                   when Bool.equal a.inverse dt.Neigh.inverse
                        && Value_set.pred_mem a.pred
                             (Rdf.Triple.predicate dt.Neigh.triple)
                        && not (check_ref l far) ->
                     Some { ref_node = far; ref_label = l }
                 | Rse.Ref _ | Rse.Values _ -> None)
          |> List.sort_uniq (fun a b ->
                 let c = Rdf.Term.compare a.ref_node b.ref_node in
                 if c <> 0 then c else Label.compare a.ref_label b.ref_label)
        in
        Some (Blame_triple { node; label; triple = dt; residual; ref_failures })
    | None ->
        let residual =
          match List.rev tr.Deriv.steps with
          | [] -> tr.Deriv.initial
          | s :: _ -> s.Deriv.after
        in
        Some
          (Missing_arcs
             { node; label; residual; missing = required_arcs residual })

let pp_arc ppf (a : Rse.arc) = Rse.pp ppf (Rse.arc ~inverse:a.inverse a.pred a.obj)

let pp_arcs ppf arcs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_arc ppf arcs

let pp ppf = function
  | No_shape { node; label } ->
      Format.fprintf ppf "node %a: no rule for shape label %a" Rdf.Term.pp
        node Label.pp label
  | Node_constraint { node; constraint_ } ->
      Format.fprintf ppf
        "the focus node %a does not satisfy the shape's node constraint %a"
        Rdf.Term.pp node Value_set.pp_obj constraint_
  | Blame_triple { triple; ref_failures; _ } ->
      Format.fprintf ppf
        "triple %a matches no arc of the remaining expression (it reduces \
         the expression to \xe2\x88\x85)"
        Neigh.pp triple;
      List.iter
        (fun { ref_node; ref_label } ->
          Format.fprintf ppf
            "; node %a does not conform to the referenced shape %a"
            Rdf.Term.pp ref_node Label.pp ref_label)
        ref_failures
  | Missing_arcs { residual; missing; _ } -> (
      Format.fprintf ppf
        "all triples were consumed but obligations remain: the residual \
         expression %a is not nullable (some required arc is missing)"
        Rse.pp residual;
      match missing with
      | [] -> ()
      | arcs -> Format.fprintf ppf "; missing: %a" pp_arcs arcs)

let to_string ex = Format.asprintf "%a" pp ex

let node = function
  | No_shape { node; _ }
  | Node_constraint { node; _ }
  | Blame_triple { node; _ }
  | Missing_arcs { node; _ } -> node

let to_json ex =
  let term n = Json.String (Rdf.Term.to_string n) in
  let label l = Json.String (Label.to_string l) in
  let common kind extra =
    Json.Object (("kind", Json.String kind) :: extra)
  in
  match ex with
  | No_shape { node; label = l } ->
      common "no_shape" [ ("node", term node); ("shape", label l) ]
  | Node_constraint { node; constraint_ } ->
      common "node_constraint"
        [ ("node", term node);
          ( "constraint",
            Json.String (Format.asprintf "%a" Value_set.pp_obj constraint_) )
        ]
  | Blame_triple { node; label = l; triple; residual; ref_failures } ->
      common "blame_triple"
        [ ("node", term node);
          ("shape", label l);
          ("triple", Json.String (Format.asprintf "%a" Neigh.pp triple));
          ("residual", Json.String (Rse.to_string residual));
          ( "ref_failures",
            Json.Array
              (List.map
                 (fun { ref_node; ref_label } ->
                   Json.Object
                     [ ("node", term ref_node); ("shape", label ref_label) ])
                 ref_failures) ) ]
  | Missing_arcs { node; label = l; residual; missing } ->
      common "missing_arcs"
        [ ("node", term node);
          ("shape", label l);
          ("residual", Json.String (Rse.to_string residual));
          ( "missing",
            Json.Array
              (List.map
                 (fun a -> Json.String (Format.asprintf "%a" pp_arc a))
                 missing) ) ]

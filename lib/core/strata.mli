(** Stratification of schemas with negated shape references.

    The greatest-fixpoint semantics of recursion (§8) needs verdicts to
    be monotone in the reference answers, which fails when a shape
    reference occurs under negation {e on a dependency cycle}.  The
    classic remedy (as in stratified Datalog) is to allow negation only
    {e across} strata: the label dependency graph is condensed into
    strongly connected components; a negative edge inside a component
    is rejected, and otherwise every label gets a stratum number such
    that positive dependencies stay within or below its stratum and
    negative dependencies go strictly below.

    {!Validate} then settles lower strata completely before evaluating
    a pair, so negation is only ever applied to already-final
    verdicts. *)

type t

val compute : (Label.t * Rse.t) list -> (t, string) result
(** Build the stratification of a rule set.  Fails with a descriptive
    message when some reference under negation participates in a
    dependency cycle.  All referenced labels must have rules (checked
    by {!Schema.make} beforehand). *)

val stratum : t -> Label.t -> int
(** The label's stratum, [0]-based from the bottom.  Unknown labels
    are reported as stratum [0]. *)

val count : t -> int
(** Number of strata (at least [1] for a non-empty schema). *)

val same_component : t -> Label.t -> Label.t -> bool
(** Whether two labels are mutually recursive (same SCC). *)

(** Regular Shape Expressions — the abstract syntax of §4.

    {v
    E, F ::= ∅        empty, no shape
           | ε        empty set of triples
           | vp → vo  arc with predicate p ∈ vp and object o ∈ vo
           | E*       Kleene closure (0 or more E)
           | E ‖ F    And (unordered concatenation)
           | E | F    Alternative
    v}

    plus the extensions the paper names (§8, §10): shape references in
    object position, inverse arcs and negation (complement), which is
    derivative-friendly (ν(¬e) = ¬ν(e), ∂t(¬e) = ¬∂t(e)).

    The {e smart constructors} {!and_}, {!or_}, {!star}, {!not_} apply
    the simplification rules of §4 ([∅ | x = x], [∅ ‖ x = ∅],
    [ε ‖ x = x], …) so that derivatives stay small; {!module:Raw}
    builds unsimplified nodes for the ablation experiment E5. *)

(** Object position of an arc: either a value set or a reference to a
    labelled shape (§8). *)
type obj_spec =
  | Values of Value_set.obj
  | Ref of Label.t

type arc = {
  pred : Value_set.pred;
  obj : obj_spec;
  inverse : bool;  (** extension: match incoming instead of outgoing arcs *)
}

type t = private
  | Empty
  | Epsilon
  | Arc of arc
  | Star of t
  | And of t * t
  | Or of t * t
  | Not of t

(** {1 Constructors} *)

val empty : t
(** ∅ — matches no neighbourhood at all. *)

val epsilon : t
(** ε — matches exactly the empty neighbourhood. *)

val arc : ?inverse:bool -> Value_set.pred -> obj_spec -> t
val arc_v : ?inverse:bool -> Value_set.pred -> Value_set.obj -> t
val arc_ref : ?inverse:bool -> Value_set.pred -> Label.t -> t

val star : t -> t
(** [e*], simplified: [∅* = ε* = ε], [(e⋆)⋆ = e*]. *)

val and_ : t -> t -> t
(** [e₁ ‖ e₂], simplified: [∅ ‖ x = x ‖ ∅ = ∅], [ε ‖ x = x ‖ ε = x]. *)

val or_ : t -> t -> t
(** [e₁ | e₂], simplified: [∅ | x = x | ∅ = x], [x | x = x]. *)

val not_ : t -> t
(** Complement (extension): [¬¬e = e]. *)

val and_all : t list -> t
val or_all : t list -> t

(** {1 Derived operators (§4)} *)

val plus : t -> t
(** [e⁺ = e ‖ e*]. *)

val opt : t -> t
(** [e? = e | ε]. *)

val repeat : int -> int option -> t -> t
(** [repeat m (Some n) e] is the range operator [e{m,n}]: between [m]
    and [n] occurrences, expanded as [e ‖ … ‖ e ‖ e? ‖ … ‖ e?] ([m]
    copies then [n−m] optionals) — equivalent to the paper's recurrence
    but linear in [n].  [repeat m None e] is [e{m,}]: [m] copies
    followed by [e*].  Raises [Invalid_argument] if [m < 0] or
    [n < m]. *)

(** {1 Observations} *)

val size : t -> int
(** Number of AST nodes — the measure of derivative growth (E2/E5). *)

val height : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

val nullable : t -> bool
(** ν(e): whether [e] matches the empty neighbourhood (§6).  [ν(∅) =
    false], [ν(ε) = true], [ν(vp→vo) = false], [ν(e⋆) = true],
    [ν(e₁‖e₂) = ν(e₁) ∧ ν(e₂)], [ν(e₁|e₂) = ν(e₁) ∨ ν(e₂)], and for
    the complement extension [ν(¬e) = ¬ν(e)]. *)

val refs : t -> Label.Set.t
(** Labels referenced anywhere in the expression. *)

val refs_under_not : t -> Label.Set.t
(** Labels referenced inside a negated subexpression.  Such references
    make recursion non-monotone (the coinductive hypothesis of §8's
    MatchShape rule could flip a verdict), so {!Schema.make} rejects
    them. *)

val has_ref : t -> bool
val has_inverse : t -> bool
val has_not : t -> bool

val arc_equal : arc -> arc -> bool
val arc_compare : arc -> arc -> int
(** Structural equality / total order on arc leaves — the hooks the
    hash-consing compiler uses to intern each distinct arc as one atom
    of the automaton alphabet. *)

val arcs : t -> arc list
(** All arc leaves, left to right. *)

val mentioned_preds : inverse:bool -> t -> Value_set.pred list
(** The distinct predicate sets of the expression's arcs in the given
    direction, in first-occurrence order. *)

val open_up : t -> t
(** Open-shape semantics (ShEx's default, where RSE is closed): the
    shape additionally tolerates any number of arcs whose predicate is
    mentioned by {e none} of its constraints — [e ‖ (p̄→.)⋆] with [p̄]
    the complement of the mentioned predicate sets.  When [e] uses
    inverse arcs, unmentioned incoming arcs are tolerated likewise. *)

val with_extra : Value_set.pred -> t -> t
(** ShEx's [EXTRA p]: tolerate any number of extra outgoing arcs with
    the given predicates regardless of their values —
    [e ‖ (p→.)⋆]. *)

val pp : Format.formatter -> t -> unit
(** Paper-style notation: [a→1 ‖ (b→{1, 2})⋆]. *)

val to_string : t -> string

(** {1 Ablation support} *)

(** The constructor set a derivative computation threads through.
    {!smart_ctors} simplifies per §4; {!raw_ctors} builds raw nodes, so
    derivatives grow unboundedly (experiment E5). *)
type ctors = {
  mk_and : t -> t -> t;
  mk_or : t -> t -> t;
  mk_not : t -> t;
}

val smart_ctors : ctors
(** Full normalisation: §4 rules + ACI + distributive factoring. *)

val aci_ctors : ctors
(** §4 rules + ACI normalisation but {e no} distributive factoring —
    the middle rung of the E5 ablation ladder. *)

val raw_ctors : ctors
(** No simplification at all. *)

(** Unsimplified constructors. *)
module Raw : sig
  val star : t -> t
  val and_ : t -> t -> t
  val or_ : t -> t -> t
  val not_ : t -> t
end

(* The server-mode flight recorder: checks slower than a configurable
   threshold are retained — verdict, explanation, and the work-counter
   deltas the check cost — in a bounded ring buffer, so "why was that
   request slow" is answerable after the fact without re-running it.
   The ring overwrites oldest-first; [seen] keeps counting so a dump
   says how much history was evicted. *)

type entry = {
  node : Rdf.Term.t;
  label : Label.t;
  seconds : float;
  at : float;
      (* wall-clock capture time, so a dump (or a journal spill) can be
         correlated with external logs *)
  request : int option;
      (* the serve request id active when the check ran — the join key
         between a slowlog entry and the response the client saw *)
  conformant : bool;
  explain : Explain.t option;
      (* the blame set of a slow non-conformant check; [None] for
         conformant checks (there is nothing to blame) *)
  work : (string * int) list;
      (* counter deltas attributable to this check (deriv_steps,
         backtrack_branches, …), non-zero entries only *)
}

type t = {
  mutable threshold_ms : float;
  ring : entry option array;
  mutable next : int;  (* next write slot *)
  mutable seen : int;  (* total recorded, including evicted *)
  mutable context : int option;  (* request id stamped onto new entries *)
}

let default_capacity = 128

let create ?(capacity = default_capacity) ~threshold_ms () =
  { threshold_ms;
    ring = Array.make (max 1 capacity) None;
    next = 0;
    seen = 0;
    context = None }

let threshold_ms t = t.threshold_ms
let set_threshold_ms t ms = t.threshold_ms <- ms
let context t = t.context
let set_context t rid = t.context <- rid
let capacity t = Array.length t.ring
let seen t = t.seen
let length t = min t.seen (Array.length t.ring)

let record t e =
  t.ring.(t.next) <- Some e;
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.seen <- t.seen + 1

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0;
  t.seen <- 0

(* Oldest first: the ring is chronological starting at [next] once it
   has wrapped, at 0 before. *)
let entries t =
  let n = Array.length t.ring in
  let start = if t.seen >= n then t.next else 0 in
  let out = ref [] in
  for i = length t - 1 downto 0 do
    match t.ring.((start + i) mod n) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  !out

let entry_to_json e =
  Json.Object
    ([ ("node", Json.String (Rdf.Term.to_string e.node));
       ("shape", Json.String (Label.to_string e.label));
       ("ms", Json.Number (e.seconds *. 1000.));
       ("at", Json.Number e.at);
       ("conformant", Json.Bool e.conformant) ]
    @ (match e.request with
      | Some rid -> [ ("request", Json.int rid) ]
      | None -> [])
    @ (match e.explain with
      | Some ex -> [ ("reason", Json.String (Explain.to_string ex)) ]
      | None -> [])
    @
    match e.work with
    | [] -> []
    | work ->
        [ ("work", Json.Object (List.map (fun (k, v) -> (k, Json.int v)) work))
        ])

let to_json t =
  Json.Object
    [ ("threshold_ms", Json.Number t.threshold_ms);
      ("capacity", Json.int (capacity t));
      ("seen", Json.int t.seen);
      ("entries", Json.Array (List.map entry_to_json (entries t))) ]

let pp_entry ppf e =
  Format.fprintf ppf "%8.3f ms  %s@%s  %s" (e.seconds *. 1000.)
    (Rdf.Term.to_string e.node)
    (Label.to_string e.label)
    (if e.conformant then "conformant" else "non-conformant");
  (match e.request with
  | Some rid -> Format.fprintf ppf " req=%d" rid
  | None -> ());
  List.iter
    (fun (k, v) -> if v > 0 then Format.fprintf ppf " %s=%d" k v)
    e.work;
  match e.explain with
  | Some ex -> Format.fprintf ppf "@.             %s" (Explain.to_string ex)
  | None -> ()

let pp ppf t =
  Format.fprintf ppf "slowlog: %d slow check%s (threshold %g ms%s)@."
    (length t)
    (if length t = 1 then "" else "s")
    t.threshold_ms
    (if t.seen > length t then
       Format.sprintf ", %d evicted" (t.seen - length t)
     else "");
  List.iter (fun e -> Format.fprintf ppf "  %a@." pp_entry e) (entries t)

(** Shape labels — the finite set Λ of §8.

    A Shape Expression Schema is a pair (Λ, δ) where δ maps labels to
    regular shape expressions.  Labels occur in object position of arcs
    (shape references) and as the subjects of typing judgements. *)

type t

val of_string : string -> t
(** [of_string "Person"] — the label written [<Person>] in ShExC. *)

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints [<Person>]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

(** The paper's baseline: direct implementation of the Fig. 1
    inference rules by backtracking.

    The [And] rule matches [e₁ ‖ e₂] against [g] by trying {e every}
    decomposition of [g] into ordered pairs [(g₁, g₂)] with
    [g₁ ⊎ g₂ = g] (Example 3: 2ⁿ pairs for n triples), recursively;
    likewise [Star2].  This is deliberately the naïve exponential
    procedure of §5 — it exists to reproduce the paper's comparison
    (experiment E1), and as an independent test oracle for the
    derivative matcher. *)

type check_ref = Label.t -> Rdf.Term.t -> bool

(** {1 Telemetry}

    The matcher reports [backtrack_branches] (one per inference-rule
    application, the same quantity {!matches_count} returns) and
    [backtrack_decompositions] (one per ordered pair generated while
    splitting a neighbourhood for [‖] or [⋆] — Example 3's 2ⁿ). *)

type instruments

val instruments : Telemetry.t -> instruments
val no_instruments : instruments

val matches :
  ?check_ref:check_ref ->
  ?instr:instruments ->
  Rdf.Term.t ->
  Rdf.Graph.t ->
  Rse.t ->
  bool
(** [matches n g e]: does Σgn (plus incoming arcs if [e] uses inverse
    arcs) satisfy [e] under the Fig. 1 rules? *)

val matches_count :
  ?check_ref:check_ref ->
  ?instr:instruments ->
  Rdf.Term.t ->
  Rdf.Graph.t ->
  Rse.t ->
  bool * int
(** Like {!matches} but also returns the number of rule applications
    explored — the work counter reported in experiment E1. *)

val matches_list :
  ?check_ref:check_ref ->
  ?instr:instruments ->
  Neigh.dtriple list ->
  Rse.t ->
  bool
(** Match an explicit neighbourhood (used by tests that exercise
    Example 8 directly). *)

type engine = Derivatives | Backtracking | Auto | Compiled

module Pair = struct
  type t = Rdf.Term.t * Label.t

  let compare (n1, l1) (n2, l2) =
    let c = Rdf.Term.compare n1 n2 in
    if c <> 0 then c else Label.compare l1 l2
end

module Pair_set = Set.Make (Pair)

(* The automaton backend (lib/automaton) registers itself here.  The
   indirection keeps the dependency arrow pointing outwards: core
   defines the contract, the automaton library fulfils it, and a
   session instantiates one backend so its transition tables are
   shared across every label, node and check of the session. *)

type cache_stats = {
  atoms : int;
  states : int;
  symbols : int;
  hits : int;
  misses : int;
}

type compiled_matcher =
  check_ref:(Label.t -> Rdf.Term.t -> bool) ->
  Rdf.Term.t ->
  Neigh.dtriple list ->
  bool

type compiled_backend = {
  compile_shape : Rse.t -> compiled_matcher;
  cache_stats : unit -> cache_stats;
  export_stats : Telemetry.t -> unit;
      (* fold the automaton cache counters into a registry (gauges
         compiled_atoms/states/symbols, counters compiled_hits/misses)
         so --engine-stats and --metrics are one code path *)
}

(* The factory receives the session's registry so the compiled engine
   can emit the same per-triple trace events as the interpreted one
   (from DFA edges instead of derivative expressions). *)
let compiled_backend_factory : (Telemetry.t -> compiled_backend) option ref =
  ref None

let set_compiled_backend f = compiled_backend_factory := Some f
let compiled_backend_installed () = Option.is_some !compiled_backend_factory

type compiled = Counting of Sorbe.t | Table of compiled_matcher | Generic

(* First-class dependency record of the fixpoint (PR 3 only emitted
   these edges as telemetry events; incremental revalidation needs
   them as data).  For every settled pair the tables hold the pairs
   its *last* evaluation consulted — the edge set the final verdict
   actually depends on — plus the reverse edges and a node index, so
   a graph delta can walk from edited nodes back to every memoised
   verdict that could observe it. *)
type dep_record = {
  deps : (Pair.t, Pair_set.t) Hashtbl.t;
      (* pair → pairs its last evaluation consulted *)
  rdeps : (Pair.t, Pair_set.t) Hashtbl.t;
      (* exact reverse edges of [deps] *)
  by_node : (Rdf.Term.t, Label.Set.t) Hashtbl.t;
      (* node → labels with a memoised verdict on that node *)
}

(* Per-shape attribution state (the [?profile] flag).  One labelled
   cell bundle per shape label, cached by {!Label.t} so the hot path
   resolves a label's cells once; plus the "charged so far" totals the
   self-cost computation needs: a nested evaluation (a lower-stratum
   reference settled inline) charges its own shape, and the outer
   evaluation subtracts what was charged during its window, so every
   unit of engine work is attributed to exactly one shape and the
   family sums reproduce the session-global counters. *)
type prof_cells = {
  c_checks : Telemetry.Counter.t;
  c_seconds : Telemetry.Span.t;
  c_deriv : Telemetry.Counter.t;
  c_back : Telemetry.Counter.t;
  c_sorbe : Telemetry.Counter.t;
  c_compiled : Telemetry.Counter.t;
}

type prof = {
  (* the global counters the deltas are read from *)
  p_deriv_total : Telemetry.Counter.t;
  p_back_total : Telemetry.Counter.t;
  p_sorbe_total : Telemetry.Counter.t;
  (* labelled families, keyed by shape (one by focus node) *)
  p_checks : Telemetry.Counter.t Telemetry.family;
  p_seconds : Telemetry.Span.t Telemetry.family;
  p_deriv : Telemetry.Counter.t Telemetry.family;
  p_back : Telemetry.Counter.t Telemetry.family;
  p_sorbe : Telemetry.Counter.t Telemetry.family;
  p_compiled : Telemetry.Counter.t Telemetry.family;
  p_flips : Telemetry.Counter.t Telemetry.family;
  p_node_seconds : Telemetry.Span.t Telemetry.family;
  p_cells : (Label.t, prof_cells) Hashtbl.t;
  (* how much of each global counter is already charged to some shape *)
  mutable charged_deriv : int;
  mutable charged_back : int;
  mutable charged_sorbe : int;
  mutable charged_compiled : int;
  mutable charged_seconds : float;
  (* runtime resource gauges, sampled at span boundaries *)
  g_minor_words : Telemetry.Counter.t;
  g_major_words : Telemetry.Counter.t;
  g_heap_words : Telemetry.Counter.t;
  g_top_heap_words : Telemetry.Counter.t;
  g_compactions : Telemetry.Counter.t;
  g_minor_collections : Telemetry.Counter.t;
  g_major_collections : Telemetry.Counter.t;
  g_memo_entries : Telemetry.Counter.t;
}

let make_prof tele =
  let shape_counter ?help name =
    Telemetry.counter_family tele ?help ~key:"shape" name
  in
  {
    p_deriv_total = Telemetry.counter tele "deriv_steps";
    p_back_total = Telemetry.counter tele "backtrack_branches";
    p_sorbe_total = Telemetry.counter tele "sorbe_counter_updates";
    p_checks =
      shape_counter
        ~help:"Evaluations per shape (fixpoint re-runs included)"
        Profile.checks_family;
    p_seconds =
      Telemetry.span_family tele ~key:"shape"
        ~help:"Self wall time of evaluations of this shape"
        Profile.seconds_family;
    p_deriv =
      shape_counter ~help:"Derivative steps attributed to this shape"
        Profile.deriv_family;
    p_back =
      shape_counter ~help:"Backtracking branches attributed to this shape"
        Profile.backtrack_family;
    p_sorbe =
      shape_counter ~help:"SORBE counter updates attributed to this shape"
        Profile.sorbe_family;
    p_compiled =
      shape_counter ~help:"Compiled-DFA transitions attributed to this shape"
        Profile.compiled_family;
    p_flips =
      shape_counter ~help:"Fixpoint hypotheses on this shape refuted"
        Profile.flips_family;
    p_node_seconds =
      Telemetry.span_family tele ~key:"node"
        ~help:"Self wall time of checks of this focus node"
        Profile.node_seconds_family;
    p_cells = Hashtbl.create 16;
    charged_deriv = 0;
    charged_back = 0;
    charged_sorbe = 0;
    charged_compiled = 0;
    charged_seconds = 0.;
    g_minor_words =
      Telemetry.gauge tele ~help:"Gc.quick_stat minor_words" "gc_minor_words";
    g_major_words =
      Telemetry.gauge tele ~help:"Gc.quick_stat major_words" "gc_major_words";
    g_heap_words =
      Telemetry.gauge tele ~help:"Major heap size in words" "gc_heap_words";
    g_top_heap_words =
      Telemetry.gauge tele ~help:"Largest major heap size reached, in words"
        "gc_top_heap_words";
    g_compactions =
      Telemetry.gauge tele ~help:"Heap compactions" "gc_compactions";
    g_minor_collections =
      Telemetry.gauge tele ~help:"Minor collections" "gc_minor_collections";
    g_major_collections =
      Telemetry.gauge tele ~help:"Major collection cycles"
        "gc_major_collections";
    g_memo_entries =
      Telemetry.gauge tele ~help:"Memoised (node, shape) verdicts"
        "memo_entries";
  }

type session = {
  engine : engine;
  schema : Schema.t;
  mutable graph : Rdf.Graph.t option;
      (* the structural view; mutable for {!set_graph} (incremental
         sessions swap in the edited graph and invalidate the affected
         memo entries) and [None] until demanded on columnar-primary
         sessions ({!session_columnar}), which materialise it lazily *)
  mutable columnar : Rdf.Columnar.t option;
      (* the interned accelerator: when present, neighbourhoods are
         binary-searched slices of the frozen int columns instead of
         structural index walks.  Canonical ids keep the slices in
         triple order, so verdicts, traces and reports are
         byte-identical either way (the oracle's interned arm pins
         this). *)
  interned : bool;
      (* whether {!set_graph} should rebuild the accelerator *)
  domains : int;
      (* requested bulk-validation parallelism; 1 = sequential *)
  proven : (Pair.t, bool) Hashtbl.t;  (* settled verdicts, memoised *)
  dep_record : dep_record option;     (* Some iff [record_deps] *)
  compiled : (Label.t, compiled) Hashtbl.t;
      (* per-label compilation: SORBE counting matcher or lazy DFA *)
  backend : compiled_backend option;
      (* session-wide automaton store (Compiled, and Auto's fallback) *)
  tele : Telemetry.t;
  deriv_instr : Deriv.instruments;
  back_instr : Backtrack.instruments;
  sorbe_instr : Sorbe.instruments;
  fix_evals : Telemetry.Counter.t;    (* fixpoint_iterations *)
  fix_flips : Telemetry.Counter.t;    (* fixpoint_flips *)
  fix_demands : Telemetry.Counter.t;  (* fixpoint_demands *)
  profile : prof option;              (* Some iff [?profile] *)
  mutable slowlog : Slowlog.t option; (* Some iff a slow-ms threshold *)
  slow_work : (string * Telemetry.Counter.t) list;
      (* the counters a slowlog entry reports deltas of *)
}

let make_session ~engine ~telemetry ~domains ~record_deps ~profile ~slow_ms
    ~graph ~columnar ~interned schema =
  let backend =
    match (engine, !compiled_backend_factory) with
    | (Compiled | Auto), Some make -> Some (make telemetry)
    | Compiled, None ->
        failwith
          "Validate: engine Compiled requires the automaton backend \
           (link shex_automaton, or call Shex_automaton.Engine.install)"
    | _, _ -> None
  in
  { engine; schema; graph; columnar; interned;
    domains = max 1 domains;
    proven = Hashtbl.create 256;
    dep_record =
      (if record_deps then
         Some
           { deps = Hashtbl.create 256;
             rdeps = Hashtbl.create 256;
             by_node = Hashtbl.create 64 }
       else None);
    compiled = Hashtbl.create 16;
    backend;
    tele = telemetry;
    (* Instruments are resolved once here; on the default (disabled)
       registry every later use is a single branch. *)
    deriv_instr = Deriv.instruments telemetry;
    back_instr = Backtrack.instruments telemetry;
    sorbe_instr = Sorbe.instruments telemetry;
    fix_evals = Telemetry.counter telemetry "fixpoint_iterations";
    fix_flips = Telemetry.counter telemetry "fixpoint_flips";
    fix_demands = Telemetry.counter telemetry "fixpoint_demands";
    profile = (if profile then Some (make_prof telemetry) else None);
    slowlog =
      Option.map (fun threshold_ms -> Slowlog.create ~threshold_ms ()) slow_ms;
    slow_work =
      List.map
        (fun name -> (name, Telemetry.counter telemetry name))
        [ "deriv_steps"; "backtrack_branches"; "backtrack_decompositions";
          "sorbe_matches"; "sorbe_counter_updates"; "fixpoint_iterations";
          "fixpoint_flips"; "fixpoint_demands" ] }

let session ?(engine = Derivatives) ?(telemetry = Telemetry.disabled)
    ?(domains = 1) ?(record_deps = false) ?(profile = false) ?slow_ms
    ?(interned = false) schema graph =
  make_session ~engine ~telemetry ~domains ~record_deps ~profile ~slow_ms
    ~graph:(Some graph)
    ~columnar:(if interned then Some (Rdf.Columnar.of_graph graph) else None)
    ~interned schema

let session_columnar ?(engine = Derivatives) ?(telemetry = Telemetry.disabled)
    ?(domains = 1) ?(profile = false) ?slow_ms schema columnar =
  make_session ~engine ~telemetry ~domains ~record_deps:false ~profile
    ~slow_ms ~graph:None ~columnar:(Some columnar) ~interned:true schema

let telemetry st = st.tele
let schema st = st.schema

let graph st =
  match st.graph with
  | Some g -> g
  | None ->
      (* Columnar-primary session: materialise the structural view on
         first demand (the Backtracking baseline, incremental swaps
         and external callers want a {!Rdf.Graph.t}).  The hot
         validation paths never reach this. *)
      let g = Rdf.Columnar.to_graph (Option.get st.columnar) in
      st.graph <- Some g;
      g

let interned st = Option.is_some st.columnar
let columnar_store st = st.columnar
let engine st = st.engine
let domains st = st.domains
let record_deps st = Option.is_some st.dep_record
let memo_size st = Hashtbl.length st.proven
let profiling st = Option.is_some st.profile
let slowlog st = st.slowlog

let set_slow_ms st = function
  | None -> st.slowlog <- None
  | Some ms -> (
      match st.slowlog with
      | Some slog -> Slowlog.set_threshold_ms slog ms
      | None -> st.slowlog <- Some (Slowlog.create ~threshold_ms:ms ()))

let set_graph st graph =
  st.graph <- Some graph;
  st.columnar <-
    (if st.interned then Some (Rdf.Columnar.of_graph graph) else None)

(* Σgn through whichever representation the session holds: a
   binary-searched columnar slice when the accelerator is present, the
   structural indexes otherwise.  Either way the list is in triple
   order, so every engine sees the same consumption sequence. *)
let neighbourhood st ~include_inverse n =
  match st.columnar with
  | Some c -> Neigh.of_columnar ~include_inverse n c
  | None -> Neigh.of_node ~include_inverse n (graph st)

let dependencies_of st p =
  match st.dep_record with
  | None -> []
  | Some r ->
      Option.fold ~none:[] ~some:Pair_set.elements
        (Hashtbl.find_opt r.deps p)

(* Reverse-edge maintenance: [unlink_rdep r ~dependent q] removes the
   edge "dependent consulted q" from the reverse table. *)
let unlink_rdep r ~dependent q =
  match Hashtbl.find_opt r.rdeps q with
  | None -> ()
  | Some s ->
      let s = Pair_set.remove dependent s in
      if Pair_set.is_empty s then Hashtbl.remove r.rdeps q
      else Hashtbl.replace r.rdeps q s

(* Replace the recorded edge set of [p] with the consultations of its
   latest evaluation, keeping [rdeps] exact (stale reverse edges would
   make later invalidations walk — and kill — verdicts that no longer
   depend on the flipped pair). *)
let record_edges r p used =
  let now = Pair_set.of_list used in
  let before =
    Option.value (Hashtbl.find_opt r.deps p) ~default:Pair_set.empty
  in
  let link q =
    let s =
      Option.value (Hashtbl.find_opt r.rdeps q) ~default:Pair_set.empty
    in
    Hashtbl.replace r.rdeps q (Pair_set.add p s)
  in
  Pair_set.iter (unlink_rdep r ~dependent:p) (Pair_set.diff before now);
  Pair_set.iter link (Pair_set.diff now before);
  Hashtbl.replace r.deps p now

let index_node r ((n, l) : Pair.t) =
  let ls =
    Option.value (Hashtbl.find_opt r.by_node n) ~default:Label.Set.empty
  in
  Hashtbl.replace r.by_node n (Label.Set.add l ls)

let compile st l e =
  match Hashtbl.find_opt st.compiled l with
  | Some c -> c
  | None ->
      let table () =
        match st.backend with
        | Some b -> Table (b.compile_shape e)
        | None -> Generic
      in
      let c =
        match st.engine with
        | Compiled -> table ()
        | _ -> (
            match Sorbe.of_rse e with
            | Some sorbe -> Counting sorbe
            | None -> table ())
      in
      Hashtbl.replace st.compiled l c;
      c

let compiled_stats st = Option.map (fun b -> b.cache_stats ()) st.backend

(* Runtime resource gauges ("where is the memory"): GC words/heap/
   compactions plus the verdict-memo size, sampled into the registry at
   span boundaries — the end of each bulk call and every [metrics]
   read.  Only profiled sessions sample, so unprofiled snapshots (and
   the byte-identity guarantees of the parallel path, E12) are
   untouched. *)
let sample_resources st =
  match st.profile with
  | None -> ()
  | Some p ->
      let q = Gc.quick_stat () in
      Telemetry.Counter.set p.g_minor_words (int_of_float q.Gc.minor_words);
      Telemetry.Counter.set p.g_major_words (int_of_float q.Gc.major_words);
      Telemetry.Counter.set p.g_heap_words q.Gc.heap_words;
      Telemetry.Counter.set p.g_top_heap_words q.Gc.top_heap_words;
      Telemetry.Counter.set p.g_compactions q.Gc.compactions;
      Telemetry.Counter.set p.g_minor_collections q.Gc.minor_collections;
      Telemetry.Counter.set p.g_major_collections q.Gc.major_collections;
      Telemetry.Counter.set p.g_memo_entries (Hashtbl.length st.proven)

(* The unified snapshot: engine counters live in the registry already;
   the automaton backend's pull-style cache counters are folded in at
   read time so one exposition covers every engine.  The DFA state
   gauges ([compiled_states] & co.) land here too, completing the
   resource picture of a profiled session. *)
let metrics st =
  (match st.backend with
  | Some b when Telemetry.enabled st.tele -> b.export_stats st.tele
  | Some _ | None -> ());
  sample_resources st;
  Telemetry.snapshot st.tele

type outcome = { ok : bool; typing : Typing.t; explain : Explain.t option }

let reason o = Option.map Explain.to_string o.explain

let prof_cells p l =
  match Hashtbl.find_opt p.p_cells l with
  | Some c -> c
  | None ->
      let s = Label.to_string l in
      let c =
        { c_checks = Telemetry.labelled p.p_checks s;
          c_seconds = Telemetry.labelled p.p_seconds s;
          c_deriv = Telemetry.labelled p.p_deriv s;
          c_back = Telemetry.labelled p.p_back s;
          c_sorbe = Telemetry.labelled p.p_sorbe s;
          c_compiled = Telemetry.labelled p.p_compiled s }
      in
      Hashtbl.replace p.p_cells l c;
      c

(* DFA work is pull-style (the backend owns its counters); hits +
   misses is one transition taken per consumed triple. *)
let compiled_steps st =
  match st.backend with
  | Some b ->
      let s = b.cache_stats () in
      s.hits + s.misses
  | None -> 0

(* Wrap one matcher run with self-cost attribution: counter deltas and
   wall time of the window, minus whatever nested evaluations (lower
   strata settled inline through [check_ref]) charged to their own
   shapes meanwhile.  Every unit of work is charged exactly once, so
   summing a family reproduces the global counter — the ≥95 %
   attribution-coverage invariant is structural, not statistical. *)
let profiled_run st p n l run () =
  let cells = prof_cells p l in
  let d0 = Telemetry.Counter.value p.p_deriv_total
  and b0 = Telemetry.Counter.value p.p_back_total
  and s0 = Telemetry.Counter.value p.p_sorbe_total
  and c0 = compiled_steps st
  and cd0 = p.charged_deriv
  and cb0 = p.charged_back
  and cs0 = p.charged_sorbe
  and cc0 = p.charged_compiled
  and ct0 = p.charged_seconds in
  let t0 = Telemetry.now () in
  Fun.protect run ~finally:(fun () ->
      let dt = max 0. (Telemetry.now () -. t0) in
      let self total before charged0 charged_now =
        total - before - (charged_now - charged0)
      in
      let dd =
        self (Telemetry.Counter.value p.p_deriv_total) d0 cd0 p.charged_deriv
      and db =
        self (Telemetry.Counter.value p.p_back_total) b0 cb0 p.charged_back
      and ds =
        self (Telemetry.Counter.value p.p_sorbe_total) s0 cs0 p.charged_sorbe
      and dc = self (compiled_steps st) c0 cc0 p.charged_compiled in
      let dts = dt -. (p.charged_seconds -. ct0) in
      Telemetry.Counter.incr cells.c_checks;
      Telemetry.Counter.add cells.c_deriv dd;
      Telemetry.Counter.add cells.c_back db;
      Telemetry.Counter.add cells.c_sorbe ds;
      Telemetry.Counter.add cells.c_compiled dc;
      Telemetry.Span.record cells.c_seconds dts;
      Telemetry.Span.record
        (Telemetry.labelled p.p_node_seconds (Rdf.Term.to_string n))
        dts;
      p.charged_deriv <- p.charged_deriv + dd;
      p.charged_back <- p.charged_back + db;
      p.charged_sorbe <- p.charged_sorbe + ds;
      p.charged_compiled <- p.charged_compiled + dc;
      p.charged_seconds <- p.charged_seconds +. (if dts < 0. then 0. else dts))

(* One evaluation of a (node, label) pair under the current candidate
   valuation.  References to settled pairs read the memo table;
   same-stratum references read [value] and are recorded in the use
   list; references to lower strata are settled on the spot through
   [settle] (they are final by stratification, so negation over them
   is sound). *)
let rec evaluate st ~value ~demand ((n, l) : Pair.t) =
  match Schema.find_shape st.schema l with
  | None -> (false, [])
  | Some { Schema.focus = Some vo; _ }
    when not (Value_set.obj_mem vo n) ->
      (* The focus node itself fails the shape's node constraint. *)
      (false, [])
  | Some { Schema.expr = e; _ } ->
      let used = ref [] in
      let stratum = Schema.stratum st.schema l in
      let tracing = Telemetry.tracing st.tele in
      let check_ref l' o =
        let q = (o, l') in
        used := q :: !used;
        let settled = Hashtbl.find_opt st.proven q in
        let answer =
          match settled with
          | Some b -> b
          | None ->
              if Schema.stratum st.schema l' < stratum then begin
                solve st q;
                Hashtbl.find st.proven q
              end
              else begin
                demand q;
                value q
              end
        in
        (* The dependency edge of the fixpoint: which hypothesis this
           verdict consulted, and whether the answer was a settled
           fact or the optimistic candidate valuation. *)
        if tracing then
          Telemetry.emit st.tele
            (Telemetry.instant "fixpoint_dep"
               [ ("node", Telemetry.String (Rdf.Term.to_string n));
                 ("shape", Telemetry.String (Label.to_string l));
                 ("on_node", Telemetry.String (Rdf.Term.to_string o));
                 ("on_shape", Telemetry.String (Label.to_string l'));
                 ("answer", Telemetry.Bool answer);
                 ("settled", Telemetry.Bool (Option.is_some settled)) ]);
        answer
      in
      (* One provenance span per (node, shape) evaluation, labelled
         with the matcher that actually ran (Auto resolves per
         shape). *)
      (* The neighbourhood is computed inside the matcher closure (so
         profiled runs charge it to the shape, as when the engines
         computed it themselves) through {!neighbourhood} — one binary
         search per evaluation on interned sessions. *)
      let deriv_run () =
        let dts = neighbourhood st ~include_inverse:(Rse.has_inverse e) n in
        Deriv.matches_dts ~check_ref ~instr:st.deriv_instr n dts e
      in
      let matcher_name, run =
        match st.engine with
        | Derivatives -> ("derivatives", deriv_run)
        | Backtracking ->
            (* The Fig.-1 baseline decomposes whole neighbourhood
               graphs, so it stays on the structural view. *)
            ( "backtracking",
              fun () ->
                Backtrack.matches ~check_ref ~instr:st.back_instr n (graph st)
                  e )
        | Auto | Compiled -> (
            (* Per-label compilation (experiments E4, E9): Auto uses
               the linear counting matcher when the shape is in the
               single-occurrence fragment and the lazy DFA otherwise;
               Compiled always uses the DFA. *)
            match compile st l e with
            | Counting sorbe ->
                ( "sorbe",
                  fun () ->
                    let dts =
                      neighbourhood st
                        ~include_inverse:(Sorbe.has_inverse sorbe) n
                    in
                    Sorbe.matches_dts ~check_ref ~instr:st.sorbe_instr n dts
                      sorbe )
            | Table matcher ->
                ( "compiled",
                  fun () ->
                    let dts =
                      neighbourhood st ~include_inverse:(Rse.has_inverse e) n
                    in
                    matcher ~check_ref n dts )
            | Generic -> ("derivatives", deriv_run))
      in
      let run =
        match st.profile with
        | Some p -> profiled_run st p n l run
        | None -> run
      in
      if tracing then
        Telemetry.emit st.tele
          (Telemetry.span_begin "check"
             [ ("node", Telemetry.String (Rdf.Term.to_string n));
               ("shape", Telemetry.String (Label.to_string l));
               ("engine", Telemetry.String matcher_name) ]);
      (* The span must close even when the matcher raises (a user
         value-set predicate, an out-of-memory shard worker): an
         unbalanced begin would corrupt the span tree of every later
         event the sink sees. *)
      let span_end fields =
        if tracing then
          Telemetry.emit st.tele
            (Telemetry.span_end "check"
               (("node", Telemetry.String (Rdf.Term.to_string n))
               :: ("shape", Telemetry.String (Label.to_string l))
               :: fields))
      in
      let ok =
        match run () with
        | ok -> ok
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            span_end [ ("raised", Telemetry.String (Printexc.to_string e)) ];
            Printexc.raise_with_backtrace e bt
      in
      span_end [ ("ok", Telemetry.Bool ok) ];
      (ok, !used)

(* Greatest-fixpoint solver (chaotic iteration).  All demanded pairs
   start optimistically [true] — the coinductive hypothesis of §8's
   MatchShape rule — and can only flip to [false] when their rule
   fails, re-triggering the pairs that relied on them.  Verdicts are
   monotone in the same-stratum reference answers because
   {!Schema.make} rejects negation inside a stratum, so the iteration
   terminates at the greatest fixpoint in polynomially many
   evaluations; negated references live in lower strata and are
   settled before use. *)
and solve st root =
  if not (Hashtbl.mem st.proven root) then begin
    let value : (Pair.t, bool) Hashtbl.t = Hashtbl.create 64 in
    let dependents : (Pair.t, Pair_set.t) Hashtbl.t = Hashtbl.create 64 in
    let queue = Queue.create () in
    let demand p =
      if not (Hashtbl.mem value p) then begin
        Telemetry.Counter.incr st.fix_demands;
        Hashtbl.replace value p true;
        Queue.add p queue
      end
    in
    demand root;
    while not (Queue.is_empty queue) do
      let p = Queue.pop queue in
      (* A pair already settled false needs no re-evaluation. *)
      if Hashtbl.find value p then begin
        Telemetry.Counter.incr st.fix_evals;
        let ok, used =
          evaluate st ~value:(fun q -> Hashtbl.find value q) ~demand p
        in
        (* The last evaluation of each pair wins: its consultations are
           the edges the settled verdict depends on. *)
        (match st.dep_record with
        | Some r -> record_edges r p used
        | None -> ());
        List.iter
          (fun q ->
            let prev =
              Option.value
                (Hashtbl.find_opt dependents q)
                ~default:Pair_set.empty
            in
            Hashtbl.replace dependents q (Pair_set.add p prev))
          used;
        if not ok then begin
          Telemetry.Counter.incr st.fix_flips;
          (match st.profile with
          | Some prof ->
              Telemetry.Counter.incr
                (Telemetry.labelled prof.p_flips (Label.to_string (snd p)))
          | None -> ());
          Hashtbl.replace value p false;
          let ds =
            Option.value
              (Hashtbl.find_opt dependents p)
              ~default:Pair_set.empty
          in
          let requeued = ref 0 in
          Pair_set.iter
            (fun d ->
              if Hashtbl.find value d then begin
                incr requeued;
                Queue.add d queue
              end)
            ds;
          (* The refutation edge: this hypothesis flipped to false and
             re-triggered the verdicts that relied on it. *)
          if Telemetry.tracing st.tele then
            let fn, fl = p in
            Telemetry.emit st.tele
              (Telemetry.instant "fixpoint_flip"
                 [ ("node", Telemetry.String (Rdf.Term.to_string fn));
                   ("shape", Telemetry.String (Label.to_string fl));
                   ("requeued", Telemetry.Int !requeued) ])
        end
      end
    done;
    Hashtbl.iter
      (fun p v ->
        Hashtbl.replace st.proven p v;
        match st.dep_record with
        | Some r -> index_node r p
        | None -> ())
      value
  end

let verdict st p =
  solve st p;
  Hashtbl.find st.proven p

(* Dependency-frontier invalidation: every memoised verdict anchored
   on an edited node, plus — transitively, backwards along the
   recorded edges — every verdict that consulted one of those.  What
   remains in the memo was computed by evaluations that read only
   unchanged neighbourhoods and reference answers that are themselves
   retained, so re-running them against the new graph would reproduce
   the memoised verdict verbatim; dropping exactly the frontier and
   re-solving it therefore converges to the same greatest fixpoint as
   a full from-scratch run (the oracle's edit-script arm checks this
   equivalence mechanically). *)
let invalidate_nodes st nodes =
  match st.dep_record with
  | None ->
      (* No recorded edges: the only sound reaction to a graph change
         is dropping the whole memo (a full revalidation). *)
      let all = Hashtbl.fold (fun p v acc -> (p, v) :: acc) st.proven [] in
      Hashtbl.reset st.proven;
      all
  | Some r ->
      let visited = ref Pair_set.empty in
      let queue = Queue.create () in
      let push p =
        if Hashtbl.mem st.proven p && not (Pair_set.mem p !visited) then begin
          visited := Pair_set.add p !visited;
          Queue.add p queue
        end
      in
      List.iter
        (fun n ->
          match Hashtbl.find_opt r.by_node n with
          | None -> ()
          | Some ls -> Label.Set.iter (fun l -> push (n, l)) ls)
        nodes;
      let frontier = ref [] in
      while not (Queue.is_empty queue) do
        let p = Queue.pop queue in
        frontier := (p, Hashtbl.find st.proven p) :: !frontier;
        match Hashtbl.find_opt r.rdeps p with
        | Some dependents -> Pair_set.iter push dependents
        | None -> ()
      done;
      (* Drop the frontier from the memo and the dependency tables.
         Every dependent of a frontier pair is itself in the frontier
         (that is what the backwards walk computes), so unlinking each
         dropped pair from the deps of what it consulted leaves the
         tables exactly describing the retained memo. *)
      List.iter
        (fun (((n, l) as p), _) ->
          Hashtbl.remove st.proven p;
          (match Hashtbl.find_opt r.deps p with
          | Some consulted ->
              Pair_set.iter (unlink_rdep r ~dependent:p) consulted;
              Hashtbl.remove r.deps p
          | None -> ());
          match Hashtbl.find_opt r.by_node n with
          | None -> ()
          | Some ls ->
              let ls = Label.Set.remove l ls in
              if Label.Set.is_empty ls then Hashtbl.remove r.by_node n
              else Hashtbl.replace r.by_node n ls)
        !frontier;
      !frontier

(* The typing τ produced by a successful check: the root fact plus the
   facts its (final) match relies on, transitively — mirroring how the
   typed derivative of §8 combines sub-typings with ⊎. *)
let typing_of st root =
  let rec closure visited p =
    if Pair_set.mem p visited || not (verdict st p) then visited
    else
      let visited = Pair_set.add p visited in
      let _, used =
        evaluate st ~value:(fun q -> verdict st q) ~demand:(fun _ -> ()) p
      in
      List.fold_left closure visited used
  in
  Pair_set.fold
    (fun (n, l) acc -> Typing.add n l acc)
    (closure Pair_set.empty root)
    Typing.empty

let failure_explain st n l =
  match Schema.find_shape st.schema l with
  | None -> Some (Explain.No_shape { node = n; label = l })
  | Some { Schema.focus = Some vo; _ } when not (Value_set.obj_mem vo n) ->
      Some (Explain.Node_constraint { node = n; constraint_ = vo })
  | Some { Schema.expr = e; _ } ->
      let check_ref l' o = verdict st (o, l') in
      let dts = neighbourhood st ~include_inverse:(Rse.has_inverse e) n in
      let trace = Deriv.matches_trace_dts ~check_ref n dts e in
      Explain.of_trace ~check_ref ~node:n ~label:l trace

let plain_check st n l =
  if verdict st (n, l) then
    { ok = true; typing = typing_of st (n, l); explain = None }
  else { ok = false; typing = Typing.empty; explain = failure_explain st n l }

(* Slow-validation capture: time the whole check (first checks of a
   pair include the fixpoint solve they trigger — the honest cost of
   answering that question on a cold memo) and retain it when over
   threshold, with the work-counter deltas of the window.  The deltas
   need an enabled registry; the wall clock and explanations do not,
   so [--slow-ms] works on otherwise un-instrumented sessions. *)
let slow_values st =
  List.map (fun (k, c) -> (k, Telemetry.Counter.value c)) st.slow_work

let slow_delta st before =
  let now = slow_values st in
  List.filter_map
    (fun (k, v0) ->
      let v = List.assoc k now - v0 in
      if v > 0 then Some (k, v) else None)
    before

let slow_capture st slog n l f ~conformant ~explain_of =
  let before = slow_values st in
  let t0 = Telemetry.now () in
  let result = f () in
  let t1 = Telemetry.now () in
  (* Wall clock, so a backwards NTP step can make [t1 < t0]; clamping
     keeps a clock step from recording a nonsense negative duration
     (it can still hide one genuinely slow check — acceptable). *)
  let dt = if t1 > t0 then t1 -. t0 else 0. in
  if dt *. 1000. >= Slowlog.threshold_ms slog then
    Slowlog.record slog
      { Slowlog.node = n; label = l; seconds = dt; at = t1;
        request = Slowlog.context slog;
        conformant = conformant result; explain = explain_of result;
        work = slow_delta st before };
  result

let check st n l =
  match st.slowlog with
  | None -> plain_check st n l
  | Some slog ->
      slow_capture st slog n l
        (fun () -> plain_check st n l)
        ~conformant:(fun o -> o.ok)
        ~explain_of:(fun o -> o.explain)

let check_bool st n l =
  match st.slowlog with
  | None -> verdict st (n, l)
  | Some slog ->
      slow_capture st slog n l
        (fun () -> verdict st (n, l))
        ~conformant:Fun.id
        ~explain_of:(fun ok -> if ok then None else failure_explain st n l)

(* The parallel subsystem (lib/parallel) registers its bulk runner
   here, mirroring the compiled-backend hook above: core owns the
   contract and the decision of when sharding applies; the parallel
   library owns the domains.  Sequential fallbacks keep the observable
   behaviour at [domains = 1] byte-for-byte identical to [check] in a
   fold, and tracing always forces the sequential path because event
   sinks (and the span tree they rebuild) are single-threaded. *)
let bulk_checker :
    (session -> (Rdf.Term.t * Label.t) list -> outcome list) option ref =
  ref None

let set_bulk_checker f = bulk_checker := Some f
let bulk_checker_installed () = Option.is_some !bulk_checker

let check_all st associations =
  let outcomes =
    match !bulk_checker with
    | Some bulk
      when st.domains > 1
           && not (Telemetry.tracing st.tele)
           && List.compare_length_with associations 2 >= 0 ->
        bulk st associations
    | _ -> List.map (fun (n, l) -> check st n l) associations
  in
  sample_resources st;
  outcomes

let validate_graph st =
  let nodes =
    match st.columnar with
    | Some c -> Rdf.Columnar.nodes c
    | None -> Rdf.Graph.nodes (graph st)
  in
  let labels = Schema.labels st.schema in
  let typing =
    List.fold_left
      (fun acc n ->
        List.fold_left
          (fun acc l ->
            (* [check_bool], not bare [verdict]: whole-graph runs feed
               the slowlog too. *)
            if check_bool st n l then Typing.add n l acc else acc)
          acc labels)
      Typing.empty nodes
  in
  sample_resources st;
  typing

let validate ?engine schema graph n l =
  check (session ?engine schema graph) n l

(** Structured validation reports.

    A report is the result of checking a set of (node, label)
    associations — typically obtained from a {!Shape_map} — against a
    graph: one entry per association with the verdict and, on failure,
    the human-readable reason from the derivative trace.

    Reports render as a text table, as a result shape map
    ([node@<Shape>] / [node@!<Shape>], the ShEx convention), and as
    JSON for tooling. *)

type status = Conformant | Nonconformant

type entry = {
  node : Rdf.Term.t;
  label : Label.t;
  status : status;
  explain : Explain.t option;
      (** structured failure explanation (blame set), [None] on
          success *)
}

val reason : entry -> string option
(** The rendered form of [explain] ({!Explain.to_string}). *)

type t = {
  entries : entry list;
  typing : Typing.t;
      (** all (node, label) facts established by the conformant checks *)
}

val run : Validate.session -> (Rdf.Term.t * Label.t) list -> t
(** Check every association and collect the outcomes.  Runs through
    {!Validate.check_all}, so a session created with [~domains:n]
    (n > 1) validates the associations across [n] OCaml domains; the
    report is identical to the sequential one either way. *)

val run_shape_map : Validate.session -> Shape_map.t -> Rdf.Graph.t -> t
(** Resolve the shape map against the graph, then {!run}. *)

val conformant : t -> entry list
val nonconformant : t -> entry list
val all_conformant : t -> bool

val pp : Format.formatter -> t -> unit
(** Text table: one line per entry with verdict and reason. *)

val to_result_shape_map : t -> string
(** The ShEx result-shape-map convention: [node@<S>] for conformant
    entries, [node@!<S>] for nonconformant ones, comma-separated. *)

val to_json : ?metrics:Telemetry.snapshot -> ?profile:Profile.t -> t -> Json.t
(** [{ "entries": [ {"node": …, "shape": …, "status": "conformant",
    "reason": …, "explain": …}, … ], "conformant": n,
    "nonconformant": m }] — nonconformant entries carry both the
    rendered ["reason"] string and the structured ["explain"] member
    ({!Explain.to_json}).  With [?metrics] (the CLI's
    [--json --metrics=json] combination) a final ["metrics"] member
    carries the session's {!Validate.metrics} snapshot; with
    [?profile] (the CLI's [--json --profile]) a ["profile"] member
    carries the attribution tables ({!Profile.to_json}). *)

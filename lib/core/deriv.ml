type check_ref = Label.t -> Rdf.Term.t -> bool

let no_refs : check_ref = fun _ _ -> false

type instruments = {
  tele : Telemetry.t;
  steps : Telemetry.Counter.t;
  size_before : Telemetry.Histogram.t;
  size_after : Telemetry.Histogram.t;
}

let instruments tele =
  {
    tele;
    steps = Telemetry.counter tele "deriv_steps";
    size_before = Telemetry.histogram tele "deriv_size_before";
    size_after = Telemetry.histogram tele "deriv_size_after";
  }

let no_instruments = instruments Telemetry.disabled

(* One derivative step's worth of accounting.  Only reached when the
   registry is enabled, so the O(size) expression walks below never
   run on the disabled path. *)
let record instr n dt before after =
  Telemetry.Counter.incr instr.steps;
  Telemetry.Histogram.observe instr.size_before (Rse.size before);
  Telemetry.Histogram.observe instr.size_after (Rse.size after);
  if Telemetry.tracing instr.tele then
    Telemetry.emit instr.tele
      (Telemetry.instant "deriv_step"
         ([ ("focus", Telemetry.String (Rdf.Term.to_string n));
            ("triple", Telemetry.String (Format.asprintf "%a" Neigh.pp dt));
            ("size_before", Telemetry.Int (Rse.size before));
            ("size_after", Telemetry.Int (Rse.size after));
            ("nullable", Telemetry.Bool (Rse.nullable after));
            ("empty", Telemetry.Bool (Rse.equal after Rse.empty)) ]
         @
         if Telemetry.residuals instr.tele then
           [ ("before", Telemetry.String (Rse.to_string before));
             ("after", Telemetry.String (Rse.to_string after)) ]
         else []))

(* The ν check at neighbourhood exhaustion (the last line of the
   paper's walk tables): emitted only when all triples were consumed
   without pruning to ∅. *)
let record_nullable instr n residual verdict =
  if Telemetry.tracing instr.tele then
    Telemetry.emit instr.tele
      (Telemetry.instant "nullable_check"
         ([ ("focus", Telemetry.String (Rdf.Term.to_string n));
            ("size", Telemetry.Int (Rse.size residual));
            ("nullable", Telemetry.Bool verdict) ]
         @
         if Telemetry.residuals instr.tele then
           [ ("residual", Telemetry.String (Rse.to_string residual)) ]
         else []))

let arc_matches ~check_ref (a : Rse.arc) (dt : Neigh.dtriple) =
  match a.obj with
  | Rse.Values vo -> Neigh.arc_matches_values a vo dt
  | Rse.Ref l ->
      Bool.equal a.inverse dt.inverse
      && Value_set.pred_mem a.pred (Rdf.Triple.predicate dt.triple)
      &&
      let far =
        if dt.inverse then Rdf.Triple.subject dt.triple
        else Rdf.Triple.obj dt.triple
      in
      check_ref l far

let deriv ?(ctors = Rse.smart_ctors) ?(check_ref = no_refs) dt e =
  let { Rse.mk_and; mk_or; mk_not } = ctors in
  let rec d (e : Rse.t) =
    match e with
    | Empty | Epsilon -> Rse.empty
    | Arc a -> if arc_matches ~check_ref a dt then Rse.epsilon else Rse.empty
    | Star inner -> mk_and (d inner) e
    | And (e1, e2) -> mk_or (mk_and (d e1) e2) (mk_and (d e2) e1)
    | Or (e1, e2) -> mk_or (d e1) (d e2)
    | Not inner -> mk_not (d inner)
  in
  d e

let deriv_graph ?ctors ?check_ref dts e =
  List.fold_left (fun e dt -> deriv ?ctors ?check_ref dt e) e dts

let matches_dts ?ctors ?check_ref ?(instr = no_instruments) n dts e =
  (* Early exit on ∅ is sound only without negation: under ¬, ∅ can
     still become accepting. *)
  let can_prune = not (Rse.has_not e) in
  let rec consume e = function
    | [] ->
        let ok = Rse.nullable e in
        if Telemetry.tracing instr.tele then record_nullable instr n e ok;
        ok
    | dt :: rest ->
        let e' = deriv ?ctors ?check_ref dt e in
        if Telemetry.Counter.active instr.steps then record instr n dt e e';
        if can_prune && Rse.equal e' Rse.empty then false
        else consume e' rest
  in
  consume e dts

let matches ?ctors ?check_ref ?instr n g e =
  let dts = Neigh.of_node ~include_inverse:(Rse.has_inverse e) n g in
  matches_dts ?ctors ?check_ref ?instr n dts e

type step = { consumed : Neigh.dtriple; after : Rse.t }
type trace = { initial : Rse.t; steps : step list; result : bool }

let matches_trace_dts ?ctors ?check_ref ?(instr = no_instruments) n dts e =
  let final, rev_steps =
    List.fold_left
      (fun (e, acc) dt ->
        let e' = deriv ?ctors ?check_ref dt e in
        if Telemetry.Counter.active instr.steps then record instr n dt e e';
        (e', { consumed = dt; after = e' } :: acc))
      (e, []) dts
  in
  let result = Rse.nullable final in
  if Telemetry.tracing instr.tele then record_nullable instr n final result;
  { initial = e; steps = List.rev rev_steps; result }

let matches_trace ?ctors ?check_ref ?instr n g e =
  let dts = Neigh.of_node ~include_inverse:(Rse.has_inverse e) n g in
  matches_trace_dts ?ctors ?check_ref ?instr n dts e

let pp_trace ppf t =
  Format.pp_open_vbox ppf 0;
  let remaining = ref (List.map (fun s -> s.consumed) t.steps) in
  let pp_remaining ppf dts =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Neigh.pp)
      dts
  in
  Format.fprintf ppf "%a \xe2\x89\x83 %a" Rse.pp t.initial pp_remaining
    !remaining;
  List.iter
    (fun s ->
      remaining := (match !remaining with [] -> [] | _ :: r -> r);
      Format.pp_print_cut ppf ();
      Format.fprintf ppf "\xe2\x87\x94 %a \xe2\x89\x83 %a" Rse.pp s.after
        pp_remaining !remaining)
    t.steps;
  Format.pp_print_cut ppf ();
  let final =
    match List.rev t.steps with [] -> t.initial | s :: _ -> s.after
  in
  Format.fprintf ppf "\xe2\x87\x94 \xce\xbd(%a) \xe2\x87\x94 %b" Rse.pp final
    t.result;
  Format.pp_close_box ppf ()

let explain_failure t =
  if t.result then None
  else
    (* Find the first step whose derivative collapsed to ∅: the
       consumed triple is the culprit (Example 12). *)
    let rec first_empty = function
      | [] -> None
      | s :: _ when Rse.equal s.after Rse.empty -> Some s
      | _ :: rest -> first_empty rest
    in
    match first_empty t.steps with
    | Some s ->
        Some
          (Format.asprintf
             "triple %a matches no arc of the remaining expression (it \
              reduces the expression to \xe2\x88\x85)"
             Neigh.pp s.consumed)
    | None ->
        let final =
          match List.rev t.steps with [] -> t.initial | s :: _ -> s.after
        in
        Some
          (Format.asprintf
             "all triples were consumed but obligations remain: the residual \
              expression %a is not nullable (some required arc is missing)"
             Rse.pp final)

(* The structured form of a trace: what {!pp_trace} and
   {!explain_failure} render is derived from these values, and
   [--trace-json] streams the equivalent per-step events. *)
let step_to_json s =
  Json.Object
    [ ("triple", Json.String (Format.asprintf "%a" Neigh.pp s.consumed));
      ("after", Json.String (Rse.to_string s.after));
      ("size_after", Json.int (Rse.size s.after));
      ("nullable", Json.Bool (Rse.nullable s.after));
      ("empty", Json.Bool (Rse.equal s.after Rse.empty)) ]

let trace_to_json t =
  Json.Object
    [ ("initial", Json.String (Rse.to_string t.initial));
      ("steps", Json.Array (List.map step_to_json t.steps));
      ("result", Json.Bool t.result) ]

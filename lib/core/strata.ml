type t = {
  stratum_of : int Label.Map.t;
  component_of : int Label.Map.t;
  n_strata : int;
}

(* Tarjan's strongly-connected-components algorithm over the label
   dependency graph (all references, any polarity). *)
let tarjan labels successors =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (successors v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      (* v is the root of a component: pop the stack down to v. *)
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if Label.equal w v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) labels;
  (* Tarjan emits components in reverse topological order: a component
     is finished only after everything it reaches; prepending puts
     successors first. *)
  List.rev !components

let compute rules =
  let labels = List.map fst rules in
  let pos_refs = Hashtbl.create 16 and neg_refs = Hashtbl.create 16 in
  List.iter
    (fun (l, e) ->
      Hashtbl.replace pos_refs l (Label.Set.elements (Rse.refs e));
      Hashtbl.replace neg_refs l (Label.Set.elements (Rse.refs_under_not e)))
    rules;
  let successors l =
    Option.value (Hashtbl.find_opt pos_refs l) ~default:[]
  in
  let components = tarjan labels successors in
  let component_of =
    List.fold_left
      (fun (i, acc) comp ->
        (i + 1, List.fold_left (fun acc l -> Label.Map.add l i acc) acc comp))
      (0, Label.Map.empty) components
    |> snd
  in
  (* Reject negative edges inside a component. *)
  let offenders =
    List.concat_map
      (fun (l, _) ->
        List.filter_map
          (fun l' ->
            if Label.Map.find_opt l component_of
               = Label.Map.find_opt l' component_of
            then Some (l, l')
            else None)
          (Option.value (Hashtbl.find_opt neg_refs l) ~default:[]))
      rules
  in
  match offenders with
  | (l, l') :: _ ->
      Error
        (Format.asprintf
           "schema is not stratified: %a negates a reference to %a inside \
            a recursive cycle (negation through recursion has no \
            well-defined fixpoint)"
           Label.pp l Label.pp l')
  | [] ->
      (* Components arrive in topological order (dependencies first),
         so a left fold can assign strata bottom-up: a component's
         stratum is the max over its dependencies, +1 when the
         dependency is negated. *)
      let stratum_of, n_strata =
        List.fold_left
          (fun (strata, top) comp ->
            let s =
              List.fold_left
                (fun s l ->
                  let dep_stratum ~strict l' =
                    if List.exists (Label.equal l') comp then s
                    else
                      match Label.Map.find_opt l' strata with
                      | Some s' -> if strict then s' + 1 else s'
                      | None -> 0
                  in
                  let s =
                    List.fold_left
                      (fun s l' -> max s (dep_stratum ~strict:false l'))
                      s
                      (Option.value (Hashtbl.find_opt pos_refs l) ~default:[])
                  in
                  List.fold_left
                    (fun s l' -> max s (dep_stratum ~strict:true l'))
                    s
                    (Option.value (Hashtbl.find_opt neg_refs l) ~default:[]))
                0 comp
            in
            ( List.fold_left (fun acc l -> Label.Map.add l s acc) strata comp,
              max top (s + 1) ))
          (Label.Map.empty, 1) components
      in
      Ok { stratum_of; component_of; n_strata }

let stratum t l = Option.value (Label.Map.find_opt l t.stratum_of) ~default:0
let count t = t.n_strata

let same_component t l1 l2 =
  match
    (Label.Map.find_opt l1 t.component_of, Label.Map.find_opt l2 t.component_of)
  with
  | Some c1, Some c2 -> c1 = c2
  | _ -> false

(** Per-shape / per-node cost attribution, decoded from a telemetry
    snapshot of a profiled session ({!Validate.session} with
    [~profile:true]).

    The recording side charges each (node, shape) evaluation its
    {e self} cost — engine counter deltas and wall time, minus what
    nested lower-stratum evaluations already charged to their own
    shapes — into labelled families ([deriv_steps_by_shape{shape=…}],
    [check_seconds_by_node{node=…}], …).  Self-costs sum to the
    session-global counters, so {!step_coverage} is exactly the
    fraction of derivative work the profile explains (1.0 up to
    work done outside any check, e.g. none today). *)

(** {2 Family names}

    The recording contract: {!Validate} writes labelled families under
    these names, {!of_snapshot} reads them back. *)

val checks_family : string
val seconds_family : string
val deriv_family : string
val backtrack_family : string
val sorbe_family : string
val compiled_family : string
val flips_family : string
val node_seconds_family : string

type shape_row = {
  shape : string;
  checks : int;       (** evaluations of this shape (fixpoint re-runs included) *)
  seconds : float;    (** self wall time across those evaluations *)
  deriv_steps : int;
  backtrack_branches : int;
  sorbe_updates : int;
  compiled_steps : int;  (** DFA transitions taken (cache hits + misses) *)
  flips : int;           (** fixpoint hypotheses on this shape refuted *)
}

type node_row = { node : string; checks : int; seconds : float }

type t = {
  shapes : shape_row list;  (** hottest (by wall time) first *)
  nodes : node_row list;    (** likewise *)
  attributed_steps : int;
  total_steps : int;
  attributed_seconds : float;
}

val of_snapshot : Telemetry.snapshot -> t
(** Decode the labelled families {!Validate} records under
    [~profile:true].  Empty result on snapshots without them. *)

val is_empty : t -> bool

val step_coverage : t -> float
(** Attributed over total [deriv_steps]; [1.0] when no derivative work
    happened at all. *)

val default_top : int

val pp : ?top:int -> Format.formatter -> t -> unit
(** The [--profile] table: top-N hottest shapes (checks, wall ms, per
    engine work, flips), top-N hottest focus nodes, and the
    attribution-coverage line. *)

val to_json : ?top:int -> t -> Json.t
(** [{"shapes": [...], "nodes": [...], "totals": {...}}], rows in
    heat order, truncated to [top] when given. *)

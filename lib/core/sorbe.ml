type interval = { min : int; max : int option }
type constr = { arc : Rse.arc; card : interval }
type t = constr list

type instruments = {
  tele : Telemetry.t;
  matches_run : Telemetry.Counter.t;
  updates : Telemetry.Counter.t;
}

let instruments tele =
  {
    tele;
    matches_run = Telemetry.counter tele "sorbe_matches";
    updates = Telemetry.counter tele "sorbe_counter_updates";
  }

let no_instruments = instruments Telemetry.disabled

let arc_equal (a : Rse.arc) (b : Rse.arc) =
  Value_set.pred_equal a.pred b.pred
  && Bool.equal a.inverse b.inverse
  &&
  match (a.obj, b.obj) with
  | Rse.Values x, Rse.Values y -> Value_set.obj_equal x y
  | Rse.Ref x, Rse.Ref y -> Label.equal x y
  | (Rse.Values _ | Rse.Ref _), _ -> false

let add_interval i1 i2 =
  { min = i1.min + i2.min;
    max = (match (i1.max, i2.max) with
          | Some m1, Some m2 -> Some (m1 + m2)
          | None, _ | _, None -> None) }

(* Merge a new constraint into an accumulated list: same arc → sum the
   intervals; different arc → predicates must be provably disjoint. *)
let merge acc c =
  let rec go = function
    | [] -> Some [ c ]
    | c' :: rest ->
        if arc_equal c'.arc c.arc then
          Some ({ c' with card = add_interval c'.card c.card } :: rest)
        else if Value_set.pred_disjoint c'.arc.pred c.arc.pred then
          Option.map (fun rest' -> c' :: rest') (go rest)
        else None
  in
  go acc

let of_rse e =
  let rec collect (e : Rse.t) acc =
    match e with
    | Epsilon -> Some acc
    | Arc a -> merge acc { arc = a; card = { min = 1; max = Some 1 } }
    | Star (Arc a) -> merge acc { arc = a; card = { min = 0; max = None } }
    | And (Arc a, Star (Arc a')) when arc_equal a a' ->
        merge acc { arc = a; card = { min = 1; max = None } }
    | Or (Arc a, Epsilon) | Or (Epsilon, Arc a) ->
        merge acc { arc = a; card = { min = 0; max = Some 1 } }
    | And (e1, e2) -> (
        match collect e1 acc with
        | Some acc -> collect e2 acc
        | None -> None)
    | Empty | Star _ | Or _ | Not _ -> None
  in
  (* [merge] appends at the tail, so the accumulator is already in
     encounter order. *)
  collect e []

let to_rse t =
  Rse.and_all
    (List.map
       (fun c ->
         Rse.repeat c.card.min c.card.max
           (Rse.arc ~inverse:c.arc.inverse c.arc.pred c.arc.obj))
       t)

let has_inverse t = List.exists (fun c -> c.arc.inverse) t

let matches_dts ?(check_ref = fun _ _ -> false) ?(instr = no_instruments) n dts
    t =
  Telemetry.Counter.incr instr.matches_run;
  let counting = Telemetry.Counter.active instr.updates in
  let counts = Array.make (List.length t) 0 in
  let constrs = Array.of_list t in
  let obj_ok (arc : Rse.arc) far =
    match arc.obj with
    | Rse.Values vo -> Value_set.obj_mem vo far
    | Rse.Ref l -> check_ref l far
  in
  let attribute (dt : Neigh.dtriple) =
    let p = Rdf.Triple.predicate dt.triple in
    let far =
      if dt.inverse then Rdf.Triple.subject dt.triple
      else Rdf.Triple.obj dt.triple
    in
    let rec find i =
      if i >= Array.length constrs then false
      else
        let c = constrs.(i) in
        if
          Bool.equal c.arc.inverse dt.inverse
          && Value_set.pred_mem c.arc.pred p
        then
          if obj_ok c.arc far then begin
            counts.(i) <- counts.(i) + 1;
            if counting then Telemetry.Counter.incr instr.updates;
            true
          end
          else false (* the only possible owner rejects the object *)
        else find (i + 1)
    in
    find 0
  in
  let result =
    List.for_all attribute dts
    && Array.for_all2
         (fun count c ->
           count >= c.card.min
           && match c.card.max with None -> true | Some m -> count <= m)
         counts constrs
  in
  if Telemetry.tracing instr.tele then
    Telemetry.emit instr.tele
      (Telemetry.instant "sorbe_match"
         [ ("focus", Telemetry.String (Rdf.Term.to_string n));
           ("triples", Telemetry.Int (List.length dts));
           ("constraints", Telemetry.Int (Array.length constrs));
           ("ok", Telemetry.Bool result) ]);
  result

let matches ?check_ref ?instr n g t =
  let dts = Neigh.of_node ~include_inverse:(has_inverse t) n g in
  matches_dts ?check_ref ?instr n dts t

let pp_interval ppf i =
  match i.max with
  | Some m -> Format.fprintf ppf "{%d,%d}" i.min m
  | None -> Format.fprintf ppf "{%d,*}" i.min

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " \xe2\x80\x96 ")
    (fun ppf c ->
      Format.fprintf ppf "%a%a" Rse.pp
        (Rse.arc ~inverse:c.arc.inverse c.arc.pred c.arc.obj)
        pp_interval c.card)
    ppf t

(** Predicate and object vocabularies of arcs.

    An arc of a regular shape expression is written [vp → vo] with
    [vp ⊆ Vp] a set of predicates and [vo ⊆ Vo] a set of objects (§4).
    The paper's examples use finite enumerations ([{1, 2}]) and
    datatype subsets of the literals ([xsd:integer], Example 6); the
    ShEx surface language adds node kinds, IRI stems and unions, all of
    which this module represents with a decidable membership test. *)

(** Sets of predicates. *)
type pred =
  | Pred of Rdf.Iri.t          (** singleton — the common case *)
  | Pred_in of Rdf.Iri.t list  (** finite enumeration *)
  | Pred_stem of string        (** every predicate IRI starting with the stem *)
  | Pred_any                   (** all of Vp *)
  | Pred_compl of pred list
      (** complement of a union — the predicates matched by {e none}
          of the listed sets.  Used to desugar open shapes: an open
          shape tolerates arcs whose predicate is mentioned by none of
          its constraints (see {!Rse.open_up}). *)

(** Node kinds, the coarse classification of Vo. *)
type kind = Iri_kind | Bnode_kind | Literal_kind | Non_literal_kind

(** Sets of objects. *)
type obj =
  | Obj_any                       (** all of Vo — ShExC's [.] *)
  | Obj_in of Rdf.Term.t list     (** finite value set, e.g. [{1, 2}] *)
  | Obj_datatype of Rdf.Xsd.primitive
      (** well-formed literals of a recognised XSD datatype
          (the paper's “[xsd:int] … as subsets of L”, Example 6) *)
  | Obj_datatype_iri of Rdf.Iri.t
      (** literals of an unrecognised datatype, by datatype IRI only *)
  | Obj_kind of kind
  | Obj_stem of string            (** IRIs starting with the stem *)
  | Obj_or of obj list            (** union *)
  | Obj_not of obj                (** complement w.r.t. Vo *)

val pred_mem : pred -> Rdf.Iri.t -> bool
(** [p ∈ vp]. *)

val obj_mem : obj -> Rdf.Term.t -> bool
(** [o ∈ vo]. *)

val pred_iri : string -> pred
(** [pred_iri s] — singleton predicate set from an IRI string. *)

val obj_terms : Rdf.Term.t list -> obj
(** Finite value set. *)

val xsd_integer : obj
val xsd_string : obj
val xsd_boolean : obj
val xsd_date : obj

val pred_equal : pred -> pred -> bool
val obj_equal : obj -> obj -> bool

val pred_compare : pred -> pred -> int
val obj_compare : obj -> obj -> int
(** Structural total orders, consistent with {!pred_equal} /
    {!obj_equal}: [compare a b = 0 ⇔ equal a b].  {!Rse}'s ACI
    normalisation and the analysis visited-set depend on this
    coincidence. *)

val pred_members : pred -> Rdf.Iri.t list option
(** The finite enumeration when the set is one ([Pred], [Pred_in]);
    [None] for stems, wildcards and complements. *)

val pred_disjoint : pred -> pred -> bool
(** Sound (possibly incomplete) syntactic disjointness test: [true]
    guarantees no predicate belongs to both sets.  Used by the SORBE
    analysis to ensure each triple can match at most one arc. *)

val pp_pred : Format.formatter -> pred -> unit
val pp_obj : Format.formatter -> obj -> unit

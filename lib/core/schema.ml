type shape = { focus : Value_set.obj option; expr : Rse.t }

type t = { order : Label.t list; map : shape Label.Map.t; strata : Strata.t }

let make_shapes rule_list =
  let rec build order map = function
    | [] -> Ok (List.rev order, map)
    | (l, (shape : shape)) :: rest ->
        if Label.Map.mem l map then
          Error (Format.asprintf "duplicate shape label %a" Label.pp l)
        else build (l :: order) (Label.Map.add l shape map) rest
  in
  match build [] Label.Map.empty rule_list with
  | Error _ as e -> e
  | Ok (order, map) ->
      let undefined =
        List.fold_left
          (fun acc (_, (shape : shape)) ->
            Label.Set.fold
              (fun l acc ->
                if Label.Map.mem l map then acc else Label.Set.add l acc)
              (Rse.refs shape.expr) acc)
          Label.Set.empty rule_list
      in
      if not (Label.Set.is_empty undefined) then
        Error
          (Format.asprintf "reference to undefined shape label(s): %a"
             (Format.pp_print_list
                ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
                Label.pp)
             (Label.Set.elements undefined))
      else
        (* Negated references are allowed only across strata: a
           negation inside a recursive cycle has no well-defined
           fixpoint. *)
        Result.map
          (fun strata -> { order; map; strata })
          (Strata.compute
             (List.map (fun (l, (s : shape)) -> (l, s.expr)) rule_list))

let make rules =
  make_shapes (List.map (fun (l, e) -> (l, { focus = None; expr = e })) rules)

let make_exn rules =
  match make rules with
  | Ok t -> t
  | Error msg -> invalid_arg ("Schema.make_exn: " ^ msg)

let find_shape t l = Label.Map.find_opt l t.map

let find t l =
  Option.map (fun (s : shape) -> s.expr) (Label.Map.find_opt l t.map)

let find_exn t l =
  match find t l with
  | Some e -> e
  | None -> invalid_arg (Format.asprintf "Schema.find_exn: %a" Label.pp l)

let labels t = t.order

let rules t =
  List.map (fun l -> (l, (Label.Map.find l t.map).expr)) t.order

let shapes t = List.map (fun l -> (l, Label.Map.find l t.map)) t.order
let mem t l = Label.Map.mem l t.map

let dependencies t l =
  let rec go visited frontier =
    match frontier with
    | [] -> visited
    | l :: rest ->
        if Label.Set.mem l visited then go visited rest
        else
          let visited = Label.Set.add l visited in
          let next =
            match find t l with
            | None -> []
            | Some e -> Label.Set.elements (Rse.refs e)
          in
          go visited (next @ rest)
  in
  go Label.Set.empty [ l ]

let stratum t l = Strata.stratum t.strata l
let strata_count t = Strata.count t.strata

let is_recursive t l =
  match find t l with
  | None -> false
  | Some e ->
      Label.Set.exists
        (fun direct -> Label.Set.mem l (dependencies t direct))
        (Rse.refs e)

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  let first = ref true in
  List.iter
    (fun (l, e) ->
      if !first then first := false else Format.pp_print_cut ppf ();
      Format.fprintf ppf "%a \xe2\x86\xa6 %a" Label.pp l Rse.pp e)
    (rules t);
  Format.pp_close_box ppf ()

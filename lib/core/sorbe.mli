(** The Single-Occurrence Regular Bag Expression subset.

    The paper's future work (§8) points at SORBE — the tractable
    fragment identified in the companion ICDT'15 paper — as “a
    tractable language which could be expressive enough”, and plans to
    “adapt our implementation to that subset and study its performance
    behaviour in practice”.  This module is that adaptation
    (experiment E4).

    A SORBE shape is an unordered concatenation of arc constraints
    with cardinality intervals, [a₁{m₁,n₁} ‖ … ‖ aₖ{mₖ,nₖ}], where the
    predicate sets of distinct constraints are pairwise disjoint — so
    every triple of the neighbourhood can be attributed to at most one
    constraint and matching reduces to {e counting}: tally the triples
    per constraint and compare against the intervals.  This is linear
    in the neighbourhood and does not build derivative expressions at
    all. *)

type interval = { min : int; max : int option (** [None] = unbounded *) }

type constr = { arc : Rse.arc; card : interval }

type t = constr list

val of_rse : Rse.t -> t option
(** Recognises (smart-constructed) expressions in the subset:
    [arc] (1,1), [(arc)⋆] (0,∞), [arc ‖ (arc)⋆] i.e. [arc⁺] (1,∞),
    [arc | ε] i.e. [arc?] (0,1), [ε], and [‖]-compositions thereof.
    Adjacent constraints over the {e same} arc are merged by summing
    intervals (so [repeat]-expansions are recognised); constraints
    over different arcs must have provably disjoint predicate sets.
    Returns [None] for anything else (alternatives between different
    arcs, negation, nested stars, …). *)

val to_rse : t -> Rse.t
(** The equivalent general regular shape expression, via
    {!Rse.repeat}. *)

(** {1 Telemetry}

    The matcher reports [sorbe_matches] (calls) and
    [sorbe_counter_updates] (one per triple attributed to a
    constraint's tally). *)

type instruments

val instruments : Telemetry.t -> instruments
val no_instruments : instruments

val matches :
  ?check_ref:(Label.t -> Rdf.Term.t -> bool) ->
  ?instr:instruments ->
  Rdf.Term.t ->
  Rdf.Graph.t ->
  t ->
  bool
(** Counting matcher: attribute each triple of the neighbourhood to
    the (unique) constraint whose predicate set contains its
    predicate; fail if some triple matches no constraint or fails its
    constraint's object test; finally check every tally against its
    interval. *)

val has_inverse : t -> bool
(** Whether any constraint carries an inverse arc — the
    [include_inverse] a caller precomputing the neighbourhood for
    {!matches_dts} must use. *)

val matches_dts :
  ?check_ref:(Label.t -> Rdf.Term.t -> bool) ->
  ?instr:instruments ->
  Rdf.Term.t ->
  Neigh.dtriple list ->
  t ->
  bool
(** {!matches} over an already-computed neighbourhood; the caller must
    have included incoming triples exactly when {!has_inverse}. *)

val pp : Format.formatter -> t -> unit
(** Prints [a→1{1,1} ‖ b→{1, 2}{0,*}]. *)

type t = string

let of_string s = s
let to_string t = t
let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp ppf t = Format.fprintf ppf "<%s>" t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

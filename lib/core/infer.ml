type options = { max_value_set : int; close_cardinalities : bool }

let default_options = { max_value_set = 0; close_cardinalities = true }

module Iri_map = Map.Make (Rdf.Iri)

(* objects of each predicate, per node *)
let profile g node =
  Rdf.Graph.fold
    (fun tr acc ->
      let p = Rdf.Triple.predicate tr in
      let prev = Option.value (Iri_map.find_opt p acc) ~default:[] in
      Iri_map.add p (Rdf.Triple.obj tr :: prev) acc)
    (Rdf.Graph.neighbourhood node g)
    Iri_map.empty

let distinct_terms terms =
  List.fold_left
    (fun acc t -> if List.exists (Rdf.Term.equal t) acc then acc else t :: acc)
    [] terms
  |> List.rev

(* The most specific value class covering all observed objects. *)
let generalise options objects =
  let distinct = distinct_terms objects in
  if
    options.max_value_set > 0
    && List.length distinct <= options.max_value_set
  then Value_set.Obj_in distinct
  else
    let literals =
      List.filter_map Rdf.Term.as_literal objects
    in
    if List.length literals = List.length objects then
      (* all literals: shared well-formed datatype? *)
      let prims =
        List.map
          (fun l ->
            match Rdf.Literal.xsd_primitive l with
            | Some prim when Rdf.Literal.has_datatype l prim -> Some prim
            | _ -> None)
          literals
      in
      match prims with
      | Some first :: rest when List.for_all (fun p -> p = Some first) rest ->
          Value_set.Obj_datatype first
      | _ -> Value_set.Obj_kind Value_set.Literal_kind
    else if List.for_all Rdf.Term.is_iri objects then
      Value_set.Obj_kind Value_set.Iri_kind
    else if List.for_all Rdf.Term.is_bnode objects then
      Value_set.Obj_kind Value_set.Bnode_kind
    else if List.for_all (fun t -> not (Rdf.Term.is_literal t)) objects then
      Value_set.Obj_kind Value_set.Non_literal_kind
    else Value_set.Obj_any

(* Predicate profiles across all example nodes: observed min/max
   multiplicity (counting absence as 0) and all objects. *)
let aggregate g nodes =
  let profiles = List.map (profile g) nodes in
  let all_preds =
    List.fold_left
      (fun acc prof -> Iri_map.union (fun _ a _ -> Some a) acc prof)
      Iri_map.empty profiles
    |> Iri_map.bindings |> List.map fst
  in
  List.map
    (fun p ->
      let counts =
        List.map
          (fun prof ->
            List.length (Option.value (Iri_map.find_opt p prof) ~default:[]))
          profiles
      in
      let objects =
        List.concat_map
          (fun prof -> Option.value (Iri_map.find_opt p prof) ~default:[])
          profiles
      in
      let min_c = List.fold_left min max_int counts in
      let max_c = List.fold_left max 0 counts in
      (p, min_c, max_c, objects))
    all_preds

let constraint_of options (p, min_c, max_c, _objects) obj_spec =
  let arc =
    match obj_spec with
    | `Values vo -> Rse.arc_v (Value_set.Pred p) vo
    | `Ref l -> Rse.arc_ref (Value_set.Pred p) l
  in
  let max = if options.close_cardinalities then Some max_c else None in
  Rse.repeat min_c max arc

let infer_shape ?(options = default_options) g nodes =
  if nodes = [] then invalid_arg "Infer.infer_shape: no example nodes";
  Rse.and_all
    (List.map
       (fun ((_, _, _, objects) as agg) ->
         constraint_of options agg (`Values (generalise options objects)))
       (aggregate g nodes))

let infer_schema ?(options = default_options) g groups =
  if List.exists (fun (_, nodes) -> nodes = []) groups then
    Error "every label needs at least one example node"
  else
    let label_of_node n =
      List.find_map
        (fun (l, nodes) ->
          if List.exists (Rdf.Term.equal n) nodes then Some l else None)
        groups
    in
    let rules =
      List.map
        (fun (l, nodes) ->
          let shape =
            Rse.and_all
              (List.map
                 (fun ((_, _, _, objects) as agg) ->
                   (* If every object is an example of one common
                      label, emit a reference. *)
                   let labels = List.map label_of_node objects in
                   match labels with
                   | Some first :: rest
                     when List.for_all
                            (function
                              | Some l' -> Label.equal l' first
                              | None -> false)
                            rest ->
                       constraint_of options agg (`Ref first)
                   | _ ->
                       constraint_of options agg
                         (`Values (generalise options objects)))
                 (aggregate g nodes))
          in
          (l, shape))
        groups
    in
    Schema.make rules

type selector =
  | Node of Rdf.Term.t
  | Focus_subject of Rdf.Iri.t option * Rdf.Term.t option
  | Focus_object of Rdf.Term.t option * Rdf.Iri.t option

type association = { selector : selector; label : Label.t }
type t = association list

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

type token =
  | T_iri of string        (* raw text of <...> *)
  | T_pname of string * string
  | T_bnode of string
  | T_string of string
  | T_integer of string
  | T_focus
  | T_wild
  | T_kw_a
  | T_at
  | T_lbrace
  | T_rbrace
  | T_comma
  | T_eof

exception Parse_error of string

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false in
  let is_name c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '.'
  in
  let read_while pred =
    let start = !pos in
    while (match peek () with Some c -> pred c | None -> false) do
      advance ()
    done;
    String.sub src start (!pos - start)
  in
  let rec next () =
    match peek () with
    | None -> T_eof
    | Some c when is_ws c ->
        advance ();
        next ()
    | Some '<' ->
        advance ();
        let body = read_while (fun c -> c <> '>') in
        if peek () = None then raise (Parse_error "unterminated IRI")
        else begin
          advance ();
          T_iri body
        end
    | Some '"' ->
        advance ();
        let buf = Buffer.create 8 in
        let rec go () =
          match peek () with
          | None -> raise (Parse_error "unterminated string")
          | Some '"' -> advance ()
          | Some '\\' ->
              advance ();
              (match peek () with
              | Some c ->
                  advance ();
                  Buffer.add_char buf
                    (match c with
                    | 'n' -> '\n'
                    | 't' -> '\t'
                    | c -> c)
              | None -> raise (Parse_error "unterminated escape"));
              go ()
          | Some c ->
              advance ();
              Buffer.add_char buf c;
              go ()
        in
        go ();
        T_string (Buffer.contents buf)
    | Some '@' -> advance (); T_at
    | Some '{' -> advance (); T_lbrace
    | Some '}' -> advance (); T_rbrace
    | Some ',' -> advance (); T_comma
    | Some '_' -> (
        advance ();
        match peek () with
        | Some ':' ->
            advance ();
            T_bnode (read_while is_name)
        | _ -> T_wild)
    | Some c when c >= '0' && c <= '9' ->
        T_integer (read_while (fun c -> (c >= '0' && c <= '9') || c = '-'))
    | Some '-' -> T_integer (read_while (fun c -> (c >= '0' && c <= '9') || c = '-'))
    | Some c when is_name c || c = ':' -> (
        let word = read_while is_name in
        match peek () with
        | Some ':' ->
            advance ();
            let local = read_while (fun c -> is_name c || c = ':') in
            T_pname (word, local)
        | _ ->
            if word = "FOCUS" then T_focus
            else if word = "a" then T_kw_a
            else raise (Parse_error (Printf.sprintf "unexpected word %S" word)))
    | Some c -> raise (Parse_error (Printf.sprintf "unexpected character %C" c))
  in
  let rec all acc =
    match next () with
    | T_eof -> List.rev (T_eof :: acc)
    | t -> all (t :: acc)
  in
  all []

type parser_state = { mutable tokens : token list; ns : Rdf.Namespace.t }

let peek_tok st = match st.tokens with [] -> T_eof | t :: _ -> t

let advance_tok st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expand st prefix local =
  match Rdf.Namespace.find prefix st.ns with
  | None -> raise (Parse_error (Printf.sprintf "unbound prefix %S" prefix))
  | Some ns -> (
      match Rdf.Iri.of_string (ns ^ local) with
      | Ok iri -> iri
      | Error msg -> raise (Parse_error msg))

let parse_iri st =
  match peek_tok st with
  | T_iri text -> (
      advance_tok st;
      match Rdf.Iri.of_string text with
      | Ok iri -> iri
      | Error msg -> raise (Parse_error msg))
  | T_pname (p, l) ->
      advance_tok st;
      expand st p l
  | T_kw_a ->
      advance_tok st;
      Rdf.Namespace.Vocab.rdf_type
  | _ -> raise (Parse_error "expected an IRI")

let parse_term st =
  match peek_tok st with
  | T_iri _ | T_pname _ -> Rdf.Term.Iri (parse_iri st)
  | T_bnode label ->
      advance_tok st;
      Rdf.Term.Bnode (Rdf.Bnode.of_string label)
  | T_string s ->
      advance_tok st;
      Rdf.Term.Literal (Rdf.Literal.string s)
  | T_integer s ->
      advance_tok st;
      Rdf.Term.Literal (Rdf.Literal.typed Rdf.Xsd.Integer s)
  | _ -> raise (Parse_error "expected a node (IRI, blank node or literal)")

let parse_opt_term st =
  match peek_tok st with
  | T_wild ->
      advance_tok st;
      None
  | _ -> Some (parse_term st)

let parse_opt_pred st =
  match peek_tok st with
  | T_wild ->
      advance_tok st;
      None
  | _ -> Some (parse_iri st)

(* {FOCUS p o} or {s p FOCUS} *)
let parse_triple_selector st =
  advance_tok st (* '{' *);
  let selector =
    match peek_tok st with
    | T_focus ->
        advance_tok st;
        let pred = parse_opt_pred st in
        let obj = parse_opt_term st in
        Focus_subject (pred, obj)
    | _ ->
        let subj = parse_opt_term st in
        let pred = parse_opt_pred st in
        (match peek_tok st with
        | T_focus -> advance_tok st
        | _ -> raise (Parse_error "expected FOCUS in object position"));
        Focus_object (subj, pred)
  in
  (match peek_tok st with
  | T_rbrace -> advance_tok st
  | _ -> raise (Parse_error "expected }"));
  selector

let parse_association st =
  let selector =
    match peek_tok st with
    | T_lbrace -> parse_triple_selector st
    | _ -> Node (parse_term st)
  in
  (match peek_tok st with
  | T_at -> advance_tok st
  | _ -> raise (Parse_error "expected @ before the shape label"));
  let label =
    match peek_tok st with
    | T_iri text ->
        advance_tok st;
        Label.of_string text
    | T_pname (p, l) ->
        advance_tok st;
        Label.of_string (Rdf.Iri.to_string (expand st p l))
    | _ -> raise (Parse_error "expected a shape label")
  in
  { selector; label }

let parse ?(namespaces = Rdf.Namespace.default) src =
  match tokenize src with
  | exception Parse_error msg -> Error ("shape map: " ^ msg)
  | tokens -> (
      let st = { tokens; ns = namespaces } in
      let rec go acc =
        match peek_tok st with
        | T_eof -> List.rev acc
        | T_comma ->
            advance_tok st;
            go acc
        | _ -> go (parse_association st :: acc)
      in
      match go [] with
      | assocs -> Ok assocs
      | exception Parse_error msg -> Error ("shape map: " ^ msg))

let parse_exn ?namespaces src =
  match parse ?namespaces src with
  | Ok t -> t
  | Error msg -> failwith msg

(* ------------------------------------------------------------------ *)
(* Resolution                                                         *)
(* ------------------------------------------------------------------ *)

let resolve t graph =
  let module Pair_set = Set.Make (struct
    type t = Rdf.Term.t * Label.t

    let compare (n1, l1) (n2, l2) =
      let c = Rdf.Term.compare n1 n2 in
      if c <> 0 then c else Label.compare l1 l2
  end) in
  let add_selector acc { selector; label } =
    match selector with
    | Node n -> Pair_set.add (n, label) acc
    | Focus_subject (pred, obj) ->
        List.fold_left
          (fun acc tr -> Pair_set.add (Rdf.Triple.subject tr, label) acc)
          acc
          (Rdf.Graph.match_pattern ?p:pred ?o:obj graph)
    | Focus_object (subj, pred) ->
        List.fold_left
          (fun acc tr -> Pair_set.add (Rdf.Triple.obj tr, label) acc)
          acc
          (Rdf.Graph.match_pattern ?s:subj ?p:pred graph)
  in
  Pair_set.elements (List.fold_left add_selector Pair_set.empty t)

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let pp_selector ppf = function
  | Node n -> Rdf.Term.pp ppf n
  | Focus_subject (pred, obj) ->
      Format.fprintf ppf "{FOCUS %s %s}"
        (match pred with Some p -> Format.asprintf "%a" Rdf.Iri.pp p | None -> "_")
        (match obj with Some o -> Rdf.Term.to_string o | None -> "_")
  | Focus_object (subj, pred) ->
      Format.fprintf ppf "{%s %s FOCUS}"
        (match subj with Some s -> Rdf.Term.to_string s | None -> "_")
        (match pred with Some p -> Format.asprintf "%a" Rdf.Iri.pp p | None -> "_")

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
    (fun ppf { selector; label } ->
      Format.fprintf ppf "%a@@%a" pp_selector selector Label.pp label)
    ppf t

(** Slow-validation capture: a bounded ring buffer of checks that
    exceeded a wall-clock threshold — the long-running server's flight
    recorder.  {!Validate} records into it when a session is created
    with [?slow_ms]; the CLI ([--slow-ms]) and the serve [slowlog]
    command dump it on demand.

    Each retained {!entry} carries the verdict, the blame set of a
    failing check ({!Explain.t}, rendered lazily at dump time), and
    the per-check work-counter deltas (derivative steps, backtracking
    branches, …) — the same attribution the profile reports per shape,
    here pinned to one slow (node, shape) evaluation. *)

type entry = {
  node : Rdf.Term.t;
  label : Label.t;
  seconds : float;  (** wall-clock duration of the check *)
  at : float;
      (** wall-clock capture timestamp ([Telemetry.now] at record
          time) — correlates a dumped entry with external logs *)
  request : int option;
      (** serve request id active when the check ran (the id echoed in
          that request's response); [None] outside serve mode *)
  conformant : bool;
  explain : Explain.t option;
      (** blame set when non-conformant; [None] when conformant *)
  work : (string * int) list;
      (** non-zero counter deltas attributable to this check *)
}

type t

val default_capacity : int
(** 128 entries. *)

val create : ?capacity:int -> threshold_ms:float -> unit -> t

val threshold_ms : t -> float
val set_threshold_ms : t -> float -> unit
(** Runtime-adjustable (the serve [slowlog] command sets it without
    recreating the session). *)

val context : t -> int option

val set_context : t -> int option -> unit
(** Set (or clear) the request id stamped onto subsequently recorded
    entries — the serve loop sets it around each request so slow
    checks carry the id of the response the client saw. *)

val capacity : t -> int

val length : t -> int
(** Entries currently retained. *)

val seen : t -> int
(** Total entries ever recorded, including those the ring evicted. *)

val record : t -> entry -> unit
(** Append, evicting the oldest entry when full. *)

val clear : t -> unit

val entries : t -> entry list
(** Oldest first. *)

val entry_to_json : entry -> Json.t
(** [{"node", "shape", "ms", "at", "conformant", "request"?,
    "reason"?, "work"?}]. *)

val to_json : t -> Json.t
(** [{"threshold_ms", "capacity", "seen", "entries": [...]}]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump: one line per entry (duration, pair, verdict,
    work deltas) plus the failure reason on a continuation line. *)

type pred =
  | Pred of Rdf.Iri.t
  | Pred_in of Rdf.Iri.t list
  | Pred_stem of string
  | Pred_any
  | Pred_compl of pred list

type kind = Iri_kind | Bnode_kind | Literal_kind | Non_literal_kind

type obj =
  | Obj_any
  | Obj_in of Rdf.Term.t list
  | Obj_datatype of Rdf.Xsd.primitive
  | Obj_datatype_iri of Rdf.Iri.t
  | Obj_kind of kind
  | Obj_stem of string
  | Obj_or of obj list
  | Obj_not of obj

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let rec pred_mem vp p =
  match vp with
  | Pred i -> Rdf.Iri.equal i p
  | Pred_in is -> List.exists (fun i -> Rdf.Iri.equal i p) is
  | Pred_stem stem -> starts_with ~prefix:stem (Rdf.Iri.to_string p)
  | Pred_any -> true
  | Pred_compl vps -> not (List.exists (fun vp -> pred_mem vp p) vps)

let kind_mem k (o : Rdf.Term.t) =
  match (k, o) with
  | Iri_kind, Iri _ -> true
  | Bnode_kind, Bnode _ -> true
  | Literal_kind, Literal _ -> true
  | Non_literal_kind, (Iri _ | Bnode _) -> true
  | (Iri_kind | Bnode_kind | Literal_kind | Non_literal_kind), _ -> false

let rec obj_mem vo (o : Rdf.Term.t) =
  match vo with
  | Obj_any -> true
  (* Value-space membership (SPARQL-aligned): "01"^^xsd:integer is in
     {1}.  [obj_equal] below stays syntactic — it is an AST identity
     used for normalisation and hash-consing, not set membership. *)
  | Obj_in terms -> List.exists (Rdf.Term.value_equal o) terms
  | Obj_datatype dt -> (
      match o with
      | Literal l -> Rdf.Literal.has_datatype l dt
      | Iri _ | Bnode _ -> false)
  | Obj_datatype_iri dt -> (
      match o with
      | Literal l -> Rdf.Iri.equal (Rdf.Literal.datatype l) dt
      | Iri _ | Bnode _ -> false)
  | Obj_kind k -> kind_mem k o
  | Obj_stem stem -> (
      match o with
      | Iri i -> starts_with ~prefix:stem (Rdf.Iri.to_string i)
      | Bnode _ | Literal _ -> false)
  | Obj_or vs -> List.exists (fun v -> obj_mem v o) vs
  | Obj_not v -> not (obj_mem v o)

let pred_iri s = Pred (Rdf.Iri.of_string_exn s)
let obj_terms terms = Obj_in terms
let xsd_integer = Obj_datatype Rdf.Xsd.Integer
let xsd_string = Obj_datatype Rdf.Xsd.String
let xsd_boolean = Obj_datatype Rdf.Xsd.Boolean
let xsd_date = Obj_datatype Rdf.Xsd.Date

let rec pred_equal a b =
  match (a, b) with
  | Pred x, Pred y -> Rdf.Iri.equal x y
  | Pred_in xs, Pred_in ys ->
      List.length xs = List.length ys && List.for_all2 Rdf.Iri.equal xs ys
  | Pred_stem x, Pred_stem y -> String.equal x y
  | Pred_any, Pred_any -> true
  | Pred_compl xs, Pred_compl ys ->
      List.length xs = List.length ys && List.for_all2 pred_equal xs ys
  | (Pred _ | Pred_in _ | Pred_stem _ | Pred_any | Pred_compl _), _ -> false

let rec obj_equal a b =
  match (a, b) with
  | Obj_any, Obj_any -> true
  | Obj_in xs, Obj_in ys ->
      List.length xs = List.length ys && List.for_all2 Rdf.Term.equal xs ys
  | Obj_datatype x, Obj_datatype y -> x = y
  | Obj_datatype_iri x, Obj_datatype_iri y -> Rdf.Iri.equal x y
  | Obj_kind x, Obj_kind y -> x = y
  | Obj_stem x, Obj_stem y -> String.equal x y
  | Obj_or xs, Obj_or ys ->
      List.length xs = List.length ys && List.for_all2 obj_equal xs ys
  | Obj_not x, Obj_not y -> obj_equal x y
  | ( ( Obj_any | Obj_in _ | Obj_datatype _ | Obj_datatype_iri _ | Obj_kind _
      | Obj_stem _ | Obj_or _ | Obj_not _ ),
      _ ) ->
      false

(* Structural total orders consistent with [pred_equal]/[obj_equal].
   [Rse]'s ACI normalisation sorts and deduplicates with these, and the
   analysis visited-set relies on compare=0 coinciding with the
   equality used everywhere else — a polymorphic [Stdlib.compare]
   would silently diverge the moment any constituent type gains a
   cached field or non-canonical representation. *)

let pred_rank = function
  | Pred _ -> 0
  | Pred_in _ -> 1
  | Pred_stem _ -> 2
  | Pred_any -> 3
  | Pred_compl _ -> 4

let rec pred_compare a b =
  match (a, b) with
  | Pred x, Pred y -> Rdf.Iri.compare x y
  | Pred_in xs, Pred_in ys -> List.compare Rdf.Iri.compare xs ys
  | Pred_stem x, Pred_stem y -> String.compare x y
  | Pred_any, Pred_any -> 0
  | Pred_compl xs, Pred_compl ys -> List.compare pred_compare xs ys
  | (Pred _ | Pred_in _ | Pred_stem _ | Pred_any | Pred_compl _), _ ->
      Int.compare (pred_rank a) (pred_rank b)

let kind_rank = function
  | Iri_kind -> 0
  | Bnode_kind -> 1
  | Literal_kind -> 2
  | Non_literal_kind -> 3

let obj_rank = function
  | Obj_any -> 0
  | Obj_in _ -> 1
  | Obj_datatype _ -> 2
  | Obj_datatype_iri _ -> 3
  | Obj_kind _ -> 4
  | Obj_stem _ -> 5
  | Obj_or _ -> 6
  | Obj_not _ -> 7

let rec obj_compare a b =
  match (a, b) with
  | Obj_any, Obj_any -> 0
  | Obj_in xs, Obj_in ys -> List.compare Rdf.Term.compare xs ys
  | Obj_datatype x, Obj_datatype y -> Stdlib.compare x y
  | Obj_datatype_iri x, Obj_datatype_iri y -> Rdf.Iri.compare x y
  | Obj_kind x, Obj_kind y -> Int.compare (kind_rank x) (kind_rank y)
  | Obj_stem x, Obj_stem y -> String.compare x y
  | Obj_or xs, Obj_or ys -> List.compare obj_compare xs ys
  | Obj_not x, Obj_not y -> obj_compare x y
  | ( ( Obj_any | Obj_in _ | Obj_datatype _ | Obj_datatype_iri _ | Obj_kind _
      | Obj_stem _ | Obj_or _ | Obj_not _ ),
      _ ) ->
      Int.compare (obj_rank a) (obj_rank b)

let pred_members = function
  | Pred i -> Some [ i ]
  | Pred_in is -> Some is
  | Pred_stem _ | Pred_any | Pred_compl _ -> None

let pred_disjoint a b =
  match (pred_members a, pred_members b) with
  | Some xs, Some ys ->
      not (List.exists (fun x -> List.exists (Rdf.Iri.equal x) ys) xs)
  | _ -> (
      (* Stems are disjoint when neither is a prefix of the other;
         anything involving Pred_any overlaps. *)
      match (a, b) with
      | Pred_stem x, Pred_stem y ->
          not (starts_with ~prefix:x y || starts_with ~prefix:y x)
      | Pred_stem stem, Pred i | Pred i, Pred_stem stem ->
          not (starts_with ~prefix:stem (Rdf.Iri.to_string i))
      | Pred_stem stem, Pred_in is | Pred_in is, Pred_stem stem ->
          not
            (List.exists
               (fun i -> starts_with ~prefix:stem (Rdf.Iri.to_string i))
               is)
      (* Pred_compl excluded-sets: a complement is disjoint from any
         set it wholly excludes. *)
      | Pred_compl vps, other | other, Pred_compl vps -> (
          match pred_members other with
          | Some is ->
              List.for_all
                (fun i -> List.exists (fun vp -> pred_mem vp i) vps)
                is
          | None -> List.exists (fun vp -> pred_equal vp other) vps)
      | _ -> false)

let rec pp_pred ppf = function
  | Pred i -> Rdf.Iri.pp ppf i
  | Pred_in is ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Rdf.Iri.pp)
        is
  | Pred_stem s -> Format.fprintf ppf "<%s~>" s
  | Pred_any -> Format.pp_print_string ppf "."
  | Pred_compl vps ->
      Format.fprintf ppf "!{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_pred)
        vps

let rec pp_obj ppf = function
  | Obj_any -> Format.pp_print_string ppf "."
  | Obj_in [ t ] -> Rdf.Term.pp ppf t
  | Obj_in terms ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Rdf.Term.pp)
        terms
  | Obj_datatype dt -> Format.fprintf ppf "xsd:%s" (Rdf.Xsd.name dt)
  | Obj_datatype_iri i -> Rdf.Iri.pp ppf i
  | Obj_kind Iri_kind -> Format.pp_print_string ppf "IRI"
  | Obj_kind Bnode_kind -> Format.pp_print_string ppf "BNODE"
  | Obj_kind Literal_kind -> Format.pp_print_string ppf "LITERAL"
  | Obj_kind Non_literal_kind -> Format.pp_print_string ppf "NONLITERAL"
  | Obj_stem s -> Format.fprintf ppf "<%s~>" s
  | Obj_or vs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " OR ")
           pp_obj)
        vs
  | Obj_not v -> Format.fprintf ppf "NOT %a" pp_obj v

(** Shape inference: synthesising a shape from example nodes.

    Given a graph and a set of nodes presumed to share a shape, infer
    the SORBE-style shape they all match: one constraint per outgoing
    predicate, with the observed cardinality interval and the most
    specific value class that covers every observed object.

    This is the usual bootstrap path for schema authoring (cf. the
    sheXer line of tools): infer from conforming examples, review,
    refine.  The inferred shape is guaranteed to accept every example
    node (a property the tests check). *)

(** How object value classes are generalised, most specific first:
    a finite value set if few distinct values, else a shared
    recognised datatype, else a node kind, else [.]. *)
type options = {
  max_value_set : int;
      (** emit a value set when a predicate has at most this many
          distinct object values {e and} every example exhibits them;
          0 disables value sets (default 0) *)
  close_cardinalities : bool;
      (** when [true] (default), use the exact observed [{min,max}]
          interval; when [false], relax to [{min,}] *)
}

val default_options : options

val infer_shape :
  ?options:options -> Rdf.Graph.t -> Rdf.Term.t list -> Rse.t
(** [infer_shape g nodes] — the inferred shape of the nodes'
    neighbourhoods.  Raises [Invalid_argument] on an empty node
    list. *)

val infer_schema :
  ?options:options ->
  Rdf.Graph.t ->
  (Label.t * Rdf.Term.t list) list ->
  (Schema.t, string) result
(** Infer one shape per label from its example nodes.  Object values
    that are themselves example nodes of another label become shape
    references to that label (enabling recursive inferred schemas). *)

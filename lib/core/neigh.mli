(** Node neighbourhoods as lists of directed triples.

    The paper matches a shape against Σgn, the {e outgoing} triples of
    a node (§2).  The inverse-arc extension (§8, §10) also needs the
    incoming triples, so the matchers consume {e directed} triples: an
    outgoing ⟨n,p,o⟩ or an incoming ⟨s,p,n⟩.  An arc expression only
    matches a triple travelling in its own direction. *)

type dtriple = {
  triple : Rdf.Triple.t;
  inverse : bool;  (** [true] for an incoming triple ⟨s,p,n⟩ *)
}

val out : Rdf.Triple.t -> dtriple
val inc : Rdf.Triple.t -> dtriple

val focus_other_end : Rdf.Term.t -> dtriple -> Rdf.Term.t
(** [focus_other_end n dt] is the term at the far end of the arc from
    [n]: the object of an outgoing triple, the subject of an incoming
    one. *)

val of_node :
  ?include_inverse:bool -> Rdf.Term.t -> Rdf.Graph.t -> dtriple list
(** [of_node n g] is Σgn as directed triples, in triple order.  With
    [~include_inverse:true], incoming triples ⟨s,p,n⟩ follow the
    outgoing ones (self-loops appear in both directions). *)

val of_columnar :
  ?include_inverse:bool -> Rdf.Term.t -> Rdf.Columnar.t -> dtriple list
(** {!of_node} against a columnar store: the outgoing run is a
    binary-searched SPO slice, the incoming run an OSP slice.  Returns
    the exact list {!of_node} returns on [Rdf.Columnar.to_graph c]
    (canonical ids make slice order triple order). *)

val arc_matches_values :
  Rse.arc -> Value_set.obj -> dtriple -> bool
(** [arc_matches_values arc vo dt]: direction agrees, the predicate is
    in [arc.pred] and the far-end term is in [vo].  (The far end of an
    outgoing triple is its object; of an incoming one, its subject.) *)

val pp : Format.formatter -> dtriple -> unit

val equal : dtriple -> dtriple -> bool
val compare : dtriple -> dtriple -> int

(** Regular shape expression derivatives — §6 and §7 of the paper.

    The derivative of a shape with respect to a triple [t] is the
    shape of “what must still be matched after consuming [t]”
    (Definition 1).  The computation rules are Brzozowski's, adapted
    to unordered arcs:

    {v
    ∂t(∅)        = ∅
    ∂t(ε)        = ∅
    ∂⟨s,p,o⟩(vp→vo) = ε  if p ∈ vp and o ∈ vo, else ∅
    ∂t(e⋆)       = ∂t(e) ‖ e*
    ∂t(e₁ ‖ e₂)  = ∂t(e₁) ‖ e₂  |  ∂t(e₂) ‖ e₁
    ∂t(e₁ | e₂)  = ∂t(e₁) | ∂t(e₂)
    ∂t(¬e)       = ¬∂t(e)                        (extension)
    v}

    Matching (§7) consumes the neighbourhood one triple at a time:
    [e ≃ t ⊎ ts ⇔ ∂t(e) ≃ ts] and [e ≃ {} ⇔ ν(e)].  No graph
    decomposition, no backtracking.

    Shape references (§8) are delegated to the [check_ref] callback so
    that this module stays independent of schemas; {!Validate} supplies
    the recursive, typing-producing callback. *)

type check_ref = Label.t -> Rdf.Term.t -> bool
(** [check_ref l o] decides whether node [o] has the shape labelled
    [l].  The default refuses every reference (suitable for
    reference-free expressions). *)

val no_refs : check_ref
(** The default callback: refuses every reference. *)

(** {1 Telemetry}

    The matcher reports one [deriv_steps] increment per consumed
    triple plus [deriv_size_before]/[deriv_size_after] histogram
    observations (the E2/E5 growth measure), and — when the registry
    has a sink — one structured [deriv_step] event per triple. *)

type instruments

val instruments : Telemetry.t -> instruments
(** Resolve this module's counters in the given registry (once per
    session, not per match). *)

val no_instruments : instruments
(** Inert instruments from {!Telemetry.disabled} — the default; each
    step then costs one extra branch. *)

val deriv :
  ?ctors:Rse.ctors ->
  ?check_ref:check_ref ->
  Neigh.dtriple ->
  Rse.t ->
  Rse.t
(** One derivative step, [∂t(e)].  [ctors] selects simplifying
    (default) or raw constructors — experiment E5. *)

val deriv_graph :
  ?ctors:Rse.ctors ->
  ?check_ref:check_ref ->
  Neigh.dtriple list ->
  Rse.t ->
  Rse.t
(** [∂ts(e)]: left fold of {!deriv} over the triples, i.e. the
    extension to graphs [∂{} (e) = e], [∂(t⊎ts)(e) = ∂ts(∂t(e))]. *)

val matches :
  ?ctors:Rse.ctors ->
  ?check_ref:check_ref ->
  ?instr:instruments ->
  Rdf.Term.t ->
  Rdf.Graph.t ->
  Rse.t ->
  bool
(** [matches n g e] = [ν(∂Σgn(e))]: does the neighbourhood of [n] in
    [g] have shape [e]?  Includes incoming triples exactly when [e]
    contains an inverse arc.  Stops early when the expression
    collapses to ∅ (no possible continuation, Example 12). *)

val matches_dts :
  ?ctors:Rse.ctors ->
  ?check_ref:check_ref ->
  ?instr:instruments ->
  Rdf.Term.t ->
  Neigh.dtriple list ->
  Rse.t ->
  bool
(** {!matches} over an already-computed neighbourhood — the hot-path
    entry point: {!Validate} computes Σgn once per evaluation (from
    the structural indexes or a columnar slice) and hands it to
    whichever engine runs.  The caller must have included incoming
    triples exactly when [Rse.has_inverse e]. *)

(** {1 Traced matching}

    A trace records the expression after each consumed triple,
    reproducing the step-by-step runs of Examples 11–12, and is the
    basis for validation error messages. *)

type step = { consumed : Neigh.dtriple; after : Rse.t }

type trace = {
  initial : Rse.t;
  steps : step list;
  result : bool;  (** ν of the final expression *)
}

val matches_trace :
  ?ctors:Rse.ctors ->
  ?check_ref:check_ref ->
  ?instr:instruments ->
  Rdf.Term.t ->
  Rdf.Graph.t ->
  Rse.t ->
  trace

val matches_trace_dts :
  ?ctors:Rse.ctors ->
  ?check_ref:check_ref ->
  ?instr:instruments ->
  Rdf.Term.t ->
  Neigh.dtriple list ->
  Rse.t ->
  trace
(** {!matches_trace} over an already-computed neighbourhood (same
    contract as {!matches_dts}). *)

val pp_trace : Format.formatter -> trace -> unit
(** Renders the trace in the paper's style:
    [e ≃ {t₁, …} ⇔ ∂t₁(e) ≃ {…} ⇔ … ⇔ ν(e') ⇔ true]. *)

val explain_failure : trace -> string option
(** For a failed trace, a human-readable account of where matching
    broke: either the triple whose derivative collapsed to ∅, or the
    residual obligations left unfulfilled.  [None] if the trace
    succeeded. *)

val step_to_json : step -> Json.t
val trace_to_json : trace -> Json.t
(** The machine-readable form of a trace — the structured source both
    {!explain_failure} and the CLI's [--trace-json] stream render
    from. *)

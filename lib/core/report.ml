type status = Conformant | Nonconformant

type entry = {
  node : Rdf.Term.t;
  label : Label.t;
  status : status;
  explain : Explain.t option;
}

let reason e = Option.map Explain.to_string e.explain

type t = { entries : entry list; typing : Typing.t }

(* Routed through {!Validate.check_all} so every report — CLI shape
   maps included — honours the session's [?domains] sharding; at
   [domains = 1] check_all is exactly the sequential fold this used
   to be. *)
let run session associations =
  let outcomes = Validate.check_all session associations in
  let entries, typing =
    List.fold_left2
      (fun (entries, typing) (node, label) outcome ->
        let entry =
          if outcome.Validate.ok then
            { node; label; status = Conformant; explain = None }
          else
            { node; label; status = Nonconformant;
              explain = outcome.Validate.explain }
        in
        (entry :: entries, Typing.combine typing outcome.Validate.typing))
      ([], Typing.empty) associations outcomes
  in
  { entries = List.rev entries; typing }

let run_shape_map session shape_map graph =
  run session (Shape_map.resolve shape_map graph)

let conformant t =
  List.filter (fun e -> e.status = Conformant) t.entries

let nonconformant t =
  List.filter (fun e -> e.status = Nonconformant) t.entries

let all_conformant t = nonconformant t = []

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun i e ->
      if i > 0 then Format.pp_print_cut ppf ();
      match e.status with
      | Conformant ->
          Format.fprintf ppf "PASS %a@@%a" Rdf.Term.pp e.node Label.pp e.label
      | Nonconformant ->
          Format.fprintf ppf "FAIL %a@@%a%s" Rdf.Term.pp e.node Label.pp
            e.label
            (match reason e with
            | Some reason -> "\n     " ^ reason
            | None -> ""))
    t.entries;
  Format.pp_print_cut ppf ();
  Format.fprintf ppf "%d conformant, %d nonconformant"
    (List.length (conformant t))
    (List.length (nonconformant t));
  Format.pp_close_box ppf ()

let to_result_shape_map t =
  String.concat ",\n"
    (List.map
       (fun e ->
         Printf.sprintf "%s@%s<%s>"
           (Rdf.Term.to_string e.node)
           (match e.status with Conformant -> "" | Nonconformant -> "!")
           (Label.to_string e.label))
       t.entries)

let to_json ?metrics ?profile t =
  let entry_json e =
    Json.Object
      ([ ("node", Json.String (Rdf.Term.to_string e.node));
         ("shape", Json.String (Label.to_string e.label));
         ( "status",
           Json.String
             (match e.status with
             | Conformant -> "conformant"
             | Nonconformant -> "nonconformant") ) ]
      @
      match e.explain with
      | Some ex ->
          [ ("reason", Json.String (Explain.to_string ex));
            ("explain", Explain.to_json ex) ]
      | None -> [])
  in
  Json.Object
    ([ ("entries", Json.Array (List.map entry_json t.entries));
       ("conformant", Json.int (List.length (conformant t)));
       ("nonconformant", Json.int (List.length (nonconformant t))) ]
    @
    (* Appended last so existing consumers of the report keys are
       untouched when no snapshot is supplied. *)
    (match metrics with
    | Some snap -> [ ("metrics", Telemetry.to_json snap) ]
    | None -> [])
    @
    match profile with
    | Some p -> [ ("profile", Profile.to_json p) ]
    | None -> [])

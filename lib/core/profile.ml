(* Per-shape / per-node cost attribution, read back out of a telemetry
   snapshot.  {!Validate} (under [?profile]) feeds labelled families —
   one cell per shape label or focus node — with the *self* work of
   each (node, shape) evaluation: engine counter deltas and wall time,
   with nested evaluations (lower-stratum references settled inline)
   charged to their own shape, not the outer one.  Summing a family
   therefore reproduces the session-global counter, which is what
   makes the coverage line at the bottom of the table an invariant
   rather than an estimate. *)

type shape_row = {
  shape : string;
  checks : int;
  seconds : float;
  deriv_steps : int;
  backtrack_branches : int;
  sorbe_updates : int;
  compiled_steps : int;
  flips : int;
}

type node_row = { node : string; checks : int; seconds : float }

type t = {
  shapes : shape_row list;  (* sorted hottest (wall time) first *)
  nodes : node_row list;    (* likewise *)
  attributed_steps : int;   (* sum of deriv_steps over shapes *)
  total_steps : int;        (* session-global deriv_steps counter *)
  attributed_seconds : float;
}

(* Family names are the contract between Validate's recording side and
   this reader; keep them in one place. *)
let checks_family = "checks_by_shape"
let seconds_family = "check_seconds_by_shape"
let deriv_family = "deriv_steps_by_shape"
let backtrack_family = "backtrack_branches_by_shape"
let sorbe_family = "sorbe_counter_updates_by_shape"
let compiled_family = "compiled_steps_by_shape"
let flips_family = "fixpoint_flips_by_shape"
let node_seconds_family = "check_seconds_by_node"

let of_snapshot snap =
  let counter name = Telemetry.labelled_counter_values snap name in
  let rows : (string, shape_row) Hashtbl.t = Hashtbl.create 16 in
  let touch shape =
    match Hashtbl.find_opt rows shape with
    | Some r -> r
    | None ->
        let r =
          { shape; checks = 0; seconds = 0.; deriv_steps = 0;
            backtrack_branches = 0; sorbe_updates = 0; compiled_steps = 0;
            flips = 0 }
        in
        Hashtbl.replace rows shape r;
        r
  in
  let fold_counter name f =
    List.iter
      (fun (shape, v) -> Hashtbl.replace rows shape (f (touch shape) v))
      (counter name)
  in
  fold_counter checks_family (fun r v -> { r with checks = v });
  fold_counter deriv_family (fun r v -> { r with deriv_steps = v });
  fold_counter backtrack_family (fun r v -> { r with backtrack_branches = v });
  fold_counter sorbe_family (fun r v -> { r with sorbe_updates = v });
  fold_counter compiled_family (fun r v -> { r with compiled_steps = v });
  fold_counter flips_family (fun r v -> { r with flips = v });
  List.iter
    (fun (shape, (_count, total)) ->
      Hashtbl.replace rows shape { (touch shape) with seconds = total })
    (Telemetry.labelled_span_values snap seconds_family);
  let by_heat (a : shape_row) (b : shape_row) =
    let c = compare b.seconds a.seconds in
    if c <> 0 then c
    else
      let c = compare b.deriv_steps a.deriv_steps in
      if c <> 0 then c else String.compare a.shape b.shape
  in
  let shapes =
    List.sort by_heat (Hashtbl.fold (fun _ r acc -> r :: acc) rows [])
  in
  let nodes =
    List.sort
      (fun a b ->
        let c = compare b.seconds a.seconds in
        if c <> 0 then c else String.compare a.node b.node)
      (List.map
         (fun (node, (count, total)) ->
           { node; checks = count; seconds = total })
         (Telemetry.labelled_span_values snap node_seconds_family))
  in
  {
    shapes;
    nodes;
    attributed_steps =
      List.fold_left (fun acc r -> acc + r.deriv_steps) 0 shapes;
    total_steps =
      Option.value ~default:0 (Telemetry.find_counter snap "deriv_steps");
    attributed_seconds =
      List.fold_left (fun acc (r : shape_row) -> acc +. r.seconds) 0. shapes;
  }

let is_empty t = t.shapes = [] && t.nodes = []

(* 1.0 when no derivative work happened at all: nothing to attribute
   is full coverage, not zero. *)
let step_coverage t =
  if t.total_steps = 0 then 1.0
  else float_of_int t.attributed_steps /. float_of_int t.total_steps

let default_top = 10

let truncate_label s =
  if String.length s <= 48 then s else String.sub s 0 45 ^ "..."

let pp ?(top = default_top) ppf t =
  let take n xs =
    let rec go n = function
      | x :: tl when n > 0 -> x :: go (n - 1) tl
      | _ -> []
    in
    go n xs
  in
  Format.fprintf ppf "profile: hottest shapes (top %d of %d, by wall time)@."
    (min top (List.length t.shapes))
    (List.length t.shapes);
  Format.fprintf ppf "  %-48s %8s %10s %10s %10s %8s %8s %6s@." "shape"
    "checks" "wall_ms" "deriv" "backtrck" "sorbe" "dfa" "flips";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-48s %8d %10.3f %10d %10d %8d %8d %6d@."
        (truncate_label r.shape) r.checks
        (r.seconds *. 1000.)
        r.deriv_steps r.backtrack_branches r.sorbe_updates r.compiled_steps
        r.flips)
    (take top t.shapes);
  Format.fprintf ppf "profile: hottest focus nodes (top %d of %d)@."
    (min top (List.length t.nodes))
    (List.length t.nodes);
  Format.fprintf ppf "  %-48s %8s %10s@." "node" "checks" "wall_ms";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-48s %8d %10.3f@." (truncate_label r.node)
        r.checks
        (r.seconds *. 1000.))
    (take top t.nodes);
  Format.fprintf ppf
    "profile: attribution %.1f%% of %d deriv_steps, %.3f ms attributed@."
    (100. *. step_coverage t)
    t.total_steps
    (t.attributed_seconds *. 1000.)

let shape_row_json r =
  Json.Object
    [ ("shape", Json.String r.shape);
      ("checks", Json.int r.checks);
      ("wall_ms", Json.Number (r.seconds *. 1000.));
      ("deriv_steps", Json.int r.deriv_steps);
      ("backtrack_branches", Json.int r.backtrack_branches);
      ("sorbe_counter_updates", Json.int r.sorbe_updates);
      ("compiled_steps", Json.int r.compiled_steps);
      ("fixpoint_flips", Json.int r.flips) ]

let node_row_json r =
  Json.Object
    [ ("node", Json.String r.node);
      ("checks", Json.int r.checks);
      ("wall_ms", Json.Number (r.seconds *. 1000.)) ]

let to_json ?top t =
  let rows xs =
    match top with
    | None -> xs
    | Some n ->
        let rec take n = function
          | x :: tl when n > 0 -> x :: take (n - 1) tl
          | _ -> []
        in
        take n xs
  in
  Json.Object
    [ ("shapes", Json.Array (List.map shape_row_json (rows t.shapes)));
      ("nodes", Json.Array (List.map node_row_json (rows t.nodes)));
      ( "totals",
        Json.Object
          [ ("deriv_steps", Json.int t.total_steps);
            ("attributed_deriv_steps", Json.int t.attributed_steps);
            ("step_coverage", Json.Number (step_coverage t));
            ("attributed_wall_ms", Json.Number (t.attributed_seconds *. 1000.))
          ] ) ]

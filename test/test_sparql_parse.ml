(* Tests for the SPARQL parser: grammar coverage, the paper's
   Example 4 query text, and print→parse round-trips. *)

open Util
module A = Sparql.Ast
module E = Sparql.Eval

let parse src =
  match Sparql.Parse.parse src with
  | Ok q -> q
  | Error msg -> Alcotest.fail msg

let parse_err src =
  match Sparql.Parse.parse src with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg -> msg

let foaf l = Rdf.Iri.of_string_exn ("http://xmlns.com/foaf/0.1/" ^ l)

let example2_graph =
  graph_of
    [ triple (node "john") (foaf "age") (num 23);
      triple (node "john") (foaf "name") (Rdf.Term.str "John");
      triple (node "john") (foaf "knows") (node "bob");
      triple (node "bob") (foaf "age") (num 34);
      triple (node "bob") (foaf "name") (Rdf.Term.str "Bob");
      triple (node "bob") (foaf "name") (Rdf.Term.str "Robert");
      triple (node "mary") (foaf "age") (num 50);
      triple (node "mary") (foaf "age") (num 65) ]

let run_bool q =
  match E.run example2_graph q with
  | `Boolean b -> b
  | `Solutions _ -> Alcotest.fail "expected ASK"

let run_count q =
  match E.run example2_graph q with
  | `Solutions sols -> List.length sols
  | `Boolean _ -> Alcotest.fail "expected SELECT"

let test_ask_simple () =
  check_bool "true" true
    (run_bool
       (parse
          "PREFIX ex: <http://example.org/>\n\
           PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
           ASK { ex:john foaf:age 23 }"));
  check_bool "false" false
    (run_bool
       (parse
          "PREFIX ex: <http://example.org/>\n\
           PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
           ASK { ex:john foaf:age 99 }"))

let test_select_basic () =
  check_int "4 age rows" 4
    (run_count
       (parse
          "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
           SELECT ?s ?o { ?s foaf:age ?o }"))

let test_semicolon_comma () =
  check_int "bob by both" 1
    (run_count
       (parse
          "PREFIX ex: <http://example.org/>\n\
           PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
           SELECT ?s { ?s foaf:age 34 ; foaf:name \"Bob\", \"Robert\" }"))

let test_filter_expressions () =
  check_int "ages over 30" 3
    (run_count
       (parse
          "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
           SELECT ?s ?o { ?s foaf:age ?o FILTER (?o > 30) }"));
  check_int "strings" 3
    (run_count
       (parse
          "SELECT ?o { ?s ?p ?o FILTER (isLiteral(?o) && datatype(?o) = \
           <http://www.w3.org/2001/XMLSchema#string>) }"));
  (* objects that are IRIs (bob) or ≥ 60 (65) *)
  check_int "iri or over 60" 2
    (run_count
       (parse
          "SELECT ?o { ?s ?p ?o FILTER (isIRI(?o) || ?o >= 60) }"))

let test_optional_bound () =
  (* Subjects without foaf:knows, via the paper's !bound idiom. *)
  check_int "bob and mary" 2
    (run_count
       (parse
          "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
           SELECT ?s {\n\
          \  { SELECT DISTINCT ?s { ?s ?p ?o } }\n\
          \  OPTIONAL { ?s foaf:knows ?k }\n\
          \  FILTER (!bound(?k))\n\
           }"))

let test_union () =
  check_int "ages + knows" 5
    (run_count
       (parse
          "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
           SELECT ?o { { ?s foaf:age ?o } UNION { ?s foaf:knows ?o } }"))

let test_exists () =
  check_int "knows-havers" 1
    (run_count
       (parse
          "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
           SELECT ?s {\n\
          \  { SELECT DISTINCT ?s { ?s ?p ?o } }\n\
          \  FILTER EXISTS { ?s foaf:knows ?k }\n\
           }"));
  check_int "nameless" 1
    (run_count
       (parse
          "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
           SELECT ?s {\n\
          \  { SELECT DISTINCT ?s { ?s ?p ?o } }\n\
          \  FILTER NOT EXISTS { ?s foaf:name ?n }\n\
           }"))

let test_subselect_count_having () =
  check_int "bob has two names" 1
    (run_count
       (parse
          "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
           SELECT ?s { { SELECT ?s (COUNT(*) AS ?c) { ?s foaf:name ?o }\n\
           GROUP BY ?s HAVING (?c >= 2) } }"))

let test_regex_and_str () =
  check_int "example.org subjects" 3
    (run_count
       (parse
          "SELECT ?s { { SELECT DISTINCT ?s { ?s ?p ?o } }\n\
           FILTER regex(str(?s), \"^http://example.org/\") }"))

let test_blank_node_as_variable () =
  check_int "bnode joins" 4
    (run_count
       (parse
          "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
           SELECT ?o { _:x foaf:age ?o . _:x ?p ?o }"))

let test_a_keyword () =
  let g =
    Rdf.Graph.add
      (triple (node "john") Rdf.Namespace.Vocab.rdf_type (node "Human"))
      example2_graph
  in
  let q =
    parse
      "PREFIX ex: <http://example.org/>\nSELECT ?s { ?s a ex:Human }"
  in
  match E.run g q with
  | `Solutions sols -> check_int "one typed" 1 (List.length sols)
  | `Boolean _ -> Alcotest.fail "expected SELECT"

let test_parse_errors () =
  List.iter
    (fun src ->
      check_bool src true (String.length (parse_err src) > 0))
    [ "";
      "SELECT ?s";
      "ASK { ?s ?p }";
      "SELECT ?s { ?s ?p ?o";
      "ASK { ?s ?p ?o } trailing";
      "SELECT ?s { ?s nope:p ?o }";
      "SELECT ?s { FILTER bound(?s ?x) }";
      "SELECT (SUM(?x) AS ?s) { ?a ?b ?x }" ]

(* The paper's Example 4 query, as printed by our own Pp — the text of
   a real nested SPARQL query with sub-SELECTs, GROUP BY, HAVING,
   UNION, OPTIONAL and bound(). *)
let test_roundtrip_example4 () =
  let q = Sparql.Gen.example4_query () in
  let text = Sparql.Pp.query_to_string q in
  let q' = parse text in
  check_bool "same verdict on Example 2" true
    (Bool.equal (run_bool q) (run_bool q'));
  let mary_only =
    graph_of
      [ triple (node "mary") (foaf "age") (num 50);
        triple (node "mary") (foaf "age") (num 65) ]
  in
  let verdict g q =
    match E.run g q with `Boolean b -> b | _ -> Alcotest.fail "ask"
  in
  check_bool "same verdict on mary-only" true
    (Bool.equal (verdict mary_only q) (verdict mary_only q'))

let test_roundtrip_generated () =
  (* print → parse → evaluate agrees for a generated validation query. *)
  let shape =
    Shex.Rse.and_all
      [ Shex.Rse.arc_v (Shex.Value_set.Pred (foaf "age"))
          Shex.Value_set.xsd_integer;
        Shex.Rse.plus
          (Shex.Rse.arc_v (Shex.Value_set.Pred (foaf "name"))
             Shex.Value_set.xsd_string) ]
  in
  match Sparql.Gen.of_shape shape with
  | Error msg -> Alcotest.fail msg
  | Ok sel ->
      let text = Sparql.Pp.query_to_string (A.Select_q sel) in
      let q' = parse text in
      let nodes q =
        match E.run example2_graph q with
        | `Solutions sols ->
            List.filter_map (fun mu -> E.Solution.find "X" mu) sols
            |> List.sort_uniq Rdf.Term.compare
        | `Boolean _ -> Alcotest.fail "expected select"
      in
      Alcotest.(check (list term))
        "same nodes"
        (nodes (A.Select_q sel))
        (nodes q')

let suites =
  [ ( "sparql.parse",
      [ Alcotest.test_case "ASK" `Quick test_ask_simple;
        Alcotest.test_case "SELECT" `Quick test_select_basic;
        Alcotest.test_case "; and , abbreviations" `Quick
          test_semicolon_comma;
        Alcotest.test_case "filter expressions" `Quick
          test_filter_expressions;
        Alcotest.test_case "OPTIONAL + bound" `Quick test_optional_bound;
        Alcotest.test_case "UNION" `Quick test_union;
        Alcotest.test_case "EXISTS / NOT EXISTS" `Quick test_exists;
        Alcotest.test_case "subselect + COUNT + HAVING" `Quick
          test_subselect_count_having;
        Alcotest.test_case "regex(str())" `Quick test_regex_and_str;
        Alcotest.test_case "blank nodes as variables" `Quick
          test_blank_node_as_variable;
        Alcotest.test_case "a keyword" `Quick test_a_keyword;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "roundtrip Example 4" `Quick
          test_roundtrip_example4;
        Alcotest.test_case "roundtrip generated query" `Quick
          test_roundtrip_generated ] ) ]

(* The observability plane: sliding-window SLIs (Telemetry.Window),
   the flight-recorder journal and its offline replay (Obs.Journal /
   Obs.Replay), and the slowlog correlation fields. *)

let log2_bucket v =
  (* The bound [le] of the log2 bucket holding observation [v] — same
     bucketing as Telemetry.Histogram (v <= 1 lands in le = 1). *)
  let rec go le = if v <= le then le else go (le * 2) in
  go 1

let buckets_of values =
  List.sort compare
    (List.fold_left
       (fun acc v ->
         let le = log2_bucket v in
         match List.assoc_opt le acc with
         | Some n -> (le, n + 1) :: List.remove_assoc le acc
         | None -> (le, 1) :: acc)
       [] values)

(* The documented contract of the quantile estimator: nearest-rank
   over per-bucket counts always answers with the bound of the bucket
   that holds the true rank-⌈p·total⌉ observation, so the true
   quantile q satisfies le/2 < q <= le (q <= 1 for le = 1).  This is
   the factor-of-two resolution bound of log2 histograms — checked
   here against a brute-force nearest-rank over the raw values. *)
let prop_quantile_bucket_bound =
  QCheck.Test.make ~count:500 ~name:"windowed quantile is bucket-exact"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 200) (int_range 1 (1 lsl 20)))
        (float_range 0.01 1.0))
    (fun (values, p) ->
      QCheck.assume (values <> []);
      let total = List.length values in
      let est = Telemetry.Window.quantile (buckets_of values) ~total p in
      let sorted = List.sort compare values in
      let rank =
        max 1 (min total (int_of_float (ceil (p *. float_of_int total))))
      in
      let truth = List.nth sorted (rank - 1) in
      truth <= est && (est = 1 || est / 2 < truth))

let test_quantile_edges () =
  Alcotest.(check int) "empty" 0 (Telemetry.Window.quantile [] ~total:0 0.5);
  Alcotest.(check int)
    "single" 4
    (Telemetry.Window.quantile [ (4, 1) ] ~total:1 0.5);
  (* p = 0 still answers rank 1 (clamped), p = 1 the maximum bucket. *)
  Alcotest.(check int)
    "p=0 clamps to rank 1" 2
    (Telemetry.Window.quantile [ (2, 3); (8, 1) ] ~total:4 0.0);
  Alcotest.(check int)
    "p=1 is the top bucket" 8
    (Telemetry.Window.quantile [ (2, 3); (8, 1) ] ~total:4 1.0)

(* Ring wraparound: a window of 4 slots fed 10 samples must report
   over exactly the last 4 — both the retained-sample count and the
   rate computed from the (evicted-aware) oldest sample. *)
let test_window_wraparound () =
  let tele = Telemetry.create () in
  let c = Telemetry.counter tele "reqs" in
  let w = Telemetry.Window.create ~slots:4 ~interval_s:1.0 () in
  Alcotest.(check (option pass)) "empty window" None (Telemetry.Window.summary w);
  for i = 0 to 9 do
    Telemetry.Counter.add c 5;
    Telemetry.Window.observe w ~now:(float_of_int i) (Telemetry.snapshot tele)
  done;
  Alcotest.(check int) "saturates at slots" 4 (Telemetry.Window.samples w);
  match Telemetry.Window.summary w with
  | None -> Alcotest.fail "summary after 10 samples"
  | Some s ->
      Alcotest.(check (float 1e-9))
        "window spans last 4 samples" 3.0 s.Telemetry.Window.w_seconds;
      Alcotest.(check int) "samples" 4 s.Telemetry.Window.w_samples;
      Alcotest.(check (float 1e-9))
        "rate from evicted-aware oldest" 5.0
        (List.assoc "reqs" s.Telemetry.Window.w_rates)

let test_window_needs_two_distinct_times () =
  let tele = Telemetry.create () in
  ignore (Telemetry.counter tele "c");
  let w = Telemetry.Window.create ~slots:4 ~interval_s:1.0 () in
  Telemetry.Window.observe w ~now:5.0 (Telemetry.snapshot tele);
  Alcotest.(check (option pass)) "one sample" None (Telemetry.Window.summary w);
  Telemetry.Window.observe w ~now:5.0 (Telemetry.snapshot tele);
  Alcotest.(check (option pass))
    "two samples, zero span" None (Telemetry.Window.summary w)

(* A backwards wall-clock step mid-measurement (NTP) must clamp to a
   zero duration, never subtract from the accumulated total. *)
let test_backwards_clock_clamps () =
  let readings = ref [ 100.0; 90.0; 90.0; 95.5 ] in
  Telemetry.set_clock
    (Some
       (fun () ->
         match !readings with
         | [] -> 95.5
         | r :: tl ->
             readings := tl;
             r));
  Fun.protect
    ~finally:(fun () -> Telemetry.set_clock None)
    (fun () ->
      let tele = Telemetry.create () in
      let s = Telemetry.span tele "work" in
      Telemetry.Span.time s (fun () -> ());  (* 100 -> 90: backwards *)
      Alcotest.(check int) "count still bumps" 1 (Telemetry.Span.count s);
      Alcotest.(check (float 0.)) "clamped to zero" 0.0 (Telemetry.Span.total s);
      Telemetry.Span.time s (fun () -> ());  (* 90 -> 95.5: normal *)
      Alcotest.(check (float 1e-9)) "forward still accumulates" 5.5
        (Telemetry.Span.total s))

let with_temp_journal f =
  let path = Filename.temp_file "obs_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; Obs.Journal.rotated_path path ])
    (fun () ->
      (* temp_file creates it empty; Journal appends, which is the
         restart case — fine for these tests. *)
      f path)

let read_lines path =
  In_channel.with_open_bin path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")

(* Rotation boundary: no record is lost or torn — every line of both
   generations parses, and the line counts sum to the records
   written. *)
let test_journal_rotation () =
  with_temp_journal @@ fun path ->
  let j = Obs.Journal.create ~max_bytes:256 path in
  let n = 40 in
  for i = 1 to n do
    Obs.Journal.record j
      (Json.Object [ ("kind", Json.String "tick"); ("seq", Json.int i) ])
  done;
  Obs.Journal.close j;
  Alcotest.(check bool) "rotated at least once" true (Obs.Journal.rotations j > 0);
  Alcotest.(check bool)
    "retired generation exists" true
    (Sys.file_exists (Obs.Journal.rotated_path path));
  let live = read_lines path
  and retired = read_lines (Obs.Journal.rotated_path path) in
  (* Older rotations are overwritten: together the two generations
     hold a suffix of the stream ending at record n, in order. *)
  let seqs =
    List.map
      (fun l ->
        match Json.of_string l with
        | Ok js -> Option.get (Json.find_int "seq" js)
        | Error msg -> Alcotest.fail ("unparseable journal line: " ^ msg))
      (retired @ live)
  in
  let len = List.length seqs in
  Alcotest.(check bool) "kept a suffix" true (len > 0 && len <= n);
  List.iteri
    (fun i seq ->
      Alcotest.(check int) "contiguous suffix" (n - len + 1 + i) seq)
    seqs

let tick ts counters lat_count lat_buckets =
  Json.Object
    [ ("kind", Json.String "tick");
      ("ts", Json.Number ts);
      ( "telemetry",
        Json.Object
          [ ( "counters",
              Json.Object (List.map (fun (k, v) -> (k, Json.int v)) counters) );
            ( "histograms",
              Json.Object
                [ ( "serve_latency_us",
                    Json.Object
                      [ ("count", Json.int lat_count);
                        ( "buckets",
                          Json.Object
                            (List.map
                               (fun (le, n) -> (string_of_int le, Json.int n))
                               lat_buckets) )
                      ] )
                ] )
          ] )
    ]

(* Replay across a rotation: cumulative ticks written through the
   rotating writer diff into one continuous window series — the file
   boundary is invisible in the reconstruction.  Rotation keeps only
   two generations, so with a small max_bytes a *prefix* of the ticks
   is gone; what survives is a contiguous suffix, and because the
   ticks are cumulative every adjacent surviving pair still diffs to
   the same rates and quantiles. *)
let test_replay_spans_rotation () =
  with_temp_journal @@ fun path ->
  let j = Obs.Journal.create ~max_bytes:600 path in
  Obs.Journal.record j
    (Json.Object
       [ ("kind", Json.String "start"); ("ts", Json.Number 1000.);
         ("pid", Json.int 1) ]);
  for i = 0 to 9 do
    Obs.Journal.record j
      (tick
         (1000. +. (10. *. float_of_int i))
         [ ("serve_requests", 20 * i); ("serve_errors", i) ]
         (20 * i)
         [ (256, 19 * i); (4096, i) ])
  done;
  Obs.Journal.record j
    (Json.Object
       [ ("kind", Json.String "shutdown"); ("ts", Json.Number 1090.);
         ("reason", Json.String "sigterm") ]);
  Obs.Journal.close j;
  Alcotest.(check bool) "rotation happened" true (Obs.Journal.rotations j > 0);
  match Obs.Replay.analyze path with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
      Alcotest.(check bool)
        "a multi-tick suffix survives" true
        (r.Obs.Replay.ticks >= 2 && r.Obs.Replay.ticks <= 10);
      Alcotest.(check int)
        "one window per adjacent tick pair"
        (r.Obs.Replay.ticks - 1)
        (List.length r.Obs.Replay.windows);
      Alcotest.(check (option string))
        "shutdown reason" (Some "sigterm") r.Obs.Replay.shutdown;
      List.iter
        (fun w ->
          Alcotest.(check (float 1e-9)) "2 req/s" 2.0 w.Obs.Replay.r_requests;
          Alcotest.(check (float 1e-9)) "0.1 err/s" 0.1 w.Obs.Replay.r_errors;
          match w.Obs.Replay.r_lat with
          | None -> Alcotest.fail "latency quantiles missing"
          | Some q ->
              (* Per window: 19 observations in le=256, 1 in le=4096. *)
              Alcotest.(check int) "count" 20 q.Telemetry.Window.q_count;
              Alcotest.(check int) "p50" 256 q.Telemetry.Window.q_p50;
              Alcotest.(check int) "p99" 4096 q.Telemetry.Window.q_p99)
        r.Obs.Replay.windows

(* A torn final line (crash mid-write) is skipped and counted, and a
   counter that moves backwards (daemon restart into the same journal)
   degrades to the newer cumulative reading — never a negative rate. *)
let test_replay_torn_line_and_restart () =
  with_temp_journal @@ fun path ->
  let oc = open_out path in
  output_string oc
    (Json.to_string ~minify:true (tick 0. [ ("serve_requests", 50) ] 0 [])
    ^ "\n");
  output_string oc
    (Json.to_string ~minify:true (tick 10. [ ("serve_requests", 30) ] 0 [])
    ^ "\n");
  output_string oc "{\"kind\":\"tick\",\"ts\":20,\"telemetry\":{\"coun";
  close_out oc;
  match Obs.Replay.analyze path with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
      Alcotest.(check int) "torn line skipped" 1 r.Obs.Replay.skipped;
      Alcotest.(check int) "two good ticks" 2 r.Obs.Replay.ticks;
      (match r.Obs.Replay.windows with
      | [ w ] ->
          Alcotest.(check (float 1e-9))
            "restart degrades to cumulative" 3.0 w.Obs.Replay.r_requests
      | ws -> Alcotest.failf "expected 1 window, got %d" (List.length ws))

let test_replay_missing_file () =
  match Obs.Replay.analyze "/nonexistent/journal.jsonl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error for a missing journal"

(* Slowlog correlation: entries carry a capture timestamp and, when a
   request context is set, the request id — both surfaced in JSON. *)
let test_slowlog_correlation () =
  let slog = Shex.Slowlog.create ~capacity:4 ~threshold_ms:0. () in
  Alcotest.(check (option int)) "no context" None (Shex.Slowlog.context slog);
  Shex.Slowlog.set_context slog (Some 42);
  let entry =
    { Shex.Slowlog.node = Rdf.Term.iri "http://example.org/n";
      label = Shex.Label.of_string "S";
      seconds = 0.25;
      at = 1234.5;
      request = Shex.Slowlog.context slog;
      conformant = true;
      explain = None;
      work = [] }
  in
  Shex.Slowlog.record slog entry;
  let js = Shex.Slowlog.entry_to_json entry in
  Alcotest.(check (option int)) "request id" (Some 42) (Json.find_int "request" js);
  (match Json.find "at" js with
  | Some (Json.Number t) -> Alcotest.(check (float 0.)) "at" 1234.5 t
  | _ -> Alcotest.fail "missing \"at\"");
  Shex.Slowlog.set_context slog None;
  Alcotest.(check (option int)) "context cleared" None (Shex.Slowlog.context slog)

let suites =
  [ ( "obs.window",
      [ Alcotest.test_case "quantile edge cases" `Quick test_quantile_edges;
        Alcotest.test_case "ring wraparound" `Quick test_window_wraparound;
        Alcotest.test_case "summary needs two distinct samples" `Quick
          test_window_needs_two_distinct_times;
        Alcotest.test_case "backwards clock clamps" `Quick
          test_backwards_clock_clamps;
        QCheck_alcotest.to_alcotest prop_quantile_bucket_bound
      ] );
    ( "obs.journal",
      [ Alcotest.test_case "rotation keeps a parseable suffix" `Quick
          test_journal_rotation;
        Alcotest.test_case "replay spans the rotation boundary" `Quick
          test_replay_spans_rotation;
        Alcotest.test_case "torn line and restart degrade gracefully" `Quick
          test_replay_torn_line_and_restart;
        Alcotest.test_case "missing journal is an error" `Quick
          test_replay_missing_file;
        Alcotest.test_case "slowlog correlation fields" `Quick
          test_slowlog_correlation
      ] ) ]

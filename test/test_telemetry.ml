(* Telemetry registry unit tests, exact deterministic engine counters
   (the 2^n decomposition blow-up of Example 3 vs the linear derivative
   walk), and the guarantee that observation never changes verdicts. *)

open Shex

let get snap name =
  match Telemetry.find_counter snap name with
  | Some v -> v
  | None -> Alcotest.failf "counter %S missing from snapshot" name

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  let tele = Telemetry.create () in
  let c = Telemetry.counter tele "steps" in
  Alcotest.(check bool) "active" true (Telemetry.Counter.active c);
  Telemetry.Counter.incr c;
  Telemetry.Counter.add c 4;
  Alcotest.(check int) "value" 5 (Telemetry.Counter.value c);
  (* get-or-create: same name, same instrument *)
  Telemetry.Counter.incr (Telemetry.counter tele "steps");
  Alcotest.(check int) "shared" 6 (Telemetry.Counter.value c);
  let g = Telemetry.gauge tele "states" in
  Telemetry.Counter.set g 42;
  Telemetry.Counter.set g 17;
  let snap = Telemetry.snapshot tele in
  Alcotest.(check int) "snapshot counter" 6 (get snap "steps");
  Alcotest.(check int) "snapshot gauge" 17 (get snap "states");
  Alcotest.(check (list (pair string int)))
    "sorted names"
    [ ("states", 17); ("steps", 6) ]
    (Telemetry.counters snap)

let test_disabled () =
  let c = Telemetry.counter Telemetry.disabled "steps" in
  Alcotest.(check bool) "inactive" false (Telemetry.Counter.active c);
  Telemetry.Counter.incr c;
  Telemetry.Counter.add c 10;
  Alcotest.(check int) "never records" 0 (Telemetry.Counter.value c);
  Alcotest.(check bool) "not tracing" false (Telemetry.tracing Telemetry.disabled);
  Alcotest.(check bool)
    "empty snapshot" true
    (Telemetry.is_empty (Telemetry.snapshot Telemetry.disabled))

let test_histogram () =
  let tele = Telemetry.create () in
  let h = Telemetry.histogram tele "sizes" in
  List.iter (Telemetry.Histogram.observe h) [ 1; 2; 9 ];
  Alcotest.(check int) "count" 3 (Telemetry.Histogram.count h);
  Alcotest.(check int) "sum" 12 (Telemetry.Histogram.sum h);
  Alcotest.(check int) "max" 9 (Telemetry.Histogram.max_value h);
  (* v lands in the first le = 2^i bucket with v <= 2^i *)
  let buckets =
    match
      Json.find "histograms" (Telemetry.to_json (Telemetry.snapshot tele))
    with
    | Some hs -> (
        match Json.find "sizes" hs with
        | Some s -> Option.get (Json.find "buckets" s)
        | None -> Alcotest.fail "histogram missing")
    | None -> Alcotest.fail "histograms missing"
  in
  List.iter
    (fun (le, n) ->
      Alcotest.(check (option int))
        (Printf.sprintf "bucket le=%s" le)
        (Some n) (Json.find_int le buckets))
    [ ("1", 1); ("2", 1); ("16", 1) ]

let test_span_and_events () =
  let tele = Telemetry.create () in
  let s = Telemetry.span tele "work" in
  let r = Telemetry.Span.time s (fun () -> 6 * 7) in
  Alcotest.(check int) "span returns" 42 r;
  Alcotest.(check int) "span count" 1 (Telemetry.Span.count s);
  Alcotest.(check bool) "span total >= 0" true (Telemetry.Span.total s >= 0.0);
  let seen = ref [] in
  Alcotest.(check bool) "no sink" false (Telemetry.tracing tele);
  Telemetry.set_sink tele (Some (fun ev -> seen := ev :: !seen));
  Alcotest.(check bool) "sink installed" true (Telemetry.tracing tele);
  let ev =
    Telemetry.instant "step"
      [ ("n", Telemetry.Int 3); ("ok", Telemetry.Bool true) ]
  in
  Telemetry.emit tele ev;
  Alcotest.(check int) "delivered" 1 (List.length !seen);
  Alcotest.(check string)
    "event json" {|{"event":"step","n":3,"ok":true}|}
    (Json.to_string ~minify:true (Telemetry.event_to_json ev));
  Alcotest.(check string)
    "span event json carries ph"
    {|{"event":"check","ph":"B","node":"n1"}|}
    (Json.to_string ~minify:true
       (Telemetry.event_to_json
          (Telemetry.span_begin "check" [ ("node", Telemetry.String "n1") ])));
  Alcotest.(check bool) "residuals off by default" false
    (Telemetry.residuals tele);
  Telemetry.set_residuals tele true;
  Alcotest.(check bool) "residuals on with sink installed" true
    (Telemetry.residuals tele);
  Telemetry.set_residuals tele false;
  Telemetry.set_sink tele None;
  Telemetry.emit tele ev;
  Alcotest.(check int) "sink removed" 1 (List.length !seen)

(* ------------------------------------------------------------------ *)
(* Reset and snapshot diff (the long-running-server primitives)        *)
(* ------------------------------------------------------------------ *)

(* A reset registry must look exactly like a fresh one that registered
   the same instruments — and merging into it afterwards must land on
   the zeroed cells, so merge → reset → merge round-trips. *)
let test_merge_reset_roundtrip () =
  let shard () =
    let t = Telemetry.create () in
    Telemetry.Counter.add (Telemetry.counter t "steps") 5;
    Telemetry.Counter.set (Telemetry.gauge t "states") 3;
    Telemetry.Histogram.observe (Telemetry.histogram t "sizes") 9;
    ignore (Telemetry.Span.time (Telemetry.span t "work") (fun () -> ()));
    t
  in
  let parent = Telemetry.create () in
  Telemetry.merge ~into:parent (shard ());
  Telemetry.merge ~into:parent (shard ());
  let merged = Telemetry.snapshot parent in
  Alcotest.(check int) "merged counter" 10 (get merged "steps");
  Alcotest.(check int) "merged gauge" 6 (get merged "states");
  (* The instrument resolved before the reset must stay live after. *)
  let c = Telemetry.counter parent "steps" in
  Telemetry.reset parent;
  let zeroed = Telemetry.snapshot parent in
  Alcotest.(check int) "reset counter" 0 (get zeroed "steps");
  Alcotest.(check int) "reset gauge" 0 (get zeroed "states");
  Alcotest.(check bool)
    "registrations survive reset" false
    (Telemetry.is_empty zeroed);
  Telemetry.Counter.incr c;
  Alcotest.(check int)
    "pre-reset instrument still records" 1
    (get (Telemetry.snapshot parent) "steps");
  Telemetry.reset parent;
  Telemetry.merge ~into:parent (shard ());
  let again = Telemetry.snapshot parent in
  Alcotest.(check int) "merge after reset" 5 (get again "steps");
  Alcotest.(check int) "gauge after reset-merge" 3 (get again "states");
  (* Histograms and spans reset too: one shard's worth, not three. *)
  let json = Telemetry.to_json again in
  let histo_count =
    Option.bind (Json.find "histograms" json) (Json.find "sizes")
    |> Fun.flip Option.bind (Json.find_int "count")
  in
  Alcotest.(check (option int)) "histogram count after reset" (Some 1)
    histo_count;
  let span_count =
    Option.bind (Json.find "spans" json) (Json.find "work")
    |> Fun.flip Option.bind (Json.find_int "count")
  in
  Alcotest.(check (option int)) "span count after reset" (Some 1) span_count

(* diff ~since now isolates exactly the work between two snapshots. *)
let test_snapshot_diff () =
  let t = Telemetry.create () in
  let c = Telemetry.counter t "steps" in
  let g = Telemetry.gauge t "states" in
  let h = Telemetry.histogram t "sizes" in
  Telemetry.Counter.add c 7;
  Telemetry.Counter.set g 4;
  Telemetry.Histogram.observe h 3;
  let since = Telemetry.snapshot t in
  Telemetry.Counter.add c 5;
  Telemetry.Counter.set g 9;
  Telemetry.Histogram.observe h 3;
  Telemetry.Histogram.observe h 100;
  let d = Telemetry.diff ~since (Telemetry.snapshot t) in
  Alcotest.(check int) "counter delta" 5 (get d "steps");
  Alcotest.(check int) "gauge keeps level reading" 9 (get d "states");
  let json = Telemetry.to_json d in
  let sizes = Option.bind (Json.find "histograms" json) (Json.find "sizes") in
  Alcotest.(check (option int))
    "histogram count delta" (Some 2)
    (Option.bind sizes (Json.find_int "count"));
  Alcotest.(check (option int))
    "histogram sum delta" (Some 103)
    (Option.bind sizes (Json.find_int "sum"));
  let bucket le =
    Option.bind sizes (Json.find "buckets")
    |> Fun.flip Option.bind (Json.find_int le)
  in
  Alcotest.(check (option int)) "window bucket le=4" (Some 1) (bucket "4");
  Alcotest.(check (option int)) "window bucket le=128" (Some 1) (bucket "128");
  (* A reset between the snapshots degrades to reporting [now]. *)
  Telemetry.reset t;
  Telemetry.Counter.add c 2;
  let after_reset = Telemetry.diff ~since (Telemetry.snapshot t) in
  Alcotest.(check int) "reset inside window reports now" 2
    (get after_reset "steps");
  (* New instruments pass through. *)
  Telemetry.Counter.incr (Telemetry.counter t "fresh");
  Alcotest.(check int) "fresh instrument passes through" 1
    (get (Telemetry.diff ~since (Telemetry.snapshot t)) "fresh")

(* ------------------------------------------------------------------ *)
(* Labelled families (the attribution dimension)                       *)
(* ------------------------------------------------------------------ *)

let lget snap family label =
  match List.assoc_opt label (Telemetry.labelled_counter_values snap family) with
  | Some v -> v
  | None -> Alcotest.failf "label %S missing from family %S" label family

let test_labelled_basics () =
  let t = Telemetry.create () in
  let fam = Telemetry.counter_family t ~key:"shape" "steps_by_shape" in
  Telemetry.Counter.add (Telemetry.labelled fam "Person") 5;
  Telemetry.Counter.incr (Telemetry.labelled fam "Company") ;
  (* get-or-create per label: same cell both times *)
  Telemetry.Counter.add (Telemetry.labelled fam "Person") 2;
  let snap = Telemetry.snapshot t in
  Alcotest.(check int) "Person cell" 7 (lget snap "steps_by_shape" "Person");
  Alcotest.(check int) "Company cell" 1 (lget snap "steps_by_shape" "Company");
  Alcotest.(check (list (pair string int)))
    "sorted by label"
    [ ("Company", 1); ("Person", 7) ]
    (Telemetry.labelled_counter_values snap "steps_by_shape");
  Alcotest.(check (list (pair string int)))
    "missing family is empty" []
    (Telemetry.labelled_counter_values snap "no_such_family");
  (* span families report (count, seconds) *)
  let sf = Telemetry.span_family t ~key:"shape" "seconds_by_shape" in
  Telemetry.Span.record (Telemetry.labelled sf "Person") 0.25;
  Telemetry.Span.record (Telemetry.labelled sf "Person") 0.25;
  (match
     Telemetry.labelled_span_values (Telemetry.snapshot t) "seconds_by_shape"
   with
  | [ ("Person", (2, secs)) ] ->
      Alcotest.(check (float 1e-9)) "span seconds" 0.5 secs
  | other ->
      Alcotest.failf "unexpected span cells (%d)" (List.length other));
  (* disabled registries hand out inert cells and register nothing *)
  let dfam =
    Telemetry.counter_family Telemetry.disabled ~key:"shape" "steps_by_shape"
  in
  let cell = Telemetry.labelled dfam "Person" in
  Telemetry.Counter.add cell 10;
  Alcotest.(check int) "inert cell" 0 (Telemetry.Counter.value cell);
  Alcotest.(check bool)
    "disabled snapshot stays empty" true
    (Telemetry.is_empty (Telemetry.snapshot Telemetry.disabled))

(* Merging shards adds label-by-label; reset zeroes cells while
   keeping registrations and resolved-cell identity, exactly like the
   plain instruments — the interleaving a domain-parallel profiled run
   plus a long-running server exercises. *)
let test_labelled_merge_reset () =
  let shard labels =
    let t = Telemetry.create () in
    let fam = Telemetry.counter_family t ~key:"shape" "steps_by_shape" in
    List.iter
      (fun (l, v) -> Telemetry.Counter.add (Telemetry.labelled fam l) v)
      labels;
    t
  in
  let parent = Telemetry.create () in
  Telemetry.merge ~into:parent (shard [ ("Person", 3); ("Company", 1) ]);
  Telemetry.merge ~into:parent (shard [ ("Person", 4) ]);
  let merged = Telemetry.snapshot parent in
  Alcotest.(check int) "labels add" 7 (lget merged "steps_by_shape" "Person");
  Alcotest.(check int)
    "missing-in-one-shard label survives" 1
    (lget merged "steps_by_shape" "Company");
  (* A cell resolved before reset keeps recording after. *)
  let fam = Telemetry.counter_family parent ~key:"shape" "steps_by_shape" in
  let person = Telemetry.labelled fam "Person" in
  Telemetry.reset parent;
  let zeroed = Telemetry.snapshot parent in
  Alcotest.(check int) "reset cell" 0 (lget zeroed "steps_by_shape" "Person");
  Telemetry.Counter.incr person;
  Alcotest.(check int)
    "pre-reset cell still records" 1
    (lget (Telemetry.snapshot parent) "steps_by_shape" "Person");
  Telemetry.merge ~into:parent (shard [ ("Person", 5) ]);
  Alcotest.(check int)
    "merge after reset lands on zeroed cells" 6
    (lget (Telemetry.snapshot parent) "steps_by_shape" "Person")

(* diff over labelled cells: per-window deltas, fresh labels pass
   through, a reset inside the window degrades to the now reading. *)
let test_labelled_diff () =
  let t = Telemetry.create () in
  let fam = Telemetry.counter_family t ~key:"shape" "steps_by_shape" in
  let person = Telemetry.labelled fam "Person" in
  Telemetry.Counter.add person 10;
  let since = Telemetry.snapshot t in
  Telemetry.Counter.add person 3;
  Telemetry.Counter.add (Telemetry.labelled fam "Company") 2;
  let d = Telemetry.diff ~since (Telemetry.snapshot t) in
  Alcotest.(check int) "cell delta" 3 (lget d "steps_by_shape" "Person");
  Alcotest.(check int)
    "fresh label passes through" 2
    (lget d "steps_by_shape" "Company");
  Telemetry.reset t;
  Telemetry.Counter.add person 4;
  let after_reset = Telemetry.diff ~since (Telemetry.snapshot t) in
  Alcotest.(check int)
    "reset inside window reports now" 4
    (lget after_reset "steps_by_shape" "Person");
  (* JSON: the "labelled" member appears exactly when a family exists. *)
  let json = Telemetry.to_json (Telemetry.snapshot t) in
  Alcotest.(check bool) "labelled member present" true
    (Json.find "labelled" json <> None);
  let plain = Telemetry.create () in
  Telemetry.Counter.incr (Telemetry.counter plain "steps");
  Alcotest.(check bool) "no labelled member without families" true
    (Json.find "labelled" (Telemetry.to_json (Telemetry.snapshot plain))
    = None)

(* The histogram's top edge: 2^30 still lands in the le=2^30 bucket,
   anything above it in the overflow slot (rendered with le=2^31 in
   JSON, accumulated into +Inf by pp_text). *)
let test_histogram_overflow_edge () =
  let t = Telemetry.create () in
  let h = Telemetry.histogram t "sizes" in
  Telemetry.Histogram.observe h (1 lsl 30);
  Telemetry.Histogram.observe h ((1 lsl 30) + 1);
  Telemetry.Histogram.observe h max_int;
  Alcotest.(check int) "count" 3 (Telemetry.Histogram.count h);
  Alcotest.(check int) "max" max_int (Telemetry.Histogram.max_value h);
  let buckets =
    Option.bind
      (Json.find "histograms" (Telemetry.to_json (Telemetry.snapshot t)))
      (Json.find "sizes")
    |> Fun.flip Option.bind (Json.find "buckets")
    |> Option.get
  in
  Alcotest.(check (option int))
    "2^30 in the last real bucket" (Some 1)
    (Json.find_int (string_of_int (1 lsl 30)) buckets);
  Alcotest.(check (option int))
    "everything above in the overflow bucket" (Some 2)
    (Json.find_int (string_of_int (1 lsl 31)) buckets);
  let text = Format.asprintf "%a" Telemetry.pp_text (Telemetry.snapshot t) in
  let contains needle hay =
    let n = String.length needle and m = String.length hay in
    let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "+Inf line is cumulative" true
    (contains "shex_sizes_bucket{le=\"+Inf\"} 3" text)

(* Prometheus exposition hygiene: metric names sanitize to
   [a-zA-Z0-9_:], label values escape backslash, quote and newline. *)
let test_exposition_sanitization () =
  let t = Telemetry.create () in
  Telemetry.Counter.incr
    (Telemetry.counter t ~help:"Weird \"name\"\nwith escapes"
       "weird metric-name!");
  let fam = Telemetry.counter_family t ~key:"shape key" "by shape" in
  Telemetry.Counter.add
    (Telemetry.labelled fam "quoted \"label\" with \\ and \nnewline")
    2;
  let text = Format.asprintf "%a" Telemetry.pp_text (Telemetry.snapshot t) in
  let contains needle hay =
    let n = String.length needle and m = String.length hay in
    let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "metric name sanitized" true
    (contains "shex_weird_metric_name_ 1" text);
  Alcotest.(check bool) "help escapes the newline" true
    (contains "# HELP shex_weird_metric_name_ Weird \"name\"\\nwith escapes"
       text);
  Alcotest.(check bool) "label key sanitized, value escaped" true
    (contains
       "shex_by_shape{shape_key=\"quoted \\\"label\\\" with \\\\ and \
        \\nnewline\"} 2"
       text);
  (* No raw newline may survive inside any exposition line. *)
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         Alcotest.(check bool)
           (Printf.sprintf "line %S has no stray quote-escape breakage" line)
           false
           (String.length line > 0 && line.[String.length line - 1] = '\\'))

(* ------------------------------------------------------------------ *)
(* Exact engine counters                                               *)
(* ------------------------------------------------------------------ *)

let deriv_counters n =
  let tele = Telemetry.create () in
  let ok =
    Deriv.matches
      ~instr:(Deriv.instruments tele)
      Workload.Micro_gen.focus
      (Workload.Micro_gen.example5_neighbourhood n)
      (Workload.Micro_gen.example5_shape ())
  in
  Alcotest.(check bool) "valid neighbourhood" true ok;
  Telemetry.snapshot tele

(* The derivative engine consumes each of the n triples exactly once:
   deriv_steps is linear by construction. *)
let test_deriv_linear () =
  List.iter
    (fun n ->
      let snap = deriv_counters n in
      Alcotest.(check int)
        (Printf.sprintf "deriv_steps n=%d" n)
        n
        (get snap "deriv_steps"))
    [ 1; 3; 8; 16; 32 ]

let backtrack_counters g =
  let tele = Telemetry.create () in
  let verdict =
    Backtrack.matches
      ~instr:(Backtrack.instruments tele)
      Workload.Micro_gen.focus g
      (Workload.Micro_gen.example5_shape ())
  in
  (verdict, Telemetry.snapshot tele)

(* Example 3: a graph with 3 triples has 2^3 = 8 decompositions, and
   the Fig. 1 matcher materialises all of them at the top-level ⊓
   before trying branches.  On the failing neighbourhoods (no a-arc)
   nothing prunes, so the decomposition count doubles with each extra
   triple — the exponential the derivative engine avoids. *)
let test_backtrack_exponential () =
  let graphs =
    List.map
      (fun n -> (n, Workload.Micro_gen.example5_neighbourhood_invalid n))
      [ 2; 3; 4; 5; 6 ]
  in
  List.iter
    (fun (n, g) ->
      let verdict, snap = backtrack_counters g in
      Alcotest.(check bool)
        (Printf.sprintf "invalid n=%d rejected" n)
        false verdict;
      let decomps = get snap "backtrack_decompositions" in
      Alcotest.(check bool)
        (Printf.sprintf "decompositions n=%d >= 2^n (got %d)" n decomps)
        true
        (decomps >= 1 lsl n))
    graphs;
  (* Exact values pin the doubling law down deterministically. *)
  let exact =
    List.map
      (fun (n, g) -> (n, get (snd (backtrack_counters g)) "backtrack_decompositions"))
      graphs
  in
  Alcotest.(check (list (pair int int)))
    "exact decomposition counts"
    [ (2, 4); (3, 8); (4, 16); (5, 32); (6, 64) ]
    exact

(* The same neighbourhood, side by side: Example 3's 3-triple graph
   has 2^3 = 8 top-level decompositions, and the accepting run
   materialises 6 more while unrolling the star over the {b1, b2}
   part — 14 in total, versus 3 linear derivative steps. *)
let test_example3_contrast () =
  let g = Workload.Micro_gen.example5_neighbourhood 3 in
  let verdict, snap = backtrack_counters g in
  Alcotest.(check bool) "backtracking accepts" true verdict;
  Alcotest.(check int) "2^3 top-level + 6 recursive decompositions" 14
    (get snap "backtrack_decompositions");
  let dsnap = deriv_counters 3 in
  Alcotest.(check int) "3 derivative steps" 3 (get dsnap "deriv_steps");
  Alcotest.(check int) "no derivative work in backtracking run" 0
    (match Telemetry.find_counter snap "deriv_steps" with
    | Some v -> v
    | None -> 0)

(* ------------------------------------------------------------------ *)
(* Telemetry is observation-only                                       *)
(* ------------------------------------------------------------------ *)

let prop_observation_only =
  QCheck.Test.make ~count:300
    ~name:"enabling telemetry never changes a verdict"
    Test_props.arb_rse_graph
    (fun (e, g) ->
      QCheck.assume (Test_props.small_enough g);
      let node = Rdf.Term.Iri (Rdf.Iri.of_string_exn "http://example.org/n") in
      let tele = Telemetry.create () in
      Telemetry.set_sink tele (Some ignore);
      let instrumented_deriv =
        Deriv.matches ~instr:(Deriv.instruments tele) node g e
      in
      let instrumented_back =
        Backtrack.matches ~instr:(Backtrack.instruments tele) node g e
      in
      Bool.equal instrumented_deriv (Deriv.matches node g e)
      && Bool.equal instrumented_back (Backtrack.matches node g e))

let suites =
  [ ( "telemetry.registry",
      [ Alcotest.test_case "counters and gauges" `Quick test_counters;
        Alcotest.test_case "disabled registry is inert" `Quick test_disabled;
        Alcotest.test_case "histogram log2 buckets" `Quick test_histogram;
        Alcotest.test_case "spans and event sink" `Quick test_span_and_events;
        Alcotest.test_case "merge-then-reset round-trips" `Quick
          test_merge_reset_roundtrip;
        Alcotest.test_case "snapshot diff" `Quick test_snapshot_diff;
        Alcotest.test_case "labelled families" `Quick test_labelled_basics;
        Alcotest.test_case "labelled merge and reset interleavings" `Quick
          test_labelled_merge_reset;
        Alcotest.test_case "labelled diff" `Quick test_labelled_diff;
        Alcotest.test_case "histogram overflow edge at 2^30" `Quick
          test_histogram_overflow_edge;
        Alcotest.test_case "exposition sanitization and escaping" `Quick
          test_exposition_sanitization
      ] );
    ( "telemetry.engines",
      [ Alcotest.test_case "derivative steps are linear" `Quick
          test_deriv_linear;
        Alcotest.test_case "backtracking decompositions are 2^n" `Quick
          test_backtrack_exponential;
        Alcotest.test_case "Example 3 contrast" `Quick test_example3_contrast
      ] );
    ( "telemetry.properties",
      [ QCheck_alcotest.to_alcotest prop_observation_only ] ) ]

(* Static-analysis tests: emptiness/satisfiability, containment,
   dead-rule detection, the pre-validation optimizer, and the
   equality/ordering seams the analysis leans on (ISSUE 10). *)

open Util
open Shex

(* the optimizer property exercises the Compiled engine *)
let () = Shex_automaton.Engine.install ()

let lbl = Label.of_string
let plbl name = lbl ("http://example.org/" ^ name)
let unsat_obj = Value_set.Obj_not Value_set.Obj_any

(* ------------------------------------------------------------------ *)
(* equal ⇔ compare = 0 (the ordering seam ACI normalisation and the   *)
(* analysis visited-set both lean on)                                  *)
(* ------------------------------------------------------------------ *)

let gen_case_expr =
  (* Expressions drawn from the oracle's own schema generator — the
     same distribution the analysis is fuzzed with. *)
  QCheck.Gen.(
    int_bound 100_000 >>= fun seed ->
    bool >>= fun extended ->
    let mode = if extended then Workload.Rand_gen.Extended else Workload.Rand_gen.Surface in
    let case = Workload.Rand_gen.case ~mode seed in
    oneofl (List.map snd (Schema.rules case.Workload.Rand_gen.schema)))

let arb_case_expr = QCheck.make ~print:Rse.to_string gen_case_expr

let prop_equal_iff_compare_zero =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:400 ~name:"equal a b ⇔ compare a b = 0"
       (QCheck.pair arb_case_expr arb_case_expr)
       (fun (a, b) ->
         Bool.equal (Rse.equal a b) (Rse.compare a b = 0)
         && Rse.compare a a = 0
         && Rse.compare b b = 0))

let prop_compare_antisymmetric =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:400 ~name:"compare is a total order"
       (QCheck.pair arb_case_expr arb_case_expr)
       (fun (a, b) ->
         Rse.compare a b = -Rse.compare b a
         && (Rse.compare a b <> 0 || Rse.equal a b)))

let prop_arc_equal_iff_compare_zero =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:400 ~name:"arc_equal a b ⇔ arc_compare a b = 0"
       (QCheck.pair arb_case_expr arb_case_expr)
       (fun (a, b) ->
         List.for_all
           (fun x ->
             List.for_all
               (fun y ->
                 Bool.equal (Rse.arc_equal x y) (Rse.arc_compare x y = 0))
               (Rse.arcs a @ Rse.arcs b))
           (Rse.arcs a @ Rse.arcs b)))

(* ------------------------------------------------------------------ *)
(* Emptiness                                                           *)
(* ------------------------------------------------------------------ *)

let test_satisfiable_witness () =
  let s = Schema.make_exn [ (plbl "S", example5) ] in
  match Analysis.shape_satisfiable s (plbl "S") with
  | Analysis.Satisfiable w ->
      (* the witness must replay: focus conforms in the witness graph *)
      let sess = Validate.session s w.Analysis.graph in
      check_bool "witness validates" true
        (Validate.check_bool sess w.Analysis.focus (plbl "S"))
  | v -> Alcotest.failf "expected satisfiable, got %a" Analysis.pp_emptiness v

let test_empty_shape () =
  (* an arc whose object set is ¬⊤ can never be matched *)
  let s =
    Schema.make_exn [ (plbl "E", Rse.arc_v (Value_set.Pred (ex "a")) unsat_obj) ]
  in
  match Analysis.shape_satisfiable s (plbl "E") with
  | Analysis.Empty -> ()
  | v -> Alcotest.failf "expected empty, got %a" Analysis.pp_emptiness v

let test_empty_by_contradiction () =
  (* ¬((⊤→⊤)⋆) is unsatisfiable: the negated universe matches no bag.
     (Note x ‖ ¬x is NOT a contradiction here — ‖ splits the bag, and
     ¬x absorbs the empty remainder.) *)
  let univ = Rse.star (Rse.arc_v Value_set.Pred_any Value_set.Obj_any) in
  let s = Schema.make_exn [ (plbl "C", Rse.not_ univ) ] in
  match Analysis.shape_satisfiable s (plbl "C") with
  | Analysis.Empty -> ()
  | v -> Alcotest.failf "expected empty, got %a" Analysis.pp_emptiness v

let test_recursive_satisfiable () =
  (* R ::= (next → @R)? — coinductively satisfiable via a cycle *)
  let s =
    Schema.make_exn
      [ (plbl "R", Rse.opt (Rse.arc_ref (Value_set.Pred (ex "next")) (plbl "R"))) ]
  in
  match Analysis.shape_satisfiable s (plbl "R") with
  | Analysis.Satisfiable w ->
      let sess = Validate.session s w.Analysis.graph in
      check_bool "recursive witness validates" true
        (Validate.check_bool sess w.Analysis.focus (plbl "R"))
  | v -> Alcotest.failf "expected satisfiable, got %a" Analysis.pp_emptiness v

let test_recursive_dead () =
  (* D ::= next → @D ‖ x → ¬⊤: the conjunct is dead, so the whole
     recursive rule is *)
  let s =
    Schema.make_exn
      [
        ( plbl "D",
          Rse.and_
            (Rse.arc_ref (Value_set.Pred (ex "next")) (plbl "D"))
            (Rse.arc_v (Value_set.Pred (ex "x")) unsat_obj) );
      ]
  in
  match Analysis.shape_satisfiable s (plbl "D") with
  | Analysis.Empty -> ()
  | v -> Alcotest.failf "expected empty, got %a" Analysis.pp_emptiness v

(* ν-consistency: when the analysis declares a shape empty, no
   generated graph may produce a conforming node. *)
let prop_empty_means_no_match =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"Empty shapes never validate"
       (QCheck.make QCheck.Gen.(int_bound 100_000))
       (fun seed ->
         let case = Workload.Rand_gen.case seed in
         let schema = case.Workload.Rand_gen.schema in
         let labels = Schema.labels schema in
         List.for_all
           (fun l ->
             match Analysis.shape_satisfiable schema l with
             | Analysis.Empty ->
                 let sess = Validate.session schema case.Workload.Rand_gen.graph in
                 List.for_all
                   (fun (n, _) -> not (Validate.check_bool sess n l))
                   case.Workload.Rand_gen.associations
             | Analysis.Satisfiable w ->
                 let sess = Validate.session schema w.Analysis.graph in
                 Validate.check_bool sess w.Analysis.focus l
             | Analysis.Unknown _ -> true)
           labels))

(* ------------------------------------------------------------------ *)
(* Containment                                                         *)
(* ------------------------------------------------------------------ *)

let value_arc vs = Rse.arc_v (Value_set.Pred (ex "a")) (Value_set.Obj_in vs)

let test_containment_basic () =
  let small = Schema.make_exn [ (plbl "S", value_arc [ node "n0" ]) ] in
  let big =
    Schema.make_exn [ (plbl "S", value_arc [ node "n0"; node "n1" ]) ]
  in
  (match Analysis.contains small (plbl "S") big (plbl "S") with
  | Analysis.Contained -> ()
  | v -> Alcotest.failf "expected contained, got %a" Analysis.pp_containment v);
  match Analysis.contains big (plbl "S") small (plbl "S") with
  | Analysis.Refuted w ->
      let s1 = Validate.session big w.Analysis.graph
      and s2 = Validate.session small w.Analysis.graph in
      check_bool "ce satisfies S1" true
        (Validate.check_bool s1 w.Analysis.focus (plbl "S"));
      check_bool "ce fails S2" false
        (Validate.check_bool s2 w.Analysis.focus (plbl "S"))
  | v -> Alcotest.failf "expected refuted, got %a" Analysis.pp_containment v

let test_containment_star () =
  (* a→{1} ⊑ (a→{1})⋆ but not conversely (ε, and two-arc bags) *)
  let one = Schema.make_exn [ (plbl "S", arc_num "a" [ 1 ]) ] in
  let star = Schema.make_exn [ (plbl "S", Rse.star (arc_num "a" [ 1 ])) ] in
  (match Analysis.contains one (plbl "S") star (plbl "S") with
  | Analysis.Contained -> ()
  | v -> Alcotest.failf "expected contained, got %a" Analysis.pp_containment v);
  match Analysis.contains star (plbl "S") one (plbl "S") with
  | Analysis.Refuted _ -> ()
  | v -> Alcotest.failf "expected refuted, got %a" Analysis.pp_containment v

let prop_containment_reflexive =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"containment is reflexive"
       (QCheck.make QCheck.Gen.(int_bound 100_000))
       (fun seed ->
         let case = Workload.Rand_gen.case seed in
         let schema = case.Workload.Rand_gen.schema in
         List.for_all
           (fun l ->
             match Analysis.contains schema l schema l with
             | Analysis.Contained -> true
             | Analysis.Inconclusive _ -> true (* never a false refutation *)
             | Analysis.Refuted _ -> false)
           (Schema.labels schema)))

let test_compat_pair () =
  (* v2 widens one value set and leaves the other rules alone *)
  let v1 =
    Schema.make_exn
      [
        (plbl "Person", value_arc [ node "n0" ]);
        (plbl "Other", arc_num "b" [ 1 ]);
      ]
  in
  let v2 =
    Schema.make_exn
      [
        (plbl "Person", value_arc [ node "n0"; node "n1" ]);
        (plbl "Other", arc_num "b" [ 1 ]);
      ]
  in
  let report = Analysis.check_compat v1 v2 in
  List.iter
    (fun (it : Analysis.compat_item) ->
      match it.Analysis.verdict with
      | Analysis.Contained -> ()
      | v ->
          Alcotest.failf "compat %s: expected contained, got %a"
            (Label.to_string it.Analysis.label)
            Analysis.pp_containment v)
    report.Analysis.items;
  let backward = Analysis.check_compat v2 v1 in
  check_bool "widening backward is refuted" true
    (List.exists
       (fun (it : Analysis.compat_item) ->
         match it.Analysis.verdict with
         | Analysis.Refuted _ -> true
         | _ -> false)
       backward.Analysis.items)

let test_containment_coinductive () =
  (* Widening a shape that recursively references itself: proving
     Person₁ ⊑ Person₂ needs the coinductive assumption that the
     knows-objects are themselves contained (otherwise the product
     search mints an unrealizable "satisfies left, fails right"
     letter and the verdict degrades to inconclusive). *)
  let str = Value_set.Obj_datatype Rdf.Xsd.String in
  let knows = Rse.star (Rse.arc_ref (Value_set.Pred (ex "knows")) (plbl "P")) in
  let v1 =
    Schema.make_exn
      [ (plbl "P", Rse.and_ (Rse.arc_v (Value_set.Pred (ex "name")) str) knows) ]
  and v2 =
    Schema.make_exn
      [
        ( plbl "P",
          Rse.and_
            (Rse.and_ (Rse.arc_v (Value_set.Pred (ex "name")) str) knows)
            (Rse.opt (Rse.arc_v (Value_set.Pred (ex "home")) Value_set.Obj_any))
        );
      ]
  in
  (match Analysis.contains v1 (plbl "P") v2 (plbl "P") with
  | Analysis.Contained -> ()
  | v -> Alcotest.failf "expected contained, got %a" Analysis.pp_containment v);
  (* ... and the discharge must not leak into the refuted direction *)
  match Analysis.contains v2 (plbl "P") v1 (plbl "P") with
  | Analysis.Refuted w ->
      let s1 = Validate.session v2 w.Analysis.graph
      and s2 = Validate.session v1 w.Analysis.graph in
      check_bool "ce satisfies v2" true
        (Validate.check_bool s1 w.Analysis.focus (plbl "P"));
      check_bool "ce fails v1" false
        (Validate.check_bool s2 w.Analysis.focus (plbl "P"))
  | v -> Alcotest.failf "expected refuted, got %a" Analysis.pp_containment v

(* ------------------------------------------------------------------ *)
(* shrink_with: the generalised predicate hook (ISSUE 10 satellite)    *)
(* ------------------------------------------------------------------ *)

let test_shrink_with_keeps_witness_property () =
  (* A containment witness (satisfies S1, fails S2) padded with junk
     triples: shrinking under the witness predicate must drop the junk
     while the property survives — not just "some divergence". *)
  let str = Value_set.Obj_datatype Rdf.Xsd.String in
  let s1 = Schema.make_exn [ (plbl "P", Rse.arc_v (Value_set.Pred (ex "name")) str) ] in
  let s2 =
    Schema.make_exn
      [
        ( plbl "P",
          Rse.and_
            (Rse.arc_v (Value_set.Pred (ex "name")) str)
            (Rse.arc_v (Value_set.Pred (ex "email")) str) );
      ]
  in
  let witness = t3 "w" "name" (Rdf.Term.str "ada") in
  let graph =
    graph_of
      [
        witness;
        t3 "junk1" "name" (Rdf.Term.str "junk");
        t3 "junk1" "email" (Rdf.Term.str "junk");
        t3 "junk2" "other" (num 1);
      ]
  in
  let assocs = [ (node "w", plbl "P") ] in
  let keep s g a =
    List.for_all
      (fun (n, l) ->
        let sess1 = Validate.session s g and sess2 = Validate.session s2 g in
        Validate.check_bool sess1 n l && not (Validate.check_bool sess2 n l))
      a
    && a <> []
  in
  check_bool "keep holds on the input" true (keep s1 graph assocs);
  let s', g', a' = Oracle.shrink_with ~keep s1 graph assocs in
  check_bool "keep holds on the output" true (keep s' g' a');
  check_int "junk triples dropped" 1 (List.length (Rdf.Graph.to_list g'));
  check_int "association kept" 1 (List.length a')

(* ------------------------------------------------------------------ *)
(* Hygiene                                                             *)
(* ------------------------------------------------------------------ *)

let test_dead_rules () =
  let s =
    Result.get_ok
      (Schema.make_shapes
         [
           ( plbl "Root",
             {
               Schema.focus = Some (Value_set.Obj_stem "http://example.org/");
               expr = Rse.arc_ref (Value_set.Pred (ex "a")) (plbl "Used");
             } );
           (plbl "Used", { Schema.focus = None; expr = Rse.epsilon });
           ( plbl "Dead",
             {
               Schema.focus = None;
               expr = Rse.arc_v (Value_set.Pred (ex "x")) unsat_obj;
             } );
         ])
  in
  let h = Analysis.hygiene s in
  check_bool "Dead is unreachable" true
    (List.exists (Label.equal (plbl "Dead")) h.Analysis.unreachable);
  check_bool "Used is reachable" false
    (List.exists (Label.equal (plbl "Used")) h.Analysis.unreachable);
  check_bool "Dead is unsatisfiable" true
    (List.exists (Label.equal (plbl "Dead")) h.Analysis.unsatisfiable);
  check_bool "Root is satisfiable" false
    (List.exists (Label.equal (plbl "Root")) h.Analysis.unsatisfiable)

(* ------------------------------------------------------------------ *)
(* Optimizer                                                           *)
(* ------------------------------------------------------------------ *)

let engines = [ Validate.Derivatives; Backtracking; Auto; Compiled ]

let verdicts ?(interned = false) ~engine schema (case : Workload.Rand_gen.case)
    =
  let sess =
    Validate.session ~engine ~interned schema case.Workload.Rand_gen.graph
  in
  List.map
    (fun (n, l) -> Validate.check_bool sess n l)
    case.Workload.Rand_gen.associations

let test_optimize_merges_disjuncts () =
  let o = Rse.or_ (value_arc [ node "n0" ]) (value_arc [ node "n1" ]) in
  let s = Schema.make_exn [ (plbl "O", o) ] in
  let s', changed = Analysis.optimize_stats s in
  check_bool "rewrote the shape" true (changed > 0);
  match Schema.find_exn s' (plbl "O") with
  | Rse.Arc { obj = Rse.Values (Value_set.Obj_in [ _; _ ]); _ } -> ()
  | e -> Alcotest.failf "expected one merged arc, got %a" Rse.pp e

let test_optimize_prunes_empty_disjunct () =
  let dead = Rse.arc_v (Value_set.Pred (ex "x")) unsat_obj in
  let live = arc_num "a" [ 1 ] in
  let s = Schema.make_exn [ (plbl "O", Rse.or_ dead live) ] in
  let s', _ = Analysis.optimize_stats s in
  Alcotest.check rse "dead disjunct dropped" live
    (Schema.find_exn s' (plbl "O"))

let test_optimize_star_epsilon () =
  let s = Schema.make_exn [ (plbl "O", Rse.star (Rse.opt (arc_num "a" [ 1 ]))) ] in
  let s', _ = Analysis.optimize_stats s in
  Alcotest.check rse "(ε|e)⋆ = e⋆" (Rse.star (arc_num "a" [ 1 ]))
    (Schema.find_exn s' (plbl "O"))

let prop_optimize_preserves_verdicts =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40
       ~name:"optimize preserves verdicts on every engine"
       (QCheck.make QCheck.Gen.(int_bound 100_000))
       (fun seed ->
         let case = Workload.Rand_gen.case seed in
         let schema = case.Workload.Rand_gen.schema in
         let schema' = Analysis.optimize schema in
         List.for_all
           (fun engine ->
             verdicts ~engine schema case = verdicts ~engine schema' case)
           engines
         && verdicts ~interned:true ~engine:Validate.Derivatives schema case
            = verdicts ~interned:true ~engine:Validate.Derivatives schema' case))

let prop_optimize_idempotent =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"optimize is idempotent"
       (QCheck.make QCheck.Gen.(int_bound 100_000))
       (fun seed ->
         let case = Workload.Rand_gen.case seed in
         let s1 = Analysis.optimize case.Workload.Rand_gen.schema in
         let s2 = Analysis.optimize s1 in
         List.for_all2
           (fun (l1, e1) (l2, e2) -> Label.equal l1 l2 && Rse.equal e1 e2)
           (Schema.rules s1) (Schema.rules s2)))

(* Satellite 2: the optimizer emits schemas the printer has never
   seen; printing then reparsing must land back on the same rules. *)
let prop_optimize_roundtrips_through_shexc =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:120
       ~name:"parse (print (optimize s)) ≡ optimize s"
       (QCheck.make QCheck.Gen.(int_bound 100_000))
       (fun seed ->
         let rng = Workload.Prng.create seed in
         let schema = Workload.Rand_gen.schema rng in
         let schema' = Analysis.optimize schema in
         let text = Shexc.Shexc_printer.schema_to_string schema' in
         match Shexc.Shexc_parser.parse_schema text with
         | Error e -> QCheck.Test.fail_reportf "reparse failed: %s@.%s" e text
         | Ok back ->
             List.for_all2
               (fun (l1, (a : Schema.shape)) (l2, (b : Schema.shape)) ->
                 Label.equal l1 l2
                 && Rse.equal a.Schema.expr b.Schema.expr
                 && Option.equal Value_set.obj_equal a.Schema.focus
                      b.Schema.focus)
               (Schema.shapes schema') (Schema.shapes back)))

let tests =
  [
    prop_equal_iff_compare_zero;
    prop_compare_antisymmetric;
    prop_arc_equal_iff_compare_zero;
    Alcotest.test_case "satisfiable shape yields verified witness" `Quick
      test_satisfiable_witness;
    Alcotest.test_case "unmatchable arc is empty" `Quick test_empty_shape;
    Alcotest.test_case "negated universe is empty" `Quick test_empty_by_contradiction;
    Alcotest.test_case "recursive shape satisfiable via cycle" `Quick
      test_recursive_satisfiable;
    Alcotest.test_case "recursion over a dead conjunct is empty" `Quick
      test_recursive_dead;
    prop_empty_means_no_match;
    Alcotest.test_case "value-set widening is containment" `Quick
      test_containment_basic;
    Alcotest.test_case "single arc ⊑ its star" `Quick test_containment_star;
    prop_containment_reflexive;
    Alcotest.test_case "check_compat on a v1/v2 pair" `Quick test_compat_pair;
    Alcotest.test_case "containment through recursive refs (coinductive)"
      `Quick test_containment_coinductive;
    Alcotest.test_case "shrink_with preserves the witness property" `Quick
      test_shrink_with_keeps_witness_property;
    Alcotest.test_case "dead and unreachable rules detected" `Quick
      test_dead_rules;
    Alcotest.test_case "optimizer merges value-set disjuncts" `Quick
      test_optimize_merges_disjuncts;
    Alcotest.test_case "optimizer prunes provably-empty disjuncts" `Quick
      test_optimize_prunes_empty_disjunct;
    Alcotest.test_case "optimizer rewrites (ε|e)⋆" `Quick
      test_optimize_star_epsilon;
    prop_optimize_preserves_verdicts;
    prop_optimize_idempotent;
    prop_optimize_roundtrips_through_shexc;
  ]

let suites = [ ("analysis", tests) ]

(* Additional Turtle edge-case tests: tricky lexical forms, nesting,
   and serializer behaviour. *)

open Util

let parse src =
  match Turtle.Parse.parse_graph src with
  | Ok g -> g
  | Error msg -> Alcotest.fail msg

let first_object g =
  match Rdf.Graph.to_list g with
  | tr :: _ -> Rdf.Triple.obj tr
  | [] -> Alcotest.fail "empty graph"

let literal_of g =
  match first_object g with
  | Rdf.Term.Literal l -> l
  | _ -> Alcotest.fail "expected a literal object"

let test_number_forms () =
  let check_dt src dt lexical =
    let l = literal_of (parse ("@prefix : <http://e.org/> . :x :p " ^ src ^ " .")) in
    check_bool (src ^ " datatype") true
      (Rdf.Iri.equal (Rdf.Literal.datatype l) (Rdf.Xsd.iri dt));
    check_string (src ^ " lexical") lexical (Rdf.Literal.lexical l)
  in
  check_dt "0" Rdf.Xsd.Integer "0";
  check_dt "+7" Rdf.Xsd.Integer "+7";
  check_dt "-42" Rdf.Xsd.Integer "-42";
  check_dt ".5" Rdf.Xsd.Decimal ".5";
  check_dt "-0.5" Rdf.Xsd.Decimal "-0.5";
  check_dt "1e0" Rdf.Xsd.Double "1e0";
  check_dt "-2.5E-3" Rdf.Xsd.Double "-2.5E-3"

let test_pname_with_dots () =
  let g =
    parse "@prefix ex: <http://e.org/> . ex:a.b ex:p.q ex:v ."
  in
  match Rdf.Graph.to_list g with
  | [ tr ] ->
      check_string "dotted local" "http://e.org/a.b"
        (Rdf.Term.to_string (Rdf.Triple.subject tr)
        |> fun s -> String.sub s 1 (String.length s - 2))
  | _ -> Alcotest.fail "expected one triple"

let test_statement_final_dot_vs_local_dot () =
  (* The trailing dot after ex:v must terminate the statement, not be
     part of the local name. *)
  let g = parse "@prefix ex: <http://e.org/> . ex:a ex:p ex:v ." in
  check_int "one triple" 1 (Rdf.Graph.cardinal g)

let test_nested_bnode_property_lists () =
  let g =
    parse
      "@prefix : <http://e.org/> .\n\
       :x :p [ :q [ :r \"deep\" ] ; :s 1 ] ."
  in
  (* x→bnode1, bnode1→{q bnode2, s 1}, bnode2→{r "deep"} = 4 triples *)
  check_int "four triples" 4 (Rdf.Graph.cardinal g)

let test_nested_collections () =
  let g = parse "@prefix : <http://e.org/> . :x :l ((1) (2 3)) ." in
  (* Outer list: 2 cells (4 triples) + arc = 5; inner lists: 1 cell + 2
     cells = 3 cells → 6 triples. Total 11. *)
  check_int "eleven triples" 11 (Rdf.Graph.cardinal g)

let test_collection_of_bnodes () =
  let g =
    parse "@prefix : <http://e.org/> . :x :l ( [ :a 1 ] [ :a 2 ] ) ."
  in
  (* 2 cells × 2 + arc... the arc is part of cells: cells give 4, the
     :l arc 1, the two bnode property lists 2 → 7. *)
  check_int "seven triples" 7 (Rdf.Graph.cardinal g)

let test_escaped_local_names () =
  let g =
    parse "@prefix ex: <http://e.org/> . ex:with\\~tilde ex:p ex:v ."
  in
  check_int "parsed" 1 (Rdf.Graph.cardinal g)

let test_single_quoted_strings () =
  let l =
    literal_of (parse "@prefix : <http://e.org/> . :x :p 'single' .")
  in
  check_string "single quotes" "single" (Rdf.Literal.lexical l)

let test_long_single_quoted () =
  let l =
    literal_of
      (parse "@prefix : <http://e.org/> . :x :p '''line1\nline2''' .")
  in
  check_string "long single" "line1\nline2" (Rdf.Literal.lexical l)

let test_crlf_handling () =
  let g =
    parse "@prefix : <http://e.org/> .\r\n:x :p 1 .\r\n:y :p 2 .\r\n"
  in
  check_int "two triples" 2 (Rdf.Graph.cardinal g)

let test_empty_document () =
  check_int "empty" 0 (Rdf.Graph.cardinal (parse ""));
  check_int "comments only" 0 (Rdf.Graph.cardinal (parse "# nothing\n"))

let test_base_changes_midstream () =
  let g =
    parse
      "@base <http://one.org/> . <a> <p> <b> .\n\
       @base <http://two.org/> . <a> <p> <b> ."
  in
  check_int "distinct after rebase" 2 (Rdf.Graph.cardinal g)

let test_writer_escapes_roundtrip () =
  let tricky = "quote\" backslash\\ newline\n tab\t" in
  let g =
    Rdf.Graph.of_list
      [ Rdf.Triple.make (node "x") (ex "p") (Rdf.Term.str tricky) ]
  in
  let g' = parse (Turtle.Write.to_string g) in
  Alcotest.check graph "roundtrip" g g'

let test_writer_groups_subjects () =
  let g =
    graph_of
      [ t3 "s" "p1" (num 1); t3 "s" "p1" (num 2); t3 "s" "p2" (num 3) ]
  in
  let text = Turtle.Write.to_string g in
  (* One subject → the subject IRI appears exactly once. *)
  let occurrences needle hay =
    let n = String.length hay and m = String.length needle in
    let rec go i acc =
      if i + m > n then acc
      else if String.sub hay i m = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  (* The writer shrinks to prefixed names (the empty prefix is bound
     to http://example.org/ by default). *)
  check_int "subject written once" 1 (occurrences ":s " text);
  check_bool "object list with comma" true (occurrences ", " text >= 1);
  check_bool "predicate list with semicolon" true (occurrences ";" text >= 1)

let suites =
  [ ( "turtle.extra",
      [ Alcotest.test_case "number forms" `Quick test_number_forms;
        Alcotest.test_case "dotted pnames" `Quick test_pname_with_dots;
        Alcotest.test_case "statement-final dot" `Quick
          test_statement_final_dot_vs_local_dot;
        Alcotest.test_case "nested property lists" `Quick
          test_nested_bnode_property_lists;
        Alcotest.test_case "nested collections" `Quick
          test_nested_collections;
        Alcotest.test_case "collections of bnodes" `Quick
          test_collection_of_bnodes;
        Alcotest.test_case "escaped local names" `Quick
          test_escaped_local_names;
        Alcotest.test_case "single-quoted strings" `Quick
          test_single_quoted_strings;
        Alcotest.test_case "long single-quoted" `Quick
          test_long_single_quoted;
        Alcotest.test_case "CRLF" `Quick test_crlf_handling;
        Alcotest.test_case "empty document" `Quick test_empty_document;
        Alcotest.test_case "base changes midstream" `Quick
          test_base_changes_midstream;
        Alcotest.test_case "writer escapes" `Quick
          test_writer_escapes_roundtrip;
        Alcotest.test_case "writer grouping" `Quick
          test_writer_groups_subjects ] ) ]

(* Tests for the ShExC parser and printer. *)

open Util
open Shex

let parse src =
  match Shexc.Shexc_parser.parse_schema src with
  | Ok s -> s
  | Error msg -> Alcotest.fail msg

let parse_err src =
  match Shexc.Shexc_parser.parse_schema src with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg -> msg

let prelude =
  "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
   PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
   PREFIX ex: <http://example.org/>\n"

(* The paper's Example 1 schema, verbatim modulo prefixes. *)
let example1_src =
  prelude
  ^ "<Person> {\n\
    \  foaf:age xsd:integer\n\
    \  , foaf:name xsd:string+\n\
    \  , foaf:knows @<Person>*\n\
     }\n"

let person = Label.of_string "Person"
let foaf l = Rdf.Iri.of_string_exn ("http://xmlns.com/foaf/0.1/" ^ l)

let test_example1 () =
  let s = parse example1_src in
  check_int "one shape" 1 (List.length (Schema.labels s));
  let e = Schema.find_exn s person in
  (* arc leaves: age, name (+ expands to two leaves), knows *)
  check_int "four arc leaves" 4 (List.length (Rse.arcs e));
  check_bool "recursive" true (Schema.is_recursive s person)

let test_example1_validates_example2 () =
  (* End to end: ShExC schema + Turtle data = Example 2's verdicts. *)
  let schema = parse example1_src in
  let data =
    "@prefix foaf: <http://xmlns.com/foaf/0.1/> .\n\
     @prefix : <http://example.org/> .\n\
     :john foaf:age 23; foaf:name \"John\"; foaf:knows :bob .\n\
     :bob foaf:age 34; foaf:name \"Bob\", \"Robert\" .\n\
     :mary foaf:age 50, 65 .\n"
  in
  let graph =
    match Turtle.Parse.parse_graph data with
    | Ok g -> g
    | Error m -> Alcotest.fail m
  in
  let session = Validate.session schema graph in
  check_bool "john" true (Validate.check_bool session (node "john") person);
  check_bool "bob" true (Validate.check_bool session (node "bob") person);
  check_bool "mary" false (Validate.check_bool session (node "mary") person)

let test_cardinalities () =
  let s =
    parse
      (prelude
      ^ "<T> { ex:a . , ex:b .* , ex:c .+ , ex:d .? , ex:e .{2} , ex:f \
         .{1,3} , ex:g .{2,} }")
  in
  let e = Schema.find_exn s (Label.of_string "T") in
  (* leaves: a:1 + b*:1 + c+:2 + d?:1 + e{2}:2 + f{1,3}:3 + g{2,}:3 *)
  check_int "expanded arcs" 13 (List.length (Rse.arcs e))

let test_value_set () =
  let s = parse (prelude ^ "<T> { ex:p [ 1 2 \"three\" ex:four ] }") in
  let e = Schema.find_exn s (Label.of_string "T") in
  match Rse.arcs e with
  | [ { obj = Rse.Values (Value_set.Obj_in terms); _ } ] ->
      check_int "four values" 4 (List.length terms)
  | _ -> Alcotest.fail "expected a value set arc"

let test_value_set_with_stem () =
  let s = parse (prelude ^ "<T> { ex:p [ ex:a <http://example.org/sub/>~ ] }") in
  let e = Schema.find_exn s (Label.of_string "T") in
  match Rse.arcs e with
  | [ { obj = Rse.Values (Value_set.Obj_or parts); _ } ] ->
      check_int "two parts" 2 (List.length parts);
      check_bool "stem matches" true
        (Value_set.obj_mem (Value_set.Obj_or parts)
           (iri "http://example.org/sub/thing"))
  | _ -> Alcotest.fail "expected an or value class"

let test_node_kinds () =
  let s =
    parse (prelude ^ "<T> { ex:i IRI , ex:b BNODE , ex:l LITERAL , ex:n NONLITERAL }")
  in
  let e = Schema.find_exn s (Label.of_string "T") in
  check_int "four arcs" 4 (List.length (Rse.arcs e))

let test_wildcard_and_datatype_iri () =
  let s =
    parse (prelude ^ "<T> { ex:any . , ex:custom <http://example.org/dt> }")
  in
  let e = Schema.find_exn s (Label.of_string "T") in
  match Rse.arcs e with
  | [ { obj = Rse.Values Value_set.Obj_any; _ };
      { obj = Rse.Values (Value_set.Obj_datatype_iri _); _ } ] ->
      ()
  | _ -> Alcotest.fail "expected wildcard then datatype-iri arcs"

let test_alternatives_and_groups () =
  let s =
    parse (prelude ^ "<T> { ( ex:a . , ex:b . ) | ex:c .{1} }")
  in
  let e = Schema.find_exn s (Label.of_string "T") in
  (* ACI normalisation orders disjuncts canonically, so accept either
     orientation of the Or. *)
  match e with
  | Rse.Or (Rse.And _, Rse.Arc _) | Rse.Or (Rse.Arc _, Rse.And _) -> ()
  | _ -> Alcotest.fail (Format.asprintf "unexpected structure %a" Rse.pp e)

let test_group_cardinality () =
  (* (a , b)* is the Example 10 balance checker. *)
  let s = parse (prelude ^ "<T> { ( ex:a [ 1 2 ] , ex:b [ 1 2 ] )* }") in
  let e = Schema.find_exn s (Label.of_string "T") in
  match e with
  | Rse.Star (Rse.And _) -> ()
  | _ -> Alcotest.fail "expected star of group"

let test_inverse_and_negation () =
  let s = parse (prelude ^ "<T> { ^ex:manages . , ! ex:banned . }") in
  let e = Schema.find_exn s (Label.of_string "T") in
  check_bool "has inverse" true (Rse.has_inverse e);
  check_bool "has not" true (Rse.has_not e)

let test_a_keyword () =
  let s = parse (prelude ^ "<T> { a [ ex:Person ] }") in
  let e = Schema.find_exn s (Label.of_string "T") in
  match Rse.arcs e with
  | [ { pred = Value_set.Pred p; _ } ] ->
      check_bool "rdf:type" true
        (Rdf.Iri.equal p Rdf.Namespace.Vocab.rdf_type)
  | _ -> Alcotest.fail "expected one arc"

let test_empty_shape () =
  let s = parse "<T> {}" in
  Alcotest.check rse "epsilon" Rse.epsilon
    (Schema.find_exn s (Label.of_string "T"))

let test_pname_labels () =
  let s =
    parse (prelude ^ "ex:Person { foaf:name xsd:string }")
  in
  check_bool "label expanded" true
    (Schema.mem s (Label.of_string "http://example.org/Person"))

let test_ref_by_pname () =
  let s =
    parse
      (prelude
      ^ "ex:A { ex:next @ex:B ? }\nex:B { ex:val xsd:integer }")
  in
  check_bool "both shapes" true
    (Schema.mem s (Label.of_string "http://example.org/A")
    && Schema.mem s (Label.of_string "http://example.org/B"))

let test_semicolon_separator () =
  let s = parse (prelude ^ "<T> { ex:a . ; ex:b . ; }") in
  check_int "two arcs" 2
    (List.length (Rse.arcs (Schema.find_exn s (Label.of_string "T"))))

let test_langtag_values () =
  let s = parse (prelude ^ "<T> { ex:label [ \"hola\"@es \"hi\"@en ] }") in
  let e = Schema.find_exn s (Label.of_string "T") in
  match Rse.arcs e with
  | [ { obj = Rse.Values vo; _ } ] ->
      check_bool "es matches" true
        (Value_set.obj_mem vo
           (Rdf.Term.Literal (Rdf.Literal.make ~lang:"es" "hola")));
      check_bool "fr rejected" false
        (Value_set.obj_mem vo
           (Rdf.Term.Literal (Rdf.Literal.make ~lang:"fr" "hola")))
  | _ -> Alcotest.fail "expected value set"

let test_errors () =
  List.iter
    (fun (name, src) ->
      check_bool name true (String.length (parse_err src) > 0))
    [ ("unbound prefix", "<T> { nope:p . }");
      ("missing brace", prelude ^ "<T> { ex:p . ");
      ("bad cardinality", prelude ^ "<T> { ex:p .{3,1} }");
      ("dangling ref", prelude ^ "<T> { ex:p @<Ghost> }");
      ("duplicate label", prelude ^ "<T> {} <T> {}");
      ("negated ref", prelude ^ "<T> { ! ex:p @<T> }");
      ("empty value set", prelude ^ "<T> { ex:p [ ] }") ]

(* Printer round-trips *)

let roundtrip src =
  let s = parse src in
  let printed = Shexc.Shexc_printer.schema_to_string s in
  let s' = parse printed in
  (s, printed, s')

let schemas_equal s1 s2 =
  let rules1 = Schema.rules s1 and rules2 = Schema.rules s2 in
  List.length rules1 = List.length rules2
  && List.for_all2
       (fun (l1, e1) (l2, e2) -> Label.equal l1 l2 && Rse.equal e1 e2)
       rules1 rules2

let test_print_roundtrip_example1 () =
  let s, printed, s' = roundtrip example1_src in
  check_bool ("roundtrip:\n" ^ printed) true (schemas_equal s s')

let test_print_roundtrip_rich () =
  let src =
    prelude
    ^ "<T> {\n\
      \  ex:a xsd:integer , ex:b [ 1 2 ] * , ( ex:c IRI | ex:d LITERAL ) ,\n\
      \  ^ex:e . ? , ! ex:f [ \"x\" ]\n\
       }\n"
  in
  let s, printed, s' = roundtrip src in
  check_bool ("roundtrip:\n" ^ printed) true (schemas_equal s s')

let test_print_roundtrip_empty () =
  let s, printed, s' = roundtrip "<T> {}" in
  check_bool ("roundtrip:\n" ^ printed) true (schemas_equal s s')

let test_print_roundtrip_duplicate_conjuncts () =
  (* Oracle-found printer bug: merged-cardinality printing summed the
     intervals of duplicate conjuncts, so (p→int)⋆ ‖ (p→int)⋆ printed
     as a single `p xsd:integer *` and parsed back to a smaller
     conjunct bag.  Merged printing is now guarded by a losslessness
     check. *)
  let a = Rse.arc_v (Value_set.Pred (ex "p")) Value_set.xsd_integer in
  let e = Rse.and_ (Rse.star a) (Rse.star a) in
  let s = Schema.make_exn [ (Label.of_string "T", e) ] in
  let printed = Shexc.Shexc_printer.schema_to_string s in
  let s' = parse printed in
  check_bool ("roundtrip:\n" ^ printed) true (schemas_equal s s')

(* Full-schema round-trip over the oracle's Surface-mode generator,
   including focus constraints (which [schemas_equal] above ignores).
   Smart constructors keep both sides in the same normal form, so
   plain structural equality is the right check. *)
let shapes_equal s1 s2 =
  let sh1 = Schema.shapes s1 and sh2 = Schema.shapes s2 in
  List.length sh1 = List.length sh2
  && List.for_all2
       (fun (l1, (a : Schema.shape)) (l2, (b : Schema.shape)) ->
         Label.equal l1 l2
         && Option.equal Value_set.obj_equal a.focus b.focus
         && Rse.equal a.expr b.expr)
       sh1 sh2

let prop_print_parse_roundtrip =
  QCheck.Test.make ~count:300
    ~name:"parse (print s) ≡ s over generated schemas"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let s = Workload.Rand_gen.schema (Workload.Prng.create seed) in
      let printed = Shexc.Shexc_printer.schema_to_string s in
      match Shexc.Shexc_parser.parse_schema printed with
      | Error msg -> QCheck.Test.fail_reportf "parse back: %s\n%s" msg printed
      | Ok s' ->
          shapes_equal s s'
          || QCheck.Test.fail_reportf "not structurally equal:\n%s" printed)

let suites =
  [ ( "shexc.parse",
      [ Alcotest.test_case "Example 1 schema" `Quick test_example1;
        Alcotest.test_case "Example 1 validates Example 2" `Quick
          test_example1_validates_example2;
        Alcotest.test_case "cardinalities" `Quick test_cardinalities;
        Alcotest.test_case "value sets" `Quick test_value_set;
        Alcotest.test_case "value set stems" `Quick test_value_set_with_stem;
        Alcotest.test_case "node kinds" `Quick test_node_kinds;
        Alcotest.test_case "wildcard and custom datatype" `Quick
          test_wildcard_and_datatype_iri;
        Alcotest.test_case "alternatives and groups" `Quick
          test_alternatives_and_groups;
        Alcotest.test_case "group cardinality" `Quick test_group_cardinality;
        Alcotest.test_case "inverse and negation" `Quick
          test_inverse_and_negation;
        Alcotest.test_case "a keyword" `Quick test_a_keyword;
        Alcotest.test_case "empty shape" `Quick test_empty_shape;
        Alcotest.test_case "pname labels" `Quick test_pname_labels;
        Alcotest.test_case "references by pname" `Quick test_ref_by_pname;
        Alcotest.test_case "semicolon separator" `Quick
          test_semicolon_separator;
        Alcotest.test_case "language-tagged values" `Quick
          test_langtag_values;
        Alcotest.test_case "errors" `Quick test_errors ] );
    ( "shexc.print",
      [ Alcotest.test_case "roundtrip Example 1" `Quick
          test_print_roundtrip_example1;
        Alcotest.test_case "roundtrip rich schema" `Quick
          test_print_roundtrip_rich;
        Alcotest.test_case "roundtrip empty shape" `Quick
          test_print_roundtrip_empty;
        Alcotest.test_case "roundtrip duplicate conjuncts" `Quick
          test_print_roundtrip_duplicate_conjuncts;
        QCheck_alcotest.to_alcotest prop_print_parse_roundtrip ] ) ]

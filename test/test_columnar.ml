(* The raw-speed storage layer: term interner, columnar triple store,
   and the streaming N-Triples bulk loader — plus the property that the
   whole interned stack validates byte-identically to the structural
   representation. *)

open Util

let term_t = term

(* ------------------------------------------------------------------ *)
(* Interner                                                            *)
(* ------------------------------------------------------------------ *)

let test_interner_roundtrip () =
  let t = Rdf.Interner.create () in
  let terms = [ node "a"; num 1; node "b"; Rdf.Term.str "x" ] in
  let ids = List.map (Rdf.Interner.intern t) terms in
  List.iter2
    (fun term id ->
      Alcotest.check term_t "resolve ∘ intern = id" term
        (Rdf.Interner.resolve t id))
    terms ids;
  (* Dense: ids are 0..n-1 in first-intern order. *)
  Alcotest.(check (list int)) "dense ids" [ 0; 1; 2; 3 ] ids;
  check_int "cardinal" 4 (Rdf.Interner.cardinal t)

let test_interner_idempotent () =
  let t = Rdf.Interner.create () in
  let id1 = Rdf.Interner.intern t (node "a") in
  ignore (Rdf.Interner.intern t (num 2));
  let id2 = Rdf.Interner.intern t (node "a") in
  check_int "same term, same id" id1 id2;
  check_int "no duplicate entry" 2 (Rdf.Interner.cardinal t);
  Alcotest.(check (option int))
    "find" (Some id1)
    (Rdf.Interner.find t (node "a"));
  Alcotest.(check (option int)) "find misses" None
    (Rdf.Interner.find t (node "zzz"))

let test_interner_bnode_scoping () =
  let t = Rdf.Interner.create () in
  let b1 = Rdf.Interner.intern t (Rdf.Term.Bnode (Rdf.Bnode.of_string "x")) in
  let b2 = Rdf.Interner.intern t (Rdf.Term.Bnode (Rdf.Bnode.of_string "y")) in
  let b1' = Rdf.Interner.intern t (Rdf.Term.Bnode (Rdf.Bnode.of_string "x")) in
  (* An IRI never shares an id with a bnode, whatever the spelling. *)
  let i1 = Rdf.Interner.intern t (node "x") in
  check_int "same label, same id" b1 b1';
  check_bool "distinct labels distinct" true (b1 <> b2);
  check_bool "bnode ≠ iri of same text" true (b1 <> i1)

let test_interner_compact_sorted () =
  let t = Rdf.Interner.create () in
  (* Intern out of term order on purpose. *)
  List.iter
    (fun term -> ignore (Rdf.Interner.intern t term))
    [ num 3; node "c"; Rdf.Term.str "s"; node "a"; num 1 ];
  check_bool "unsorted before compact" false (Rdf.Interner.sorted t);
  let compacted, remap = Rdf.Interner.compact t in
  check_bool "sorted after compact" true (Rdf.Interner.sorted compacted);
  check_int "same cardinal" (Rdf.Interner.cardinal t)
    (Rdf.Interner.cardinal compacted);
  (* The remap sends every old id to the new id of the same term. *)
  Rdf.Interner.iteri
    (fun old_id term ->
      Alcotest.check term_t "remap preserves terms" term
        (Rdf.Interner.resolve compacted remap.(old_id)))
    t

let test_interner_bad_id () =
  let t = Rdf.Interner.create () in
  ignore (Rdf.Interner.intern t (node "a"));
  Alcotest.check_raises "resolve out of range"
    (Invalid_argument "Interner.resolve: unknown id 7") (fun () ->
      ignore (Rdf.Interner.resolve t 7))

(* ------------------------------------------------------------------ *)
(* Columnar store                                                      *)
(* ------------------------------------------------------------------ *)

(* A graph with fan-out, fan-in, shared terms, a self-referencing
   object, literals and bnodes — enough shape to exercise all three
   index directions. *)
let sample_graph =
  graph_of
    [ t3 "n" "a" (num 1);
      t3 "n" "b" (num 1);
      t3 "n" "b" (num 2);
      t3 "m" "a" (node "n");
      t3 "m" "c" (Rdf.Term.str "hello");
      Rdf.Triple.make
        (Rdf.Term.Bnode (Rdf.Bnode.of_string "b0"))
        (ex "a") (node "m");
      t3 "o" "c" (node "n") ]

let test_columnar_roundtrip () =
  let c = Rdf.Columnar.of_graph sample_graph in
  Alcotest.check graph "to_graph ∘ of_graph = id" sample_graph
    (Rdf.Columnar.to_graph c);
  check_int "cardinal" (Rdf.Graph.cardinal sample_graph)
    (Rdf.Columnar.cardinal c);
  check_bool "canonical interner is sorted" true
    (Rdf.Interner.sorted (Rdf.Columnar.interner c))

let triples = Alcotest.(list (testable Rdf.Triple.pp Rdf.Triple.equal))

let test_columnar_slices_agree () =
  let c = Rdf.Columnar.of_graph sample_graph in
  List.iter
    (fun n ->
      Alcotest.check triples "out slice ≡ structural neighbourhood"
        (Rdf.Graph.to_list (Rdf.Graph.neighbourhood n sample_graph))
        (Rdf.Columnar.out_triples c n);
      Alcotest.check triples "in slice ≡ structural incoming"
        (Rdf.Graph.to_list (Rdf.Graph.triples_with_object n sample_graph))
        (Rdf.Columnar.in_triples c n);
      check_int "out_degree"
        (Rdf.Graph.cardinal (Rdf.Graph.neighbourhood n sample_graph))
        (Rdf.Columnar.out_degree c n);
      check_int "in_degree"
        (Rdf.Graph.cardinal
           (Rdf.Graph.triples_with_object n sample_graph))
        (Rdf.Columnar.in_degree c n))
    (Rdf.Graph.nodes sample_graph);
  List.iter
    (fun p ->
      Alcotest.check triples "predicate slice"
        (List.filter
           (fun tr -> Rdf.Iri.equal (Rdf.Triple.predicate tr) p)
           (Rdf.Graph.to_list sample_graph))
        (Rdf.Columnar.triples_with_predicate c p))
    (Rdf.Graph.predicates sample_graph);
  Alcotest.check (Alcotest.list term_t) "nodes agree"
    (Rdf.Graph.nodes sample_graph)
    (Rdf.Columnar.nodes c)

let test_columnar_dedup () =
  let b = Rdf.Columnar.builder () in
  let tr = t3 "n" "a" (num 1) in
  Rdf.Columnar.add_triple b tr;
  Rdf.Columnar.add_triple b tr;
  Rdf.Columnar.add b (node "n") (ex "a") (num 1);
  check_int "adds counted raw" 3 (Rdf.Columnar.triples_added b);
  let c = Rdf.Columnar.freeze b in
  check_int "a graph is a set" 1 (Rdf.Columnar.cardinal c)

let test_columnar_literal_subject () =
  let b = Rdf.Columnar.builder () in
  match Rdf.Columnar.add b (num 1) (ex "a") (num 2) with
  | () -> Alcotest.fail "literal subject accepted"
  | exception Invalid_argument _ -> ()

let test_neigh_of_columnar () =
  let c = Rdf.Columnar.of_graph sample_graph in
  List.iter
    (fun n ->
      List.iter
        (fun include_inverse ->
          check_bool "of_columnar ≡ of_node" true
            (List.equal Shex.Neigh.equal
               (Shex.Neigh.of_node ~include_inverse n sample_graph)
               (Shex.Neigh.of_columnar ~include_inverse n c)))
        [ false; true ])
    (Rdf.Graph.nodes sample_graph)

(* ------------------------------------------------------------------ *)
(* Interned validation ≡ structural validation                         *)
(* ------------------------------------------------------------------ *)

let person_schema =
  match
    Shexc.Shexc_parser.parse_schema
      "PREFIX ex: <http://example.org/>\n\
       <S> { ex:a [1], ex:b [1 2]* }"
  with
  | Ok s -> s
  | Error msg -> failwith msg

let test_interned_session_agrees () =
  let structural = Shex.Validate.session person_schema sample_graph in
  let interned =
    Shex.Validate.session ~interned:true person_schema sample_graph
  in
  check_bool "structural session not interned" false
    (Shex.Validate.interned structural);
  check_bool "interned session interned" true
    (Shex.Validate.interned interned);
  Alcotest.check typing "validate_graph agrees"
    (Shex.Validate.validate_graph structural)
    (Shex.Validate.validate_graph interned)

let test_session_columnar () =
  let c = Rdf.Columnar.of_graph sample_graph in
  let st = Shex.Validate.session_columnar person_schema c in
  Alcotest.check typing "columnar-primary session agrees"
    (Shex.Validate.validate_graph
       (Shex.Validate.session person_schema sample_graph))
    (Shex.Validate.validate_graph st);
  (* The structural view materialises on demand and matches. *)
  Alcotest.check graph "lazy structural view" sample_graph
    (Shex.Validate.graph st)

(* ------------------------------------------------------------------ *)
(* Streaming N-Triples loading                                         *)
(* ------------------------------------------------------------------ *)

let with_temp_nt ~lines f =
  let path = Filename.temp_file "shex_test" ".nt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> lines oc);
      f path)

let test_fold_file_agrees_with_parse () =
  with_temp_nt
    ~lines:(fun oc ->
      output_string oc
        "<http://e.org/n> <http://e.org/a> \"1\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n\
         _:b0 <http://e.org/a> <http://e.org/n> .\n\
         <http://e.org/n> <http://e.org/b> \"hi\"@en .\n")
    (fun path ->
      let streamed =
        match
          Turtle.Ntriples.fold_file path (fun acc tr -> tr :: acc) []
        with
        | Ok trs -> Rdf.Graph.of_list trs
        | Error msg -> failwith msg
      in
      let parsed =
        match Turtle.Parse.parse_file path with
        | Ok d -> d.Turtle.Parse.graph
        | Error msg -> failwith msg
      in
      Alcotest.check graph "fold_file ≡ parse_file" parsed streamed)

let test_load_file_columnar () =
  with_temp_nt
    ~lines:(fun oc ->
      for s = 0 to 9 do
        for o = 0 to 4 do
          Printf.fprintf oc "<http://e.org/s%d> <http://e.org/p> <http://e.org/o%d> .\n" s o
        done
      done)
    (fun path ->
      match Turtle.Ntriples.load_file path with
      | Error msg -> failwith msg
      | Ok c ->
          check_int "all triples loaded" 50 (Rdf.Columnar.cardinal c);
          check_int "terms deduplicated" 16 (Rdf.Columnar.terms_cardinal c);
          let parsed =
            match Turtle.Parse.parse_file path with
            | Ok d -> d.Turtle.Parse.graph
            | Error msg -> failwith msg
          in
          Alcotest.check graph "≡ turtle parse" parsed
            (Rdf.Columnar.to_graph c))

let test_fold_file_bad_input () =
  with_temp_nt
    ~lines:(fun oc ->
      output_string oc "<http://e.org/n> <http://e.org/a> ;bad .\n")
    (fun path ->
      match Turtle.Ntriples.fold_file path (fun n _ -> n + 1) 0 with
      | Ok _ -> Alcotest.fail "expected an error"
      | Error msg ->
          check_bool "position in message" true
            (String.length msg > 0
            && String.sub msg 0 13 = "not N-Triples"))

(* The satellite's memory pin: a multi-megabyte N-Triples load must not
   materialise the source text (or a token list).  The counting fold
   keeps no per-triple state, so major-heap growth should stay well
   under the file size — the old slurping loader held the whole file as
   one string before lexing even started. *)
let test_streaming_load_memory () =
  let triples = 60_000 in
  with_temp_nt
    ~lines:(fun oc ->
      for k = 0 to triples - 1 do
        Printf.fprintf oc
          "<http://example.org/subject%d> <http://example.org/predicate%d> \
           \"value %d\" .\n"
          (k mod 997) (k mod 7) k
      done)
    (fun path ->
      let file_words =
        Int64.to_int (In_channel.with_open_bin path In_channel.length) / 8
      in
      check_bool "file is multi-MB" true (file_words > 400_000);
      Gc.compact ();
      let before = (Gc.stat ()).Gc.top_heap_words in
      let count =
        match Turtle.Ntriples.fold_file path (fun n _ -> n + 1) 0 with
        | Ok n -> n
        | Error msg -> failwith msg
      in
      let delta = (Gc.stat ()).Gc.top_heap_words - before in
      check_int "every triple seen" triples count;
      if delta >= file_words / 2 then
        Alcotest.failf
          "streaming load grew the heap by %d words (file is %d words)"
          delta file_words)

let interner_tests =
  [ Alcotest.test_case "resolve ∘ intern = id, dense ids" `Quick
      test_interner_roundtrip;
    Alcotest.test_case "interning is idempotent" `Quick
      test_interner_idempotent;
    Alcotest.test_case "bnode scoping" `Quick test_interner_bnode_scoping;
    Alcotest.test_case "compact sorts into term order" `Quick
      test_interner_compact_sorted;
    Alcotest.test_case "bad id rejected" `Quick test_interner_bad_id ]

let columnar_tests =
  [ Alcotest.test_case "of_graph/to_graph roundtrip" `Quick
      test_columnar_roundtrip;
    Alcotest.test_case "slices ≡ structural indexes" `Quick
      test_columnar_slices_agree;
    Alcotest.test_case "duplicate adds collapse" `Quick test_columnar_dedup;
    Alcotest.test_case "literal subjects rejected" `Quick
      test_columnar_literal_subject;
    Alcotest.test_case "Neigh.of_columnar ≡ Neigh.of_node" `Quick
      test_neigh_of_columnar;
    Alcotest.test_case "interned session ≡ structural" `Quick
      test_interned_session_agrees;
    Alcotest.test_case "columnar-primary session" `Quick
      test_session_columnar ]

let streaming_tests =
  [ Alcotest.test_case "fold_file ≡ parse_file" `Quick
      test_fold_file_agrees_with_parse;
    Alcotest.test_case "load_file builds the store" `Quick
      test_load_file_columnar;
    Alcotest.test_case "malformed input is an error" `Quick
      test_fold_file_bad_input;
    Alcotest.test_case "multi-MB load never slurps the source" `Quick
      test_streaming_load_memory ]

let suites =
  [ ("rdf.interner", interner_tests);
    ("rdf.columnar", columnar_tests);
    ("turtle.streaming", streaming_tests) ]

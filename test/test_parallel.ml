(* Domain-parallel bulk validation (lib/parallel): sharding, the
   fork/join pool, telemetry merging, and the headline property that
   [Validate.check_all] at domains 1/2/4 is observationally identical
   — verdicts, explanations, typings and merged counter totals. *)

open Util
open Shex

(* Referencing the library keeps its self-registration linked in. *)
let () = Shex_parallel.Bulk.install ()

(* ------------------------------------------------------------------ *)
(* Sharding                                                           *)
(* ------------------------------------------------------------------ *)

let ints k = List.init k Fun.id

let test_shard_concat () =
  List.iter
    (fun (n, len) ->
      let xs = ints len in
      check_bool
        (Printf.sprintf "concat (shard %d [0..%d)) = input" n len)
        true
        (List.concat (Shex_parallel.Bulk.shard n xs) = xs))
    [ (1, 0); (1, 7); (2, 7); (3, 7); (4, 4); (4, 3); (7, 2); (5, 0) ]

let test_shard_balance () =
  List.iter
    (fun (n, len) ->
      let runs = Shex_parallel.Bulk.shard n (ints len) in
      check_bool "at most n runs" true (List.length runs <= max 1 n);
      let lens = List.map List.length runs in
      let lo = List.fold_left min max_int lens
      and hi = List.fold_left max 0 lens in
      check_bool
        (Printf.sprintf "shard %d over %d: run lengths differ <= 1" n len)
        true
        (len = 0 || hi - lo <= 1);
      check_bool "no empty run for non-empty input" true
        (len = 0 || lo >= 1))
    [ (1, 6); (2, 6); (2, 7); (3, 10); (4, 4); (4, 9); (6, 3) ]

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)
(* ------------------------------------------------------------------ *)

let test_pool_order () =
  let results =
    Shex_parallel.Pool.run
      (List.map (fun i () -> i * i) (ints 5))
  in
  check_bool "results in task order" true (results = [ 0; 1; 4; 9; 16 ])

let test_pool_exception () =
  (* A raising task must not orphan its siblings: every domain is
     joined (the flags below are all set) and the exception re-raised. *)
  let flags = Array.init 4 (fun _ -> Atomic.make false) in
  let tasks =
    List.map
      (fun i () ->
        Atomic.set flags.(i) true;
        if i = 2 then failwith "task 2 exploded";
        i)
      (ints 4)
  in
  (match Shex_parallel.Pool.run tasks with
  | _ -> Alcotest.fail "expected Pool.run to re-raise"
  | exception Failure msg -> check_string "exception message" "task 2 exploded" msg);
  Array.iter
    (fun flag -> check_bool "every task ran to its own end" true (Atomic.get flag))
    flags

(* ------------------------------------------------------------------ *)
(* Telemetry: merge, histogram clamp, span safety                     *)
(* ------------------------------------------------------------------ *)

let test_telemetry_merge () =
  let a = Telemetry.create () and b = Telemetry.create () in
  Telemetry.Counter.add (Telemetry.counter a "steps") 3;
  Telemetry.Counter.add (Telemetry.counter b "steps") 4;
  Telemetry.Counter.set (Telemetry.gauge b "states") 7;
  Telemetry.Histogram.observe (Telemetry.histogram a "sizes") 2;
  Telemetry.Histogram.observe (Telemetry.histogram b "sizes") 9;
  Telemetry.Histogram.observe (Telemetry.histogram b "sizes") 1;
  Telemetry.Span.time (Telemetry.span b "solve") (fun () -> ());
  Telemetry.merge ~into:a b;
  let snap = Telemetry.snapshot a in
  check_bool "counter values add" true
    (Telemetry.find_counter snap "steps" = Some 7);
  check_bool "gauge missing in [into] is created" true
    (Telemetry.find_counter snap "states" = Some 7);
  let h = Telemetry.histogram a "sizes" in
  check_int "histogram counts add" 3 (Telemetry.Histogram.count h);
  check_int "histogram sums add" 12 (Telemetry.Histogram.sum h);
  check_int "histogram max is max of maxima" 9 (Telemetry.Histogram.max_value h);
  check_int "span run counts add" 1 (Telemetry.Span.count (Telemetry.span a "solve"));
  (* [src] is read-only: merging must not disturb it. *)
  check_bool "src counter unchanged" true
    (Telemetry.find_counter (Telemetry.snapshot b) "steps" = Some 4)

let test_telemetry_merge_disabled () =
  let src = Telemetry.create () in
  Telemetry.Counter.incr (Telemetry.counter src "steps");
  Telemetry.merge ~into:Telemetry.disabled src;
  check_bool "merge into disabled is a no-op" true
    (Telemetry.is_empty (Telemetry.snapshot Telemetry.disabled));
  let into = Telemetry.create () in
  Telemetry.merge ~into Telemetry.disabled;
  check_bool "merge of disabled is a no-op" true
    (Telemetry.is_empty (Telemetry.snapshot into))

let test_histogram_clamp () =
  let tele = Telemetry.create () in
  let h = Telemetry.histogram tele "durations" in
  Telemetry.Histogram.observe h (-5);
  Telemetry.Histogram.observe h 0;
  check_int "negative observations clamp to 0 (still counted)" 2
    (Telemetry.Histogram.count h);
  check_int "clamped observations add 0 to the sum" 0
    (Telemetry.Histogram.sum h);
  check_int "max stays 0" 0 (Telemetry.Histogram.max_value h)

let trace_schema () =
  Schema.make_exn [ (Label.of_string "S", arc_num "a" [ 1 ]) ]

let test_span_balance () =
  (* A tracing run must emit exactly one span_end per span_begin. *)
  let tele = Telemetry.create () in
  let begins = ref 0 and ends = ref 0 in
  Telemetry.set_sink tele
    (Some
       (fun ev ->
         match ev.Telemetry.phase with
         | Telemetry.Span_begin -> incr begins
         | Telemetry.Span_end -> incr ends
         | Telemetry.Instant -> ()));
  let st = Validate.session ~telemetry:tele (trace_schema ()) example8_graph in
  ignore (Validate.check st (node "n") (Label.of_string "S"));
  check_bool "some spans were traced" true (!begins > 0);
  check_int "span_begin/span_end balanced" !begins !ends

let test_span_closed_on_raise () =
  (* Even when the matcher raises mid-evaluation (here: the sink itself
     raises on the first derivative step), the check span is closed
     with a "raised" field before the exception propagates — an
     unbalanced begin would corrupt the sink's span tree. *)
  let tele = Telemetry.create () in
  let tripped = ref false in
  let events = ref [] in
  Telemetry.set_sink tele
    (Some
       (fun ev ->
         events := ev :: !events;
         if ev.Telemetry.name = "deriv_step" && not !tripped then begin
           tripped := true;
           failwith "sink exploded"
         end));
  let st = Validate.session ~telemetry:tele (trace_schema ()) example8_graph in
  (match Validate.check st (node "n") (Label.of_string "S") with
  | _ -> Alcotest.fail "expected the sink's exception to propagate"
  | exception Failure msg -> check_string "exception propagates" "sink exploded" msg);
  let check_events phase =
    List.length
      (List.filter
         (fun ev -> ev.Telemetry.name = "check" && ev.Telemetry.phase = phase)
         !events)
  in
  check_int "check span closed despite the raise"
    (check_events Telemetry.Span_begin)
    (check_events Telemetry.Span_end);
  let raised_field =
    List.exists
      (fun ev ->
        ev.Telemetry.name = "check"
        && ev.Telemetry.phase = Telemetry.Span_end
        && List.mem_assoc "raised" ev.Telemetry.fields)
      !events
  in
  check_bool "closing span_end carries the raised field" true raised_field

(* ------------------------------------------------------------------ *)
(* Compiled caches stay session-scoped                                *)
(* ------------------------------------------------------------------ *)

let test_compiled_session_scoped () =
  (* Two sessions whose schemas reuse the same label must not share
     compiled tables: each answers from its own schema, and each
     session's cache counters reflect only its own shapes. *)
  let s = Label.of_string "S" in
  let schema_a = Schema.make_exn [ (s, arc_num "a" [ 1 ]) ] in
  let schema_b = Schema.make_exn [ (s, arc_num "b" [ 2 ]) ] in
  let g = graph_of [ t3 "n" "a" (num 1); t3 "m" "b" (num 2) ] in
  let st_a = Validate.session ~engine:Validate.Compiled schema_a g in
  let st_b = Validate.session ~engine:Validate.Compiled schema_b g in
  check_bool "session A: n matches a->1" true (Validate.check_bool st_a (node "n") s);
  check_bool "session B: n fails b->2" false (Validate.check_bool st_b (node "n") s);
  check_bool "session B: m matches b->2" true (Validate.check_bool st_b (node "m") s);
  check_bool "session A: m fails a->1" false (Validate.check_bool st_a (node "m") s);
  match (Validate.compiled_stats st_a, Validate.compiled_stats st_b) with
  | Some a, Some b ->
      check_bool "A materialised its own states" true (a.Validate.states > 0);
      check_bool "B materialised its own states" true (b.Validate.states > 0);
      check_int "A interned exactly its own shape's atom" 1 a.Validate.atoms;
      check_int "B interned exactly its own shape's atom" 1 b.Validate.atoms
  | _ -> Alcotest.fail "compiled sessions must expose cache stats"

(* ------------------------------------------------------------------ *)
(* Session caches survive repeated checks and bulk runs               *)
(* ------------------------------------------------------------------ *)

let test_session_cache_lifetime () =
  (* The memo and compiled tables are session-scoped, not call-scoped:
     a second [check] of the same pair answers from the memo (no new
     fixpoint evaluations, no new DFA states), and a [check_all] over
     [--domains] shards — each a private sub-session — leaves the
     shared session's memo intact. *)
  let s = Label.of_string "S" in
  let schema = Schema.make_exn [ (s, arc_num "a" [ 1 ]) ] in
  let g = graph_of [ t3 "n" "a" (num 1); t3 "m" "a" (num 2) ] in
  let tele = Telemetry.create () in
  let iterations = Telemetry.counter tele "fixpoint_iterations" in
  let st =
    Validate.session ~engine:Validate.Compiled ~telemetry:tele ~domains:2
      schema g
  in
  check_bool "n conforms" true (Validate.check_bool st (node "n") s);
  check_bool "m fails" false (Validate.check_bool st (node "m") s);
  let warm_iters = Telemetry.Counter.value iterations in
  let warm_memo = Validate.memo_size st in
  let warm_states =
    match Validate.compiled_stats st with
    | Some stats -> stats.Validate.states
    | None -> Alcotest.fail "compiled session must expose cache stats"
  in
  check_bool "first checks did evaluate" true (warm_iters > 0);
  check_int "both verdicts memoised" 2 warm_memo;
  (* Re-checking answers from the memo: no further evaluations, no
     further compiled states. *)
  check_bool "n still conforms" true (Validate.check_bool st (node "n") s);
  check_bool "m still fails" false (Validate.check_bool st (node "m") s);
  check_int "repeat checks hit the memo" warm_iters
    (Telemetry.Counter.value iterations);
  (match Validate.compiled_stats st with
  | Some stats -> check_int "no new DFA states" warm_states stats.Validate.states
  | None -> Alcotest.fail "compiled session must expose cache stats");
  (* A sharded bulk run builds private sub-sessions; the shared memo
     is neither clobbered nor grown behind the session's back. *)
  let outcomes = Validate.check_all st [ (node "n", s); (node "m", s) ] in
  check_bool "bulk verdicts agree" true
    (List.map (fun (o : Validate.outcome) -> o.Validate.ok) outcomes
    = [ true; false ]);
  check_int "bulk run leaves the memo intact" warm_memo
    (Validate.memo_size st);
  (* The shard sub-sessions merged their own iteration counts into the
     shared registry; what matters is that the shared session itself
     still answers from its memo afterwards — zero further
     evaluations. *)
  let after_bulk = Telemetry.Counter.value iterations in
  check_bool "n conforms after bulk" true (Validate.check_bool st (node "n") s);
  check_bool "m fails after bulk" false (Validate.check_bool st (node "m") s);
  check_int "shared session still answers from its memo" after_bulk
    (Telemetry.Counter.value iterations)

(* ------------------------------------------------------------------ *)
(* Atomic JSON writes                                                 *)
(* ------------------------------------------------------------------ *)

let test_write_file_atomic () =
  let dir = Filename.temp_file "shex_atomic" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let path = Filename.concat dir "out.json" in
  Json.write_file_atomic path "{\"v\": 1}\n";
  check_string "content lands" "{\"v\": 1}\n"
    (In_channel.with_open_bin path In_channel.input_all);
  Json.write_file_atomic path "{\"v\": 2}\n";
  check_string "overwrite replaces content" "{\"v\": 2}\n"
    (In_channel.with_open_bin path In_channel.input_all);
  check_bool "no temp files left behind" true
    (Sys.readdir dir = [| "out.json" |]);
  Sys.remove path;
  Sys.rmdir dir

(* ------------------------------------------------------------------ *)
(* The headline property: parallel ≡ sequential                       *)
(* ------------------------------------------------------------------ *)

(* Random reference-free instances over several focus nodes.  With no
   shape references, each distinct (node, label) pair is evaluated
   exactly once whether checks run in one session or in per-shard
   sub-sessions, so even the merged counter totals must be equal — the
   strongest observational-identity statement that holds shard-count
   independently. *)

let focus_names = [ "n0"; "n1"; "n2"; "n3"; "n4"; "n5" ]

let gen_triple_at name =
  QCheck.Gen.(
    oneofl Test_props.preds >>= fun p ->
    oneofl Test_props.values >|= fun v -> t3 name p (num v))

let gen_multi_graph =
  QCheck.Gen.(
    let neighbourhood name = list_size (int_bound 4) (gen_triple_at name) in
    flatten_l (List.map neighbourhood focus_names) >|= fun tss ->
    Rdf.Graph.of_list (List.concat tss))

let labels = List.map Label.of_string [ "S"; "T" ]

let gen_instance =
  QCheck.Gen.(
    Test_props.gen_rse >>= fun e1 ->
    Test_props.gen_rse >>= fun e2 ->
    gen_multi_graph >|= fun g ->
    let schema = Schema.make_exn (List.combine labels [ e1; e2 ]) in
    let associations =
      List.concat_map
        (fun name -> List.map (fun l -> (node name, l)) labels)
        focus_names
    in
    (schema, g, associations))

let arb_instance =
  QCheck.make
    ~print:(fun (schema, g, _) ->
      Format.asprintf "%a@.%a" Schema.pp schema Rdf.Graph.pp g)
    gen_instance

let observe ~domains schema g associations =
  let telemetry = Telemetry.create () in
  let st = Validate.session ~telemetry ~domains schema g in
  let outcomes = Validate.check_all st associations in
  let metrics = Json.to_string (Telemetry.to_json (Validate.metrics st)) in
  ( List.map (fun (o : Validate.outcome) -> o.Validate.ok) outcomes,
    List.map Validate.reason outcomes,
    List.map (fun (o : Validate.outcome) -> o.Validate.typing) outcomes,
    metrics )

let prop_parallel_equals_sequential =
  QCheck.Test.make ~count:60
    ~name:"check_all: domains 2/4 ≡ domains 1 (verdicts, blame, telemetry)"
    arb_instance
    (fun (schema, g, associations) ->
      let ok0, reasons0, typings0, metrics0 =
        observe ~domains:1 schema g associations
      in
      List.for_all
        (fun domains ->
          let ok, reasons, typings, metrics =
            observe ~domains schema g associations
          in
          ok = ok0 && reasons = reasons0
          && List.for_all2 Typing.equal typings typings0
          && String.equal metrics metrics0)
        [ 2; 4 ])

let test_bulk_installed () =
  check_bool "bulk runner registered at link time" true
    (Validate.bulk_checker_installed ())

let test_tracing_stays_sequential () =
  (* With a sink installed check_all must take the sequential path:
     the event stream stays single-threaded, and the verdicts still
     agree with the untraced run. *)
  let schema = trace_schema () in
  let tele = Telemetry.create () in
  let seen = ref 0 in
  Telemetry.set_sink tele (Some (fun _ -> incr seen));
  let st =
    Validate.session ~telemetry:tele ~domains:4 schema
      (graph_of [ t3 "n" "a" (num 1) ])
  in
  let associations =
    [ (node "n", Label.of_string "S"); (num 1, Label.of_string "S") ]
  in
  let outcomes = Validate.check_all st associations in
  check_bool "traced run produced events" true (!seen > 0);
  check_bool "verdicts unchanged" true
    (List.map (fun (o : Validate.outcome) -> o.Validate.ok) outcomes
    = [ true; false ])

let tests =
  [
    Alcotest.test_case "shard: concat = input" `Quick test_shard_concat;
    Alcotest.test_case "shard: balanced runs" `Quick test_shard_balance;
    Alcotest.test_case "pool: task order" `Quick test_pool_order;
    Alcotest.test_case "pool: join + re-raise on failure" `Quick
      test_pool_exception;
    Alcotest.test_case "telemetry: lossless merge" `Quick test_telemetry_merge;
    Alcotest.test_case "telemetry: merge with disabled is a no-op" `Quick
      test_telemetry_merge_disabled;
    Alcotest.test_case "telemetry: histogram clamps negatives" `Quick
      test_histogram_clamp;
    Alcotest.test_case "tracing: spans balance" `Quick test_span_balance;
    Alcotest.test_case "tracing: span closed when matcher raises" `Quick
      test_span_closed_on_raise;
    Alcotest.test_case "compiled caches are session-scoped" `Quick
      test_compiled_session_scoped;
    Alcotest.test_case "session caches survive checks and bulk runs" `Quick
      test_session_cache_lifetime;
    Alcotest.test_case "json: atomic file writes" `Quick test_write_file_atomic;
    Alcotest.test_case "bulk runner installed" `Quick test_bulk_installed;
    Alcotest.test_case "tracing forces the sequential path" `Quick
      test_tracing_stays_sequential;
    QCheck_alcotest.to_alcotest prop_parallel_equals_sequential;
  ]

let suites = [ ("parallel", tests) ]

(* Data-driven conformance suite: reads test/suite/manifest.json and
   runs each (schema, data, node, shape, expected-verdict) entry
   end-to-end through the parsers and the validator. *)

let suite_dir = "suite"

let read_file path =
  In_channel.with_open_bin (Filename.concat suite_dir path)
    In_channel.input_all

let schema_cache : (string, Shex.Schema.t) Hashtbl.t = Hashtbl.create 8
let graph_cache : (string, Rdf.Graph.t) Hashtbl.t = Hashtbl.create 8

let load_schema path =
  match Hashtbl.find_opt schema_cache path with
  | Some s -> s
  | None ->
      let s =
        match Shexc.Shexc_parser.parse_schema (read_file path) with
        | Ok s -> s
        | Error msg -> Alcotest.fail (path ^ ": " ^ msg)
      in
      Hashtbl.replace schema_cache path s;
      s

let load_graph path =
  match Hashtbl.find_opt graph_cache path with
  | Some g -> g
  | None ->
      let g =
        match Turtle.Parse.parse_graph (read_file path) with
        | Ok g -> g
        | Error msg -> Alcotest.fail (path ^ ": " ^ msg)
      in
      Hashtbl.replace graph_cache path g;
      g

let get_string field entry =
  match Json.find_string field entry with
  | Some s -> s
  | None -> Alcotest.fail ("manifest entry missing " ^ field)

let resolve_label schema name =
  let exact = Shex.Label.of_string name in
  if Shex.Schema.mem schema exact then exact
  else
    match
      List.find_opt
        (fun l ->
          let s = Shex.Label.to_string l in
          let n = String.length s and m = String.length name in
          n >= m && String.sub s (n - m) m = name)
        (Shex.Schema.labels schema)
    with
    | Some l -> l
    | None -> Alcotest.fail ("unknown shape label " ^ name)

let case_of_entry entry =
  let name = get_string "name" entry in
  let run () =
    let schema = load_schema (get_string "schema" entry) in
    let graph = load_graph (get_string "data" entry) in
    let node = Rdf.Term.iri (get_string "node" entry) in
    let label = resolve_label schema (get_string "shape" entry) in
    let expected =
      match get_string "expect" entry with
      | "conformant" -> true
      | "nonconformant" -> false
      | other -> Alcotest.fail ("unknown expectation " ^ other)
    in
    let session = Shex.Validate.session schema graph in
    Alcotest.(check bool) name expected
      (Shex.Validate.check_bool session node label);
    (* Both engines must agree on every suite entry. *)
    let back =
      Shex.Validate.session ~engine:Shex.Validate.Backtracking schema graph
    in
    Alcotest.(check bool) (name ^ " [backtracking]") expected
      (Shex.Validate.check_bool back node label)
  in
  Alcotest.test_case name `Quick run

let suites =
  match Json.of_string (read_file "manifest.json") with
  | Error msg -> failwith ("suite manifest: " ^ msg)
  | Ok manifest -> (
      match Json.find_list "tests" manifest with
      | None -> failwith "suite manifest has no tests"
      | Some entries ->
          [ ("conformance-suite", List.map case_of_entry entries) ])

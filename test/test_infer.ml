(* Tests for shape inference. *)

open Util
open Shex

let foaf l = Rdf.Iri.of_string_exn ("http://xmlns.com/foaf/0.1/" ^ l)

let graph =
  graph_of
    [ triple (node "john") (foaf "age") (num 23);
      triple (node "john") (foaf "name") (Rdf.Term.str "John");
      triple (node "john") (foaf "knows") (node "bob");
      triple (node "bob") (foaf "age") (num 34);
      triple (node "bob") (foaf "name") (Rdf.Term.str "Bob");
      triple (node "bob") (foaf "name") (Rdf.Term.str "Robert") ]

let examples = [ node "john"; node "bob" ]

let test_inferred_accepts_examples () =
  let shape = Infer.infer_shape graph examples in
  List.iter
    (fun n ->
      check_bool
        (Format.asprintf "%a matches" Rdf.Term.pp n)
        true
        (Deriv.matches n graph shape))
    examples

let test_inferred_structure () =
  let shape = Infer.infer_shape graph examples in
  (* age {1,1} integer; name {1,2} string; knows {0,1} IRI *)
  match Sorbe.of_rse shape with
  | None -> Alcotest.fail "inferred shape should be SORBE"
  | Some constrs ->
      check_int "three predicates" 3 (List.length constrs);
      List.iter
        (fun (c : Sorbe.constr) ->
          match c.arc.pred with
          | Value_set.Pred p when Rdf.Iri.equal p (foaf "age") ->
              check_bool "age exact one" true
                (c.card = { Sorbe.min = 1; max = Some 1 });
              check_bool "age integer" true
                (match c.arc.obj with
                | Rse.Values (Value_set.Obj_datatype Rdf.Xsd.Integer) -> true
                | _ -> false)
          | Value_set.Pred p when Rdf.Iri.equal p (foaf "name") ->
              check_bool "name 1..2" true
                (c.card = { Sorbe.min = 1; max = Some 2 })
          | Value_set.Pred p when Rdf.Iri.equal p (foaf "knows") ->
              check_bool "knows 0..1" true
                (c.card = { Sorbe.min = 0; max = Some 1 });
              check_bool "knows iri" true
                (match c.arc.obj with
                | Rse.Values (Value_set.Obj_kind Value_set.Iri_kind) -> true
                | _ -> false)
          | _ -> Alcotest.fail "unexpected predicate")
        constrs

let test_inferred_rejects_nonconforming () =
  let shape = Infer.infer_shape graph examples in
  (* mary-style node: two ages, no name *)
  let g =
    Rdf.Graph.union graph
      (graph_of
         [ triple (node "mary") (foaf "age") (num 50);
           triple (node "mary") (foaf "age") (num 65) ])
  in
  check_bool "mary rejected" false (Deriv.matches (node "mary") g shape)

let test_value_set_option () =
  let g =
    graph_of
      [ t3 "a" "status" (Rdf.Term.str "on"); t3 "b" "status" (Rdf.Term.str "off") ]
  in
  let shape =
    Infer.infer_shape
      ~options:{ Infer.max_value_set = 3; close_cardinalities = true }
      g [ node "a"; node "b" ]
  in
  match Rse.arcs shape with
  | [ { obj = Rse.Values (Value_set.Obj_in terms); _ } ] ->
      check_int "two values" 2 (List.length terms)
  | _ -> Alcotest.fail "expected a value set"

let test_open_cardinalities_option () =
  let shape =
    Infer.infer_shape
      ~options:{ Infer.max_value_set = 0; close_cardinalities = false }
      graph examples
  in
  (* With open upper bounds, a node with three names still conforms. *)
  let g =
    Rdf.Graph.union graph
      (graph_of
         [ triple (node "zoe") (foaf "age") (num 1);
           triple (node "zoe") (foaf "name") (Rdf.Term.str "a");
           triple (node "zoe") (foaf "name") (Rdf.Term.str "b");
           triple (node "zoe") (foaf "name") (Rdf.Term.str "c") ])
  in
  check_bool "three names ok" true (Deriv.matches (node "zoe") g shape)

let test_infer_schema_with_refs () =
  match
    Infer.infer_schema graph
      [ (Label.of_string "Person", examples) ]
  with
  | Error msg -> Alcotest.fail msg
  | Ok schema ->
      let person = Label.of_string "Person" in
      (* knows points to bob, who is an example Person → reference,
         hence a recursive schema. *)
      check_bool "recursive" true (Schema.is_recursive schema person);
      let session = Validate.session schema graph in
      List.iter
        (fun n ->
          check_bool "examples conform" true
            (Validate.check_bool session n person))
        examples

let test_infer_schema_multi_label () =
  let g =
    graph_of
      [ t3 "o1" "subject" (node "p1");
        t3 "o1" "value" (num 42);
        t3 "p1" "mrn" (Rdf.Term.str "MRN1") ]
  in
  match
    Infer.infer_schema g
      [ (Label.of_string "Obs", [ node "o1" ]);
        (Label.of_string "Pat", [ node "p1" ]) ]
  with
  | Error msg -> Alcotest.fail msg
  | Ok schema ->
      let s = Validate.session schema g in
      check_bool "obs conforms" true
        (Validate.check_bool s (node "o1") (Label.of_string "Obs"));
      check_bool "pat conforms" true
        (Validate.check_bool s (node "p1") (Label.of_string "Pat"));
      (* The subject arc must be a reference to Pat. *)
      let obs = Schema.find_exn schema (Label.of_string "Obs") in
      check_bool "has ref" true
        (Label.Set.mem (Label.of_string "Pat") (Rse.refs obs))

let test_empty_examples () =
  Alcotest.check_raises "no examples"
    (Invalid_argument "Infer.infer_shape: no example nodes") (fun () ->
      ignore (Infer.infer_shape graph []))

let test_empty_neighbourhood () =
  (* A node with no triples infers ε (and conforms to it). *)
  let shape = Infer.infer_shape graph [ node "ghost" ] in
  Alcotest.check rse "epsilon" Rse.epsilon shape

let suites =
  [ ( "infer",
      [ Alcotest.test_case "accepts its examples" `Quick
          test_inferred_accepts_examples;
        Alcotest.test_case "inferred structure" `Quick
          test_inferred_structure;
        Alcotest.test_case "rejects nonconforming" `Quick
          test_inferred_rejects_nonconforming;
        Alcotest.test_case "value set option" `Quick test_value_set_option;
        Alcotest.test_case "open cardinalities option" `Quick
          test_open_cardinalities_option;
        Alcotest.test_case "schema with references" `Quick
          test_infer_schema_with_refs;
        Alcotest.test_case "multi-label schema" `Quick
          test_infer_schema_multi_label;
        Alcotest.test_case "empty example list" `Quick test_empty_examples;
        Alcotest.test_case "empty neighbourhood" `Quick
          test_empty_neighbourhood ] ) ]

(* Tests for the enumerated denotational semantics Sn[[e]] (§4),
   including the paper's Example 7. *)

open Util
open Shex

let enumerate ?(max_card = 4) e =
  match Semantics.language ~node:(node "n") ~max_card e with
  | Ok gs -> gs
  | Error msg -> Alcotest.fail msg

(* Example 7: Sn[[a→1 ‖ (b→{1,2})*]] restricted to the graphs of at
   most 3 triples is exactly the four graphs listed in the paper. *)
let test_example7 () =
  let gs = enumerate ~max_card:3 example5 in
  let expected =
    List.map
      (fun triples -> Rdf.Triple.Set.of_list triples)
      [ [ t3 "n" "a" (num 1) ];
        [ t3 "n" "a" (num 1); t3 "n" "b" (num 1) ];
        [ t3 "n" "a" (num 1); t3 "n" "b" (num 2) ];
        [ t3 "n" "a" (num 1); t3 "n" "b" (num 1); t3 "n" "b" (num 2) ] ]
  in
  check_int "four graphs" 4 (List.length gs);
  List.iter
    (fun want ->
      check_bool "expected graph present" true
        (List.exists (fun got -> Rdf.Triple.Set.equal got want) gs))
    expected

let test_empty_and_epsilon () =
  check_int "Sn[[∅]] empty" 0 (List.length (enumerate Rse.empty));
  let eps = enumerate Rse.epsilon in
  check_int "Sn[[ε]] singleton" 1 (List.length eps);
  check_bool "contains {}" true
    (Rdf.Triple.Set.is_empty (List.hd eps))

let test_arc_language () =
  let gs = enumerate (arc_num "b" [ 1; 2 ]) in
  check_int "two singletons" 2 (List.length gs);
  List.iter (fun g -> check_int "card 1" 1 (Rdf.Triple.Set.cardinal g)) gs

let test_or_language () =
  let gs = enumerate (Rse.or_ (arc_num "a" [ 1 ]) (arc_num "b" [ 1 ])) in
  check_int "union" 2 (List.length gs)

let test_star_bounded () =
  let gs = enumerate ~max_card:2 (Rse.star (arc_num "b" [ 1; 2; 3 ])) in
  (* {} + 3 singletons + C(3,2)=3 pairs *)
  check_int "bounded star" 7 (List.length gs)

let test_not_enumerable () =
  let e = Rse.arc_v (Value_set.Pred (ex "p")) Value_set.Obj_any in
  check_bool "Obj_any refused" true
    (Result.is_error (Semantics.language ~node:(node "n") ~max_card:2 e));
  check_bool "negation refused" true
    (Result.is_error
       (Semantics.language ~node:(node "n") ~max_card:2
          (Rse.not_ Rse.epsilon)))

let test_mem_agrees_with_deriv () =
  List.iter
    (fun (e, g) ->
      match Semantics.mem ~node:(node "n") g e with
      | Ok verdict ->
          check_bool "mem = deriv" true
            (Bool.equal verdict (Deriv.matches (node "n") g e))
      | Error msg -> Alcotest.fail msg)
    [ (example5, example8_graph);
      (example5, example12_graph);
      (example10, example8_graph);
      (Rse.opt (arc_num "a" [ 1 ]), Rdf.Graph.empty) ]

let suites =
  [ ( "semantics",
      [ Alcotest.test_case "Example 7" `Quick test_example7;
        Alcotest.test_case "∅ and ε" `Quick test_empty_and_epsilon;
        Alcotest.test_case "arc language" `Quick test_arc_language;
        Alcotest.test_case "alternative" `Quick test_or_language;
        Alcotest.test_case "bounded star" `Quick test_star_bounded;
        Alcotest.test_case "non-enumerable refusals" `Quick
          test_not_enumerable;
        Alcotest.test_case "mem agrees with derivatives" `Quick
          test_mem_agrees_with_deriv ] ) ]

(* Tests for the benchmark workload generators: determinism and
   ground-truth validity. *)

open Util

let test_prng_determinism () =
  let a = Workload.Prng.create 7 and b = Workload.Prng.create 7 in
  for _ = 1 to 100 do
    check_int "same stream" (Workload.Prng.int a 1000)
      (Workload.Prng.int b 1000)
  done;
  let c = Workload.Prng.create 8 in
  let diverges =
    List.exists
      (fun _ -> Workload.Prng.int a 1000 <> Workload.Prng.int c 1000)
      (List.init 20 Fun.id)
  in
  check_bool "different seed diverges" true diverges

let test_prng_bounds () =
  let rng = Workload.Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Workload.Prng.int rng 10 in
    check_bool "in range" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 1000 do
    let f = Workload.Prng.float rng in
    check_bool "float in range" true (f >= 0.0 && f < 1.0)
  done

let test_prng_shuffle_permutes () =
  let rng = Workload.Prng.create 5 in
  let xs = List.init 20 Fun.id in
  let ys = Workload.Prng.shuffle rng xs in
  check_bool "same elements" true
    (List.sort compare ys = xs);
  check_bool "usually different order" true (ys <> xs)

let test_foaf_determinism () =
  let p = Workload.Foaf_gen.default_profile in
  let g1 = Workload.Foaf_gen.generate p in
  let g2 = Workload.Foaf_gen.generate p in
  Alcotest.check graph "same graph" g1.Workload.Foaf_gen.graph
    g2.Workload.Foaf_gen.graph

let test_foaf_ground_truth () =
  let profile =
    { Workload.Foaf_gen.default_profile with n_persons = 60; seed = 11 }
  in
  let { Workload.Foaf_gen.graph = g; valid; invalid } =
    Workload.Foaf_gen.generate profile
  in
  check_int "60 persons" 60 (List.length valid + List.length invalid);
  let schema, person = Workload.Foaf_gen.person_schema () in
  let session = Shex.Validate.session schema g in
  List.iter
    (fun n ->
      check_bool
        (Format.asprintf "valid %a" Rdf.Term.pp n)
        true
        (Shex.Validate.check_bool session n person))
    valid;
  List.iter
    (fun n ->
      check_bool
        (Format.asprintf "invalid %a" Rdf.Term.pp n)
        false
        (Shex.Validate.check_bool session n person))
    invalid

let test_foaf_fraction () =
  let profile =
    { Workload.Foaf_gen.default_profile with
      n_persons = 1000; invalid_fraction = 0.2; seed = 3 }
  in
  let { Workload.Foaf_gen.invalid; _ } = Workload.Foaf_gen.generate profile in
  let frac = float_of_int (List.length invalid) /. 1000.0 in
  check_bool "roughly 20% invalid" true (frac > 0.12 && frac < 0.28)

let test_micro_example5 () =
  let shape = Workload.Micro_gen.example5_shape () in
  List.iter
    (fun n ->
      check_bool "valid neighbourhood matches" true
        (Shex.Deriv.matches Workload.Micro_gen.focus
           (Workload.Micro_gen.example5_neighbourhood n)
           shape);
      check_bool "invalid neighbourhood fails" false
        (Shex.Deriv.matches Workload.Micro_gen.focus
           (Workload.Micro_gen.example5_neighbourhood_invalid n)
           shape))
    [ 1; 2; 5; 10 ]

let test_micro_balanced () =
  List.iter
    (fun k ->
      let shape = Workload.Micro_gen.balanced_shape k in
      check_bool "balanced matches" true
        (Shex.Deriv.matches Workload.Micro_gen.focus
           (Workload.Micro_gen.balanced_neighbourhood k)
           shape);
      (* drop one b-arc: unbalanced fails *)
      let g = Workload.Micro_gen.balanced_neighbourhood k in
      let some_b =
        List.find
          (fun tr ->
            Rdf.Iri.to_string (Rdf.Triple.predicate tr)
            = "http://example.org/b")
          (Rdf.Graph.to_list g)
      in
      check_bool "unbalanced fails" false
        (Shex.Deriv.matches Workload.Micro_gen.focus
           (Rdf.Graph.remove some_b g) shape))
    [ 1; 2; 4 ]

let test_micro_wide () =
  List.iter
    (fun f ->
      let shape = Workload.Micro_gen.wide_shape f in
      check_bool "wide matches" true
        (Shex.Deriv.matches Workload.Micro_gen.focus
           (Workload.Micro_gen.wide_neighbourhood f)
           shape);
      check_bool "is SORBE" true (Shex.Sorbe.of_rse shape <> None))
    [ 1; 4; 8; 16 ]

let suites =
  [ ( "workload",
      [ Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
        Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
        Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutes;
        Alcotest.test_case "foaf determinism" `Quick test_foaf_determinism;
        Alcotest.test_case "foaf ground truth" `Quick test_foaf_ground_truth;
        Alcotest.test_case "foaf invalid fraction" `Quick test_foaf_fraction;
        Alcotest.test_case "example5 micro workload" `Quick
          test_micro_example5;
        Alcotest.test_case "balanced micro workload" `Quick
          test_micro_balanced;
        Alcotest.test_case "wide micro workload" `Quick test_micro_wide ] )
  ]

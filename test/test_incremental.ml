(* Incremental revalidation: dependency-frontier invalidation must
   keep exactly the verdicts a delta cannot reach, flip the ones it
   can, and always agree with a from-scratch run (the property the
   oracle's edit-script arm also enforces at scale). *)

open Util
open Shex

let label = Label.of_string
let foaf l = Rdf.Iri.of_string_exn ("http://xmlns.com/foaf/0.1/" ^ l)
let person = label "Person"

(* The recursive Person schema of Examples 1/14 — knows-objects must
   themselves conform, so breaking one node ripples backwards through
   the dependency edges. *)
let person_schema =
  Schema.make_exn
    [ ( person,
        Rse.and_all
          [ Rse.arc_v (Value_set.Pred (foaf "age")) Value_set.xsd_integer;
            Rse.plus
              (Rse.arc_v (Value_set.Pred (foaf "name")) Value_set.xsd_string);
            Rse.star (Rse.arc_ref (Value_set.Pred (foaf "knows")) person) ]
      ) ]

let person_triples name age =
  [ triple (node name) (foaf "age") (num age);
    triple (node name) (foaf "name") (Rdf.Term.str (String.capitalize_ascii name)) ]

let base_graph =
  graph_of
    (person_triples "john" 23
    @ person_triples "bob" 34
    @ person_triples "carol" 41
    @ [ triple (node "john") (foaf "knows") (node "bob") ])

let get snap name =
  match Telemetry.find_counter snap name with
  | Some v -> v
  | None -> Alcotest.failf "counter %S missing from snapshot" name

let verdict_t =
  Alcotest.testable
    (fun ppf (n, l, ok) ->
      Format.fprintf ppf "%s@@%s=%b" (Rdf.Term.to_string n)
        (Label.to_string l) ok)
    (fun (n1, l1, b1) (n2, l2, b2) ->
      Rdf.Term.equal n1 n2 && Label.equal l1 l2 && Bool.equal b1 b2)

(* ------------------------------------------------------------------ *)
(* Direct invalidation                                                 *)
(* ------------------------------------------------------------------ *)

let test_delete_direct () =
  let s = Shex_incremental.Session.create person_schema base_graph in
  Alcotest.(check bool) "john valid" true
    (Shex_incremental.Session.check_bool s (node "john") person);
  Alcotest.(check bool) "carol valid" true
    (Shex_incremental.Session.check_bool s (node "carol") person);
  let stats =
    Shex_incremental.Session.apply s
      (Shex_incremental.Session.delete
         [ triple (node "carol") (foaf "name") (Rdf.Term.str "Carol") ])
  in
  Alcotest.(check int) "one triple applied" 1 stats.applied;
  Alcotest.(check bool) "frontier non-empty" true (stats.frontier >= 1);
  Alcotest.(check (list verdict_t)) "carol flips to nonconformant"
    [ (node "carol", person, false) ]
    stats.changed;
  Alcotest.(check bool) "carol now fails" false
    (Shex_incremental.Session.check_bool s (node "carol") person);
  Alcotest.(check bool) "john untouched" true
    (Shex_incremental.Session.check_bool s (node "john") person)

(* Breaking bob must flip john too: john's verdict consulted
   (bob, Person) through the knows reference, so the backwards walk
   reaches both. *)
let test_frontier_ripples_through_references () =
  let s = Shex_incremental.Session.create person_schema base_graph in
  Alcotest.(check bool) "john valid" true
    (Shex_incremental.Session.check_bool s (node "john") person);
  let stats =
    Shex_incremental.Session.apply s
      (Shex_incremental.Session.delete
         [ triple (node "bob") (foaf "name") (Rdf.Term.str "Bob") ])
  in
  let flipped (n, l) =
    List.exists
      (fun (n', l', now) ->
        Rdf.Term.equal n n' && Label.equal l l' && not now)
      stats.changed
  in
  Alcotest.(check bool) "bob flips" true (flipped (node "bob", person));
  Alcotest.(check bool) "john flips (via knows)" true
    (flipped (node "john", person));
  Alcotest.(check bool) "bob fails" false
    (Shex_incremental.Session.check_bool s (node "bob") person);
  Alcotest.(check bool) "john fails" false
    (Shex_incremental.Session.check_bool s (node "john") person);
  (* Repair bob: both come back. *)
  let stats =
    Shex_incremental.Session.apply s
      (Shex_incremental.Session.insert
         [ triple (node "bob") (foaf "name") (Rdf.Term.str "Bob") ])
  in
  Alcotest.(check bool) "bob restored" true
    (List.exists (fun (_, _, now) -> now) stats.changed);
  Alcotest.(check bool) "john conforms again" true
    (Shex_incremental.Session.check_bool s (node "john") person)

(* Carol's verdict shares no dependency with bob's; the delta on bob
   must not re-evaluate her — measured, not assumed, via the fixpoint
   counter. *)
let test_unaffected_memo_retained () =
  let tele = Telemetry.create () in
  let s = Shex_incremental.Session.create ~telemetry:tele person_schema
      base_graph
  in
  ignore (Shex_incremental.Session.check_bool s (node "carol") person);
  ignore (Shex_incremental.Session.check_bool s (node "john") person);
  let before = get (Telemetry.snapshot tele) "fixpoint_iterations" in
  let stats =
    Shex_incremental.Session.apply s
      (Shex_incremental.Session.delete
         [ triple (node "bob") (foaf "name") (Rdf.Term.str "Bob") ])
  in
  Alcotest.(check bool) "frontier excludes carol" true
    (List.for_all
       (fun (n, _, _) -> not (Rdf.Term.equal n (node "carol")))
       stats.changed);
  let after_delta = get (Telemetry.snapshot tele) "fixpoint_iterations" in
  Alcotest.(check bool) "delta re-solved something" true
    (after_delta > before);
  ignore (Shex_incremental.Session.check_bool s (node "carol") person);
  Alcotest.(check int) "carol answered from the retained memo"
    after_delta
    (get (Telemetry.snapshot tele) "fixpoint_iterations");
  (* The frontier histogram recorded the delta. *)
  Alcotest.(check int) "one delta counted" 1
    (get (Telemetry.snapshot tele) "incremental_deltas");
  Alcotest.(check bool) "invalidations counted" true
    (get (Telemetry.snapshot tele) "incremental_invalidated" >= 2)

let test_noop_delta () =
  let s = Shex_incremental.Session.create person_schema base_graph in
  ignore (Shex_incremental.Session.check_bool s (node "john") person);
  let stats =
    Shex_incremental.Session.apply s
      { Shex_incremental.Session.inserts =
          [ triple (node "john") (foaf "knows") (node "bob") ];
        deletes = [ triple (node "john") (foaf "age") (num 99) ] }
  in
  Alcotest.(check int) "nothing applied" 0 stats.applied;
  Alcotest.(check int) "nothing invalidated" 0 stats.frontier;
  Alcotest.(check bool) "john still valid" true
    (Shex_incremental.Session.check_bool s (node "john") person)

(* A triple about a brand-new node: no memo entry to invalidate, and
   the next query just solves fresh. *)
let test_new_node () =
  let s = Shex_incremental.Session.create person_schema base_graph in
  let stats =
    Shex_incremental.Session.apply s
      (Shex_incremental.Session.insert
         (person_triples "dave" 29
         @ [ triple (node "dave") (foaf "knows") (node "john") ]))
  in
  Alcotest.(check int) "three triples applied" 3 stats.applied;
  Alcotest.(check bool) "dave conforms" true
    (Shex_incremental.Session.check_bool s (node "dave") person)

let test_set_schema_resets () =
  let tele = Telemetry.create () in
  let s =
    Shex_incremental.Session.create ~telemetry:tele person_schema base_graph
  in
  ignore (Shex_incremental.Session.check_bool s (node "john") person);
  let open_person = Schema.make_exn [ (person, Rse.open_up Rse.epsilon) ] in
  Shex_incremental.Session.set_schema s open_person;
  Alcotest.(check int) "full reset counted" 1
    (get (Telemetry.snapshot tele) "incremental_full_resets");
  Alcotest.(check bool) "everything matches the open shape" true
    (Shex_incremental.Session.check_bool s (node "mary") person)

(* ------------------------------------------------------------------ *)
(* Incremental ≡ from-scratch on random edit scripts                   *)
(* ------------------------------------------------------------------ *)

let incremental_equals_scratch seed =
  let case = Workload.Rand_gen.case seed in
  let rng = Workload.Prng.create (seed lxor 0x5eed) in
  let script =
    Workload.Rand_gen.edit_script rng case.schema case.graph 12
  in
  let inc = Shex_incremental.Session.create case.schema case.graph in
  List.for_all
    (fun edit ->
      let d =
        match edit with
        | Workload.Rand_gen.Insert tr -> Shex_incremental.Session.insert [ tr ]
        | Workload.Rand_gen.Delete tr -> Shex_incremental.Session.delete [ tr ]
      in
      ignore (Shex_incremental.Session.apply inc d);
      let scratch =
        Validate.session case.schema (Shex_incremental.Session.graph inc)
      in
      List.for_all
        (fun (n, l) ->
          Bool.equal
            (Shex_incremental.Session.check_bool inc n l)
            (Validate.check_bool scratch n l))
        case.associations)
    script

let prop_incremental_equals_scratch =
  QCheck.Test.make ~count:60
    ~name:"incremental ≡ from-scratch over random edit scripts"
    QCheck.(int_bound 10_000)
    incremental_equals_scratch

let suites =
  [ ( "incremental",
      [ Alcotest.test_case "delete invalidates the edited node" `Quick
          test_delete_direct;
        Alcotest.test_case "frontier ripples through references" `Quick
          test_frontier_ripples_through_references;
        Alcotest.test_case "unaffected verdicts stay memoised" `Quick
          test_unaffected_memo_retained;
        Alcotest.test_case "no-op deltas touch nothing" `Quick
          test_noop_delta;
        Alcotest.test_case "new nodes solve fresh" `Quick test_new_node;
        Alcotest.test_case "schema change falls back to full reset" `Quick
          test_set_schema_resets;
        QCheck_alcotest.to_alcotest prop_incremental_equals_scratch ] ) ]

(* Tests for graph isomorphism and skolemization. *)

open Util

let b name = Rdf.Term.bnode name
let p name = ex name

let g_of = graph_of

let test_ground_graphs () =
  let g1 = g_of [ t3 "a" "p" (num 1); t3 "b" "q" (num 2) ] in
  let g2 = g_of [ t3 "b" "q" (num 2); t3 "a" "p" (num 1) ] in
  check_bool "equal ground graphs" true (Rdf.Isomorphism.isomorphic g1 g2);
  let g3 = g_of [ t3 "a" "p" (num 1) ] in
  check_bool "different sizes" false (Rdf.Isomorphism.isomorphic g1 g3);
  let g4 = g_of [ t3 "a" "p" (num 1); t3 "b" "q" (num 3) ] in
  check_bool "different ground triple" false
    (Rdf.Isomorphism.isomorphic g1 g4)

let test_bnode_renaming () =
  let g1 =
    Rdf.Graph.of_list
      [ Rdf.Triple.make (b "x") (p "p") (num 1);
        Rdf.Triple.make (b "x") (p "q") (b "y") ]
  in
  let g2 =
    Rdf.Graph.of_list
      [ Rdf.Triple.make (b "a") (p "p") (num 1);
        Rdf.Triple.make (b "a") (p "q") (b "b") ]
  in
  check_bool "renamed bnodes" true (Rdf.Isomorphism.isomorphic g1 g2);
  match Rdf.Isomorphism.find_mapping g1 g2 with
  | Some mapping -> check_int "two pairs" 2 (List.length mapping)
  | None -> Alcotest.fail "expected a mapping"

let test_structure_matters () =
  (* _:x p _:x (self-loop) vs _:x p _:y — not isomorphic. *)
  let g1 = Rdf.Graph.of_list [ Rdf.Triple.make (b "x") (p "p") (b "x") ] in
  let g2 = Rdf.Graph.of_list [ Rdf.Triple.make (b "x") (p "p") (b "y") ] in
  check_bool "self-loop vs edge" false (Rdf.Isomorphism.isomorphic g1 g2)

let test_cycle_rotation () =
  (* A 3-cycle of bnodes is isomorphic to its relabelled rotation. *)
  let cycle names =
    match names with
    | [ n1; n2; n3 ] ->
        Rdf.Graph.of_list
          [ Rdf.Triple.make (b n1) (p "next") (b n2);
            Rdf.Triple.make (b n2) (p "next") (b n3);
            Rdf.Triple.make (b n3) (p "next") (b n1) ]
    | _ -> assert false
  in
  check_bool "rotated cycle" true
    (Rdf.Isomorphism.isomorphic
       (cycle [ "a"; "b"; "c" ])
       (cycle [ "u"; "v"; "w" ]))

let test_cycle_vs_path () =
  let g1 =
    Rdf.Graph.of_list
      [ Rdf.Triple.make (b "a") (p "next") (b "b");
        Rdf.Triple.make (b "b") (p "next") (b "c");
        Rdf.Triple.make (b "c") (p "next") (b "a") ]
  in
  let g2 =
    Rdf.Graph.of_list
      [ Rdf.Triple.make (b "a") (p "next") (b "b");
        Rdf.Triple.make (b "b") (p "next") (b "c");
        Rdf.Triple.make (b "a") (p "next") (b "c") ]
  in
  check_bool "cycle vs triangle-with-chord shape" false
    (Rdf.Isomorphism.isomorphic g1 g2)

let test_indistinguishable_bnodes () =
  (* Two structurally identical bnodes: any bijection works. *)
  let twins names =
    Rdf.Graph.of_list
      (List.map (fun n -> Rdf.Triple.make (b n) (p "p") (num 1)) names)
  in
  check_bool "twins" true
    (Rdf.Isomorphism.isomorphic (twins [ "x"; "y" ]) (twins [ "u"; "v" ]))

let test_mixed_ground_and_bnodes () =
  let g1 =
    Rdf.Graph.of_list
      [ Rdf.Triple.make (node "alice") (p "knows") (b "x");
        Rdf.Triple.make (b "x") (p "name") (Rdf.Term.str "Bob") ]
  in
  let g2 =
    Rdf.Graph.of_list
      [ Rdf.Triple.make (node "alice") (p "knows") (b "someone");
        Rdf.Triple.make (b "someone") (p "name") (Rdf.Term.str "Bob") ]
  in
  check_bool "bnode behind ground anchor" true
    (Rdf.Isomorphism.isomorphic g1 g2);
  let g3 =
    Rdf.Graph.of_list
      [ Rdf.Triple.make (node "alice") (p "knows") (b "someone");
        Rdf.Triple.make (b "someone") (p "name") (Rdf.Term.str "Carol") ]
  in
  check_bool "different literal behind bnode" false
    (Rdf.Isomorphism.isomorphic g1 g3)

let test_turtle_roundtrip_isomorphic () =
  (* Anonymous bnodes get fresh labels on reparse: graphs are
     isomorphic though not equal. *)
  let src =
    "@prefix : <http://example.org/> .\n\
     :alice :knows [ :name \"Bob\" ; :age 42 ] ."
  in
  let g1 = Turtle.Parse.parse_graph_exn src in
  let g2 = Turtle.Parse.parse_graph_exn (Turtle.Write.to_string g1) in
  check_bool "roundtrip isomorphic" true (Rdf.Isomorphism.isomorphic g1 g2)

let test_skolemize () =
  let g =
    Rdf.Graph.of_list
      [ Rdf.Triple.make (b "x") (p "p") (b "y");
        Rdf.Triple.make (b "y") (p "q") (num 1) ]
  in
  let sk = Rdf.Skolem.skolemize g in
  check_bool "no bnodes left" true
    (Rdf.Graph.for_all
       (fun tr ->
         (not (Rdf.Term.is_bnode (Rdf.Triple.subject tr)))
         && not (Rdf.Term.is_bnode (Rdf.Triple.obj tr)))
       sk);
  check_int "same size" (Rdf.Graph.cardinal g) (Rdf.Graph.cardinal sk);
  let back = Rdf.Skolem.unskolemize sk in
  Alcotest.check graph "unskolemize inverts" g back

let test_skolemize_custom_authority () =
  let g = Rdf.Graph.of_list [ Rdf.Triple.make (b "x") (p "p") (num 1) ] in
  let sk = Rdf.Skolem.skolemize ~authority:"urn:sk:" g in
  check_bool "uses authority" true
    (Rdf.Graph.exists
       (fun tr ->
         match Rdf.Triple.subject tr with
         | Rdf.Term.Iri i ->
             String.length (Rdf.Iri.to_string i) > 7
             && String.sub (Rdf.Iri.to_string i) 0 7 = "urn:sk:"
         | _ -> false)
       sk);
  Alcotest.check graph "roundtrip" g
    (Rdf.Skolem.unskolemize ~authority:"urn:sk:" sk)

let suites =
  [ ( "rdf.isomorphism",
      [ Alcotest.test_case "ground graphs" `Quick test_ground_graphs;
        Alcotest.test_case "bnode renaming" `Quick test_bnode_renaming;
        Alcotest.test_case "structure matters" `Quick test_structure_matters;
        Alcotest.test_case "cycle rotation" `Quick test_cycle_rotation;
        Alcotest.test_case "cycle vs chord" `Quick test_cycle_vs_path;
        Alcotest.test_case "indistinguishable bnodes" `Quick
          test_indistinguishable_bnodes;
        Alcotest.test_case "mixed ground and bnodes" `Quick
          test_mixed_ground_and_bnodes;
        Alcotest.test_case "turtle roundtrip" `Quick
          test_turtle_roundtrip_isomorphic ] );
    ( "rdf.skolem",
      [ Alcotest.test_case "skolemize/unskolemize" `Quick test_skolemize;
        Alcotest.test_case "custom authority" `Quick
          test_skolemize_custom_authority ] ) ]

(* Test entry point: aggregates the per-module suites. *)

let () =
  Alcotest.run "shex_derivatives"
    (Test_rdf.suites @ Test_columnar.suites @ Test_value_set.suites @ Test_rse.suites @ Test_rse_extra.suites @ Test_deriv.suites @ Test_deriv_extra.suites
   @ Test_backtrack.suites @ Test_semantics.suites @ Test_validate.suites
   @ Test_sorbe.suites @ Test_turtle.suites @ Test_turtle_extra.suites @ Test_shexc.suites @ Test_sparql.suites @ Test_workload.suites @ Test_strata.suites @ Test_json.suites @ Test_shape_map.suites @ Test_shexj.suites @ Test_sparql_parse.suites @ Test_open_shapes.suites @ Test_isomorphism.suites @ Test_canonical.suites @ Test_focus.suites @ Test_infer.suites @ Test_suite_runner.suites @ Test_props.suites @ Test_automaton.suites @ Test_telemetry.suites @ Test_explain.suites @ Test_parallel.suites @ Test_oracle.suites @ Test_incremental.suites @ Test_obs.suites @ Test_analysis.suites)

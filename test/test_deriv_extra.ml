(* Additional matcher tests: complement predicate sets, paper
   Example 6, open shapes through the SORBE fragment, and
   mixed-direction neighbourhoods. *)

open Util
open Shex

let foaf l = Rdf.Iri.of_string_exn ("http://xmlns.com/foaf/0.1/" ^ l)

(* Paper Example 6: foaf:age→xsd:integer ‖ (foaf:name→xsd:string)+ *)
let test_example6 () =
  let e =
    Rse.and_
      (Rse.arc_v (Value_set.Pred (foaf "age")) Value_set.xsd_integer)
      (Rse.plus (Rse.arc_v (Value_set.Pred (foaf "name")) Value_set.xsd_string))
  in
  let ok =
    graph_of
      [ triple (node "n") (foaf "age") (num 30);
        triple (node "n") (foaf "name") (Rdf.Term.str "N") ]
  in
  let missing_name = graph_of [ triple (node "n") (foaf "age") (num 30) ] in
  check_bool "conforms" true (Deriv.matches (node "n") ok e);
  check_bool "missing name" false (Deriv.matches (node "n") missing_name e)

let test_pred_compl_arc () =
  (* Arc over a complement predicate set: anything but a or b. *)
  let e =
    Rse.star
      (Rse.arc_v
         (Value_set.Pred_compl [ Value_set.Pred (ex "a"); Value_set.Pred (ex "b") ])
         Value_set.Obj_any)
  in
  check_bool "c-arc matches complement" true
    (Deriv.matches (node "n") (graph_of [ t3 "n" "c" (num 1) ]) e);
  check_bool "a-arc excluded" false
    (Deriv.matches (node "n") (graph_of [ t3 "n" "a" (num 1) ]) e)

let test_pred_in_arc () =
  let e =
    Rse.plus
      (Rse.arc_v
         (Value_set.Pred_in [ ex "a"; ex "b" ])
         Value_set.Obj_any)
  in
  check_bool "a or b" true
    (Deriv.matches (node "n")
       (graph_of [ t3 "n" "a" (num 1); t3 "n" "b" (num 2) ])
       e);
  check_bool "c rejected" false
    (Deriv.matches (node "n") (graph_of [ t3 "n" "c" (num 1) ]) e)

let test_pred_stem_arc () =
  let e =
    Rse.plus
      (Rse.arc_v (Value_set.Pred_stem "http://example.org/ns/")
         Value_set.Obj_any)
  in
  let g =
    Rdf.Graph.of_list
      [ Rdf.Triple.make (node "n")
          (Rdf.Iri.of_string_exn "http://example.org/ns/anything")
          (num 1) ]
  in
  check_bool "stem predicate" true (Deriv.matches (node "n") g e);
  check_bool "outside stem" false
    (Deriv.matches (node "n") (graph_of [ t3 "n" "x" (num 1) ]) e)

(* Open shapes stay in the SORBE fragment: the complement star merges
   cleanly with the explicit constraints, so the counting matcher
   handles open shapes too. *)
let test_open_shape_is_sorbe () =
  let closed =
    Rse.and_ (arc_num "a" [ 1 ]) (Rse.star (arc_num "b" [ 1; 2 ]))
  in
  let opened = Rse.open_up closed in
  match Sorbe.of_rse opened with
  | None -> Alcotest.fail "open shape should stay SORBE"
  | Some sorbe ->
      List.iter
        (fun (g, expected) ->
          check_bool "counting verdict" expected
            (Sorbe.matches (node "n") g sorbe);
          check_bool "deriv agrees" expected
            (Deriv.matches (node "n") g opened))
        [ (graph_of [ t3 "n" "a" (num 1) ], true);
          (graph_of [ t3 "n" "a" (num 1); t3 "n" "zz" (num 9) ], true);
          (graph_of [ t3 "n" "zz" (num 9) ], false) ]

(* Mixed directions: a node that is both employer and employee. *)
let test_bidirectional_shape () =
  let manages = Value_set.Pred (ex "manages") in
  let e =
    Rse.and_
      (Rse.plus (Rse.arc_v manages Value_set.Obj_any))
      (Rse.arc_v ~inverse:true manages Value_set.Obj_any)
  in
  let g =
    graph_of
      [ triple (node "mid") (ex "manages") (node "low");
        triple (node "top") (ex "manages") (node "mid") ]
  in
  check_bool "middle manager" true (Deriv.matches (node "mid") g e);
  check_bool "top has no boss" false (Deriv.matches (node "top") g e);
  check_bool "low manages nobody" false (Deriv.matches (node "low") g e)

(* A self-loop triple appears both as outgoing and incoming. *)
let test_self_loop_directions () =
  let p = Value_set.Pred (ex "p") in
  let e =
    Rse.and_
      (Rse.arc_v p Value_set.Obj_any)
      (Rse.arc_v ~inverse:true p Value_set.Obj_any)
  in
  let g = graph_of [ triple (node "n") (ex "p") (node "n") ] in
  check_bool "self-loop satisfies both directions" true
    (Deriv.matches (node "n") g e)

let suites =
  [ ( "deriv.extra",
      [ Alcotest.test_case "paper Example 6" `Quick test_example6;
        Alcotest.test_case "complement predicates" `Quick
          test_pred_compl_arc;
        Alcotest.test_case "predicate enumerations" `Quick test_pred_in_arc;
        Alcotest.test_case "predicate stems" `Quick test_pred_stem_arc;
        Alcotest.test_case "open shapes are SORBE" `Quick
          test_open_shape_is_sorbe;
        Alcotest.test_case "bidirectional shapes" `Quick
          test_bidirectional_shape;
        Alcotest.test_case "self-loop directions" `Quick
          test_self_loop_directions ] ) ]

(* Unit tests for the RDF substrate: IRIs, XSD datatypes, literals,
   terms, namespaces and graphs. *)

open Util

(* ------------------------------------------------------------------ *)
(* Iri                                                                *)
(* ------------------------------------------------------------------ *)

let test_iri_valid () =
  check_bool "http iri ok"
    true
    (Result.is_ok (Rdf.Iri.of_string "http://example.org/a"));
  check_bool "relative iri ok" true (Result.is_ok (Rdf.Iri.of_string "a/b"));
  check_bool "urn ok" true (Result.is_ok (Rdf.Iri.of_string "urn:isbn:123"))

let test_iri_invalid () =
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "reject %S" s) true
        (Result.is_error (Rdf.Iri.of_string s)))
    [ "http://example.org/a b"; "a<b"; "a>b"; "a\"b"; "a{b"; "a}b"; "a|b";
      "a\\b"; "a`b"; "a\x01b" ]

let test_iri_scheme () =
  let s x = Rdf.Iri.scheme (Rdf.Iri.of_string_exn x) in
  Alcotest.(check (option string)) "http" (Some "http") (s "http://e.org");
  Alcotest.(check (option string)) "urn" (Some "urn") (s "urn:x");
  Alcotest.(check (option string)) "relative" None (s "a/b");
  Alcotest.(check (option string)) "no scheme digits-first" None (s "1:x")

let test_iri_absolute () =
  check_bool "absolute" true
    (Rdf.Iri.is_absolute (Rdf.Iri.of_string_exn "http://e.org/x"));
  check_bool "relative" false (Rdf.Iri.is_absolute (Rdf.Iri.of_string_exn "x"))

let resolve base r =
  Rdf.Iri.to_string
    (Rdf.Iri.resolve ~base:(Rdf.Iri.of_string_exn base)
       (Rdf.Iri.of_string_exn r))

let test_iri_resolve_rfc3986 () =
  (* Selected normal examples from RFC 3986 §5.4.1 with
     base = http://a/b/c/d;p?q *)
  let base = "http://a/b/c/d;p?q" in
  let cases =
    [ ("g", "http://a/b/c/g");
      ("./g", "http://a/b/c/g");
      ("g/", "http://a/b/c/g/");
      ("/g", "http://a/g");
      ("//g", "http://g");
      ("?y", "http://a/b/c/d;p?y");
      ("g?y", "http://a/b/c/g?y");
      ("#s", "http://a/b/c/d;p?q#s");
      ("g#s", "http://a/b/c/g#s");
      (";x", "http://a/b/c/;x");
      ("", "http://a/b/c/d;p?q");
      (".", "http://a/b/c/");
      ("..", "http://a/b/");
      ("../g", "http://a/b/g");
      ("../..", "http://a/");
      ("../../g", "http://a/g");
      ("http://x/y", "http://x/y") ]
  in
  List.iter
    (fun (r, expected) -> check_string r expected (resolve base r))
    cases

let test_iri_resolve_dot_segments () =
  check_string "excess dotdot" "http://a/g" (resolve "http://a/b/c/d" "../../../g");
  check_string "trailing dot" "http://a/b/" (resolve "http://a/b/c" ".")

let iri_tests =
  [ Alcotest.test_case "valid IRIs accepted" `Quick test_iri_valid;
    Alcotest.test_case "invalid IRIs rejected" `Quick test_iri_invalid;
    Alcotest.test_case "scheme extraction" `Quick test_iri_scheme;
    Alcotest.test_case "absoluteness" `Quick test_iri_absolute;
    Alcotest.test_case "RFC 3986 resolution examples" `Quick
      test_iri_resolve_rfc3986;
    Alcotest.test_case "dot segment edge cases" `Quick
      test_iri_resolve_dot_segments ]

(* ------------------------------------------------------------------ *)
(* Xsd                                                                *)
(* ------------------------------------------------------------------ *)

let valid dt s = Rdf.Xsd.valid_lexical dt s

let test_xsd_integer () =
  List.iter
    (fun s -> check_bool s true (valid Rdf.Xsd.Integer s))
    [ "0"; "23"; "-7"; "+005"; "12345678901234" ];
  List.iter
    (fun s -> check_bool s false (valid Rdf.Xsd.Integer s))
    [ ""; "1.5"; "abc"; "+"; "-"; "1e3"; " 1"; "1 " ]

let test_xsd_decimal () =
  List.iter
    (fun s -> check_bool s true (valid Rdf.Xsd.Decimal s))
    [ "1.5"; "-0.5"; ".5"; "5."; "42"; "+3.14" ];
  List.iter
    (fun s -> check_bool s false (valid Rdf.Xsd.Decimal s))
    [ "1e3"; "INF"; "NaN"; "1.2.3"; "." ]

let test_xsd_double () =
  List.iter
    (fun s -> check_bool s true (valid Rdf.Xsd.Double s))
    [ "1.5"; "1e3"; "-1.2E-5"; "INF"; "-INF"; "NaN"; "42" ];
  List.iter
    (fun s -> check_bool s false (valid Rdf.Xsd.Double s))
    [ "e3"; "1e"; "1e1.5"; "inf" ]

let test_xsd_boolean () =
  List.iter
    (fun s -> check_bool s true (valid Rdf.Xsd.Boolean s))
    [ "true"; "false"; "1"; "0" ];
  List.iter
    (fun s -> check_bool s false (valid Rdf.Xsd.Boolean s))
    [ "True"; "FALSE"; "2"; "yes" ]

let test_xsd_bounded_ints () =
  check_bool "byte 127" true (valid Rdf.Xsd.Byte "127");
  check_bool "byte 128" false (valid Rdf.Xsd.Byte "128");
  check_bool "byte -128" true (valid Rdf.Xsd.Byte "-128");
  check_bool "short 32767" true (valid Rdf.Xsd.Short "32767");
  check_bool "short 32768" false (valid Rdf.Xsd.Short "32768");
  check_bool "int 2^31-1" true (valid Rdf.Xsd.Int "2147483647");
  check_bool "int 2^31" false (valid Rdf.Xsd.Int "2147483648");
  check_bool "unsignedByte 255" true (valid Rdf.Xsd.Unsigned_byte "255");
  check_bool "unsignedByte -1" false (valid Rdf.Xsd.Unsigned_byte "-1");
  check_bool "nonNegative 0" true (valid Rdf.Xsd.Non_negative_integer "0");
  check_bool "nonNegative -1" false
    (valid Rdf.Xsd.Non_negative_integer "-1");
  check_bool "positive 0" false (valid Rdf.Xsd.Positive_integer "0");
  check_bool "negative -1" true (valid Rdf.Xsd.Negative_integer "-1");
  check_bool "nonPositive 0" true (valid Rdf.Xsd.Non_positive_integer "0")

let test_xsd_dates () =
  check_bool "date" true (valid Rdf.Xsd.Date "2015-03-27");
  check_bool "date tz" true (valid Rdf.Xsd.Date "2015-03-27Z");
  check_bool "date offset" true (valid Rdf.Xsd.Date "2015-03-27+01:00");
  check_bool "bad date" false (valid Rdf.Xsd.Date "2015-3-27");
  check_bool "dateTime" true
    (valid Rdf.Xsd.Date_time "2015-03-27T12:30:00");
  check_bool "dateTime frac tz" true
    (valid Rdf.Xsd.Date_time "2015-03-27T12:30:00.5Z");
  check_bool "bad dateTime" false (valid Rdf.Xsd.Date_time "2015-03-27");
  check_bool "time" true (valid Rdf.Xsd.Time "23:59:59");
  check_bool "bad time" false (valid Rdf.Xsd.Time "24:00")

let test_xsd_iri_roundtrip () =
  List.iter
    (fun dt ->
      Alcotest.(check (option bool))
        (Rdf.Xsd.name dt) (Some true)
        (Option.map (fun dt' -> dt = dt') (Rdf.Xsd.of_iri (Rdf.Xsd.iri dt))))
    [ Rdf.Xsd.String; Rdf.Xsd.Integer; Rdf.Xsd.Double; Rdf.Xsd.Date;
      Rdf.Xsd.Lang_string; Rdf.Xsd.Unsigned_byte ]

let test_xsd_parse () =
  Alcotest.(check (option int)) "+005" (Some 5) (Rdf.Xsd.parse_integer "+005");
  Alcotest.(check (option int)) "-3" (Some (-3)) (Rdf.Xsd.parse_integer "-3");
  Alcotest.(check (option int)) "junk" None (Rdf.Xsd.parse_integer "x");
  check_bool "INF" true (Rdf.Xsd.parse_decimal "INF" = Some infinity);
  check_bool "1.5" true (Rdf.Xsd.parse_decimal "1.5" = Some 1.5)

let xsd_tests =
  [ Alcotest.test_case "integer lexical space" `Quick test_xsd_integer;
    Alcotest.test_case "decimal lexical space" `Quick test_xsd_decimal;
    Alcotest.test_case "double lexical space" `Quick test_xsd_double;
    Alcotest.test_case "boolean lexical space" `Quick test_xsd_boolean;
    Alcotest.test_case "bounded integer ranges" `Quick test_xsd_bounded_ints;
    Alcotest.test_case "date/time lexical spaces" `Quick test_xsd_dates;
    Alcotest.test_case "iri <-> primitive roundtrip" `Quick
      test_xsd_iri_roundtrip;
    Alcotest.test_case "value-space parsing" `Quick test_xsd_parse ]

(* ------------------------------------------------------------------ *)
(* Literal                                                            *)
(* ------------------------------------------------------------------ *)

let test_literal_plain () =
  let l = Rdf.Literal.string "John" in
  check_string "lexical" "John" (Rdf.Literal.lexical l);
  check_bool "datatype is xsd:string" true
    (Rdf.Iri.equal (Rdf.Literal.datatype l) (Rdf.Xsd.iri Rdf.Xsd.String));
  Alcotest.(check (option string)) "no lang" None (Rdf.Literal.lang l)

let test_literal_lang () =
  let l = Rdf.Literal.make ~lang:"EN" "hello" in
  Alcotest.(check (option string)) "lang lowercased" (Some "en")
    (Rdf.Literal.lang l);
  check_bool "datatype is rdf:langString" true
    (Rdf.Iri.equal (Rdf.Literal.datatype l)
       (Rdf.Xsd.iri Rdf.Xsd.Lang_string))

let test_literal_typed () =
  let l = Rdf.Literal.integer 23 in
  check_bool "has xsd:integer" true
    (Rdf.Literal.has_datatype l Rdf.Xsd.Integer);
  check_bool "not xsd:string" false
    (Rdf.Literal.has_datatype l Rdf.Xsd.String);
  Alcotest.(check (option int)) "as_int" (Some 23) (Rdf.Literal.as_int l)

let test_literal_malformed () =
  let bad = Rdf.Literal.typed Rdf.Xsd.Integer "twelve" in
  check_bool "ill-formed" false (Rdf.Literal.well_formed bad);
  check_bool "has_datatype demands well-formedness" false
    (Rdf.Literal.has_datatype bad Rdf.Xsd.Integer);
  Alcotest.(check (option int)) "no int value" None (Rdf.Literal.as_int bad)

let test_literal_equality () =
  check_bool "same" true
    (Rdf.Literal.equal (Rdf.Literal.integer 1) (Rdf.Literal.integer 1));
  check_bool "lexical differs" false
    (Rdf.Literal.equal (Rdf.Literal.integer 1)
       (Rdf.Literal.typed Rdf.Xsd.Integer "01"));
  check_bool "datatype differs" false
    (Rdf.Literal.equal (Rdf.Literal.string "1") (Rdf.Literal.integer 1));
  check_bool "lang case-insensitive" true
    (Rdf.Literal.equal
       (Rdf.Literal.make ~lang:"EN" "x")
       (Rdf.Literal.make ~lang:"en" "x"))

let test_literal_pp () =
  let show l = Format.asprintf "%a" Rdf.Literal.pp l in
  check_string "plain" "\"hi\"" (show (Rdf.Literal.string "hi"));
  check_string "escaped" "\"a\\\"b\\nc\"" (show (Rdf.Literal.string "a\"b\nc"));
  check_string "lang" "\"hi\"@en" (show (Rdf.Literal.make ~lang:"en" "hi"));
  check_string "typed"
    "\"23\"^^<http://www.w3.org/2001/XMLSchema#integer>"
    (show (Rdf.Literal.integer 23))

let literal_tests =
  [ Alcotest.test_case "plain literal" `Quick test_literal_plain;
    Alcotest.test_case "language-tagged literal" `Quick test_literal_lang;
    Alcotest.test_case "typed literal value" `Quick test_literal_typed;
    Alcotest.test_case "malformed lexical form" `Quick test_literal_malformed;
    Alcotest.test_case "term equality" `Quick test_literal_equality;
    Alcotest.test_case "printing" `Quick test_literal_pp ]

(* ------------------------------------------------------------------ *)
(* Term                                                               *)
(* ------------------------------------------------------------------ *)

let test_term_kinds () =
  check_bool "iri" true (Rdf.Term.is_iri (node "a"));
  check_bool "literal" true (Rdf.Term.is_literal (num 1));
  check_bool "bnode" true (Rdf.Term.is_bnode (Rdf.Term.bnode "b0"));
  check_bool "subject_ok iri" true (Rdf.Term.subject_ok (node "a"));
  check_bool "subject_ok bnode" true
    (Rdf.Term.subject_ok (Rdf.Term.bnode "b0"));
  check_bool "subject_ok literal" false (Rdf.Term.subject_ok (num 1));
  check_bool "predicate_ok bnode" false
    (Rdf.Term.predicate_ok (Rdf.Term.bnode "b0"))

let test_term_order () =
  (* IRIs < bnodes < literals *)
  check_bool "iri < bnode" true
    (Rdf.Term.compare (node "z") (Rdf.Term.bnode "a") < 0);
  check_bool "bnode < literal" true
    (Rdf.Term.compare (Rdf.Term.bnode "z") (num 0) < 0);
  check_bool "reflexive" true (Rdf.Term.compare (num 1) (num 1) = 0)

let term_tests =
  [ Alcotest.test_case "kind predicates" `Quick test_term_kinds;
    Alcotest.test_case "total order" `Quick test_term_order ]

(* ------------------------------------------------------------------ *)
(* Namespace                                                          *)
(* ------------------------------------------------------------------ *)

let test_ns_expand () =
  let ns = Rdf.Namespace.default in
  (match Rdf.Namespace.expand ns "foaf:age" with
  | Ok iri ->
      check_string "foaf expand" "http://xmlns.com/foaf/0.1/age"
        (Rdf.Iri.to_string iri)
  | Error e -> Alcotest.fail e);
  check_bool "unbound prefix" true
    (Result.is_error (Rdf.Namespace.expand ns "nope:x"));
  check_bool "no colon" true
    (Result.is_error (Rdf.Namespace.expand ns "plain"))

let test_ns_shrink () =
  let ns = Rdf.Namespace.default in
  Alcotest.(check (option string))
    "foaf shrink" (Some "foaf:age")
    (Rdf.Namespace.shrink ns (i "http://xmlns.com/foaf/0.1/age"));
  Alcotest.(check (option string))
    "unknown ns" None
    (Rdf.Namespace.shrink ns (i "http://other.net/x"));
  (* Local parts with unsafe characters must not shrink. *)
  Alcotest.(check (option string))
    "slash in local" None
    (Rdf.Namespace.shrink ns (i "http://xmlns.com/foaf/0.1/a/b"))

let test_ns_longest_match () =
  let ns =
    Rdf.Namespace.empty
    |> Rdf.Namespace.add "a" "http://e.org/"
    |> Rdf.Namespace.add "ab" "http://e.org/sub/"
  in
  Alcotest.(check (option string))
    "longest wins" (Some "ab:x")
    (Rdf.Namespace.shrink ns (i "http://e.org/sub/x"))

let test_ns_rebind () =
  let ns =
    Rdf.Namespace.default |> Rdf.Namespace.add "foaf" "http://new.org/"
  in
  Alcotest.(check (option string))
    "rebound" (Some "http://new.org/")
    (Rdf.Namespace.find "foaf" ns)

let namespace_tests =
  [ Alcotest.test_case "expand prefixed names" `Quick test_ns_expand;
    Alcotest.test_case "shrink IRIs" `Quick test_ns_shrink;
    Alcotest.test_case "longest namespace wins" `Quick test_ns_longest_match;
    Alcotest.test_case "rebinding replaces" `Quick test_ns_rebind ]

(* ------------------------------------------------------------------ *)
(* Triple and Graph                                                   *)
(* ------------------------------------------------------------------ *)

let test_triple_subject_constraint () =
  Alcotest.check_raises "literal subject rejected"
    (Invalid_argument
       "Triple.make: literal in subject position: \"1\"^^<http://www.w3.org/2001/XMLSchema#integer>")
    (fun () -> ignore (triple (num 1) (ex "p") (num 2)));
  check_bool "make_opt none" true
    (Rdf.Triple.make_opt (num 1) (ex "p") (num 2) = None)

let test_graph_basics () =
  let g = example8_graph in
  check_int "cardinal" 3 (Rdf.Graph.cardinal g);
  check_bool "mem" true (Rdf.Graph.mem (t3 "n" "a" (num 1)) g);
  check_bool "not mem" false (Rdf.Graph.mem (t3 "n" "a" (num 2)) g);
  let g' = Rdf.Graph.add (t3 "n" "a" (num 1)) g in
  check_int "idempotent add" 3 (Rdf.Graph.cardinal g');
  let g'' = Rdf.Graph.remove (t3 "n" "a" (num 1)) g in
  check_int "remove" 2 (Rdf.Graph.cardinal g'');
  check_int "remove absent is noop" 2
    (Rdf.Graph.cardinal (Rdf.Graph.remove (t3 "n" "a" (num 1)) g''))

let test_graph_union () =
  let g1 = graph_of [ t3 "n" "a" (num 1); t3 "n" "b" (num 1) ] in
  let g2 = graph_of [ t3 "n" "b" (num 1); t3 "n" "b" (num 2) ] in
  let u = Rdf.Graph.union g1 g2 in
  check_int "union dedups" 3 (Rdf.Graph.cardinal u);
  Alcotest.check graph "union commutes" u (Rdf.Graph.union g2 g1)

let test_graph_neighbourhood () =
  let g =
    graph_of
      [ t3 "n" "a" (num 1); t3 "n" "b" (num 2); t3 "m" "a" (num 1);
        t3 "m" "c" (node "n") ]
  in
  let sigma_n = Rdf.Graph.neighbourhood (node "n") g in
  check_int "sigma n" 2 (Rdf.Graph.cardinal sigma_n);
  let sigma_q = Rdf.Graph.neighbourhood (node "q") g in
  check_bool "absent node empty" true (Rdf.Graph.is_empty sigma_q);
  let incoming = Rdf.Graph.triples_with_object (node "n") g in
  check_int "incoming" 1 (Rdf.Graph.cardinal incoming)

let test_graph_objects_of () =
  let g = example8_graph in
  Alcotest.(check (list term))
    "objects of b" [ num 1; num 2 ]
    (Rdf.Graph.objects_of (node "n") (ex "b") g);
  Alcotest.(check (list term))
    "objects of absent" []
    (Rdf.Graph.objects_of (node "n") (ex "z") g)

let test_graph_decompositions () =
  (* Example 3: a 3-triple graph has 2^3 = 8 decompositions. *)
  let g = example8_graph in
  let ds = Rdf.Graph.decompositions g in
  check_int "2^3 pairs" 8 (List.length ds);
  List.iter
    (fun (g1, g2) ->
      Alcotest.check graph "g1 ⊕ g2 = g" g (Rdf.Graph.union g1 g2);
      check_bool "disjoint" true (Rdf.Graph.is_empty (Rdf.Graph.inter g1 g2)))
    ds;
  (* The empty graph decomposes into exactly ({},{}) *)
  check_int "empty" 1 (List.length (Rdf.Graph.decompositions Rdf.Graph.empty))

let test_graph_match_pattern () =
  let g = example8_graph in
  check_int "wildcard" 3 (List.length (Rdf.Graph.match_pattern g));
  check_int "by predicate" 2
    (List.length (Rdf.Graph.match_pattern ~p:(ex "b") g));
  check_int "by object" 2
    (List.length (Rdf.Graph.match_pattern ~o:(num 1) g));
  check_int "s+p+o" 1
    (List.length
       (Rdf.Graph.match_pattern ~s:(node "n") ~p:(ex "a") ~o:(num 1) g));
  check_int "no match" 0
    (List.length (Rdf.Graph.match_pattern ~p:(ex "z") g))

let test_graph_nodes () =
  let g = graph_of [ t3 "n" "a" (num 1); t3 "m" "b" (node "n") ] in
  check_int "nodes" 3 (List.length (Rdf.Graph.nodes g));
  check_int "subjects" 2 (List.length (Rdf.Graph.subjects g));
  check_int "predicates" 2 (List.length (Rdf.Graph.predicates g))

let test_graph_set_ops () =
  let g1 = graph_of [ t3 "n" "a" (num 1); t3 "n" "b" (num 1) ] in
  let g2 = graph_of [ t3 "n" "b" (num 1) ] in
  check_bool "subset" true (Rdf.Graph.subset g2 g1);
  check_bool "not subset" false (Rdf.Graph.subset g1 g2);
  Alcotest.check graph "diff" (graph_of [ t3 "n" "a" (num 1) ])
    (Rdf.Graph.diff g1 g2);
  Alcotest.check graph "inter" g2 (Rdf.Graph.inter g1 g2)

let graph_tests =
  [ Alcotest.test_case "literal subjects rejected" `Quick
      test_triple_subject_constraint;
    Alcotest.test_case "add/remove/mem" `Quick test_graph_basics;
    Alcotest.test_case "union (⊕)" `Quick test_graph_union;
    Alcotest.test_case "neighbourhood Σgn" `Quick test_graph_neighbourhood;
    Alcotest.test_case "objects_of" `Quick test_graph_objects_of;
    Alcotest.test_case "decompositions (Example 3)" `Quick
      test_graph_decompositions;
    Alcotest.test_case "pattern matching" `Quick test_graph_match_pattern;
    Alcotest.test_case "node/subject/predicate listing" `Quick
      test_graph_nodes;
    Alcotest.test_case "set operations" `Quick test_graph_set_ops ]

let suites =
  [ ("rdf.iri", iri_tests);
    ("rdf.xsd", xsd_tests);
    ("rdf.literal", literal_tests);
    ("rdf.term", term_tests);
    ("rdf.namespace", namespace_tests);
    ("rdf.graph", graph_tests) ]

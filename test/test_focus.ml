(* Tests for focus-node constraints on shapes. *)

open Util
open Shex

let foaf l = Rdf.Iri.of_string_exn ("http://xmlns.com/foaf/0.1/" ^ l)

let prelude =
  "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
   PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
   PREFIX ex: <http://example.org/>\n"

let parse src = Shexc.Shexc_parser.parse_schema_exn src

let graph =
  Rdf.Graph.of_list
    [ triple (node "john") (foaf "name") (Rdf.Term.str "John");
      Rdf.Triple.make (Rdf.Term.bnode "b0") (foaf "name")
        (Rdf.Term.str "Anonymous") ]

let test_api_focus () =
  let person = Label.of_string "Person" in
  let schema =
    Schema.make_shapes
      [ ( person,
          { Schema.focus = Some (Value_set.Obj_kind Value_set.Iri_kind);
            expr = Rse.arc_v (Value_set.Pred (foaf "name")) Value_set.xsd_string
          } ) ]
    |> Result.get_ok
  in
  let session = Validate.session schema graph in
  check_bool "IRI focus ok" true
    (Validate.check_bool session (node "john") person);
  check_bool "bnode focus fails" false
    (Validate.check_bool session (Rdf.Term.bnode "b0") person);
  (* And the failure reason mentions the node constraint. *)
  let outcome = Validate.check session (Rdf.Term.bnode "b0") person in
  match Validate.reason outcome with
  | Some msg ->
      check_bool "mentions node constraint" true
        (let has_sub sub s =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         has_sub "node constraint" msg)
  | None -> Alcotest.fail "expected a reason"

let test_shexc_focus_kind () =
  let s = parse (prelude ^ "<Person> IRI { foaf:name xsd:string }") in
  let person = Label.of_string "Person" in
  let session = Validate.session s graph in
  check_bool "iri ok" true (Validate.check_bool session (node "john") person);
  check_bool "bnode rejected" false
    (Validate.check_bool session (Rdf.Term.bnode "b0") person)

let test_shexc_focus_value_set () =
  let s =
    parse (prelude ^ "<Special> [ ex:john ex:jane ] OPEN {}")
  in
  let special = Label.of_string "Special" in
  let session = Validate.session s graph in
  check_bool "listed node" true
    (Validate.check_bool session (node "john") special);
  check_bool "unlisted node" false
    (Validate.check_bool session (node "other") special)

let test_shexc_focus_datatype () =
  (* A shape for literal nodes: focus must be an xsd:string. *)
  let s = parse (prelude ^ "<Name> xsd:string OPEN {}") in
  let name = Label.of_string "Name" in
  let g = graph in
  let session = Validate.session s g in
  check_bool "string literal" true
    (Validate.check_bool session (Rdf.Term.str "whatever") name);
  check_bool "integer literal" false
    (Validate.check_bool session (Rdf.Term.int 5) name);
  check_bool "iri" false (Validate.check_bool session (node "john") name)

let test_printer_roundtrip () =
  List.iter
    (fun src ->
      let s = parse src in
      let printed = Shexc.Shexc_printer.schema_to_string s in
      let s' = parse printed in
      let ok =
        List.for_all2
          (fun (l1, (sh1 : Schema.shape)) (l2, (sh2 : Schema.shape)) ->
            Label.equal l1 l2
            && Rse.equal sh1.Schema.expr sh2.Schema.expr
            && Option.equal Value_set.obj_equal sh1.Schema.focus
                 sh2.Schema.focus)
          (Schema.shapes s) (Schema.shapes s')
      in
      check_bool ("roundtrip:\n" ^ printed) true ok)
    [ prelude ^ "<Person> IRI { foaf:name xsd:string }";
      prelude ^ "<Name> xsd:string OPEN {}";
      prelude ^ "<Special> [ ex:john 42 ] { ex:p . }" ]

let test_shexj_roundtrip () =
  let s = parse (prelude ^ "<Person> IRI { foaf:name xsd:string }") in
  match Shexc.Shexj.import (Shexc.Shexj.export s) with
  | Error msg -> Alcotest.fail msg
  | Ok s' -> (
      match Schema.find_shape s' (Label.of_string "Person") with
      | Some { Schema.focus = Some (Value_set.Obj_kind Value_set.Iri_kind); _ }
        ->
          ()
      | _ -> Alcotest.fail "focus constraint lost in ShExJ roundtrip")

let test_refs_with_focus () =
  (* A reference check applies the target shape's focus constraint. *)
  let s =
    parse
      (prelude
      ^ "<Person> IRI { foaf:name xsd:string }\n\
         <Knower> { foaf:knows @<Person> }")
  in
  let g =
    Rdf.Graph.of_list
      [ triple (node "a") (foaf "knows") (node "john");
        triple (node "john") (foaf "name") (Rdf.Term.str "John");
        triple (node "b") (foaf "knows") (Rdf.Term.bnode "b0");
        Rdf.Triple.make (Rdf.Term.bnode "b0") (foaf "name")
          (Rdf.Term.str "Anon") ]
  in
  let knower = Label.of_string "Knower" in
  let session = Validate.session s g in
  check_bool "knows an IRI person" true
    (Validate.check_bool session (node "a") knower);
  check_bool "knows a bnode person" false
    (Validate.check_bool session (node "b") knower)

let suites =
  [ ( "focus",
      [ Alcotest.test_case "API focus constraint" `Quick test_api_focus;
        Alcotest.test_case "ShExC node kind" `Quick test_shexc_focus_kind;
        Alcotest.test_case "ShExC value set" `Quick
          test_shexc_focus_value_set;
        Alcotest.test_case "ShExC datatype" `Quick test_shexc_focus_datatype;
        Alcotest.test_case "printer roundtrip" `Quick test_printer_roundtrip;
        Alcotest.test_case "ShExJ roundtrip" `Quick test_shexj_roundtrip;
        Alcotest.test_case "references apply focus" `Quick
          test_refs_with_focus ] ) ]

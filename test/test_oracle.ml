(* Tests for the cross-engine differential oracle (lib/oracle):
   fixed-seed campaign smoke, replay of the checked-in counterexample
   corpus, and the repro-file format round-trip. *)

(* The compiled-DFA and domain arms only run when their backends are
   installed; install them here so the oracle exercises every arm. *)
let () = Shex_automaton.Engine.install ()
let () = Shex_parallel.Bulk.install ()

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --------------------------------------------------------------- *)
(* Corpus replay                                                    *)
(* --------------------------------------------------------------- *)

(* Every checked-in file is the shrunk repro of a divergence a
   campaign once found; replaying them keeps the fixes regressed. *)
let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".repro")
  |> List.sort String.compare
  |> List.map (Filename.concat "corpus")

let test_corpus_replays () =
  let files = corpus_files () in
  check_bool "corpus is not empty" true (files <> []);
  List.iter
    (fun path ->
      match Oracle.replay_file path with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" path e)
    files

(* --------------------------------------------------------------- *)
(* Campaign smoke                                                   *)
(* --------------------------------------------------------------- *)

let no_findings (summary : Oracle.summary) =
  List.iter
    (fun (f : Oracle.finding) ->
      Alcotest.failf "seed %d: %s" f.seed f.divergence.detail)
    summary.findings

let test_campaign_surface () =
  let summary = Oracle.run_campaign ~first_seed:0 ~count:60 () in
  check_int "seeds run" 60 summary.seeds_run;
  no_findings summary

let test_campaign_extended () =
  (* Extended mode generates predicate stems overlapping singleton
     predicates (the SORBE applicability edge) and object-set
     complements. *)
  let summary =
    Oracle.run_campaign ~mode:Workload.Rand_gen.Extended ~first_seed:0
      ~count:30 ()
  in
  no_findings summary

let test_seed_231_agrees () =
  (* The campaign seed that exposed the syntactic-vs-value literal
     comparison divergence (test/corpus/oracle-seed231.repro holds the
     shrunk form); the full workload must now agree across arms. *)
  let case = Workload.Rand_gen.case 231 in
  check_int "divergences" 0
    (List.length (Oracle.divergences case.schema case.graph case.associations))

let test_campaign_edits () =
  (* The incremental arm: seeded edit scripts, every verdict diffed
     against a from-scratch session after every edit. *)
  let summary = Oracle.run_edits_campaign ~first_seed:0 ~count:40 () in
  check_int "seeds run" 40 summary.seeds_run;
  List.iter
    (fun (f : Oracle.Edits.finding) ->
      Alcotest.failf "seed %d: %s" f.seed f.divergence.detail)
    summary.findings

(* --------------------------------------------------------------- *)
(* Repro documents                                                  *)
(* --------------------------------------------------------------- *)

let synthetic_finding (case : Workload.Rand_gen.case) =
  { Oracle.seed = case.seed;
    mode = case.mode;
    divergence =
      { Oracle.arm = "none"; kind = Oracle.Verdict; detail = "(synthetic)" };
    schema = case.schema;
    graph = case.graph;
    associations = case.associations;
    repro = None }

let test_repro_roundtrip () =
  (* Rendering a printable workload yields a self-contained document
     that parses back and replays clean. *)
  List.iter
    (fun seed ->
      let case = Workload.Rand_gen.case seed in
      let doc = Oracle.repro_to_string (synthetic_finding case) in
      match Oracle.replay_string doc with
      | Ok () -> ()
      | Error e -> Alcotest.failf "seed %d replay: %s\n%s" seed e doc)
    [ 0; 7; 42; 231 ]

let test_replay_malformed () =
  let expect_error name doc =
    match Oracle.replay_string doc with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s: expected an error" name
  in
  expect_error "no sections" "just some text\n";
  expect_error "bad schema" "%schema\n<S1> {\n%data\n%map\n<n>@<S1>\n";
  expect_error "empty map"
    "%schema\n<http://example.org/S1> {}\n%data\n%map\n";
  expect_error "edits line without sign"
    "%schema\n<http://example.org/S1> {}\n%data\n%map\n\
     <http://example.org/n0>@<http://example.org/S1>\n%edits\n\
     <http://example.org/n0> <http://example.org/p0> \
     <http://example.org/n1> .\n";
  expect_error "edits line not a triple"
    "%schema\n<http://example.org/S1> {}\n%data\n%map\n\
     <http://example.org/n0>@<http://example.org/S1>\n%edits\n\
     + not a triple\n"

let test_edits_repro_roundtrip () =
  (* A synthetic edits finding renders to a document whose %edits
     section parses back and replays clean. *)
  List.iter
    (fun seed ->
      let case = Workload.Rand_gen.case seed in
      let rng = Workload.Prng.create (seed lxor 0x5eed) in
      let script =
        Workload.Rand_gen.edit_script rng case.schema case.graph 8
      in
      let finding =
        { Oracle.Edits.seed = case.seed;
          divergence =
            { Oracle.arm = "none"; kind = Oracle.Verdict;
              detail = "(synthetic)" };
          schema = case.schema;
          graph = case.graph;
          script;
          associations = case.associations;
          repro = None }
      in
      let doc = Oracle.edits_repro_to_string finding in
      match Oracle.replay_string doc with
      | Ok () -> ()
      | Error e -> Alcotest.failf "seed %d edits replay: %s\n%s" seed e doc)
    [ 0; 7; 42 ]

let suites =
  [ ( "oracle",
      [ Alcotest.test_case "corpus replays clean" `Quick test_corpus_replays;
        Alcotest.test_case "surface campaign, seeds 0-59" `Slow
          test_campaign_surface;
        Alcotest.test_case "extended campaign, seeds 0-29" `Slow
          test_campaign_extended;
        Alcotest.test_case "seed 231 agrees after literal fix" `Quick
          test_seed_231_agrees;
        Alcotest.test_case "edits campaign, seeds 0-39" `Slow
          test_campaign_edits;
        Alcotest.test_case "repro document round-trip" `Quick
          test_repro_roundtrip;
        Alcotest.test_case "edits repro round-trip" `Quick
          test_edits_repro_roundtrip;
        Alcotest.test_case "malformed repro documents" `Quick
          test_replay_malformed ] ) ]

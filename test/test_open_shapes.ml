(* Tests for open shapes and EXTRA predicates (ShEx-compatibility
   extensions desugared into the core algebra). *)

open Util
open Shex

let foaf l = Rdf.Iri.of_string_exn ("http://xmlns.com/foaf/0.1/" ^ l)

let prelude =
  "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
   PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
   PREFIX ex: <http://example.org/>\n"

let parse src = Shexc.Shexc_parser.parse_schema_exn src

let base_graph =
  graph_of
    [ triple (node "john") (foaf "age") (num 23);
      triple (node "john") (foaf "name") (Rdf.Term.str "John") ]

let with_extra_triple =
  Rdf.Graph.add (triple (node "john") (ex "hobby") (Rdf.Term.str "chess"))
    base_graph

(* ------------------------------------------------------------------ *)
(* Core combinators                                                   *)
(* ------------------------------------------------------------------ *)

let closed_shape =
  Rse.and_
    (Rse.arc_v (Value_set.Pred (foaf "age")) Value_set.xsd_integer)
    (Rse.arc_v (Value_set.Pred (foaf "name")) Value_set.xsd_string)

let test_closed_rejects_extra () =
  check_bool "closed ok on exact" true
    (Deriv.matches (node "john") base_graph closed_shape);
  check_bool "closed rejects extra" false
    (Deriv.matches (node "john") with_extra_triple closed_shape)

let test_open_up_tolerates_unmentioned () =
  let open_shape = Rse.open_up closed_shape in
  check_bool "open ok on exact" true
    (Deriv.matches (node "john") base_graph open_shape);
  check_bool "open tolerates extra predicate" true
    (Deriv.matches (node "john") with_extra_triple open_shape);
  (* Mentioned predicates are still constrained: a second age fails. *)
  let two_ages =
    Rdf.Graph.add (triple (node "john") (foaf "age") (num 99)) base_graph
  in
  check_bool "open still counts mentioned arcs" false
    (Deriv.matches (node "john") two_ages open_shape);
  (* And a bad value on a mentioned predicate still fails. *)
  let bad_age =
    graph_of
      [ triple (node "john") (foaf "age") (Rdf.Term.str "old");
        triple (node "john") (foaf "name") (Rdf.Term.str "John") ]
  in
  check_bool "open still checks values" false
    (Deriv.matches (node "john") bad_age open_shape)

let test_with_extra () =
  let shape =
    Rse.with_extra (Value_set.Pred_in [ foaf "age" ]) closed_shape
  in
  (* EXTRA foaf:age: a second age arc with any value is tolerated... *)
  let two_ages =
    Rdf.Graph.add
      (triple (node "john") (foaf "age") (Rdf.Term.str "old"))
      base_graph
  in
  check_bool "extra age tolerated" true
    (Deriv.matches (node "john") two_ages shape);
  (* ...but unrelated predicates are still rejected. *)
  check_bool "other extras rejected" false
    (Deriv.matches (node "john") with_extra_triple shape)

let test_open_backtrack_agrees () =
  let open_shape = Rse.open_up closed_shape in
  List.iter
    (fun g ->
      check_bool "engines agree" true
        (Bool.equal
           (Deriv.matches (node "john") g open_shape)
           (Backtrack.matches (node "john") g open_shape)))
    [ base_graph; with_extra_triple ]

let test_open_with_empty_shape () =
  (* An open empty shape accepts anything. *)
  let open_eps = Rse.open_up Rse.epsilon in
  check_bool "accepts empty" true
    (Deriv.matches (node "john") Rdf.Graph.empty open_eps);
  check_bool "accepts anything" true
    (Deriv.matches (node "john") with_extra_triple open_eps)

(* ------------------------------------------------------------------ *)
(* Surface syntax                                                     *)
(* ------------------------------------------------------------------ *)

let test_shexc_open () =
  let s =
    parse
      (prelude
      ^ "<T> OPEN { foaf:age xsd:integer , foaf:name xsd:string }")
  in
  let t = Label.of_string "T" in
  let session g = Validate.session s g in
  check_bool "open shape tolerates extras" true
    (Validate.check_bool (session with_extra_triple) (node "john") t);
  check_bool "closed sibling would not" true
    (let s_closed =
       parse
         (prelude ^ "<T> { foaf:age xsd:integer , foaf:name xsd:string }")
     in
     not
       (Validate.check_bool
          (Validate.session s_closed with_extra_triple)
          (node "john") t))

let test_shexc_closed_keyword () =
  (* CLOSED is accepted and is the default. *)
  let s =
    parse (prelude ^ "<T> CLOSED { foaf:age xsd:integer , foaf:name xsd:string }")
  in
  check_bool "closed keyword" false
    (Validate.check_bool
       (Validate.session s with_extra_triple)
       (node "john")
       (Label.of_string "T"))

let test_shexc_extra () =
  let s =
    parse
      (prelude
      ^ "<T> EXTRA foaf:age { foaf:age xsd:integer , foaf:name xsd:string }")
  in
  let two_ages =
    Rdf.Graph.add
      (triple (node "john") (foaf "age") (Rdf.Term.str "old"))
      base_graph
  in
  check_bool "extra age" true
    (Validate.check_bool (Validate.session s two_ages) (node "john")
       (Label.of_string "T"))

let test_shexc_extra_requires_predicate () =
  check_bool "EXTRA without predicate" true
    (Result.is_error
       (Shexc.Shexc_parser.parse_schema (prelude ^ "<T> EXTRA { ex:p . }")))

let test_printer_roundtrip_open () =
  let s =
    parse (prelude ^ "<T> OPEN { foaf:age xsd:integer }")
  in
  let printed = Shexc.Shexc_printer.schema_to_string s in
  let has_sub sub str =
    let n = String.length str and m = String.length sub in
    let rec go i = i + m <= n && (String.sub str i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "prints OPEN" true (has_sub "OPEN" printed);
  let s' = parse printed in
  let rules_equal =
    List.for_all2
      (fun (l1, e1) (l2, e2) -> Label.equal l1 l2 && Rse.equal e1 e2)
      (Schema.rules s) (Schema.rules s')
  in
  check_bool "roundtrip" true rules_equal

let test_printer_roundtrip_extra () =
  let s =
    parse
      (prelude ^ "<T> EXTRA foaf:age { foaf:age xsd:integer }")
  in
  let printed = Shexc.Shexc_printer.schema_to_string s in
  let s' = parse printed in
  let rules_equal =
    List.for_all2
      (fun (l1, e1) (l2, e2) -> Label.equal l1 l2 && Rse.equal e1 e2)
      (Schema.rules s) (Schema.rules s')
  in
  check_bool ("roundtrip:\n" ^ printed) true rules_equal

let suites =
  [ ( "open_shapes",
      [ Alcotest.test_case "closed rejects extras" `Quick
          test_closed_rejects_extra;
        Alcotest.test_case "open_up tolerates unmentioned" `Quick
          test_open_up_tolerates_unmentioned;
        Alcotest.test_case "with_extra" `Quick test_with_extra;
        Alcotest.test_case "engines agree" `Quick test_open_backtrack_agrees;
        Alcotest.test_case "open empty shape" `Quick
          test_open_with_empty_shape;
        Alcotest.test_case "ShExC OPEN" `Quick test_shexc_open;
        Alcotest.test_case "ShExC CLOSED" `Quick test_shexc_closed_keyword;
        Alcotest.test_case "ShExC EXTRA" `Quick test_shexc_extra;
        Alcotest.test_case "EXTRA needs predicates" `Quick
          test_shexc_extra_requires_predicate;
        Alcotest.test_case "printer roundtrip OPEN" `Quick
          test_printer_roundtrip_open;
        Alcotest.test_case "printer roundtrip EXTRA" `Quick
          test_printer_roundtrip_extra ] ) ]

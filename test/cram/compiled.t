The compiled engine (hash-consed lazy derivative automata) on the
repository's data/ example — same verdicts as the default engine:

  $ shex-validate --schema ../../data/person.shex \
  >   --data ../../data/people.ttl --engine compiled
  <http://example.org/bob> ↦ {<Person>}
  <http://example.org/john> ↦ {<Person>}

A single-node check, with the cache counters on stderr.  The Person
shape compiles to 3 atoms; checking john touches only a few states and
already reuses transitions:

  $ shex-validate --schema ../../data/person.shex \
  >   --data ../../data/people.ttl \
  >   --node http://example.org/john --shape Person \
  >   --engine compiled --engine-stats
  engine cache: 3 atoms, 3 states, 3 symbols, 12 steps (8 hits, 4 misses, 66.7% cached)
  PASS <http://example.org/john>@<Person>
  1 conformant, 0 nonconformant

Whole-graph validation shares one transition table across all nodes,
so most steps are answered from cache:

  $ shex-validate --schema ../../data/person.shex \
  >   --data ../../data/people.ttl \
  >   --engine compiled --engine-stats --quiet
  engine cache: 3 atoms, 4 states, 3 symbols, 17 steps (12 hits, 5 misses, 70.6% cached)

Nonconformance still explains itself (the reason comes from the
derivative trace, independent of the matching engine):

  $ shex-validate --schema ../../data/person.shex \
  >   --data ../../data/people.ttl \
  >   --node http://example.org/mary --shape Person --engine compiled
  FAIL <http://example.org/mary>@<Person>
       triple <http://example.org/mary> <http://xmlns.com/foaf/0.1/age> "65"^^<http://www.w3.org/2001/XMLSchema#integer> . matches no arc of the remaining expression (it reduces the expression to ∅)
  0 conformant, 1 nonconformant
  [1]

An unknown engine is a usage error:

  $ shex-validate --schema ../../data/person.shex \
  >   --data ../../data/people.ttl --engine nope
  shex-validate: option '--engine': invalid value 'nope', expected one of
                 'derivatives', 'backtracking', 'auto' or 'compiled'
  Usage: shex-validate [OPTION]…
  Try 'shex-validate --help' for more information.
  [124]

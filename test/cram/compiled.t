The compiled engine (hash-consed lazy derivative automata) on the
repository's data/ example — same verdicts as the default engine:

  $ shex-validate --schema ../../data/person.shex \
  >   --data ../../data/people.ttl --engine compiled
  <http://example.org/bob> ↦ {<Person>}
  <http://example.org/john> ↦ {<Person>}

A single-node check, with the unified telemetry snapshot on stderr:
the automaton cache counters are folded into the same registry as the
engine counters (--engine-stats and --metrics are one code path).
The Person shape compiles to 3 atoms; checking john touches only a
few states and already reuses transitions (8 hits, 4 misses):

  $ shex-validate --schema ../../data/person.shex \
  >   --data ../../data/people.ttl \
  >   --node http://example.org/john --shape Person \
  >   --engine compiled --engine-stats 2>&1 | grep -v "size_before\|size_after"
  # TYPE shex_backtrack_branches counter
  shex_backtrack_branches 0
  # TYPE shex_backtrack_decompositions counter
  shex_backtrack_decompositions 0
  # TYPE shex_compiled_atoms gauge
  shex_compiled_atoms 3
  # TYPE shex_compiled_hits counter
  shex_compiled_hits 8
  # TYPE shex_compiled_misses counter
  shex_compiled_misses 4
  # TYPE shex_compiled_states gauge
  shex_compiled_states 3
  # TYPE shex_compiled_symbols gauge
  shex_compiled_symbols 3
  # TYPE shex_deriv_steps counter
  shex_deriv_steps 0
  # TYPE shex_fixpoint_demands counter
  shex_fixpoint_demands 2
  # TYPE shex_fixpoint_flips counter
  shex_fixpoint_flips 0
  # TYPE shex_fixpoint_iterations counter
  shex_fixpoint_iterations 2
  # TYPE shex_sorbe_counter_updates counter
  shex_sorbe_counter_updates 0
  # TYPE shex_sorbe_matches counter
  shex_sorbe_matches 0
  PASS <http://example.org/john>@<Person>
  1 conformant, 0 nonconformant

Whole-graph validation shares one transition table across all nodes,
so most steps are answered from cache (12 hits, 5 misses):

  $ shex-validate --schema ../../data/person.shex \
  >   --data ../../data/people.ttl \
  >   --engine compiled --engine-stats --quiet 2>&1 | grep compiled
  # TYPE shex_compiled_atoms gauge
  shex_compiled_atoms 3
  # TYPE shex_compiled_hits counter
  shex_compiled_hits 12
  # TYPE shex_compiled_misses counter
  shex_compiled_misses 5
  # TYPE shex_compiled_states gauge
  shex_compiled_states 4
  # TYPE shex_compiled_symbols gauge
  shex_compiled_symbols 3

Nonconformance still explains itself (the reason comes from the
derivative trace, independent of the matching engine):

  $ shex-validate --schema ../../data/person.shex \
  >   --data ../../data/people.ttl \
  >   --node http://example.org/mary --shape Person --engine compiled
  FAIL <http://example.org/mary>@<Person>
       triple <http://example.org/mary> <http://xmlns.com/foaf/0.1/age> "65"^^<http://www.w3.org/2001/XMLSchema#integer> . matches no arc of the remaining expression (it reduces the expression to ∅)
  0 conformant, 1 nonconformant
  [1]

An unknown engine is a usage error:

  $ shex-validate --schema ../../data/person.shex \
  >   --data ../../data/people.ttl --engine nope
  shex-validate: option '--engine': invalid value 'nope', expected one of
                 'derivatives', 'backtracking', 'auto' or 'compiled'
  Usage: shex-validate [OPTION]…
  Try 'shex-validate --help' for more information.
  [124]

The network observability plane of the --serve daemon: the HTTP
scrape surface (--obs-port), the flight-recorder journal (--journal),
and the offline replay analyzer (--journal-replay).  Same fixture as
serve.t:

  $ cat > person.shex <<'SCHEMA'
  > PREFIX foaf: <http://xmlns.com/foaf/0.1/>
  > PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
  > <Person> {
  >   foaf:age xsd:integer
  >   , foaf:name xsd:string+
  >   , foaf:knows @<Person>*
  > }
  > SCHEMA

  $ cat > people.ttl <<'DATA'
  > @prefix foaf: <http://xmlns.com/foaf/0.1/> .
  > @prefix : <http://example.org/> .
  > :john foaf:age 23; foaf:name "John"; foaf:knows :bob .
  > :bob foaf:age 34; foaf:name "Bob", "Robert" .
  > :mary foaf:age 50, 65 .
  > DATA

Boot the daemon with the obs plane armed: port 0 lets the kernel pick
(the bound address is announced on stderr), interval 0 makes the SLI
window and journal tick after every loop wake (deterministic, no
timers), and stdin is a held-open fifo so the daemon outlives this
shell's commands.  --slow-ms 0 arms the slowlog so we can watch a
slow check spill into the journal with its request id:

  $ mkfifo ctl
  $ shex-validate --serve --schema person.shex --data people.ttl \
  >   --obs-port 0 --obs-interval 0 --journal j.jsonl --slow-ms 0 \
  >   <ctl >replies.log 2>err.log & DPID=$!
  $ exec 9>ctl
  $ PORT=''; for i in $(seq 1 150); do \
  >   PORT=$(sed -n 's#.*127\.0\.0\.1:##p' err.log); \
  >   [ -n "$PORT" ] && break; sleep 0.1; done
  $ test -n "$PORT" && echo bound
  bound

Liveness and readiness (a schema was preloaded, so /ready is 200;
--obs-get is the binary's built-in GET client, exit 1 on non-2xx):

  $ shex-validate --obs-get "http://127.0.0.1:$PORT/health"
  ok
  $ shex-validate --obs-get "http://127.0.0.1:$PORT/ready"
  ready

Serve one protocol command through the fifo — mary is
non-conformant, and with threshold 0 her check lands in the slowlog
carrying this request's id:

  $ echo '{"cmd":"query","node":"http://example.org/mary","shape":"Person"}' >&9
  $ for i in $(seq 1 150); do grep -q request replies.log && break; sleep 0.1; done
  $ cat replies.log
  {"ok":true,"node":"<http://example.org/mary>","shape":"Person","conformant":false,"request":1}

The Prometheus exposition over TCP: protocol requests (not scrapes)
count into shex_serve_requests, and once the window holds two samples
the derived SLI gauges — per-counter _rate and the windowed latency
quantiles with their factor-of-two bucket bound — ride along:

  $ shex-validate --obs-get "http://127.0.0.1:$PORT/metrics" > exposition.txt
  $ grep -E '^shex_serve_requests ' exposition.txt
  shex_serve_requests 1
  $ grep -E '^shex_serve_errors ' exposition.txt
  shex_serve_errors 0
  $ grep -c '^shex_serve_latency_us_bucket' exposition.txt > /dev/null && echo histogram-exposed
  histogram-exposed
  $ grep -cE '^shex_serve_requests_rate ' exposition.txt
  1
  $ grep -cE '^shex_serve_latency_us_p(50|99) ' exposition.txt
  2

/slowlog and /stats answer JSON; the slow entry is correlated to
request 1:

  $ shex-validate --obs-get "http://127.0.0.1:$PORT/slowlog" | grep -o '"request":1'
  "request":1
  $ shex-validate --obs-get "http://127.0.0.1:$PORT/stats" | grep -o '"requests":1'
  "requests":1

Unknown paths get a 404 (and exit 1 from the client):

  $ shex-validate --obs-get "http://127.0.0.1:$PORT/nope"
  not found
  [1]

Graceful shutdown: SIGTERM makes the daemon write a final tick and a
shutdown record, fsync the journal, close the socket, and exit 0:

  $ kill -TERM $DPID
  $ wait $DPID
  $ grep -c '"kind":"start"' j.jsonl
  1
  $ grep -q '"kind":"slow"' j.jsonl && echo slow-spilled
  slow-spilled
  $ grep -o '"kind":"shutdown","ts":[0-9.]*,"reason":"sigterm"' j.jsonl | sed 's/"ts":[0-9.]*/"ts":_/'
  "kind":"shutdown","ts":_,"reason":"sigterm"

Offline replay reconstructs the rate/latency series from the
journal's cumulative ticks (timestamps and rates are wall-clock
dependent, so only structure is checked here):

  $ shex-validate --journal-replay j.jsonl | grep '^journal:'
  journal: j.jsonl
  $ shex-validate --journal-replay j.jsonl | grep '^shutdown:'
  shutdown: sigterm
  $ shex-validate --journal-replay j.jsonl | grep -c 'p50_us'
  1
  $ shex-validate --journal-replay j.jsonl --json | grep -o '"shutdown": "sigterm"'
  "shutdown": "sigterm"

Replaying a journal that does not exist is a plain error:

  $ shex-validate --journal-replay does-not-exist.jsonl
  error: journal not found: does-not-exist.jsonl
  [2]

The --explain mode replays the derivative walk behind every verdict —
the tables of the paper's Examples 8-12 — and attaches a structured
blame set to each failure.

Example 5's shape e = a→{1} ‖ (b→{1,2})* over the ex: namespace:

  $ cat > example5.shex <<'SCHEMA'
  > PREFIX ex: <http://example.org/>
  > <S> { ex:a [ 1 ] , ex:b [ 1 2 ] * }
  > SCHEMA

Example 8's graph {⟨n,a,1⟩, ⟨n,b,1⟩, ⟨n,b,2⟩} matches (Example 11):
each step consumes one triple and shows the residual, and the walk
ends with the nullability check at exhaustion:

  $ cat > example8.ttl <<'DATA'
  > @prefix ex: <http://example.org/> .
  > ex:n ex:a 1 ; ex:b 1 , 2 .
  > DATA

  $ shex-validate --schema example5.shex --data example8.ttl \
  >   --node http://example.org/n --shape S --explain --quiet
  check <http://example.org/n>@<S>
    <http://example.org/a>→"1"^^<http://www.w3.org/2001/XMLSchema#integer> ‖ (<http://example.org/b>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>})* ≃ {<http://example.org/n> <http://example.org/a> "1"^^<http://www.w3.org/2001/XMLSchema#integer> ., <http://example.org/n> <http://example.org/b> "1"^^<http://www.w3.org/2001/XMLSchema#integer> ., <http://example.org/n> <http://example.org/b> "2"^^<http://www.w3.org/2001/XMLSchema#integer> .}
    ⇔ (<http://example.org/b>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>})* ≃ {<http://example.org/n> <http://example.org/b> "1"^^<http://www.w3.org/2001/XMLSchema#integer> ., <http://example.org/n> <http://example.org/b> "2"^^<http://www.w3.org/2001/XMLSchema#integer> .}
    ⇔ (<http://example.org/b>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>})* ≃ {<http://example.org/n> <http://example.org/b> "2"^^<http://www.w3.org/2001/XMLSchema#integer> .}
    ⇔ (<http://example.org/b>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>})* ≃ {}
    ⇔ ν((<http://example.org/b>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>})*) ⇔ true
    PASS

Example 3: matching an And must decompose the neighbourhood bag into
one sub-bag per conjunct, and a singleton bag {⟨n,a,1⟩} already has
two ordered decompositions — ({⟨n,a,1⟩}, {}) and ({}, {⟨n,a,1⟩}) —
which the Fig. 1 backtracking engine enumerates.  The derivative walk
decides the same verdict in one deterministic pass, no decomposition
ever materialised:

  $ cat > single.ttl <<'DATA'
  > @prefix ex: <http://example.org/> .
  > ex:n ex:a 1 .
  > DATA

  $ shex-validate --schema example5.shex --data single.ttl \
  >   --node http://example.org/n --shape S --engine backtracking --quiet

  $ shex-validate --schema example5.shex --data single.ttl \
  >   --node http://example.org/n --shape S --explain --quiet
  check <http://example.org/n>@<S>
    <http://example.org/a>→"1"^^<http://www.w3.org/2001/XMLSchema#integer> ‖ (<http://example.org/b>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>})* ≃ {<http://example.org/n> <http://example.org/a> "1"^^<http://www.w3.org/2001/XMLSchema#integer> .}
    ⇔ (<http://example.org/b>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>})* ≃ {}
    ⇔ ν((<http://example.org/b>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>})*) ⇔ true
    PASS

Example 12's graph {⟨n,a,1⟩, ⟨n,a,2⟩, ⟨n,b,1⟩} does not match: the
second a-triple drives the residual to ∅, and the blame set names it:

  $ cat > example12.ttl <<'DATA'
  > @prefix ex: <http://example.org/> .
  > ex:n ex:a 1 , 2 ; ex:b 1 .
  > DATA

  $ shex-validate --schema example5.shex --data example12.ttl \
  >   --node http://example.org/n --shape S --explain --quiet
  check <http://example.org/n>@<S>
    <http://example.org/a>→"1"^^<http://www.w3.org/2001/XMLSchema#integer> ‖ (<http://example.org/b>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>})* ≃ {<http://example.org/n> <http://example.org/a> "1"^^<http://www.w3.org/2001/XMLSchema#integer> ., <http://example.org/n> <http://example.org/a> "2"^^<http://www.w3.org/2001/XMLSchema#integer> ., <http://example.org/n> <http://example.org/b> "1"^^<http://www.w3.org/2001/XMLSchema#integer> .}
    ⇔ (<http://example.org/b>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>})* ≃ {<http://example.org/n> <http://example.org/a> "2"^^<http://www.w3.org/2001/XMLSchema#integer> ., <http://example.org/n> <http://example.org/b> "1"^^<http://www.w3.org/2001/XMLSchema#integer> .}
    ⇔ ∅ ≃ {<http://example.org/n> <http://example.org/b> "1"^^<http://www.w3.org/2001/XMLSchema#integer> .}
    ⇔ ∅ ≃ {}
    ⇔ ν(∅) ⇔ false
    FAIL: triple <http://example.org/n> <http://example.org/a> "2"^^<http://www.w3.org/2001/XMLSchema#integer> . matches no arc of the remaining expression (it reduces the expression to ∅)
  [1]

Example 10's balance checker (a→{1,2} ‖ b→{1,2})*: consuming an a-arc
leaves a pending b-obligation, so the intermediate expression grows
before shrinking back — visible step by step in the walk:

  $ cat > example10.shex <<'SCHEMA'
  > PREFIX ex: <http://example.org/>
  > <S> { ( ex:a [ 1 2 ] , ex:b [ 1 2 ] )* }
  > SCHEMA

  $ cat > balanced.ttl <<'DATA'
  > @prefix ex: <http://example.org/> .
  > ex:n ex:a 1 ; ex:b 2 .
  > DATA

  $ shex-validate --schema example10.shex --data balanced.ttl \
  >   --node http://example.org/n --shape S --explain --quiet
  check <http://example.org/n>@<S>
    (<http://example.org/a>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>} ‖ <http://example.org/b>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>})* ≃ {<http://example.org/n> <http://example.org/a> "1"^^<http://www.w3.org/2001/XMLSchema#integer> ., <http://example.org/n> <http://example.org/b> "2"^^<http://www.w3.org/2001/XMLSchema#integer> .}
    ⇔ <http://example.org/b>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>} ‖ (<http://example.org/a>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>} ‖ <http://example.org/b>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>})* ≃ {<http://example.org/n> <http://example.org/b> "2"^^<http://www.w3.org/2001/XMLSchema#integer> .}
    ⇔ (<http://example.org/a>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>} ‖ <http://example.org/b>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>})* ‖ (ε | <http://example.org/a>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>} ‖ <http://example.org/b>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>}) ≃ {}
    ⇔ ν((<http://example.org/a>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>} ‖ <http://example.org/b>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>})* ‖ (ε | <http://example.org/a>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>} ‖ <http://example.org/b>→{"1"^^<http://www.w3.org/2001/XMLSchema#integer>, "2"^^<http://www.w3.org/2001/XMLSchema#integer>})) ⇔ true
    PASS

When every triple is consumed but obligations remain open, the blame
set lists the missing arcs instead:

  $ cat > pair.shex <<'SCHEMA'
  > PREFIX ex: <http://example.org/>
  > <S> { ex:a [ 1 ] , ex:b [ 1 ] }
  > SCHEMA

  $ cat > a_only.ttl <<'DATA'
  > @prefix ex: <http://example.org/> .
  > ex:n ex:a 1 .
  > DATA

  $ shex-validate --schema pair.shex --data a_only.ttl \
  >   --node http://example.org/n --shape S --explain --quiet
  check <http://example.org/n>@<S>
    <http://example.org/a>→"1"^^<http://www.w3.org/2001/XMLSchema#integer> ‖ <http://example.org/b>→"1"^^<http://www.w3.org/2001/XMLSchema#integer> ≃ {<http://example.org/n> <http://example.org/a> "1"^^<http://www.w3.org/2001/XMLSchema#integer> .}
    ⇔ <http://example.org/b>→"1"^^<http://www.w3.org/2001/XMLSchema#integer> ≃ {}
    ⇔ ν(<http://example.org/b>→"1"^^<http://www.w3.org/2001/XMLSchema#integer>) ⇔ false
    FAIL: all triples were consumed but obligations remain: the residual expression <http://example.org/b>→"1"^^<http://www.w3.org/2001/XMLSchema#integer> is not nullable (some required arc is missing); missing: <http://example.org/b>→"1"^^<http://www.w3.org/2001/XMLSchema#integer>
  [1]

Recursive shapes: when a triple is unmatchable because the node at its
far end fails the referenced shape, the blame set names both the focus
node and the refuted hypothesis:

  $ cat > person.shex <<'SCHEMA'
  > PREFIX foaf: <http://xmlns.com/foaf/0.1/>
  > PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
  > <Person> { foaf:age xsd:integer , foaf:knows @<Person> * }
  > SCHEMA

  $ cat > friends.ttl <<'DATA'
  > @prefix foaf: <http://xmlns.com/foaf/0.1/> .
  > @prefix : <http://example.org/> .
  > :john foaf:age 23 ; foaf:knows :bob .
  > :bob foaf:knows :john .
  > DATA

  $ shex-validate --schema person.shex --data friends.ttl \
  >   --node http://example.org/john --shape Person
  FAIL <http://example.org/john>@<Person>
       triple <http://example.org/john> <http://xmlns.com/foaf/0.1/knows> <http://example.org/bob> . matches no arc of the remaining expression (it reduces the expression to ∅); node <http://example.org/bob> does not conform to the referenced shape <Person>
  0 conformant, 1 nonconformant
  [1]

A shape map may demand a label the schema has no rule for; the report
names the focus node, not just the label:

  $ shex-validate --schema person.shex --data friends.ttl \
  >   --shape-map 'ex:john@<Ghost>'
  FAIL <http://example.org/john>@<Ghost>
       node <http://example.org/john>: no rule for shape label <Ghost>
  0 conformant, 1 nonconformant
  [1]

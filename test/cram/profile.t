Per-shape cost attribution on the paper's Examples 1-2 fixture (same
setup as validate.t):

  $ cat > person.shex <<'SCHEMA'
  > PREFIX foaf: <http://xmlns.com/foaf/0.1/>
  > PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
  > <Person> {
  >   foaf:age xsd:integer
  >   , foaf:name xsd:string+
  >   , foaf:knows @<Person>*
  > }
  > SCHEMA

  $ cat > people.ttl <<'DATA'
  > @prefix foaf: <http://xmlns.com/foaf/0.1/> .
  > @prefix : <http://example.org/> .
  > :john foaf:age 23; foaf:name "John"; foaf:knows :bob .
  > :bob foaf:age 34; foaf:name "Bob", "Robert" .
  > :mary foaf:age 50, 65 .
  > DATA

--profile prints the hottest-shapes / hottest-focus-nodes tables on
stderr after validation.  Both tables sort by measured wall time, so
the goldens here check a single-node run (multi-node ordering is
covered deterministically by the unit tests); mary's failing check
costs exactly two derivative steps and one refuted fixpoint
hypothesis, and self-cost accounting charges every step to a shape —
the attribution line is structurally 100%.  Wall times are normalised
away; the verdict drives the exit status as usual but sed ends the
pipeline, so no [1] here:

  $ shex-validate --schema person.shex --data people.ttl \
  >   --node http://example.org/mary --shape Person --profile --quiet \
  >   2>&1 | sed -E 's/ +[0-9]+\.[0-9]{3}/ _/g'
  profile: hottest shapes (top 1 of 1, by wall time)
    shape                                              checks    wall_ms      deriv   backtrck    sorbe      dfa  flips
    Person                                                  1 _          2          0        0        0      1
  profile: hottest focus nodes (top 1 of 1)
    node                                               checks    wall_ms
    <http://example.org/mary>                               1 _
  profile: attribution 100.0% of 2 deriv_steps, _ ms attributed

With --json the attribution tables are embedded as a final "profile"
member of the report, after any "metrics" member:

  $ shex-validate --schema person.shex --data people.ttl \
  >   --node http://example.org/mary --shape Person --profile --json \
  >   --quiet 2>/dev/null | sed -E 's/wall_ms": [0-9.e+-]+/wall_ms": _/g'
  {
    "entries": [
      {
        "node": "<http://example.org/mary>",
        "shape": "Person",
        "status": "nonconformant",
        "reason": "triple <http://example.org/mary> <http://xmlns.com/foaf/0.1/age> \"65\"^^<http://www.w3.org/2001/XMLSchema#integer> . matches no arc of the remaining expression (it reduces the expression to ∅)",
        "explain": {
          "kind": "blame_triple",
          "node": "<http://example.org/mary>",
          "shape": "Person",
          "triple": "<http://example.org/mary> <http://xmlns.com/foaf/0.1/age> \"65\"^^<http://www.w3.org/2001/XMLSchema#integer> .",
          "residual": "<http://xmlns.com/foaf/0.1/name>→xsd:string ‖ (<http://xmlns.com/foaf/0.1/knows>→@<Person>)* ‖ (<http://xmlns.com/foaf/0.1/name>→xsd:string)*",
          "ref_failures": []
        }
      }
    ],
    "conformant": 0,
    "nonconformant": 1,
    "profile": {
      "shapes": [
        {
          "shape": "Person",
          "checks": 1,
          "wall_ms": _,
          "deriv_steps": 2,
          "backtrack_branches": 0,
          "sorbe_counter_updates": 0,
          "compiled_steps": 0,
          "fixpoint_flips": 1
        }
      ],
      "nodes": [
        {
          "node": "<http://example.org/mary>",
          "checks": 1,
          "wall_ms": _
        }
      ],
      "totals": {
        "deriv_steps": 2,
        "attributed_deriv_steps": 2,
        "step_coverage": 1,
        "attributed_wall_ms": _
      }
    }
  }

--slow-ms T captures every check at or above T milliseconds in a
bounded ring and dumps it on stderr: verdict, failure reason and the
check's own work-counter deltas.  At threshold 0 the (failing) mary
check lands; only its wall-clock reading is nondeterministic:

  $ shex-validate --schema person.shex --data people.ttl \
  >   --node http://example.org/mary --shape Person --slow-ms 0 --quiet \
  >   2>&1 | sed -E 's/ +[0-9]+\.[0-9]{3} ms/ _ ms/'
  slowlog: 1 slow check (threshold 0 ms)
   _ ms  <http://example.org/mary>@Person  non-conformant deriv_steps=2 fixpoint_iterations=1 fixpoint_flips=1 fixpoint_demands=1
               triple <http://example.org/mary> <http://xmlns.com/foaf/0.1/age> "65"^^<http://www.w3.org/2001/XMLSchema#integer> . matches no arc of the remaining expression (it reduces the expression to ∅)

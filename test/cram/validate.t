Set up a schema and data reproducing the paper's Examples 1 and 2:

  $ cat > person.shex <<'SCHEMA'
  > PREFIX foaf: <http://xmlns.com/foaf/0.1/>
  > PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
  > <Person> {
  >   foaf:age xsd:integer
  >   , foaf:name xsd:string+
  >   , foaf:knows @<Person>*
  > }
  > SCHEMA

  $ cat > people.ttl <<'DATA'
  > @prefix foaf: <http://xmlns.com/foaf/0.1/> .
  > @prefix : <http://example.org/> .
  > :john foaf:age 23; foaf:name "John"; foaf:knows :bob .
  > :bob foaf:age 34; foaf:name "Bob", "Robert" .
  > :mary foaf:age 50, 65 .
  > DATA

Whole-graph typing (Example 2's verdicts):

  $ shex-validate --schema person.shex --data people.ttl
  <http://example.org/bob> ↦ {<Person>}
  <http://example.org/john> ↦ {<Person>}

Check a single conforming node:

  $ shex-validate --schema person.shex --data people.ttl \
  >   --node http://example.org/john --shape Person
  PASS <http://example.org/john>@<Person>
  1 conformant, 0 nonconformant

A nonconforming node sets exit code 1 and explains why:

  $ shex-validate --schema person.shex --data people.ttl \
  >   --node http://example.org/mary --shape Person
  FAIL <http://example.org/mary>@<Person>
       triple <http://example.org/mary> <http://xmlns.com/foaf/0.1/age> "65"^^<http://www.w3.org/2001/XMLSchema#integer> . matches no arc of the remaining expression (it reduces the expression to ∅)
  0 conformant, 1 nonconformant
  [1]

Shape maps select nodes by triple patterns; reports can be JSON:

  $ shex-validate --schema person.shex --data people.ttl \
  >   --shape-map '{FOCUS foaf:age _}@<Person>' --result-map
  <http://example.org/bob>@<Person>,
  <http://example.org/john>@<Person>,
  <http://example.org/mary>@!<Person>
  [1]

Bulk validation sharded over OCaml domains produces the identical report:

  $ shex-validate --schema person.shex --data people.ttl \
  >   --shape-map '{FOCUS foaf:age _}@<Person>' --result-map --domains 2
  <http://example.org/bob>@<Person>,
  <http://example.org/john>@<Person>,
  <http://example.org/mary>@!<Person>
  [1]

  $ shex-validate --schema person.shex --data people.ttl \
  >   --shape-map 'ex:john@<Person>' --json
  {
    "entries": [
      {
        "node": "<http://example.org/john>",
        "shape": "Person",
        "status": "conformant"
      }
    ],
    "conformant": 1,
    "nonconformant": 0
  }

The schema exports to ShExJ:

  $ shex-validate --schema person.shex --export-shexj
  {
    "type": "Schema",
    "shapes": [
      {
        "type": "Shape",
        "id": "Person",
        "closed": true,
        "expression": {
          "type": "EachOf",
          "expressions": [
            {
              "type": "TripleConstraint",
              "predicate": "http://xmlns.com/foaf/0.1/age",
              "valueExpr": {
                "type": "NodeConstraint",
                "datatype": "http://www.w3.org/2001/XMLSchema#integer"
              },
              "min": 1,
              "max": 1
            },
            {
              "type": "TripleConstraint",
              "predicate": "http://xmlns.com/foaf/0.1/name",
              "valueExpr": {
                "type": "NodeConstraint",
                "datatype": "http://www.w3.org/2001/XMLSchema#string"
              },
              "min": 1,
              "max": 1
            },
            {
              "type": "TripleConstraint",
              "predicate": "http://xmlns.com/foaf/0.1/knows",
              "valueExpr": "Person",
              "min": 0,
              "max": -1
            },
            {
              "type": "TripleConstraint",
              "predicate": "http://xmlns.com/foaf/0.1/name",
              "valueExpr": {
                "type": "NodeConstraint",
                "datatype": "http://www.w3.org/2001/XMLSchema#string"
              },
              "min": 0,
              "max": -1
            }
          ]
        }
      }
    ]
  }

And to the SPARQL translation of §3 (recursion is refused):

  $ shex-validate --schema person.shex --show-sparql Person
  cannot translate Person: shape references (recursion) cannot be expressed in SPARQL (§3)
  [2]

Usage errors:

  $ shex-validate --schema person.shex --data people.ttl --shape Nope
  --node and --shape must be given together
  [2]

Schema inference from example nodes:

  $ shex-validate --data people.ttl \
  >   --infer 'ex:john ex:bob' --infer-label Person
  PREFIX foaf: <http://xmlns.com/foaf/0.1/>
  PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
  
  <Person> {
    foaf:age xsd:integer , foaf:name xsd:string {1,2} , foaf:knows @<Person> ?
  }

The auto engine compiles single-occurrence shapes to the counting matcher:

  $ shex-validate --schema person.shex --data people.ttl \
  >   --node http://example.org/john --shape Person --engine auto
  PASS <http://example.org/john>@<Person>
  1 conformant, 0 nonconformant

A ShExJ export round-trips as a schema input (.json extension):

  $ shex-validate --schema person.shex --export-shexj > person.json
  $ shex-validate --schema person.json --data people.ttl \
  >   --node http://example.org/bob --shape Person --quiet

Shape maps with explicit node lists:

  $ shex-validate --schema person.shex --data people.ttl \
  >   --shape-map 'ex:john@<Person>, ex:mary@<Person>'
  PASS <http://example.org/john>@<Person>
  FAIL <http://example.org/mary>@<Person>
       triple <http://example.org/mary> <http://xmlns.com/foaf/0.1/age> "65"^^<http://www.w3.org/2001/XMLSchema#integer> . matches no arc of the remaining expression (it reduces the expression to ∅)
  1 conformant, 1 nonconformant
  [1]

Library errors surface as one-line diagnostics with exit code 2, not
backtraces — a malformed focus IRI:

  $ shex-validate --schema person.shex --data people.ttl \
  >   --node 'not a valid iri' --shape Person
  error: Iri.of_string_exn: invalid character ' ' at position 3 in IRI "not a valid iri"
  [2]

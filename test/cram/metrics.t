Telemetry flags on the paper's Examples 1-2 fixture (same setup as
validate.t):

  $ cat > person.shex <<'SCHEMA'
  > PREFIX foaf: <http://xmlns.com/foaf/0.1/>
  > PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
  > <Person> {
  >   foaf:age xsd:integer
  >   , foaf:name xsd:string+
  >   , foaf:knows @<Person>*
  > }
  > SCHEMA

  $ cat > people.ttl <<'DATA'
  > @prefix foaf: <http://xmlns.com/foaf/0.1/> .
  > @prefix : <http://example.org/> .
  > :john foaf:age 23; foaf:name "John"; foaf:knows :bob .
  > :bob foaf:age 34; foaf:name "Bob", "Robert" .
  > :mary foaf:age 50, 65 .
  > DATA

--metrics text prints a Prometheus-style exposition of the session's
registry.  Under the default derivatives engine the work shows up as
deriv_steps plus the expression-size histograms; the other engines'
counters exist but stay at zero:

  $ shex-validate --schema person.shex --data people.ttl \
  >   --node http://example.org/john --shape Person --metrics text --quiet
  # TYPE shex_backtrack_branches counter
  shex_backtrack_branches 0
  # TYPE shex_backtrack_decompositions counter
  shex_backtrack_decompositions 0
  # TYPE shex_deriv_steps counter
  shex_deriv_steps 12
  # TYPE shex_fixpoint_demands counter
  shex_fixpoint_demands 2
  # TYPE shex_fixpoint_flips counter
  shex_fixpoint_flips 0
  # TYPE shex_fixpoint_iterations counter
  shex_fixpoint_iterations 2
  # TYPE shex_sorbe_counter_updates counter
  shex_sorbe_counter_updates 0
  # TYPE shex_sorbe_matches counter
  shex_sorbe_matches 0
  # TYPE shex_deriv_size_after histogram
  shex_deriv_size_after_bucket{le="8"} 6
  shex_deriv_size_after_bucket{le="16"} 12
  shex_deriv_size_after_bucket{le="+Inf"} 12
  shex_deriv_size_after_sum 96
  shex_deriv_size_after_count 12
  # TYPE shex_deriv_size_before histogram
  shex_deriv_size_before_bucket{le="8"} 6
  shex_deriv_size_before_bucket{le="16"} 12
  shex_deriv_size_before_bucket{le="+Inf"} 12
  shex_deriv_size_before_sum 96
  shex_deriv_size_before_count 12

The same check under the backtracking engine: branches and
decompositions are counted instead, and deriv_steps stays zero — the
acceptance contrast between the Fig. 1 baseline and §6-7:

  $ shex-validate --schema person.shex --data people.ttl \
  >   --node http://example.org/john --shape Person \
  >   --engine backtracking --metrics json --quiet
  {
    "counters": {
      "backtrack_branches": 52,
      "backtrack_decompositions": 68,
      "deriv_steps": 0,
      "fixpoint_demands": 2,
      "fixpoint_flips": 0,
      "fixpoint_iterations": 2,
      "sorbe_counter_updates": 0,
      "sorbe_matches": 0
    },
    "gauges": {},
    "histograms": {
      "deriv_size_after": {
        "count": 0,
        "sum": 0,
        "max": 0,
        "buckets": {}
      },
      "deriv_size_before": {
        "count": 0,
        "sum": 0,
        "max": 0,
        "buckets": {}
      }
    },
    "spans": {}
  }

With --json the snapshot is embedded as a final "metrics" member of
the report, after the existing keys:

  $ shex-validate --schema person.shex --data people.ttl \
  >   --node http://example.org/mary --shape Person \
  >   --json --metrics json --quiet
  {
    "entries": [
      {
        "node": "<http://example.org/mary>",
        "shape": "Person",
        "status": "nonconformant",
        "reason": "triple <http://example.org/mary> <http://xmlns.com/foaf/0.1/age> \"65\"^^<http://www.w3.org/2001/XMLSchema#integer> . matches no arc of the remaining expression (it reduces the expression to ∅)",
        "explain": {
          "kind": "blame_triple",
          "node": "<http://example.org/mary>",
          "shape": "Person",
          "triple": "<http://example.org/mary> <http://xmlns.com/foaf/0.1/age> \"65\"^^<http://www.w3.org/2001/XMLSchema#integer> .",
          "residual": "<http://xmlns.com/foaf/0.1/name>→xsd:string ‖ (<http://xmlns.com/foaf/0.1/knows>→@<Person>)* ‖ (<http://xmlns.com/foaf/0.1/name>→xsd:string)*",
          "ref_failures": []
        }
      }
    ],
    "conformant": 0,
    "nonconformant": 1,
    "metrics": {
      "counters": {
        "backtrack_branches": 0,
        "backtrack_decompositions": 0,
        "deriv_steps": 2,
        "fixpoint_demands": 1,
        "fixpoint_flips": 1,
        "fixpoint_iterations": 1,
        "sorbe_counter_updates": 0,
        "sorbe_matches": 0
      },
      "gauges": {},
      "histograms": {
        "deriv_size_after": {
          "count": 2,
          "sum": 8,
          "max": 7,
          "buckets": {
            "1": 1,
            "8": 1
          }
        },
        "deriv_size_before": {
          "count": 2,
          "sum": 16,
          "max": 9,
          "buckets": {
            "8": 1,
            "16": 1
          }
        }
      },
      "spans": {}
    }
  }
  [1]

--trace-json streams one machine-readable derivative step per line
(the structured form of Examples 11-12; the fixpoint re-runs bob's
match once per iteration, hence the repetition):

  $ shex-validate --schema person.shex --data people.ttl \
  >   --node http://example.org/bob --shape Person \
  >   --trace-json trace.jsonl --quiet
  $ cat trace.jsonl
  {"event":"check","ph":"B","node":"<http://example.org/bob>","shape":"Person","engine":"derivatives"}
  {"event":"deriv_step","focus":"<http://example.org/bob>","triple":"<http://example.org/bob> <http://xmlns.com/foaf/0.1/age> \"34\"^^<http://www.w3.org/2001/XMLSchema#integer> .","size_before":9,"size_after":7,"nullable":false,"empty":false}
  {"event":"deriv_step","focus":"<http://example.org/bob>","triple":"<http://example.org/bob> <http://xmlns.com/foaf/0.1/name> \"Bob\" .","size_before":7,"size_after":9,"nullable":true,"empty":false}
  {"event":"deriv_step","focus":"<http://example.org/bob>","triple":"<http://example.org/bob> <http://xmlns.com/foaf/0.1/name> \"Robert\" .","size_before":9,"size_after":9,"nullable":true,"empty":false}
  {"event":"nullable_check","focus":"<http://example.org/bob>","size":9,"nullable":true}
  {"event":"check","ph":"E","node":"<http://example.org/bob>","shape":"Person","ok":true}
  {"event":"check","ph":"B","node":"<http://example.org/bob>","shape":"Person","engine":"derivatives"}
  {"event":"deriv_step","focus":"<http://example.org/bob>","triple":"<http://example.org/bob> <http://xmlns.com/foaf/0.1/age> \"34\"^^<http://www.w3.org/2001/XMLSchema#integer> .","size_before":9,"size_after":7,"nullable":false,"empty":false}
  {"event":"deriv_step","focus":"<http://example.org/bob>","triple":"<http://example.org/bob> <http://xmlns.com/foaf/0.1/name> \"Bob\" .","size_before":7,"size_after":9,"nullable":true,"empty":false}
  {"event":"deriv_step","focus":"<http://example.org/bob>","triple":"<http://example.org/bob> <http://xmlns.com/foaf/0.1/name> \"Robert\" .","size_before":9,"size_after":9,"nullable":true,"empty":false}
  {"event":"nullable_check","focus":"<http://example.org/bob>","size":9,"nullable":true}
  {"event":"check","ph":"E","node":"<http://example.org/bob>","shape":"Person","ok":true}

--metrics requires an explicit format:

  $ shex-validate --schema person.shex --data people.ttl --metrics
  shex-validate: option '--metrics' needs an argument
  Usage: shex-validate [OPTION]…
  Try 'shex-validate --help' for more information.
  [124]

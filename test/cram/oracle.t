The differential oracle runs a fixed-seed campaign across every
engine and reports agreement:

  $ shex-validate --oracle seeds=25
  oracle: 25 seeds checked (surface mode, seeds 0-24): no divergences

Extended mode probes the SORBE applicability edge (predicate stems
overlapping singleton predicates) and object complements:

  $ shex-validate --oracle seeds=10,start=5,mode=extended
  oracle: 10 seeds checked (extended mode, seeds 5-14): no divergences

A repro directory is created on demand (and stays empty when every
arm agrees):

  $ shex-validate --oracle seeds=5,dir=findings
  oracle: 5 seeds checked (surface mode, seeds 0-4): no divergences
  $ ls findings | wc -l
  0

Malformed specs are one-line usage errors with exit code 2:

  $ shex-validate --oracle seeds=banana
  error: --oracle: seeds must be a non-negative integer (got "banana")
  [2]

  $ shex-validate --oracle start=3
  error: --oracle: a seeds=N entry is required
  [2]

  $ shex-validate --oracle seeds=5,mode=quantum
  error: --oracle: mode must be surface, extended, edits, containment or optimizer (got "quantum")
  [2]

  $ shex-validate --oracle seeds=5,flavour=mild
  error: --oracle: unknown key "flavour" (known keys: seeds, start, mode, dir, replay)
  [2]

A written repro document replays through every arm (this one is the
shrunk literal-comparison counterexample from test/corpus/):

  $ cat > seed231.repro <<'REPRO'
  > # oracle repro: seed 231 (surface mode)
  > %schema
  > <http://example.org/S1> {
  >   <http://other.org/q1> [ "hi"@en <http://example.org/n4> 01 ]
  > }
  > %data
  > <http://example.org/n3> <http://other.org/q1> "1"^^<http://www.w3.org/2001/XMLSchema#integer> .
  > %map
  > <http://example.org/n3>@<http://example.org/S1>
  > REPRO
  $ shex-validate --oracle replay=seed231.repro
  oracle: seed231.repro replays clean (all arms agree)

Static analysis of the committed compatibility trio (the same files the
analysis-smoke CI job checks).  --analyze reports per-shape emptiness
with a concrete witness and flags dead or unreachable rules:

  $ shex-validate --analyze --schema ../../data/compat-v1.shex
  roots: Person, Doc
  Person: satisfiable (witness: focus <http://analysis.invalid/far>, 2 triples)
  Doc: satisfiable (witness: focus <http://analysis.invalid/far>, 4 triples)

v1 -> v2 widens Person (age becomes optional, a homepage is allowed):
every node conforming to a v1 shape still conforms to its v2
counterpart, which the product-derivative search proves through the
recursive knows/author references:

  $ shex-validate --check-compat '../../data/compat-v1.shex ../../data/compat-v2.shex'
  Person: contained
  Doc: contained

v1 -> v3 makes an email mandatory: the upgrade breaks existing data.
Exit code 1, and each refutation carries a concrete counterexample
graph — replayable Turtle that validates under v1 and fails under v3:

  $ shex-validate --check-compat '../../data/compat-v1.shex ../../data/compat-v3.shex'
  Person: refuted (counterexample: focus <http://analysis.invalid/far>, 2 triples)
    counterexample (valid under ../../data/compat-v1.shex, invalid under ../../data/compat-v3.shex):
    focus: <http://analysis.invalid/far>
      @prefix : <http://example.org/> .
      <http://analysis.invalid/far> :age 7919 ;
          :name "analysis-fresh" .
  Doc: refuted (counterexample: focus <http://analysis.invalid/far>, 4 triples)
    counterexample (valid under ../../data/compat-v1.shex, invalid under ../../data/compat-v3.shex):
    focus: <http://analysis.invalid/far>
      @prefix : <http://example.org/> .
      <http://analysis.invalid/far> :author <http://analysis.invalid/n1> ;
          :title "analysis-fresh" .
      <http://analysis.invalid/n1> :age 7919 ;
          :name "analysis-fresh" .
  [1]

The pre-validation optimizer merges value-set disjunctions of the same
predicate into one membership test and prints the rewritten schema:

  $ cat > ored.shex <<'SCHEMA'
  > PREFIX ex: <http://example.org/>
  > <S> { ex:a [ 1 ] | ex:a [ 2 ] | ex:a [ 3 ] }
  > SCHEMA

  $ shex-validate --optimize --schema ored.shex
  PREFIX : <http://example.org/>
  
  <S> {
    :a [ 1 2 3 ]
  }
  optimizer: 1 shape rewritten


The serve daemon exposes the same analyses over its JSON protocol —
here checking the loaded schema against the breaking v3 proposal:

  $ printf '%s\n%s\n' \
  >   '{"cmd":"load","schema":"../../data/compat-v1.shex"}' \
  >   '{"cmd":"analyze","compat":"../../data/compat-v3.shex"}' \
  >   | shex-validate --serve
  {"ok":true,"shapes":2,"triples":0,"request":1}
  {"ok":true,"shapes":[{"shape":"Person","verdict":"refuted","focus":"<http://analysis.invalid/far>","counterexample_triples":2},{"shape":"Doc","verdict":"refuted","focus":"<http://analysis.invalid/far>","counterexample_triples":4}],"removed":[],"added":[],"request":2}
